module regimap

go 1.22
