package regimap_test

import (
	"fmt"
	"log"

	"regimap"
)

// ExampleMap maps a benchmark kernel on the paper's 4x4 array and proves the
// result executes the loop correctly.
func ExampleMap() {
	kernel, _ := regimap.KernelByName("mcf_relax")
	cgra := regimap.NewMesh(4, 4, 4)
	m, stats, err := regimap.Map(kernel.Build(), cgra, regimap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d MII=%d perf=%.2f\n", stats.II, stats.MII, stats.Perf())
	fmt.Println("simulates:", regimap.Simulate(m, 8) == nil)
	// Output:
	// II=3 MII=3 perf=1.00
	// simulates: true
}

// ExampleCompile compiles a loop body from source and inspects the resulting
// data-flow graph.
func ExampleCompile() {
	d, err := regimap.Compile("dot", `acc = acc + a[i]*b[i]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Summary())
	fmt.Println("RecMII:", d.RecMII())
	// Output:
	// dot: 9 ops (2 mem), 10 edges
	// RecMII: 1
}

// ExampleNewBuilder constructs a kernel programmatically: a saturating
// accumulator with an explicit inter-iteration edge.
func ExampleNewBuilder() {
	b := regimap.NewBuilder("satacc")
	x := b.Input("x")
	acc := b.Op(regimap.Add, "acc", x)
	sat := b.Op(regimap.Min, "sat", acc, b.Const("cap", 1<<20))
	b.EdgeDist(sat, acc, 1, 1) // acc's second operand: last iteration's sat
	d := b.Build()
	fmt.Println(d.Summary())
	fmt.Println("RecMII:", d.RecMII())
	// Output:
	// satacc: 4 ops (0 mem), 4 edges
	// RecMII: 2
}

// ExampleEmit lowers a mapping to the instruction words a CGRA executes.
func ExampleEmit() {
	d := regimap.MustCompile("scale", `out[i] = x[i] * 3`)
	m, _, err := regimap.Map(d, regimap.NewMesh(2, 2, 2), regimap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := regimap.Emit(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("II:", prog.II)
	fmt.Println("machine-checked:", regimap.CheckProgram(m, 8) == nil)
	// Output:
	// II: 3
	// machine-checked: true
}
