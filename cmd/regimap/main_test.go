package main

import (
	"strings"
	"testing"

	"regimap/internal/engine"
)

func TestUnknownMapperMessageListsRegistry(t *testing.T) {
	msg := unknownMapperMessage("no-such-mapper")
	if !strings.Contains(msg, `unknown mapper "no-such-mapper"`) {
		t.Fatalf("message does not name the bad mapper:\n%s", msg)
	}
	names := engine.Names()
	if len(names) < 7 {
		t.Fatalf("registry too small, want the 7 engines, got %v", names)
	}
	for _, n := range names {
		if !strings.Contains(msg, n) {
			t.Fatalf("message does not list engine %q:\n%s", n, msg)
		}
		m, _ := engine.Lookup(n)
		if d := engine.Describe(m); d != "" && !strings.Contains(msg, d) {
			t.Fatalf("message does not describe engine %q:\n%s", n, msg)
		}
	}
	for _, want := range []string{"exact", "regimap", "dresc", "ems", "portfolio", "resilient"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message missing %q:\n%s", want, msg)
		}
	}
}
