// Command regimap maps a benchmark kernel onto a CGRA and reports the
// result: achieved II versus the lower bound, the kernel configuration
// table, register pressure, and (optionally) a functional-simulation check.
//
// Usage:
//
//	regimap -list
//	regimap -list-kernels                            # with ops/edges/RecMII columns
//	regimap -list-mappers                            # the engine registry
//	regimap -list-archs                              # the named-architecture zoo
//	regimap -kernel fir8 [-rows 4 -cols 4 -regs 4] [-mapper regimap|dresc|ems|resilient|exact] [-sim 16] [-dot]
//	regimap -kernel dotprod_sat -mapper exact        # prove the II optimal (SAT-backed certificate)
//	regimap -kernel fir8 -arch torus-8x8             # a zoo member by name
//	regimap -kernel fir8 -arch "grid 4x4; topo mesh+; regs 8"   # an inline ADL description
//	regimap -kernel fir8 -arch-file fabric.adl       # the same, from a file
//	regimap -kernel fir8 -portfolio 8 -timeout 30s   # same answer, less waiting
//	regimap -kernel fft_radix2 -explore 3            # hunt for a lower II
//	regimap -kernel fir8 -trace trace.jsonl          # per-pass timing spans, one JSON object per line
//	regimap -kernel fir8 -faults "pe 1,1; link 0,0-0,1"            # map around defects
//	regimap -kernel fir8 -mapper resilient -faults "pe 1,1~2"      # degradation ladder + retry
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"regimap"
	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/engine"
	"regimap/internal/obs"
	"regimap/internal/profiling"
	"regimap/internal/version"
)

// stopProfiles flushes any active pprof profiles; exitOn runs it so error
// exits still produce usable profiles.
var stopProfiles = func() {}

func main() {
	var (
		list        = flag.Bool("list", false, "list the benchmark kernels and exit")
		listKernels = flag.Bool("list-kernels", false, "list the benchmark kernels with size and RecMII columns and exit")
		listMappers = flag.Bool("list-mappers", false, "list the registered mapping engines and exit")
		tracePath   = flag.String("trace", "", "write observability events (per-pass spans, counters) as JSON lines to this file")

		kernel        = flag.String("kernel", "", "kernel to map (see -list)")
		archName      = flag.String("arch", "", "target fabric: a named architecture (see -list-archs) or an inline ADL description")
		archFile      = flag.String("arch-file", "", "read the target fabric's ADL description from this file")
		listArchs     = flag.Bool("list-archs", false, "list the named architectures and exit")
		rows          = flag.Int("rows", 4, "CGRA rows")
		cols          = flag.Int("cols", 4, "CGRA columns")
		regs          = flag.Int("regs", 4, "rotating registers per PE")
		mapper        = flag.String("mapper", "regimap", "mapper: regimap, dresc, ems, resilient, or exact (see -list-mappers)")
		faults        = flag.String("faults", "", `hardware fault set, e.g. "pe 1,1; link 0,0-0,1; regs 2,2=1; row 3"`)
		simN          = flag.Int("sim", 8, "functionally simulate this many iterations (0 to skip)")
		dot           = flag.Bool("dot", false, "print the kernel DFG in Graphviz DOT and exit")
		cfg           = flag.Bool("config", false, "lower the mapping to instruction words and print them (regimap mapper only)")
		srcPath       = flag.String("src", "", "compile this loop-body source file instead of a named kernel")
		svgPath       = flag.String("svg", "", "write the mapping as an SVG picture to this file (regimap mapper only)")
		vcdPath       = flag.String("vcd", "", "write a VCD waveform of the execution to this file (regimap mapper only)")
		jsonOut       = flag.Bool("json", false, "emit mapper statistics as JSON (regimap mapper only)")
		seed          = flag.Int64("seed", 1, "base seed: DRESC annealing / portfolio diversification")
		timeout       = flag.Duration("timeout", 0, "abort mapping after this long (0: unbounded)")
		portfolio     = flag.Int("portfolio", 1, "speculate on this many IIs in parallel (regimap: result-identical; dresc: seeds per II)")
		explore       = flag.Int("explore", 0, "also race this many budget-widened scout searches per II (regimap mapper; may lower the II)")
		cliqueWorkers = flag.Int("clique-workers", 0, "parallelize the clique search across this many goroutines (regimap mapper; <=1: sequential; results are byte-identical at any value)")
		drescRestarts = flag.Int("dresc-restarts", 0, "race this many seed-derived annealing chains per II (dresc mapper; <=1: one chain; results depend on this, not on -dresc-workers)")
		drescWorkers  = flag.Int("dresc-workers", 0, "goroutines racing the restart chains (dresc mapper; 0: GOMAXPROCS; results are byte-identical at any value)")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf       = flag.String("memprofile", "", "write a heap profile to this file on exit")
		showVersion   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	stop, err := profiling.Start(*cpuProf, *memProf)
	exitOn(err)
	stopProfiles = stop
	defer stop()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, k := range regimap.Kernels() {
			d := k.Build()
			fmt.Printf("%-16s %-5s %3d ops  %s\n", k.Name, k.Suite, d.N(), k.Description)
		}
		return
	}
	if *listKernels {
		fmt.Printf("%-16s %-5s %5s %6s %7s  %s\n", "kernel", "suite", "ops", "edges", "recmii", "description")
		for _, k := range regimap.Kernels() {
			d := k.Build()
			fmt.Printf("%-16s %-5s %5d %6d %7d  %s\n", k.Name, k.Suite, d.N(), len(d.Edges), d.RecMII(), k.Description)
		}
		return
	}
	if *listMappers {
		for _, name := range engine.Names() {
			m, _ := engine.Lookup(name)
			fmt.Printf("%-16s %s\n", name, engine.Describe(m))
		}
		return
	}
	if *listArchs {
		fmt.Printf("%-16s %-44s %s\n", "name", "description", "blurb")
		for _, name := range regimap.ArchNames() {
			adl, blurb, _ := regimap.ArchSource(name)
			fmt.Printf("%-16s %-44s %s\n", name, adl, blurb)
		}
		return
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		exitOn(err)
		sink := obs.NewJSONLSink(f) // Close flushes and closes f
		defer func() { exitOn(sink.Close()) }()
		ctx = obs.With(ctx, obs.New(sink))
	}
	var d *regimap.DFG
	var title, description string
	switch {
	case *srcPath != "":
		text, err := os.ReadFile(*srcPath)
		exitOn(err)
		compiled, err := regimap.Compile(*srcPath, string(text))
		exitOn(err)
		d, title, description = compiled, *srcPath, "compiled loop body"
	case *kernel != "":
		k, ok := regimap.KernelByName(*kernel)
		if !ok {
			fmt.Fprintf(os.Stderr, "regimap: unknown kernel %q (try -list)\n", *kernel)
			stopProfiles()
			os.Exit(2)
		}
		d, title, description = k.Build(), k.Name, k.Description
	default:
		fmt.Fprintln(os.Stderr, "regimap: -kernel or -src required (try -list)")
		stopProfiles()
		os.Exit(2)
	}
	if *dot {
		fmt.Print(d.DOT())
		return
	}
	c, err := resolveArch(*archName, *archFile, *rows, *cols, *regs)
	exitOn(err)
	fs := &regimap.FaultSet{}
	if *faults != "" {
		parsed, err := regimap.ParseFaults(*faults)
		exitOn(err)
		exitOn(parsed.Validate(c))
		fs = parsed
	}
	if *mapper != "resilient" && !fs.Empty() {
		// The single mappers are fault-aware: map directly on the faulted
		// view. The resilient mapper owns fault application (and transient
		// retry) itself.
		faulted, err := fs.Apply(c)
		exitOn(err)
		c = faulted
		fmt.Printf("injected faults: %s — %d of %d PEs usable\n", fs, c.UsablePEs(), c.NumPEs())
	}
	fmt.Printf("kernel %s (%s) on %s\n", title, description, c)

	switch *mapper {
	case "regimap":
		var m *regimap.Mapping
		if *portfolio > 1 || *explore > 0 {
			won, pstats, err := regimap.MapPortfolio(ctx, d, c, regimap.PortfolioOptions{Attempts: *portfolio, Explore: *explore, Seed: *seed, Base: cliqueOpts(*cliqueWorkers)})
			exitOn(err)
			m = won
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				exitOn(enc.Encode(struct {
					Kernel string
					Array  string
					*regimap.PortfolioStats
				}{title, c.String(), pstats}))
				if *simN > 0 {
					exitOn(regimap.Simulate(m, *simN))
				}
				return
			}
			fmt.Printf("REGIMap portfolio: II=%d (MII=%d, perf %.2f) in %v — racer %d won after %d IIs raced, %d schedule rounds, %d losers cancelled\n",
				pstats.II, pstats.MII, pstats.Perf(), pstats.Elapsed,
				pstats.Winner, pstats.Races, pstats.Attempts, pstats.Cancelled)
		} else {
			won, stats, err := regimap.MapContext(ctx, d, c, cliqueOpts(*cliqueWorkers))
			exitOn(err)
			m = won
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				exitOn(enc.Encode(struct {
					Kernel string
					Array  string
					*regimap.Stats
				}{title, c.String(), stats}))
				if *simN > 0 {
					exitOn(regimap.Simulate(m, *simN))
				}
				return
			}
			fmt.Printf("REGIMap: II=%d (MII=%d, perf %.2f) in %v — %d attempts, %d reschedules, %d routing nodes, %d thinnings\n",
				stats.II, stats.MII, stats.Perf(), stats.Elapsed,
				stats.Attempts, stats.Reschedules, stats.RouteInserts, stats.Thinnings)
		}
		fmt.Print(m)
		fmt.Printf("register pressure per PE: %v\n", m.RegisterPressure())
		if *svgPath != "" {
			svg, err := regimap.RenderMapping(m)
			exitOn(err)
			exitOn(os.WriteFile(*svgPath, []byte(svg), 0o644))
			fmt.Printf("mapping picture written to %s\n", *svgPath)
		}
		if *vcdPath != "" {
			f, err := os.Create(*vcdPath)
			exitOn(err)
			iters := *simN
			if iters <= 0 {
				iters = 8
			}
			exitOn(regimap.WriteVCD(f, m, iters))
			exitOn(f.Close())
			fmt.Printf("waveform written to %s\n", *vcdPath)
		}
		if *cfg {
			prog, err := regimap.Emit(m)
			exitOn(err)
			fmt.Print(prog)
			exitOn(regimap.CheckProgram(m, 8))
			fmt.Println("configuration executed bit-identically to the reference")
		}
		if *simN > 0 {
			exitOn(regimap.Simulate(m, *simN))
			fmt.Printf("functional simulation: %d iterations bit-identical to the reference\n", *simN)
		}
	case "dresc":
		if *portfolio > 1 {
			p, pstats, err := regimap.MapDRESCPortfolio(ctx, d, c, regimap.DRESCPortfolioOptions{
				Attempts: *portfolio,
				Base:     regimap.DRESCOptions{Seed: *seed, Restarts: *drescRestarts, Workers: *drescWorkers},
			})
			exitOn(err)
			fmt.Printf("DRESC portfolio: II=%d (MII=%d, perf %.2f) in %v — seed %d (attempt %d of %d) won, %d losers cancelled\n",
				pstats.II, pstats.MII, pstats.Perf(), pstats.Elapsed,
				*seed+int64(pstats.Winner), pstats.Winner, *portfolio, pstats.Cancelled)
			fmt.Printf("placement: %d operations, %d routed edges\n", len(p.PE), len(p.Paths))
			return
		}
		p, stats, err := regimap.MapDRESCContext(ctx, d, c, regimap.DRESCOptions{Seed: *seed, Restarts: *drescRestarts, Workers: *drescWorkers})
		exitOn(err)
		fmt.Printf("DRESC: II=%d (MII=%d, perf %.2f) in %v — %d annealing moves (%d accepted)\n",
			stats.II, stats.MII, stats.Perf(), stats.Elapsed, stats.Moves, stats.Accepts)
		fmt.Printf("placement: %d operations, %d routed edges\n", len(p.PE), len(p.Paths))
	case "resilient":
		out, err := regimap.MapResilient(ctx, d, c, regimap.ResilientOptions{
			Faults: fs,
			DRESC:  regimap.DRESCOptions{Seed: *seed, Restarts: *drescRestarts, Workers: *drescWorkers},
		})
		exitOn(err)
		fmt.Printf("resilient: rung %s II=%d (MII=%d) won in round %d, %v total\n",
			out.Rung, out.II, out.MII, out.Attempt, out.Elapsed)
		for _, a := range out.Reports {
			status := "ok"
			if a.Err != nil {
				status = a.Err.Error()
			}
			fmt.Printf("  round %d  %-8s %s\n", a.Round, a.Rung, status)
		}
		if out.Mapping != nil {
			fmt.Print(out.Mapping)
			fmt.Printf("register pressure per PE: %v\n", out.Mapping.RegisterPressure())
			if *simN > 0 {
				exitOn(regimap.Simulate(out.Mapping, *simN))
				fmt.Printf("functional simulation: %d iterations bit-identical to the reference\n", *simN)
			}
		} else {
			fmt.Printf("placement: %d operations, %d routed edges (DRESC rung)\n",
				len(out.Placement.PE), len(out.Placement.Paths))
		}
	case "ems":
		m, stats, err := regimap.MapEMSContext(ctx, d, c, regimap.EMSOptions{})
		exitOn(err)
		fmt.Printf("EMS: II=%d (MII=%d, perf %.2f) in %v — %d placements, %d routing nodes\n",
			stats.II, stats.MII, stats.Perf(), stats.Elapsed, stats.Placements, stats.Routes)
		fmt.Print(m)
		if *simN > 0 {
			exitOn(regimap.Simulate(m, *simN))
			fmt.Printf("functional simulation: %d iterations bit-identical to the reference\n", *simN)
		}
	case "exact":
		m, stats, err := regimap.MapExactContext(ctx, d, c, regimap.ExactOptions{Seed: *seed})
		if stats != nil {
			printCertificate(&stats.Cert)
		}
		exitOn(err)
		mii, ii, proven := stats.Cert.Gap()
		verdict := "best known (optimality not proven)"
		if proven {
			verdict = "proven optimal"
		}
		fmt.Printf("exact: II=%d %s (MII=%d, perf %.2f) in %v — %d conflicts, %d decisions, %d restarts\n",
			ii, verdict, mii, float64(mii)/float64(ii), stats.Elapsed,
			stats.Cert.Conflicts, stats.Cert.Decisions, stats.Cert.Restarts)
		fmt.Print(m)
		fmt.Printf("register pressure per PE: %v\n", m.RegisterPressure())
		if *simN > 0 {
			exitOn(regimap.Simulate(m, *simN))
			fmt.Printf("functional simulation: %d iterations bit-identical to the reference\n", *simN)
		}
	default:
		fmt.Fprint(os.Stderr, unknownMapperMessage(*mapper))
		stopProfiles()
		os.Exit(2)
	}
}

// unknownMapperMessage explains a bad -mapper value by listing the engine
// registry, so the user never has to guess at valid names.
func unknownMapperMessage(name string) string {
	msg := fmt.Sprintf("regimap: unknown mapper %q; registered mappers:\n", name)
	for _, n := range engine.Names() {
		m, _ := engine.Lookup(n)
		msg += fmt.Sprintf("  %-16s %s\n", n, engine.Describe(m))
	}
	return msg
}

// printCertificate reports the exact engine's per-II verdicts and the
// certified lower bound — also on failure, where the certificate is the
// useful part of the answer.
func printCertificate(cert *regimap.Certificate) {
	for _, v := range cert.PerII {
		note := ""
		if v.Note != "" {
			note = " (" + v.Note + ")"
		}
		fmt.Printf("  II=%-3d %-10s %7d vars %8d clauses %8d conflicts  %v%s\n",
			v.II, v.Status, v.Vars, v.Clauses, v.Conflicts, v.Elapsed.Round(time.Millisecond), note)
	}
	class := "holds for any mapper"
	if cert.LowerBoundClass == regimap.ExactLowerBoundChain {
		class = fmt.Sprintf("holds for route-chain mappings (<=%d hops/edge)", cert.RouteHops)
	}
	fmt.Printf("  certified lower bound: II >= %d — %s\n", cert.ProvenLowerBound, class)
}

// resolveArch builds the target array from -arch / -arch-file or from the
// shape flags; the two ways are mutually exclusive. Every path goes through
// the ADL compiler, so a malformed fabric fails with the same positioned
// *DescError the server and the mapping wire decoder report.
func resolveArch(name, file string, rows, cols, regs int) (*regimap.CGRA, error) {
	shapeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rows" || f.Name == "cols" || f.Name == "regs" {
			shapeSet = true
		}
	})
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("-arch and -arch-file are mutually exclusive")
	case name != "":
		if shapeSet {
			return nil, fmt.Errorf("-arch is mutually exclusive with -rows/-cols/-regs")
		}
		return regimap.ResolveArch(name)
	case file != "":
		if shapeSet {
			return nil, fmt.Errorf("-arch-file is mutually exclusive with -rows/-cols/-regs")
		}
		text, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		desc, err := regimap.ParseArch(string(text))
		if err != nil {
			return nil, err
		}
		return desc.Compile()
	default:
		return arch.Uniform(rows, cols, regs, arch.Mesh)
	}
}

// cliqueOpts returns the REGIMap options the -clique-workers flag implies.
func cliqueOpts(workers int) regimap.Options {
	return regimap.Options{Clique: clique.Options{Workers: workers}}
}

func exitOn(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "regimap:", err)
		os.Exit(1)
	}
}
