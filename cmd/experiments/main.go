// Command experiments regenerates the paper's evaluation (Section 6): every
// figure and table, printed as text tables. Expect a few minutes with the
// full DRESC annealing budget; -quick trades annealing quality for speed.
//
// Usage:
//
//	experiments                 # everything, one kernel per core
//	experiments -run fig6       # one of: fig2, fig5, fig6, fig7, fig8, ablation, power
//	experiments -quick          # reduced DRESC budget
//	experiments -jobs 1         # serial (for clean single-run timings)
//	experiments -timeout 30s    # cap each individual mapper run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"regimap/internal/experiments"
	"regimap/internal/profiling"
)

// stopProfiles flushes any active pprof profiles; exitOn runs it so error
// exits still produce usable profiles.
var stopProfiles = func() {}

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run: all, fig2, fig5, fig6, fig7, fig8, ablation, power, registers")
		quick     = flag.Bool("quick", false, "shrink the DRESC annealing budget")
		seed      = flag.Int64("seed", 0, "base seed: DRESC annealing / portfolio diversification")
		csvPath   = flag.String("csv", "", "also write Figure 6 per-loop rows as CSV to this file")
		jobs      = flag.Int("jobs", runtime.NumCPU(), "map this many kernels concurrently (results are identical at any value)")
		timeout   = flag.Duration("timeout", 0, "abort any single mapper run after this long (0: unbounded)")
		portfolio = flag.Int("portfolio", 1, "race this many diversified REGIMap attempts per II")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := profiling.Start(*cpuProf, *memProf)
	exitOn(err)
	stopProfiles = stop
	defer stop()
	base := experiments.Config{
		Rows: 4, Cols: 4, Regs: 4,
		Seed: *seed, Quick: *quick,
		Workers: *jobs, Timeout: *timeout, Portfolio: *portfolio,
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("fig2") {
		ran = true
		r, err := experiments.Figure2()
		exitOn(err)
		fmt.Println(r.Table())
	}
	if want("fig5") {
		ran = true
		r, err := experiments.Figure5()
		exitOn(err)
		fmt.Println(r.Table())
	}
	if want("fig6") {
		ran = true
		r := experiments.Figure6(base)
		fmt.Println(r.Table())
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			exitOn(err)
			exitOn(experiments.WriteCSV(f, r.Rows))
			exitOn(f.Close())
			fmt.Printf("per-loop rows written to %s\n\n", *csvPath)
		}
	}
	if want("fig7") {
		ran = true
		fmt.Println(experiments.Figure7(base).Table())
	}
	if want("fig8") {
		ran = true
		fmt.Println(experiments.Figure8(base).Table())
	}
	if want("ablation") {
		ran = true
		fmt.Println(experiments.RescheduleAblation(base).Table())
	}
	if want("power") {
		ran = true
		fmt.Println(experiments.PowerEfficiency(base).Table())
	}
	if want("registers") {
		ran = true
		fmt.Println(experiments.RegisterBenefit(base).Table())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		stopProfiles()
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
