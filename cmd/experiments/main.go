// Command experiments regenerates the paper's evaluation (Section 6): every
// figure and table, printed as text tables. Expect a few minutes with the
// full DRESC annealing budget; -quick trades annealing quality for speed.
//
// Usage:
//
//	experiments                 # everything, one kernel per core
//	experiments -run fig6       # one of: fig2, fig5, fig6, fig7, fig8, ablation, power, registers, phases, optgap
//	experiments -run phases     # per-kernel phase-time breakdown of the pass pipeline
//	experiments -run optgap     # REGIMap audited by the exact SAT backend's certificates
//	experiments -quick          # reduced DRESC budget
//	experiments -jobs 1         # serial (for clean single-run timings)
//	experiments -timeout 30s    # cap each individual mapper run
//	experiments -trace t.jsonl  # per-pass observability spans from every run, as JSON lines
//	experiments -chaos          # fault-injection degradation curve + mutation catch rate
//	experiments -chaos -trials 4 -max-faults 5 -faults "pe 3,3; row 3"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"regimap/internal/arch"
	"regimap/internal/experiments"
	"regimap/internal/fault"
	"regimap/internal/fault/chaos"
	"regimap/internal/obs"
	"regimap/internal/profiling"
	"regimap/internal/version"
)

// stopProfiles flushes any active pprof profiles; exitOn runs it so error
// exits still produce usable profiles.
var stopProfiles = func() {}

func main() {
	var (
		run           = flag.String("run", "all", "experiment to run: all, fig2, fig5, fig6, fig7, fig8, archsweep, ablation, power, registers, phases, optgap")
		archList      = flag.String("archs", "", "archsweep: comma-separated named architectures (default: the whole registry)")
		quick         = flag.Bool("quick", false, "shrink the DRESC annealing budget")
		seed          = flag.Int64("seed", 0, "base seed: DRESC annealing / portfolio diversification")
		csvPath       = flag.String("csv", "", "also write Figure 6 per-loop rows as CSV to this file")
		jobs          = flag.Int("jobs", runtime.NumCPU(), "map this many kernels concurrently (results are identical at any value)")
		timeout       = flag.Duration("timeout", 0, "abort any single mapper run after this long (0: unbounded)")
		portfolio     = flag.Int("portfolio", 1, "race this many diversified REGIMap attempts per II")
		cliqueWorkers = flag.Int("clique-workers", 0, "parallelize the clique search inside every REGIMap run across this many goroutines (<=1: sequential; results are byte-identical at any value)")
		drescRestarts = flag.Int("dresc-restarts", 0, "race this many seed-derived annealing chains per II inside every DRESC run (<=1: one chain; part of the experimental setup)")
		drescWorkers  = flag.Int("dresc-workers", 0, "goroutines racing the DRESC restart chains (0: GOMAXPROCS; results are byte-identical at any value)")
		runChaos      = flag.Bool("chaos", false, "run the fault-injection chaos harness instead of the paper experiments")
		trials        = flag.Int("trials", 2, "chaos: random fault sets drawn per fault count")
		maxFaults     = flag.Int("max-faults", 3, "chaos: largest injected fault count in the sweep")
		faultSpec     = flag.String("faults", "pe 3,3; row 3", "chaos: fault set for the mutation-sweep fabric")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf       = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath     = flag.String("trace", "", "write observability events (per-pass spans, counters) from every mapper run as JSON lines to this file")
		showVersion   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	stop, err := profiling.Start(*cpuProf, *memProf)
	exitOn(err)
	stopProfiles = stop
	defer stop()
	base := experiments.Config{
		Rows: 4, Cols: 4, Regs: 4,
		Seed: *seed, Quick: *quick,
		Workers: *jobs, Timeout: *timeout, Portfolio: *portfolio, CliqueWorkers: *cliqueWorkers,
		DRESCRestarts: *drescRestarts, DRESCWorkers: *drescWorkers,
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		exitOn(err)
		sink := obs.NewJSONLSink(f) // Close flushes and closes f
		defer func() { exitOn(sink.Close()) }()
		base.Trace = obs.New(sink)
	}

	if *runChaos {
		exitOn(chaosHarness(base, *seed, *trials, *maxFaults, *faultSpec))
		return
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("fig2") {
		ran = true
		r, err := experiments.Figure2()
		exitOn(err)
		fmt.Println(r.Table())
	}
	if want("fig5") {
		ran = true
		r, err := experiments.Figure5()
		exitOn(err)
		fmt.Println(r.Table())
	}
	if want("fig6") {
		ran = true
		r := experiments.Figure6(base)
		fmt.Println(r.Table())
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			exitOn(err)
			exitOn(experiments.WriteCSV(f, r.Rows))
			exitOn(f.Close())
			fmt.Printf("per-loop rows written to %s\n\n", *csvPath)
		}
	}
	if want("fig7") {
		ran = true
		fmt.Println(experiments.Figure7(base).Table())
	}
	if want("fig8") {
		ran = true
		fmt.Println(experiments.Figure8(base).Table())
	}
	if want("archsweep") {
		ran = true
		var archs []string
		if *archList != "" {
			archs = strings.Split(*archList, ",")
		}
		fmt.Println(experiments.ArchSweep(base, archs...).Table())
	}
	if want("ablation") {
		ran = true
		fmt.Println(experiments.RescheduleAblation(base).Table())
	}
	if want("power") {
		ran = true
		fmt.Println(experiments.PowerEfficiency(base).Table())
	}
	if want("registers") {
		ran = true
		fmt.Println(experiments.RegisterBenefit(base).Table())
	}
	if want("phases") {
		ran = true
		fmt.Println(experiments.PhaseBreakdown(base).Table())
	}
	if want("optgap") {
		ran = true
		fmt.Println(experiments.OptGap(base).Table())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		stopProfiles()
		os.Exit(2)
	}
}

// chaosHarness runs the fault-injection evaluation: a degradation curve
// (success rate, winning rung, II inflation versus injected fault count) and
// a mutation sweep proving the validator and simulator reject every injected
// constraint violation. A mutation escaping both checkers is a hard failure.
func chaosHarness(base experiments.Config, seed int64, trials, maxFaults int, faultSpec string) error {
	ctx := context.Background()
	fabric := arch.NewMesh(base.Rows, base.Cols, base.Regs)

	fmt.Printf("chaos: degradation sweep on %s, 0..%d faults, %d trial(s) per count, seed %d\n",
		fabric, maxFaults, trials, seed)
	curve, err := chaos.Sweep(ctx, chaos.SweepOptions{
		Fabric:    fabric,
		MaxFaults: maxFaults,
		Trials:    trials,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(curve.Table())
	for _, p := range curve.Points {
		for _, f := range p.Failures {
			fmt.Printf("  unmapped: %s\n", f)
		}
	}

	fs, err := fault.Parse(faultSpec)
	if err != nil {
		return err
	}
	if err := fs.Validate(fabric); err != nil {
		return err
	}
	fmt.Printf("\nchaos: mutation sweep on %s with faults %q\n", fabric, fs)
	outcomes, err := chaos.MutationSweep(ctx, nil, fabric, fs)
	if err != nil {
		return err
	}
	applied, caught, classes := chaos.CatchRate(outcomes)
	fmt.Printf("mutations applied %d, caught %d (%.0f%%), constraint classes %v\n",
		applied, caught, 100*float64(caught)/float64(max(applied, 1)), classes)
	for _, o := range outcomes {
		if !o.Caught() {
			fmt.Printf("  ESCAPED %s/%s: validate=%v sim=%v blamed=%q want=%q\n",
				o.Kernel, o.Mutant, o.CaughtValidate, o.CaughtSim, o.Got, o.Expected)
		}
	}
	if caught != applied {
		return fmt.Errorf("chaos: %d of %d mutations escaped the checkers", applied-caught, applied)
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
