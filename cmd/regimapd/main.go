// Command regimapd serves the mapping flow over HTTP: POST a kernel (by
// name or as inline loopir source), an array configuration, and optionally a
// fault set, and get back a validated mapping as JSON. The daemon fronts the
// engine registry with bounded-queue admission control, a content-addressed
// result cache that collapses duplicate in-flight queries, and a Prometheus
// /metrics endpoint; SIGTERM drains gracefully.
//
// Alongside the synchronous path, POST /v1/jobs submits asynchronous jobs:
// with -wal set, every acknowledged job is fsynced into a write-ahead log and
// survives kill -9 — the next start replays the log and finishes the work.
// The async path carries its own hardening: retries with backoff on transient
// failures, a circuit breaker per engine that reroutes down the
// REGIMap→EMS→DRESC ladder, and load-adaptive degradation past a queue
// watermark.
//
// Usage:
//
//	regimapd                                    # serve on :8090
//	regimapd -addr 127.0.0.1:9999 -workers 4 -queue 32
//	regimapd -cache 4096 -default-deadline 10s -max-deadline 1m
//	regimapd -wal /var/lib/regimapd/wal -job-workers 4  # durable async jobs
//	regimapd -trace trace.jsonl                 # per-request spans + engine passes
//
//	curl -s localhost:8090/v1/mappers
//	curl -s -X POST localhost:8090/v1/map -d '{"kernel":"fir8"}'
//	curl -s -X POST localhost:8090/v1/map \
//	    -d '{"source":"acc = acc + x[i]*h[i]","name":"mac","mapper":"portfolio"}'
//	curl -s -X POST localhost:8090/v1/jobs \
//	    -d '{"kernel":"fir8","idempotency_key":"fir8-run-1"}'
//	curl -s localhost:8090/v1/jobs/j-00000001
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"regimap/internal/obs"
	"regimap/internal/server"
	"regimap/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.Int("workers", 0, "max concurrent mapping computations (0: GOMAXPROCS)")
		cliqueWork  = flag.Int("clique-workers", 0, "goroutines inside each regimap clique search (<=1: sequential; results are byte-identical at any value)")
		drescRetry  = flag.Int("dresc-restarts", 0, "seed-derived annealing chains raced per II inside each dresc run (<=1: one chain; changes served placements, so part of the cache identity)")
		drescWork   = flag.Int("dresc-workers", 0, "goroutines racing the dresc restart chains (0: GOMAXPROCS; results are byte-identical at any value)")
		queue       = flag.Int("queue", 64, "max computations waiting for a worker; beyond this, requests are shed with 429")
		cacheSize   = flag.Int("cache", 1024, "result-cache capacity in entries")
		defDeadline = flag.Duration("default-deadline", 30*time.Second, "mapping deadline for requests that name none")
		maxDeadline = flag.Duration("max-deadline", 2*time.Minute, "hard cap on any request's mapping deadline")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		maxBody     = flag.Int64("max-body", 1<<20, "max request body size in bytes; larger bodies answer 413")
		walDir      = flag.String("wal", "", "directory for the async-job write-ahead log (empty: jobs are not durable)")
		jobWorkers  = flag.Int("job-workers", 2, "max concurrently executing async jobs (a pool separate from -workers)")
		jobQueue    = flag.Int("job-queue", 256, "max queued async jobs; submits beyond this answer 429")
		degradeAt   = flag.Int("degrade-watermark", 0, "queued-job count past which new jobs run on -degrade-to and are marked degraded (0: half of -job-queue; negative: disabled)")
		degradeTo   = flag.String("degrade-to", "ems", "engine that watermark-degraded jobs run on")
		jobAttempts = flag.Int("job-attempts", 3, "max execution attempts per job on transient failures")
		brFailures  = flag.Int("breaker-failures", 5, "consecutive failures that trip an engine's circuit breaker")
		brCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker waits before its half-open probe")
		brLatency   = flag.Duration("breaker-latency", 0, "when positive, consecutive engine calls slower than this also trip the breaker")
		tracePath   = flag.String("trace", "", "write observability events (request spans, engine passes, counters) as JSON lines to this file")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	var traceSink obs.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		exitOn(err)
		sink := obs.NewJSONLSink(f)
		defer func() { exitOn(sink.Close()) }()
		traceSink = sink
	}

	srv, err := server.New(server.Config{
		Workers:          *workers,
		CliqueWorkers:    *cliqueWork,
		DRESCRestarts:    *drescRetry,
		DRESCWorkers:     *drescWork,
		Queue:            *queue,
		CacheEntries:     *cacheSize,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		MaxBodyBytes:     *maxBody,
		WALDir:           *walDir,
		JobWorkers:       *jobWorkers,
		JobQueue:         *jobQueue,
		DegradeWatermark: *degradeAt,
		DegradeTo:        *degradeTo,
		JobAttempts:      *jobAttempts,
		BreakerFailures:  *brFailures,
		BreakerCooldown:  *brCooldown,
		BreakerLatency:   *brLatency,
		TraceSink:        traceSink,
		Version:          version.String(),
	})
	exitOn(err)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: on SIGTERM/SIGINT flip readiness (load balancers
	// stop routing, new mapping requests get 503) and let whatever is
	// already mapping finish before the listener closes.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "regimapd: serving on %s (%s)\n", *addr, version.String())

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "regimapd: %s received, draining\n", sig)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		// Finish acknowledged jobs before closing the listener: queued jobs
		// run to terminal states (pollable until the very end), then
		// in-flight HTTP requests complete. Jobs left unfinished when the
		// budget expires stay in the WAL for the next start to recover.
		if err := srv.FinishJobs(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "regimapd: job drain incomplete: %v\n", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "regimapd: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "regimapd: drained")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			exitOn(err)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "regimapd:", err)
		os.Exit(1)
	}
}
