package regimap_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"regimap"
	"regimap/internal/kernels"
)

// FuzzMapAndSimulate drives the whole pipeline from fuzzer-chosen knobs:
// generate a deterministic synthetic kernel, map it, validate it, lower it,
// and execute both the cycle-accurate model and the instruction words
// against the sequential reference. Run with `go test -fuzz FuzzMapAndSimulate`;
// without -fuzz the seed corpus doubles as a regression test.
func FuzzMapAndSimulate(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(20), uint8(2), uint8(4), uint8(4), uint8(4))
	f.Add(int64(7), uint8(24), uint8(0), uint8(0), uint8(2), uint8(2), uint8(2))
	f.Add(int64(42), uint8(18), uint8(40), uint8(3), uint8(4), uint8(2), uint8(8))
	f.Add(int64(-3), uint8(8), uint8(10), uint8(1), uint8(3), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, ops, memPct, rec, rows, cols, regs uint8) {
		d := regimap.RandomKernel(seed, regimap.RandomKernelOptions{
			Ops:         4 + int(ops%28),
			MemFraction: float64(memPct%100) / 100,
			Recurrence:  int(rec % 5),
		})
		c := regimap.NewMesh(1+int(rows%4), 1+int(cols%4), int(regs%8))
		m, stats, err := regimap.Map(d, c, regimap.Options{})
		if err != nil {
			return // failing to map is allowed
		}
		if stats.II < stats.MII {
			t.Fatalf("II %d beats the lower bound %d", stats.II, stats.MII)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid mapping: %v", err)
		}
		if err := regimap.Simulate(m, 4); err != nil {
			t.Fatalf("simulation mismatch: %v", err)
		}
		// Lowering may legitimately refuse when rotation windows exceed the
		// file; anything it emits must execute correctly.
		if prog, err := regimap.Emit(m); err == nil {
			if _, err := regimap.ExecuteProgram(prog, 4); err != nil {
				t.Fatalf("emitted configuration failed: %v", err)
			}
			if err := regimap.CheckProgram(m, 4); err != nil {
				t.Fatalf("configuration mis-executes: %v", err)
			}
		}
	})
}

// FuzzScheduleInvariants checks the scheduler's contract on arbitrary
// synthetic kernels: a produced schedule always satisfies its own validator.
func FuzzScheduleInvariants(f *testing.F) {
	f.Add(int64(3), uint8(10), uint8(1))
	f.Add(int64(11), uint8(25), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, ops, rec uint8) {
		d := regimap.RandomKernel(seed, regimap.RandomKernelOptions{
			Ops:        4 + int(ops%30),
			Recurrence: int(rec % 5),
		})
		// Use classification as a cheap consistency probe while we are here.
		small := kernels.Classify(d, 4, 2)
		big := kernels.Classify(d, 64, 8)
		if small == kernels.RecBounded && big == kernels.ResBounded {
			t.Fatal("growing the array turned a rec-bounded loop res-bounded")
		}
		if d.RecMII() > d.N() {
			t.Fatal("RecMII exceeds the op count")
		}
		if got := d.MII(16, 4); got < d.RecMII() || got < d.ResMII(16, 4) {
			t.Fatal("MII below one of its components")
		}
	})
}

// FuzzLoopIRParse checks the loop-body front end — the same path regimapd's
// inline-source requests go through — on arbitrary text: whatever Compile
// accepts must be a self-consistently valid DFG, and compiling the identical
// source twice must produce structurally identical graphs (the fingerprint
// regimapd keys its result cache on).
func FuzzLoopIRParse(f *testing.F) {
	f.Add("acc = acc + x[i]*h[i]")
	f.Add("d = x[i] - min(acc, 255)\nout[i] = d >> 2")
	f.Add("y = x[i]*5 - y@1*3 - y@2")
	f.Add("s = s + a[i+1] & b[i-2] // comment\nz[i] = select(s < 4, s, -s)")
	f.Add("x =")
	f.Add("a[i] = a[i] + 1")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := regimap.Compile("fuzz", src)
		if err != nil {
			return // rejecting malformed source is allowed
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("Compile accepted source but produced an invalid DFG: %v", verr)
		}
		if d.N() == 0 {
			t.Fatal("Compile accepted source but produced an empty DFG")
		}
		again, err := regimap.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("identical source failed to recompile: %v", err)
		}
		if d.Fingerprint() != again.Fingerprint() {
			t.Fatalf("recompiling identical source changed the graph fingerprint")
		}
		if d.MII(16, 4) < 1 {
			t.Fatal("MII below 1 on a non-empty graph")
		}
	})
}

// FuzzArchParse checks the architecture-grammar contract on arbitrary text:
// a description that parses must render back (String) to text that reparses
// to the structurally identical description, and whatever Compile accepts
// must be a usable fabric whose synthesized description (Describe) compiles
// back to the same fingerprint.
func FuzzArchParse(f *testing.F) {
	f.Add("grid 4x4; regs 4")
	f.Add("grid 4x4; topo mesh+; regs 4")
	f.Add("grid 4x4; topo 1hop; regs 4")
	f.Add("grid 8x8; topo torus; regs 4")
	f.Add("grid 4x4; regs 4; cap all nomem; cap col 0 all")
	f.Add("grid 4x4; regs 4; bus global cap 2")
	f.Add("grid 2x3; regs 4; bus cols; buscap 1=0\n# banked\nregs 1,2=8")
	f.Add("grid 4x4; regs 4; fanout 2; link 0,0-3,3; nolink 0,0-0,1")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := regimap.ParseArch(text)
		if err != nil {
			return // rejecting malformed text is allowed
		}
		rendered := d.String()
		again, err := regimap.ParseArch(rendered)
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", rendered, err)
		}
		if !reflect.DeepEqual(d, again) {
			t.Fatalf("roundtrip drift: %q reparses to a different description", rendered)
		}
		c, err := d.Compile()
		if err != nil {
			return // semantically invalid descriptions are allowed to fail
		}
		if c.UsablePEs() == 0 {
			t.Fatalf("%q compiled to a fabric with no usable PEs", rendered)
		}
		desc, err := c.Describe()
		if err != nil {
			t.Fatalf("freshly compiled fabric is not describable: %v", err)
		}
		c2, err := desc.Compile()
		if err != nil {
			t.Fatalf("Describe() output %q does not recompile: %v", desc, err)
		}
		if c.Fingerprint() != c2.Fingerprint() {
			t.Fatalf("describe/recompile changed the fabric fingerprint (%q)", desc)
		}
	})
}

// FuzzFaultSetParse checks the fault-grammar contract on arbitrary text: a
// set that parses must render back (String) to text that reparses to the
// same set, and a set valid for an array must apply to it cleanly with a
// fault count matching its size.
func FuzzFaultSetParse(f *testing.F) {
	f.Add("pe 1,1")
	f.Add("link 0,0-0,1; regs 2,2=1")
	f.Add("row 3~2\n# broken bus, clears after two rounds\npe 0,3")
	f.Add("pe 1,1; pe 1,1; link 0,0-1,0~4")
	f.Fuzz(func(t *testing.T, text string) {
		fs, err := regimap.ParseFaults(text)
		if err != nil {
			return // rejecting malformed text is allowed
		}
		rendered := fs.String()
		again, err := regimap.ParseFaults(rendered)
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("roundtrip drift: %q -> %q", rendered, again.String())
		}
		c := regimap.NewMesh(4, 4, 4)
		if err := fs.Validate(c); err != nil {
			return // out-of-range coordinates for this array are allowed
		}
		faulted, err := fs.Apply(c)
		if err != nil {
			t.Fatalf("valid set %q failed to apply: %v", rendered, err)
		}
		if fs.Empty() != faulted.Healthy() {
			t.Fatalf("set %q: empty=%v but fabric healthy=%v", rendered, fs.Empty(), faulted.Healthy())
		}
	})
}

// FuzzCNFEncode drives the exact SAT backend end to end on fuzzer-chosen
// tiny kernels and fabrics: whatever the encoder + CDCL solver produce must
// decode to a validated, simulator-certified mapping, and every decisive
// verdict (sat/unsat) must be reproduced by a second solver run under a
// different seed and restart schedule — an UNSAT claim that a differently
// randomized search contradicts is an encoder or solver bug.
func FuzzCNFEncode(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(0), uint8(2), uint8(2), uint8(2))
	f.Add(int64(7), uint8(9), uint8(2), uint8(2), uint8(3), uint8(1))
	f.Add(int64(42), uint8(12), uint8(1), uint8(3), uint8(2), uint8(4))
	f.Add(int64(-5), uint8(4), uint8(0), uint8(1), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, ops, rec, rows, cols, regs uint8) {
		d := regimap.RandomKernel(seed, regimap.RandomKernelOptions{
			Ops:        3 + int(ops%10),
			Recurrence: int(rec % 3),
		})
		c := regimap.NewMesh(1+int(rows%3), 1+int(cols%3), int(regs%5))
		run := func(opts regimap.ExactOptions) (*regimap.Mapping, *regimap.ExactStats, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			return regimap.MapExactContext(ctx, d, c, opts)
		}
		m, st, err := run(regimap.ExactOptions{MaxConflicts: 5_000})
		if err != nil && m == nil {
			// Infeasible or undecided under the tiny budget — both allowed.
			// Decisive verdicts still cross-check below.
		}
		if m != nil {
			if verr := m.Validate(); verr != nil {
				t.Fatalf("SAT model does not validate: %v", verr)
			}
			if serr := regimap.Simulate(m, 4); serr != nil {
				t.Fatalf("SAT model fails simulation: %v", serr)
			}
		}
		if st == nil {
			return
		}
		// Re-verify with an independently randomized search: different
		// branching seed, different restart schedule, same conflict budget.
		_, st2, _ := run(regimap.ExactOptions{MaxConflicts: 5_000, Seed: seed ^ 0x5deece66d, LubyUnit: 256})
		if st2 == nil {
			return
		}
		verdicts := map[int]string{}
		for _, v := range st.Cert.PerII {
			if v.Status == "sat" || v.Status == "unsat" {
				verdicts[v.II] = v.Status
			}
		}
		for _, v := range st2.Cert.PerII {
			if v.Status != "sat" && v.Status != "unsat" {
				continue
			}
			if want, ok := verdicts[v.II]; ok && want != v.Status {
				t.Fatalf("solver runs disagree at II=%d: %s vs %s (seed %d)", v.II, want, v.Status, seed)
			}
		}
	})
}
