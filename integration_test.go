package regimap_test

import (
	"testing"

	"regimap"
	"regimap/internal/kernels"
)

// TestSuiteMapsAndSimulates is the repository's end-to-end integration test:
// every benchmark kernel, mapped by REGIMap on the paper's main arrays, must
// validate structurally and execute bit-identically to the loop's sequential
// semantics on the cycle-accurate machine model.
func TestSuiteMapsAndSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the whole suite on three arrays")
	}
	arrays := []*regimap.CGRA{
		regimap.NewMesh(4, 4, 4),
		regimap.NewMesh(4, 4, 8),
		regimap.NewMesh(8, 8, 2),
	}
	for _, c := range arrays {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			failed := 0
			for _, k := range regimap.Kernels() {
				m, stats, err := regimap.Map(k.Build(), c, regimap.Options{})
				if err != nil {
					failed++
					t.Logf("%s: %v", k.Name, err)
					continue
				}
				if stats.II < stats.MII {
					t.Errorf("%s: II %d beats MII %d", k.Name, stats.II, stats.MII)
				}
				if err := m.Validate(); err != nil {
					t.Errorf("%s: invalid mapping: %v", k.Name, err)
				}
				if err := regimap.Simulate(m, 6); err != nil {
					t.Errorf("%s: simulation mismatch: %v", k.Name, err)
				}
			}
			if failed > 1 {
				t.Errorf("%d kernels failed to map on %s", failed, c)
			}
		})
	}
}

// TestEMSMapsAndSimulates audits the EMS baseline the same way on the main
// array (it legitimately fails on a couple of tight recurrences; what it maps
// must be correct).
func TestEMSMapsAndSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the whole suite")
	}
	c := regimap.NewMesh(4, 4, 4)
	mapped := 0
	for _, k := range regimap.Kernels() {
		m, _, err := regimap.MapEMS(k.Build(), c, regimap.EMSOptions{})
		if err != nil {
			continue
		}
		mapped++
		if err := regimap.Simulate(m, 4); err != nil {
			t.Errorf("%s: EMS mapping mis-executes: %v", k.Name, err)
		}
	}
	if mapped < 18 {
		t.Errorf("EMS mapped only %d/24 kernels", mapped)
	}
}

// TestDRESCVerifiesSuite audits the DRESC baseline's placements with its
// MRRG-level verifier across the suite.
func TestDRESCVerifiesSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("anneals the whole suite")
	}
	c := regimap.NewMesh(4, 4, 4)
	for _, k := range regimap.Kernels() {
		p, _, err := regimap.MapDRESC(k.Build(), c, regimap.DRESCOptions{Seed: 3})
		if err != nil {
			t.Logf("%s: %v", k.Name, err)
			continue
		}
		if err := p.Verify(c); err != nil {
			t.Errorf("%s: DRESC placement invalid: %v", k.Name, err)
		}
	}
}

// TestHeterogeneousArraySuite is failure-injection at suite scale: on an
// array where only half the PEs multiply and one column cannot touch memory,
// mapped kernels must still validate and simulate.
func TestHeterogeneousArraySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the whole suite")
	}
	c := regimap.NewMesh(4, 4, 4)
	allKinds := []regimap.OpKind{
		regimap.Const, regimap.Input, regimap.Add, regimap.Sub, regimap.And,
		regimap.Or, regimap.Xor, regimap.Shl, regimap.Shr, regimap.Min,
		regimap.Max, regimap.Abs, regimap.Neg, regimap.Not, regimap.CmpLT,
		regimap.CmpEQ, regimap.Select, regimap.Load, regimap.Store,
	}
	for p := 0; p < c.NumPEs(); p++ {
		if p%2 == 1 {
			c.RestrictPE(p, allKinds...) // no Mul on odd PEs
		}
	}
	mapped := 0
	for _, k := range regimap.Kernels() {
		m, _, err := regimap.Map(k.Build(), c, regimap.Options{})
		if err != nil {
			continue
		}
		mapped++
		for v, nd := range m.D.Nodes {
			if nd.Kind == regimap.Mul && m.PE[v]%2 == 1 {
				t.Fatalf("%s: multiply placed on restricted PE %d", k.Name, m.PE[v])
			}
		}
		if err := regimap.Simulate(m, 4); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
	if mapped < 20 {
		t.Errorf("only %d/24 kernels mapped on the heterogeneous array", mapped)
	}
}

// TestRandomKernelTorture cross-checks the whole pipeline on synthetic
// kernels across topologies.
func TestRandomKernelTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test")
	}
	for seed := int64(0); seed < 12; seed++ {
		d := regimap.RandomKernel(seed, regimap.RandomKernelOptions{
			Ops:         14 + int(seed),
			MemFraction: 0.15,
			Recurrence:  int(seed % 4),
		})
		for _, topo := range []regimap.Topology{regimap.Mesh, regimap.MeshPlus, regimap.Torus} {
			c := regimap.NewCGRA(4, 4, 4, topo)
			m, _, err := regimap.Map(d, c, regimap.Options{})
			if err != nil {
				continue
			}
			if err := regimap.Simulate(m, 5); err != nil {
				t.Errorf("seed %d on %v: %v", seed, topo, err)
			}
		}
	}
}

// TestClassificationStableAcrossArrays pins that boundedness is a property
// of loop x array, not of the mapper: growing the array can only move loops
// from res-bounded toward rec-bounded.
func TestClassificationStableAcrossArrays(t *testing.T) {
	for _, k := range regimap.Kernels() {
		d := k.Build()
		small := kernels.Classify(d, 4, 2)
		big := kernels.Classify(d, 64, 8)
		if small == kernels.RecBounded && big == kernels.ResBounded {
			t.Errorf("%s: rec-bounded on 2x2 but res-bounded on 8x8 (impossible)", k.Name)
		}
	}
}
