// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 6), plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks of the pipeline stages.
//
//	go test -bench=. -benchmem                  # everything (several minutes)
//	go test -bench=Figure6 -benchtime=1x        # one figure, one pass
//
// The figure benches report the paper's metrics as custom units:
// perf/MII-over-II (higher is better, 1.0 = provably optimal) and
// compile-µs/loop alongside the usual ns/op.
package regimap_test

import (
	"context"
	"fmt"
	"testing"

	"regimap"
	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/dresc"
	"regimap/internal/ems"
	"regimap/internal/experiments"
	"regimap/internal/kernels"
	"regimap/internal/obs"
	"regimap/internal/sat"
	"regimap/internal/sched"
	"regimap/internal/sim"
)

// --- figure/table benches ---------------------------------------------------

// BenchmarkFigure2 regenerates the worked example (registers cut II 4 -> 2 on
// a 1x2 array).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if r.IIWithRegisters != 2 {
			b.Fatalf("II = %d, want 2", r.IIWithRegisters)
		}
	}
}

// BenchmarkFigure5 regenerates the compatibility-graph pruning example.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// suitePass maps every kernel with one mapper on the paper's 4x4/4-regs
// array and reports the paper's metrics.
func suitePass(b *testing.B, mapper experiments.Mapper) {
	cfg := experiments.Paper4x4(4)
	for i := 0; i < b.N; i++ {
		var perfSum float64
		var compileNS int64
		mapped, total := 0, 0
		for _, k := range kernels.All() {
			row := experiments.RunLoop(k, mapper, cfg)
			total++
			compileNS += row.CompileTime.Nanoseconds()
			if row.OK {
				mapped++
				perfSum += row.Perf
			}
		}
		b.ReportMetric(perfSum/float64(mapped), "perf/loop")
		b.ReportMetric(float64(compileNS)/1e3/float64(total), "compile-µs/loop")
		b.ReportMetric(float64(mapped), "mapped")
	}
}

// BenchmarkFigure6_REGIMap..EMS regenerate the per-loop comparison of
// Figure 6; comparing the three benches' perf/loop and compile-µs/loop
// metrics reproduces both the figure and the Section 6.2 compile-time table.
func BenchmarkFigure6_REGIMap(b *testing.B) { suitePass(b, experiments.REGIMap) }
func BenchmarkFigure6_DRESC(b *testing.B)   { suitePass(b, experiments.DRESC) }
func BenchmarkFigure6_EMS(b *testing.B)     { suitePass(b, experiments.EMS) }

// BenchmarkFigure7 sweeps the register-file size (2/4/8) on the 4x4 array
// for both mappers — the paper's Figure 7 series and §6.2 ratios.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(experiments.Config{})
		for _, regs := range r.RegSizes {
			b.ReportMetric(r.Ratio(regs, kernels.ResBounded), "time-ratio-res-r"+itoa(regs))
		}
	}
}

// BenchmarkFigure8 sweeps the array size (2x2/4x4/8x8) at 2 registers per PE
// on the res-bounded group — the paper's Figure 8 series.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(experiments.Config{})
		for _, p := range r.Points {
			if p.Mapper == experiments.REGIMap {
				b.ReportMetric(p.MeanPerf, "perf-"+itoa(p.Config.Rows)+"x"+itoa(p.Config.Cols))
			}
		}
	}
}

// BenchmarkRescheduleAblation regenerates the Section 6.3 learning-from-
// failure measurement.
func BenchmarkRescheduleAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RescheduleAblation(experiments.Paper4x4(4))
		b.ReportMetric(100*float64(r.WorseRes)/float64(max(1, r.TotalRes)), "%res-worse")
		b.ReportMetric(100*float64(r.WorseRec)/float64(max(1, r.TotalRec)), "%rec-worse")
	}
}

// BenchmarkPower regenerates the Section 6.5 power-efficiency estimate.
func BenchmarkPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PowerEfficiency(experiments.Paper4x4(4))
		b.ReportMetric(r.MeanIPC, "IPC")
		b.ReportMetric(r.Estimate.EnergyRatio, "energy-advantage")
	}
}

// --- ablation benches (design choices called out in DESIGN.md §6) -----------

// ablationPass maps the whole suite with one REGIMap configuration and
// reports mean perf, so ablations are compared by their perf/loop metric.
func ablationPass(b *testing.B, opts core.Options) {
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		var perfSum float64
		mapped := 0
		for _, k := range kernels.All() {
			_, stats, err := core.Map(context.Background(), k.Build(), c, opts)
			if err != nil {
				continue
			}
			mapped++
			perfSum += stats.Perf()
		}
		b.ReportMetric(perfSum/float64(max(1, mapped)), "perf/loop")
		b.ReportMetric(float64(mapped), "mapped")
	}
}

// Learning moves on/off (§6.3 and Appendix E).
func BenchmarkAblationFullLearning(b *testing.B) { ablationPass(b, core.Options{}) }
func BenchmarkAblationNoReschedule(b *testing.B) {
	ablationPass(b, core.Options{DisableReschedule: true, DisableRouteInsertion: true, DisableThinning: true})
}
func BenchmarkAblationNoThinning(b *testing.B) {
	ablationPass(b, core.Options{DisableThinning: true})
}
func BenchmarkAblationNoRouteInsertion(b *testing.B) {
	ablationPass(b, core.Options{DisableRouteInsertion: true})
}

// The paper's conservative inter-iteration rule (Appendix A.2) vs this
// reproduction's physically-safe relaxation.
func BenchmarkAblationStrictInterIteration(b *testing.B) {
	ablationPass(b, core.Options{Compat: core.CompatOptions{StrictInterIteration: true}})
}

// Clique-search variants (Appendix D: swap repair and intersection
// re-seeding).
func BenchmarkAblationCliqueNoSwap(b *testing.B) {
	ablationPass(b, core.Options{Clique: clique.Options{DisableSwap: true}})
}
func BenchmarkAblationCliqueNoIntersect(b *testing.B) {
	ablationPass(b, core.Options{Clique: clique.Options{DisableIntersect: true}})
}

// BenchmarkAblationPruning measures the paper's scheduling-prunes-the-
// product-graph claim: compatibility-graph nodes per (ops x PEs x II) raw
// product nodes across the suite.
func BenchmarkAblationPruning(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		var compatNodes, productNodes int
		for _, k := range kernels.All() {
			d := k.Build()
			sc := sched.New(d, c.NumPEs(), c.Rows)
			ii := sc.MII()
			res, err := sc.ScheduleMinII(ii, ii+8, sched.Options{})
			if err != nil {
				continue
			}
			cg, err := core.BuildCompat(d, c, res.Time, res.II, core.CompatOptions{})
			if err != nil {
				continue
			}
			compatNodes += cg.Nodes()
			productNodes += d.N() * c.NumPEs() * res.II
		}
		b.ReportMetric(float64(compatNodes)/float64(productNodes), "compat/product")
	}
}

// --- micro-benchmarks of the pipeline stages --------------------------------

func benchKernel() *dfg.DFG {
	k, _ := kernels.ByName("sobel")
	return k.Build()
}

// BenchmarkScheduler measures one iterative-modulo-scheduling pass.
func BenchmarkScheduler(b *testing.B) {
	d := benchKernel()
	sc := sched.New(d, 16, 4)
	ii := sc.MII()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Schedule(ii, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCompat measures compatibility-graph construction.
func BenchmarkBuildCompat(b *testing.B) {
	d := benchKernel()
	c := arch.NewMesh(4, 4, 4)
	sc := sched.New(d, 16, 4)
	res, err := sc.Schedule(sc.MII()+1, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildCompat(d, c, res.Time, res.II, core.CompatOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCliqueFind measures the weight-constrained clique search on a
// realistic compatibility graph.
func BenchmarkCliqueFind(b *testing.B) {
	d := benchKernel()
	c := arch.NewMesh(4, 4, 4)
	sc := sched.New(d, 16, 4)
	res, err := sc.Schedule(sc.MII()+1, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cg, err := core.BuildCompat(d, c, res.Time, res.II, core.CompatOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clique.Find(cg.G, d.N(), clique.Options{})
	}
}

// BenchmarkCliqueFindParallel measures the same search with the parallel
// engine at several worker counts. Results are byte-identical to the
// sequential engine (DESIGN.md section 8g); only wall-clock may differ, so
// the bench-compare job tracks these series alongside BenchmarkCliqueFind.
func BenchmarkCliqueFindParallel(b *testing.B) {
	d := benchKernel()
	c := arch.NewMesh(4, 4, 4)
	sc := sched.New(d, 16, 4)
	res, err := sc.Schedule(sc.MII()+1, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cg, err := core.BuildCompat(d, c, res.Time, res.II, core.CompatOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := clique.NewPool()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clique.Find(cg.G, d.N(), clique.Options{Workers: w, Arenas: pool})
			}
		})
	}
}

// BenchmarkMapREGIMap measures an end-to-end REGIMap run on one kernel.
func BenchmarkMapREGIMap(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Map(context.Background(), benchKernel(), c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapREGIMapParallel is the end-to-end run with the clique search
// parallelized, the configuration the ISSUE's 8-worker latency target is
// measured on.
func BenchmarkMapREGIMapParallel(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := core.Options{Clique: clique.Options{Workers: w, Arenas: clique.NewPool()}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Map(context.Background(), benchKernel(), c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsNilSink measures the disabled-observability fast path: the
// exact span/point sequence one pipeline attempt emits, against the nil
// tracer a run with no -trace flag sees. The mappers instrument
// unconditionally, so this path sits inside every hot loop — the contract is
// 0 allocs/op (pinned here and by obs.TestNilTracerZeroAlloc) and
// single-digit nanoseconds, and the CI bench-compare job fails if either
// regresses.
func BenchmarkObsNilSink(b *testing.B) {
	tr := obs.From(context.Background()).Named("bench", "kernel")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Point1("mii", "mii", 3)
		sp := tr.Start("pass.schedule")
		sp.Field("length", 21).Field("width", 16).FieldBool("ok", true)
		sp.End()
		tr.Point("map.done", "ii", 6, "mii", 3, "attempts", int64(i))
	}
}

// BenchmarkMapDRESC measures an end-to-end DRESC run on the same kernel.
func BenchmarkMapDRESC(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, _, err := dresc.Map(context.Background(), benchKernel(), c, dresc.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapDRESCParallel measures DRESC with restart racing: 4
// seed-derived annealing chains per II reduced deterministically
// (lowest-index success wins), across worker counts. The placement is
// identical at every worker count — the sweep shows how much wall-clock the
// same search costs as parallelism varies, the configuration the multi-core
// latency target is measured on.
func BenchmarkMapDRESCParallel(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := dresc.Options{Seed: int64(i), Restarts: 4, Workers: w}
				if _, _, err := dresc.Map(context.Background(), benchKernel(), c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapEMS measures an end-to-end EMS run on the same kernel.
func BenchmarkMapEMS(b *testing.B) {
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, _, err := ems.Map(context.Background(), benchKernel(), c, ems.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures the cycle-accurate functional simulator.
func BenchmarkSimulate(b *testing.B) {
	m, _, err := regimap.Map(benchKernel(), regimap.NewMesh(4, 4, 4), regimap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Check(m, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRRG measures modulo-routing-resource-graph construction (the
// DRESC substrate).
func BenchmarkMRRG(b *testing.B) {
	c := arch.NewMesh(8, 8, 4)
	for i := 0; i < b.N; i++ {
		arch.BuildMRRG(c, 8)
	}
}

// BenchmarkBuildAdjacency measures fabric construction — topology adjacency
// bitsets included — at the largest supported grid. Every described
// architecture pays this once per Compile/Lookup, so regressions here tax
// the whole zoo.
func BenchmarkBuildAdjacency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch.New(64, 64, 4, arch.Torus)
	}
}

// BenchmarkArchFingerprint measures the arch/v2 fingerprint (whole-word
// adjacency hashing) at the largest supported grid. The fingerprint keys
// regimapd's memo cache, so it runs on every request.
func BenchmarkArchFingerprint(b *testing.B) {
	c := arch.New(64, 64, 4, arch.Torus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fingerprint()
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkEmitAndExecute measures the backend: lowering a mapping to
// instruction words and executing them for 8 iterations.
func BenchmarkEmitAndExecute(b *testing.B) {
	m, _, err := regimap.Map(benchKernel(), regimap.NewMesh(4, 4, 8), regimap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := regimap.Emit(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := regimap.ExecuteProgram(prog, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the loop front end on a realistic body.
func BenchmarkCompile(b *testing.B) {
	const src = "y = 5*x[i] + 3*x[i-1] - 2*y@1 - y@2\nout[i] = min(max(y, 0-128), 127)"
	for i := 0; i < b.N; i++ {
		if _, err := regimap.Compile("biquad", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSATSolve measures the CDCL core on a pigeonhole instance — 8
// pigeons into 7 holes, UNSAT — the classic resolution-hard family, so the
// time is spent where real encodings spend it: conflict analysis, clause
// learning, and backtracking, not unit propagation of an easy formula.
func BenchmarkSATSolve(b *testing.B) {
	const pigeons, holes = 8, 7
	for i := 0; i < b.N; i++ {
		s := sat.New(sat.Options{})
		vars := make([][]int, pigeons)
		for p := range vars {
			vars[p] = make([]int, holes)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]sat.Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = sat.Pos(vars[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p := 0; p < pigeons; p++ {
				for q := p + 1; q < pigeons; q++ {
					s.AddClause(sat.Neg(vars[p][h]), sat.Neg(vars[q][h]))
				}
			}
		}
		st, err := s.Solve(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if st != sat.Unsat {
			b.Fatalf("pigeonhole(%d,%d) solved as %v", pigeons, holes, st)
		}
	}
}

// BenchmarkMapExact measures the exact backend end to end on a suite kernel
// it proves optimal: encode, solve, decode, validate, simulate, per II from
// MII up.
func BenchmarkMapExact(b *testing.B) {
	d, ok := kernels.ByName("iir_biquad")
	if !ok {
		b.Fatal("iir_biquad missing")
	}
	c := arch.NewMesh(4, 4, 4)
	for i := 0; i < b.N; i++ {
		k := d.Build()
		m, st, err := regimap.MapExactContext(context.Background(), k, c, regimap.ExactOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if m == nil || st.Cert.OptimalII == 0 {
			b.Fatalf("iir_biquad not proven optimal: %+v", st.Cert)
		}
	}
}
