// Architecture exploration: sweep register-file size, array size, and
// interconnect topology for one kernel — the design-space questions the
// paper's Figures 7 and 8 ask, usable for any kernel via the public API.
//
//	go run ./examples/sweep [kernel]
package main

import (
	"fmt"
	"os"

	"regimap"
)

func main() {
	name := "h264_sad"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	k, ok := regimap.KernelByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
		os.Exit(2)
	}
	fmt.Printf("design-space sweep for %s (%s)\n\n", k.Name, k.Description)

	fmt.Println("register-file size on a 4x4 mesh (the paper's Figure 7 axis):")
	for _, regs := range []int{0, 1, 2, 4, 8} {
		report(k, regimap.NewMesh(4, 4, regs))
	}

	fmt.Println("\narray size with 2 registers/PE (the paper's Figure 8 axis):")
	for _, size := range []int{2, 4, 8} {
		report(k, regimap.NewMesh(size, size, 2))
	}

	fmt.Println("\ninterconnect topology on 4x4 with 2 registers/PE:")
	for _, topo := range []regimap.Topology{regimap.Mesh, regimap.MeshPlus, regimap.Torus} {
		report(k, regimap.NewCGRA(4, 4, 2, topo))
	}
}

func report(k regimap.Kernel, c *regimap.CGRA) {
	d := k.Build()
	m, stats, err := regimap.Map(d, c, regimap.Options{})
	if err != nil {
		fmt.Printf("  %-24s unmappable (%v MII=%d)\n", c, stats.Elapsed, stats.MII)
		return
	}
	res, err := regimap.Run(m, 8)
	if err != nil {
		fmt.Printf("  %-24s INVALID: %v\n", c, err)
		return
	}
	peak := 0
	for _, occ := range res.MaxRF {
		if occ > peak {
			peak = occ
		}
	}
	fmt.Printf("  %-24s II=%-3d perf=%.2f  IPC=%-5.1f peak regs used=%d  (%v)\n",
		c, stats.II, stats.Perf(), m.IPC(), peak, stats.Elapsed)
}
