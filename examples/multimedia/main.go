// Multimedia pipeline: map the DSP half of the benchmark suite — the
// workloads the paper's introduction motivates (filters, transforms, pixel
// kernels) — and show how register files buy performance: every kernel is
// mapped twice, with and without local register files.
//
//	go run ./examples/multimedia
package main

import (
	"fmt"

	"regimap"
)

func main() {
	withRegs := regimap.NewMesh(4, 4, 4)
	noRegs := regimap.NewMesh(4, 4, 0)

	fmt.Println("multimedia suite on a 4x4 CGRA: II with 4 registers/PE vs none")
	fmt.Printf("%-16s %4s  %12s %15s %10s\n", "kernel", "MII", "II (4 regs)", "II (no regs)", "regs help")
	for _, k := range regimap.Kernels() {
		if k.Suite != "dsp" {
			continue
		}
		d := k.Build()
		m, stats, err := regimap.Map(d, withRegs, regimap.Options{})
		if err != nil {
			fmt.Printf("%-16s failed with registers: %v\n", k.Name, err)
			continue
		}
		if err := regimap.Simulate(m, 8); err != nil {
			fmt.Printf("%-16s simulation mismatch: %v\n", k.Name, err)
			continue
		}
		iiNo := "-"
		help := "n/a"
		if _, statsNo, err := regimap.Map(k.Build(), noRegs, regimap.Options{}); err == nil {
			iiNo = fmt.Sprintf("%d", statsNo.II)
			if statsNo.II > stats.II {
				help = fmt.Sprintf("%.2fx", float64(statsNo.II)/float64(stats.II))
			} else {
				help = "even"
			}
		} else {
			iiNo = "failed"
			help = "required"
		}
		fmt.Printf("%-16s %4d  %12d %15s %10s\n", k.Name, stats.MII, stats.II, iiNo, help)
	}
	fmt.Println("\nevery mapping above was verified by cycle-accurate functional simulation")
}
