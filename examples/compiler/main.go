// Compiler front end: write the loop as source, compile it to a data-flow
// graph, map it, and execute the emitted instruction words — the full
// source-to-machine flow the paper builds inside GCC, here as a library.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"regimap"
)

const source = `
	// complex multiply-accumulate, the su3 inner-loop shape
	re = re + ar[i]*br[i] - ai[i]*bi[i]
	im = im + ar[i]*bi[i] + ai[i]*br[i]
	mag[i] = abs(re) + abs(im)
`

func main() {
	d, err := regimap.Compile("cmac", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %s\n", d.Name, d.Summary())

	cgra := regimap.NewMesh(4, 4, 4)
	m, stats, err := regimap.Map(d, cgra, regimap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped at II=%d (MII=%d) in %v\n\n", stats.II, stats.MII, stats.Elapsed)

	prog, err := regimap.Emit(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog)
	if err := regimap.CheckProgram(m, 10); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsource -> DFG -> mapping -> instruction words -> execution: bit-identical over 10 iterations")
}
