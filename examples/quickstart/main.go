// Quickstart: map a benchmark kernel onto the paper's 4x4 CGRA, inspect the
// result, and prove it executes correctly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regimap"
)

func main() {
	// The 8-tap FIR filter from the suite — a resource-bounded multimedia
	// loop of the kind the paper's introduction motivates.
	kernel, ok := regimap.KernelByName("fir8")
	if !ok {
		log.Fatal("fir8 missing from the suite")
	}
	d := kernel.Build()
	fmt.Printf("kernel: %s (%s)\n", kernel.Name, kernel.Description)
	fmt.Println(d.Summary())

	// The paper's array: a 4x4 PE mesh with 4 rotating registers per PE.
	cgra := regimap.NewMesh(4, 4, 4)

	// REGIMap: modulo scheduling + clique-based placement and register
	// allocation, learning from failed attempts.
	m, stats, err := regimap.Map(d, cgra, regimap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmapped at II=%d (lower bound MII=%d, performance %.2f) in %v\n",
		stats.II, stats.MII, stats.Perf(), stats.Elapsed)
	fmt.Printf("learning: %d attempts, %d reschedules, %d routing nodes inserted\n\n",
		stats.Attempts, stats.Reschedules, stats.RouteInserts)

	// The kernel configuration: one row per modulo cycle, one column per PE.
	fmt.Print(m)
	fmt.Printf("register pressure per PE: %v (files hold %d)\n\n", m.RegisterPressure(), cgra.NumRegs)

	// Prove the mapping computes exactly what the loop means: execute 16
	// iterations on the cycle-accurate CGRA model and compare every value
	// with the sequential reference interpreter.
	if err := regimap.Simulate(m, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Println("functional simulation: 16 iterations bit-identical to the reference interpreter")
}
