// Baseline shoot-out: run REGIMap, DRESC (simulated annealing), and EMS
// (edge-centric greedy) on the same kernels and compare achieved II and
// compile time — a miniature of the paper's Figure 6 through the public API.
//
//	go run ./examples/baselines [kernel ...]
package main

import (
	"fmt"
	"os"
	"time"

	"regimap"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = []string{"sobel", "hmmer_viterbi", "iir_biquad", "matmul4_inner"}
	}
	cgra := regimap.NewMesh(4, 4, 4)
	fmt.Printf("mapper comparison on %s\n\n", cgra)
	fmt.Printf("%-16s %4s  %-22s %-22s %-22s\n", "kernel", "MII", "REGIMap", "DRESC", "EMS")

	for _, name := range names {
		k, ok := regimap.KernelByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown kernel %q\n", name)
			continue
		}
		var mii int

		regCell := func() string {
			t0 := time.Now()
			_, stats, err := regimap.Map(k.Build(), cgra, regimap.Options{})
			mii = stats.MII
			if err != nil {
				return "failed"
			}
			return fmt.Sprintf("II=%-2d %8v", stats.II, time.Since(t0).Round(time.Millisecond))
		}()
		drescCell := func() string {
			t0 := time.Now()
			_, stats, err := regimap.MapDRESC(k.Build(), cgra, regimap.DRESCOptions{Seed: 1})
			if err != nil {
				return "failed"
			}
			return fmt.Sprintf("II=%-2d %8v", stats.II, time.Since(t0).Round(time.Millisecond))
		}()
		emsCell := func() string {
			t0 := time.Now()
			_, stats, err := regimap.MapEMS(k.Build(), cgra, regimap.EMSOptions{})
			if err != nil {
				return "failed"
			}
			return fmt.Sprintf("II=%-2d %8v", stats.II, time.Since(t0).Round(time.Millisecond))
		}()
		fmt.Printf("%-16s %4d  %-22s %-22s %-22s\n", name, mii, regCell, drescCell, emsCell)
	}
	fmt.Println("\nlower II is better; REGIMap's constructive search reaches its II in a")
	fmt.Println("fraction of the annealing baseline's time (the paper's Section 6.2 claim)")
}
