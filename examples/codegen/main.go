// Code generation: lower a mapped kernel all the way to the instruction
// words a CGRA executes — operand routing selectors and rotating-register
// indices — then run those words on the machine-level executor and verify
// against the loop's sequential semantics.
//
//	go run ./examples/codegen [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"regimap"
)

func main() {
	name := "iir_biquad"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	k, ok := regimap.KernelByName(name)
	if !ok {
		log.Fatalf("unknown kernel %q", name)
	}
	d := k.Build()
	cgra := regimap.NewMesh(4, 4, 4)

	m, stats, err := regimap.Map(d, cgra, regimap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s mapped at II=%d on %s\n\n", k.Name, stats.II, cgra)

	prog, err := regimap.Emit(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog)

	res, err := regimap.ExecuteProgram(prog, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %d machine cycles (12 loop iterations)\n", res.Cycles)
	if err := regimap.CheckProgram(m, 12); err != nil {
		log.Fatal(err)
	}
	fmt.Println("instruction-level execution bit-identical to the loop's sequential semantics")
}
