// Golden equivalence suite: every benchmark kernel mapped by every engine,
// with the resulting mapping hashed and compared against
// testdata/golden_mappings.json. The file was generated before the
// pass-pipeline refactor, so a passing run proves the refactored mappers
// still produce byte-identical results on the whole suite.
//
// Regenerate (only when an intentional algorithm change lands) with:
//
//	go test -run TestGoldenMappings -update-golden .
package regimap_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"regimap"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_mappings.json from the current mappers")

const goldenPath = "testdata/golden_mappings.json"

// goldenDRESC is a reduced-but-fixed annealing budget: large enough to map
// most of the suite, small enough that the golden run stays in test time.
// What matters is determinism, not quality — the same options must produce
// the same placement before and after any refactor.
func goldenDRESC() regimap.DRESCOptions {
	return regimap.DRESCOptions{Seed: 7, MovesPerTemperature: 6 * 16, Cooling: 0.8}
}

// goldenHash canonicalizes one mapping outcome to a short digest.
func goldenHash(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:8])
}

// goldenRun maps one kernel with one engine and returns the canonical text
// the digest is computed over. Failures hash too: an engine that starts
// failing (or succeeding) where it did not before is also a behaviour change.
func goldenRun(t *testing.T, engine, kernel string) string {
	t.Helper()
	k, ok := regimap.KernelByName(kernel)
	if !ok {
		t.Fatalf("kernel %q disappeared", kernel)
	}
	d := k.Build()
	c := regimap.NewMesh(4, 4, 4)
	switch engine {
	case "regimap":
		m, stats, err := regimap.Map(d, c, regimap.Options{})
		if err != nil {
			return fmt.Sprintf("unmapped MII=%d", stats.MII)
		}
		return fmt.Sprintf("II=%d attempts=%d routes=%d\n%s", stats.II, stats.Attempts, stats.RouteInserts, m)
	case "ems":
		m, stats, err := regimap.MapEMS(d, c, regimap.EMSOptions{})
		if err != nil {
			return fmt.Sprintf("unmapped MII=%d", stats.MII)
		}
		return fmt.Sprintf("II=%d placements=%d routes=%d\n%s", stats.II, stats.Placements, stats.Routes, m)
	case "dresc":
		p, stats, err := regimap.MapDRESC(d, c, goldenDRESC())
		if err != nil {
			return fmt.Sprintf("unmapped MII=%d", stats.MII)
		}
		return fmt.Sprintf("II=%d moves=%d time=%v pe=%v paths=%v", p.II, stats.Moves, p.Time, p.PE, p.Paths)
	default:
		t.Fatalf("unknown golden engine %q", engine)
		return ""
	}
}

func TestGoldenMappings(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite maps every kernel with every engine; skipped in -short")
	}
	engines := []string{"regimap", "ems", "dresc"}
	type key = string // "engine/kernel"
	got := map[key]string{}
	for _, eng := range engines {
		for _, k := range regimap.Kernels() {
			got[eng+"/"+k.Name] = goldenHash(goldenRun(t, eng, k.Name))
		}
	}
	checkOrUpdateGolden(t, goldenPath, got)
}

// checkOrUpdateGolden compares digests against the golden file at path, or
// rewrites it under -update-golden.
func checkOrUpdateGolden(t *testing.T, path string, got map[string]string) {
	t.Helper()
	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		blob, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), path)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, suite produced %d (set changed? regenerate with -update-golden)", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: in golden file but not produced by the suite", k)
			continue
		}
		if g != w {
			t.Errorf("%s: mapping changed: digest %s, golden %s", k, g, w)
		}
	}
}

// goldenArchPath pins mapping determinism across the named-architecture zoo:
// a fixed kernel subset mapped by REGIMap on every registered architecture.
// The digests prove described fabrics (diagonals, torus wrap, heterogeneous
// capabilities, banked buses) map deterministically, not just the paper's
// default mesh.
const goldenArchPath = "testdata/golden_archzoo.json"

func TestGoldenArchZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("arch-zoo golden suite maps kernels on every zoo member; skipped in -short")
	}
	kernelSubset := []string{"dotprod_sat", "median3", "iir_biquad"}
	got := map[string]string{}
	for _, name := range regimap.ArchNames() {
		for _, kn := range kernelSubset {
			k, ok := regimap.KernelByName(kn)
			if !ok {
				t.Fatalf("kernel %q disappeared", kn)
			}
			c, err := regimap.ResolveArch(name)
			if err != nil {
				t.Fatalf("arch %q: %v", name, err)
			}
			var text string
			m, stats, err := regimap.Map(k.Build(), c, regimap.Options{})
			if err != nil {
				text = fmt.Sprintf("unmapped MII=%d", stats.MII)
			} else {
				text = fmt.Sprintf("II=%d attempts=%d routes=%d\n%s", stats.II, stats.Attempts, stats.RouteInserts, m)
			}
			got[name+"/"+kn] = goldenHash(text)
		}
	}
	checkOrUpdateGolden(t, goldenArchPath, got)
}

// TestGoldenMappingsWorkerSweep proves the parallel clique engine's
// deterministic reduction end to end: every kernel mapped with 1, 2, and 8
// clique workers must produce byte-identical canonical text. Workers=1 is
// the sequential engine (also covered against the golden file above), so a
// sweep failure isolates the parallel reduction, not an algorithm change.
// CI re-runs this sweep under -race at several GOMAXPROCS values.
func TestGoldenMappingsWorkerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep maps every kernel three times; skipped in -short")
	}
	for _, k := range regimap.Kernels() {
		var want string
		for _, w := range []int{1, 2, 8} {
			d := k.Build()
			c := regimap.NewMesh(4, 4, 4)
			opts := regimap.Options{}
			opts.Clique.Workers = w
			var text string
			m, stats, err := regimap.Map(d, c, opts)
			if err != nil {
				text = fmt.Sprintf("unmapped MII=%d", stats.MII)
			} else {
				text = fmt.Sprintf("II=%d attempts=%d routes=%d\n%s", stats.II, stats.Attempts, stats.RouteInserts, m)
			}
			if w == 1 {
				want = text
				continue
			}
			if text != want {
				t.Errorf("kernel %s: mapping at %d clique workers differs from sequential:\n--- workers=1\n%s\n--- workers=%d\n%s",
					k.Name, w, want, w, text)
			}
		}
	}
}
