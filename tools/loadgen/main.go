// Command loadgen drives regimapd's async job API for soak and chaos tests:
// it submits N jobs with deterministic idempotency keys, retries every submit
// and poll through connection failures and 429s — exactly what a well-behaved
// client does while the daemon is being killed and restarted under it — and
// records each acknowledged job as one JSON line.
//
// Generate load (keeps retrying across a daemon restart):
//
//	loadgen -addr localhost:8090 -jobs 50 -prefix soak -out acked.jsonl
//
// Verify after the dust settles (the chaos soak's acceptance step):
//
//	loadgen -addr localhost:8090 -verify acked.jsonl
//
// Verify polls every acknowledged job to a terminal state, then re-submits
// each idempotency key and asserts the daemon acks the same job ID with the
// same terminal content — proving no acknowledged job was lost or re-run into
// a different answer by the crash. Exit status is non-zero on any violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// ack is one acknowledged submit, as written to -out. Body is kept so verify
// can re-submit the identical request under the same key.
type ack struct {
	Key  string `json:"key"`
	ID   string `json:"id"`
	Body string `json:"body"`
}

// jobView mirrors the server's wire job shape (the fields verify needs).
type jobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Mapper   string          `json:"mapper"`
	Degraded bool            `json:"degraded"`
	Result   json.RawMessage `json:"result"`
	Error    string          `json:"error"`
	Class    string          `json:"class"`
}

func main() {
	var (
		addr       = flag.String("addr", "localhost:8090", "regimapd host:port")
		jobs       = flag.Int("jobs", 20, "jobs to submit")
		kernel     = flag.String("kernel", "fir8", "kernel every job maps")
		mapper     = flag.String("mapper", "regimap", "engine every job requests")
		deadlineMS = flag.Int("deadline-ms", 0, "per-job mapping deadline (0: server default)")
		varyII     = flag.Int("vary-ii", 0, "rotate min_ii over 1..N so jobs are distinct mapping problems instead of one cache entry (0: identical jobs)")
		interval   = flag.Duration("interval", 20*time.Millisecond, "pause between submits")
		timeout    = flag.Duration("timeout", 2*time.Minute, "overall budget for the run")
		prefix     = flag.String("prefix", "loadgen", "idempotency-key prefix (keys are prefix-0..N-1)")
		out        = flag.String("out", "", "append acknowledged jobs as JSON lines to this file")
		verify     = flag.String("verify", "", "verify mode: read acked jobs from this file and check them")
	)
	flag.Parse()
	base := "http://" + *addr
	deadline := time.Now().Add(*timeout)

	if *verify != "" {
		os.Exit(runVerify(base, *verify, deadline))
	}
	os.Exit(runSubmit(base, *jobs, *kernel, *mapper, *deadlineMS, *varyII, *interval, *prefix, *out, deadline))
}

// runSubmit pushes the jobs in, retrying each submit until it is durably
// acknowledged. Connection errors and 429/503 answers are retried: during a
// chaos soak the daemon is down part of the time, and the idempotency key
// makes the retries safe.
func runSubmit(base string, jobs int, kernel, mapper string, deadlineMS, varyII int, interval time.Duration, prefix, out string, deadline time.Time) int {
	var sink io.Writer = io.Discard
	if out != "" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)

	acked := 0
	for i := 0; i < jobs; i++ {
		key := fmt.Sprintf("%s-%d", prefix, i)
		minII := 0
		if varyII > 0 {
			minII = 1 + i%varyII
		}
		body := fmt.Sprintf(`{"kernel":%q,"mapper":%q,"deadline_ms":%d,"min_ii":%d,"idempotency_key":%q}`,
			kernel, mapper, deadlineMS, minII, key)
		id, err := submitUntilAcked(base, body, deadline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: submit %s: %v\n", key, err)
			return 1
		}
		if err := enc.Encode(ack{Key: key, ID: id, Body: body}); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		acked++
		time.Sleep(interval)
	}
	fmt.Printf("loadgen: %d/%d jobs acknowledged\n", acked, jobs)
	return 0
}

// submitUntilAcked retries one submit until the daemon durably acks it.
func submitUntilAcked(base, body string, deadline time.Time) (string, error) {
	for {
		id, retry, err := submitOnce(base, body)
		if err == nil {
			return id, nil
		}
		if !retry || time.Now().After(deadline) {
			return "", err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submitOnce makes one submit attempt. retry says whether the failure is the
// kind a patient client rides out (daemon down, overloaded, draining).
func submitOnce(base, body string) (id string, retry bool, err error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", true, err // connection refused: the daemon is mid-restart
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", true, err
	}
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		var v jobView
		if err := json.Unmarshal(blob, &v); err != nil {
			return "", false, fmt.Errorf("ack body %q: %w", blob, err)
		}
		return v.ID, false, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return "", true, fmt.Errorf("status %d: %s", resp.StatusCode, blob)
	default:
		return "", false, fmt.Errorf("status %d: %s", resp.StatusCode, blob)
	}
}

// runVerify is the acceptance check: every acknowledged job must reach a
// terminal state, and re-submitting its key must ack the same job with the
// same content.
func runVerify(base, path string, deadline time.Time) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	defer f.Close()

	acks := make([]ack, 0, 64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var a ack
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: bad ack line %q: %v\n", line, err)
			return 1
		}
		acks = append(acks, a)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	if len(acks) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: nothing to verify")
		return 1
	}

	violations := 0
	terminal := map[string]jobView{}
	for _, a := range acks {
		v, err := pollTerminal(base, a.ID, deadline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: LOST %s (%s): %v\n", a.ID, a.Key, err)
			violations++
			continue
		}
		terminal[a.Key] = v
	}
	// Exactly-once at the API surface: the same key acks the same job with
	// the same terminal content, not a rerun with a fresh ID.
	for _, a := range acks {
		want, ok := terminal[a.Key]
		if !ok {
			continue
		}
		body := a.Body
		if body == "" {
			body = fmt.Sprintf(`{"kernel":"fir8","idempotency_key":%q}`, a.Key)
		}
		id, err := submitUntilAcked(base, body, deadline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: resubmit %s: %v\n", a.Key, err)
			violations++
			continue
		}
		if id != want.ID {
			fmt.Fprintf(os.Stderr, "loadgen: DUPLICATED %s: resubmit acked %s, want %s\n", a.Key, id, want.ID)
			violations++
			continue
		}
		again, err := pollTerminal(base, id, deadline)
		if err != nil || again.State != want.State || string(again.Result) != string(want.Result) {
			fmt.Fprintf(os.Stderr, "loadgen: DIVERGED %s: %v\n", a.Key, err)
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d violations across %d acknowledged jobs\n", violations, len(acks))
		return 1
	}
	fmt.Printf("loadgen: verified %d acknowledged jobs: none lost, none duplicated\n", len(acks))
	return 0
}

// pollTerminal polls one job until it is done or failed.
func pollTerminal(base, id string, deadline time.Time) (jobView, error) {
	for {
		v, retry, err := getJob(base, id)
		switch {
		case err == nil && (v.State == "done" || v.State == "failed"):
			return v, nil
		case err != nil && !retry:
			return jobView{}, err
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("still %s at the verification deadline", v.State)
			}
			return jobView{}, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// getJob makes one poll attempt; retry mirrors submitOnce's classification.
func getJob(base, id string) (v jobView, retry bool, err error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return jobView{}, true, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobView{}, true, err
	}
	if resp.StatusCode != http.StatusOK {
		// 404 is the fatal one: an acknowledged job the daemon no longer
		// knows is exactly the loss the soak exists to catch.
		return jobView{}, false, fmt.Errorf("status %d: %s", resp.StatusCode, blob)
	}
	if err := json.Unmarshal(blob, &v); err != nil {
		return jobView{}, false, err
	}
	return v, false, nil
}
