// Command benchjson converts `go test -bench` output into a stable JSON
// baseline and compares fresh bench output against a committed baseline.
//
// Writing a baseline (tools/bench.sh drives this):
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -write BENCH_baseline.json
//
// Comparing (CI's bench-compare job):
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x . | \
//	    go run ./tools/benchjson -compare BENCH_baseline.json -max-regress 1.30
//
// The compare mode exits non-zero when any benchmark present in both the
// baseline and the fresh output regressed its ns/op by more than the allowed
// factor. Benchmarks faster than -min-ns in the baseline are ignored: at
// -benchtime=1x their timing is dominated by scheduler noise, and failing CI
// on them would only teach people to ignore the job.
//
// All the parsing and comparison logic lives in internal/benchjson; this
// wrapper only owns flags and exit codes.
package main

import (
	"flag"
	"fmt"
	"os"

	"regimap/internal/benchjson"
)

func main() {
	var (
		write           = flag.String("write", "", "write the parsed benchmarks as a JSON baseline to this file")
		compare         = flag.String("compare", "", "compare stdin bench output against this JSON baseline")
		maxRegress      = flag.Float64("max-regress", 1.30, "compare: fail when ns/op exceeds baseline by this factor")
		minNs           = flag.Float64("min-ns", 100e3, "compare: ignore benchmarks whose baseline ns/op is below this")
		maxAllocRegress = flag.Float64("max-alloc-regress", 0, "compare: fail when allocs/op or B/op exceed baseline by this factor (0: disabled)")
		minAllocs       = flag.Float64("min-allocs", 64, "compare: skip the allocs/op check when baseline allocs/op is below this")
		minBytes        = flag.Float64("min-bytes", 4096, "compare: skip the B/op check when baseline B/op is below this")
		note            = flag.String("note", "", "write: free-form provenance note stored in the baseline")
	)
	flag.Parse()
	if (*write == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -write or -compare is required")
		os.Exit(2)
	}

	parsed, err := benchjson.Parse(os.Stdin)
	exitOn(err)

	if *write != "" {
		exitOn(benchjson.WriteBaseline(*write, *note, parsed))
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(parsed), *write)
		return
	}

	base, err := benchjson.LoadBaseline(*compare)
	exitOn(err)
	verdicts, err := benchjson.Compare(parsed, base, benchjson.CompareOptions{
		MaxRegress:      *maxRegress,
		MinNs:           *minNs,
		MaxAllocRegress: *maxAllocRegress,
		MinAllocs:       *minAllocs,
		MinBytes:        *minBytes,
	})
	benchjson.Report(os.Stdout, verdicts)
	exitOn(err)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
