// Command benchjson converts `go test -bench` output into a stable JSON
// baseline and compares fresh bench output against a committed baseline.
//
// Writing a baseline (tools/bench.sh drives this):
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -write BENCH_baseline.json
//
// Comparing (CI's bench-compare job):
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x . | \
//	    go run ./tools/benchjson -compare BENCH_baseline.json -max-regress 1.30
//
// The compare mode exits non-zero when any benchmark present in both the
// baseline and the fresh output regressed its ns/op by more than the allowed
// factor. Benchmarks faster than -min-ns in the baseline are ignored: at
// -benchtime=1x their timing is dominated by scheduler noise, and failing CI
// on them would only teach people to ignore the job.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed metrics. NsPerOp/BytesPerOp/AllocsPerOp
// mirror testing.B's standard units; Metrics carries b.ReportMetric custom
// units (perf/loop, compile-µs/loop, ...).
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_baseline.json shape.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output and returns name -> result. The -N
// GOMAXPROCS suffix is stripped so baselines transfer between machines.
func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := map[string]Result{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines are: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		res := out[name] // merged: the same bench may appear in several passes
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		out[name] = res
	}
	return out, r.Err()
}

func main() {
	var (
		write      = flag.String("write", "", "write the parsed benchmarks as a JSON baseline to this file")
		compare    = flag.String("compare", "", "compare stdin bench output against this JSON baseline")
		maxRegress = flag.Float64("max-regress", 1.30, "compare: fail when ns/op exceeds baseline by this factor")
		minNs      = flag.Float64("min-ns", 100e3, "compare: ignore benchmarks whose baseline ns/op is below this")
		note       = flag.String("note", "", "write: free-form provenance note stored in the baseline")
	)
	flag.Parse()
	if (*write == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -write or -compare is required")
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	parsed, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *write != "" {
		b := Baseline{Note: *note, Benchmarks: parsed}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(parsed), *write)
		return
	}

	data, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compare, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got := parsed[name]
		ref, ok := base.Benchmarks[name]
		if !ok || ref.NsPerOp <= 0 {
			fmt.Printf("SKIP %-40s not in baseline\n", name)
			continue
		}
		if ref.NsPerOp < *minNs {
			fmt.Printf("SKIP %-40s baseline %.0f ns/op below -min-ns floor\n", name, ref.NsPerOp)
			continue
		}
		ratio := got.NsPerOp / ref.NsPerOp
		verdict := "ok  "
		if ratio > *maxRegress {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %12.0f ns/op  vs baseline %12.0f  (x%.2f)\n",
			verdict, name, got.NsPerOp, ref.NsPerOp, ratio)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond x%.2f against %s\n", *maxRegress, *compare)
		os.Exit(1)
	}
}
