package regimap_test

import (
	"strings"
	"testing"

	"regimap"
)

// TestQuickstart is the README's quickstart, kept compiling and honest.
func TestQuickstart(t *testing.T) {
	k, ok := regimap.KernelByName("fir8")
	if !ok {
		t.Fatal("fir8 missing from the suite")
	}
	cgra := regimap.NewMesh(4, 4, 4)
	m, stats, err := regimap.Map(k.Build(), cgra, regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II < stats.MII {
		t.Fatalf("II %d beats the lower bound %d", stats.II, stats.MII)
	}
	if err := regimap.Simulate(m, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "II=") {
		t.Error("mapping table missing II")
	}
}

// TestBuildCustomKernel exercises the public DFG builder end to end.
func TestBuildCustomKernel(t *testing.T) {
	b := regimap.NewBuilder("saxpy")
	xa := b.Input("xa")
	ya := b.Input("ya")
	x := b.Op(regimap.Load, "x", xa)
	y := b.Op(regimap.Load, "y", ya)
	ax := b.Op(regimap.Mul, "ax", x, b.Const("a", 3))
	s := b.Op(regimap.Add, "s", ax, y)
	b.Op(regimap.Store, "st", b.Input("oa"), s)
	d := b.Build()

	m, stats, err := regimap.Map(d, regimap.NewMesh(2, 2, 2), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Perf() <= 0 {
		t.Error("mapped kernel must report positive performance")
	}
	if err := regimap.Simulate(m, 6); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesViaPublicAPI(t *testing.T) {
	k, _ := regimap.KernelByName("sphinx_dot")
	d := k.Build()
	c := regimap.NewMesh(4, 4, 4)
	if _, _, err := regimap.MapDRESC(d, c, regimap.DRESCOptions{Seed: 1}); err != nil {
		t.Fatalf("DRESC: %v", err)
	}
	m, _, err := regimap.MapEMS(k.Build(), c, regimap.EMSOptions{})
	if err != nil {
		t.Fatalf("EMS: %v", err)
	}
	if err := regimap.Simulate(m, 4); err != nil {
		t.Fatalf("EMS mapping mis-executes: %v", err)
	}
}

func TestSuiteAndRandomAccessors(t *testing.T) {
	if len(regimap.Kernels()) < 20 {
		t.Error("kernel suite too small")
	}
	d := regimap.RandomKernel(7, regimap.RandomKernelOptions{Ops: 12})
	if d.N() < 12 {
		t.Error("random kernel too small")
	}
	ref, err := regimap.Reference(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Values) != d.N() {
		t.Error("reference result malformed")
	}
}

func TestTopologiesExposed(t *testing.T) {
	for _, topo := range []regimap.Topology{regimap.Mesh, regimap.MeshPlus, regimap.Torus} {
		c := regimap.NewCGRA(2, 2, 2, topo)
		if c.NumPEs() != 4 {
			t.Error("CGRA constructor broken")
		}
	}
}

func TestRunExposesMachineState(t *testing.T) {
	k, _ := regimap.KernelByName("milc_su3")
	m, _, err := regimap.Map(k.Build(), regimap.NewMesh(4, 4, 4), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := regimap.Run(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("Run must report cycles")
	}
}

func TestProgramLoweringViaPublicAPI(t *testing.T) {
	k, _ := regimap.KernelByName("wavelet_lift")
	m, _, err := regimap.Map(k.Build(), regimap.NewMesh(4, 4, 8), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := regimap.Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := regimap.ExecuteProgram(prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("executor reported no cycles")
	}
	if err := regimap.CheckProgram(m, 6); err != nil {
		t.Fatal(err)
	}
}

func TestRenderViaPublicAPI(t *testing.T) {
	k, _ := regimap.KernelByName("mcf_relax")
	d := k.Build()
	if svg, err := regimap.RenderDFG(d); err != nil || !strings.Contains(svg, "<svg") {
		t.Fatalf("RenderDFG: %v", err)
	}
	m, _, err := regimap.Map(d, regimap.NewMesh(4, 4, 4), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if svg, err := regimap.RenderMapping(m); err != nil || !strings.Contains(svg, "</svg>") {
		t.Fatalf("RenderMapping: %v", err)
	}
}

func TestCompileViaPublicAPI(t *testing.T) {
	d, err := regimap.Compile("dot", "acc = acc + a[i]*b[i]")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := regimap.Map(d, regimap.NewMesh(2, 2, 2), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := regimap.Simulate(m, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := regimap.Compile("bad", "i = 1"); err == nil {
		t.Fatal("Compile accepted assignment to the induction variable")
	}
	if regimap.MustCompile("dot", "acc = acc + a[i]*b[i]").N() == 0 {
		t.Fatal("MustCompile returned empty DFG")
	}
}

func TestWriteVCDViaPublicAPI(t *testing.T) {
	k, _ := regimap.KernelByName("bzip2_hist")
	m, _, err := regimap.Map(k.Build(), regimap.NewMesh(2, 2, 2), regimap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := regimap.WriteVCD(&buf, m, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$enddefinitions") {
		t.Error("VCD malformed")
	}
}
