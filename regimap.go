// Package regimap is a from-scratch Go reproduction of "REGIMap:
// Register-Aware Application Mapping on Coarse-Grained Reconfigurable
// Architectures (CGRAs)" (Hamzeh, Shrivastava, Vrudhula — DAC 2013).
//
// It contains everything the paper's system needs, built on the standard
// library only:
//
//   - a loop-kernel data-flow graph model with the modulo-scheduling analyses
//     (ResMII / RecMII / MII),
//   - a CGRA architecture model (2-D PE mesh, output registers, rotating
//     local register files, shared row memory buses),
//   - the REGIMap mapper itself: modulo scheduling plus integrated placement
//     and register allocation via a register-weight-constrained maximal
//     clique over the compatibility graph, with the paper's
//     learn-from-failure loop,
//   - the DRESC (simulated annealing over an MRRG) and EMS (edge-centric
//     greedy) baselines it is evaluated against,
//   - a cycle-accurate functional simulator that proves mappings execute
//     bit-identically to a sequential reference interpreter,
//   - the benchmark kernel suite standing in for the paper's multimedia and
//     SPEC2006 loops, and
//   - the experiment harness regenerating every figure and table of the
//     paper's evaluation (see EXPERIMENTS.md).
//
// # Quick start
//
//	k, _ := regimap.KernelByName("fir8")
//	cgra := regimap.NewMesh(4, 4, 4) // 4x4 PEs, 4 registers each
//	m, stats, err := regimap.Map(k.Build(), cgra, regimap.Options{})
//	if err != nil { ... }
//	fmt.Printf("II=%d (lower bound %d)\n", stats.II, stats.MII)
//	fmt.Print(m)                          // the kernel configuration table
//	err = regimap.Simulate(m, 16)         // prove it computes correctly
//
// The deeper layers (compatibility-graph construction, the clique engine,
// the scheduler) live in internal packages and are documented in DESIGN.md;
// this package re-exports the surface a downstream user needs.
package regimap

import (
	"context"
	"io"

	"regimap/internal/arch"
	"regimap/internal/config"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/dresc"
	"regimap/internal/ems"
	"regimap/internal/engine"
	"regimap/internal/exact"
	"regimap/internal/fault"
	"regimap/internal/kernels"
	"regimap/internal/loopir"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/portfolio"
	"regimap/internal/resilient"
	"regimap/internal/sim"
	"regimap/internal/viz"
)

// Re-exported architecture types and constructors.
type (
	// CGRA is a coarse-grained reconfigurable array instance.
	CGRA = arch.CGRA
	// Topology selects the inter-PE interconnect.
	Topology = arch.Topology
)

// Interconnect topologies.
const (
	Mesh     = arch.Mesh
	MeshPlus = arch.MeshPlus
	Torus    = arch.Torus
	OneHop   = arch.OneHop
)

// NewMesh returns a rows x cols orthogonal-mesh CGRA with numRegs rotating
// registers per PE — the paper's configuration.
func NewMesh(rows, cols, numRegs int) *CGRA { return arch.NewMesh(rows, cols, numRegs) }

// NewCGRA returns a CGRA with an arbitrary topology.
func NewCGRA(rows, cols, numRegs int, topo Topology) *CGRA {
	return arch.New(rows, cols, numRegs, topo)
}

// Re-exported architecture description language (ADL) types. A fabric is
// described as text ("grid 4x4; topo mesh+; regs 8; bus global cap 2"),
// parsed into an ArchDesc, and compiled into a CGRA; see internal/arch.
type (
	// ArchDesc is a parsed architecture description; Compile builds the CGRA.
	ArchDesc = arch.Desc
	// ArchDescError reports a malformed description with its position.
	ArchDescError = arch.DescError
	// ArchUnfaithfulError reports an array state the ADL cannot express.
	ArchUnfaithfulError = arch.UnfaithfulError
)

// ParseArch parses an ADL description without compiling it.
func ParseArch(text string) (*ArchDesc, error) { return arch.ParseDesc(text) }

// ResolveArch builds a CGRA from a named architecture (see ArchNames) or an
// inline ADL description.
func ResolveArch(nameOrDesc string) (*CGRA, error) { return arch.Resolve(nameOrDesc) }

// ArchNames lists the registered named architectures, sorted.
func ArchNames() []string { return arch.ArchNames() }

// ArchSource returns the ADL text and one-line description of a named
// architecture.
func ArchSource(name string) (adl, blurb string, ok bool) { return arch.ArchSource(name) }

// RegisterArch adds a named architecture to the registry; the description is
// parsed and compiled eagerly so a bad registration fails at startup.
func RegisterArch(name, adl, blurb string) error { return arch.RegisterArch(name, adl, blurb) }

// Re-exported data-flow graph types.
type (
	// DFG is a loop body: operations plus dependences with inter-iteration
	// distances. Build one with NewBuilder.
	DFG = dfg.DFG
	// Builder constructs DFGs.
	Builder = dfg.Builder
	// OpKind enumerates the operations a PE can execute.
	OpKind = dfg.OpKind
)

// NewBuilder starts a new kernel DFG.
func NewBuilder(name string) *Builder { return dfg.NewBuilder(name) }

// Operation kinds (see the dfg package for the full set).
const (
	Const  = dfg.Const
	Input  = dfg.Input
	Add    = dfg.Add
	Sub    = dfg.Sub
	Mul    = dfg.Mul
	And    = dfg.And
	Or     = dfg.Or
	Xor    = dfg.Xor
	Shl    = dfg.Shl
	Shr    = dfg.Shr
	Min    = dfg.Min
	Max    = dfg.Max
	Abs    = dfg.Abs
	Neg    = dfg.Neg
	Not    = dfg.Not
	CmpLT  = dfg.CmpLT
	CmpEQ  = dfg.CmpEQ
	Select = dfg.Select
	Route  = dfg.Route
	Load   = dfg.Load
	Store  = dfg.Store
)

// Re-exported mapper types.
type (
	// Mapping binds every operation of a kernel to a (PE, cycle) slot.
	Mapping = mapping.Mapping
	// Options configures the REGIMap mapper.
	Options = core.Options
	// Stats reports how a REGIMap run went.
	Stats = core.Stats
)

// Every Map* entry point below is a thin shim over the unified engine
// registry (regimap/internal/engine): the wrapper looks its engine up by name
// ("regimap", "ems", "dresc", "portfolio", "dresc-portfolio", "resilient"),
// dispatches through the common Mapper interface, and narrows the result back
// to the concrete types this package's API promises. Mapper packages register
// themselves at init time via engine.Register — adding a backend means
// registering it, not growing this file — and callers that want dynamic
// dispatch over every backend (racing, degrading, CLI listing) use the
// registry directly; see MapperNames.

// mapVia dispatches a Mapping-producing engine and narrows its stats.
func mapVia[S any](ctx context.Context, name string, d *DFG, c *CGRA, extra any) (*Mapping, *S, error) {
	res, err := engine.MustLookup(name).Map(ctx, d, c, engine.Options{Extra: extra})
	if res == nil {
		return nil, nil, err
	}
	st, _ := res.Stats.(*S)
	return res.Mapping, st, err
}

// MapperNames lists every registered mapping engine, sorted — the names the
// shims below dispatch on (also surfaced by `regimap -list-mappers`).
func MapperNames() []string { return engine.Names() }

// Map runs REGIMap: modulo scheduling plus clique-based integrated placement
// and register allocation with the paper's learn-from-failure loop. The
// returned mapping always passes Mapping.Validate; run Simulate to prove it
// functionally correct as well. Map never gives up early on its own — use
// MapContext to bound compile time with a deadline.
func Map(d *DFG, c *CGRA, opts Options) (*Mapping, *Stats, error) {
	return MapContext(context.Background(), d, c, opts)
}

// MapContext is Map with cancellation: the mapper checks ctx before every II
// escalation and every schedule/place attempt, so a deadline bounds compile
// time within one attempt even on unmappable kernels. The returned error
// wraps ctx.Err() when the abort was context-driven.
func MapContext(ctx context.Context, d *DFG, c *CGRA, opts Options) (*Mapping, *Stats, error) {
	return mapVia[core.Stats](ctx, "regimap", d, c, opts)
}

// Portfolio types.
type (
	// PortfolioOptions configures MapPortfolio.
	PortfolioOptions = portfolio.Options
	// PortfolioStats reports a portfolio run (winner index, races, cancels).
	PortfolioStats = portfolio.Stats
	// DRESCPortfolioOptions configures MapDRESCPortfolio.
	DRESCPortfolioOptions = portfolio.DRESCOptions
)

// MapPortfolio races the REGIMap search over an Attempts-wide speculative II
// window in goroutines, cancelling losers as soon as they cannot win, and
// returns a deterministic winner: lowest II first, base search before scouts
// on ties. Every raced II runs the unmodified base options, so any window
// width returns a byte-identical mapping — parallelism buys latency, never
// changes results. Opting into PortfolioOptions.Explore adds budget-widened
// scout searches per II that can unlock a lower II than the base escalation
// reaches, trading that invariance for quality.
func MapPortfolio(ctx context.Context, d *DFG, c *CGRA, opts PortfolioOptions) (*Mapping, *PortfolioStats, error) {
	return mapVia[portfolio.Stats](ctx, "portfolio", d, c, opts)
}

// MapDRESCPortfolio races seed-diversified DRESC annealing runs per II with
// the same deterministic tiebreak as MapPortfolio. Unlike the REGIMap
// portfolio's default mode, annealing seeds change search quality, so a
// wider DRESC portfolio can reach a lower II than a single run.
func MapDRESCPortfolio(ctx context.Context, d *DFG, c *CGRA, opts DRESCPortfolioOptions) (*DRESCPlacement, *PortfolioStats, error) {
	return placeVia[portfolio.Stats](ctx, "dresc-portfolio", d, c, opts)
}

// Baseline mapper types.
type (
	// DRESCOptions configures the simulated-annealing baseline.
	DRESCOptions = dresc.Options
	// DRESCPlacement is a DRESC solution (an MRRG placement with routed
	// paths).
	DRESCPlacement = dresc.Placement
	// DRESCStats reports a DRESC run.
	DRESCStats = dresc.Stats
	// EMSOptions configures the edge-centric greedy baseline.
	EMSOptions = ems.Options
	// EMSStats reports an EMS run.
	EMSStats = ems.Stats
)

// placeVia dispatches a Placement-producing engine (DRESC and its portfolio)
// and narrows its artifact and stats.
func placeVia[S any](ctx context.Context, name string, d *DFG, c *CGRA, extra any) (*DRESCPlacement, *S, error) {
	res, err := engine.MustLookup(name).Map(ctx, d, c, engine.Options{Extra: extra})
	if res == nil {
		return nil, nil, err
	}
	p, _ := res.Artifact.(*dresc.Placement)
	st, _ := res.Stats.(*S)
	return p, st, err
}

// MapDRESC runs the DRESC baseline: simulated-annealing placement and
// routing over the register-explicit modulo routing resource graph.
func MapDRESC(d *DFG, c *CGRA, opts DRESCOptions) (*DRESCPlacement, *DRESCStats, error) {
	return MapDRESCContext(context.Background(), d, c, opts)
}

// MapDRESCContext is MapDRESC with cancellation, honored at annealing-epoch
// and II-escalation boundaries.
func MapDRESCContext(ctx context.Context, d *DFG, c *CGRA, opts DRESCOptions) (*DRESCPlacement, *DRESCStats, error) {
	return placeVia[dresc.Stats](ctx, "dresc", d, c, opts)
}

// Exact mapper types.
type (
	// ExactOptions configures the SAT-based exact engine.
	ExactOptions = exact.Options
	// ExactStats carries an exact run's certificate plus wall-clock.
	ExactStats = exact.Stats
	// Certificate is the exact engine's proof artifact: the certified MII,
	// the best (possibly proven-optimal) II, and per-II solver verdicts.
	Certificate = exact.Certificate
)

// Lower-bound classes a Certificate's ProvenLowerBound can carry: MII-class
// bounds hold for any mapper; chain-class bounds hold within the exact
// engine's route-chain relaxation (see the Certificate docs).
const (
	ExactLowerBoundMII   = exact.LowerBoundMII
	ExactLowerBoundChain = exact.LowerBoundChain
)

// MapExact runs the exact engine: a reduction of the mapping problem to SAT,
// solved by a built-in CDCL solver, escalating II upward from MII. Unlike
// the heuristics it proves things — a returned mapping is certified optimal
// when every II below it was refuted, and even a failure carries a certified
// lower bound in its Stats. Compile times are exponential in the worst case;
// bound them with MapExactContext or ExactOptions.MaxConflicts.
func MapExact(d *DFG, c *CGRA, opts ExactOptions) (*Mapping, *ExactStats, error) {
	return MapExactContext(context.Background(), d, c, opts)
}

// MapExactContext is MapExact with cancellation, honored within a bounded
// number of solver conflicts at any moment.
func MapExactContext(ctx context.Context, d *DFG, c *CGRA, opts ExactOptions) (*Mapping, *ExactStats, error) {
	return mapVia[exact.Stats](ctx, "exact", d, c, opts)
}

// MapEMS runs the EMS-style baseline: edge-centric greedy placement with
// explicit route chains and no learning.
func MapEMS(d *DFG, c *CGRA, opts EMSOptions) (*Mapping, *EMSStats, error) {
	return MapEMSContext(context.Background(), d, c, opts)
}

// MapEMSContext is MapEMS with cancellation, honored at II-escalation
// boundaries.
func MapEMSContext(ctx context.Context, d *DFG, c *CGRA, opts EMSOptions) (*Mapping, *EMSStats, error) {
	return mapVia[ems.Stats](ctx, "ems", d, c, opts)
}

// Error taxonomy shared by every mapper: classify failures with errors.Is
// instead of matching message text.
var (
	// ErrNoMapping: the search space is exhausted — no legal mapping exists
	// within the II budget (or the faulted fabric cannot host the kernel).
	ErrNoMapping = maperr.ErrNoMapping
	// ErrAborted: the mapper stopped because the caller's context was
	// cancelled; the ctx error is in the wrap chain.
	ErrAborted = maperr.ErrAborted
	// ErrWorkerPanic: a mapper goroutine panicked and was isolated; the
	// recovered value and stack ride in a *WorkerPanicError (errors.As).
	ErrWorkerPanic = maperr.ErrWorkerPanic
)

// WorkerPanicError carries a recovered panic from an isolated mapper worker.
type WorkerPanicError = maperr.WorkerPanicError

// InvalidMappingError reports a mapper that produced a result failing
// independent validation — an internal bug, not an honest "no mapping".
type InvalidMappingError = maperr.InvalidMappingError

// Fault-injection types: declarative hardware fault models applied to a CGRA.
type (
	// FaultSet is a declarative collection of hardware faults. Parse one
	// with ParseFaults, validate it against an array with Validate, and
	// derive the faulted array view with Apply.
	FaultSet = fault.Set
	// Fault is one hardware defect (broken PE, dead link, reduced register
	// file, dead row bus), permanent or transient.
	Fault = fault.Fault
	// FaultKind discriminates Fault entries.
	FaultKind = fault.Kind
)

// Fault kinds.
const (
	BrokenPE    = fault.BrokenPE
	DeadLink    = fault.DeadLink
	ReducedRegs = fault.ReducedRegs
	DeadRowBus  = fault.DeadRowBus
)

// ParseFaults parses the textual fault grammar, e.g.
// "pe 1,1; link 0,0-0,1; regs 2,2=1; row 3~2" (the ~N suffix marks a fault
// transient, clearing after N retry rounds).
func ParseFaults(text string) (*FaultSet, error) { return fault.Parse(text) }

// Resilient-pipeline types.
type (
	// ResilientOptions configures MapResilient (fault set, degradation
	// ladder, retry policy, certification depth).
	ResilientOptions = resilient.Options
	// ResilientOutcome reports which rung produced the mapping, on which
	// faulted fabric, after how many retry rounds.
	ResilientOutcome = resilient.Outcome
	// Rung identifies one mapper of the degradation ladder.
	Rung = resilient.Rung
	// RungSpec is one ladder step with its own II budget.
	RungSpec = resilient.RungSpec
)

// Degradation-ladder rungs, best first.
const (
	RungREGIMap = resilient.RungREGIMap
	RungEMS     = resilient.RungEMS
	RungDRESC   = resilient.RungDRESC
)

// MapResilient maps through the degradation ladder (REGIMap, then EMS, then
// DRESC) on a possibly-faulted view of the array, retrying with exponential
// backoff while transient faults clear, and certifies every produced mapping
// against the cycle-accurate simulator. It is the recommended entry point
// when the hardware may be imperfect: a fault degrades the result (a worse II
// or a slower mapper) instead of failing the compile.
func MapResilient(ctx context.Context, d *DFG, c *CGRA, opts ResilientOptions) (*ResilientOutcome, error) {
	res, err := engine.MustLookup("resilient").Map(ctx, d, c, engine.Options{Extra: opts})
	if res == nil {
		return nil, err
	}
	out, _ := res.Stats.(*resilient.Outcome)
	return out, err
}

// Kernel is one benchmark loop of the suite.
type Kernel = kernels.Kernel

// Kernels returns the benchmark suite standing in for the paper's multimedia
// and SPEC2006 loops.
func Kernels() []Kernel { return kernels.All() }

// KernelByName returns one benchmark kernel.
func KernelByName(name string) (Kernel, bool) { return kernels.ByName(name) }

// RandomKernel generates a deterministic synthetic kernel (see
// kernels.RandomOptions for knobs).
func RandomKernel(seed int64, opts kernels.RandomOptions) *DFG {
	return kernels.Random(seed, opts)
}

// RandomKernelOptions shapes RandomKernel.
type RandomKernelOptions = kernels.RandomOptions

// Simulate executes the mapping on the cycle-accurate CGRA model for iters
// iterations of every operation and compares each produced value against the
// sequential reference interpreter. A nil error proves functional
// equivalence.
func Simulate(m *Mapping, iters int) error { return sim.Check(m, iters) }

// SimResult holds the value streams of an execution.
type SimResult = sim.Result

// Run executes the mapping and returns the produced value streams together
// with machine-level observations (peak register-file occupancy, cycles).
func Run(m *Mapping, iters int) (*SimResult, error) { return sim.Run(m, iters) }

// Reference interprets a kernel sequentially (the ground-truth semantics).
func Reference(d *DFG, iters int) (*SimResult, error) { return sim.Reference(d, iters) }

// WriteVCD executes the mapping and streams a Value Change Dump of the
// machine (per-PE busy/op/value signals, one timestep per cycle) for
// waveform viewers.
func WriteVCD(w io.Writer, m *Mapping, iters int) error { return sim.WriteVCD(w, m, iters) }

// RenderDFG renders a kernel's data-flow graph as a standalone SVG document,
// layered by schedule level with recurrence edges dashed.
func RenderDFG(d *DFG) (string, error) { return viz.DFG(d) }

// RenderMapping renders a mapping as the paper's time-extended-CGRA picture:
// the mesh replicated per modulo cycle, with forwarding and register-carried
// dependences drawn.
func RenderMapping(m *Mapping) (string, error) { return viz.Mapping(m) }

// Compile parses a C-like loop body (see internal/loopir for the language)
// and lowers it to a data-flow graph ready for any of the mappers — the
// front-end role the paper delegates to its GCC integration.
//
//	d, err := regimap.Compile("dot", `acc = acc + a[i]*b[i]`)
func Compile(name, src string) (*DFG, error) { return loopir.Compile(name, src) }

// MustCompile is Compile for static program text; it panics on error.
func MustCompile(name, src string) *DFG { return loopir.MustCompile(name, src) }

// Program is a concrete kernel configuration: per-PE instruction words with
// operand routing selectors and rotating-register indices.
type Program = config.Program

// Emit lowers a validated mapping to a kernel configuration, binding every
// register-carried value to a rotating-register window and choosing each
// file's rotation phase.
func Emit(m *Mapping) (*Program, error) { return config.Emit(m) }

// ExecuteProgram runs a kernel configuration on the machine-level executor
// (instruction words only — no data-flow graph) for iters iterations.
func ExecuteProgram(p *Program, iters int) (*SimResult, error) { return config.Execute(p, iters) }

// CheckProgram is the strongest end-to-end proof: lower the mapping to
// instruction words, execute them, and compare every value against the
// loop's sequential semantics.
func CheckProgram(m *Mapping, iters int) error { return config.Check(m, iters) }
