package regimap_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"regimap"
	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
	"regimap/internal/exact"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/sim"
)

// inRouteChainClass reports whether a heuristic mapping stayed inside the
// exact engine's relaxation class: every node it added to the kernel is a
// route node, and no edge was stretched through a chain longer than hops.
// Mappings that duplicated or split compute nodes (REGIMap's recMII II
// escape hatches) are outside the class, and a chain-class lower bound says
// nothing about them.
func inRouteChainClass(orig *dfg.DFG, m *mapping.Mapping, hops int) bool {
	md := m.D
	chain := map[int]int{}
	var lenOf func(v int) int
	lenOf = func(v int) int {
		if v < orig.N() || md.Nodes[v].Kind != dfg.Route {
			return 0
		}
		if l, ok := chain[v]; ok {
			return l
		}
		in := md.InEdges(v)
		if len(in) != 1 {
			return hops + 1 // not a simple chain; force out of class
		}
		l := 1 + lenOf(md.Edges[in[0]].From)
		chain[v] = l
		return l
	}
	for v := orig.N(); v < md.N(); v++ {
		if md.Nodes[v].Kind != dfg.Route {
			return false
		}
		if lenOf(v) > hops {
			return false
		}
	}
	return true
}

// TestExactOracleOnRandomKernels uses the exact engine as ground truth over
// small random kernels crossed with zoo fabrics: no heuristic engine may
// return an II below what the certificate proves impossible, and every SAT
// model the exact engine produces must decode to a simulator-certified
// mapping. Lower-bound assertions are class-aware: a chain-class bound is
// only held against heuristic mappings that stayed inside the route-chain
// relaxation; mappings that escaped it (node duplication, fanout splitting)
// are bounded by MII alone.
func TestExactOracleOnRandomKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle suite runs many mapper invocations")
	}
	fabrics := []string{"paper-4x4", "onehop-4x4", "band2-4x4", "hetero-mem-col"}
	heuristics := []string{"regimap", "ems", "dresc"}

	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		d := regimap.RandomKernel(seed, regimap.RandomKernelOptions{
			Ops:        6 + int(seed%5),
			Recurrence: int(seed % 3),
		})
		for _, fname := range fabrics {
			c, err := arch.Resolve(fname)
			if err != nil {
				t.Fatalf("resolve %s: %v", fname, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			m, st, err := exact.Map(ctx, d, c, exact.Options{MaxConflicts: 20_000})
			cancel()
			cert := st.Cert
			if err != nil && !errors.Is(err, maperr.ErrNoMapping) && !errors.Is(err, maperr.ErrAborted) {
				t.Fatalf("seed %d on %s: exact: %v", seed, fname, err)
			}
			if m != nil {
				if verr := m.Validate(); verr != nil {
					t.Fatalf("seed %d on %s: exact model does not validate: %v", seed, fname, verr)
				}
				if serr := sim.Check(m, 4); serr != nil {
					t.Fatalf("seed %d on %s: exact model fails simulation: %v", seed, fname, serr)
				}
			}

			for _, name := range heuristics {
				eng, ok := engine.Lookup(name)
				if !ok {
					t.Fatalf("engine %q not registered", name)
				}
				hctx, hcancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, herr := eng.Map(hctx, d, c, engine.Options{})
				hcancel()
				if herr != nil || res == nil || res.II == 0 {
					continue // a heuristic failing to map proves nothing
				}
				if res.II < cert.MII {
					t.Fatalf("seed %d on %s: %s II=%d beats MII=%d", seed, fname, name, res.II, cert.MII)
				}
				if cert.ProvenLowerBound <= cert.MII {
					continue
				}
				switch cert.LowerBoundClass {
				case exact.LowerBoundMII:
					if res.II < cert.ProvenLowerBound {
						t.Fatalf("seed %d on %s: %s II=%d beats certified absolute bound %d",
							seed, fname, name, res.II, cert.ProvenLowerBound)
					}
				case exact.LowerBoundChain:
					if res.Mapping != nil && inRouteChainClass(d, res.Mapping, cert.RouteHops) &&
						res.II < cert.ProvenLowerBound {
						t.Fatalf("seed %d on %s: %s II=%d is a route-chain mapping (<=%d hops) below the chain-class bound %d",
							seed, fname, name, res.II, cert.RouteHops, cert.ProvenLowerBound)
					}
				default:
					t.Fatalf("seed %d on %s: unknown lower bound class %q", seed, fname, cert.LowerBoundClass)
				}
			}
		}
	}
}
