// Package mapping defines the common result contract of all mappers — a
// modulo schedule plus a PE binding — together with an independent legality
// checker and the rotating-register accounting of the paper's CGRA model.
//
// The storage model (paper Section 2, Figure 2): a PE's result lands in its
// output register one cycle after execution, where mesh neighbours (and the
// PE itself) can read it for exactly that one cycle before the next value may
// overwrite it. A dependence spanning more than one cycle therefore parks the
// value in the *producer's* local register file, which only the producer's
// own ALU can read — so producer and consumer must share a PE, and the value
// occupies ceil(span / II) rotating registers (one live copy per in-flight
// iteration).
package mapping

import (
	"fmt"
	"strings"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

// Constraint names one legality rule of the CGRA model. Violation errors
// carry the constraint they broke, so harnesses (the chaos mutation suite,
// fault-injection tests) can assert *which* rule caught a corruption instead
// of string-matching messages.
type Constraint string

// The constraint classes Validate enforces, in checking order.
const (
	// ConstraintBinding: every operation has a slot >= 0 and a PE in range.
	ConstraintBinding Constraint = "binding"
	// ConstraintCapability: the bound PE's ALU supports the operation kind
	// (heterogeneous restriction or a broken PE).
	ConstraintCapability Constraint = "capability"
	// ConstraintOccupancy: no two operations share a (PE, modulo slot).
	ConstraintOccupancy Constraint = "occupancy"
	// ConstraintRowBus: memory operations per (bus group, modulo slot) stay
	// within the group's capacity — at most one per (row, slot) under the
	// paper's default scheme — and none at all on a row whose bus is dead.
	ConstraintRowBus Constraint = "row-bus"
	// ConstraintPrecedence: every dependence spans at least its latency.
	ConstraintPrecedence Constraint = "precedence"
	// ConstraintAdjacency: one-cycle spans connect adjacent (or identical)
	// PEs through the mesh — a cut link breaks this.
	ConstraintAdjacency Constraint = "adjacency"
	// ConstraintRegisterCarry: spans above one cycle keep producer and
	// consumer on one PE (register files are PE-private).
	ConstraintRegisterCarry Constraint = "register-carried"
	// ConstraintRegisterCap: rotating-register pressure stays within each
	// PE's usable file size.
	ConstraintRegisterCap Constraint = "register-capacity"
	// ConstraintLinkBandwidth: on fanout-bounded fabrics, no output register
	// is read by more than Fanout remote PEs in one cycle.
	ConstraintLinkBandwidth Constraint = "link-bandwidth"
)

// Violation is a typed Validate failure: the broken constraint plus the
// human-readable diagnosis. Retrieve it with errors.As.
type Violation struct {
	Constraint Constraint
	msg        string
}

func (v *Violation) Error() string { return v.msg }

func violatef(c Constraint, format string, args ...any) error {
	return &Violation{Constraint: c, msg: fmt.Sprintf(format, args...)}
}

// Mapping binds every DFG operation to an absolute schedule slot and a PE.
// Multi-hop routes are represented as explicit Route operations in the DFG
// (see dfg.InsertRoute), so a Mapping is always a complete description of
// the kernel configuration.
type Mapping struct {
	D  *dfg.DFG
	C  *arch.CGRA
	II int

	Time []int // absolute slot per operation
	PE   []int // PE per operation
}

// New returns an empty (unbound) mapping shell for the given kernel, array,
// and II; Time and PE are allocated and filled with -1.
func New(d *dfg.DFG, c *arch.CGRA, ii int) *Mapping {
	m := &Mapping{D: d, C: c, II: ii, Time: make([]int, d.N()), PE: make([]int, d.N())}
	for i := range m.Time {
		m.Time[i] = -1
		m.PE[i] = -1
	}
	return m
}

// Slot returns the modulo slot of operation v.
func (m *Mapping) Slot(v int) int { return m.Time[v] % m.II }

// Span returns the number of cycles dependence edge e spans at this II and
// schedule: T(to) - T(from) + II*dist. A legal mapping has span >= latency.
func (m *Mapping) Span(e dfg.Edge) int {
	return m.Time[e.To] - m.Time[e.From] + m.II*e.Dist
}

// IPC returns the steady-state instructions per cycle: |V| / II.
func (m *Mapping) IPC() float64 { return float64(m.D.N()) / float64(m.II) }

// RegisterPressure returns, per PE, the number of rotating registers the
// mapping occupies: each producer holds max-span/II (ceiling) live copies
// across all register-carried consumers.
func (m *Mapping) RegisterPressure() []int {
	press := make([]int, m.C.NumPEs())
	for v := range m.D.Nodes {
		span := m.maxRegisterSpan(v)
		if span > 0 {
			press[m.PE[v]] += ceilDiv(span, m.II)
		}
	}
	return press
}

// maxRegisterSpan returns the longest register-carried span of values
// produced by v (0 when every consumer reads the output register directly).
func (m *Mapping) maxRegisterSpan(v int) int {
	span := 0
	for _, ei := range m.D.OutEdges(v) {
		e := m.D.Edges[ei]
		if s := m.Span(e); s > 1 && s > span {
			span = s
		}
	}
	return span
}

// Validate exhaustively audits the mapping against the architecture:
//
//  1. every operation is bound (slot >= 0, PE in range) and its PE supports
//     its kind;
//  2. no two operations share a (PE, modulo-slot) pair;
//  3. at most one memory operation per (row, modulo-slot) — the shared bus;
//  4. every dependence spans >= its latency;
//  5. one-cycle spans connect adjacent (or identical) PEs;
//  6. longer spans keep producer and consumer on the same PE;
//  7. rotating-register pressure on every PE stays within the file size;
//  8. on fanout-bounded fabrics, no output register feeds more than Fanout
//     remote PEs in one cycle.
//
// This is the ground truth all mappers and tests are audited against. Every
// failure is a *Violation naming the broken constraint (errors.As).
func (m *Mapping) Validate() error {
	n := m.D.N()
	if len(m.Time) != n || len(m.PE) != n {
		return violatef(ConstraintBinding, "mapping: bindings for %d/%d ops", len(m.Time), n)
	}
	if m.II <= 0 {
		return violatef(ConstraintBinding, "mapping: non-positive II %d", m.II)
	}
	type key struct{ pe, slot int }
	occupied := map[key]string{}
	busUsed := map[key]int{}
	for v, nd := range m.D.Nodes {
		if m.Time[v] < 0 {
			return violatef(ConstraintBinding, "mapping: op %s unscheduled", nd.Name)
		}
		if m.PE[v] < 0 || m.PE[v] >= m.C.NumPEs() {
			return violatef(ConstraintBinding, "mapping: op %s on invalid PE %d", nd.Name, m.PE[v])
		}
		if !m.C.Supports(m.PE[v], nd.Kind) {
			return violatef(ConstraintCapability, "mapping: PE %d cannot execute %s (%s)", m.PE[v], nd.Name, nd.Kind)
		}
		k := key{m.PE[v], m.Slot(v)}
		if prev, ok := occupied[k]; ok {
			return violatef(ConstraintOccupancy, "mapping: ops %s and %s collide on PE %d slot %d", prev, nd.Name, k.pe, k.slot)
		}
		occupied[k] = nd.Name
		if nd.Kind.IsMem() {
			row := m.C.RowOf(m.PE[v])
			if !m.C.RowBusOK(row) {
				return violatef(ConstraintRowBus, "mapping: mem op %s on row %d whose bus is dead", nd.Name, row)
			}
			g := m.C.BusGroupOf(m.PE[v])
			bk := key{g, m.Slot(v)}
			busUsed[bk]++
			if cap := m.C.BusGroupCap(g); busUsed[bk] > cap {
				return violatef(ConstraintRowBus, "mapping: mem op %s exceeds bus group %d capacity %d in slot %d", nd.Name, g, cap, bk.slot)
			}
		}
	}
	for _, e := range m.D.Edges {
		span := m.Span(e)
		lat := m.D.Nodes[e.From].Kind.Latency()
		from, to := m.D.Nodes[e.From].Name, m.D.Nodes[e.To].Name
		switch {
		case span < lat:
			return violatef(ConstraintPrecedence, "mapping: edge %s->%s spans %d < latency %d", from, to, span, lat)
		case span == 1:
			if !m.C.Connected(m.PE[e.From], m.PE[e.To]) {
				return violatef(ConstraintAdjacency, "mapping: edge %s->%s needs adjacency, PEs %d and %d are not connected",
					from, to, m.PE[e.From], m.PE[e.To])
			}
		default:
			if m.PE[e.From] != m.PE[e.To] {
				return violatef(ConstraintRegisterCarry, "mapping: edge %s->%s spans %d cycles but crosses PEs %d->%d (register-carried values cannot leave the PE)",
					from, to, span, m.PE[e.From], m.PE[e.To])
			}
		}
	}
	for p, used := range m.RegisterPressure() {
		if used > m.C.RegsAt(p) {
			return violatef(ConstraintRegisterCap, "mapping: PE %d uses %d registers, file holds %d", p, used, m.C.RegsAt(p))
		}
	}
	if fo := m.C.Fanout(); fo > 0 {
		// Each span-1 consumer on another PE is one same-cycle read of the
		// producer's output register; distinct consumers occupy distinct PEs
		// (they share a slot, so occupancy already separated them).
		readers := map[[2]int]int{} // (producer, consumer) pairs seen
		remote := make([]int, n)
		for _, e := range m.D.Edges {
			if m.Span(e) != 1 || m.PE[e.From] == m.PE[e.To] {
				continue
			}
			k := [2]int{e.From, e.To}
			if readers[k]++; readers[k] > 1 {
				continue // parallel edge: same consumer, one read
			}
			remote[e.From]++
			if remote[e.From] > fo {
				return violatef(ConstraintLinkBandwidth, "mapping: op %s's output register is read by %d remote PEs, fabric fanout is %d",
					m.D.Nodes[e.From].Name, remote[e.From], fo)
			}
		}
	}
	return nil
}

// String renders a compact kernel table: one row per modulo slot, one column
// per PE.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s on %s, II=%d, IPC=%.2f\n", m.D.Name, m.C, m.II, m.IPC())
	cell := make(map[[2]int]string)
	for v, nd := range m.D.Nodes {
		if m.Time[v] >= 0 && m.PE[v] >= 0 {
			cell[[2]int{m.Slot(v), m.PE[v]}] = nd.Name
		}
	}
	for s := 0; s < m.II; s++ {
		fmt.Fprintf(&b, "  t%%%d=%d:", m.II, s)
		for p := 0; p < m.C.NumPEs(); p++ {
			name := cell[[2]int{s, p}]
			if name == "" {
				name = "."
			}
			fmt.Fprintf(&b, " %-10s", name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
