package mapping_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/kernels"
	"regimap/internal/mapping"
)

// TestJSONRoundTripGolden round-trips every golden REGIMap mapping through
// the JSON wire format: for each kernel pinned in
// testdata/golden_mappings.json, the mapping is produced, encoded, decoded
// (which re-runs Validate), and checked byte-identical — same binding, same
// rendered kernel table, and the same digest the golden file pins. A wire
// format that loses or reorders anything the digest covers fails here.
func TestJSONRoundTripGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the whole golden suite; skipped in -short")
	}
	blob, err := os.ReadFile("../../testdata/golden_mappings.json")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(blob, &golden); err != nil {
		t.Fatal(err)
	}
	tested := 0
	for key, digest := range golden {
		name, ok := strings.CutPrefix(key, "regimap/")
		if !ok {
			continue
		}
		k, ok := kernels.ByName(name)
		if !ok {
			t.Errorf("%s: kernel disappeared", key)
			continue
		}
		d := k.Build()
		c := arch.NewMesh(4, 4, 4)
		m, stats, err := core.Map(context.Background(), d, c, core.Options{})
		if err != nil {
			// The golden file pins the failure text instead; nothing to
			// round-trip.
			continue
		}
		rendered := fmt.Sprintf("II=%d attempts=%d routes=%d\n%s", stats.II, stats.Attempts, stats.RouteInserts, m)
		sum := sha256.Sum256([]byte(rendered))
		if got := hex.EncodeToString(sum[:8]); got != digest {
			t.Errorf("%s: mapped result no longer matches the golden digest (%s != %s); regenerate goldens first", key, got, digest)
			continue
		}
		roundTrip(t, key, m)
		tested++
	}
	if tested == 0 {
		t.Fatal("no golden regimap mappings were round-tripped")
	}
}

func roundTrip(t *testing.T, label string, m *mapping.Mapping) {
	t.Helper()
	blob, err := json.Marshal(m)
	if err != nil {
		t.Errorf("%s: marshal: %v", label, err)
		return
	}
	var got mapping.Mapping
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Errorf("%s: unmarshal: %v", label, err)
		return
	}
	if got.II != m.II || !reflect.DeepEqual(got.Time, m.Time) || !reflect.DeepEqual(got.PE, m.PE) {
		t.Errorf("%s: binding changed across the wire", label)
	}
	if got.String() != m.String() {
		t.Errorf("%s: rendered kernel table changed across the wire:\n%s\nvs\n%s", label, got.String(), m.String())
	}
	if got.D.Fingerprint() != m.D.Fingerprint() {
		t.Errorf("%s: kernel fingerprint changed across the wire", label)
	}
	// Encoding the decoded mapping must reproduce the exact bytes.
	blob2, err := json.Marshal(&got)
	if err != nil {
		t.Errorf("%s: re-marshal: %v", label, err)
		return
	}
	if string(blob) != string(blob2) {
		t.Errorf("%s: wire bytes unstable across a round trip", label)
	}
}

// TestJSONHeterogeneousRoundTrip is the wire-fidelity regression for
// described fabrics: a mapping produced on a heterogeneous architecture
// (nomem capability classes outside column 0) must carry the full ADL text
// across the wire, and the decoded array must preserve every constraint —
// same fingerprint, same per-PE capabilities — not silently collapse back to
// the uniform mesh the shape fields alone would describe.
func TestJSONHeterogeneousRoundTrip(t *testing.T) {
	const adl = "grid 4x4; regs 4; cap all nomem; cap col 0 all"
	c, err := arch.Resolve(adl)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := kernels.ByName("dotprod_sat")
	if !ok {
		t.Fatal("kernel dotprod_sat disappeared")
	}
	m, _, err := core.Map(context.Background(), k.Build(), c, core.Options{})
	if err != nil {
		t.Fatalf("map on heterogeneous fabric: %v", err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(blob), `"adl"`) {
		t.Fatalf("described fabric did not carry its ADL on the wire: %s", blob)
	}
	var got mapping.Mapping
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.C.Fingerprint() != c.Fingerprint() {
		t.Fatal("decoded array fingerprint differs: heterogeneous constraints lost on the wire")
	}
	if got.C.Supports(got.C.PEAt(1, 1), dfg.Load) {
		t.Fatal("decoded array lets a nomem PE issue Load")
	}
	if !got.C.Supports(got.C.PEAt(1, 0), dfg.Load) {
		t.Fatal("decoded array lost column 0's memory capability")
	}
	roundTrip(t, "hetero-mem-col", m)

	// Tampered wire forms must be rejected: an ADL that disagrees with the
	// shape fields, and an ADL that does not compile at all.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var cg map[string]json.RawMessage
	if err := json.Unmarshal(raw["cgra"], &cg); err != nil {
		t.Fatal(err)
	}
	for label, adl := range map[string]string{
		"shape mismatch": `"grid 8x8; regs 4"`,
		"malformed adl":  `"grid 4x4; frobnicate"`,
	} {
		cg["adl"] = json.RawMessage(adl)
		cgBlob, err := json.Marshal(cg)
		if err != nil {
			t.Fatal(err)
		}
		raw["cgra"] = cgBlob
		mut, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		var bad mapping.Mapping
		if err := json.Unmarshal(mut, &bad); err == nil {
			t.Errorf("%s: forged wire blob decoded successfully", label)
		}
	}
}

// TestJSONUnfaithfulArchFailsEncode: an array whose in-memory state the ADL
// cannot express (an ad-hoc RestrictPE capability set matching no class)
// must fail to encode with *arch.UnfaithfulError instead of silently
// dropping the constraint on round-trip.
func TestJSONUnfaithfulArchFailsEncode(t *testing.T) {
	b := dfg.NewBuilder("pair")
	x := b.Input("x")
	b.Op(dfg.Add, "y", x, x)
	d := b.Build()
	c := arch.NewMesh(2, 2, 2)
	m, _, err := core.Map(context.Background(), d, c, core.Options{})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	m.C.RestrictPE(3, dfg.Add, dfg.Load)
	_, err = json.Marshal(m)
	var uf *arch.UnfaithfulError
	if !errors.As(err, &uf) {
		t.Fatalf("marshal of unfaithful array: err = %v, want *arch.UnfaithfulError", err)
	}
}

// TestJSONDecodeRejectsCorruption proves Validate runs on decode: a wire blob
// whose binding is corrupted must not deserialize.
func TestJSONDecodeRejectsCorruption(t *testing.T) {
	b := dfg.NewBuilder("pair")
	x := b.Input("x")
	y := b.Op(dfg.Add, "y", x, x)
	_ = y
	d := b.Build()
	c := arch.NewMesh(2, 2, 2)
	m, _, err := core.Map(context.Background(), d, c, core.Options{})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}

	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	corrupt := func(field, val string) []byte {
		mut := map[string]json.RawMessage{}
		for k, v := range raw {
			mut[k] = v
		}
		mut[field] = json.RawMessage(val)
		out, err := json.Marshal(mut)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := map[string][]byte{
		"both ops on one PE and slot": corrupt("pe", `[0,0]`),
		"negative slot":               corrupt("time", `[-1,0]`),
		"non-positive II":             corrupt("ii", `0`),
		"binding length mismatch":     corrupt("pe", `[0]`),
		"bad array":                   corrupt("cgra", `{"rows":0,"cols":2,"regs":2,"topology":"mesh"}`),
		"unknown topology":            corrupt("cgra", `{"rows":2,"cols":2,"regs":2,"topology":"blob"}`),
		"unknown kind":                corrupt("nodes", `[{"name":"x","kind":"teleport"},{"name":"y","kind":"add"}]`),
		"malformed graph":             corrupt("edges", `[{"from":0,"to":9,"port":0}]`),
	}
	for label, blob := range cases {
		var got mapping.Mapping
		if err := json.Unmarshal(blob, &got); err == nil {
			t.Errorf("%s: corrupted wire blob decoded successfully", label)
		}
	}
	// Sanity: the uncorrupted blob still decodes.
	var ok mapping.Mapping
	if err := json.Unmarshal(blob, &ok); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}
