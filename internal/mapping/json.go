package mapping

import (
	"encoding/json"
	"fmt"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

// The JSON wire format of a Mapping is fully self-contained: it carries the
// kernel graph (names, kinds, immediates, dependence edges), the nominal
// array configuration, and the binding (II plus per-operation slot and PE),
// so a decoded mapping can be re-validated, rendered, simulated, or lowered
// without out-of-band context. Decoding re-runs both dfg.Validate and
// Mapping.Validate — a peer can never smuggle an illegal kernel
// configuration past the wire boundary.
//
// The array travels as its nominal configuration, never its fault state:
// faults strictly tighten constraints, so a mapping valid on a faulted array
// re-validates on the nominal one. Fault context, when a caller needs it,
// travels next to the mapping (see the regimapd /v1/map response), not
// inside it. Arrays the shape fields (rows, cols, regs, topology) fully
// determine — the paper's default — omit the "adl" field, keeping that wire
// form byte-identical to earlier releases; any described fabric beyond the
// shape (capability classes, per-PE files, bus groups, fanout, edited links)
// additionally carries its full ADL text, and an array whose in-memory state
// the ADL cannot express fails to encode with *arch.UnfaithfulError rather
// than silently dropping constraints on round-trip.

// wireNode is one operation on the wire; Kind is the dfg mnemonic.
type wireNode struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value,omitempty"`
}

// wireEdge is one dependence on the wire.
type wireEdge struct {
	From int `json:"from"`
	To   int `json:"to"`
	Port int `json:"port"`
	Dist int `json:"dist,omitempty"`
}

// wireCGRA is the nominal array on the wire: the shape fields, plus the full
// ADL description when the shape alone is not faithful.
type wireCGRA struct {
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Regs     int    `json:"regs"`
	Topology string `json:"topology"`
	ADL      string `json:"adl,omitempty"`
}

// wireMapping is the full wire form.
type wireMapping struct {
	Kernel string     `json:"kernel"`
	Nodes  []wireNode `json:"nodes"`
	Edges  []wireEdge `json:"edges"`
	CGRA   wireCGRA   `json:"cgra"`
	II     int        `json:"ii"`
	Time   []int      `json:"time"`
	PE     []int      `json:"pe"`
}

// MarshalJSON encodes the mapping in the self-contained wire form. It fails
// with *arch.UnfaithfulError when the array cannot be described faithfully
// (e.g. an ad-hoc RestrictPE capability set matching no class).
func (m *Mapping) MarshalJSON() ([]byte, error) {
	w := wireMapping{
		Kernel: m.D.Name,
		Nodes:  make([]wireNode, len(m.D.Nodes)),
		Edges:  make([]wireEdge, len(m.D.Edges)),
		CGRA: wireCGRA{
			Rows:     m.C.Rows,
			Cols:     m.C.Cols,
			Regs:     m.C.NumRegs,
			Topology: m.C.Topology.String(),
		},
		II:   m.II,
		Time: m.Time,
		PE:   m.PE,
	}
	if m.C.NeedsDesc() {
		desc, err := m.C.Describe()
		if err != nil {
			return nil, fmt.Errorf("mapping: encode: %w", err)
		}
		w.CGRA.ADL = desc.String()
	}
	for i, nd := range m.D.Nodes {
		w.Nodes[i] = wireNode{Name: nd.Name, Kind: nd.Kind.String(), Value: nd.Value}
	}
	for i, e := range m.D.Edges {
		w.Edges[i] = wireEdge{From: e.From, To: e.To, Port: e.Port, Dist: e.Dist}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, rebuilding the kernel graph and the
// array, and re-runs the full legality audit: a decode succeeds only when the
// carried binding is a valid mapping of the carried kernel on the carried
// array.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var w wireMapping
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("mapping: decode: %w", err)
	}
	nodes := make([]dfg.Node, len(w.Nodes))
	for i, wn := range w.Nodes {
		kind, ok := dfg.KindFromString(wn.Kind)
		if !ok {
			return fmt.Errorf("mapping: decode: node %q has unknown kind %q", wn.Name, wn.Kind)
		}
		nodes[i] = dfg.Node{ID: i, Name: wn.Name, Kind: kind, Value: wn.Value}
	}
	edges := make([]dfg.Edge, len(w.Edges))
	for i, we := range w.Edges {
		edges[i] = dfg.Edge{From: we.From, To: we.To, Port: we.Port, Dist: we.Dist}
	}
	d, err := dfg.FromParts(w.Kernel, nodes, edges)
	if err != nil {
		return fmt.Errorf("mapping: decode: %w", err)
	}
	c, err := decodeWireCGRA(w.CGRA)
	if err != nil {
		return fmt.Errorf("mapping: decode: %w", err)
	}
	decoded := &Mapping{
		D:    d,
		C:    c,
		II:   w.II,
		Time: append([]int(nil), w.Time...),
		PE:   append([]int(nil), w.PE...),
	}
	if err := decoded.Validate(); err != nil {
		return fmt.Errorf("mapping: decode: %w", err)
	}
	*m = *decoded
	return nil
}

// decodeWireCGRA rebuilds the array: from the ADL when one travelled (the
// shape fields must then agree with the compiled description — a mismatch is
// a forged or corrupted wire form), from the shape fields alone otherwise.
func decodeWireCGRA(w wireCGRA) (*arch.CGRA, error) {
	topo, err := arch.ParseTopology(w.Topology)
	if err != nil {
		return nil, err
	}
	if w.ADL != "" {
		desc, err := arch.ParseDesc(w.ADL)
		if err != nil {
			return nil, err
		}
		c, err := desc.Compile()
		if err != nil {
			return nil, err
		}
		if c.Rows != w.Rows || c.Cols != w.Cols || c.NumRegs != w.Regs || c.Topology != topo {
			return nil, fmt.Errorf("shape fields %dx%d/%d regs/%s disagree with the adl description (%s)",
				w.Rows, w.Cols, w.Regs, topo, c)
		}
		return c, nil
	}
	return arch.Uniform(w.Rows, w.Cols, w.Regs, topo)
}
