package mapping

import (
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

// fig2 builds the paper's Figure 2 kernel: a->b->c->d plus a->d, on a 1x2
// CGRA with 2 registers per PE.
func fig2() (*dfg.DFG, *arch.CGRA) {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build(), arch.NewMesh(1, 2, 2)
}

// fig2dMapping reproduces the paper's Figure 2(d): the register-using II=2
// mapping — a,d on PE1; b,c on PE0.
func fig2dMapping() *Mapping {
	d, c := fig2()
	m := New(d, c, 2)
	m.Time = []int{0, 1, 2, 3}
	m.PE = []int{1, 0, 0, 1}
	return m
}

func TestFigure2dValid(t *testing.T) {
	m := fig2dMapping()
	if err := m.Validate(); err != nil {
		t.Fatalf("the paper's Figure 2(d) mapping must validate: %v", err)
	}
	if got := m.IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2.0", got)
	}
}

func TestFigure2dRegisterPressure(t *testing.T) {
	m := fig2dMapping()
	press := m.RegisterPressure()
	// a (PE1, t0) feeds d (PE1, t3): span 3, II 2 -> ceil(3/2) = 2 registers,
	// exactly the paper's "two registers are required in PE2".
	if press[1] != 2 {
		t.Errorf("PE1 pressure = %d, want 2", press[1])
	}
	if press[0] != 0 {
		t.Errorf("PE0 pressure = %d, want 0 (b->c is a one-cycle span)", press[0])
	}
}

func TestRegisterOverflowRejected(t *testing.T) {
	d, _ := fig2()
	tiny := arch.NewMesh(1, 2, 1) // only 1 register: Figure 2(d) needs 2
	m := New(d, tiny, 2)
	m.Time = []int{0, 1, 2, 3}
	m.PE = []int{1, 0, 0, 1}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "registers") {
		t.Fatalf("want register-pressure error, got %v", err)
	}
}

func TestSlotCollisionRejected(t *testing.T) {
	d, c := fig2()
	m := New(d, c, 2)
	m.Time = []int{0, 1, 2, 2} // c and d share slot 0... wait: 2%2=0, 0%2=0: a collides
	m.PE = []int{1, 0, 0, 1}
	// a at (PE1, slot 0) and d at (PE1, slot 0) collide.
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("want collision error, got %v", err)
	}
}

func TestAdjacencyViolationRejected(t *testing.T) {
	b := dfg.NewBuilder("pair")
	x := b.Input("x")
	b.Op(dfg.Neg, "y", x)
	d := b.Build()
	c := arch.NewMesh(2, 2, 2)
	m := New(d, c, 2)
	m.Time = []int{0, 1}
	m.PE = []int{0, 3} // diagonal: not connected on a mesh
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "adjacency") {
		t.Fatalf("want adjacency error, got %v", err)
	}
}

func TestLongSpanCrossPERejected(t *testing.T) {
	b := dfg.NewBuilder("pair")
	x := b.Input("x")
	b.Op(dfg.Neg, "y", x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 4)
	m := New(d, c, 4)
	m.Time = []int{0, 2} // span 2 across different PEs: illegal
	m.PE = []int{0, 1}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "register-carried") {
		t.Fatalf("want register-carried error, got %v", err)
	}
	// Same thing on one PE is fine.
	m.PE = []int{0, 0}
	if err := m.Validate(); err != nil {
		t.Fatalf("same-PE long span must validate: %v", err)
	}
}

func TestLatencyViolationRejected(t *testing.T) {
	b := dfg.NewBuilder("pair")
	x := b.Input("x")
	b.Op(dfg.Neg, "y", x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	m := New(d, c, 2)
	m.Time = []int{1, 1} // consumer at the same cycle as producer
	m.PE = []int{0, 1}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "latency") {
		t.Fatalf("want latency error, got %v", err)
	}
}

func TestInterIterationSpan(t *testing.T) {
	// acc(k) = acc(k-1) + x: self edge distance 1. At II=2, span = 0+2 = 2:
	// register-carried on the same PE, pressure ceil(2/2)=1.
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	m := New(d, c, 2)
	m.Time = []int{0, 1}
	m.PE = []int{0, 1}
	if err := m.Validate(); err != nil {
		t.Fatalf("accumulator mapping must validate: %v", err)
	}
	if press := m.RegisterPressure(); press[1] != 1 {
		t.Errorf("PE1 pressure = %d, want 1", press[1])
	}
	// At II=1 the self edge spans exactly 1 cycle: out-register loop-back,
	// no register file use.
	m1 := New(d, c, 1)
	m1.Time = []int{0, 1}
	m1.PE = []int{0, 1}
	if err := m1.Validate(); err != nil {
		t.Fatalf("II=1 accumulator must validate: %v", err)
	}
	if press := m1.RegisterPressure(); press[1] != 0 {
		t.Errorf("PE1 pressure at II=1 = %d, want 0", press[1])
	}
}

func TestBusConflictRejected(t *testing.T) {
	b := dfg.NewBuilder("mem2")
	a1 := b.Input("a1")
	a2 := b.Input("a2")
	b.Op(dfg.Load, "l1", a1)
	b.Op(dfg.Load, "l2", a2)
	d := b.Build()
	c := arch.NewMesh(1, 4, 2) // one row: one bus
	m := New(d, c, 2)
	m.Time = []int{0, 0, 1, 1}
	m.PE = []int{0, 2, 1, 3} // both loads in slot 1 on the same row
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "bus") {
		t.Fatalf("want bus conflict error, got %v", err)
	}
	// Two rows fix it.
	c2 := arch.NewMesh(2, 2, 2)
	m2 := New(d, c2, 2)
	m2.Time = []int{0, 0, 1, 1}
	m2.PE = []int{0, 3, 1, 2} // loads on different rows
	if err := m2.Validate(); err != nil {
		t.Fatalf("cross-row loads must validate: %v", err)
	}
}

func TestCapabilityViolationRejected(t *testing.T) {
	b := dfg.NewBuilder("mul")
	x := b.Input("x")
	b.Op(dfg.Mul, "m", x, x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	c.RestrictPE(1, dfg.Add)
	m := New(d, c, 2)
	m.Time = []int{0, 1}
	m.PE = []int{0, 1}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "cannot execute") {
		t.Fatalf("want capability error, got %v", err)
	}
}

func TestUnboundRejected(t *testing.T) {
	d, c := fig2()
	m := New(d, c, 2)
	if err := m.Validate(); err == nil {
		t.Fatal("unbound mapping must not validate")
	}
}

func TestStringRendersKernel(t *testing.T) {
	m := fig2dMapping()
	s := m.String()
	if !strings.Contains(s, "II=2") || !strings.Contains(s, "a") {
		t.Errorf("String output missing fields:\n%s", s)
	}
}
