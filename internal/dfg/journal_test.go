package dfg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// adjFromEdges recomputes the adjacency lists from scratch, exactly as
// rebuildAdj does — the reference the incremental InsertRoute maintenance is
// diffed against.
func adjFromEdges(d *DFG) (out, in [][]int) {
	out = make([][]int, len(d.Nodes))
	in = make([][]int, len(d.Nodes))
	for ei, e := range d.Edges {
		out[e.From] = append(out[e.From], ei)
		in[e.To] = append(in[e.To], ei)
	}
	return out, in
}

func checkAdjMatchesRebuild(t *testing.T, d *DFG) {
	t.Helper()
	out, in := adjFromEdges(d)
	for v := range d.Nodes {
		if got := d.OutEdges(v); !sameIntList(got, out[v]) {
			t.Fatalf("node %d out-edges = %v, rebuild says %v", v, got, out[v])
		}
		if got := d.InEdges(v); !sameIntList(got, in[v]) {
			t.Fatalf("node %d in-edges = %v, rebuild says %v", v, got, in[v])
		}
	}
}

// sameIntList treats nil and empty as equal (rebuildAdj leaves untouched
// nodes nil; the incremental path may leave a zero-length reused slice).
func sameIntList(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: incremental InsertRoute adjacency maintenance lands exactly where
// a full rebuildAdj would, at every step of a random insertion sequence.
func TestInsertRouteMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAGDFG(rng).Clone()
		if len(d.Edges) == 0 {
			return true // degenerate all-input draw: nothing to insert on
		}
		for step := 0; step < 8; step++ {
			ei := rng.Intn(len(d.Edges))
			d.InsertRoute(ei)
			out, in := adjFromEdges(d)
			for v := range d.Nodes {
				if !sameIntList(d.OutEdges(v), out[v]) || !sameIntList(d.InEdges(v), in[v]) {
					return false
				}
			}
			if err := d.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

type dfgSnapshot struct {
	nodes []Node
	edges []Edge
	out   [][]int
	in    [][]int
}

func snapshot(d *DFG) dfgSnapshot {
	s := dfgSnapshot{
		nodes: append([]Node(nil), d.Nodes...),
		edges: append([]Edge(nil), d.Edges...),
	}
	for v := range d.Nodes {
		s.out = append(s.out, append([]int(nil), d.OutEdges(v)...))
		s.in = append(s.in, append([]int(nil), d.InEdges(v)...))
	}
	return s
}

func checkSnapshot(t *testing.T, d *DFG, want dfgSnapshot) {
	t.Helper()
	if !reflect.DeepEqual(d.Nodes, want.nodes) {
		t.Fatalf("nodes diverged after rollback:\n got %v\nwant %v", d.Nodes, want.nodes)
	}
	if !reflect.DeepEqual(d.Edges, want.edges) {
		t.Fatalf("edges diverged after rollback:\n got %v\nwant %v", d.Edges, want.edges)
	}
	for v := range d.Nodes {
		if !sameIntList(d.OutEdges(v), want.out[v]) {
			t.Fatalf("node %d out = %v, want %v", v, d.OutEdges(v), want.out[v])
		}
		if !sameIntList(d.InEdges(v), want.in[v]) {
			t.Fatalf("node %d in = %v, want %v", v, d.InEdges(v), want.in[v])
		}
	}
}

// Property: Rollback restores the exact pre-Mark graph, including adjacency
// order, after an arbitrary InsertRoute sequence — and the graph stays usable
// for further journaled work (the EMS placer's per-II attempt loop).
func TestMarkRollbackRestoresGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAGDFG(rng).Clone()
		if len(d.Edges) == 0 {
			return true // degenerate all-input draw: nothing to insert on
		}
		base := snapshot(d)
		for attempt := 0; attempt < 3; attempt++ {
			m := d.Mark()
			for step := 0; step < 1+rng.Intn(6); step++ {
				d.InsertRoute(rng.Intn(len(d.Edges)))
			}
			d.Rollback(m)
			s := snapshot(d)
			if !reflect.DeepEqual(s.nodes, base.nodes) || !reflect.DeepEqual(s.edges, base.edges) {
				return false
			}
			for v := range base.nodes {
				if !sameIntList(s.out[v], base.out[v]) || !sameIntList(s.in[v], base.in[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Marks nest LIFO: rolling back the inner mark keeps the outer inserts.
func TestMarkRollbackNested(t *testing.T) {
	d := chain4().Clone()
	outer := d.Mark()
	d.InsertRoute(0)
	mid := snapshot(d)
	inner := d.Mark()
	d.InsertRoute(1)
	d.InsertRoute(2)
	d.Rollback(inner)
	checkSnapshot(t, d, mid)
	checkAdjMatchesRebuild(t, d)
	d.Rollback(outer)
	checkSnapshot(t, d, snapshot(chain4()))
	if err := d.Validate(); err != nil {
		t.Fatalf("rolled-back graph invalid: %v", err)
	}
}

// After a warm-up attempt, a full Mark/InsertRoute/Rollback cycle must not
// allocate: the placer arena leans on this to stop paying a Clone per II.
func TestMarkRollbackCycleAllocFree(t *testing.T) {
	d := chain4().Clone()
	cycle := func() {
		m := d.Mark()
		d.InsertRoute(0)
		d.InsertRoute(1)
		d.Rollback(m)
	}
	cycle() // warm the journal and adjacency slot capacity
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("mark/insert/rollback cycle allocates %.1f times per run, want 0", n)
	}
}

func TestSplitFanoutPanicsWhileJournaling(t *testing.T) {
	d := chain4().Clone()
	d.Mark()
	defer func() {
		if recover() == nil {
			t.Fatal("SplitFanout on a journaling graph did not panic")
		}
	}()
	d.SplitFanout(0, append([]int(nil), d.OutEdges(0)...))
}
