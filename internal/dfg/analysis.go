package dfg

import "fmt"

// ResMII returns the resource-constrained lower bound on II for an array of
// numPEs processing elements arranged in `rows` rows, each row sharing one
// memory bus: ceil(|V| / numPEs) for compute and ceil(memOps / rows) for the
// buses (one access per row per cycle).
func (d *DFG) ResMII(numPEs, rows int) int {
	if numPEs <= 0 || rows <= 0 {
		panic("dfg: ResMII needs positive PE and row counts")
	}
	res := ceilDiv(d.N(), numPEs)
	if m := d.MemOps(); m > 0 {
		if busII := ceilDiv(m, rows); busII > res {
			res = busII
		}
	}
	if res < 1 {
		res = 1
	}
	return res
}

// RecMII returns the recurrence-constrained lower bound on II: the smallest
// II for which the dependence constraint system
//
//	T(j) >= T(i) + lat(i) - II*dist(i,j)
//
// admits a solution, i.e. the constraint graph has no positive-weight cycle.
// Feasibility is monotone in II, so a binary search over [1, sum(lat)]
// bracketed by a Bellman-Ford positive-cycle test suffices.
func (d *DFG) RecMII() int {
	lo, hi := 1, 1
	for _, nd := range d.Nodes {
		hi += nd.Kind.Latency()
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if d.feasibleII(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// feasibleII reports whether the precedence constraints admit a schedule at
// the given II (no positive cycle in the delay graph with edge weights
// lat(i) - II*dist).
func (d *DFG) feasibleII(ii int) bool {
	n := d.N()
	dist := make([]int, n)
	// Longest-path relaxation from an implicit super-source at 0. If any
	// distance still improves after n rounds, a positive cycle exists.
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range d.Edges {
			w := d.Nodes[e.From].Kind.Latency() - ii*e.Dist
			if nd := dist[e.From] + w; nd > dist[e.To] {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	for _, e := range d.Edges {
		w := d.Nodes[e.From].Kind.Latency() - ii*e.Dist
		if dist[e.From]+w > dist[e.To] {
			return false
		}
	}
	return true
}

// MII returns max(ResMII, RecMII), the paper's lower bound used as the
// starting II and as the denominator of the performance metric MII/II.
func (d *DFG) MII(numPEs, rows int) int {
	res := d.ResMII(numPEs, rows)
	rec := d.RecMII()
	if rec > res {
		return rec
	}
	return res
}

// ResBounded reports whether the loop is resource-bounded on the given array
// (ResMII >= RecMII), the paper's classification for its two loop groups.
func (d *DFG) ResBounded(numPEs, rows int) bool {
	return d.ResMII(numPEs, rows) >= d.RecMII()
}

// ASAP computes the earliest feasible schedule slot of every operation at the
// given II by longest-path relaxation over the delay graph (weights
// lat - II*dist, clamped at zero from the implicit start). It returns an
// error if II is below RecMII.
func (d *DFG) ASAP(ii int) ([]int, error) {
	if !d.feasibleII(ii) {
		return nil, fmt.Errorf("dfg %s: no schedule exists at II=%d (RecMII=%d)", d.Name, ii, d.RecMII())
	}
	n := d.N()
	asap := make([]int, n)
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range d.Edges {
			w := d.Nodes[e.From].Kind.Latency() - ii*e.Dist
			if t := asap[e.From] + w; t > asap[e.To] {
				asap[e.To] = t
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return asap, nil
}

// ALAP computes the latest slot of every operation such that the overall
// schedule length (max ASAP) is preserved at the given II.
func (d *DFG) ALAP(ii int) ([]int, error) {
	asap, err := d.ASAP(ii)
	if err != nil {
		return nil, err
	}
	length := 0
	for _, t := range asap {
		if t > length {
			length = t
		}
	}
	n := d.N()
	alap := make([]int, n)
	for i := range alap {
		alap[i] = length
	}
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range d.Edges {
			w := d.Nodes[e.From].Kind.Latency() - ii*e.Dist
			if t := alap[e.To] - w; t < alap[e.From] {
				alap[e.From] = t
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return alap, nil
}

// Heights returns the scheduling priority of each node: the length of the
// longest intra-iteration dependence path from the node to any sink. Higher
// means more urgent; this is the classic height-based ordering the paper
// refers to as the "justifiable static policy".
func (d *DFG) Heights() []int {
	// Longest path to a sink over distance-0 edges (a DAG by validation).
	g := d.IntraGraph()
	order, ok := g.TopoSort()
	if !ok {
		panic("dfg: Heights on graph with distance-0 cycle")
	}
	h := make([]int, d.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range g.Out(v) {
			if hv := h[w] + d.Nodes[v].Kind.Latency(); hv > h[v] {
				h[v] = hv
			}
		}
	}
	return h
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
