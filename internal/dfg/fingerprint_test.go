package dfg

import (
	"testing"
)

func buildFIRish(name string) *DFG {
	b := NewBuilder(name)
	x := b.Input("x")
	h := b.Const("h", 3)
	m := b.Op(Mul, "m", x, h)
	acc := b.Op(Add, "acc", m)
	b.EdgeDist(acc, acc, 1, 1)
	return b.Build()
}

func TestFingerprintDeterministic(t *testing.T) {
	a := buildFIRish("k")
	b := buildFIRish("k")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical builds produced different fingerprints")
	}
	if a.FingerprintHex() != b.FingerprintHex() {
		t.Fatal("hex forms differ")
	}
	if len(a.FingerprintHex()) != 64 {
		t.Fatalf("hex fingerprint has length %d, want 64", len(a.FingerprintHex()))
	}
}

func TestFingerprintSeparatesStructure(t *testing.T) {
	base := buildFIRish("k")
	distinct := map[string]*DFG{"base": base}

	add := func(label string, d *DFG) {
		fp := d.FingerprintHex()
		for prev, pd := range distinct {
			if pd.FingerprintHex() == fp {
				t.Errorf("%s collides with %s", label, prev)
			}
		}
		distinct[label] = d
	}

	add("renamed graph", buildFIRish("k2"))

	b := NewBuilder("k")
	x := b.Input("x")
	h := b.Const("h", 4) // immediate differs
	m := b.Op(Mul, "m", x, h)
	acc := b.Op(Add, "acc", m)
	b.EdgeDist(acc, acc, 1, 1)
	add("changed immediate", b.Build())

	b = NewBuilder("k")
	x = b.Input("x")
	h = b.Const("h", 3)
	m = b.Op(Add, "m", x, h) // kind differs
	acc = b.Op(Add, "acc", m)
	b.EdgeDist(acc, acc, 1, 1)
	add("changed kind", b.Build())

	b = NewBuilder("k")
	x = b.Input("x")
	h = b.Const("h", 3)
	m = b.Op(Mul, "m", x, h)
	acc = b.Op(Add, "acc", m)
	b.EdgeDist(acc, acc, 1, 2) // recurrence distance differs
	add("changed distance", b.Build())
}

func TestFingerprintTracksMutation(t *testing.T) {
	d := buildFIRish("k")
	before := d.Fingerprint()
	clone := d.Clone()
	if clone.Fingerprint() != before {
		t.Fatal("clone changed the fingerprint")
	}
	clone.InsertRoute(0)
	if clone.Fingerprint() == before {
		t.Fatal("InsertRoute left the fingerprint unchanged")
	}
	if d.Fingerprint() != before {
		t.Fatal("mutating the clone changed the original's fingerprint")
	}
}

func TestFromPartsRoundTrip(t *testing.T) {
	d := buildFIRish("k")
	got, err := FromParts(d.Name, d.Nodes, d.Edges)
	if err != nil {
		t.Fatalf("FromParts: %v", err)
	}
	if got.Fingerprint() != d.Fingerprint() {
		t.Fatal("FromParts changed the fingerprint")
	}
	// Adjacency must be rebuilt: the recurrence self-edge leaves acc.
	if len(got.OutEdges(3)) != len(d.OutEdges(3)) {
		t.Fatalf("adjacency not rebuilt: %d out-edges, want %d", len(got.OutEdges(3)), len(d.OutEdges(3)))
	}
	// IDs may be omitted (zero) on the wire.
	nodes := append([]Node(nil), d.Nodes...)
	for i := range nodes {
		nodes[i].ID = 0
	}
	got2, err := FromParts(d.Name, nodes, d.Edges)
	if err != nil {
		t.Fatalf("FromParts without IDs: %v", err)
	}
	if got2.Fingerprint() != d.Fingerprint() {
		t.Fatal("ID-less FromParts changed the fingerprint")
	}
}

func TestFromPartsRejectsMalformed(t *testing.T) {
	d := buildFIRish("k")
	edges := append([]Edge(nil), d.Edges...)
	edges[0].To = 99
	if _, err := FromParts(d.Name, d.Nodes, edges); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestKindFromString(t *testing.T) {
	for k := OpKind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("blender"); ok {
		t.Fatal("unknown mnemonic accepted")
	}
}
