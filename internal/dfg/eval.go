package dfg

import "fmt"

// InputValue is the deterministic live-in stream: the value an Input node
// produces at a given iteration. Kernels have no real trace data attached
// (see DESIGN.md substitutions), so inputs are a fixed pseudo-random function
// of (node, iteration), which exercises exactly the same data movement.
func InputValue(nodeID int, iteration int64) int64 {
	return mix(int64(uint64(nodeID)*0x9e3779b97f4a7c15) + iteration*0x2545f4914f6cdd1d)
}

// LoadValue is the deterministic memory model: the value a Load observes for
// a given address. A hash keeps distinct addresses distinct while remaining
// reproducible across the reference interpreter and the CGRA simulator.
func LoadValue(addr int64) int64 {
	return mix(addr ^ 0x6a09e667f3bcc908)
}

func mix(x int64) int64 {
	z := uint64(x)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Keep magnitudes small enough that chained multiplies stay meaningful
	// (wrap-around is fine — both executions wrap identically — but small
	// values make failures readable).
	return int64(z % 1021)
}

// Eval computes the result of a non-memory, non-input operation from its
// operand values. Load and Store are handled by the executor (they need a
// memory model); Input needs the iteration number. Eval panics on those
// kinds: the executor must special-case them.
func Eval(kind OpKind, imm int64, args []int64) int64 {
	if want := kind.Arity(); want >= 0 && len(args) != want && kind != Const {
		panic(fmt.Sprintf("dfg: %s called with %d args, want %d", kind, len(args), want))
	}
	switch kind {
	case Const:
		return imm
	case Add:
		return args[0] + args[1]
	case Sub:
		return args[0] - args[1]
	case Mul:
		return args[0] * args[1]
	case And:
		return args[0] & args[1]
	case Or:
		return args[0] | args[1]
	case Xor:
		return args[0] ^ args[1]
	case Shl:
		return args[0] << uint(args[1]&63)
	case Shr:
		return args[0] >> uint(args[1]&63)
	case Min:
		if args[0] < args[1] {
			return args[0]
		}
		return args[1]
	case Max:
		if args[0] > args[1] {
			return args[0]
		}
		return args[1]
	case Abs:
		if args[0] < 0 {
			return -args[0]
		}
		return args[0]
	case Neg:
		return -args[0]
	case Not:
		return ^args[0]
	case CmpLT:
		if args[0] < args[1] {
			return 1
		}
		return 0
	case CmpEQ:
		if args[0] == args[1] {
			return 1
		}
		return 0
	case Select:
		if args[0] != 0 {
			return args[1]
		}
		return args[2]
	case Route:
		return args[0]
	default:
		// Load, Store, Input and Counter need machine state or the iteration
		// index; executors special-case them.
		panic(fmt.Sprintf("dfg: Eval cannot execute %s (executor must special-case it)", kind))
	}
}
