// Package dfg models loop bodies as data-flow graphs: typed operation nodes
// connected by dependence edges that carry an inter-iteration distance. It
// provides the analyses the mappers need — validation, ASAP/ALAP windows,
// height priorities, and the II lower bounds ResMII / RecMII / MII — plus a
// reference evaluator used by the functional simulator.
//
// Terminology follows Rau's iterative modulo scheduling and the REGIMap paper:
// an edge (i, j, dist) means operation j of iteration k consumes the value
// produced by operation i of iteration k-dist; dist 0 is an ordinary
// intra-iteration dependence.
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"regimap/internal/graph"
)

// OpKind enumerates the operations a PE's ALU can execute. All operations
// have unit latency, matching the paper's CGRA model.
type OpKind int

// Operation kinds. Route is an explicit pass-through (copy) used when a
// mapper inserts routing nodes to carry a value through a PE.
const (
	Const   OpKind = iota // immediate operand, no inputs
	Input                 // loop live-in (modelled as a deterministic stream)
	Counter               // the loop induction variable: value = iteration index
	Add
	Sub
	Mul
	And
	Or
	Xor
	Shl
	Shr
	Min
	Max
	Abs
	Neg
	Not
	CmpLT // 1 if a < b else 0
	CmpEQ // 1 if a == b else 0
	Select
	Route // copy: out = in
	Load  // memory read; one input: address
	Store // memory write; two inputs: address, value; no output
	numKinds
)

// NumKinds is the number of defined operation kinds, for consumers that
// enumerate the full instruction set (capability classes, fingerprints).
const NumKinds = int(numKinds)

var kindInfo = [numKinds]struct {
	name  string
	arity int // -1 means variadic
	mem   bool
}{
	Const:   {"const", 0, false},
	Input:   {"input", 0, false},
	Counter: {"counter", 0, false},
	Add:     {"add", 2, false},
	Sub:     {"sub", 2, false},
	Mul:     {"mul", 2, false},
	And:     {"and", 2, false},
	Or:      {"or", 2, false},
	Xor:     {"xor", 2, false},
	Shl:     {"shl", 2, false},
	Shr:     {"shr", 2, false},
	Min:     {"min", 2, false},
	Max:     {"max", 2, false},
	Abs:     {"abs", 1, false},
	Neg:     {"neg", 1, false},
	Not:     {"not", 1, false},
	CmpLT:   {"cmplt", 2, false},
	CmpEQ:   {"cmpeq", 2, false},
	Select:  {"select", 3, false},
	Route:   {"route", 1, false},
	Load:    {"load", 1, true},
	Store:   {"store", 2, true},
}

// String returns the mnemonic of the kind.
func (k OpKind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return kindInfo[k].name
}

// Arity returns the number of operands the kind expects, or -1 if variadic.
func (k OpKind) Arity() int { return kindInfo[k].arity }

// IsMem reports whether the kind accesses the data memory and therefore
// occupies a row bus slot.
func (k OpKind) IsMem() bool { return kindInfo[k].mem }

// Latency returns the operation latency in cycles. The paper's CGRA executes
// every operation in a single cycle.
func (k OpKind) Latency() int { return 1 }

// Node is one operation of the loop body.
type Node struct {
	ID    int
	Name  string
	Kind  OpKind
	Value int64 // immediate for Const; ignored otherwise
}

// Edge is a data dependence. Port is the operand position of To that this
// edge feeds; Dist is the inter-iteration distance (0 = same iteration).
type Edge struct {
	From, To int
	Port     int
	Dist     int
}

// DFG is an immutable-by-convention data-flow graph. Construct one with a
// Builder; mutate only via the documented helpers (Clone, InsertRoute).
type DFG struct {
	Name  string
	Nodes []Node
	Edges []Edge

	out [][]int // edge indices leaving each node
	in  [][]int // edge indices entering each node

	// journal records InsertRoute undo information once Mark has been called,
	// so Rollback can rewind the graph without a fresh Clone per attempt (the
	// EMS placer's arena reuse). nil until the first Mark.
	journal []routeUndo
	// routeNames caches InsertRoute node names by (id, producer name): after
	// a Rollback the same id is often re-minted over the same producer, so
	// the steady-state mark/insert/rollback cycle stays allocation-free. The
	// key carries the producer's name, not its id — a route node re-minted
	// at the same id can itself be named differently across attempts.
	routeNames map[nameKey]string
}

type nameKey struct {
	id   int
	from string
}

// routeUndo is the inverse of one InsertRoute call: the split edge's index
// and original value, plus where that index sat inside in[old.To] so the
// adjacency list order (ascending edge index, exactly what rebuildAdj
// produces) can be restored in place.
type routeUndo struct {
	ei    int
	old   Edge
	toPos int
}

// rebuildAdj recomputes the adjacency indices after structural edits.
func (d *DFG) rebuildAdj() {
	d.out = make([][]int, len(d.Nodes))
	d.in = make([][]int, len(d.Nodes))
	for ei, e := range d.Edges {
		d.out[e.From] = append(d.out[e.From], ei)
		d.in[e.To] = append(d.in[e.To], ei)
	}
}

// N returns the number of operations.
func (d *DFG) N() int { return len(d.Nodes) }

// OutEdges returns the indices into d.Edges of edges leaving node v.
func (d *DFG) OutEdges(v int) []int { return d.out[v] }

// InEdges returns the indices into d.Edges of edges entering node v.
func (d *DFG) InEdges(v int) []int { return d.in[v] }

// MemOps returns the number of memory operations (loads and stores).
func (d *DFG) MemOps() int {
	n := 0
	for _, nd := range d.Nodes {
		if nd.Kind.IsMem() {
			n++
		}
	}
	return n
}

// Validate checks structural well-formedness: edge endpoints in range,
// non-negative distances, operand ports filled exactly once per node, and the
// intra-iteration subgraph acyclic (a cycle with total distance zero can never
// be scheduled).
func (d *DFG) Validate() error {
	n := len(d.Nodes)
	for i, nd := range d.Nodes {
		if nd.ID != i {
			return fmt.Errorf("dfg %s: node %d has ID %d", d.Name, i, nd.ID)
		}
		if nd.Kind < 0 || nd.Kind >= numKinds {
			return fmt.Errorf("dfg %s: node %d has invalid kind %d", d.Name, i, nd.Kind)
		}
	}
	ports := make([]map[int]bool, n)
	for i := range ports {
		ports[i] = map[int]bool{}
	}
	intra := graph.New(n)
	for ei, e := range d.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("dfg %s: edge %d endpoint out of range", d.Name, ei)
		}
		if e.Dist < 0 {
			return fmt.Errorf("dfg %s: edge %d has negative distance %d", d.Name, ei, e.Dist)
		}
		if d.Nodes[e.From].Kind == Store {
			return fmt.Errorf("dfg %s: edge %d sources a store (stores produce no value)", d.Name, ei)
		}
		if e.Port < 0 {
			return fmt.Errorf("dfg %s: edge %d has negative port", d.Name, ei)
		}
		if ports[e.To][e.Port] {
			return fmt.Errorf("dfg %s: node %s port %d fed twice", d.Name, d.Nodes[e.To].Name, e.Port)
		}
		ports[e.To][e.Port] = true
		if e.Dist == 0 {
			intra.AddEdge(e.From, e.To)
		}
	}
	for i, nd := range d.Nodes {
		want := nd.Kind.Arity()
		if want < 0 {
			continue
		}
		if got := len(ports[i]); got != want {
			return fmt.Errorf("dfg %s: node %s (%s) has %d operands, want %d",
				d.Name, nd.Name, nd.Kind, got, want)
		}
		for p := 0; p < want; p++ {
			if !ports[i][p] {
				return fmt.Errorf("dfg %s: node %s missing operand port %d", d.Name, nd.Name, p)
			}
		}
	}
	if intra.HasCycle() {
		return fmt.Errorf("dfg %s: intra-iteration dependence cycle (distance-0 cycle)", d.Name)
	}
	return nil
}

// Clone returns a deep copy that can be modified independently.
func (d *DFG) Clone() *DFG {
	c := &DFG{
		Name:  d.Name,
		Nodes: append([]Node(nil), d.Nodes...),
		Edges: append([]Edge(nil), d.Edges...),
	}
	c.rebuildAdj()
	return c
}

// InsertRoute splits edge index ei by inserting a Route node: the original
// producer feeds the new node with the edge's full distance and the new node
// feeds the original consumer with distance 0. It returns the new node's ID.
// This is the "insert extra routing nodes" relaxation from the paper's
// rescheduling step.
//
// The adjacency indices are maintained incrementally but land exactly where
// rebuildAdj would put them: out[From] keeps edge ei (it now targets the
// route), in[To] loses ei and gains the appended edge's index at the end
// (the new index is the largest, so ascending order is preserved), and the
// route node's single in/out lists are trivial. TestInsertRouteMatchesRebuild
// pins the equivalence.
func (d *DFG) InsertRoute(ei int) int {
	e := d.Edges[ei]
	id := len(d.Nodes)
	d.Nodes = append(d.Nodes, Node{
		ID:   id,
		Name: d.routeName(id, e.From),
		Kind: Route,
	})
	newIdx := len(d.Edges)
	d.Edges[ei] = Edge{From: e.From, To: id, Port: 0, Dist: e.Dist}
	d.Edges = append(d.Edges, Edge{From: id, To: e.To, Port: e.Port, Dist: 0})

	toPos := -1
	inTo := d.in[e.To]
	for i, idx := range inTo {
		if idx == ei {
			toPos = i
			break
		}
	}
	if toPos < 0 {
		panic("dfg: InsertRoute on an edge missing from its consumer's adjacency")
	}
	d.in[e.To] = append(inTo[:toPos], inTo[toPos+1:]...)
	d.in[e.To] = append(d.in[e.To], newIdx)
	// Grow the per-node lists, reusing slot capacity left behind by Rollback
	// so repeated attempts stop allocating.
	d.out = extendAdj(d.out, id)
	d.in = extendAdj(d.in, id)
	d.out[id] = append(d.out[id][:0], newIdx)
	d.in[id] = append(d.in[id][:0], ei)

	if d.journal != nil {
		d.journal = append(d.journal, routeUndo{ei: ei, old: e, toPos: toPos})
	}
	return id
}

// routeName formats a route node's name, memoizing by (id, producer) so that
// re-minting the same id after a Rollback does not allocate. The produced
// string is byte-identical to the direct Sprintf — node names end up in
// mapping output, which the golden suite pins.
func (d *DFG) routeName(id, from int) string {
	key := nameKey{id, d.Nodes[from].Name}
	if name, ok := d.routeNames[key]; ok {
		return name
	}
	name := fmt.Sprintf("rt%d_%s", id, d.Nodes[from].Name)
	if d.routeNames == nil {
		d.routeNames = make(map[nameKey]string)
	}
	d.routeNames[key] = name
	return name
}

// extendAdj grows an adjacency list to cover node id, preferring to re-expose
// capacity truncated by a Rollback (the slot then still holds its old slice,
// whose backing array the caller reuses) over appending.
func extendAdj(adj [][]int, id int) [][]int {
	if id < cap(adj) {
		return adj[:id+1]
	}
	return append(adj, nil)
}

// Mark checkpoints the graph for Rollback and enables undo journaling of
// InsertRoute from here on. Marks nest: roll back to any outstanding mark in
// LIFO order. Helpers that rebuild the adjacency wholesale (SplitFanout,
// Duplicate) are not journaled — calling them with a mark outstanding panics
// rather than silently corrupting a later Rollback.
type Mark struct {
	nodes, edges, journal int
}

// Mark returns a checkpoint Rollback can rewind to. The first Mark on a
// graph switches InsertRoute into journaling mode.
func (d *DFG) Mark() Mark {
	if d.journal == nil {
		d.journal = make([]routeUndo, 0, 16)
	}
	return Mark{nodes: len(d.Nodes), edges: len(d.Edges), journal: len(d.journal)}
}

// Rollback rewinds every InsertRoute performed since the mark was taken,
// restoring nodes, edges, and adjacency to their exact prior state. The EMS
// placer uses it to reuse one working clone across II attempts instead of
// re-cloning the kernel per attempt.
func (d *DFG) Rollback(m Mark) {
	if m.journal > len(d.journal) || m.nodes > len(d.Nodes) || m.edges > len(d.Edges) {
		panic("dfg: Rollback to a mark from the graph's future")
	}
	for j := len(d.journal) - 1; j >= m.journal; j-- {
		u := d.journal[j]
		e := u.old
		// Undo in[To]: drop the appended new-edge index, reinsert ei at its
		// original position.
		inTo := d.in[e.To]
		inTo = inTo[:len(inTo)-1]
		inTo = append(inTo, 0)
		copy(inTo[u.toPos+1:], inTo[u.toPos:])
		inTo[u.toPos] = u.ei
		d.in[e.To] = inTo
		d.Edges[u.ei] = e
	}
	d.journal = d.journal[:m.journal]
	d.Nodes = d.Nodes[:m.nodes]
	d.Edges = d.Edges[:m.edges]
	d.out = d.out[:m.nodes]
	d.in = d.in[:m.nodes]
}

// checkNotJournaling rejects whole-adjacency rebuilds on a graph that has
// outstanding Mark state: rebuildAdj cannot be journaled, so a later Rollback
// would silently corrupt the adjacency.
func (d *DFG) checkNotJournaling(op string) {
	if d.journal != nil {
		panic("dfg: " + op + " on a graph with Mark/Rollback journaling enabled")
	}
}

// SplitFanout inserts a Route node fed by v and re-points the given outgoing
// edges of v (indices into d.Edges, all originating at v) to originate from
// the route instead. The route copies v's value one cycle later, so a high
// fan-out value can be distributed as a tree — the transformation behind the
// paper's path sharing. It returns the new node's ID.
func (d *DFG) SplitFanout(v int, edgeIdxs []int) int {
	d.checkNotJournaling("SplitFanout")
	id := len(d.Nodes)
	d.Nodes = append(d.Nodes, Node{
		ID:   id,
		Name: fmt.Sprintf("fan%d_%s", id, d.Nodes[v].Name),
		Kind: Route,
	})
	for _, ei := range edgeIdxs {
		e := d.Edges[ei]
		if e.From != v {
			panic(fmt.Sprintf("dfg: SplitFanout edge %d does not originate at %s", ei, d.Nodes[v].Name))
		}
		d.Edges[ei] = Edge{From: id, To: e.To, Port: e.Port, Dist: e.Dist}
	}
	d.Edges = append(d.Edges, Edge{From: v, To: id, Port: 0, Dist: 0})
	d.rebuildAdj()
	return id
}

// Duplicate clones operation v (recomputation, Hamzeh et al. EPIMap): the
// clone receives copies of all of v's input edges and takes over the given
// outgoing edges of v. The paper's problem formulation explicitly allows an
// operation to be mapped to multiple PEs; cloning the node expresses that in
// the one-PE-per-node heuristic. It returns the clone's ID.
func (d *DFG) Duplicate(v int, edgeIdxs []int) int {
	d.checkNotJournaling("Duplicate")
	id := len(d.Nodes)
	src := d.Nodes[v]
	d.Nodes = append(d.Nodes, Node{
		ID:    id,
		Name:  fmt.Sprintf("dup%d_%s", id, src.Name),
		Kind:  src.Kind,
		Value: src.Value,
	})
	for _, ei := range append([]int(nil), d.in[v]...) {
		e := d.Edges[ei]
		d.Edges = append(d.Edges, Edge{From: e.From, To: id, Port: e.Port, Dist: e.Dist})
	}
	for _, ei := range edgeIdxs {
		e := d.Edges[ei]
		if e.From != v {
			panic(fmt.Sprintf("dfg: Duplicate edge %d does not originate at %s", ei, src.Name))
		}
		d.Edges[ei] = Edge{From: id, To: e.To, Port: e.Port, Dist: e.Dist}
	}
	d.rebuildAdj()
	return id
}

// IntraGraph returns the distance-0 dependence structure as a plain digraph.
func (d *DFG) IntraGraph() *graph.Digraph {
	g := graph.New(len(d.Nodes))
	for _, e := range d.Edges {
		if e.Dist == 0 {
			g.AddEdge(e.From, e.To)
		}
	}
	return g
}

// FullGraph returns the dependence structure including inter-iteration edges.
func (d *DFG) FullGraph() *graph.Digraph {
	g := graph.New(len(d.Nodes))
	for _, e := range d.Edges {
		g.AddEdge(e.From, e.To)
	}
	return g
}

// DOT renders the DFG in Graphviz syntax; inter-iteration edges are dashed
// and labelled with their distance.
func (d *DFG) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	for _, nd := range d.Nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"];\n", nd.ID, nd.Name, nd.Kind)
	}
	for _, e := range d.Edges {
		if e.Dist > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed,label=\"%d\"];\n", e.From, e.To, e.Dist)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line human description: name, op count, memory ops,
// and edge count.
func (d *DFG) Summary() string {
	return fmt.Sprintf("%s: %d ops (%d mem), %d edges", d.Name, d.N(), d.MemOps(), len(d.Edges))
}

// Builder constructs DFGs with a fluent, panic-on-misuse API; kernels are
// built once at start-up so panics surface programming errors immediately.
type Builder struct {
	d    *DFG
	errs []string
}

// NewBuilder starts a DFG with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{d: &DFG{Name: name}}
}

// Const adds an immediate node.
func (b *Builder) Const(name string, v int64) int {
	return b.raw(name, Const, v)
}

// Input adds a live-in node (a value stream entering the loop).
func (b *Builder) Input(name string) int {
	return b.raw(name, Input, 0)
}

// Counter adds the loop induction variable (value = iteration index).
func (b *Builder) Counter(name string) int {
	return b.raw(name, Counter, 0)
}

// Op adds an operation whose intra-iteration operands are the given nodes, in
// port order. Recurrence operands are attached afterwards with EdgeDist.
func (b *Builder) Op(kind OpKind, name string, operands ...int) int {
	id := b.raw(name, kind, 0)
	for port, from := range operands {
		b.edge(from, id, port, 0)
	}
	return id
}

// EdgeDist attaches a dependence with inter-iteration distance dist feeding
// the given operand port of to.
func (b *Builder) EdgeDist(from, to, port, dist int) {
	b.edge(from, to, port, dist)
}

func (b *Builder) raw(name string, kind OpKind, v int64) int {
	id := len(b.d.Nodes)
	b.d.Nodes = append(b.d.Nodes, Node{ID: id, Name: name, Kind: kind, Value: v})
	return id
}

func (b *Builder) edge(from, to, port, dist int) {
	b.d.Edges = append(b.d.Edges, Edge{From: from, To: to, Port: port, Dist: dist})
}

// Build finalizes the DFG, validating it. It panics on a malformed graph;
// kernels are static program data, so this is a programmer error.
func (b *Builder) Build() *DFG {
	b.d.rebuildAdj()
	if err := b.d.Validate(); err != nil {
		panic("dfg: " + err.Error())
	}
	return b.d
}

// Sinks returns the IDs of nodes with no outgoing edges, sorted.
func (d *DFG) Sinks() []int {
	var s []int
	for v := range d.Nodes {
		if len(d.out[v]) == 0 {
			s = append(s, v)
		}
	}
	sort.Ints(s)
	return s
}
