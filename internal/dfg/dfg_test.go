package dfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain4 is the paper's Figure 2 DFG: a->b->c->d plus a->d.
func chain4() *DFG {
	b := NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(Neg, "b", a)
	c := b.Op(Neg, "c", bb)
	d := b.Op(Add, "d", c, a)
	_ = d
	return b.Build()
}

func TestBuilderAndValidate(t *testing.T) {
	d := chain4()
	if d.N() != 4 {
		t.Fatalf("N = %d, want 4", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(d.OutEdges(0)); got != 2 {
		t.Errorf("a has %d out edges, want 2", got)
	}
	if got := len(d.InEdges(3)); got != 2 {
		t.Errorf("d has %d in edges, want 2", got)
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	// Arity mismatch.
	bad := &DFG{Name: "bad", Nodes: []Node{{ID: 0, Name: "x", Kind: Add}}}
	bad.rebuildAdj()
	if err := bad.Validate(); err == nil {
		t.Error("accepted add with no operands")
	}
	// Port fed twice.
	bad = &DFG{
		Name: "bad2",
		Nodes: []Node{
			{ID: 0, Name: "a", Kind: Input},
			{ID: 1, Name: "n", Kind: Neg},
		},
		Edges: []Edge{{From: 0, To: 1, Port: 0}, {From: 0, To: 1, Port: 0}},
	}
	bad.rebuildAdj()
	if err := bad.Validate(); err == nil {
		t.Error("accepted doubly-fed port")
	}
	// Distance-0 cycle.
	bad = &DFG{
		Name: "bad3",
		Nodes: []Node{
			{ID: 0, Name: "a", Kind: Neg},
			{ID: 1, Name: "b", Kind: Neg},
		},
		Edges: []Edge{{From: 0, To: 1, Port: 0}, {From: 1, To: 0, Port: 0}},
	}
	bad.rebuildAdj()
	if err := bad.Validate(); err == nil {
		t.Error("accepted distance-0 cycle")
	}
	// Negative distance.
	bad = &DFG{
		Name: "bad4",
		Nodes: []Node{
			{ID: 0, Name: "a", Kind: Input},
			{ID: 1, Name: "b", Kind: Neg},
		},
		Edges: []Edge{{From: 0, To: 1, Port: 0, Dist: -1}},
	}
	bad.rebuildAdj()
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative distance")
	}
	// Store used as producer.
	bad = &DFG{
		Name: "bad5",
		Nodes: []Node{
			{ID: 0, Name: "a", Kind: Input},
			{ID: 1, Name: "s", Kind: Store},
			{ID: 2, Name: "n", Kind: Neg},
		},
		Edges: []Edge{
			{From: 0, To: 1, Port: 0},
			{From: 0, To: 1, Port: 1},
			{From: 1, To: 2, Port: 0},
		},
	}
	bad.rebuildAdj()
	if err := bad.Validate(); err == nil {
		t.Error("accepted store with an out edge")
	}
}

func TestResMII(t *testing.T) {
	d := chain4()
	cases := []struct {
		pes, rows, want int
	}{
		{2, 1, 2},  // 4 ops on 2 PEs
		{4, 1, 1},  // enough PEs
		{16, 4, 1}, // plenty
		{1, 1, 4},  // serial
	}
	for _, c := range cases {
		if got := d.ResMII(c.pes, c.rows); got != c.want {
			t.Errorf("ResMII(%d,%d) = %d, want %d", c.pes, c.rows, got, c.want)
		}
	}
}

func TestResMIIMemoryBus(t *testing.T) {
	b := NewBuilder("membound")
	for i := 0; i < 6; i++ {
		addr := b.Input("a")
		b.Op(Load, "ld", addr)
	}
	d := b.Build()
	// 12 ops, 6 loads. On a 4x4 (16 PEs, 4 rows): compute bound 1, bus bound
	// ceil(6/4)=2.
	if got := d.ResMII(16, 4); got != 2 {
		t.Errorf("ResMII = %d, want 2 (memory-bus bound)", got)
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	if got := chain4().RecMII(); got != 1 {
		t.Errorf("RecMII = %d, want 1 for an acyclic DFG", got)
	}
}

func TestRecMIIAccumulator(t *testing.T) {
	// acc = acc + x: one-node cycle of latency 1, distance 1 -> RecMII 1.
	b := NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	if got := d.RecMII(); got != 1 {
		t.Errorf("RecMII = %d, want 1", got)
	}
}

func TestRecMIILongCycle(t *testing.T) {
	// Three-op recurrence, distance 1: RecMII = 3.
	b := NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(Add, "p", x)
	q := b.Op(Neg, "q", p)
	r := b.Op(Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	d := b.Build()
	if got := d.RecMII(); got != 3 {
		t.Errorf("RecMII = %d, want 3", got)
	}
	// Same cycle with distance 2 halves the bound: ceil(3/2) = 2.
	b2 := NewBuilder("rec3d2")
	x2 := b2.Input("x")
	p2 := b2.Op(Add, "p", x2)
	q2 := b2.Op(Neg, "q", p2)
	r2 := b2.Op(Neg, "r", q2)
	b2.EdgeDist(r2, p2, 1, 2)
	d2 := b2.Build()
	if got := d2.RecMII(); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
}

func TestMIIAndBoundedness(t *testing.T) {
	// rec3 on a large array is rec-bounded; chain4 on 1 PE is res-bounded.
	b := NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(Add, "p", x)
	q := b.Op(Neg, "q", p)
	r := b.Op(Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	rec := b.Build()
	if rec.ResBounded(16, 4) {
		t.Error("rec3 on 4x4 should be rec-bounded")
	}
	if got := rec.MII(16, 4); got != 3 {
		t.Errorf("MII = %d, want 3", got)
	}
	ch := chain4()
	if !ch.ResBounded(1, 1) {
		t.Error("chain4 on 1 PE should be res-bounded")
	}
	if got := ch.MII(1, 1); got != 4 {
		t.Errorf("MII = %d, want 4", got)
	}
}

func TestASAPALAP(t *testing.T) {
	d := chain4()
	asap, err := d.ASAP(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if asap[i] != want[i] {
			t.Fatalf("ASAP = %v, want %v", asap, want)
		}
	}
	alap, err := d.ALAP(2)
	if err != nil {
		t.Fatal(err)
	}
	// On the critical path ASAP == ALAP.
	for i := range asap {
		if alap[i] < asap[i] {
			t.Errorf("node %d: ALAP %d < ASAP %d", i, alap[i], asap[i])
		}
	}
	if alap[0] != 0 || alap[3] != 3 {
		t.Errorf("ALAP = %v: critical path endpoints should be pinned", alap)
	}
}

func TestASAPInfeasible(t *testing.T) {
	b := NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(Add, "p", x)
	q := b.Op(Neg, "q", p)
	r := b.Op(Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	d := b.Build()
	if _, err := d.ASAP(2); err == nil {
		t.Error("ASAP accepted II below RecMII")
	}
}

func TestASAPRespectsRecurrenceSlack(t *testing.T) {
	// At II=4, a distance-1 back edge over 3 ops leaves slack; ASAP must
	// still satisfy every constraint T(j) >= T(i)+1-II*dist.
	b := NewBuilder("rec")
	x := b.Input("x")
	p := b.Op(Add, "p", x)
	q := b.Op(Neg, "q", p)
	r := b.Op(Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	d := b.Build()
	asap, err := d.ASAP(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Edges {
		if asap[e.To] < asap[e.From]+1-4*e.Dist {
			t.Errorf("ASAP violates edge %v: %v", e, asap)
		}
	}
}

func TestHeights(t *testing.T) {
	d := chain4()
	h := d.Heights()
	// a is 3 hops from sink d; d is a sink.
	if h[0] != 3 || h[3] != 0 {
		t.Errorf("Heights = %v, want h[a]=3 h[d]=0", h)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := chain4()
	c := d.Clone()
	c.Nodes[0].Name = "changed"
	c.InsertRoute(0)
	if d.Nodes[0].Name == "changed" || d.N() == c.N() {
		t.Error("Clone is not independent")
	}
}

func TestInsertRoute(t *testing.T) {
	d := chain4().Clone()
	// Edge 1 is a->d? Find the a->d edge.
	var ei int
	for i, e := range d.Edges {
		if e.From == 0 && e.To == 3 {
			ei = i
		}
	}
	before := d.N()
	rt := d.InsertRoute(ei)
	if d.N() != before+1 {
		t.Fatal("InsertRoute did not add a node")
	}
	if d.Nodes[rt].Kind != Route {
		t.Error("inserted node is not a Route")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("DFG invalid after InsertRoute: %v", err)
	}
	// Path a -> rt -> d must exist.
	found := false
	for _, e := range d.Edges {
		if e.From == rt && e.To == 3 {
			found = true
		}
	}
	if !found {
		t.Error("route node not wired to the consumer")
	}
}

func TestDOTAndSummary(t *testing.T) {
	b := NewBuilder("dotted")
	x := b.Input("x")
	a := b.Op(Add, "a", x, x)
	// Violation of single port: use distinct inputs instead.
	_ = a
	d := func() *DFG {
		bb := NewBuilder("dotted")
		u := bb.Input("u")
		s := bb.Op(Add, "s", u)
		bb.EdgeDist(s, s, 1, 1)
		return bb.Build()
	}()
	dot := d.DOT()
	if !strings.Contains(dot, "style=dashed") {
		t.Error("DOT missing dashed recurrence edge")
	}
	if !strings.Contains(d.Summary(), "2 ops") {
		t.Errorf("Summary = %q", d.Summary())
	}
}

func TestBuilderDoubleFedPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted add with both ports on same port index")
		}
	}()
	b := NewBuilder("bad")
	x := b.Input("x")
	a := b.Op(Add, "a", x, x)
	b.EdgeDist(a, a, 0, 1) // port 0 already fed
	b.Build()
}

func TestSinks(t *testing.T) {
	d := chain4()
	s := d.Sinks()
	if len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", s)
	}
}

func TestEvalKinds(t *testing.T) {
	cases := []struct {
		kind OpKind
		imm  int64
		args []int64
		want int64
	}{
		{Const, 42, nil, 42},
		{Add, 0, []int64{2, 3}, 5},
		{Sub, 0, []int64{2, 3}, -1},
		{Mul, 0, []int64{4, 3}, 12},
		{And, 0, []int64{6, 3}, 2},
		{Or, 0, []int64{6, 3}, 7},
		{Xor, 0, []int64{6, 3}, 5},
		{Shl, 0, []int64{1, 4}, 16},
		{Shr, 0, []int64{16, 2}, 4},
		{Min, 0, []int64{2, 3}, 2},
		{Max, 0, []int64{2, 3}, 3},
		{Abs, 0, []int64{-5}, 5},
		{Neg, 0, []int64{5}, -5},
		{Not, 0, []int64{0}, -1},
		{CmpLT, 0, []int64{1, 2}, 1},
		{CmpLT, 0, []int64{2, 1}, 0},
		{CmpEQ, 0, []int64{7, 7}, 1},
		{Select, 0, []int64{1, 10, 20}, 10},
		{Select, 0, []int64{0, 10, 20}, 20},
		{Route, 0, []int64{9}, 9},
	}
	for _, c := range cases {
		if got := Eval(c.kind, c.imm, c.args); got != c.want {
			t.Errorf("Eval(%s, %v) = %d, want %d", c.kind, c.args, got, c.want)
		}
	}
}

func TestEvalPanicsOnExecutorKinds(t *testing.T) {
	for _, k := range []OpKind{Load, Store, Input} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Eval(%s) did not panic", k)
				}
			}()
			Eval(k, 0, []int64{0, 0})
		}()
	}
}

func TestDeterministicStreams(t *testing.T) {
	if InputValue(3, 7) != InputValue(3, 7) {
		t.Error("InputValue not deterministic")
	}
	if InputValue(3, 7) == InputValue(3, 8) && InputValue(2, 7) == InputValue(3, 7) {
		t.Error("InputValue suspiciously constant")
	}
	if LoadValue(100) != LoadValue(100) {
		t.Error("LoadValue not deterministic")
	}
}

func TestKindStrings(t *testing.T) {
	if Add.String() != "add" || Load.String() != "load" {
		t.Error("kind mnemonics wrong")
	}
	if !strings.Contains(OpKind(99).String(), "99") {
		t.Error("out-of-range kind should print its number")
	}
	if !Load.IsMem() || Add.IsMem() {
		t.Error("IsMem wrong")
	}
	if Add.Latency() != 1 {
		t.Error("latency must be 1 cycle")
	}
}

// randomDAGDFG builds a random valid DFG (possibly with recurrences).
func randomDAGDFG(rng *rand.Rand) *DFG {
	b := NewBuilder("rand")
	n := 3 + rng.Intn(15)
	ids := make([]int, 0, n)
	ids = append(ids, b.Input("in0"))
	binKinds := []OpKind{Add, Sub, Mul, Xor, Min, Max}
	for len(ids) < n {
		switch rng.Intn(5) {
		case 0:
			ids = append(ids, b.Input("in"))
		default:
			k := binKinds[rng.Intn(len(binKinds))]
			a := ids[rng.Intn(len(ids))]
			c := ids[rng.Intn(len(ids))]
			ids = append(ids, b.Op(k, "op", a, c))
		}
	}
	// Sprinkle recurrences: from any node to an Add node's... we can't reuse
	// filled ports, so add dedicated accumulate nodes.
	if rng.Intn(2) == 0 {
		src := ids[rng.Intn(len(ids))]
		acc := b.Op(Add, "acc", src)
		b.EdgeDist(acc, acc, 1, 1+rng.Intn(2))
	}
	return b.Build()
}

// Property: RecMII is the minimum feasible II — feasible at RecMII, not below.
func TestRecMIIMinimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAGDFG(rng)
		rec := d.RecMII()
		if !d.feasibleII(rec) {
			return false
		}
		if rec > 1 && d.feasibleII(rec-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ASAP satisfies every dependence constraint and is pointwise
// minimal among constraint-satisfying schedules with min slot 0.
func TestASAPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAGDFG(rng)
		ii := d.RecMII() + rng.Intn(3)
		asap, err := d.ASAP(ii)
		if err != nil {
			return false
		}
		for _, e := range d.Edges {
			if asap[e.To] < asap[e.From]+1-ii*e.Dist {
				return false
			}
		}
		alap, err := d.ALAP(ii)
		if err != nil {
			return false
		}
		for i := range asap {
			if alap[i] < asap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
