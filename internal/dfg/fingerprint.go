package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

// Fingerprint is a deterministic content hash of a DFG. Two graphs have the
// same fingerprint exactly when they are structurally identical: same name,
// same node sequence (name, kind, immediate), same edge sequence (endpoints,
// port, distance). Every mapper in this repository is deterministic given its
// options, so the fingerprint is a sound memoization key component for
// mapping results (internal/memo): equal fingerprints mean equal inputs mean
// byte-identical mappings.
//
// The encoding is length-prefixed and versioned ("dfg/v1"), so no two
// distinct graphs can collide by field concatenation, and any future change
// to the hashed content must bump the tag (invalidating, never corrupting,
// caches built on the old scheme).
func (d *DFG) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	hw := hashWriter{h: h}
	hw.str("dfg/v1")
	hw.str(d.Name)
	hw.num(int64(len(d.Nodes)))
	for _, nd := range d.Nodes {
		hw.str(nd.Name)
		hw.num(int64(nd.Kind))
		hw.num(nd.Value)
	}
	hw.num(int64(len(d.Edges)))
	for _, e := range d.Edges {
		hw.num(int64(e.From))
		hw.num(int64(e.To))
		hw.num(int64(e.Port))
		hw.num(int64(e.Dist))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns the fingerprint as a lowercase hex string.
func (d *DFG) FingerprintHex() string {
	fp := d.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// hashWriter streams length-prefixed primitives into a hash.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w hashWriter) num(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w hashWriter) str(s string) {
	w.num(int64(len(s)))
	io.WriteString(w.h, s)
}

// KindFromString returns the operation kind with the given mnemonic (the
// inverse of OpKind.String), for wire decoders.
func KindFromString(s string) (OpKind, bool) {
	for k := OpKind(0); k < numKinds; k++ {
		if kindInfo[k].name == s {
			return k, true
		}
	}
	return 0, false
}

// FromParts assembles a DFG from raw node and edge lists (deep-copied), as
// wire decoders produce, and validates it. Node IDs must equal their index;
// a zero-valued ID field on every node is also accepted and filled in, so
// decoders need not serialize the redundant field.
func FromParts(name string, nodes []Node, edges []Edge) (*DFG, error) {
	d := &DFG{
		Name:  name,
		Nodes: append([]Node(nil), nodes...),
		Edges: append([]Edge(nil), edges...),
	}
	allZero := true
	for _, nd := range d.Nodes {
		if nd.ID != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		for i := range d.Nodes {
			d.Nodes[i].ID = i
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dfg: FromParts: %w", err)
	}
	d.rebuildAdj()
	return d, nil
}
