package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", b.Cap())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if !b.Has(64) || b.Has(65) {
		t.Error("Has gave wrong answers around a word boundary")
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Clear(64) had no effect")
	}
	got := b.Members()
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestBitsetPanics(t *testing.T) {
	b := NewBitset(10)
	for _, bad := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", bad)
				}
			}()
			b.Set(bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("capacity mismatch did not panic")
		}
	}()
	b.And(NewBitset(11))
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	inter := a.Clone()
	inter.And(b)
	if got := inter.Count(); got != 17 { // multiples of 6 below 100
		t.Errorf("intersection count = %d, want 17", got)
	}
	if got := a.IntersectCount(b); got != 17 {
		t.Errorf("IntersectCount = %d, want 17", got)
	}
	union := a.Clone()
	union.Or(b)
	if got := union.Count(); got != 50+34-17 {
		t.Errorf("union count = %d, want 67", got)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Count(); got != 50-17 {
		t.Errorf("difference count = %d, want 33", got)
	}
	if !union.ContainsAll(a) || inter.ContainsAll(a) {
		t.Error("ContainsAll gave wrong answers")
	}
}

func TestBitsetForEachEarlyStop(t *testing.T) {
	b := NewBitset(200)
	for i := 0; i < 200; i++ {
		b.Set(i)
	}
	n := 0
	b.ForEach(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("ForEach visited %d members after early stop, want 5", n)
	}
}

func TestBitsetResetAndCopy(t *testing.T) {
	b := NewBitset(70)
	b.Set(1)
	b.Set(69)
	c := NewBitset(70)
	c.CopyFrom(b)
	b.Reset()
	if !b.Empty() {
		t.Error("Reset left members behind")
	}
	if c.Count() != 2 {
		t.Error("CopyFrom did not preserve the source")
	}
}

// Property: bitset set operations agree with a map-based model.
func TestBitsetAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		bs := NewBitset(n)
		model := map[int]bool{}
		for i := 0; i < 200; i++ {
			x := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				bs.Set(x)
				model[x] = true
			case 1:
				bs.Clear(x)
				delete(model, x)
			case 2:
				if bs.Has(x) != model[x] {
					return false
				}
			}
		}
		return bs.Count() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetGrow(t *testing.T) {
	b := NewBitset(10)
	b.Set(3)
	b.Set(9)
	b.Grow(5) // shrink within existing words: must clear, keep capacity
	if b.Cap() != 5 {
		t.Fatalf("Cap after Grow(5) = %d", b.Cap())
	}
	if !b.Empty() {
		t.Fatal("Grow did not clear the set")
	}
	b.Set(4)
	b.Grow(200) // grow past the backing array
	if b.Cap() != 200 || !b.Empty() {
		t.Fatalf("Grow(200): cap=%d empty=%v", b.Cap(), b.Empty())
	}
	b.Set(199)
	if !b.Has(199) || b.Count() != 1 {
		t.Fatal("bitset unusable after Grow")
	}
	// Steady state: growing within capacity must not allocate.
	b.Grow(64)
	if n := testing.AllocsPerRun(20, func() { b.Grow(128); b.Grow(64) }); n != 0 {
		t.Fatalf("Grow within capacity allocates %.1f times per run", n)
	}
}
