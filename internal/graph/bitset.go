package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers backed by
// 64-bit words. It is the workhorse of the clique engine, where adjacency
// tests and neighbourhood intersections dominate the running time.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values 0..n-1.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("graph: negative bitset capacity")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// NewBitsetSlab returns count empty bitsets of capacity n whose word storage
// comes from a single backing allocation. The clique engine's adjacency rows
// and the compat builder's candidate masks are allocated this way: one graph
// no longer costs two allocations per row.
func NewBitsetSlab(n, count int) []*Bitset {
	if n < 0 || count < 0 {
		panic("graph: negative bitset slab size")
	}
	wpr := (n + 63) / 64
	words := make([]uint64, wpr*count)
	sets := make([]Bitset, count)
	out := make([]*Bitset, count)
	for i := range sets {
		sets[i] = Bitset{words: words[i*wpr : (i+1)*wpr : (i+1)*wpr], n: n}
		out[i] = &sets[i]
	}
	return out
}

// Cap returns the capacity of the bitset.
func (b *Bitset) Cap() int { return b.n }

// Grow resizes the bitset to hold values 0..n-1 and clears it, reusing the
// word storage whenever it is large enough. Arena-style callers (the EMS
// placer's per-II occupancy masks, whose size is NumPEs*ii) call it instead
// of NewBitset so repeated attempts stop allocating.
func (b *Bitset) Grow(n int) {
	if n < 0 {
		panic("graph: negative bitset capacity")
	}
	want := (n + 63) / 64
	if want <= cap(b.words) {
		b.words = b.words[:want]
	} else {
		b.words = make([]uint64, want)
	}
	b.n = n
	b.Reset()
}

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.checkIndex(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.checkIndex(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Has reports whether i is a member.
func (b *Bitset) Has(i int) bool {
	b.checkIndex(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

func (b *Bitset) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic("graph: bitset index out of range")
	}
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Words exposes the backing word slice for read-only bulk consumers
// (word-at-a-time hashing). Callers must not modify the slice.
func (b *Bitset) Words() []uint64 { return b.words }

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of src (capacities must match).
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("graph: bitset capacity mismatch")
	}
	copy(b.words, src.words)
}

// And intersects b with other in place.
func (b *Bitset) And(other *Bitset) {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions other into b in place.
func (b *Bitset) Or(other *Bitset) {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot removes other's members from b in place.
func (b *Bitset) AndNot(other *Bitset) {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// IntersectCount returns |b ∩ other| without allocating.
func (b *Bitset) IntersectCount(other *Bitset) int {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	total := 0
	for i := range b.words {
		total += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return total
}

// IntersectCountUpTo returns |b ∩ other|, stopping early once the count
// reaches limit (the exact value is returned while it is below limit). The
// grouped clique search uses it for forward checking, where only "zero, one,
// or several live candidates" matters.
func (b *Bitset) IntersectCountUpTo(other *Bitset, limit int) int {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	total := 0
	for i := range b.words {
		if w := b.words[i] & other.words[i]; w != 0 {
			total += bits.OnesCount64(w)
			if total >= limit {
				return limit
			}
		}
	}
	return total
}

// AndInto overwrites b with x ∩ y and returns the half-open word range of
// the result, as WordBounds would — one pass where CopyFrom + And +
// WordBounds would take three.
func (b *Bitset) AndInto(x, y *Bitset) (lo, hi int) {
	if b.n != x.n || b.n != y.n {
		panic("graph: bitset capacity mismatch")
	}
	for i := range b.words {
		w := x.words[i] & y.words[i]
		b.words[i] = w
		if w != 0 {
			if hi == 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	return lo, hi
}

// WordBounds returns the half-open range [lo, hi) of 64-bit word indices
// holding the set's members, or (0, 0) when the set is empty. Callers with
// clustered members (the grouped clique search's per-operation candidate
// masks occupy contiguous id ranges) pass the bounds to IntersectCountUpToIn
// to skip the empty prefix and suffix of the word array.
func (b *Bitset) WordBounds() (lo, hi int) {
	for i, w := range b.words {
		if w != 0 {
			if hi == 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	return lo, hi
}

// IntersectCountUpToIn is IntersectCountUpTo restricted to the word range
// [loWord, hiWord), which must lie within both bitsets' word arrays. Members
// of the intersection outside the range are not counted; callers pass b's
// own WordBounds so nothing is missed.
func (b *Bitset) IntersectCountUpToIn(other *Bitset, limit, loWord, hiWord int) int {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	total := 0
	for i := loWord; i < hiWord; i++ {
		if w := b.words[i] & other.words[i]; w != 0 {
			total += bits.OnesCount64(w)
			if total >= limit {
				return limit
			}
		}
	}
	return total
}

// First returns the smallest member, or -1 when the set is empty.
func (b *Bitset) First() int {
	for wi, w := range b.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ContainsAll reports whether every member of other is also in b.
func (b *Bitset) ContainsAll(other *Bitset) bool {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	for i := range b.words {
		if other.words[i]&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no members.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset removes all members.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill adds every value 0..n-1 to the set.
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(tail)) - 1
	}
}

// ForEach calls fn for each member in increasing order. If fn returns false
// the iteration stops early.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachAnd calls fn for each member of b ∩ other in increasing order,
// without materializing the intersection. If fn returns false the iteration
// stops early.
func (b *Bitset) ForEachAnd(other *Bitset, fn func(i int) bool) {
	if b.n != other.n {
		panic("graph: bitset capacity mismatch")
	}
	for wi, w := range b.words {
		w &= other.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (b *Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
