package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative node count")
		}
	}()
	New(-1)
}

func TestAddEdgeAndDegrees(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge gave wrong answers")
	}
	if got := g.EdgeCount(); got != 3 {
		t.Errorf("EdgeCount = %d, want 3", got)
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if got := g.EdgeCount(); got != 2 {
		t.Errorf("EdgeCount = %d, want 2 (parallel edges must be kept)", got)
	}
}

func TestTopoSortChain(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("TopoSort reported a cycle on a chain")
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := New(5)
	g.AddEdge(4, 0)
	g.AddEdge(2, 0)
	first, _ := g.TopoSort()
	for i := 0; i < 10; i++ {
		again, _ := g.TopoSort()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("TopoSort not deterministic: %v vs %v", first, again)
			}
		}
	}
	// Among ready nodes, the smallest id must come first.
	if first[0] != 1 {
		t.Errorf("first ready node = %d, want 1 (smallest id)", first[0])
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Error("TopoSort accepted a cyclic graph")
	}
	if !g.HasCycle() {
		t.Error("HasCycle = false on a 3-cycle")
	}
}

func TestSCCSimple(t *testing.T) {
	// Two 2-cycles bridged by a single edge plus an isolated node.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps, comp := g.SCC()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if comp[0] != comp[1] {
		t.Error("0 and 1 should share a component")
	}
	if comp[2] != comp[3] {
		t.Error("2 and 3 should share a component")
	}
	if comp[0] == comp[2] || comp[0] == comp[4] {
		t.Error("distinct SCCs merged")
	}
}

func TestSCCReverseTopological(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	comps, comp := g.SCC()
	// Tarjan emits components in reverse topological order: sinks first.
	if comp[3] > comp[1] {
		t.Errorf("sink component should be emitted before its predecessors: comp=%v comps=%v", comp, comps)
	}
}

func TestSCCDeepChainNoStackOverflow(t *testing.T) {
	const n = 200000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	comps, _ := g.SCC()
	if len(comps) != n {
		t.Fatalf("got %d components, want %d", len(comps), n)
	}
}

func TestLongestPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	dist, ok := g.LongestPathFrom(func(u, v int) int {
		if u == 0 && v == 2 {
			return 5
		}
		return 1
	})
	if !ok {
		t.Fatal("unexpected cycle")
	}
	if dist[3] != 6 {
		t.Errorf("dist[3] = %d, want 6", dist[3])
	}
}

func TestLongestPathCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.LongestPathFrom(func(u, v int) int { return 1 }); ok {
		t.Error("LongestPathFrom accepted a cyclic graph")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Error("Reverse produced wrong edges")
	}
}

func TestReachableFrom(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	seen := g.ReachableFrom(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ReachableFrom(0) = %v, want %v", seen, want)
		}
	}
	seen = g.ReachableFrom(0, 3)
	if !seen[4] {
		t.Error("multi-root reachability missed node 4")
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	dot := g.DOT("d", func(v int) string { return "op" })
	if !strings.Contains(dot, "n0 -> n1") || !strings.Contains(dot, `label="op"`) {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
	if !strings.Contains(g.DOT("d", nil), "n0;") {
		t.Error("DOT without labels malformed")
	}
}

// Property: a topological order, when it exists, places every edge forward.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		// Random DAG: edges only from lower to higher id.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		order, ok := g.TopoSort()
		if !ok {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SCC partitions the node set, and contracting SCCs yields a DAG.
func TestSCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comps, comp := g.SCC()
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, v := range c {
				if comp[v] != indexOf(comps, v) {
					return false
				}
			}
		}
		if total != n {
			return false
		}
		// Condensation must be acyclic.
		cg := New(len(comps))
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if comp[u] != comp[v] {
					cg.AddEdge(comp[u], comp[v])
				}
			}
		}
		return !cg.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func indexOf(comps [][]int, v int) int {
	for i, c := range comps {
		j := sort.SearchInts(c, v)
		if j < len(c) && c[j] == v {
			return i
		}
	}
	return -1
}
