// Package graph provides a small generic directed-graph toolkit used by the
// DFG, architecture, and mapping layers: adjacency storage, depth-first
// traversal, Tarjan strongly-connected components, topological ordering,
// longest paths on DAGs, and DOT export.
//
// Nodes are dense integer identifiers 0..N-1; higher layers keep their own
// rich node records and use this package for pure structure queries.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph over nodes 0..N-1 with parallel edges allowed.
type Digraph struct {
	n   int
	out [][]int
	in  [][]int
}

// New returns an empty digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts a directed edge u -> v. Parallel edges are kept.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
}

// HasEdge reports whether at least one edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Out returns the successors of u. The slice is shared; callers must not
// modify it.
func (g *Digraph) Out(u int) []int {
	g.check(u)
	return g.out[u]
}

// In returns the predecessors of u. The slice is shared; callers must not
// modify it.
func (g *Digraph) In(u int) []int {
	g.check(u)
	return g.in[u]
}

// OutDegree returns the number of outgoing edges of u.
func (g *Digraph) OutDegree(u int) int { return len(g.Out(u)) }

// InDegree returns the number of incoming edges of u.
func (g *Digraph) InDegree(u int) int { return len(g.In(u)) }

// EdgeCount returns the total number of directed edges.
func (g *Digraph) EdgeCount() int {
	total := 0
	for _, succ := range g.out {
		total += len(succ)
	}
	return total
}

func (g *Digraph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// TopoSort returns a topological order of the nodes, or ok=false if the graph
// contains a directed cycle. The order is deterministic: among ready nodes the
// smallest identifier is emitted first (Kahn's algorithm with a sorted
// frontier).
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	frontier := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	sort.Ints(frontier)
	order = make([]int, 0, g.n)
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		added := false
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
				added = true
			}
		}
		if added {
			sort.Ints(frontier)
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, ok := g.TopoSort()
	return !ok
}

// SCC computes strongly connected components using Tarjan's algorithm. It
// returns the components (each a sorted node list) in reverse topological
// order of the condensation, and comp[v] = index of v's component.
func (g *Digraph) SCC() (components [][]int, comp []int) {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	comp = make([]int, g.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	// Iterative Tarjan to avoid deep recursion on long chains.
	type frame struct {
		v, i int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(g.out[f.v]) {
				w := g.out[f.v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(components)
					members = append(members, w)
					if w == v {
						break
					}
				}
				sort.Ints(members)
				components = append(components, members)
			}
		}
	}
	return components, comp
}

// LongestPathFrom returns, for a DAG, dist[v] = maximum number of edges on any
// path from a zero-in-degree node to v using the supplied edge weight
// function. It returns ok=false if the graph has a cycle.
func (g *Digraph) LongestPathFrom(weight func(u, v int) int) (dist []int, ok bool) {
	order, ok := g.TopoSort()
	if !ok {
		return nil, false
	}
	dist = make([]int, g.n)
	for _, u := range order {
		for _, v := range g.out[u] {
			if d := dist[u] + weight(u, v); d > dist[v] {
				dist[v] = d
			}
		}
	}
	return dist, true
}

// Reverse returns a new digraph with all edges flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			r.AddEdge(v, u)
		}
	}
	return r
}

// ReachableFrom returns the set of nodes reachable from any of the roots
// (including the roots themselves) as a boolean mask.
func (g *Digraph) ReachableFrom(roots ...int) []bool {
	seen := make([]bool, g.n)
	var stack []int
	for _, r := range roots {
		g.check(r)
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.out[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// DOT renders the graph in Graphviz DOT syntax. label may be nil, in which
// case node identifiers are used.
func (g *Digraph) DOT(name string, label func(v int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.n; v++ {
		if label != nil {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label(v))
		} else {
			fmt.Fprintf(&b, "  n%d;\n", v)
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
