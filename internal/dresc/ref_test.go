package dresc

import (
	"context"
	"math"
	"math/rand"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sched"
)

// This file preserves the pre-optimization annealer verbatim (per-call
// incident-edge maps, O(E) totalCost per move, fresh path slices per
// reroute, closure-based Dijkstra) as the behavioural reference.
// TestAnnealMatchesReference drives it and the optimized annealer from
// identical RNGs on random kernels: placements, paths, and move/accept
// counts must stay byte-identical.

type refState struct {
	d    *dfg.DFG
	c    *arch.CGRA
	m    *arch.MRRG
	ii   int
	time []int
	pe   []int
	path [][]int
	use  []int
	over int

	dist, prev, stamp []int
	gen               int
	heapBuf           []heapItem
}

func refAnnealAtII(ctx context.Context, d *dfg.DFG, c *arch.CGRA, ii int, opts Options, rng *rand.Rand, stats *Stats) *Placement {
	pes, memRows := c.MIIResources()
	sc := sched.New(d, pes, memRows)
	res, err := sc.Schedule(ii, sched.Options{NoCompact: true})
	if err != nil {
		return nil
	}
	s := &refState{
		d:    d,
		c:    c,
		m:    arch.BuildMRRG(c, ii),
		ii:   ii,
		time: append([]int(nil), res.Time...),
		pe:   make([]int, d.N()),
		path: make([][]int, len(d.Edges)),
	}
	s.use = make([]int, s.m.N())
	for v := range s.pe {
		s.pe[v] = randomSupportingPE(c, d.Nodes[v].Kind, rng)
		s.occupyOp(v, +1)
	}
	for ei := range d.Edges {
		s.reroute(ei)
	}

	movesPerT := opts.MovesPerTemperature
	if movesPerT <= 0 {
		movesPerT = 24 * d.N()
	}
	temp := opts.InitialTemperature
	if temp <= 0 {
		temp = 4
	}
	cooling := opts.Cooling
	if cooling <= 0 {
		cooling = 0.92
	}
	minTemp := opts.MinTemperature
	if minTemp <= 0 {
		minTemp = 0.05
	}

	bestCost := s.totalCost()
	stale := 0
	for ; temp > minTemp; temp *= cooling {
		if ctx.Err() != nil {
			return nil
		}
		for move := 0; move < movesPerT; move++ {
			if s.totalCost() == 0 {
				return s.placement()
			}
			stats.Moves++
			if s.tryMove(rng, temp) {
				stats.Accepts++
			}
		}
		if cost := s.totalCost(); cost < bestCost {
			bestCost = cost
			stale = 0
		} else {
			stale++
			if stale >= 8 {
				break
			}
		}
	}
	if s.totalCost() == 0 {
		return s.placement()
	}
	return nil
}

func (s *refState) occupyOp(v, delta int) {
	slot := s.time[v] % s.ii
	s.addUse(s.m.FUNode(s.pe[v], slot), delta)
	if s.d.Nodes[v].Kind != dfg.Store && len(s.d.OutEdges(v)) > 0 {
		s.addUse(s.m.OutRegNode(s.pe[v], (slot+1)%s.ii), delta)
	}
	if s.d.Nodes[v].Kind.IsMem() {
		s.addUse(s.m.BusNode(s.c.RowOf(s.pe[v]), slot), delta)
	}
}

func (s *refState) addUse(node, delta int) {
	before := s.use[node]
	s.use[node] = before + delta
	cap := s.m.Cap(node)
	overBefore := maxInt(0, before-cap)
	overAfter := maxInt(0, s.use[node]-cap)
	s.over += overAfter - overBefore
}

func (s *refState) reroute(ei int) {
	if s.path[ei] != nil {
		for _, node := range pathOccupancy(s.path[ei]) {
			s.addUse(node, -1)
		}
		s.path[ei] = nil
	}
	e := s.d.Edges[ei]
	src := s.m.OutRegNode(s.pe[e.From], (s.time[e.From]+1)%s.ii)
	dst := s.m.FUNode(s.pe[e.To], s.time[e.To]%s.ii)
	span := s.time[e.To] - s.time[e.From] + s.ii*e.Dist
	p := s.route(src, dst, span)
	s.path[ei] = p
	for _, node := range pathOccupancy(p) {
		s.addUse(node, +1)
	}
}

func (s *refState) route(src, dst, span int) []int {
	if span < 1 {
		return nil
	}
	const inf = math.MaxInt32
	states := s.m.N() * (span + 1)
	if len(s.dist) < states {
		s.dist = make([]int, states)
		s.prev = make([]int, states)
		s.stamp = make([]int, states)
	}
	s.gen++
	dist, prev, stamp, gen := s.dist, s.prev, s.stamp, s.gen
	at := func(node, elapsed int) int { return node*(span+1) + elapsed }
	get := func(i int) int {
		if stamp[i] != gen {
			return inf
		}
		return dist[i]
	}
	set := func(i, d, p int) {
		stamp[i] = gen
		dist[i] = d
		prev[i] = p
	}

	start := at(src, 1)
	set(start, s.nodeCost(src), -1)
	h := &nodeHeap{items: s.heapBuf[:0]}
	h.push(heapItem{node: start, dist: get(start)})
	goal := at(dst, span)
	for h.len() > 0 {
		it := h.pop()
		if it.dist > get(it.node) {
			continue
		}
		if it.node == goal {
			break
		}
		node, elapsed := it.node/(span+1), it.node%(span+1)
		for _, w := range s.m.Out(node) {
			nextElapsed := elapsed
			if s.m.Kind(w) != arch.FU {
				nextElapsed++
			}
			if nextElapsed > span {
				continue
			}
			if s.m.Kind(w) == arch.FU && (w != dst || nextElapsed != span) {
				if w == dst {
					continue
				}
			}
			ws := at(w, nextElapsed)
			cost := 1
			if ws != goal {
				cost += s.nodeCost(w)
			}
			if d := it.dist + cost; d < get(ws) {
				set(ws, d, it.node)
				h.push(heapItem{node: ws, dist: d})
			}
		}
	}
	s.heapBuf = h.items[:0]
	if get(goal) == inf {
		return nil
	}
	var rev []int
	for cur := goal; cur != -1; cur = prev[cur] {
		rev = append(rev, cur/(span+1))
	}
	path := make([]int, 0, len(rev)-1)
	for i := len(rev) - 1; i >= 1; i-- {
		path = append(path, rev[i])
	}
	return path
}

func (s *refState) nodeCost(node int) int {
	overflow := s.use[node] - s.m.Cap(node) + 1
	if overflow <= 0 {
		return 0
	}
	return 6 * overflow
}

func (s *refState) totalCost() int {
	cost := s.over
	for ei := range s.path {
		if s.path[ei] == nil {
			cost += unroutablePenalty
		}
	}
	return cost
}

func (s *refState) tryMove(rng *rand.Rand, temp float64) bool {
	v := rng.Intn(s.d.N())
	oldPE, oldTime := s.pe[v], s.time[v]
	newPE, newTime := oldPE, oldTime

	switch rng.Intn(3) {
	case 0:
		newPE = randomSupportingPE(s.c, s.d.Nodes[v].Kind, rng)
	case 1:
		newTime = oldTime + 1 - 2*rng.Intn(2)
	default:
		newPE = randomSupportingPE(s.c, s.d.Nodes[v].Kind, rng)
		newTime = oldTime + 1 - 2*rng.Intn(2)
	}
	if newTime < 0 || !s.timeFeasible(v, newTime) {
		return false
	}
	if newPE == oldPE && newTime == oldTime {
		return false
	}

	before := s.totalCost()
	touched := s.incidentEdges(v)
	oldPaths := make([][]int, len(touched))
	for i, ei := range touched {
		oldPaths[i] = s.path[ei]
	}

	s.occupyOp(v, -1)
	s.pe[v], s.time[v] = newPE, newTime
	s.occupyOp(v, +1)
	for _, ei := range touched {
		s.reroute(ei)
	}
	after := s.totalCost()

	delta := after - before
	if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
		return true
	}
	s.occupyOp(v, -1)
	s.pe[v], s.time[v] = oldPE, oldTime
	s.occupyOp(v, +1)
	for i, ei := range touched {
		for _, node := range pathOccupancy(s.path[ei]) {
			s.addUse(node, -1)
		}
		s.path[ei] = oldPaths[i]
		for _, node := range pathOccupancy(s.path[ei]) {
			s.addUse(node, +1)
		}
	}
	return false
}

func (s *refState) timeFeasible(v, t int) bool {
	for _, ei := range s.d.InEdges(v) {
		e := s.d.Edges[ei]
		if e.From == v {
			continue
		}
		if t < s.time[e.From]+s.d.Nodes[e.From].Kind.Latency()-s.ii*e.Dist {
			return false
		}
	}
	for _, ei := range s.d.OutEdges(v) {
		e := s.d.Edges[ei]
		if e.To == v {
			continue
		}
		if s.time[e.To] < t+s.d.Nodes[v].Kind.Latency()-s.ii*e.Dist {
			return false
		}
	}
	return true
}

func (s *refState) incidentEdges(v int) []int {
	var out []int
	seen := map[int]bool{}
	for _, ei := range s.d.InEdges(v) {
		if !seen[ei] {
			seen[ei] = true
			out = append(out, ei)
		}
	}
	for _, ei := range s.d.OutEdges(v) {
		if !seen[ei] {
			seen[ei] = true
			out = append(out, ei)
		}
	}
	return out
}

func (s *refState) placement() *Placement {
	p := &Placement{
		M:     s.m,
		D:     s.d,
		II:    s.ii,
		Time:  append([]int(nil), s.time...),
		PE:    append([]int(nil), s.pe...),
		Paths: make([][]int, len(s.path)),
	}
	for i := range s.path {
		p.Paths[i] = append([]int(nil), s.path[i]...)
	}
	return p
}
