package dresc

import (
	"context"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
)

// engineMapper adapts Map to the unified engine contract under the name
// "dresc". Options.Extra, when set, must be a dresc.Options. DRESC's solution
// is a routed MRRG placement with no mapping.Mapping representation, so the
// Result carries it in Artifact (a *dresc.Placement) and leaves Mapping nil.
type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "dresc" }

func (engineMapper) Describe() string {
	return "DRESC-style baseline: simulated annealing over the modulo routing resource graph (register-aware, untuned exploration)"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "dresc", Want: "dresc.Options", Got: eo.Extra}
	}
	if eo.MinII > 0 {
		opts.MinII = eo.MinII
	}
	if eo.MaxII > 0 {
		opts.MaxII = eo.MaxII
	}
	p, st, err := Map(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	res := &engine.Result{
		MII:     st.MII,
		II:      st.II,
		Rounds:  st.Moves,
		Stats:   st,
		Elapsed: st.Elapsed,
	}
	if p != nil {
		res.Artifact = p
	}
	return res, err
}
