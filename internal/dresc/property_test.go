package dresc

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/fault"
	"regimap/internal/kernels"
)

// Property: the arena annealer agrees with the reference annealer
// (ref_test.go) per II attempt — same success/failure, identical placements
// and routed paths, identical move/accept counts — when both consume
// identically seeded RNGs, on random kernels over healthy and faulted
// fabrics. Incremental cost tracking, incident-edge CSR, and path pooling
// must all be invisible to the RNG draw sequence.
func TestAnnealMatchesReference(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		d := kernels.Random(int64(trial), kernels.RandomOptions{
			Ops:         5 + rng.Intn(12),
			MemFraction: 0.2,
			Recurrence:  rng.Intn(2),
		})
		c := arch.NewMesh(4, 4, 4)
		if trial%2 == 1 {
			fs := fault.Random(rng, c, 1+rng.Intn(3))
			faulted, err := fs.Apply(c)
			if err != nil {
				t.Fatalf("trial %d: applying %s: %v", trial, fs, err)
			}
			c = faulted
		}
		if c.UsablePEs() == 0 {
			continue
		}
		pes, memRows := c.MIIResources()
		mii := d.MII(pes, memRows)
		opts := Options{Seed: int64(trial), MovesPerTemperature: 4 * d.N(), Cooling: 0.8}
		st := &state{d: d, c: c, inc: buildIncident(d)}
		// The same arena is reused across every II, like Map does.
		for ii := mii; ii <= mii+4; ii++ {
			seed := chainSeed(int64(trial), ii, 0)
			var gotStats, refStats Stats
			got := annealAtII(ctx, st, ii, opts, rand.New(rand.NewSource(seed)), &gotStats)
			ref := refAnnealAtII(ctx, d, c, ii, opts, rand.New(rand.NewSource(seed)), &refStats)
			if (got == nil) != (ref == nil) {
				t.Fatalf("trial %d ii %d: annealer ok=%v, reference ok=%v",
					trial, ii, got != nil, ref != nil)
			}
			if gotStats != refStats {
				t.Fatalf("trial %d ii %d: stats %+v, reference %+v", trial, ii, gotStats, refStats)
			}
			if got == nil {
				continue
			}
			if !reflect.DeepEqual(got.Time, ref.Time) || !reflect.DeepEqual(got.PE, ref.PE) {
				t.Fatalf("trial %d ii %d: bindings diverge\n got: t=%v pe=%v\n ref: t=%v pe=%v",
					trial, ii, got.Time, got.PE, ref.Time, ref.PE)
			}
			if !reflect.DeepEqual(got.Paths, ref.Paths) {
				t.Fatalf("trial %d ii %d: paths diverge\n got: %v\n ref: %v",
					trial, ii, got.Paths, ref.Paths)
			}
		}
	}
}

// The legacy single-chain path must be bit-for-bit what it always was:
// Restarts 0 and 1 are the same mapper, and (with the golden suite) pin
// today's published mappings.
func TestMapRestartsZeroOneIdentical(t *testing.T) {
	d := kernels.Random(17, kernels.RandomOptions{Ops: 9, MemFraction: 0.2, Recurrence: 1})
	c := arch.NewMesh(4, 4, 4)
	p0, s0, err0 := Map(context.Background(), d, c, Options{Seed: 7})
	p1, s1, err1 := Map(context.Background(), d, c, Options{Seed: 7, Restarts: 1, Workers: 3})
	if (err0 == nil) != (err1 == nil) {
		t.Fatalf("err mismatch: %v vs %v", err0, err1)
	}
	if s0.II != s1.II || s0.Moves != s1.Moves || s0.Accepts != s1.Accepts {
		t.Fatalf("stats diverge: %+v vs %+v", s0, s1)
	}
	if err0 != nil {
		return
	}
	if !reflect.DeepEqual(p0.Time, p1.Time) || !reflect.DeepEqual(p0.PE, p1.PE) || !reflect.DeepEqual(p0.Paths, p1.Paths) {
		t.Fatal("Restarts=1 placement differs from Restarts=0")
	}
}

// Racing restart chains must be a pure function of (Seed, Restarts): any
// worker count — including oversubscribed — yields the same placement and
// the same merged stats. Run with -race in CI's determinism sweep.
func TestMapWorkerSweepIdentical(t *testing.T) {
	kernelSet := []*dfg.DFG{
		kernels.Random(17, kernels.RandomOptions{Ops: 9, MemFraction: 0.2, Recurrence: 1}),
		kernels.Random(3, kernels.RandomOptions{Ops: 10, MemFraction: 0.2, Recurrence: 1}),
	}
	c := arch.NewMesh(4, 4, 4)
	for ki, d := range kernelSet {
		var basePlace *Placement
		var baseStats *Stats
		for wi, workers := range []int{1, 2, 8} {
			p, s, err := Map(context.Background(), d, c, Options{Seed: 11, Restarts: 4, Workers: workers})
			if err != nil {
				t.Fatalf("kernel %d workers %d: %v", ki, workers, err)
			}
			if wi == 0 {
				basePlace, baseStats = p, s
				continue
			}
			if s.II != baseStats.II || s.Moves != baseStats.Moves || s.Accepts != baseStats.Accepts {
				t.Fatalf("kernel %d workers %d: stats %+v, want %+v", ki, workers, s, baseStats)
			}
			if !reflect.DeepEqual(p.Time, basePlace.Time) || !reflect.DeepEqual(p.PE, basePlace.PE) || !reflect.DeepEqual(p.Paths, basePlace.Paths) {
				t.Fatalf("kernel %d workers %d: placement differs from workers=1", ki, workers)
			}
		}
	}
}

// A racing run must still verify and respect MII <= II.
func TestMapRestartsVerifies(t *testing.T) {
	d := kernels.Random(5, kernels.RandomOptions{Ops: 12, MemFraction: 0.25, Recurrence: 1})
	c := arch.NewMesh(4, 4, 4)
	p, s, err := Map(context.Background(), d, c, Options{Seed: 2, Restarts: 3, Workers: 2})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if p.II < s.MII {
		t.Fatalf("II %d below MII %d", p.II, s.MII)
	}
	if err := p.Verify(c); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
