package dresc

import (
	"context"
	"math/rand"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

func fig2DFG() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func TestMapFigure2(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	p, stats, err := Map(context.Background(), d, c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MII != 2 {
		t.Fatalf("MII = %d, want 2", stats.MII)
	}
	if stats.II < stats.MII {
		t.Fatalf("II %d below MII %d", stats.II, stats.MII)
	}
	if err := p.Verify(c); err != nil {
		t.Fatal(err)
	}
	if stats.Moves == 0 {
		t.Error("annealer reported zero moves on a non-trivial kernel")
	}
}

func TestMapRecurrence(t *testing.T) {
	b := dfg.NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(dfg.Add, "p", x)
	q := b.Op(dfg.Neg, "q", p)
	r := b.Op(dfg.Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	d := b.Build()
	c := arch.NewMesh(4, 4, 4)
	pl, stats, err := Map(context.Background(), d, c, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II < 3 {
		t.Fatalf("II = %d beats RecMII 3", stats.II)
	}
	if err := pl.Verify(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapAccumulator(t *testing.T) {
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	c := arch.NewMesh(2, 2, 2)
	pl, _, err := Map(context.Background(), d, c, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Verify(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapMemoryKernel(t *testing.T) {
	b := dfg.NewBuilder("mem")
	for i := 0; i < 3; i++ {
		a := b.Input("a")
		v := b.Op(dfg.Load, "ld", a)
		b.Op(dfg.Store, "st", a, v)
	}
	d := b.Build()
	c := arch.NewMesh(2, 2, 2)
	pl, stats, err := Map(context.Background(), d, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 6 memory ops on 2 row buses: bus-bound MII of 3.
	if stats.MII != 3 {
		t.Fatalf("MII = %d, want 3", stats.MII)
	}
	if err := pl.Verify(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapInvalidDFG(t *testing.T) {
	bad := &dfg.DFG{Name: "bad", Nodes: []dfg.Node{{ID: 0, Name: "x", Kind: dfg.Add}}}
	if _, _, err := Map(context.Background(), bad, arch.NewMesh(2, 2, 2), Options{}); err == nil {
		t.Fatal("accepted invalid DFG")
	}
}

func TestMapImpossible(t *testing.T) {
	b := dfg.NewBuilder("mul")
	x := b.Input("x")
	b.Op(dfg.Mul, "m", x, x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	c.RestrictPE(0, dfg.Add)
	c.RestrictPE(1, dfg.Add)
	if _, _, err := Map(context.Background(), d, c, Options{MaxII: 3, Seed: 1}); err == nil {
		t.Fatal("mapped kernel with unsupported op")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(2, 2, 2)
	_, s1, err1 := Map(context.Background(), d, c, Options{Seed: 42})
	_, s2, err2 := Map(context.Background(), d, c, Options{Seed: 42})
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("outcome not deterministic")
	}
	if err1 == nil && (s1.II != s2.II || s1.Moves != s2.Moves) {
		t.Fatalf("run not deterministic: II %d/%d moves %d/%d", s1.II, s2.II, s1.Moves, s2.Moves)
	}
}

func TestPerfMetric(t *testing.T) {
	s := &Stats{MII: 2, II: 4}
	if s.Perf() != 0.5 {
		t.Errorf("Perf = %v, want 0.5", s.Perf())
	}
	if (&Stats{MII: 2}).Perf() != 0 {
		t.Error("failed run must have Perf 0")
	}
}

// Random kernels: every successful DRESC placement must verify.
func TestRandomKernelsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []dfg.OpKind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor}
	for trial := 0; trial < 12; trial++ {
		b := dfg.NewBuilder("rand")
		ids := []int{b.Input("i0")}
		n := 4 + rng.Intn(8)
		for len(ids) < n {
			k := kinds[rng.Intn(len(kinds))]
			ids = append(ids, b.Op(k, "op", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
		}
		d := b.Build()
		c := arch.NewMesh(2, 2, 4)
		pl, _, err := Map(context.Background(), d, c, Options{Seed: int64(trial)})
		if err != nil {
			continue
		}
		if err := pl.Verify(c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestHeap(t *testing.T) {
	h := &nodeHeap{}
	for _, d := range []int{5, 1, 4, 1, 3, 9, 2} {
		h.push(heapItem{node: d * 10, dist: d})
	}
	prev := -1
	for h.len() > 0 {
		it := h.pop()
		if it.dist < prev {
			t.Fatal("heap pops out of order")
		}
		prev = it.dist
	}
}

// TestVerifyRejectsTampering mutates a valid placement in each dimension and
// expects the verifier to object — the auditor must not be a rubber stamp.
func TestVerifyRejectsTampering(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(2, 2, 2)
	fresh := func() *Placement {
		p, _, err := Map(context.Background(), d, c, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := fresh()
	p.Time[3] = p.Time[0] - 1 // consumer before producer
	if err := p.Verify(c); err == nil {
		t.Error("accepted broken dependence timing")
	}

	p = fresh()
	p.Paths[0] = nil // unroute an edge
	if err := p.Verify(c); err == nil {
		t.Error("accepted an unrouted edge")
	}

	p = fresh()
	p.Paths[0] = append([]int{p.Paths[0][0]}, p.Paths[0]...) // duplicate the source hop
	if err := p.Verify(c); err == nil {
		t.Error("accepted a path with a non-arc hop or wrong span")
	}

	p = fresh()
	// Move an op to a PE its path no longer starts from.
	p.PE[0] = (p.PE[0] + 1) % c.NumPEs()
	if err := p.Verify(c); err == nil {
		t.Error("accepted a placement whose route starts elsewhere")
	}
}

// TestPlateauAbortStillMaps exercises the annealer's early-abort path: a
// kernel that cannot fit II=MII forces at least one aborted annealing round
// before success at a higher II.
func TestPlateauAbortStillMaps(t *testing.T) {
	// 6 ops on a 1x2 array with no registers: MII=3 is very tight.
	b := dfg.NewBuilder("tight")
	x := b.Input("x")
	y := b.Op(dfg.Neg, "y", x)
	z := b.Op(dfg.Add, "z", y, x)
	w := b.Op(dfg.Neg, "w", z)
	b.Op(dfg.Add, "v", w, z)
	d := b.Build()
	c := arch.NewMesh(1, 2, 0)
	p, stats, err := Map(context.Background(), d, c, Options{Seed: 4})
	if err != nil {
		t.Skipf("tight kernel unmappable with this seed: %v", err)
	}
	if err := p.Verify(c); err != nil {
		t.Fatal(err)
	}
	if stats.II < stats.MII {
		t.Fatalf("II %d below MII %d", stats.II, stats.MII)
	}
}
