// Package dresc re-implements the paper's comparison baseline: DRESC-style
// register-aware placement and routing by simulated annealing over the
// modulo routing resource graph (De Sutter et al., LCTES'08, as characterized
// in the REGIMap paper Section 2):
//
//   - the time-extended CGRA is expanded so output registers and register
//     files appear as explicit capacity-bearing nodes (arch.MRRG);
//   - operations start from a modulo schedule and are randomly moved in the
//     time and resource dimensions;
//   - every data dependence is routed through the MRRG with a congestion-
//     aware shortest path; the cost of a configuration is its total resource
//     overuse;
//   - moves are accepted by the Metropolis criterion under geometric
//     cooling ("no control strategy, e.g. the temperature schedule, is
//     derived" — the paper's point that the baseline is untuned exploration);
//   - when the annealing budget expires with overuse remaining, II is
//     increased and the mapping restarted.
//
// The implementation is deterministic for a fixed Options.Seed: with
// Restarts <= 1 a single RNG is threaded across the II escalation (the
// legacy behaviour the golden suite pins); with Restarts = K > 1, K
// independent seed-derived annealing chains race per II over a worker pool
// and the lowest chain index that reaches zero overuse wins, so the result
// depends on (Seed, Restarts) but never on Workers (DESIGN.md section 8h).
package dresc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/maperr"
	"regimap/internal/obs"
	"regimap/internal/sched"
)

// Failure taxonomy (regimap/internal/maperr), re-exported for callers:
// errors.Is(err, dresc.ErrNoMapping), errors.Is(err, dresc.ErrAborted), and
// errors.As with *dresc.InvalidMappingError all work on Map's errors.
var (
	ErrNoMapping = maperr.ErrNoMapping
	ErrAborted   = maperr.ErrAborted
)

// InvalidMappingError reports a mapper-internal bug: a produced placement
// that fails its own verification.
type InvalidMappingError = maperr.InvalidMappingError

// Options configures the annealer. Zero values select the defaults used in
// the experiments.
type Options struct {
	// Seed drives all stochastic decisions (0 is a valid seed). There is no
	// other randomness: two runs with equal options are identical.
	Seed int64
	// MinII raises the II the escalation starts from (0: MII). The portfolio
	// runner pins MinII == MaxII to race seeds at one fixed II.
	MinII int
	// MaxII caps II escalation (0: MII + 8).
	MaxII int
	// MovesPerTemperature scales the Metropolis sweeps (0: 24|V|).
	MovesPerTemperature int
	// InitialTemperature for the Metropolis criterion (0: 4).
	InitialTemperature float64
	// Cooling is the geometric temperature factor (0: 0.92).
	Cooling float64
	// MinTemperature ends one annealing run (0: 0.05).
	MinTemperature float64
	// Restarts is the number of independent annealing chains raced per II
	// (0 or 1: a single chain threading one RNG across the II escalation —
	// the legacy behaviour). Each chain's RNG is derived from (Seed, II,
	// chain index); the lowest chain index that reaches zero overuse wins,
	// so the mapping depends on Restarts but not on Workers.
	Restarts int
	// Workers caps the goroutines racing restart chains (0: GOMAXPROCS,
	// clamped to Restarts). It affects wall-clock only, never the result.
	Workers int
}

// Stats reports the outcome.
type Stats struct {
	MII     int
	II      int // achieved II (0 on failure)
	Moves   int // annealing moves evaluated
	Accepts int
	Elapsed time.Duration
}

// Perf returns MII/II, the paper's performance metric (0 on failure).
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Placement is a complete DRESC solution: a binding of operations to FU
// nodes of the MRRG and a routed path per DFG edge.
type Placement struct {
	M     *arch.MRRG
	D     *dfg.DFG
	II    int
	Time  []int   // absolute schedule slot per op
	PE    []int   // PE per op
	Paths [][]int // MRRG node sequence per DFG edge (producer FU to consumer FU)
}

// Map runs DRESC on the kernel. It returns the placement of the first II at
// which annealing reaches zero overuse.
//
// Cancelling ctx aborts the search at the next annealing-epoch (temperature)
// boundary or II escalation, whichever comes first; the returned error wraps
// ctx.Err() when the abort was context-driven.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*Placement, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	tr := obs.From(ctx).Named("dresc", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows)}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Moves))
	}
	if c.UsablePEs() == 0 {
		done()
		return nil, stats, maperr.NoMapping("dresc: no mapping for %s on %s: every PE is broken", d.Name, c)
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 8
	}
	startII := stats.MII
	if opts.MinII > startII {
		startII = opts.MinII
	}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > restarts {
		workers = restarts
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	inc := buildIncident(d)
	// One chain arena per worker slot, reused across chains and IIs; the
	// legacy single-chain path uses slot 0.
	states := make([]*state, workers)
	for i := range states {
		states[i] = &state{d: d, c: c, inc: inc}
	}
	for ii := startII; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			done()
			return nil, stats, maperr.Aborted(err, "dresc: mapping %s aborted: %v", d.Name, err)
		}
		moves, accepts := stats.Moves, stats.Accepts
		sp := tr.Start("dresc.anneal")
		var p *Placement
		if restarts <= 1 {
			p = annealAtII(ctx, states[0], ii, opts, rng, stats)
		} else {
			p = raceAtII(ctx, states, ii, opts, restarts, stats)
		}
		sp.Field("ii", int64(ii))
		sp.Field("moves", int64(stats.Moves-moves))
		sp.Field("accepts", int64(stats.Accepts-accepts))
		sp.FieldBool("ok", p != nil)
		sp.End()
		if p != nil {
			stats.II = ii
			done()
			if err := p.Verify(c); err != nil {
				return nil, nil, &maperr.InvalidMappingError{Mapper: "dresc", What: "placement", Err: err}
			}
			return p, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "dresc: mapping %s aborted: %v", d.Name, err)
	}
	return nil, stats, maperr.NoMapping("dresc: no mapping for %s on %s up to II=%d", d.Name, c, maxII)
}

// chainSeed derives the RNG seed of one restart chain from (seed, ii, chain)
// with a splitmix64-style mix, so every chain explores independently and the
// set of chains is a pure function of Options — what makes the racing
// reduction reproducible at any worker count.
func chainSeed(seed int64, ii, chain int) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(uint32(ii)) ^ 0xbf58476d1ce4e5b9*uint64(uint32(chain+1))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// raceAtII runs K seed-derived annealing chains at a fixed II across the
// worker pool and returns the success of the lowest chain index, replicating
// "run chains 0..K-1 in order, stop at the first success" (the portfolio /
// parallel-clique reduction): a stop index lets workers skip chains above a
// known success, chains below it always run to completion, and stats are
// merged from exactly the chains the sequential order would have executed.
func raceAtII(ctx context.Context, states []*state, ii int, opts Options, restarts int, stats *Stats) *Placement {
	results := make([]*Placement, restarts)
	chainStats := make([]Stats, restarts)
	var next atomic.Int64
	var stop atomic.Int64
	stop.Store(int64(restarts))
	var wg sync.WaitGroup
	for w := 0; w < len(states); w++ {
		wg.Add(1)
		go func(st *state) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= restarts {
					return
				}
				if int64(i) > stop.Load() {
					continue // a lower chain already succeeded
				}
				rng := rand.New(rand.NewSource(chainSeed(opts.Seed, ii, i)))
				if p := annealAtII(ctx, st, ii, opts, rng, &chainStats[i]); p != nil {
					results[i] = p
					for {
						cur := stop.Load()
						if int64(i) >= cur || stop.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}(states[w])
	}
	wg.Wait()
	winner := int(stop.Load())
	last := restarts - 1
	if winner < restarts {
		last = winner
	}
	// Chains 0..last always ran (the skip condition only passes indices
	// above the final stop index), so this merge is worker-count-invariant.
	for i := 0; i <= last; i++ {
		stats.Moves += chainStats[i].Moves
		stats.Accepts += chainStats[i].Accepts
	}
	if winner < restarts {
		return results[winner]
	}
	return nil
}

// state is one annealing chain's working configuration, arena-style: every
// buffer is reused across chains and II attempts (DESIGN.md section 8h).
type state struct {
	d   *dfg.DFG
	c   *arch.CGRA
	inc *incident
	m   *arch.MRRG
	ii  int

	time []int
	pe   []int
	path [][]int
	use  []int // usage per MRRG node
	over int   // total overuse (the SA cost)
	// unrouted counts nil paths so totalCost — consulted before every move —
	// is O(1) instead of a scan over every edge.
	unrouted int

	// scratch buffers reused by route and tryMove.
	dist, prev, stamp []int
	gen               int
	heapBuf           []heapItem
	rev               []int
	oldPaths          [][]int
	// pathPool recycles the []int backing arrays of replaced paths, making
	// the reroute-evaluate-restore cycle allocation-free in steady state.
	pathPool [][]int
}

// incident is the precomputed per-op list of incident edge indices (in-edges
// first, then non-self out-edges — the same dedup order the per-move
// map-based collection produced), shared read-only by every chain.
type incident struct {
	off []int
	buf []int
}

func buildIncident(d *dfg.DFG) *incident {
	inc := &incident{off: make([]int, d.N()+1)}
	for v := 0; v < d.N(); v++ {
		inc.off[v] = len(inc.buf)
		inc.buf = append(inc.buf, d.InEdges(v)...)
		for _, ei := range d.OutEdges(v) {
			if d.Edges[ei].To != v { // self-loops already collected as in-edges
				inc.buf = append(inc.buf, ei)
			}
		}
	}
	inc.off[d.N()] = len(inc.buf)
	return inc
}

func (s *state) incidentEdges(v int) []int {
	return s.inc.buf[s.inc.off[v]:s.inc.off[v+1]]
}

// resetForII rebinds the arena to a fresh chain at the given II: schedule
// times copied in, every path released to the pool, usage cleared.
func (s *state) resetForII(m *arch.MRRG, ii int, initTime []int) {
	s.m, s.ii = m, ii
	s.time = append(s.time[:0], initTime...)
	if cap(s.pe) < s.d.N() {
		s.pe = make([]int, s.d.N())
	}
	s.pe = s.pe[:s.d.N()]
	for i := range s.path {
		s.freePath(s.path[i])
		s.path[i] = nil
	}
	if cap(s.path) < len(s.d.Edges) {
		s.path = make([][]int, len(s.d.Edges))
	}
	s.path = s.path[:len(s.d.Edges)]
	for i := range s.path {
		s.path[i] = nil
	}
	if cap(s.use) < m.N() {
		s.use = make([]int, m.N())
	}
	s.use = s.use[:m.N()]
	for i := range s.use {
		s.use[i] = 0
	}
	s.over = 0
	s.unrouted = len(s.d.Edges)
}

func annealAtII(ctx context.Context, s *state, ii int, opts Options, rng *rand.Rand, stats *Stats) *Placement {
	// Initial modulo schedule (plain list schedule, no lifetime compaction —
	// the published DRESC discovers time placements through its own
	// annealing moves); placement starts random.
	pes, memRows := s.c.MIIResources()
	sc := sched.New(s.d, pes, memRows)
	res, err := sc.Schedule(ii, sched.Options{NoCompact: true})
	if err != nil {
		return nil
	}
	s.resetForII(arch.BuildMRRG(s.c, ii), ii, res.Time)
	for v := range s.pe {
		s.pe[v] = randomSupportingPE(s.c, s.d.Nodes[v].Kind, rng)
		s.occupyOp(v, +1)
	}
	for ei := range s.d.Edges {
		s.reroute(ei)
	}

	movesPerT := opts.MovesPerTemperature
	if movesPerT <= 0 {
		movesPerT = 24 * s.d.N()
	}
	temp := opts.InitialTemperature
	if temp <= 0 {
		temp = 4
	}
	cooling := opts.Cooling
	if cooling <= 0 {
		cooling = 0.92
	}
	minTemp := opts.MinTemperature
	if minTemp <= 0 {
		minTemp = 0.05
	}

	bestCost := s.totalCost()
	stale := 0
	for ; temp > minTemp; temp *= cooling {
		if ctx.Err() != nil {
			return nil // abort at the epoch boundary; Map reports the cause
		}
		for move := 0; move < movesPerT; move++ {
			if s.totalCost() == 0 {
				return s.placement()
			}
			stats.Moves++
			if s.tryMove(rng, temp) {
				stats.Accepts++
			}
		}
		// Plateau abort: when the cost has not improved for several
		// consecutive temperatures this II will not converge; move on.
		if cost := s.totalCost(); cost < bestCost {
			bestCost = cost
			stale = 0
		} else {
			stale++
			if stale >= 8 {
				break
			}
		}
	}
	if s.totalCost() == 0 {
		return s.placement()
	}
	return nil
}

func randomSupportingPE(c *arch.CGRA, k dfg.OpKind, rng *rand.Rand) int {
	for tries := 0; tries < 4*c.NumPEs(); tries++ {
		p := rng.Intn(c.NumPEs())
		if c.Supports(p, k) {
			return p
		}
	}
	for p := 0; p < c.NumPEs(); p++ {
		if c.Supports(p, k) {
			return p
		}
	}
	return 0
}

// occupyOp adds (delta=+1) or removes (delta=-1) op v's own resources: its
// FU, the output register its result lands in (charged once here, not per
// consumer — all consumers share the one value), and for memory operations
// the row bus gate plus, on described bus schemes, the shared group node.
func (s *state) occupyOp(v, delta int) {
	slot := s.time[v] % s.ii
	s.addUse(s.m.FUNode(s.pe[v], slot), delta)
	if s.d.Nodes[v].Kind != dfg.Store && len(s.d.OutEdges(v)) > 0 {
		s.addUse(s.m.OutRegNode(s.pe[v], (slot+1)%s.ii), delta)
	}
	if s.d.Nodes[v].Kind.IsMem() {
		s.addUse(s.m.BusNode(s.c.RowOf(s.pe[v]), slot), delta)
		if s.m.HasBusGroups() {
			s.addUse(s.m.BusGroupNode(s.c.BusGroupOf(s.pe[v]), slot), delta)
		}
	}
}

func (s *state) addUse(node, delta int) {
	before := s.use[node]
	s.use[node] = before + delta
	cap := s.m.Cap(node)
	overBefore := maxInt(0, before-cap)
	overAfter := maxInt(0, s.use[node]-cap)
	s.over += overAfter - overBefore
}

// reroute recomputes edge ei's path with a congestion-aware search and
// installs its usage. An unroutable edge keeps an empty path and a fixed
// penalty. The replaced path's backing array is NOT pooled here — tryMove
// still holds it for reject-restore and frees it after the Metropolis
// decision.
const unroutablePenalty = 8

func (s *state) reroute(ei int) {
	if s.path[ei] != nil {
		for _, node := range pathOccupancy(s.path[ei]) {
			s.addUse(node, -1)
		}
		s.path[ei] = nil
		s.unrouted++
	}
	e := s.d.Edges[ei]
	src := s.m.OutRegNode(s.pe[e.From], (s.time[e.From]+1)%s.ii)
	dst := s.m.FUNode(s.pe[e.To], s.time[e.To]%s.ii)
	span := s.time[e.To] - s.time[e.From] + s.ii*e.Dist
	p := s.route(src, dst, span)
	s.path[ei] = p
	if p != nil {
		s.unrouted--
	}
	// The source out register is charged once by the producer (occupyOp);
	// only the intermediate hops are charged per connection. Intermediate
	// sharing between two sinks of one value is deliberately not deduplicated
	// — the paper notes path sharing "is not an explicit aspect of the
	// solution method" in DRESC.
	for _, node := range pathOccupancy(p) {
		s.addUse(node, +1)
	}
	// Unroutable edges carry a fixed penalty via totalCost.
}

// pathOccupancy returns the chargeable nodes of a route: everything after
// the producer-owned source out register.
func pathOccupancy(p []int) []int {
	if len(p) <= 1 {
		return nil
	}
	return p[1:]
}

func (s *state) allocPath(capHint int) []int {
	if k := len(s.pathPool); k > 0 {
		p := s.pathPool[k-1]
		s.pathPool = s.pathPool[:k-1]
		return p[:0]
	}
	return make([]int, 0, capHint)
}

func (s *state) freePath(p []int) {
	if cap(p) > 0 {
		s.pathPool = append(s.pathPool, p)
	}
}

// route finds a cheapest *time-exact* path over the MRRG with a binary-heap
// Dijkstra on (node, elapsed) states. The value leaves the producer's out
// register one cycle after execution (elapsed 1) and must enter the
// consumer's FU exactly span cycles after the producer executed — an MRRG
// hop into an OutReg or RF node advances one cycle, a hop into an FU is a
// same-cycle read. A path whose span exceeds II wraps around the modulo
// graph and revisits storage nodes, charging one capacity unit per live
// copy, which is exactly the rotating-register accounting. Entering a node
// costs 1 plus a congestion surcharge; the destination FU itself is not
// occupied by the route (the consumer op occupies it); the source out
// register is charged by the producer (occupyOp).
func (s *state) route(src, dst, span int) []int {
	if span < 1 {
		return nil
	}
	stride := span + 1
	states := s.m.N() * stride
	if len(s.dist) < states {
		s.dist = make([]int, states)
		s.prev = make([]int, states)
		s.stamp = make([]int, states)
		s.gen = 0
	}
	s.gen++
	dist, prev, stamp, gen := s.dist, s.prev, s.stamp, s.gen

	kind, capacity, out := s.m.Arrays()
	use := s.use
	start := src*stride + 1
	stamp[start] = gen
	dist[start] = s.nodeCost(src)
	prev[start] = -1
	h := nodeHeap{items: s.heapBuf[:0]}
	h.push(heapItem{node: start, dist: dist[start]})
	goal := dst*stride + span
	for h.len() > 0 {
		it := h.pop()
		if it.dist > dist[it.node] { // stale entry (it.node is always stamped)
			continue
		}
		if it.node == goal {
			break
		}
		node, elapsed := it.node/stride, it.node%stride
		for _, w := range out[node] {
			nextElapsed := elapsed
			isFU := kind[w] == arch.FU
			if !isFU {
				nextElapsed++ // storage hops advance time
			}
			if nextElapsed > span {
				continue
			}
			if isFU && w == dst && nextElapsed != span {
				// Reached the consumer too early: wrong iteration. An
				// intermediate FU (w != dst) is an explicit copy and passes.
				continue
			}
			ws := w*stride + nextElapsed
			cost := 1
			if ws != goal {
				if overflow := use[w] - capacity[w] + 1; overflow > 0 {
					cost += 6 * overflow // nodeCost, flattened
				}
			}
			if d := it.dist + cost; stamp[ws] != gen || d < dist[ws] {
				stamp[ws] = gen
				dist[ws] = d
				prev[ws] = it.node
				h.push(heapItem{node: ws, dist: d})
			}
		}
	}
	s.heapBuf = h.items[:0]
	if stamp[goal] != gen {
		return nil
	}
	rev := s.rev[:0]
	for cur := goal; cur != -1; cur = prev[cur] {
		rev = append(rev, cur/stride)
	}
	s.rev = rev
	// Exclude the destination FU from occupancy; keep source and middle.
	path := s.allocPath(len(rev) - 1)
	for i := len(rev) - 1; i >= 1; i-- {
		path = append(path, rev[i])
	}
	return path
}

type heapItem struct {
	node, dist int
}

// nodeHeap is a minimal binary min-heap on dist, reused across routes to
// avoid allocation in the annealer's hot loop.
type nodeHeap struct {
	items []heapItem
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].dist < h.items[smallest].dist {
			smallest = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// nodeCost is the congestion surcharge for routing through a node.
func (s *state) nodeCost(node int) int {
	overflow := s.use[node] - s.m.Cap(node) + 1
	if overflow <= 0 {
		return 0
	}
	return 6 * overflow
}

// totalCost is overuse plus penalties for unroutable edges.
func (s *state) totalCost() int {
	return s.over + unroutablePenalty*s.unrouted
}

// tryMove proposes one annealing move: relocate a random operation in space
// (random supporting PE) and/or time (±1 within dependence slack), reroute
// its incident edges, and accept by Metropolis.
func (s *state) tryMove(rng *rand.Rand, temp float64) bool {
	v := rng.Intn(s.d.N())
	oldPE, oldTime := s.pe[v], s.time[v]
	newPE, newTime := oldPE, oldTime

	switch rng.Intn(3) {
	case 0: // move in space
		newPE = randomSupportingPE(s.c, s.d.Nodes[v].Kind, rng)
	case 1: // move in time
		newTime = oldTime + 1 - 2*rng.Intn(2)
	default: // both
		newPE = randomSupportingPE(s.c, s.d.Nodes[v].Kind, rng)
		newTime = oldTime + 1 - 2*rng.Intn(2)
	}
	if newTime < 0 || !s.timeFeasible(v, newTime) {
		return false
	}
	if newPE == oldPE && newTime == oldTime {
		return false
	}

	before := s.totalCost()
	touched := s.incidentEdges(v)
	oldPaths := s.oldPaths[:0]
	for _, ei := range touched {
		oldPaths = append(oldPaths, s.path[ei])
	}
	s.oldPaths = oldPaths

	s.occupyOp(v, -1)
	s.pe[v], s.time[v] = newPE, newTime
	s.occupyOp(v, +1)
	for _, ei := range touched {
		s.reroute(ei)
	}
	after := s.totalCost()

	delta := after - before
	if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
		// Accept: the saved pre-move paths are dead; recycle their arrays.
		for _, p := range oldPaths {
			s.freePath(p)
		}
		return true
	}
	// Reject: restore, recycling the rejected paths' arrays.
	s.occupyOp(v, -1)
	s.pe[v], s.time[v] = oldPE, oldTime
	s.occupyOp(v, +1)
	for i, ei := range touched {
		rejected := s.path[ei]
		for _, node := range pathOccupancy(rejected) {
			s.addUse(node, -1)
		}
		s.freePath(rejected)
		old := oldPaths[i]
		if (rejected == nil) != (old == nil) {
			if rejected == nil {
				s.unrouted--
			} else {
				s.unrouted++
			}
		}
		s.path[ei] = old
		for _, node := range pathOccupancy(old) {
			s.addUse(node, +1)
		}
	}
	return false
}

// timeFeasible checks v's dependence constraints against the current times
// of every other operation.
func (s *state) timeFeasible(v, t int) bool {
	for _, ei := range s.d.InEdges(v) {
		e := s.d.Edges[ei]
		if e.From == v {
			continue
		}
		if t < s.time[e.From]+s.d.Nodes[e.From].Kind.Latency()-s.ii*e.Dist {
			return false
		}
	}
	for _, ei := range s.d.OutEdges(v) {
		e := s.d.Edges[ei]
		if e.To == v {
			continue
		}
		if s.time[e.To] < t+s.d.Nodes[v].Kind.Latency()-s.ii*e.Dist {
			return false
		}
	}
	return true
}

func (s *state) placement() *Placement {
	p := &Placement{
		M:     s.m,
		D:     s.d,
		II:    s.ii,
		Time:  append([]int(nil), s.time...),
		PE:    append([]int(nil), s.pe...),
		Paths: make([][]int, len(s.path)),
	}
	for i := range s.path {
		p.Paths[i] = append([]int(nil), s.path[i]...)
	}
	return p
}

// Verify audits a finished placement: every edge routed along real MRRG arcs
// from the producer's output register to the consumer's FU, and no resource
// used beyond capacity.
func (p *Placement) Verify(c *arch.CGRA) error {
	use := make([]int, p.M.N())
	for v := range p.D.Nodes {
		if p.Time[v] < 0 || p.PE[v] < 0 || p.PE[v] >= c.NumPEs() {
			return fmt.Errorf("dresc: op %s has invalid binding (t=%d, pe=%d)", p.D.Nodes[v].Name, p.Time[v], p.PE[v])
		}
		slot := p.Time[v] % p.II
		if !c.Supports(p.PE[v], p.D.Nodes[v].Kind) {
			return fmt.Errorf("dresc: PE %d cannot execute %s", p.PE[v], p.D.Nodes[v].Name)
		}
		use[p.M.FUNode(p.PE[v], slot)]++
		if p.D.Nodes[v].Kind != dfg.Store && len(p.D.OutEdges(v)) > 0 {
			use[p.M.OutRegNode(p.PE[v], (slot+1)%p.II)]++
		}
		if p.D.Nodes[v].Kind.IsMem() {
			use[p.M.BusNode(c.RowOf(p.PE[v]), slot)]++
			if p.M.HasBusGroups() {
				use[p.M.BusGroupNode(c.BusGroupOf(p.PE[v]), slot)]++
			}
		}
	}
	for ei, e := range p.D.Edges {
		if p.Time[e.To] < p.Time[e.From]+p.D.Nodes[e.From].Kind.Latency()-p.II*e.Dist {
			return fmt.Errorf("dresc: edge %d violates dependence timing", ei)
		}
		path := p.Paths[ei]
		if len(path) == 0 {
			return fmt.Errorf("dresc: edge %d unrouted", ei)
		}
		wantSrc := p.M.OutRegNode(p.PE[e.From], (p.Time[e.From]+1)%p.II)
		if path[0] != wantSrc {
			return fmt.Errorf("dresc: edge %d starts at %s, want %s", ei, p.M.Describe(path[0]), p.M.Describe(wantSrc))
		}
		dst := p.M.FUNode(p.PE[e.To], p.Time[e.To]%p.II)
		elapsed := 1 // the producer's result reaches its out register in 1 cycle
		for i := 0; i+1 < len(path); i++ {
			if !containsNode(p.M.Out(path[i]), path[i+1]) {
				return fmt.Errorf("dresc: edge %d path hop %d not an MRRG arc", ei, i)
			}
			if p.M.Kind(path[i+1]) != arch.FU {
				elapsed++
			}
		}
		if !containsNode(p.M.Out(path[len(path)-1]), dst) {
			return fmt.Errorf("dresc: edge %d path does not reach %s", ei, p.M.Describe(dst))
		}
		span := p.Time[e.To] - p.Time[e.From] + p.II*e.Dist
		if elapsed != span {
			return fmt.Errorf("dresc: edge %d path takes %d cycles, dependence spans %d", ei, elapsed, span)
		}
		for _, node := range pathOccupancy(path) {
			use[node]++
		}
	}
	for node, u := range use {
		if u > p.M.Cap(node) {
			return fmt.Errorf("dresc: %s used %d times, capacity %d", p.M.Describe(node), u, p.M.Cap(node))
		}
	}
	return nil
}

func containsNode(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
