// Package clique finds register-weight-constrained maximal cliques, the
// computational heart of REGIMap's placement step (paper Appendix C/D).
//
// The input is an undirected compatibility graph whose directed arc weights
// encode register demand: weight(u, v) is the number of registers node u's
// mapping must hold while node v's mapping is also in the solution. A clique
// C is *feasible* when every member's outgoing weight into C stays within the
// register-file budget:
//
//	for all u in C:  sum over v in C of weight(u, v)  <=  Cap
//
// Feasibility is hereditary (removing members never increases any sum), so
// both the paper's constructive heuristic and an exact branch-and-bound
// search (used to cross-validate the heuristic in tests and ablations) apply.
package clique

import (
	"sort"

	"regimap/internal/graph"
)

// Graph is a weighted compatibility graph. Adjacency is symmetric; weights
// are directed and default to zero.
type Graph struct {
	n       int
	adj     []*graph.Bitset
	weight  map[int64]int
	fn      func(u, v int) int
	cluster []int  // weight-interaction class per node (nil: global)
	outW    []bool // whether a node has any outgoing weight
	base    []int
	cap     int
}

// NewGraph returns an empty graph of n nodes with the given per-node weight
// budget (the register-file size; negative means unconstrained).
func NewGraph(n, cap int) *Graph {
	g := &Graph{n: n, adj: make([]*graph.Bitset, n), weight: map[int64]int{}, outW: make([]bool, n), base: make([]int, n), cap: cap}
	for i := range g.adj {
		g.adj[i] = graph.NewBitset(n)
	}
	return g
}

// AddBase adds an unconditional weight to node u, charged whenever u is in a
// clique (REGIMap uses this for self-recurrence register demand: an
// accumulator holds its registers regardless of which other mappings join).
func (g *Graph) AddBase(u, w int) { g.base[u] += w }

// Base returns node u's unconditional weight.
func (g *Graph) Base(u int) int { return g.base[u] }

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Cap returns the per-node weight budget.
func (g *Graph) Cap() int { return g.cap }

// AddEdge marks u and v compatible (symmetric).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("clique: self edge")
	}
	g.adj[u].Set(v)
	g.adj[v].Set(u)
}

// Adjacent reports whether u and v are compatible.
func (g *Graph) Adjacent(u, v int) bool { return g.adj[u].Has(v) }

// OrAdjacency bulk-marks u compatible with every member of mask. Callers are
// responsible for symmetry (apply the mirrored mask to the other side) and
// for masks that exclude u itself; REGIMap's compatibility construction uses
// this for the dependence-free operation pairs that dominate large arrays.
func (g *Graph) OrAdjacency(u int, mask *graph.Bitset) { g.adj[u].Or(mask) }

// ClearEdge removes a compatibility edge (both directions).
func (g *Graph) ClearEdge(u, v int) {
	g.adj[u].Clear(v)
	g.adj[v].Clear(u)
}

// AddWeight increases the directed weight u -> v (both directions are stored
// independently, matching the paper's asymmetric register demand). Mutually
// exclusive with SetWeightFunc.
func (g *Graph) AddWeight(u, v, w int) {
	if g.fn != nil {
		panic("clique: AddWeight after SetWeightFunc")
	}
	if w != 0 {
		g.weight[int64(u)*int64(g.n)+int64(v)] += w
		g.outW[u] = true
	}
}

// SetWeightFunc installs a computed weight in place of the stored map —
// REGIMap's register demand is a pure function of the pair (same PE ->
// consumer demand), and avoiding the map keeps the search's inner loops
// allocation- and hash-free. hasOut must report whether a node has any
// non-zero outgoing weight.
func (g *Graph) SetWeightFunc(fn func(u, v int) int, hasOut func(u int) bool, cluster func(u int) int) {
	if len(g.weight) > 0 {
		panic("clique: SetWeightFunc after AddWeight")
	}
	g.fn = fn
	g.cluster = make([]int, g.n)
	for u := 0; u < g.n; u++ {
		g.outW[u] = hasOut(u)
		g.cluster[u] = cluster(u)
	}
}

// Weight returns the directed weight u -> v.
func (g *Graph) Weight(u, v int) int {
	if g.fn != nil {
		return g.fn(u, v)
	}
	return g.weight[int64(u)*int64(g.n)+int64(v)]
}

// Degree returns the number of nodes compatible with u.
func (g *Graph) Degree(u int) int { return g.adj[u].Count() }

// IsFeasibleClique verifies that members form a clique and every member's
// outgoing weight into the clique respects the budget. Exposed so callers
// (and property tests) can independently audit results.
func (g *Graph) IsFeasibleClique(members []int) bool {
	for i, u := range members {
		sum := g.base[u]
		for j, v := range members {
			if i == j {
				continue
			}
			if !g.adj[u].Has(v) {
				return false
			}
			sum += g.Weight(u, v)
		}
		if g.cap >= 0 && sum > g.cap {
			return false
		}
	}
	return true
}

// state tracks one growing clique with incremental weight sums.
type state struct {
	g         *Graph
	members   []int
	wMembers  []int         // members with outgoing weights (the only growable sums)
	byCluster map[int][]int // members per weight-interaction class (when installed)
	inC       *graph.Bitset
	cand      *graph.Bitset // nodes adjacent to every member
	sum       []int         // node -> outgoing weight into the clique (members only)
}

func newState(g *Graph) *state {
	s := &state{
		g:    g,
		inC:  graph.NewBitset(g.n),
		cand: graph.NewBitset(g.n),
		sum:  make([]int, g.n),
	}
	if g.cluster != nil {
		s.byCluster = map[int][]int{}
	}
	s.cand.Fill()
	return s
}

func (s *state) clone() *state {
	c := &state{
		g:        s.g,
		members:  append([]int(nil), s.members...),
		wMembers: append([]int(nil), s.wMembers...),
		inC:      s.inC.Clone(),
		cand:     s.cand.Clone(),
		sum:      append([]int(nil), s.sum...),
	}
	if s.byCluster != nil {
		c.byCluster = make(map[int][]int, len(s.byCluster))
		for k, v := range s.byCluster {
			c.byCluster[k] = append([]int(nil), v...)
		}
	}
	return c
}

// canAdd reports whether u keeps the clique feasible. When weight clusters
// are installed (REGIMap's PEs), only same-cluster members interact with u,
// so the check is O(ops per PE); otherwise only the weighted members can
// exceed their budget.
func (s *state) canAdd(u int) bool {
	if s.inC.Has(u) || !s.cand.Has(u) {
		return false
	}
	if s.g.cap < 0 {
		return true
	}
	uSum := s.g.base[u]
	if s.byCluster != nil {
		for _, v := range s.byCluster[s.g.cluster[u]] {
			if s.sum[v]+s.g.Weight(v, u) > s.g.cap {
				return false
			}
			if s.g.outW[u] {
				uSum += s.g.Weight(u, v)
			}
		}
		return uSum <= s.g.cap
	}
	for _, v := range s.wMembers {
		if s.sum[v]+s.g.Weight(v, u) > s.g.cap {
			return false
		}
	}
	if s.g.outW[u] {
		for _, v := range s.members {
			uSum += s.g.Weight(u, v)
		}
	}
	return uSum <= s.g.cap
}

func (s *state) add(u int) {
	s.sum[u] += s.g.base[u]
	if s.byCluster != nil {
		cl := s.g.cluster[u]
		for _, v := range s.byCluster[cl] {
			s.sum[v] += s.g.Weight(v, u)
			if s.g.outW[u] {
				s.sum[u] += s.g.Weight(u, v)
			}
		}
		s.byCluster[cl] = append(s.byCluster[cl], u)
	} else {
		for _, v := range s.wMembers {
			s.sum[v] += s.g.Weight(v, u)
		}
		if s.g.outW[u] {
			for _, v := range s.members {
				s.sum[u] += s.g.Weight(u, v)
			}
		}
	}
	if s.g.outW[u] {
		s.wMembers = append(s.wMembers, u)
	}
	s.members = append(s.members, u)
	s.inC.Set(u)
	s.cand.And(s.g.adj[u])
}

// grow extends the clique greedily until no candidate fits, preferring the
// candidate with the most arcs to the remaining candidate set (Appendix D's
// "maximum number of arcs to the nodes outside the clique" tie-break), with
// node id as the deterministic final tie-break. It stops early at target.
func (s *state) grow(target int) {
	for len(s.members) < target {
		best, bestScore := -1, -1
		s.cand.ForEach(func(u int) bool {
			if !s.canAdd(u) {
				return true
			}
			score := s.g.adj[u].IntersectCount(s.cand)
			if score > bestScore {
				best, bestScore = u, score
			}
			return true
		})
		if best == -1 {
			return
		}
		s.add(best)
	}
}

// rebuild constructs a state containing exactly the given feasible members.
func rebuild(g *Graph, members []int) *state {
	s := newState(g)
	for _, u := range members {
		s.add(u)
	}
	return s
}

// Options tunes the heuristic search; zero values select the paper's
// configuration.
type Options struct {
	// MaxSeeds bounds how many greedy starts are attempted (<=0: 16).
	MaxSeeds int
	// MaxIntersections bounds the clique-pair intersection phase (<=0: 32).
	MaxIntersections int
	// DisableSwap turns off the one-out swap repair (ablation).
	DisableSwap bool
	// DisableIntersect turns off the intersection re-seeding (ablation).
	DisableIntersect bool
	// GroupRounds bounds FindGrouped's promote-and-retry rounds (<=0: 6).
	GroupRounds int
	// GroupOrder, when non-nil, fixes FindGrouped's initial placement order
	// (REGIMap passes schedule order so operations land next to their
	// already-placed producers). Defaults to most-constrained-first.
	GroupOrder []int
}

// Find runs the paper's constructive heuristic: greedy growth from many
// seeds, one-out swap repair, then pairwise intersection re-seeding. It
// returns the best feasible clique found (possibly smaller than target) —
// never nil, possibly empty.
func Find(g *Graph, target int, opts Options) []int {
	maxSeeds := opts.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 16
	}
	maxInter := opts.MaxIntersections
	if maxInter <= 0 {
		maxInter = 32
	}
	if target > g.n {
		target = g.n
	}

	// Seed order: highest-degree nodes first (most likely to appear in a
	// large clique), id as tie-break.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	if len(order) > maxSeeds {
		order = order[:maxSeeds]
	}

	var best []int
	var found [][]int
	consider := func(c []int) bool {
		found = append(found, c)
		if len(c) > len(best) {
			best = c
		}
		return len(best) >= target
	}

	for _, seed := range order {
		s := newState(g)
		if !s.canAdd(seed) {
			continue
		}
		s.add(seed)
		s.grow(target)
		if !opts.DisableSwap {
			s = swapImprove(s, target)
		}
		if consider(s.members) {
			return best
		}
	}

	if !opts.DisableIntersect {
		// Pairwise intersections of the best cliques become new seeds
		// (Appendix D: "the intersect of pairs of cliques is the next
		// initial clique to be maximized").
		sort.SliceStable(found, func(i, j int) bool { return len(found[i]) > len(found[j]) })
		pairs := 0
		for i := 0; i < len(found) && pairs < maxInter; i++ {
			for j := i + 1; j < len(found) && pairs < maxInter; j++ {
				pairs++
				seed := intersect(g, found[i], found[j])
				if len(seed) == 0 || len(seed) == len(found[i]) {
					continue
				}
				s := rebuild(g, seed)
				s.grow(target)
				if !opts.DisableSwap {
					s = swapImprove(s, target)
				}
				if consider(s.members) {
					return best
				}
			}
		}
	}
	return best
}

// swapImprove applies the paper's repair move: when growth stalls, look for
// an outside node adjacent to all members but one, swap it in, and regrow.
// A bounded number of rounds keeps termination obvious.
func swapImprove(s *state, target int) *state {
	best := s
	cur := s
	for round := 0; round < 2*len(cur.members)+4 && len(cur.members) < target; round++ {
		u, x := findSwap(cur)
		if u == -1 {
			break
		}
		next := removeMember(cur, x)
		if !next.canAdd(u) {
			// The candidate violates the weight budget even after the
			// removal; blacklisting would require bookkeeping — simply stop.
			break
		}
		next.add(u)
		next.grow(target)
		if len(next.members) <= len(cur.members) {
			break // swap did not help; avoid cycling
		}
		cur = next
		if len(cur.members) > len(best.members) {
			best = cur
		}
	}
	return best
}

// findSwap returns an outside node u adjacent to all members except exactly
// one (x), or (-1, -1).
func findSwap(s *state) (u, x int) {
	n := s.g.n
	for cand := 0; cand < n; cand++ {
		if s.inC.Has(cand) {
			continue
		}
		miss, missCount := -1, 0
		for _, m := range s.members {
			if !s.g.adj[cand].Has(m) {
				miss = m
				missCount++
				if missCount > 1 {
					break
				}
			}
		}
		if missCount == 1 {
			return cand, miss
		}
	}
	return -1, -1
}

func removeMember(s *state, x int) *state {
	members := make([]int, 0, len(s.members)-1)
	for _, m := range s.members {
		if m != x {
			members = append(members, m)
		}
	}
	return rebuild(s.g, members)
}

func intersect(g *Graph, a, b []int) []int {
	inB := graph.NewBitset(g.n)
	for _, v := range b {
		inB.Set(v)
	}
	var out []int
	for _, v := range a {
		if inB.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// FindExact performs branch-and-bound maximum feasible clique search. It is
// exponential and intended for small graphs: cross-validating the heuristic
// and the ablation benches.
func FindExact(g *Graph, target int) []int {
	var best []int
	s := newState(g)
	var dfs func(s *state)
	dfs = func(s *state) {
		if len(s.members) > len(best) {
			best = append([]int(nil), s.members...)
		}
		if len(best) >= target {
			return
		}
		// Bound: even taking every candidate cannot beat best.
		if len(s.members)+s.cand.Count() <= len(best) {
			return
		}
		var cands []int
		s.cand.ForEach(func(u int) bool {
			if !s.inC.Has(u) {
				cands = append(cands, u)
			}
			return true
		})
		for i, u := range cands {
			if !s.canAdd(u) {
				continue
			}
			child := s.clone()
			child.add(u)
			// Exclude earlier candidates to avoid permuted duplicates.
			for _, v := range cands[:i] {
				child.cand.Clear(v)
			}
			dfs(child)
			if len(best) >= target {
				return
			}
		}
	}
	dfs(s)
	return best
}
