// Package clique finds register-weight-constrained maximal cliques, the
// computational heart of REGIMap's placement step (paper Appendix C/D).
//
// The input is an undirected compatibility graph whose directed arc weights
// encode register demand: weight(u, v) is the number of registers node u's
// mapping must hold while node v's mapping is also in the solution. A clique
// C is *feasible* when every member's outgoing weight into C stays within the
// register-file budget:
//
//	for all u in C:  sum over v in C of weight(u, v)  <=  Cap
//
// Feasibility is hereditary (removing members never increases any sum), so
// both the paper's constructive heuristic and an exact branch-and-bound
// search (used to cross-validate the heuristic in tests and ablations) apply.
//
// The engine is allocation-free on its hot path: every search call owns a
// search-local arena that pools clique states and their bitsets across
// seeds, swap-repair rounds, and branch-and-bound nodes (see DESIGN.md's
// hot-path memory model). Pooling is deterministic — states are fully reset
// on reuse, so results are byte-identical to fresh allocation (enforced by
// the reference property tests in reference_test.go).
package clique

import (
	"context"
	"sort"

	"regimap/internal/graph"
	"regimap/internal/obs"
)

// Graph is a weighted compatibility graph. Adjacency is symmetric; weights
// are directed and default to zero.
type Graph struct {
	n         int
	adj       []*graph.Bitset
	weight    []int // flat n*n directed weights (nil until AddWeight)
	fn        func(u, v int) int
	cluster   []int  // weight-interaction class per node (nil: global)
	nClusters int    // 1 + max cluster id (0 when cluster is nil)
	outW      []bool // whether a node has any outgoing weight
	base      []int
	anyW      bool // any non-zero weight or base exists (false => feasibility is vacuous)
	cap       int
	degOrder  []int // cached DegreeOrder (nil after any adjacency mutation)
}

// NewGraph returns an empty graph of n nodes with the given per-node weight
// budget (the register-file size; negative means unconstrained).
func NewGraph(n, cap int) *Graph {
	return &Graph{n: n, adj: graph.NewBitsetSlab(n, n), outW: make([]bool, n), base: make([]int, n), cap: cap}
}

// AddBase adds an unconditional weight to node u, charged whenever u is in a
// clique (REGIMap uses this for self-recurrence register demand: an
// accumulator holds its registers regardless of which other mappings join).
func (g *Graph) AddBase(u, w int) {
	g.base[u] += w
	if g.base[u] != 0 {
		g.anyW = true
	}
}

// SetBase overwrites node u's unconditional weight (the incremental compat
// builder re-derives every base per schedule attempt).
func (g *Graph) SetBase(u, w int) {
	g.base[u] = w
	if w != 0 {
		g.anyW = true
	}
}

// Base returns node u's unconditional weight.
func (g *Graph) Base(u int) int { return g.base[u] }

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Cap returns the per-node weight budget.
func (g *Graph) Cap() int { return g.cap }

// AddEdge marks u and v compatible (symmetric).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("clique: self edge")
	}
	g.adj[u].Set(v)
	g.adj[v].Set(u)
	g.degOrder = nil
}

// Adjacent reports whether u and v are compatible.
func (g *Graph) Adjacent(u, v int) bool { return g.adj[u].Has(v) }

// OrAdjacency bulk-marks u compatible with every member of mask. Callers are
// responsible for symmetry (apply the mirrored mask to the other side) and
// for masks that exclude u itself; REGIMap's compatibility construction uses
// this for the dependence-free operation pairs that dominate large arrays.
func (g *Graph) OrAdjacency(u int, mask *graph.Bitset) {
	g.adj[u].Or(mask)
	g.degOrder = nil
}

// AndNotAdjacency bulk-clears every member of mask from u's adjacency row.
// Like OrAdjacency, symmetry is the caller's responsibility; the incremental
// compat builder uses this to drop a rescheduled operation's stale edges
// before rebuilding only its rows.
func (g *Graph) AndNotAdjacency(u int, mask *graph.Bitset) {
	g.adj[u].AndNot(mask)
	g.degOrder = nil
}

// ResetAdjacency clears u's entire adjacency row (one side only).
func (g *Graph) ResetAdjacency(u int) {
	g.adj[u].Reset()
	g.degOrder = nil
}

// ClearEdge removes a compatibility edge (both directions).
func (g *Graph) ClearEdge(u, v int) {
	g.adj[u].Clear(v)
	g.adj[v].Clear(u)
	g.degOrder = nil
}

// AddWeight increases the directed weight u -> v (both directions are stored
// independently, matching the paper's asymmetric register demand). Mutually
// exclusive with SetWeightFunc. Storage is a flat n*n slice, allocated on the
// first non-zero weight: the search's inner loops stay hash- and
// allocation-free, and the common all-zero graphs pay nothing.
func (g *Graph) AddWeight(u, v, w int) {
	if g.fn != nil {
		panic("clique: AddWeight after SetWeightFunc")
	}
	if w != 0 {
		if g.weight == nil {
			g.weight = make([]int, g.n*g.n)
		}
		g.weight[u*g.n+v] += w
		g.outW[u] = true
		g.anyW = true
	}
}

// SetWeightFunc installs a computed weight in place of the stored slice —
// REGIMap's register demand is a pure function of the pair (same PE ->
// consumer demand), and avoiding materialized weights keeps the search's
// inner loops allocation- and hash-free. hasOut must report whether a node
// has any non-zero outgoing weight. Calling it again refreshes the outgoing
// and cluster summaries (the incremental compat builder does this once per
// schedule attempt, because register demands move with the schedule).
func (g *Graph) SetWeightFunc(fn func(u, v int) int, hasOut func(u int) bool, cluster func(u int) int) {
	if g.weight != nil {
		panic("clique: SetWeightFunc after AddWeight")
	}
	g.fn = fn
	if g.cluster == nil {
		g.cluster = make([]int, g.n)
	}
	g.nClusters = 0
	g.anyW = false
	for u := 0; u < g.n; u++ {
		g.outW[u] = hasOut(u)
		g.cluster[u] = cluster(u)
		if g.cluster[u]+1 > g.nClusters {
			g.nClusters = g.cluster[u] + 1
		}
		if g.outW[u] || g.base[u] != 0 {
			g.anyW = true
		}
	}
}

// Weight returns the directed weight u -> v.
func (g *Graph) Weight(u, v int) int {
	if g.fn != nil {
		return g.fn(u, v)
	}
	if g.weight == nil {
		return 0
	}
	return g.weight[u*g.n+v]
}

// Degree returns the number of nodes compatible with u.
func (g *Graph) Degree(u int) int { return g.adj[u].Count() }

// DegreeOrder returns the node ids sorted by descending degree (id as the
// deterministic tie-break) — Find's seed order. The order is cached until
// the next adjacency mutation, so repeated searches of one graph sort once;
// callers running Find several times can also pass it via Options.SeedOrder.
func (g *Graph) DegreeOrder() []int {
	if g.degOrder != nil {
		return g.degOrder
	}
	deg := make([]int, g.n)
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
		deg[i] = g.adj[i].Count()
	}
	sort.Slice(order, func(i, j int) bool {
		if deg[order[i]] != deg[order[j]] {
			return deg[order[i]] > deg[order[j]]
		}
		return order[i] < order[j]
	})
	g.degOrder = order
	return order
}

// IsFeasibleClique verifies that members form a clique and every member's
// outgoing weight into the clique respects the budget. Exposed so callers
// (and property tests) can independently audit results.
func (g *Graph) IsFeasibleClique(members []int) bool {
	for i, u := range members {
		sum := g.base[u]
		for j, v := range members {
			if i == j {
				continue
			}
			if !g.adj[u].Has(v) {
				return false
			}
			sum += g.Weight(u, v)
		}
		if g.cap >= 0 && sum > g.cap {
			return false
		}
	}
	return true
}

// arena pools clique states for one search invocation. It is search-local —
// never shared across goroutines and never a sync.Pool — so reuse is fully
// deterministic: get() returns either a brand-new state or a recycled one
// reset to exactly the fresh-state contents. recycleAll() returns every
// state ever created to the free list; callers must copy any member slice
// they intend to keep before invoking it.
type arena struct {
	g       *Graph
	all     []*state
	free    []*state
	scratch *graph.Bitset   // intersection-phase scratch (lazily allocated)
	colors  []*graph.Bitset // coloring-bound scratch (lazily allocated)
}

func newArena(g *Graph) *arena { return &arena{g: g} }

func (a *arena) get() *state {
	if k := len(a.free); k > 0 {
		s := a.free[k-1]
		a.free = a.free[:k-1]
		s.reset()
		return s
	}
	s := &state{
		g:       a.g,
		ar:      a,
		inC:     graph.NewBitset(a.g.n),
		cand:    graph.NewBitset(a.g.n),
		dead:    graph.NewBitset(a.g.n),
		sum:     make([]int, a.g.n),
		scoreUB: make([]int, a.g.n),
	}
	if a.g.cluster != nil {
		s.byCluster = make([][]int, a.g.nClusters)
	}
	s.cand.Fill()
	a.all = append(a.all, s)
	return s
}

// put returns one state to the free list; the caller must drop its reference.
func (a *arena) put(s *state) { a.free = append(a.free, s) }

// recycleAll makes every state created so far available for reuse.
func (a *arena) recycleAll() { a.free = append(a.free[:0], a.all...) }

// state tracks one growing clique with incremental weight sums.
type state struct {
	g         *Graph
	ar        *arena
	members   []int
	wMembers  []int   // members with outgoing weights (the only growable sums)
	byCluster [][]int // members per weight-interaction class (when installed)
	inC       *graph.Bitset
	cand      *graph.Bitset // nodes adjacent to every member
	dead      *graph.Bitset // grow's scratch: candidates proven weight-infeasible
	sum       []int         // node -> outgoing weight into the clique (members only)
	scoreUB   []int         // grow's scratch: stale upper bound on |adj(u) ∩ cand|
}

// reset restores the fresh-state invariants. Only member-touched entries of
// sum/byCluster are dirty, so the cost is O(|members| + words), not O(n).
func (s *state) reset() {
	for _, m := range s.members {
		s.sum[m] = 0
		if s.byCluster != nil {
			cl := s.g.cluster[m]
			s.byCluster[cl] = s.byCluster[cl][:0]
		}
	}
	s.members = s.members[:0]
	s.wMembers = s.wMembers[:0]
	s.inC.Reset()
	s.cand.Fill()
}

// clone copies s into a pooled state (FindExact's branch step).
func (s *state) clone() *state {
	c := s.ar.get()
	c.members = append(c.members[:0], s.members...)
	c.wMembers = append(c.wMembers[:0], s.wMembers...)
	c.inC.CopyFrom(s.inC)
	c.cand.CopyFrom(s.cand)
	for _, m := range s.members {
		c.sum[m] = s.sum[m]
		if s.byCluster != nil {
			cl := s.g.cluster[m]
			if len(c.byCluster[cl]) == 0 {
				c.byCluster[cl] = append(c.byCluster[cl][:0], s.byCluster[cl]...)
			}
		}
	}
	return c
}

// canAdd reports whether u keeps the clique feasible. When weight clusters
// are installed (REGIMap's PEs), only same-cluster members interact with u,
// so the check is O(ops per PE); otherwise only the weighted members can
// exceed their budget.
func (s *state) canAdd(u int) bool {
	if s.inC.Has(u) || !s.cand.Has(u) {
		return false
	}
	if s.g.cap < 0 || !s.g.anyW {
		return true // unconstrained, or no weight anywhere: always feasible
	}
	uSum := s.g.base[u]
	if s.byCluster != nil {
		for _, v := range s.byCluster[s.g.cluster[u]] {
			if s.sum[v]+s.g.Weight(v, u) > s.g.cap {
				return false
			}
			if s.g.outW[u] {
				uSum += s.g.Weight(u, v)
			}
		}
		return uSum <= s.g.cap
	}
	for _, v := range s.wMembers {
		if s.sum[v]+s.g.Weight(v, u) > s.g.cap {
			return false
		}
	}
	if s.g.outW[u] {
		for _, v := range s.members {
			uSum += s.g.Weight(u, v)
		}
	}
	return uSum <= s.g.cap
}

func (s *state) add(u int) {
	s.sum[u] += s.g.base[u]
	if s.byCluster != nil {
		cl := s.g.cluster[u]
		for _, v := range s.byCluster[cl] {
			s.sum[v] += s.g.Weight(v, u)
			if s.g.outW[u] {
				s.sum[u] += s.g.Weight(u, v)
			}
		}
		s.byCluster[cl] = append(s.byCluster[cl], u)
	} else {
		for _, v := range s.wMembers {
			s.sum[v] += s.g.Weight(v, u)
		}
		if s.g.outW[u] {
			for _, v := range s.members {
				s.sum[u] += s.g.Weight(u, v)
			}
		}
	}
	if s.g.outW[u] {
		s.wMembers = append(s.wMembers, u)
	}
	s.members = append(s.members, u)
	s.inC.Set(u)
	s.cand.And(s.g.adj[u])
}

// grow extends the clique greedily until no candidate fits, preferring the
// candidate with the most arcs to the remaining candidate set (Appendix D's
// "maximum number of arcs to the nodes outside the clique" tie-break), with
// node id as the deterministic final tie-break. It stops early at target.
//
// Candidate scores |adj(u) ∩ cand| are computed inside the argmax scan as
// one word-level popcount pass per candidate — on the dense compatibility
// graphs REGIMap produces, fusing the score into the scan is cheaper than
// maintaining scores incrementally across adds (each add evicts few
// candidates but every evicted node's surviving neighbourhood is nearly all
// of cand, so the decremental walk degenerates to a per-bit pass over the
// whole graph).
//
// Weight infeasibility is hereditary — the member sums only grow while the
// clique grows — so a candidate that fails canAdd once is marked dead and
// never re-checked, skipping the cluster weight walk on every later scan.
// Scores are monotone too: cand only shrinks, so a score computed on any
// earlier iteration upper-bounds the current one, and a candidate whose
// stale bound cannot beat the running argmax is skipped without touching
// its adjacency row (the selected argmax, and therefore the result, is
// exactly the one a full rescan would pick).
func (s *state) grow(target int) {
	if len(s.members) >= target {
		return
	}
	s.dead.Reset()
	for i := range s.scoreUB {
		s.scoreUB[i] = 1 << 30
	}
	for len(s.members) < target {
		best, bestScore := -1, -1
		s.cand.ForEach(func(u int) bool {
			if s.dead.Has(u) || s.scoreUB[u] <= bestScore {
				return true
			}
			if !s.canAdd(u) {
				s.dead.Set(u)
				return true
			}
			sc := s.g.adj[u].IntersectCount(s.cand)
			s.scoreUB[u] = sc
			if sc > bestScore {
				best, bestScore = u, sc
			}
			return true
		})
		if best == -1 {
			return
		}
		s.add(best)
	}
}

// rebuild constructs a pooled state containing exactly the given feasible
// members.
func rebuild(ar *arena, members []int) *state {
	s := ar.get()
	for _, u := range members {
		s.add(u)
	}
	return s
}

// Options tunes the heuristic search; zero values select the paper's
// configuration.
type Options struct {
	// MaxSeeds bounds how many greedy starts are attempted (<=0: 16).
	MaxSeeds int
	// MaxIntersections bounds the clique-pair intersection phase (<=0: 32).
	MaxIntersections int
	// DisableSwap turns off the one-out swap repair (ablation).
	DisableSwap bool
	// DisableIntersect turns off the intersection re-seeding (ablation).
	DisableIntersect bool
	// GroupRounds bounds FindGrouped's promote-and-retry rounds (<=0: 6).
	GroupRounds int
	// GroupOrder, when non-nil, fixes FindGrouped's initial placement order
	// (REGIMap passes schedule order so operations land next to their
	// already-placed producers). Defaults to most-constrained-first.
	GroupOrder []int
	// SeedOrder, when it holds a permutation of every node id, replaces
	// Find's internal degree sort (it must be Graph.DegreeOrder's order for
	// results to match the default). REGIMap computes it once per
	// compatibility graph and reuses it across clique.Find calls.
	SeedOrder []int
	// Workers > 1 runs Find's seed and intersection phases across that many
	// goroutines. Results are byte-identical at every worker count — the
	// parallel engine merges partition results in the sequential order (see
	// parallel.go and DESIGN.md section 8g).
	Workers int
	// Ctx, when non-nil, lets the parallel engine stop between partitions
	// once the context is cancelled. The result of a cancelled search is
	// best-effort; core.Map discards the attempt anyway. The sequential
	// engine ignores it.
	Ctx context.Context
	// Arenas, when non-nil, supplies pooled search arenas reused across
	// calls and requests (regimapd installs one per process). Arenas are
	// fully wiped on reuse, so results are unaffected.
	Arenas *Pool
	// Trace, when non-nil, receives clique.find / clique.grouped events.
	// The nil default costs nothing (see internal/obs).
	Trace *obs.Tracer
}

// Find runs the paper's constructive heuristic: greedy growth from many
// seeds, one-out swap repair, then pairwise intersection re-seeding. It
// returns the best feasible clique found (possibly smaller than target) —
// never nil, possibly empty.
func Find(g *Graph, target int, opts Options) (best []int) {
	if opts.Workers > 1 {
		return findParallel(g, target, opts)
	}
	maxSeeds := opts.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 16
	}
	maxInter := opts.MaxIntersections
	if maxInter <= 0 {
		maxInter = 32
	}
	if target > g.n {
		target = g.n
	}

	sp := opts.Trace.Start("clique.find")
	seeds, pairs := 0, 0
	defer func() {
		sp.Field("nodes", int64(g.n))
		sp.Field("seeds", int64(seeds))
		sp.Field("pairs", int64(pairs))
		sp.Field("best", int64(len(best)))
		sp.Field("target", int64(target))
		sp.End()
	}()

	// Seed order: highest-degree nodes first (most likely to appear in a
	// large clique), id as tie-break.
	order := opts.SeedOrder
	if len(order) != g.n {
		order = g.DegreeOrder()
	}
	if len(order) > maxSeeds {
		order = order[:maxSeeds]
	}

	ar, release := opts.acquireArena(g)
	defer release()
	var found [][]int
	consider := func(s *state) bool {
		c := append([]int(nil), s.members...)
		found = append(found, c)
		if len(c) > len(best) {
			best = c
		}
		return len(best) >= target
	}

	for _, seed := range order {
		seeds++
		s := ar.get()
		if !s.canAdd(seed) {
			ar.recycleAll()
			continue
		}
		s.add(seed)
		s.grow(target)
		if !opts.DisableSwap {
			s = swapImprove(s, target)
		}
		done := consider(s)
		ar.recycleAll()
		if done {
			return best
		}
	}

	if !opts.DisableIntersect {
		// Pairwise intersections of the best cliques become new seeds
		// (Appendix D: "the intersect of pairs of cliques is the next
		// initial clique to be maximized").
		sort.SliceStable(found, func(i, j int) bool { return len(found[i]) > len(found[j]) })
		for i := 0; i < len(found) && pairs < maxInter; i++ {
			for j := i + 1; j < len(found) && pairs < maxInter; j++ {
				pairs++
				seed := intersect(ar, found[i], found[j])
				// Skip seeds identical to either parent: regrowing a clique
				// already considered cannot beat it, and the re-seed budget is
				// better spent on genuinely new starting points.
				if len(seed) == 0 || len(seed) == len(found[i]) || len(seed) == len(found[j]) {
					continue
				}
				s := rebuild(ar, seed)
				s.grow(target)
				if !opts.DisableSwap {
					s = swapImprove(s, target)
				}
				done := consider(s)
				ar.recycleAll()
				if done {
					return best
				}
			}
		}
	}
	return best
}

// swapImprove applies the paper's repair move: when growth stalls, look for
// an outside node adjacent to all members but one, swap it in, and regrow.
// A bounded number of rounds keeps termination obvious.
func swapImprove(s *state, target int) *state {
	best := s
	cur := s
	for round := 0; round < 2*len(cur.members)+4 && len(cur.members) < target; round++ {
		u, x := findSwap(cur)
		if u == -1 {
			break
		}
		next := removeMember(cur, x)
		if !next.canAdd(u) {
			// The candidate violates the weight budget even after the
			// removal; blacklisting would require bookkeeping — simply stop.
			break
		}
		next.add(u)
		next.grow(target)
		if len(next.members) <= len(cur.members) {
			break // swap did not help; avoid cycling
		}
		cur = next
		if len(cur.members) > len(best.members) {
			best = cur
		}
	}
	return best
}

// findSwap returns an outside node u adjacent to all members except exactly
// one (x), or (-1, -1). A candidate's miss count is |C| minus its adjacency
// overlap with the member set — one popcount pass per candidate instead of
// the O(|C|) per-member scan.
func findSwap(s *state) (u, x int) {
	n := s.g.n
	k := len(s.members)
	for cand := 0; cand < n; cand++ {
		if s.inC.Has(cand) {
			continue
		}
		if k-s.g.adj[cand].IntersectCount(s.inC) != 1 {
			continue
		}
		for _, m := range s.members {
			if !s.g.adj[cand].Has(m) {
				return cand, m
			}
		}
	}
	return -1, -1
}

func removeMember(s *state, x int) *state {
	next := s.ar.get()
	for _, m := range s.members {
		if m != x {
			next.add(m)
		}
	}
	return next
}

// intersect returns a ∩ b using the arena's scratch bitset; the result
// aliases arena-free memory only until the next intersect call, which is
// fine for the transient seed of the re-seeding phase.
func intersect(ar *arena, a, b []int) []int {
	if ar.scratch == nil {
		ar.scratch = graph.NewBitset(ar.g.n)
	} else {
		ar.scratch.Reset()
	}
	for _, v := range b {
		ar.scratch.Set(v)
	}
	var out []int
	for _, v := range a {
		if ar.scratch.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// FindExact performs branch-and-bound maximum feasible clique search. It is
// exponential and intended for small graphs: cross-validating the heuristic
// and the ablation benches. Branch states are pooled in the search arena and
// recycled as each branch returns, so memory stays proportional to the
// search depth rather than the node count explored.
func FindExact(g *Graph, target int) []int {
	var best []int
	ar := newArena(g)
	s := ar.get()
	var dfs func(s *state)
	dfs = func(s *state) {
		if len(s.members) > len(best) {
			best = append([]int(nil), s.members...)
		}
		if len(best) >= target {
			return
		}
		// Bound: even taking every candidate cannot beat best.
		if len(s.members)+s.cand.Count() <= len(best) {
			return
		}
		// Tighter bound: a greedy coloring of the candidate set upper-bounds
		// any clique within it, so fewer than `need` classes proves the
		// subtree cannot strictly improve best. Pruning only subtrees that
		// cannot improve leaves the best-update sequence — and therefore the
		// returned clique — exactly what the unpruned search produces.
		need := len(best) + 1 - len(s.members)
		if colorBound(g, s.cand, ar, need) < need {
			return
		}
		var cands []int
		s.cand.ForEach(func(u int) bool {
			if !s.inC.Has(u) {
				cands = append(cands, u)
			}
			return true
		})
		for i, u := range cands {
			if !s.canAdd(u) {
				continue
			}
			child := s.clone()
			child.add(u)
			// Exclude earlier candidates to avoid permuted duplicates.
			for _, v := range cands[:i] {
				child.cand.Clear(v)
			}
			dfs(child)
			ar.put(child)
			if len(best) >= target {
				return
			}
		}
	}
	dfs(s)
	return best
}
