package clique

import "sort"

// FindGrouped searches for a feasible clique containing exactly one node per
// group. Groups are REGIMap's operations and a group's nodes its candidate
// (operation, PE) bindings; since same-operation bindings are mutually
// incompatible, any clique holds at most one node per group, and a clique of
// one-per-group is a complete placement.
//
// The search is constructive and deterministic: groups are placed most-
// constrained first (smallest maximum candidate degree), each taking the
// candidate with the most compatibility arcs into the remaining candidate
// set; groups that could not be placed are promoted to the front of the next
// round — the same learn-from-failure flavour as the mapper's outer loop.
// It returns the best clique found across rounds (possibly smaller than the
// group count).
func FindGrouped(g *Graph, groups [][]int, opts Options) (best []int) {
	rounds := opts.GroupRounds
	if rounds <= 0 {
		rounds = 4
	}

	sp := opts.Trace.Start("clique.grouped")
	roundsRun, lastFailed := 0, 0
	defer func() {
		sp.Field("groups", int64(len(groups)))
		sp.Field("rounds", int64(roundsRun))
		sp.Field("failed", int64(lastFailed))
		sp.Field("best", int64(len(best)))
		sp.End()
	}()

	var order []int
	if len(opts.GroupOrder) == len(groups) {
		order = append([]int(nil), opts.GroupOrder...)
	} else {
		// Default order: most-constrained groups first. A group's freedom is
		// the best-connected candidate it has; ties broken by group index
		// for determinism.
		freedom := make([]int, len(groups))
		for gi, cands := range groups {
			f := -1
			for _, u := range cands {
				if d := g.Degree(u); d > f {
					f = d
				}
			}
			freedom[gi] = f
		}
		order = make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if freedom[order[i]] != freedom[order[j]] {
				return freedom[order[i]] < freedom[order[j]]
			}
			return order[i] < order[j]
		})
	}

	groupOf := make([]int, g.n)
	for gi, cands := range groups {
		for _, u := range cands {
			groupOf[u] = gi
		}
	}

	ar := newArena(g)
	pending := make([]bool, len(groups))
	inFailed := make([]bool, len(groups))
	for round := 0; round < rounds; round++ {
		roundsRun++
		s := ar.get()
		var failed []int
		for _, gi := range order {
			pending[gi] = true
		}
		for oi, gi := range order {
			pending[gi] = false
			pick := pickCandidate(g, s, groups, order[oi+1:], pending, gi)
			if pick == -1 {
				if repaired := swapInGroup(g, s, groups, groupOf, gi); repaired != nil {
					ar.put(s)
					s = repaired
					continue
				}
				failed = append(failed, gi)
				continue
			}
			s.add(pick)
		}
		// Repair phase: the one-out swap often only becomes possible after
		// the rest of the clique exists, so retry every failed group against
		// the final state until a pass makes no progress.
		for iter := 0; iter < 2*len(failed)+2 && len(failed) > 0; iter++ {
			progress := false
			still := failed[:0]
			for _, gi := range failed {
				if repaired := swapInGroup(g, s, groups, groupOf, gi); repaired != nil {
					ar.put(s)
					s = repaired
					progress = true
				} else {
					still = append(still, gi)
				}
			}
			failed = still
			if !progress {
				break
			}
		}
		if len(s.members) > len(best) {
			best = append([]int(nil), s.members...)
		}
		lastFailed = len(failed)
		if len(failed) == 0 {
			return best
		}
		// Promote the failed groups; keep the rest in their previous order.
		next := make([]int, 0, len(order))
		next = append(next, failed...)
		for _, gi := range failed {
			inFailed[gi] = true
		}
		for _, gi := range order {
			if !inFailed[gi] {
				next = append(next, gi)
			}
		}
		for _, gi := range failed {
			inFailed[gi] = false
		}
		order = next
		ar.recycleAll()
	}
	return best
}

// swapInGroup is the grouped variant of the paper's one-out repair: when no
// candidate of group gi joins the clique, look for a candidate u blocked by
// exactly one member x; evict x, admit u, and re-place x's group on another
// of its candidates. It returns the repaired state, or nil.
func swapInGroup(g *Graph, s *state, groups [][]int, groupOf []int, gi int) *state {
	for _, u := range groups[gi] {
		if s.inC.Has(u) {
			continue
		}
		blocker, blockCount := -1, 0
		for _, m := range s.members {
			if !g.adj[u].Has(m) {
				blocker = m
				blockCount++
				if blockCount > 1 {
					break
				}
			}
		}
		if blockCount != 1 {
			continue
		}
		// Rebuild without the blocker; admit u; re-place the blocker's group.
		trial := s.ar.get()
		ok := true
		for _, m := range s.members {
			if m == blocker {
				continue
			}
			if !trial.canAdd(m) {
				ok = false
				break
			}
			trial.add(m)
		}
		if !ok || !trial.canAdd(u) {
			s.ar.put(trial)
			continue
		}
		trial.add(u)
		gx := groupOf[blocker]
		repick, repickScore := -1, -1
		for _, w := range groups[gx] {
			if !trial.canAdd(w) {
				continue
			}
			if score := g.adj[w].IntersectCount(trial.cand); score > repickScore {
				repick, repickScore = w, score
			}
		}
		if repick == -1 {
			s.ar.put(trial)
			continue
		}
		trial.add(repick)
		return trial
	}
	return nil
}

// pickCandidate chooses group gi's binding by CSP-style forward checking:
// among feasible candidates, prefer the one that leaves every still-pending
// group at least one (and ideally several) live candidates — the
// least-constraining-value rule — with overall compatibility as the final
// tie-break. It returns -1 when no candidate is feasible.
func pickCandidate(g *Graph, s *state, groups [][]int, rest []int, pending []bool, gi int) int {
	type verdict struct {
		dead, tight, score int
	}
	// Forward checking scales with |group| x pending x |group|; on big
	// arrays cap the pending groups examined — the nearest ones in the
	// order are the ones this choice constrains most.
	const maxLookahead = 24
	best, bestV := -1, verdict{dead: 1 << 30}
	for _, u := range groups[gi] {
		if !s.canAdd(u) {
			continue
		}
		v := verdict{score: g.adj[u].IntersectCount(s.cand)}
		looked := 0
		for _, gj := range rest {
			if !pending[gj] {
				continue
			}
			if looked++; looked > maxLookahead {
				break
			}
			live := 0
			for _, w := range groups[gj] {
				if s.cand.Has(w) && g.adj[u].Has(w) {
					live++
					if live >= 2 {
						break
					}
				}
			}
			switch live {
			case 0:
				v.dead++
			case 1:
				v.tight++
			}
		}
		better := v.dead < bestV.dead ||
			(v.dead == bestV.dead && v.tight < bestV.tight) ||
			(v.dead == bestV.dead && v.tight == bestV.tight && v.score > bestV.score)
		if better {
			best, bestV = u, v
		}
	}
	return best
}
