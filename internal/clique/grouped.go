package clique

import (
	"sort"

	"regimap/internal/graph"
)

// FindGrouped searches for a feasible clique containing exactly one node per
// group. Groups are REGIMap's operations and a group's nodes its candidate
// (operation, PE) bindings; since same-operation bindings are mutually
// incompatible, any clique holds at most one node per group, and a clique of
// one-per-group is a complete placement.
//
// The search is constructive and deterministic: groups are placed most-
// constrained first (smallest maximum candidate degree), each taking the
// candidate with the most compatibility arcs into the remaining candidate
// set; groups that could not be placed are promoted to the front of the next
// round — the same learn-from-failure flavour as the mapper's outer loop.
// It returns the best clique found across rounds (possibly smaller than the
// group count).
func FindGrouped(g *Graph, groups [][]int, opts Options) (best []int) {
	rounds := opts.GroupRounds
	if rounds <= 0 {
		rounds = 4
	}

	sp := opts.Trace.Start("clique.grouped")
	roundsRun, lastFailed := 0, 0
	defer func() {
		sp.Field("groups", int64(len(groups)))
		sp.Field("rounds", int64(roundsRun))
		sp.Field("failed", int64(lastFailed))
		sp.Field("best", int64(len(best)))
		sp.End()
	}()

	var order []int
	if len(opts.GroupOrder) == len(groups) {
		order = append([]int(nil), opts.GroupOrder...)
	} else {
		// Default order: most-constrained groups first. A group's freedom is
		// the best-connected candidate it has; ties broken by group index
		// for determinism.
		freedom := make([]int, len(groups))
		for gi, cands := range groups {
			f := -1
			for _, u := range cands {
				if d := g.Degree(u); d > f {
					f = d
				}
			}
			freedom[gi] = f
		}
		order = make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if freedom[order[i]] != freedom[order[j]] {
				return freedom[order[i]] < freedom[order[j]]
			}
			return order[i] < order[j]
		})
	}

	groupOf := make([]int, g.n)
	masks := graph.NewBitsetSlab(g.n, len(groups))
	for gi, cands := range groups {
		for _, u := range cands {
			groupOf[u] = gi
			masks[gi].Set(u)
		}
	}
	fc := newForwardChecker(g.n)

	ar, release := opts.acquireArena(g)
	defer release()
	pending := make([]bool, len(groups))
	inFailed := make([]bool, len(groups))
	for round := 0; round < rounds; round++ {
		roundsRun++
		s := ar.get()
		var failed []int
		for _, gi := range order {
			pending[gi] = true
		}
		for oi, gi := range order {
			pending[gi] = false
			pick := pickCandidate(g, s, groups, masks, order[oi+1:], pending, gi, fc)
			if pick == -1 {
				if repaired := swapInGroup(g, s, groups, groupOf, gi); repaired != nil {
					ar.put(s)
					s = repaired
					continue
				}
				failed = append(failed, gi)
				continue
			}
			s.add(pick)
		}
		// Repair phase: the one-out swap often only becomes possible after
		// the rest of the clique exists, so retry every failed group against
		// the final state until a pass makes no progress.
		for iter := 0; iter < 2*len(failed)+2 && len(failed) > 0; iter++ {
			progress := false
			still := failed[:0]
			for _, gi := range failed {
				if repaired := swapInGroup(g, s, groups, groupOf, gi); repaired != nil {
					ar.put(s)
					s = repaired
					progress = true
				} else {
					still = append(still, gi)
				}
			}
			failed = still
			if !progress {
				break
			}
		}
		if len(s.members) > len(best) {
			best = append([]int(nil), s.members...)
		}
		lastFailed = len(failed)
		if len(failed) == 0 {
			return best
		}
		// Promote the failed groups; keep the rest in their previous order.
		next := make([]int, 0, len(order))
		next = append(next, failed...)
		for _, gi := range failed {
			inFailed[gi] = true
		}
		for _, gi := range order {
			if !inFailed[gi] {
				next = append(next, gi)
			}
		}
		for _, gi := range failed {
			inFailed[gi] = false
		}
		order = next
		ar.recycleAll()
	}
	return best
}

// swapInGroup is the grouped variant of the paper's one-out repair: when no
// candidate of group gi joins the clique, look for a candidate u blocked by
// exactly one member x; evict x, admit u, and re-place x's group on another
// of its candidates. It returns the repaired state, or nil.
func swapInGroup(g *Graph, s *state, groups [][]int, groupOf []int, gi int) *state {
	// Candidates of one group typically collide on the same member (they
	// contend for one PE), so the expensive rebuild-without-the-blocker is
	// cached across consecutive candidates sharing a blocker.
	var base *state
	baseBlocker, baseOK := -1, false
	defer func() {
		if base != nil {
			s.ar.put(base)
		}
	}()
	for _, u := range groups[gi] {
		if s.inC.Has(u) {
			continue
		}
		if len(s.members)-g.adj[u].IntersectCount(s.inC) != 1 {
			continue
		}
		blocker := -1
		for _, m := range s.members {
			if !g.adj[u].Has(m) {
				blocker = m
				break
			}
		}
		// Rebuild without the blocker; admit u; re-place the blocker's group.
		if blocker != baseBlocker {
			if base == nil {
				base = s.ar.get()
			} else {
				base.reset()
			}
			baseBlocker, baseOK = blocker, true
			for _, m := range s.members {
				if m == blocker {
					continue
				}
				if !base.canAdd(m) {
					baseOK = false
					break
				}
				base.add(m)
			}
		}
		if !baseOK || !base.canAdd(u) {
			continue
		}
		trial := base.clone()
		trial.add(u)
		gx := groupOf[blocker]
		repick, repickScore := -1, -1
		for _, w := range groups[gx] {
			if !trial.canAdd(w) {
				continue
			}
			if score := g.adj[w].IntersectCount(trial.cand); score > repickScore {
				repick, repickScore = w, score
			}
		}
		if repick == -1 {
			s.ar.put(trial)
			continue
		}
		trial.add(repick)
		return trial
	}
	return nil
}

// maxLookahead caps the pending groups pickCandidate examines. Forward
// checking scales with |group| x pending x words; on big arrays the nearest
// groups in the order are the ones the choice constrains most.
const maxLookahead = 24

// forwardChecker is pickCandidate's reusable working set: the still-live
// candidate mask of each examined pending group, computed once per pick
// instead of once per (candidate, group) pair. Groups whose live mask is
// empty contribute the same dead count to every candidate, which cannot
// change the argmin, so they are dropped outright; single-survivor groups
// reduce to one adjacency probe.
type forwardChecker struct {
	live    []*graph.Bitset // groups with >= 2 survivors: mask(gj) ∩ cand
	lo, hi  []int           // word bounds of each live mask (ids are clustered per group)
	single  []int           // groups with exactly one survivor: that node
	nLive   int
	nSingle int

	cands        []int // feasible candidates of the group being picked
	cDead, cTght []int // their verdicts, parallel to cands
}

func newForwardChecker(n int) *forwardChecker {
	return &forwardChecker{
		live:   graph.NewBitsetSlab(n, maxLookahead),
		lo:     make([]int, maxLookahead),
		hi:     make([]int, maxLookahead),
		single: make([]int, maxLookahead),
	}
}

// pickCandidate chooses group gi's binding by CSP-style forward checking:
// among feasible candidates, prefer the one that leaves every still-pending
// group at least one (and ideally several) live candidates — the
// least-constraining-value rule — with overall compatibility as the final
// tie-break. It returns -1 when no candidate is feasible.
//
// A pending group's live count for candidate u is |mask(gj) ∩ cand ∩ adj(u)|
// capped at 2. The cand intersection is hoisted into the forwardChecker (it
// is the same for every u), leaving one early-exiting word-level pass — or a
// single bit probe — per (candidate, group) pair.
func pickCandidate(g *Graph, s *state, groups [][]int, masks []*graph.Bitset, rest []int, pending []bool, gi int, fc *forwardChecker) int {
	fc.nLive, fc.nSingle = 0, 0
	looked := 0
	for _, gj := range rest {
		if !pending[gj] {
			continue
		}
		if looked++; looked > maxLookahead {
			break
		}
		lm := fc.live[fc.nLive]
		lw, hw := lm.AndInto(masks[gj], s.cand)
		switch lm.IntersectCountUpToIn(lm, 2, lw, hw) {
		case 0:
			// Dead for every candidate alike: a uniform offset never moves
			// the argmin, so the group is dropped from the per-candidate work.
		case 1:
			fc.single[fc.nSingle] = lm.First()
			fc.nSingle++
		default:
			fc.lo[fc.nLive], fc.hi[fc.nLive] = lw, hw
			fc.nLive++
		}
	}
	// First pass: (dead, tight) for each feasible candidate; the compatibility
	// score is only the final tie-break, so it is deferred to the candidates
	// still tied after this pass (usually one or two) instead of paying a
	// full-width popcount for every candidate.
	fc.cands, fc.cDead, fc.cTght = fc.cands[:0], fc.cDead[:0], fc.cTght[:0]
	minDead, minTight := 1<<30, 1<<30
	for _, u := range groups[gi] {
		if !s.canAdd(u) {
			continue
		}
		dead, tight := 0, 0
		adj := g.adj[u]
		for i := 0; i < fc.nSingle; i++ {
			if adj.Has(fc.single[i]) {
				tight++
			} else {
				dead++
			}
		}
		for i := 0; i < fc.nLive; i++ {
			switch fc.live[i].IntersectCountUpToIn(adj, 2, fc.lo[i], fc.hi[i]) {
			case 0:
				dead++
			case 1:
				tight++
			}
		}
		fc.cands = append(fc.cands, u)
		fc.cDead = append(fc.cDead, dead)
		fc.cTght = append(fc.cTght, tight)
		if dead < minDead || (dead == minDead && tight < minTight) {
			minDead, minTight = dead, tight
		}
	}
	best, bestScore := -1, -1
	for i, u := range fc.cands {
		if fc.cDead[i] != minDead || fc.cTght[i] != minTight {
			continue
		}
		if score := g.adj[u].IntersectCount(s.cand); score > bestScore {
			best, bestScore = u, score
		}
	}
	return best
}
