package clique

import "regimap/internal/graph"

// colorBound returns a greedy-coloring upper bound on the size of any clique
// inside cand, capped at limit. Nodes of one color class are pairwise
// incompatible, so a clique — in particular any register-feasible clique,
// which is first of all a clique — holds at most one node per class; the
// number of classes the greedy coloring uses therefore bounds ω(cand) from
// above. Classes are filled in increasing node-id order (first class that
// fits), which is deterministic and needs no sorting.
//
// The cap makes the bound cheap where it cannot help: once limit classes are
// open the caller's prune test already fails, so the coloring stops and
// returns limit.
func colorBound(g *Graph, cand *graph.Bitset, ar *arena, limit int) int {
	if limit <= 0 {
		return 0
	}
	classes := ar.colorScratch(limit)
	used := 0
	capped := false
	cand.ForEach(func(u int) bool {
		adj := g.adj[u]
		for c := 0; c < used; c++ {
			if classes[c].IntersectCountUpTo(adj, 1) == 0 {
				classes[c].Set(u)
				return true
			}
		}
		if used == limit {
			capped = true
			return false
		}
		classes[used].Reset()
		classes[used].Set(u)
		used++
		return true
	})
	if capped {
		return limit
	}
	return used
}

// colorScratch returns k reusable color-class bitsets. Only classes [0, used)
// are ever read by colorBound before being written, and it resets each class
// as it opens, so stale contents from earlier calls are harmless.
func (a *arena) colorScratch(k int) []*graph.Bitset {
	if len(a.colors) < k {
		fresh := graph.NewBitsetSlab(a.g.n, k-len(a.colors))
		a.colors = append(a.colors, fresh...)
	}
	return a.colors[:k]
}
