package clique

import (
	"math/rand"
	"testing"

	"regimap/internal/graph"
)

type graphBitset = graph.Bitset

func newGraphBitset(n int) *graphBitset { return graph.NewBitset(n) }

// groupedFixture builds a graph of g groups x c candidates where candidate j
// of every group is compatible with candidate j' of every other group unless
// the blocked function rejects the pair.
func groupedFixture(g, c int, blocked func(gi, ci, gj, cj int) bool) (*Graph, [][]int) {
	graph := NewGraph(g*c, -1)
	groups := make([][]int, g)
	for gi := 0; gi < g; gi++ {
		for ci := 0; ci < c; ci++ {
			groups[gi] = append(groups[gi], gi*c+ci)
		}
	}
	for gi := 0; gi < g; gi++ {
		for gj := gi + 1; gj < g; gj++ {
			for ci := 0; ci < c; ci++ {
				for cj := 0; cj < c; cj++ {
					if blocked != nil && blocked(gi, ci, gj, cj) {
						continue
					}
					graph.AddEdge(groups[gi][ci], groups[gj][cj])
				}
			}
		}
	}
	return graph, groups
}

func TestFindGroupedComplete(t *testing.T) {
	g, groups := groupedFixture(6, 3, nil)
	sol := FindGrouped(g, groups, Options{})
	if len(sol) != 6 {
		t.Fatalf("placed %d/6 groups", len(sol))
	}
	if !g.IsFeasibleClique(sol) {
		t.Fatal("solution is not a clique")
	}
	seen := map[int]bool{}
	for _, u := range sol {
		gi := u / 3
		if seen[gi] {
			t.Fatal("two candidates from one group")
		}
		seen[gi] = true
	}
}

// TestFindGroupedResourceExclusive models REGIMap's same-resource rule:
// candidate j of every group stands for PE j, and two groups cannot share a
// PE. With exactly as many PEs as groups, only a perfect matching works.
func TestFindGroupedResourceExclusive(t *testing.T) {
	g, groups := groupedFixture(4, 4, func(gi, ci, gj, cj int) bool {
		return ci == cj // same PE
	})
	sol := FindGrouped(g, groups, Options{})
	if len(sol) != 4 {
		t.Fatalf("placed %d/4 groups (a perfect matching exists)", len(sol))
	}
	used := map[int]bool{}
	for _, u := range sol {
		pe := u % 4
		if used[pe] {
			t.Fatal("two groups on one PE")
		}
		used[pe] = true
	}
}

// TestFindGroupedSwapRepair forces the one-out swap: group 2's only
// candidate conflicts with group 0's preferred candidate.
func TestFindGroupedSwapRepair(t *testing.T) {
	// 3 groups; groups 0 and 1 have 2 candidates, group 2 has 1. Group 2's
	// candidate is incompatible with group 0's candidate 0 only.
	g := NewGraph(5, -1)
	groups := [][]int{{0, 1}, {2, 3}, {4}}
	addAll := func(a, b []int) {
		for _, u := range a {
			for _, v := range b {
				g.AddEdge(u, v)
			}
		}
	}
	addAll(groups[0], groups[1])
	addAll([]int{1}, groups[2]) // group2 compatible only with candidate 1 of group 0
	addAll(groups[1], groups[2])
	sol := FindGrouped(g, groups, Options{GroupOrder: []int{0, 1, 2}})
	if len(sol) != 3 {
		t.Fatalf("placed %d/3 groups; swap repair should fix group 2 (%v)", len(sol), sol)
	}
}

func TestFindGroupedWeightBudget(t *testing.T) {
	// Two groups, one candidate each, mutual weight 2 with budget 1: only one
	// can be placed.
	g := NewGraph(2, 1)
	g.AddEdge(0, 1)
	g.AddWeight(0, 1, 2)
	sol := FindGrouped(g, [][]int{{0}, {1}}, Options{})
	if len(sol) != 1 {
		t.Fatalf("placed %d groups, want 1 (budget binds)", len(sol))
	}
	if !g.IsFeasibleClique(sol) {
		t.Fatal("infeasible result")
	}
}

func TestFindGroupedPromotion(t *testing.T) {
	// Group 3 has a single candidate compatible with exactly one candidate
	// of every other group; greedy placement in the given order can strand
	// it, and the promote-on-failure rounds must recover.
	g, groups := groupedFixture(4, 3, func(gi, ci, gj, cj int) bool {
		if gj == 3 {
			return cj != 0 || ci != 0
		}
		return false
	})
	// Restrict group 3 to its single viable candidate.
	groups[3] = groups[3][:1]
	sol := FindGrouped(g, groups, Options{GroupOrder: []int{0, 1, 2, 3}, GroupRounds: 4})
	if len(sol) != 4 {
		t.Fatalf("placed %d/4 groups (%v)", len(sol), sol)
	}
}

func TestFindGroupedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		c := 2 + rng.Intn(3)
		seedBlocked := rng.Int63()
		mk := func() (*Graph, [][]int) {
			r := rand.New(rand.NewSource(seedBlocked))
			return groupedFixture(n, c, func(gi, ci, gj, cj int) bool {
				return r.Intn(4) == 0
			})
		}
		g1, gr1 := mk()
		g2, gr2 := mk()
		a := FindGrouped(g1, gr1, Options{})
		b := FindGrouped(g2, gr2, Options{})
		if len(a) != len(b) {
			t.Fatal("FindGrouped not deterministic")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("FindGrouped not deterministic")
			}
		}
	}
}

func TestSetWeightFuncPaths(t *testing.T) {
	g := NewGraph(4, 2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.SetWeightFunc(
		func(u, v int) int {
			if u/2 == v/2 {
				return 1 // same "PE"
			}
			return 0
		},
		func(u int) bool { return true },
		func(u int) int { return u / 2 },
	)
	if g.Weight(0, 1) != 1 || g.Weight(0, 2) != 0 {
		t.Fatal("weight function not consulted")
	}
	sol := Find(g, 3, Options{})
	if !g.IsFeasibleClique(sol) {
		t.Fatal("infeasible clique with weight function")
	}
	// AddWeight after SetWeightFunc must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddWeight after SetWeightFunc did not panic")
			}
		}()
		g.AddWeight(0, 1, 1)
	}()
	// SetWeightFunc after AddWeight must panic.
	g2 := NewGraph(2, 1)
	g2.AddWeight(0, 1, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetWeightFunc after AddWeight did not panic")
			}
		}()
		g2.SetWeightFunc(func(u, v int) int { return 0 }, func(u int) bool { return false }, func(u int) int { return 0 })
	}()
}

func TestBulkAdjacency(t *testing.T) {
	g := NewGraph(6, -1)
	mask := newMask(6, 2, 3, 4)
	g.OrAdjacency(0, mask)
	for _, v := range []int{2, 3, 4} {
		// OrAdjacency is asymmetric by contract.
		if !g.adj[0].Has(v) {
			t.Fatalf("missing adjacency 0-%d", v)
		}
	}
	g.OrAdjacency(2, newMask(6, 0))
	g.OrAdjacency(3, newMask(6, 0))
	g.OrAdjacency(4, newMask(6, 0))
	if !g.Adjacent(0, 3) || !g.Adjacent(3, 0) {
		t.Fatal("symmetric bulk adjacency broken")
	}
	g.ClearEdge(0, 3)
	if g.Adjacent(0, 3) || g.Adjacent(3, 0) {
		t.Fatal("ClearEdge must clear both directions")
	}
}

// TestExactAgreesOnGroupedInstances cross-validates the grouped heuristic
// against exhaustive search on small instances.
func TestExactAgreesOnGroupedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3)
		c := 2 + rng.Intn(2)
		g, groups := groupedFixture(n, c, func(gi, ci, gj, cj int) bool {
			return rng.Intn(3) == 0
		})
		got := FindGrouped(g, groups, Options{})
		exact := FindExact(g, n*c)
		if len(got) > len(exact) {
			t.Fatalf("grouped found %d members, exact maximum is %d", len(got), len(exact))
		}
	}
}

// newMask builds a bitset with the given members (test helper).
func newMask(n int, members ...int) *graphBitset {
	b := newGraphBitset(n)
	for _, m := range members {
		b.Set(m)
	}
	return b
}
