// Parallel search engines. Both keep results byte-identical to their
// sequential counterparts via a deterministic reduction (DESIGN.md section
// 8g): work is split into the same partitions the sequential search visits
// in a fixed order, partial results are computed by pure per-partition
// functions, and the merge consumes them in partition order regardless of
// which worker finished first. Shared atomic bounds only ever skip work the
// merge provably discards.
package clique

import (
	"sort"
	"sync"
	"sync/atomic"

	"regimap/internal/graph"
)

// Pool shares search arenas across requests and workers. regimapd installs
// one pool per process so the clique engine's states and bitsets are reused
// across mapping requests instead of reallocated; parallel searches draw one
// arena per worker from it. Arenas are bucketed by node capacity and fully
// wiped on reuse, so pooling is invisible to results.
type Pool struct {
	mu   sync.Mutex
	free map[int][]*arena
}

// NewPool returns an empty arena pool, safe for concurrent use.
func NewPool() *Pool { return &Pool{free: map[int][]*arena{}} }

func (p *Pool) acquire(g *Graph) *arena {
	if p == nil {
		return newArena(g)
	}
	p.mu.Lock()
	list := p.free[g.n]
	var ar *arena
	if k := len(list); k > 0 {
		ar, p.free[g.n] = list[k-1], list[:k-1]
	}
	p.mu.Unlock()
	if ar == nil {
		return newArena(g)
	}
	ar.rebind(g)
	return ar
}

func (p *Pool) release(ar *arena) {
	if p == nil || ar == nil {
		return
	}
	p.mu.Lock()
	p.free[ar.g.n] = append(p.free[ar.g.n], ar)
	p.mu.Unlock()
}

// rebind points a pooled arena at a new graph of the same capacity. Unlike
// reset — which only cleans member-touched entries because the graph is
// unchanged — rebind wipes every state completely: the previous request's
// graph (weights, clusters) is gone, so nothing incremental can be trusted.
func (a *arena) rebind(g *Graph) {
	if g.n != a.g.n {
		panic("clique: pool rebind across capacities")
	}
	a.g = g
	for _, s := range a.all {
		s.g = g
		s.members = s.members[:0]
		s.wMembers = s.wMembers[:0]
		for i := range s.sum {
			s.sum[i] = 0
		}
		s.inC.Reset()
		s.cand.Fill()
		if g.cluster == nil {
			s.byCluster = nil
		} else if len(s.byCluster) >= g.nClusters {
			s.byCluster = s.byCluster[:g.nClusters]
			for i := range s.byCluster {
				s.byCluster[i] = s.byCluster[i][:0]
			}
		} else {
			s.byCluster = make([][]int, g.nClusters)
		}
	}
	a.free = append(a.free[:0], a.all...)
}

// acquireArena hands the search an arena — pooled when the caller installed
// Options.Arenas, private otherwise — plus its release.
func (o Options) acquireArena(g *Graph) (*arena, func()) {
	if o.Arenas == nil {
		return newArena(g), func() {}
	}
	ar := o.Arenas.acquire(g)
	return ar, func() { o.Arenas.release(ar) }
}

// canceled reports whether the caller's context was cancelled. Workers poll
// it between partitions; a cancelled search returns a best-effort (possibly
// non-deterministic) result, which is fine because core.Map discards the
// whole attempt on cancellation.
func (o Options) canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// runWorkers runs fn on n goroutines and waits for all of them.
func runWorkers(n int, fn func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// casMin lowers v to x if x is smaller (lock-free running minimum).
func casMin(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// findParallel is Find across Options.Workers goroutines with byte-identical
// results.
//
// Seed phase: each seed's grow/swap is a pure function of (graph, seed,
// target), so workers steal seed indices from an atomic counter, write into
// a per-index slot, and the merge replays the sequential loop over the slots
// in seed order. The shared `stop` bound is the earliest seed index whose
// clique reached the target: the sequential loop returns there, so later
// indices are skipped — indices at or before it are always fully computed.
//
// Intersection phase: the sequential pair enumeration feeds on its own
// output (each considered clique joins the pair pool), so it is replayed
// exactly, with the expensive grow/swap of each pair seed memoized. When the
// replay reaches a pair not yet memoized, it speculatively collects every
// further pair reachable over the current clique pool within the remaining
// budget, computes them in one parallel wave, and restarts the replay. Each
// wave memoizes at least the blocking pair, so the replay terminates, and
// only memoized pure results ever influence the outcome.
func findParallel(g *Graph, target int, opts Options) (best []int) {
	workers := opts.Workers
	maxSeeds := opts.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 16
	}
	maxInter := opts.MaxIntersections
	if maxInter <= 0 {
		maxInter = 32
	}
	if target > g.n {
		target = g.n
	}

	sp := opts.Trace.Start("clique.parallel")
	pairs, waves := 0, 0
	defer func() {
		sp.Field("nodes", int64(g.n))
		sp.Field("workers", int64(workers))
		sp.Field("pairs", int64(pairs))
		sp.Field("waves", int64(waves))
		sp.Field("best", int64(len(best)))
		sp.Field("target", int64(target))
		sp.End()
	}()

	order := opts.SeedOrder
	if len(order) != g.n {
		order = g.DegreeOrder()
	}
	if len(order) > maxSeeds {
		order = order[:maxSeeds]
	}

	// Seed phase.
	type seedRes struct {
		ok      bool // seed was feasible (the sequential loop calls consider)
		members []int
	}
	results := make([]seedRes, len(order))
	var next, stop atomic.Int64
	stop.Store(int64(len(order)))
	runWorkers(workers, func(w int) {
		ar, release := opts.acquireArena(g)
		defer release()
		wsp := opts.Trace.Start("clique.partition")
		done := 0
		defer func() {
			wsp.Field("worker", int64(w))
			wsp.Field("seeds", int64(done))
			wsp.End()
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(order) || opts.canceled() {
				return
			}
			if int64(i) > stop.Load() {
				continue // the merge provably stops before this index
			}
			s := ar.get()
			if !s.canAdd(order[i]) {
				ar.recycleAll()
				done++
				continue
			}
			s.add(order[i])
			s.grow(target)
			if !opts.DisableSwap {
				s = swapImprove(s, target)
			}
			results[i] = seedRes{ok: true, members: append([]int(nil), s.members...)}
			if len(s.members) >= target {
				casMin(&stop, int64(i))
			}
			ar.recycleAll()
			done++
		}
	})

	var found [][]int
	for i := range results {
		if !results[i].ok {
			continue
		}
		c := results[i].members
		found = append(found, c)
		if len(c) > len(best) {
			best = c
		}
		if len(best) >= target {
			return best
		}
	}

	if opts.DisableIntersect {
		return best
	}

	// Intersection phase.
	sort.SliceStable(found, func(i, j int) bool { return len(found[i]) > len(found[j]) })
	found0 := append([][]int(nil), found...)
	best0 := best
	type pairJob struct {
		i, j   int
		seed   []int
		result []int
	}
	memo := map[[2]int][]int{}
	scratch := graph.NewBitset(g.n)

	// replay walks the sequential enumeration using memoized results. When it
	// hits a missing pair it stops consuming and instead collects the wave of
	// pairs the sequential loop could still reach over the current pool.
	replay := func() (missing []pairJob, result []int, complete bool) {
		found := append(found0[:0:0], found0...)
		best := best0
		pairs = 0
		consuming := true
		for i := 0; i < len(found) && pairs < maxInter; i++ {
			for j := i + 1; j < len(found) && pairs < maxInter; j++ {
				pairs++
				seed := intersectInto(scratch, found[i], found[j])
				if len(seed) == 0 || len(seed) == len(found[i]) || len(seed) == len(found[j]) {
					continue
				}
				grown, ok := memo[[2]int{i, j}]
				if !ok {
					missing = append(missing, pairJob{i: i, j: j, seed: append([]int(nil), seed...)})
					consuming = false
					continue
				}
				if !consuming {
					continue // downstream of a hole: collect only, never consume
				}
				found = append(found, grown)
				if len(grown) > len(best) {
					best = grown
				}
				if len(best) >= target {
					return nil, best, true
				}
			}
		}
		if consuming {
			return nil, best, true
		}
		return missing, nil, false
	}

	for {
		missing, result, complete := replay()
		if complete {
			return result
		}
		if opts.canceled() {
			return best
		}
		waves++
		var cursor atomic.Int64
		runWorkers(workers, func(w int) {
			ar, release := opts.acquireArena(g)
			defer release()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(missing) || opts.canceled() {
					return
				}
				s := rebuild(ar, missing[k].seed)
				s.grow(target)
				if !opts.DisableSwap {
					s = swapImprove(s, target)
				}
				missing[k].result = append([]int(nil), s.members...)
				ar.recycleAll()
			}
		})
		for k := range missing {
			if missing[k].result == nil {
				return best // cancelled mid-wave
			}
			memo[[2]int{missing[k].i, missing[k].j}] = missing[k].result
		}
	}
}

// intersectInto returns a ∩ b preserving a's order, using scratch for
// membership tests. The result aliases fresh memory only when callers copy
// it (replay copies before handing seeds to workers).
func intersectInto(scratch *graph.Bitset, a, b []int) []int {
	scratch.Reset()
	for _, v := range b {
		scratch.Set(v)
	}
	var out []int
	for _, v := range a {
		if scratch.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// FindExactParallel is FindExact across workers goroutines with byte-
// identical results. The sequential search's root branches (first node
// chosen, earlier roots excluded from the subtree) are its partitions:
// workers steal root indices, explore each subtree depth-first, and publish
// the best size found to a shared atomic bound.
//
// Cross-partition pruning must not change which clique is found first, so a
// subtree is cut on the shared bound only when it cannot *reach* it
// (members + upper bound < bound, strictly) — subtrees that could tie are
// still explored, because an earlier partition's tie beats a later
// partition's find in the sequential order. The bound is capped at target:
// the sequential search stops at the first target-sized clique, so the first
// partition to reach target wins the merge, and earlier partitions must keep
// looking for a still-earlier achiever. Within a partition the sequential
// count and coloring bounds apply unchanged.
func FindExactParallel(g *Graph, target, workers int) []int {
	if workers <= 1 {
		return FindExact(g, target)
	}
	if target > g.n {
		target = g.n
	}
	roots := rootBranches(g)
	results := make([][]int, len(roots))
	var next, stop atomic.Int64
	var shared atomic.Int64 // best clique size found by any partition
	stop.Store(int64(len(roots)))
	runWorkers(workers, func(int) {
		ar := newArena(g)
		for {
			i := int(next.Add(1)) - 1
			if i >= len(roots) {
				return
			}
			if int64(i) > stop.Load() {
				continue
			}
			root := ar.get()
			if !root.canAdd(roots[i]) {
				ar.recycleAll()
				continue
			}
			root.add(roots[i])
			for _, v := range roots[:i] {
				root.cand.Clear(v)
			}
			best := exactDFS(g, ar, root, target, &shared)
			results[i] = best
			if len(best) > 0 {
				casMax(&shared, int64(len(best)))
			}
			if len(best) >= target {
				casMin(&stop, int64(i))
			}
			ar.recycleAll()
		}
	})
	// Deterministic reduction: replay the sequential best-update loop over the
	// per-root results in root order; strict improvement keeps the earliest
	// partition's clique on ties, exactly as the sequential DFS would.
	var best []int
	for _, r := range results {
		if len(r) > len(best) {
			best = r
		}
		if len(best) >= target {
			break
		}
	}
	return best
}

// rootBranches returns the sequential FindExact's first-level candidate
// order: every node, in increasing id (the root state's cand is full).
func rootBranches(g *Graph) []int {
	roots := make([]int, g.n)
	for i := range roots {
		roots[i] = i
	}
	return roots
}

// exactDFS explores one root partition. localBest mirrors the sequential
// bound; shared only cuts subtrees that cannot reach the globally known best
// size (see FindExactParallel).
func exactDFS(g *Graph, ar *arena, root *state, target int, shared *atomic.Int64) []int {
	var best []int
	var dfs func(s *state)
	dfs = func(s *state) {
		if len(s.members) > len(best) {
			best = append([]int(nil), s.members...)
		}
		if len(best) >= target {
			return
		}
		avail := s.cand.Count()
		if len(s.members)+avail <= len(best) {
			return
		}
		bound := int(shared.Load())
		if bound > target {
			bound = target
		}
		if len(s.members)+avail < bound {
			return
		}
		need := len(best) + 1 - len(s.members)
		if lower := bound - len(s.members); lower > need {
			// The subtree must reach `bound` to matter globally; color up to
			// the stricter requirement so the cap stays useful.
			need = lower
		}
		if cb := colorBound(g, s.cand, ar, need); len(s.members)+cb <= len(best) || len(s.members)+cb < bound {
			return
		}
		var cands []int
		s.cand.ForEach(func(u int) bool {
			if !s.inC.Has(u) {
				cands = append(cands, u)
			}
			return true
		})
		for i, u := range cands {
			if !s.canAdd(u) {
				continue
			}
			child := s.clone()
			child.add(u)
			for _, v := range cands[:i] {
				child.cand.Clear(v)
			}
			dfs(child)
			ar.put(child)
			if len(best) >= target {
				return
			}
		}
	}
	dfs(root)
	return best
}

// casMax raises v to x if x is larger (lock-free running maximum).
func casMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}
