package clique

import (
	"math/rand"
	"reflect"
	"testing"
)

// workerCounts are the pool sizes the determinism suite sweeps; CI runs the
// sweep again under -race at GOMAXPROCS 1, 2, and 8.
var workerCounts = []int{2, 3, 8}

// targetsFor returns the target sweep for one graph: the unreachable full
// search, the exactly-achievable early-exit path, and one below it.
func targetsFor(g *Graph, achieved int) []int {
	targets := []int{g.N()}
	if achieved > 0 {
		targets = append(targets, achieved)
	}
	if achieved > 1 {
		targets = append(targets, achieved-1)
	}
	return targets
}

func TestFindParallelMatchesSequential(t *testing.T) {
	for _, tc := range referenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				rng := rand.New(rand.NewSource(int64(9000 + trial)))
				g := tc.gen(rng)
				seq := Find(g, g.N(), tc.opts)
				for _, target := range targetsFor(g, len(seq)) {
					want := Find(g, target, tc.opts)
					for _, w := range workerCounts {
						opts := tc.opts
						opts.Workers = w
						got := Find(g, target, opts)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d target %d workers %d: got %v, sequential %v",
								trial, target, w, got, want)
						}
					}
				}
			}
		})
	}
}

func TestFindParallelSharedPoolMatchesSequential(t *testing.T) {
	// One pool across every trial, graph size, and worker count: arenas hop
	// between graphs exactly as regimapd's long-lived pool does.
	pool := NewPool()
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(11000 + trial)))
		g := randomFlatGraph(rng, 8+rng.Intn(24), 2+rng.Intn(4), 0.55, 0.5)
		want := Find(g, g.N(), Options{})
		for _, w := range []int{1, 2, 8} {
			got := Find(g, g.N(), Options{Workers: w, Arenas: pool})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers %d with shared pool: got %v, want %v", trial, w, got, want)
			}
		}
	}
}

func TestFindExactParallelMatchesSequential(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(13000 + trial)))
		var g *Graph
		if trial%2 == 0 {
			g = randomFlatGraph(rng, 8+rng.Intn(10), 2+rng.Intn(4), 0.55, 0.5)
		} else {
			g = randomClusterGraph(rng, 8+rng.Intn(10), 1+rng.Intn(3), 2+rng.Intn(3), 0.6)
		}
		seq := FindExact(g, g.N())
		for _, target := range targetsFor(g, len(seq)) {
			want := FindExact(g, target)
			for _, w := range workerCounts {
				got := FindExactParallel(g, target, w)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d target %d workers %d: got %v, sequential %v",
						trial, target, w, got, want)
				}
			}
		}
	}
}

// TestColorBoundNeverPrunesMaximum is the soundness property behind both the
// sequential and shared-bound pruning: the greedy-coloring upper bound on a
// candidate set is never below the true maximum feasible clique inside it,
// so a branch holding the true maximum always survives the prune test.
// FindExact (which prunes on the bound) must therefore return exactly what
// the unpruned reference search returns.
func TestColorBoundNeverPrunesMaximum(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(15000 + trial)))
		var g *Graph
		if trial%2 == 0 {
			g = randomFlatGraph(rng, 6+rng.Intn(12), 1+rng.Intn(4), 0.3+0.5*rng.Float64(), 0.5)
		} else {
			g = randomClusterGraph(rng, 6+rng.Intn(12), 1+rng.Intn(3), 2+rng.Intn(3), 0.6)
		}
		ref := refFindExact(g, g.N())

		ar := newArena(g)
		full := ar.get().cand // fresh state: every node is a candidate
		if cb := colorBound(g, full, ar, g.N()); cb < len(ref) {
			t.Fatalf("trial %d: coloring bound %d below true maximum clique %v", trial, cb, ref)
		}
		// The capped form used by the prune tests must saturate, never
		// undercut: with limit <= true maximum it must return its limit.
		if len(ref) > 0 {
			if cb := colorBound(g, full, ar, len(ref)); cb != len(ref) {
				t.Fatalf("trial %d: capped coloring bound %d != limit %d", trial, cb, len(ref))
			}
		}

		got := FindExact(g, g.N())
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: FindExact with coloring bound %v != unpruned reference %v", trial, got, ref)
		}
	}
}
