package clique

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// completeGraph returns K_n with no weights.
func completeGraph(n, cap int) *Graph {
	g := NewGraph(n, cap)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestFindCompleteGraph(t *testing.T) {
	g := completeGraph(6, -1)
	c := Find(g, 6, Options{})
	if len(c) != 6 {
		t.Fatalf("clique size = %d, want 6", len(c))
	}
	if !g.IsFeasibleClique(c) {
		t.Error("returned non-clique")
	}
}

func TestFindTriangleInPath(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-2: max clique {0,1,2}.
	g := NewGraph(4, -1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	c := Find(g, 4, Options{})
	if len(c) != 3 {
		t.Fatalf("clique size = %d, want 3 (%v)", len(c), c)
	}
	sort.Ints(c)
	if c[0] != 0 || c[1] != 1 || c[2] != 2 {
		t.Errorf("clique = %v, want [0 1 2]", c)
	}
}

func TestWeightBudgetRejects(t *testing.T) {
	// Triangle, but node 0 needs 2 registers toward each neighbour and the
	// budget is 3: the full triangle (sum 4) is infeasible, pairs are fine.
	g := completeGraph(3, 3)
	g.AddWeight(0, 1, 2)
	g.AddWeight(0, 2, 2)
	c := Find(g, 3, Options{})
	if len(c) != 2 {
		t.Fatalf("clique size = %d, want 2 (budget must bind)", len(c))
	}
	if !g.IsFeasibleClique(c) {
		t.Error("infeasible clique returned")
	}
	// Raising the budget admits the triangle.
	g2 := completeGraph(3, 4)
	g2.AddWeight(0, 1, 2)
	g2.AddWeight(0, 2, 2)
	if c := Find(g2, 3, Options{}); len(c) != 3 {
		t.Errorf("clique size = %d, want 3 with budget 4", len(c))
	}
}

func TestWeightAsymmetry(t *testing.T) {
	g := completeGraph(2, 1)
	g.AddWeight(0, 1, 5) // 0 -> 1 heavy, 1 -> 0 free
	if c := Find(g, 2, Options{}); len(c) != 1 {
		t.Errorf("clique size = %d, want 1 (directed weight must bind)", len(c))
	}
	if g.Weight(0, 1) != 5 || g.Weight(1, 0) != 0 {
		t.Error("weights must be directed")
	}
}

func TestIncomingWeightGuard(t *testing.T) {
	// Node 0 already carries weight 3 toward node 1 within budget 3; adding
	// node 2 with weight(0,2)=1 must be rejected because it pushes node 0
	// over budget even though node 2 itself is free.
	g := completeGraph(3, 3)
	g.AddWeight(0, 1, 3)
	g.AddWeight(0, 2, 1)
	c := Find(g, 3, Options{})
	if len(c) != 2 {
		t.Fatalf("clique size = %d, want 2", len(c))
	}
}

func TestIsFeasibleClique(t *testing.T) {
	g := NewGraph(3, 1)
	g.AddEdge(0, 1)
	if g.IsFeasibleClique([]int{0, 2}) {
		t.Error("accepted a non-edge")
	}
	if !g.IsFeasibleClique([]int{0, 1}) {
		t.Error("rejected a valid clique")
	}
	g.AddWeight(0, 1, 2)
	if g.IsFeasibleClique([]int{0, 1}) {
		t.Error("accepted an over-budget clique")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2, -1).AddEdge(1, 1)
}

func TestExactMatchesKnown(t *testing.T) {
	// Two triangles sharing node 2: {0,1,2} and {2,3,4}; plus pendant 5.
	g := NewGraph(6, -1)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}
	c := FindExact(g, 6)
	if len(c) != 3 {
		t.Fatalf("exact clique size = %d, want 3", len(c))
	}
}

func TestFindStopsEarlyAtTarget(t *testing.T) {
	g := completeGraph(30, -1)
	c := Find(g, 5, Options{})
	if len(c) < 5 {
		t.Fatalf("clique size = %d, want >= 5", len(c))
	}
}

func TestSwapRecoversFromGreedyTrap(t *testing.T) {
	// Construct a graph where the greedy tie-break can strand the search:
	// a hub node adjacent to everything but contained in no big clique.
	// Nodes 1..4 form K4; node 0 adjacent to 1,2 and to extra pendants
	// 5..9 (high degree, but max clique through 0 is a triangle).
	g := NewGraph(10, -1)
	for u := 1; u <= 4; u++ {
		for v := u + 1; v <= 4; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	for p := 5; p <= 9; p++ {
		g.AddEdge(0, p)
	}
	c := Find(g, 4, Options{})
	if len(c) != 4 {
		t.Fatalf("clique size = %d, want 4 (%v)", len(c), c)
	}
}

func randomGraph(rng *rand.Rand) *Graph {
	n := 4 + rng.Intn(14)
	cap := rng.Intn(5) - 1 // -1..3
	g := NewGraph(n, cap)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) > 0 {
				g.AddEdge(u, v)
				if cap >= 0 && rng.Intn(3) == 0 {
					g.AddWeight(u, v, rng.Intn(3))
					g.AddWeight(v, u, rng.Intn(3))
				}
			}
		}
	}
	return g
}

// Property: the heuristic always returns a feasible clique, and never a
// larger one than the exact search.
func TestHeuristicSoundAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		h := Find(g, g.N(), Options{})
		if !g.IsFeasibleClique(h) {
			return false
		}
		exact := FindExact(g, g.N())
		if !g.IsFeasibleClique(exact) {
			return false
		}
		return len(h) <= len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the heuristic finds the optimum on small unweighted graphs most
// of the time; require it never to be worse than optimum-1 here (it has swap
// and intersection repair).
func TestHeuristicQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	worse := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		g := randomGraph(rng)
		h := Find(g, g.N(), Options{})
		exact := FindExact(g, g.N())
		if len(h) < len(exact)-1 {
			worse++
		}
	}
	if worse > trials/10 {
		t.Errorf("heuristic was >1 below optimum in %d/%d trials", worse, trials)
	}
}

func TestAblationKnobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		g := randomGraph(rng)
		full := Find(g, g.N(), Options{})
		noSwap := Find(g, g.N(), Options{DisableSwap: true})
		noInter := Find(g, g.N(), Options{DisableIntersect: true})
		for _, c := range [][]int{full, noSwap, noInter} {
			if !g.IsFeasibleClique(c) {
				t.Fatal("ablated search returned infeasible clique")
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := randomGraph(rng)
		a := Find(g, g.N(), Options{})
		b := Find(g, g.N(), Options{})
		if len(a) != len(b) {
			t.Fatal("Find not deterministic")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("Find not deterministic")
			}
		}
	}
}

func TestBaseWeight(t *testing.T) {
	// Node 0 carries an unconditional base of 2 with budget 2: it can join a
	// clique alone but any weighted outgoing arc pushes it over.
	g := completeGraph(3, 2)
	g.AddBase(0, 2)
	g.AddWeight(0, 1, 1)
	c := Find(g, 3, Options{})
	if !g.IsFeasibleClique(c) {
		t.Fatal("infeasible clique returned")
	}
	for _, v := range c {
		if v == 0 {
			for _, w := range c {
				if w == 1 {
					t.Fatal("clique contains 0 and 1 despite base+weight > cap")
				}
			}
		}
	}
	if g.Base(0) != 2 {
		t.Error("Base accessor wrong")
	}
	// Base alone exceeding the cap excludes the node entirely.
	g2 := completeGraph(2, 1)
	g2.AddBase(0, 5)
	c2 := Find(g2, 2, Options{})
	if len(c2) != 1 || c2[0] != 1 {
		t.Errorf("clique = %v, want [1]", c2)
	}
}
