package clique

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file ports the clique engine's algorithms to a deliberately naive
// reference — fresh slices everywhere, no arena, no bitsets, no incremental
// score or weight-sum maintenance — and checks the optimized engine against it
// elementwise on randomized weighted graphs. Because both sides share every
// tie-break (first maximum in increasing node id, insertion order, stable
// sorts), agreement must be exact, not just equal-cardinality: any divergence
// means pooling or incrementality changed a result.

// refCand returns the nodes adjacent to every member, in increasing id order
// (the reference for state.cand; all nodes when members is empty).
func refCand(g *Graph, members []int) []int {
	var out []int
	for u := 0; u < g.N(); u++ {
		ok := true
		for _, m := range members {
			if u == m || !g.Adjacent(u, m) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, u)
		}
	}
	return out
}

// refCanAdd recomputes every weight sum from scratch.
func refCanAdd(g *Graph, members []int, u int) bool {
	for _, m := range members {
		if m == u || !g.Adjacent(u, m) {
			return false
		}
	}
	if g.Cap() < 0 {
		return true
	}
	uSum := g.Base(u)
	for _, m := range members {
		uSum += g.Weight(u, m)
		mSum := g.Base(m) + g.Weight(m, u)
		for _, v := range members {
			if v != m {
				mSum += g.Weight(m, v)
			}
		}
		if mSum > g.Cap() {
			return false
		}
	}
	return uSum <= g.Cap()
}

func refGrow(g *Graph, members []int, target int) []int {
	for len(members) < target {
		cand := refCand(g, members)
		best, bestScore := -1, -1
		for _, u := range cand {
			if !refCanAdd(g, members, u) {
				continue
			}
			score := 0
			for _, v := range cand {
				if v != u && g.Adjacent(u, v) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = u, score
			}
		}
		if best == -1 {
			return members
		}
		members = append(members, best)
	}
	return members
}

func refFindSwap(g *Graph, members []int) (int, int) {
	inC := make(map[int]bool, len(members))
	for _, m := range members {
		inC[m] = true
	}
	for cand := 0; cand < g.N(); cand++ {
		if inC[cand] {
			continue
		}
		miss := 0
		for _, m := range members {
			if !g.Adjacent(cand, m) {
				miss++
			}
		}
		if miss != 1 {
			continue
		}
		for _, m := range members {
			if !g.Adjacent(cand, m) {
				return cand, m
			}
		}
	}
	return -1, -1
}

func refSwapImprove(g *Graph, members []int, target int) []int {
	best := members
	cur := members
	for round := 0; round < 2*len(cur)+4 && len(cur) < target; round++ {
		u, x := refFindSwap(g, cur)
		if u == -1 {
			break
		}
		next := make([]int, 0, len(cur))
		for _, m := range cur {
			if m != x {
				next = append(next, m)
			}
		}
		if !refCanAdd(g, next, u) {
			break
		}
		next = append(next, u)
		next = refGrow(g, next, target)
		if len(next) <= len(cur) {
			break
		}
		cur = next
		if len(cur) > len(best) {
			best = cur
		}
	}
	return best
}

func refDegreeOrder(g *Graph) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if g.Degree(order[i]) != g.Degree(order[j]) {
			return g.Degree(order[i]) > g.Degree(order[j])
		}
		return order[i] < order[j]
	})
	return order
}

func refIntersect(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func refFind(g *Graph, target int, opts Options) []int {
	maxSeeds := opts.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 16
	}
	maxInter := opts.MaxIntersections
	if maxInter <= 0 {
		maxInter = 32
	}
	if target > g.N() {
		target = g.N()
	}
	order := opts.SeedOrder
	if len(order) != g.N() {
		order = refDegreeOrder(g)
	}
	if len(order) > maxSeeds {
		order = order[:maxSeeds]
	}

	var best []int
	var found [][]int
	consider := func(members []int) bool {
		c := append([]int(nil), members...)
		found = append(found, c)
		if len(c) > len(best) {
			best = c
		}
		return len(best) >= target
	}

	for _, seed := range order {
		if !refCanAdd(g, nil, seed) {
			continue
		}
		members := refGrow(g, []int{seed}, target)
		if !opts.DisableSwap {
			members = refSwapImprove(g, members, target)
		}
		if consider(members) {
			return best
		}
	}

	if !opts.DisableIntersect {
		sort.SliceStable(found, func(i, j int) bool { return len(found[i]) > len(found[j]) })
		pairs := 0
		for i := 0; i < len(found) && pairs < maxInter; i++ {
			for j := i + 1; j < len(found) && pairs < maxInter; j++ {
				pairs++
				seed := refIntersect(found[i], found[j])
				if len(seed) == 0 || len(seed) == len(found[i]) || len(seed) == len(found[j]) {
					continue
				}
				members := refGrow(g, append([]int(nil), seed...), target)
				if !opts.DisableSwap {
					members = refSwapImprove(g, members, target)
				}
				if consider(members) {
					return best
				}
			}
		}
	}
	return best
}

func refFindExact(g *Graph, target int) []int {
	var best []int
	var dfs func(members, cand []int)
	dfs = func(members, cand []int) {
		if len(members) > len(best) {
			best = append([]int(nil), members...)
		}
		if len(best) >= target {
			return
		}
		if len(members)+len(cand) <= len(best) {
			return
		}
		for i, u := range cand {
			if !refCanAdd(g, members, u) {
				continue
			}
			childMembers := append(append([]int(nil), members...), u)
			var childCand []int
			for _, v := range cand[i+1:] {
				if g.Adjacent(v, u) {
					childCand = append(childCand, v)
				}
			}
			dfs(childMembers, childCand)
			if len(best) >= target {
				return
			}
		}
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	dfs(nil, all)
	return best
}

// randomFlatGraph builds a graph using the flat AddWeight storage path.
func randomFlatGraph(rng *rand.Rand, n, cap int, edgeProb, weightProb float64) *Graph {
	g := NewGraph(n, cap)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeProb {
				g.AddEdge(u, v)
				if rng.Float64() < weightProb {
					g.AddWeight(u, v, rng.Intn(3))
				}
				if rng.Float64() < weightProb {
					g.AddWeight(v, u, rng.Intn(3))
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		if rng.Float64() < 0.2 {
			g.AddBase(u, rng.Intn(3))
		}
	}
	return g
}

// randomClusterGraph builds a graph using the SetWeightFunc path, mimicking
// REGIMap's register demand: weights exist only inside a cluster (a PE) and
// depend only on the consumer.
func randomClusterGraph(rng *rand.Rand, n, cap, nClusters int, edgeProb float64) *Graph {
	g := NewGraph(n, cap)
	cluster := make([]int, n)
	demand := make([]int, n)
	for u := 0; u < n; u++ {
		cluster[u] = rng.Intn(nClusters)
		demand[u] = rng.Intn(3)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeProb {
				g.AddEdge(u, v)
			}
		}
	}
	for u := 0; u < n; u++ {
		if rng.Float64() < 0.2 {
			g.AddBase(u, rng.Intn(2))
		}
	}
	fn := func(u, v int) int {
		if cluster[u] != cluster[v] {
			return 0
		}
		return demand[v]
	}
	hasOut := func(u int) bool {
		for v := 0; v < n; v++ {
			if v != u && fn(u, v) != 0 {
				return true
			}
		}
		return false
	}
	g.SetWeightFunc(fn, hasOut, func(u int) int { return cluster[u] })
	return g
}

func referenceCases() []struct {
	name string
	gen  func(rng *rand.Rand) *Graph
	opts Options
} {
	return []struct {
		name string
		gen  func(rng *rand.Rand) *Graph
		opts Options
	}{
		{"flat/unconstrained", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(20), -1, 0.5, 0) }, Options{}},
		{"flat/weighted", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(20), 2+r.Intn(4), 0.55, 0.5) }, Options{}},
		{"flat/tight-cap", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(16), r.Intn(2), 0.6, 0.7) }, Options{}},
		{"flat/no-swap", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(20), 3, 0.5, 0.5) }, Options{DisableSwap: true}},
		{"flat/no-intersect", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(20), 3, 0.5, 0.5) }, Options{DisableIntersect: true}},
		{"flat/few-seeds", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 12+r.Intn(16), 3, 0.5, 0.5) }, Options{MaxSeeds: 4, MaxIntersections: 6}},
		{"cluster/REGIMap-shape", func(r *rand.Rand) *Graph { return randomClusterGraph(r, 10+r.Intn(20), 2+r.Intn(3), 2+r.Intn(4), 0.55) }, Options{}},
		{"cluster/tight-cap", func(r *rand.Rand) *Graph { return randomClusterGraph(r, 10+r.Intn(16), 1, 2+r.Intn(3), 0.6) }, Options{}},
		{"sparse", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 16+r.Intn(16), 3, 0.15, 0.5) }, Options{}},
		{"dense", func(r *rand.Rand) *Graph { return randomFlatGraph(r, 8+r.Intn(12), 4, 0.85, 0.4) }, Options{}},
	}
}

// TestFindMatchesReference diffs the pooled/incremental Find against the naive
// reference elementwise over randomized graphs and targets.
func TestFindMatchesReference(t *testing.T) {
	for _, tc := range referenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				g := tc.gen(rng)
				target := 1 + rng.Intn(g.N())
				got := Find(g, target, tc.opts)
				want := refFind(g, target, tc.opts)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (n=%d target=%d): Find=%v reference=%v", trial, g.N(), target, got, want)
				}
				if !g.IsFeasibleClique(got) {
					t.Fatalf("trial %d: Find returned infeasible clique %v", trial, got)
				}
				// Pooling determinism: a second run of the same search must be
				// byte-identical to the first.
				if again := Find(g, target, tc.opts); !reflect.DeepEqual(got, again) {
					t.Fatalf("trial %d: Find not deterministic: %v then %v", trial, got, again)
				}
			}
		})
	}
}

// TestFindExactMatchesReference diffs the arena-pooled branch-and-bound
// against the naive recursive reference.
func TestFindExactMatchesReference(t *testing.T) {
	for _, tc := range referenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				rng := rand.New(rand.NewSource(int64(7000 + trial)))
				g := tc.gen(rng)
				if g.N() > 18 {
					continue // keep the exponential search fast
				}
				target := 1 + rng.Intn(g.N())
				got := FindExact(g, target)
				want := refFindExact(g, target)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (n=%d target=%d): FindExact=%v reference=%v", trial, g.N(), target, got, want)
				}
				if !g.IsFeasibleClique(got) {
					t.Fatalf("trial %d: FindExact returned infeasible clique %v", trial, got)
				}
			}
		})
	}
}

// TestFindSeedOrderOptionMatchesDefault checks the Options.SeedOrder contract:
// passing Graph.DegreeOrder explicitly must reproduce the default exactly
// (REGIMap shares one order across clique.Find calls this way).
func TestFindSeedOrderOptionMatchesDefault(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		g := randomFlatGraph(rng, 10+rng.Intn(20), 3, 0.5, 0.5)
		target := 1 + rng.Intn(g.N())
		def := Find(g, target, Options{})
		shared := Find(g, target, Options{SeedOrder: g.DegreeOrder()})
		if !reflect.DeepEqual(def, shared) {
			t.Fatalf("trial %d: default=%v with SeedOrder=%v", trial, def, shared)
		}
	}
}

// TestFindGroupedDeterministicAndFeasible exercises the grouped search's
// arena reuse: results must be feasible, respect one-per-group, and be
// identical across repeated runs.
func TestFindGroupedDeterministicAndFeasible(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		nGroups := 3 + rng.Intn(6)
		perGroup := 2 + rng.Intn(4)
		n := nGroups * perGroup
		g := NewGraph(n, 2+rng.Intn(3))
		groups := make([][]int, nGroups)
		groupOf := make([]int, n)
		for gi := range groups {
			for k := 0; k < perGroup; k++ {
				u := gi*perGroup + k
				groups[gi] = append(groups[gi], u)
				groupOf[u] = gi
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if groupOf[u] != groupOf[v] && rng.Float64() < 0.7 {
					g.AddEdge(u, v)
					if rng.Float64() < 0.4 {
						g.AddWeight(u, v, rng.Intn(2))
					}
				}
			}
		}
		got := FindGrouped(g, groups, Options{})
		if !g.IsFeasibleClique(got) {
			t.Fatalf("trial %d: FindGrouped returned infeasible clique %v", trial, got)
		}
		seen := make(map[int]bool)
		for _, u := range got {
			if seen[groupOf[u]] {
				t.Fatalf("trial %d: two members from group %d in %v", trial, groupOf[u], got)
			}
			seen[groupOf[u]] = true
		}
		if again := FindGrouped(g, groups, Options{}); !reflect.DeepEqual(got, again) {
			t.Fatalf("trial %d: FindGrouped not deterministic: %v then %v", trial, got, again)
		}
	}
}

// sanity check for the reference itself: its results must be feasible too,
// otherwise agreement above would prove nothing.
func TestReferenceSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomFlatGraph(rng, 12, 3, 0.5, 0.5)
		for _, target := range []int{1, 4, 12} {
			if got := refFind(g, target, Options{}); !g.IsFeasibleClique(got) {
				t.Fatalf("reference Find infeasible: %v", got)
			}
			if got := refFindExact(g, target); !g.IsFeasibleClique(got) {
				t.Fatalf("reference FindExact infeasible: %v", got)
			}
		}
	}
}
