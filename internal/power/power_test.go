package power

import (
	"math"
	"testing"
)

func TestPaperNumbers(t *testing.T) {
	// The paper's own data point: ~10.75 IPC on a 4x4 ADRES-class array
	// yields ~3.3 GOps/s and ~24 pJ per operation.
	e := FromIPC(10.75)
	if e.CGRAOpsPerSec < 3.2e9 || e.CGRAOpsPerSec > 3.5e9 {
		t.Errorf("ops/s = %.3g, want ~3.3e9", e.CGRAOpsPerSec)
	}
	if pj := e.CGRAEnergyPerOp * 1e12; pj < 22 || pj > 26 {
		t.Errorf("energy/op = %.1f pJ, want ~24", pj)
	}
	// Core 2 side: 5.2 G instr/s at 2 nJ each.
	if e.CPUOpsPerSec != 5.2e9 {
		t.Errorf("CPU ops/s = %g, want 5.2e9", e.CPUOpsPerSec)
	}
	// Energy per instruction ratio ~83x; the efficiency ratio equals it
	// (both machines are compared at full utilization).
	if e.EnergyRatio < 75 || e.EnergyRatio > 95 {
		t.Errorf("energy ratio = %.1f, want ~83", e.EnergyRatio)
	}
	if math.Abs(e.EnergyRatio-e.EfficiencyRatio) > 1e-6 {
		t.Errorf("efficiency ratio %.2f != energy ratio %.2f", e.EfficiencyRatio, e.EnergyRatio)
	}
}

func TestZeroIPC(t *testing.T) {
	e := FromIPC(0)
	if e.CGRAEnergyPerOp != 0 || e.EnergyRatio != 0 {
		t.Error("zero IPC must not divide by zero")
	}
}

func TestMonotonic(t *testing.T) {
	lo, hi := FromIPC(2), FromIPC(12)
	if hi.CGRAEnergyPerOp >= lo.CGRAEnergyPerOp {
		t.Error("more IPC must mean less energy per op")
	}
	if hi.EnergyRatio <= lo.EnergyRatio {
		t.Error("more IPC must mean a larger advantage")
	}
}
