// Package power reproduces the paper's Section 6.5 power-efficiency
// estimate. It is closed-form arithmetic over published constants — the
// ADRES synthesis figures (Bouwens et al.) and Intel Core 2 characterization
// (Kejariwal et al.) the paper cites — driven by the IPC that REGIMap's
// mappings actually achieve in this reproduction.
package power

// Published constants used by the paper's estimate.
const (
	// ADRESFreqHz is the ADRES CGRA clock (Bouwens et al. synthesis point).
	ADRESFreqHz = 312e6
	// ADRESPowerWatts is the corresponding power draw.
	ADRESPowerWatts = 0.080
	// Core2FreqHz is the Intel Core 2 clock the paper assumes.
	Core2FreqHz = 2.6e9
	// Core2IPC is the paper's "maximum of 2 instructions per cycle".
	Core2IPC = 2
	// Core2EnergyPerInstr is the paper's 2 nJ per instruction figure.
	Core2EnergyPerInstr = 2e-9
)

// Estimate is the paper's back-of-envelope comparison for one measured IPC.
type Estimate struct {
	IPC             float64 // instructions per cycle on the CGRA
	CGRAOpsPerSec   float64 // IPC x clock
	CGRAEnergyPerOp float64 // joules per operation
	CPUOpsPerSec    float64
	CPUEnergyPerOp  float64
	EnergyRatio     float64 // CPU energy per op / CGRA energy per op
	EfficiencyRatio float64 // CGRA ops-per-watt / CPU ops-per-watt
}

// FromIPC computes the estimate for a measured CGRA IPC.
func FromIPC(ipc float64) Estimate {
	e := Estimate{IPC: ipc}
	e.CGRAOpsPerSec = ipc * ADRESFreqHz
	if e.CGRAOpsPerSec > 0 {
		e.CGRAEnergyPerOp = ADRESPowerWatts / e.CGRAOpsPerSec
	}
	e.CPUOpsPerSec = Core2IPC * Core2FreqHz
	e.CPUEnergyPerOp = Core2EnergyPerInstr
	if e.CGRAEnergyPerOp > 0 {
		e.EnergyRatio = e.CPUEnergyPerOp / e.CGRAEnergyPerOp
	}
	cpuPower := e.CPUEnergyPerOp * e.CPUOpsPerSec
	if cpuPower > 0 && ADRESPowerWatts > 0 {
		e.EfficiencyRatio = (e.CGRAOpsPerSec / ADRESPowerWatts) / (e.CPUOpsPerSec / cpuPower)
	}
	return e
}
