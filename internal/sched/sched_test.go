package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regimap/internal/dfg"
)

func chain4() *dfg.DFG {
	b := dfg.NewBuilder("chain4")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func rec3() *dfg.DFG {
	b := dfg.NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(dfg.Add, "p", x)
	q := b.Op(dfg.Neg, "q", p)
	r := b.Op(dfg.Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	return b.Build()
}

func wide(n int) *dfg.DFG {
	b := dfg.NewBuilder("wide")
	for i := 0; i < n; i++ {
		b.Input("x")
	}
	return b.Build()
}

func TestScheduleChainAtMII(t *testing.T) {
	d := chain4()
	s := New(d, 2, 1)
	if got := s.MII(); got != 2 {
		t.Fatalf("MII = %d, want 2", got)
	}
	res, err := s.Schedule(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(d, 2, 1); err != nil {
		t.Fatal(err)
	}
	if res.Width() > 2 {
		t.Errorf("Width = %d, want <= 2", res.Width())
	}
}

func TestScheduleRecurrence(t *testing.T) {
	d := rec3()
	s := New(d, 16, 4)
	res, err := s.Schedule(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(d, 16, 4); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBelowRecMIIFails(t *testing.T) {
	s := New(rec3(), 16, 4)
	if _, err := s.Schedule(2, Options{}); err == nil {
		t.Error("accepted II below RecMII")
	}
}

func TestScheduleTooNarrowFails(t *testing.T) {
	// 8 independent ops, width cap 2, II 3 -> only 6 slots.
	s := New(wide(8), 2, 1)
	if _, err := s.Schedule(3, Options{}); err == nil {
		t.Error("accepted impossible width")
	}
}

func TestScheduleMemoryBusLimit(t *testing.T) {
	b := dfg.NewBuilder("mem")
	for i := 0; i < 4; i++ {
		a := b.Input("a")
		b.Op(dfg.Load, "ld", a)
	}
	d := b.Build()
	// 4 loads, 1 bus: II >= 4 for memory even though 8 ops fit 2 slots of 4.
	s := New(d, 4, 1)
	if _, err := s.Schedule(3, Options{}); err == nil {
		t.Error("accepted schedule violating the single row bus")
	}
	res, err := s.Schedule(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(d, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleMinIIEscalates(t *testing.T) {
	s := New(wide(8), 2, 1)
	res, err := s.ScheduleMinII(1, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.II != 4 {
		t.Errorf("II = %d, want 4 (8 ops / width 2)", res.II)
	}
}

func TestScheduleMinIIExhausts(t *testing.T) {
	s := New(wide(8), 2, 1)
	if _, err := s.ScheduleMinII(1, 3, Options{}); err == nil {
		t.Error("ScheduleMinII should fail when maxII is too small")
	}
}

func TestThinningReducesWidth(t *testing.T) {
	d := wide(8)
	s := New(d, 8, 2)
	full, err := s.Schedule(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Width() != 8 {
		t.Fatalf("full width = %d, want 8", full.Width())
	}
	thin, err := s.Schedule(2, Options{MaxPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if thin.Width() > 4 {
		t.Errorf("thinned width = %d, want <= 4", thin.Width())
	}
}

func TestPreferChangesOrder(t *testing.T) {
	// Two independent chains; width 1. Preferring the second chain's ops
	// must give them the earlier slots.
	b := dfg.NewBuilder("two")
	a0 := b.Input("a0")
	a1 := b.Op(dfg.Neg, "a1", a0)
	c0 := b.Input("c0")
	c1 := b.Op(dfg.Neg, "c1", c0)
	d := b.Build()
	_ = a1
	s := New(d, 1, 1)
	plain, err := s.Schedule(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pref, err := s.Schedule(4, Options{Prefer: []int{c0, c1}})
	if err != nil {
		t.Fatal(err)
	}
	if pref.Time[c0] >= plain.Time[c0] && pref.Time[c1] >= plain.Time[c1] {
		t.Errorf("Prefer had no effect: plain=%v pref=%v", plain.Time, pref.Time)
	}
}

func TestPinForcesSlot(t *testing.T) {
	d := chain4()
	s := New(d, 4, 2)
	res, err := s.Schedule(4, Options{Pin: map[int]int{3: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time[3] != 5 {
		t.Errorf("pinned op at %d, want 5", res.Time[3])
	}
}

func TestPinInfeasible(t *testing.T) {
	d := chain4() // a->b->c->d chain: d cannot run at slot 0
	s := New(d, 4, 2)
	if _, err := s.Schedule(4, Options{Pin: map[int]int{3: 0}}); err == nil {
		t.Error("accepted infeasible pin")
	}
}

func TestBadInputs(t *testing.T) {
	s := New(chain4(), 4, 2)
	if _, err := s.Schedule(0, Options{}); err == nil {
		t.Error("accepted II=0")
	}
	if _, err := s.Schedule(2, Options{Prefer: []int{99}}); err == nil {
		t.Error("accepted out-of-range Prefer")
	}
	if _, err := s.Schedule(2, Options{Pin: map[int]int{0: -1}}); err == nil {
		t.Error("accepted negative pin")
	}
	defer func() {
		if recover() == nil {
			t.Error("New accepted zero PEs")
		}
	}()
	New(chain4(), 0, 1)
}

func randomDFG(rng *rand.Rand) *dfg.DFG {
	b := dfg.NewBuilder("rand")
	n := 3 + rng.Intn(20)
	ids := []int{b.Input("i0")}
	kinds := []dfg.OpKind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor}
	for len(ids) < n {
		if rng.Intn(4) == 0 {
			ids = append(ids, b.Input("i"))
			continue
		}
		k := kinds[rng.Intn(len(kinds))]
		ids = append(ids, b.Op(k, "op", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
	}
	if rng.Intn(2) == 0 {
		acc := b.Op(dfg.Add, "acc", ids[rng.Intn(len(ids))])
		b.EdgeDist(acc, acc, 1, 1)
	}
	return b.Build()
}

// Property: whenever the scheduler succeeds, the schedule passes independent
// validation; and it succeeds at a modest II above MII.
func TestScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDFG(rng)
		pes := []int{4, 9, 16}[rng.Intn(3)]
		rows := map[int]int{4: 2, 9: 3, 16: 4}[pes]
		s := New(d, pes, rows)
		mii := s.MII()
		res, err := s.ScheduleMinII(mii, mii+8, Options{})
		if err != nil {
			return false
		}
		return res.Validate(d, pes, rows) == nil && res.II >= mii
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: schedules are deterministic for identical inputs.
func TestScheduleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		d := randomDFG(rng)
		s := New(d, 4, 2)
		mii := s.MII()
		r1, err1 := s.ScheduleMinII(mii, mii+8, Options{})
		r2, err2 := s.ScheduleMinII(mii, mii+8, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("determinism violated in error outcome")
		}
		if err1 != nil {
			continue
		}
		for v := range r1.Time {
			if r1.Time[v] != r2.Time[v] {
				t.Fatalf("determinism violated: %v vs %v", r1.Time, r2.Time)
			}
		}
	}
}

// TestCompactionShrinksRegisterDemand pins the lifetime-sensitive pass: a
// producer whose consumer sits far away must be pulled next to it instead of
// being parked at cycle 0.
func TestCompactionShrinksRegisterDemand(t *testing.T) {
	// in -> a -> b -> c; plus late consumer d of in. Without compaction, in
	// sits at 0 and in->d spans 4.
	b := dfg.NewBuilder("lift")
	in := b.Input("in")
	a := b.Op(dfg.Neg, "a", in)
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	d := b.Op(dfg.Add, "d", c, in)
	dfgr := b.Build()
	s := New(dfgr, 4, 2)

	raw, err := s.Schedule(4, Options{NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.Schedule(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	demand := func(res *Result) int {
		total := 0
		for v := range dfgr.Nodes {
			maxSpan := 0
			for _, ei := range dfgr.OutEdges(v) {
				e := dfgr.Edges[ei]
				if span := res.Time[e.To] - res.Time[v] + res.II*e.Dist; span > maxSpan {
					maxSpan = span
				}
			}
			if maxSpan > 1 {
				total += (maxSpan + res.II - 1) / res.II
			}
		}
		return total
	}
	if demand(opt) > demand(raw) {
		t.Errorf("compaction increased register demand: %d > %d", demand(opt), demand(raw))
	}
	// The specific failure mode: in's value must not span the whole chain on
	// the compacted schedule unless d truly forces it. d is at cycle >= 4;
	// in can sit at 3 serving d at span 1... but a also reads in. The best
	// trade keeps total demand at 1 (either in->d or in->a carried).
	if demand(opt) > 1 {
		t.Errorf("compacted demand = %d, want <= 1", demand(opt))
	}
	_ = d
}

// TestCompactionRespectsPins ensures pinned operations never move.
func TestCompactionRespectsPins(t *testing.T) {
	b := dfg.NewBuilder("pin")
	in := b.Input("in")
	a := b.Op(dfg.Neg, "a", in)
	bb := b.Op(dfg.Neg, "b", a)
	b.Op(dfg.Add, "d", bb, in)
	d := b.Build()
	s := New(d, 4, 2)
	res, err := s.Schedule(4, Options{Pin: map[int]int{0: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time[0] != 0 {
		t.Errorf("pinned op moved to %d", res.Time[0])
	}
}

// TestCompactionKeepsValidity is a property check across random kernels.
func TestCompactionKeepsValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		d := randomDFG(rng)
		s := New(d, 4, 2)
		mii := s.MII()
		res, err := s.ScheduleMinII(mii, mii+6, Options{})
		if err != nil {
			continue
		}
		if err := res.Validate(d, 4, 2); err != nil {
			t.Fatalf("kernel %d: compacted schedule invalid: %v", i, err)
		}
	}
}
