// Package sched implements Rau-style iterative modulo scheduling (IMS) of a
// data-flow graph onto a CGRA's time dimension. The scheduler assigns each
// operation an absolute slot T(v) such that every dependence satisfies
// T(j) >= T(i) + lat(i) - II*dist(i,j) and no modulo slot holds more
// operations than the array has PEs (nor more memory operations than it has
// row buses). Placement onto specific PEs is deliberately *not* done here —
// that is REGIMap's clique step (or the baselines' own placers).
//
// Two knobs exist specifically for REGIMap's learn-from-failure loop
// (paper Section 6.3 / Appendix E):
//
//   - Options.Prefer raises the scheduling priority of named operations so a
//     re-schedule orders nodes differently from the previous attempt, and
//   - Options.MaxPEs virtually shrinks the array ("thinning"), forcing a
//     schedule of smaller width.
package sched

import (
	"fmt"
	"sort"

	"regimap/internal/dfg"
	"regimap/internal/obs"
)

// Options configures one scheduling attempt.
type Options struct {
	// MaxPEs caps how many operations may share one modulo slot (the
	// schedule "width"). Zero means the full array.
	MaxPEs int
	// MaxMemPerSlot caps memory operations per modulo slot. Zero means the
	// fabric's full per-cycle memory issue capacity (one op per row bus in
	// the paper's scheme, the summed group capacities on described fabrics —
	// see arch.MemSlotCapacity).
	MaxMemPerSlot int
	// BudgetFactor scales the operation-scheduling budget: the scheduler
	// aborts after BudgetFactor*|V| placements. Zero means 16.
	BudgetFactor int
	// Prefer lists operations whose priority is raised above everything
	// else, changing the node order of the next attempt.
	Prefer []int
	// Pin, when non-nil, forces listed operations to exact slots (used by
	// the local "move one cycle earlier" repair).
	Pin map[int]int
	// NoCompact skips the lifetime-sensitive compaction pass, leaving the
	// raw list schedule (the DRESC baseline starts from this — the published
	// algorithm has no lifetime-aware scheduler and relies on annealing
	// moves to discover good time placements).
	NoCompact bool
	// Trace, when non-nil, receives one sched.schedule event per attempt.
	// The nil default costs nothing (see internal/obs).
	Trace *obs.Tracer
}

// Result is a feasible modulo schedule.
type Result struct {
	II     int
	Time   []int // absolute slot per operation
	Length int   // 1 + max(Time): the schedule length in cycles
}

// Slot returns the modulo slot of operation v.
func (r *Result) Slot(v int) int { return r.Time[v] % r.II }

// Width returns the maximum number of operations sharing one modulo slot.
func (r *Result) Width() int {
	counts := make([]int, r.II)
	for _, t := range r.Time {
		counts[t%r.II]++
	}
	w := 0
	for _, c := range counts {
		if c > w {
			w = c
		}
	}
	return w
}

// Validate checks the schedule against the DFG and limits; mappers call it
// defensively and tests call it directly.
func (r *Result) Validate(d *dfg.DFG, maxPerSlot, maxMemPerSlot int) error {
	if len(r.Time) != d.N() {
		return fmt.Errorf("sched: %d times for %d ops", len(r.Time), d.N())
	}
	for _, e := range d.Edges {
		lat := d.Nodes[e.From].Kind.Latency()
		if r.Time[e.To] < r.Time[e.From]+lat-r.II*e.Dist {
			return fmt.Errorf("sched: edge %s->%s violated (T=%d,%d II=%d dist=%d)",
				d.Nodes[e.From].Name, d.Nodes[e.To].Name,
				r.Time[e.From], r.Time[e.To], r.II, e.Dist)
		}
	}
	alu := make([]int, r.II)
	mem := make([]int, r.II)
	for v, t := range r.Time {
		if t < 0 {
			return fmt.Errorf("sched: op %s at negative slot %d", d.Nodes[v].Name, t)
		}
		alu[t%r.II]++
		if d.Nodes[v].Kind.IsMem() {
			mem[t%r.II]++
		}
	}
	for s := 0; s < r.II; s++ {
		if alu[s] > maxPerSlot {
			return fmt.Errorf("sched: slot %d holds %d ops, cap %d", s, alu[s], maxPerSlot)
		}
		if mem[s] > maxMemPerSlot {
			return fmt.Errorf("sched: slot %d holds %d mem ops, cap %d", s, mem[s], maxMemPerSlot)
		}
	}
	return nil
}

// Scheduler holds the immutable inputs of repeated scheduling attempts.
type Scheduler struct {
	d        *dfg.DFG
	numPEs   int
	memSlots int
	heights  []int
}

// New returns a scheduler for the DFG on an array with numPEs processing
// elements and memSlots memory issue slots per cycle (the number of rows on
// the paper's array, arch.MIIResources' second value in general).
func New(d *dfg.DFG, numPEs, memSlots int) *Scheduler {
	if numPEs <= 0 || memSlots <= 0 {
		panic("sched: array dimensions must be positive")
	}
	return &Scheduler{d: d, numPEs: numPEs, memSlots: memSlots, heights: d.Heights()}
}

// MII returns the schedule lower bound for this scheduler's array.
func (s *Scheduler) MII() int { return s.d.MII(s.numPEs, s.memSlots) }

// Schedule attempts a modulo schedule at exactly the given II.
func (s *Scheduler) Schedule(ii int, opts Options) (*Result, error) {
	sp := opts.Trace.Start("sched.schedule")
	res, err := s.schedule(ii, opts)
	sp.Field("ii", int64(ii))
	if res != nil {
		sp.Field("length", int64(res.Length))
	}
	sp.FieldBool("ok", err == nil)
	sp.End()
	return res, err
}

func (s *Scheduler) schedule(ii int, opts Options) (*Result, error) {
	if ii <= 0 {
		return nil, fmt.Errorf("sched: non-positive II %d", ii)
	}
	maxPerSlot := opts.MaxPEs
	if maxPerSlot <= 0 || maxPerSlot > s.numPEs {
		maxPerSlot = s.numPEs
	}
	maxMem := opts.MaxMemPerSlot
	if maxMem <= 0 || maxMem > s.memSlots {
		maxMem = s.memSlots
	}
	budgetFactor := opts.BudgetFactor
	if budgetFactor <= 0 {
		budgetFactor = 16
	}
	n := s.d.N()

	// Quick infeasibility checks.
	if _, err := s.d.ASAP(ii); err != nil {
		return nil, err
	}
	if n > maxPerSlot*ii {
		return nil, fmt.Errorf("sched: %d ops cannot fit %d slots of width %d", n, ii, maxPerSlot)
	}
	if m := s.d.MemOps(); m > maxMem*ii {
		return nil, fmt.Errorf("sched: %d mem ops cannot fit %d slots of %d bus issues", m, ii, maxMem)
	}

	prefer := make(map[int]bool, len(opts.Prefer))
	for _, v := range opts.Prefer {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sched: Prefer op %d out of range", v)
		}
		prefer[v] = true
	}
	for v, t := range opts.Pin {
		if v < 0 || v >= n || t < 0 {
			return nil, fmt.Errorf("sched: bad pin %d@%d", v, t)
		}
	}

	const unscheduled = -1
	time := make([]int, n)
	everTime := make([]int, n) // last slot an op held (for the bump rule)
	for i := range time {
		time[i] = unscheduled
		everTime[i] = unscheduled
	}
	alu := make([]int, ii)
	mem := make([]int, ii)

	place := func(v, t int) {
		time[v] = t
		everTime[v] = t
		alu[t%ii]++
		if s.d.Nodes[v].Kind.IsMem() {
			mem[t%ii]++
		}
	}
	evict := func(v int) {
		t := time[v]
		alu[t%ii]--
		if s.d.Nodes[v].Kind.IsMem() {
			mem[t%ii]--
		}
		time[v] = unscheduled
	}
	fits := func(v, t int) bool {
		if alu[t%ii] >= maxPerSlot {
			return false
		}
		return !s.d.Nodes[v].Kind.IsMem() || mem[t%ii] < maxMem
	}

	// Worklist ordered by (prefer, height, -id); a simple sorted pop keeps
	// the behaviour deterministic.
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	less := func(a, b int) bool {
		pa, pb := prefer[a], prefer[b]
		if pa != pb {
			return pa
		}
		if s.heights[a] != s.heights[b] {
			return s.heights[a] > s.heights[b]
		}
		return a < b
	}
	sort.Slice(pending, func(i, j int) bool { return less(pending[i], pending[j]) })

	budget := budgetFactor * n
	for len(pending) > 0 {
		if budget <= 0 {
			return nil, fmt.Errorf("sched: budget exhausted at II=%d", ii)
		}
		budget--
		v := pending[0]
		pending = pending[1:]

		// Earliest start from *scheduled* predecessors.
		early := 0
		for _, ei := range s.d.InEdges(v) {
			e := s.d.Edges[ei]
			if time[e.From] == unscheduled {
				continue
			}
			if t := time[e.From] + s.d.Nodes[e.From].Kind.Latency() - ii*e.Dist; t > early {
				early = t
			}
		}
		var slot int
		if pt, ok := opts.Pin[v]; ok {
			if pt < early {
				return nil, fmt.Errorf("sched: pin %s@%d below earliest %d", s.d.Nodes[v].Name, pt, early)
			}
			slot = pt
		} else {
			slot = -1
			for t := early; t < early+ii; t++ {
				if fits(v, t) {
					slot = t
					break
				}
			}
			if slot == -1 {
				// Force placement (Rau's bump rule): at early, or just past
				// the op's previous position to guarantee progress.
				slot = early
				if everTime[v] != unscheduled && everTime[v] >= early {
					slot = everTime[v] + 1
				}
			}
		}

		// Evict whatever the forced placement displaces: resource conflicts
		// in the target modulo slot (lowest priority first), then scheduled
		// operations whose dependence on v is now violated.
		for !fits(v, slot) {
			victim := -1
			for u := 0; u < n; u++ {
				if u == v || time[u] == unscheduled || time[u]%ii != slot%ii {
					continue
				}
				if _, pinned := opts.Pin[u]; pinned {
					continue
				}
				if s.d.Nodes[v].Kind.IsMem() && !s.d.Nodes[u].Kind.IsMem() && mem[slot%ii] >= maxMem && alu[slot%ii] < maxPerSlot {
					continue // need a memory slot; evicting ALU-only ops will not help
				}
				if victim == -1 || less(victim, u) {
					victim = u // evict the *lowest* priority occupant
				}
			}
			if victim == -1 {
				return nil, fmt.Errorf("sched: cannot free slot %d at II=%d (pins too tight)", slot%ii, ii)
			}
			evict(victim)
			pending = insertSorted(pending, victim, less)
		}
		place(v, slot)
		for _, ei := range s.d.OutEdges(v) {
			e := s.d.Edges[ei]
			u := e.To
			if u == v || time[u] == unscheduled {
				continue
			}
			if time[u] < time[v]+s.d.Nodes[v].Kind.Latency()-ii*e.Dist {
				if _, pinned := opts.Pin[u]; pinned {
					return nil, fmt.Errorf("sched: pinned op %s violated by %s", s.d.Nodes[u].Name, s.d.Nodes[v].Name)
				}
				evict(u)
				pending = insertSorted(pending, u, less)
			}
		}
	}

	// Lifetime compaction (Huff-style): push every operation as late as its
	// consumers allow so values spend as little time in registers as
	// possible. ASAP placement alone parks loop invariants and loads at
	// cycle 0 with consumers many cycles later, which would turn into large
	// rotating-register demands at placement time.
	if !opts.NoCompact {
		s.compact(time, ii, maxPerSlot, maxMem, opts.Pin, alu, mem)
	}

	res := &Result{II: ii, Time: time}
	for _, t := range time {
		if t+1 > res.Length {
			res.Length = t + 1
		}
	}
	if err := res.Validate(s.d, maxPerSlot, maxMem); err != nil {
		return nil, fmt.Errorf("sched: internal error, produced invalid schedule: %w", err)
	}
	return res, nil
}

// compact is a lifetime-sensitive post-pass in the spirit of Huff (PLDI'93,
// cited by the paper): each operation is moved within its dependence slack to
// the slot that minimizes the kernel's rotating-register demand
// (sum over producers of ceil(maxCarriedSpan/II)), with total excess span as
// the tie-break. Pinned operations stay put; moving never violates the
// reservation table.
func (s *Scheduler) compact(time []int, ii, maxPerSlot, maxMem int, pin map[int]int, alu, mem []int) {
	order := make([]int, len(time))
	for i := range order {
		order[i] = i
	}
	// Latest-scheduled first, so downstream moves open slack upstream within
	// a single pass.
	sort.Slice(order, func(i, j int) bool {
		if time[order[i]] != time[order[j]] {
			return time[order[i]] > time[order[j]]
		}
		return order[i] < order[j]
	})

	// demandOf returns op's register demand with op placed at t (all other
	// times read from the schedule).
	demandOf := func(op, t int) int {
		maxSpan := 0
		for _, ei := range s.d.OutEdges(op) {
			e := s.d.Edges[ei]
			var span int
			if e.To == op {
				span = ii * e.Dist // self recurrences move with the op
			} else {
				span = time[e.To] - t + ii*e.Dist
			}
			if span > maxSpan {
				maxSpan = span
			}
		}
		if maxSpan <= 1 {
			return 0
		}
		return (maxSpan + ii - 1) / ii
	}
	// producerDemand returns producer p's demand with consumer v at t.
	producerDemand := func(p, v, t int) int {
		maxSpan := 0
		for _, ei := range s.d.OutEdges(p) {
			e := s.d.Edges[ei]
			var consT int
			switch {
			case e.To == p:
				maxSpan = maxIntSched(maxSpan, ii*e.Dist)
				continue
			case e.To == v:
				consT = t
			default:
				consT = time[e.To]
			}
			maxSpan = maxIntSched(maxSpan, consT-time[p]+ii*e.Dist)
		}
		if maxSpan <= 1 {
			return 0
		}
		return (maxSpan + ii - 1) / ii
	}
	// cost evaluates placing v at t: register demand of v and its producers,
	// with total excess span as the tie-break.
	cost := func(v, t int) (regs, excess int) {
		regs = demandOf(v, t)
		for _, ei := range s.d.InEdges(v) {
			e := s.d.Edges[ei]
			if e.From == v {
				continue
			}
			regs += producerDemand(e.From, v, t)
			if span := t - time[e.From] + ii*e.Dist; span > 1 {
				excess += span - 1
			}
		}
		for _, ei := range s.d.OutEdges(v) {
			e := s.d.Edges[ei]
			if e.To == v {
				continue
			}
			if span := time[e.To] - t + ii*e.Dist; span > 1 {
				excess += span - 1
			}
		}
		return regs, excess
	}

	for pass := 0; pass < 3; pass++ {
		moved := false
		for _, v := range order {
			if _, pinned := pin[v]; pinned {
				continue
			}
			earliest, latest := 0, -1
			hasSucc := false
			for _, ei := range s.d.InEdges(v) {
				e := s.d.Edges[ei]
				if e.From == v {
					continue
				}
				if b := time[e.From] + s.d.Nodes[e.From].Kind.Latency() - ii*e.Dist; b > earliest {
					earliest = b
				}
			}
			for _, ei := range s.d.OutEdges(v) {
				e := s.d.Edges[ei]
				if e.To == v {
					continue
				}
				hasSucc = true
				if b := time[e.To] - s.d.Nodes[v].Kind.Latency() + ii*e.Dist; latest == -1 || b < latest {
					latest = b
				}
			}
			if !hasSucc {
				latest = time[v] // sinks may only move earlier
			}
			if latest <= earliest {
				continue
			}
			isMem := s.d.Nodes[v].Kind.IsMem()
			bestT := time[v]
			bestRegs, bestExcess := cost(v, bestT)
			for t := earliest; t <= latest; t++ {
				if t == time[v] {
					continue
				}
				if t%ii != time[v]%ii {
					if alu[t%ii] >= maxPerSlot {
						continue
					}
					if isMem && mem[t%ii] >= maxMem {
						continue
					}
				}
				regs, excess := cost(v, t)
				if regs < bestRegs || (regs == bestRegs && excess < bestExcess) {
					bestT, bestRegs, bestExcess = t, regs, excess
				}
			}
			if bestT != time[v] {
				if bestT%ii != time[v]%ii {
					alu[time[v]%ii]--
					alu[bestT%ii]++
					if isMem {
						mem[time[v]%ii]--
						mem[bestT%ii]++
					}
				}
				time[v] = bestT
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

func maxIntSched(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScheduleMinII schedules at the smallest feasible II in [startII, maxII],
// incrementing on failure, mirroring the modulo-scheduling escalation loop
// every mapper in the paper uses.
func (s *Scheduler) ScheduleMinII(startII, maxII int, opts Options) (*Result, error) {
	if startII < 1 {
		startII = 1
	}
	var lastErr error
	for ii := startII; ii <= maxII; ii++ {
		res, err := s.Schedule(ii, opts)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("sched: no schedule up to II=%d: %w", maxII, lastErr)
}

func insertSorted(xs []int, v int, less func(a, b int) bool) []int {
	i := sort.Search(len(xs), func(i int) bool { return less(v, xs[i]) })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
