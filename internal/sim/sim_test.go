package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

func fig2DFG() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func fig2dMapping() *mapping.Mapping {
	m := mapping.New(fig2DFG(), arch.NewMesh(1, 2, 2), 2)
	m.Time = []int{0, 1, 2, 3}
	m.PE = []int{1, 0, 0, 1}
	return m
}

func TestReferenceSimpleChain(t *testing.T) {
	d := fig2DFG()
	res, err := Reference(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		a := dfg.InputValue(0, int64(k))
		if res.Values[0][k] != a {
			t.Fatalf("input stream wrong at %d", k)
		}
		if res.Values[1][k] != -a {
			t.Fatalf("b = %d, want %d", res.Values[1][k], -a)
		}
		if res.Values[3][k] != a+a {
			t.Fatalf("d = %d, want %d", res.Values[3][k], a+a)
		}
	}
}

func TestReferenceRecurrence(t *testing.T) {
	// acc += x with distance 1: acc[k] = sum of x[0..k].
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	res, err := Reference(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for k := 0; k < 4; k++ {
		sum += dfg.InputValue(x, int64(k))
		if res.Values[acc][k] != sum {
			t.Fatalf("acc[%d] = %d, want %d", k, res.Values[acc][k], sum)
		}
	}
}

func TestReferenceStoreAndLoad(t *testing.T) {
	b := dfg.NewBuilder("mem")
	addr := b.Input("addr")
	v := b.Op(dfg.Load, "ld", addr)
	st := b.Op(dfg.Store, "st", addr, v)
	d := b.Build()
	res, err := Reference(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		a := dfg.InputValue(addr, int64(k))
		if res.Values[v][k] != dfg.LoadValue(a) {
			t.Fatal("load value wrong")
		}
		if res.Stores[st][k] != [2]int64{a, dfg.LoadValue(a)} {
			t.Fatal("store record wrong")
		}
	}
}

func TestReferenceBadInputs(t *testing.T) {
	d := fig2DFG()
	if _, err := Reference(d, 0); err == nil {
		t.Error("accepted zero iterations")
	}
}

func TestRunFigure2d(t *testing.T) {
	m := fig2dMapping()
	res, err := Run(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(m, 6); err != nil {
		t.Fatal(err)
	}
	// The paper: a's value occupies 2 registers of PE 1.
	if res.MaxRF[1] != 2 {
		t.Errorf("PE1 peak RF occupancy = %d, want 2", res.MaxRF[1])
	}
	if res.MaxRF[0] != 0 {
		t.Errorf("PE0 peak RF occupancy = %d, want 0", res.MaxRF[0])
	}
	// Pipeline: last op of iteration 5 runs at 3 + 5*2 = 13 -> 14 cycles.
	if res.Cycles != 14 {
		t.Errorf("Cycles = %d, want 14", res.Cycles)
	}
}

func TestRunDetectsOutRegOverwrite(t *testing.T) {
	// x -> y with span 1, but another op z lands on x's PE one cycle after
	// x, overwriting the out register before... actually same-slot conflicts
	// are caught by Validate; build a case where the producer's next
	// *modulo* execution overwrites before a span-1 read of an earlier
	// iteration. With relaxed inter-iteration forwarding, a dist-1 edge at
	// II=1 reads iteration k-1's value one cycle later — fine. Instead,
	// corrupt deliberately: bypass Validate by crafting spans that Validate
	// accepts but where out-reg content cannot survive — not constructible
	// under the validator's rules, which is itself worth asserting: every
	// validated mapping must simulate cleanly.
	m := fig2dMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Check(m, 8); err != nil {
		t.Fatalf("validated mapping failed simulation: %v", err)
	}
}

func TestRunRejectsInvalidMapping(t *testing.T) {
	m := fig2dMapping()
	m.PE[3] = 0 // break register-carried same-PE rule
	if _, err := Run(m, 2); err == nil {
		t.Fatal("Run accepted an invalid mapping")
	}
	if _, err := Run(fig2dMapping(), 0); err == nil {
		t.Fatal("Run accepted zero iterations")
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	d := fig2DFG()
	a, _ := Reference(d, 3)
	b, _ := Reference(d, 3)
	b.Values[3][1]++
	err := Equivalent(d, a, b)
	if err == nil || !strings.Contains(err.Error(), "iteration 1") {
		t.Fatalf("want value mismatch error, got %v", err)
	}
}

// randomKernel builds a random valid kernel exercising memory, recurrences,
// and all ALU kinds.
func randomKernel(rng *rand.Rand) *dfg.DFG {
	b := dfg.NewBuilder("rand")
	n := 4 + rng.Intn(12)
	ids := []int{b.Input("i0")}
	kinds := []dfg.OpKind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.Min, dfg.Max, dfg.And, dfg.Or}
	for len(ids) < n {
		switch rng.Intn(7) {
		case 0:
			ids = append(ids, b.Input("i"))
		case 1:
			ids = append(ids, b.Op(dfg.Load, "ld", ids[rng.Intn(len(ids))]))
		case 2:
			ids = append(ids, b.Op(dfg.Neg, "ng", ids[rng.Intn(len(ids))]))
		default:
			k := kinds[rng.Intn(len(kinds))]
			ids = append(ids, b.Op(k, "op", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
		}
	}
	if rng.Intn(2) == 0 {
		acc := b.Op(dfg.Add, "acc", ids[rng.Intn(len(ids))])
		b.EdgeDist(acc, acc, 1, 1+rng.Intn(2))
	}
	if rng.Intn(3) == 0 {
		b.Op(dfg.Store, "st", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
	}
	return b.Build()
}

// Property (the big one): every mapping REGIMap produces executes on the
// CGRA model bit-identically to the sequential reference interpreter.
func TestMappedKernelsSimulateCorrectly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomKernel(rng)
		arrays := []*arch.CGRA{
			arch.NewMesh(2, 2, 4),
			arch.NewMesh(4, 4, 4),
			arch.NewMesh(4, 4, 2),
		}
		c := arrays[rng.Intn(len(arrays))]
		m, _, err := core.Map(context.Background(), d, c, core.Options{})
		if err != nil {
			return true // not mapping is acceptable; mis-executing is not
		}
		return Check(m, 5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: peak register-file occupancy observed in simulation never
// exceeds the static pressure accounting.
func TestRFOccupancyWithinStaticPressure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomKernel(rng)
		c := arch.NewMesh(4, 4, 8)
		m, _, err := core.Map(context.Background(), d, c, core.Options{})
		if err != nil {
			return true
		}
		res, err := Run(m, 6)
		if err != nil {
			return false
		}
		static := m.RegisterPressure()
		for pe := range static {
			if res.MaxRF[pe] > static[pe] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWriteVCD(t *testing.T) {
	m := fig2dMapping()
	var buf strings.Builder
	if err := WriteVCD(&buf, m, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module fig2 $end",
		"$var wire 64 v0 value $end",
		"$enddefinitions $end",
		"#0",
		"#1",
		"1b1", // PE1 busy when a fires at cycle 0 (emitted at #1 boundary)
		"sa_input o1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// The dump covers the full pipelined execution.
	if !strings.Contains(out, "#8") {
		t.Error("VCD too short")
	}
	if _, err := Run(m, 3); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVCDInvalidMapping(t *testing.T) {
	m := fig2dMapping()
	m.PE[3] = 0
	var buf strings.Builder
	if err := WriteVCD(&buf, m, 2); err == nil {
		t.Fatal("WriteVCD accepted an invalid mapping")
	}
}
