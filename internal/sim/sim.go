// Package sim executes kernels functionally, two ways:
//
//   - Reference interprets the DFG sequentially, iteration by iteration —
//     the ground-truth semantics of the loop; and
//   - Run executes a Mapping cycle by cycle on a software model of the CGRA
//     (output registers with overwrite detection, per-PE rotating register
//     files with occupancy tracking, shared row buses), following exactly the
//     storage rules the mappers assume.
//
// Check runs both and compares every produced value, proving a mapping is
// functionally correct and not merely structurally legal. Live-in and memory
// data are deterministic synthetic streams (dfg.InputValue / dfg.LoadValue);
// see DESIGN.md for why this substitution preserves the behaviour under test.
package sim

import (
	"fmt"

	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

// Result holds the value streams a kernel execution produced.
type Result struct {
	// Values[v][k] is the value operation v produced in iteration k; nil for
	// stores (they produce none).
	Values [][]int64
	// Stores[v][k] is the (address, value) pair store v wrote in iteration k.
	Stores map[int][][2]int64
	// MaxRF[pe] is the peak rotating-register-file occupancy observed (only
	// set by Run).
	MaxRF []int
	// Cycles is the number of machine cycles simulated (only set by Run).
	Cycles int
}

// Reference interprets the DFG sequentially for iters iterations. Operands
// reaching before iteration 0 read as zero.
func Reference(d *dfg.DFG, iters int) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if iters <= 0 {
		return nil, fmt.Errorf("sim: non-positive iteration count %d", iters)
	}
	order, ok := d.IntraGraph().TopoSort()
	if !ok {
		return nil, fmt.Errorf("sim: intra-iteration cycle in %s", d.Name)
	}
	res := &Result{
		Values: make([][]int64, d.N()),
		Stores: map[int][][2]int64{},
	}
	for v := range res.Values {
		if d.Nodes[v].Kind != dfg.Store {
			res.Values[v] = make([]int64, iters)
		}
	}
	for k := 0; k < iters; k++ {
		for _, v := range order {
			nd := d.Nodes[v]
			args := gatherArgs(d, res.Values, v, k)
			switch nd.Kind {
			case dfg.Input:
				res.Values[v][k] = dfg.InputValue(v, int64(k))
			case dfg.Counter:
				res.Values[v][k] = int64(k)
			case dfg.Load:
				res.Values[v][k] = dfg.LoadValue(args[0])
			case dfg.Store:
				res.Stores[v] = append(res.Stores[v], [2]int64{args[0], args[1]})
			default:
				res.Values[v][k] = dfg.Eval(nd.Kind, nd.Value, args)
			}
		}
	}
	return res, nil
}

// gatherArgs collects operand values for op v at iteration k by port order.
func gatherArgs(d *dfg.DFG, values [][]int64, v, k int) []int64 {
	n := len(d.InEdges(v))
	args := make([]int64, n)
	for _, ei := range d.InEdges(v) {
		e := d.Edges[ei]
		src := int64(0)
		if ki := k - e.Dist; ki >= 0 {
			src = values[e.From][ki]
		}
		if e.Port >= n {
			// Variadic-port safety; Validate rejects this for fixed arity.
			extended := make([]int64, e.Port+1)
			copy(extended, args)
			args = extended
			n = len(args)
		}
		args[e.Port] = src
	}
	return args
}

// rfEntry is one value parked in a PE's register file.
type rfEntry struct {
	value int64
	reads int // outstanding register-carried reads; evicted at zero
}

// rfKey identifies a parked value: producer operation and iteration.
type rfKey struct {
	op   int
	iter int
}

// outReg models a PE's output register with provenance for overwrite
// detection.
type outReg struct {
	valid bool
	op    int
	iter  int
	value int64
}

// Firing is one operation execution, reported to trace observers.
type Firing struct {
	Op    int
	PE    int
	Iter  int
	Value int64 // 0 for stores
}

// Run executes the mapping for iters iterations of every operation and
// returns the produced streams. It errors on any storage-model violation:
// reading an overwritten output register, a missing register-file entry, a
// register-file overflow, or a row-bus conflict.
func Run(m *mapping.Mapping, iters int) (*Result, error) {
	return runObserved(m, iters, nil)
}

// runObserved is Run with a per-cycle observer (used by the VCD tracer).
func runObserved(m *mapping.Mapping, iters int, observe func(cycle int, fires []Firing)) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if iters <= 0 {
		return nil, fmt.Errorf("sim: non-positive iteration count %d", iters)
	}
	d := m.D
	numPEs := m.C.NumPEs()

	// Expected register-file reads per produced value: one per incoming
	// register-carried edge at the consumer.
	carriedReads := make([]int, d.N())
	for _, e := range d.Edges {
		if m.Span(e) > 1 {
			carriedReads[e.From]++
		}
	}

	res := &Result{
		Values: make([][]int64, d.N()),
		Stores: map[int][][2]int64{},
		MaxRF:  make([]int, numPEs),
	}
	for v := range res.Values {
		if d.Nodes[v].Kind != dfg.Store {
			res.Values[v] = make([]int64, iters)
		}
	}

	regs := make([]map[rfKey]*rfEntry, numPEs)
	for p := range regs {
		regs[p] = map[rfKey]*rfEntry{}
	}
	out := make([]outReg, numPEs)

	lastCycle := 0
	for v := range d.Nodes {
		if t := m.Time[v] + (iters-1)*m.II; t > lastCycle {
			lastCycle = t
		}
	}

	type write struct {
		pe    int
		op    int
		iter  int
		value int64
		park  bool // also insert into the register file
	}
	fanout := m.C.Fanout()
	for t := 0; t <= lastCycle; t++ {
		var writes []write
		var fires []Firing
		busLoad := map[int]int{} // bus group -> mem ops issued this cycle
		var outReads map[int]int // producer -> remote readers this cycle
		var readPairs map[[2]int]bool
		if fanout > 0 {
			outReads = map[int]int{}
			readPairs = map[[2]int]bool{}
		}
		for v := range d.Nodes {
			if t < m.Time[v] || (t-m.Time[v])%m.II != 0 {
				continue
			}
			k := (t - m.Time[v]) / m.II
			if k >= iters {
				continue
			}
			nd := d.Nodes[v]
			pe := m.PE[v]
			if nd.Kind.IsMem() {
				row := m.C.RowOf(pe)
				if !m.C.RowBusOK(row) {
					return nil, fmt.Errorf("sim: cycle %d: op %s issues on row %d whose bus is dead",
						t, nd.Name, row)
				}
				g := m.C.BusGroupOf(pe)
				if busLoad[g]++; busLoad[g] > m.C.BusGroupCap(g) {
					return nil, fmt.Errorf("sim: cycle %d: op %s oversubscribes bus group %d (capacity %d)",
						t, nd.Name, g, m.C.BusGroupCap(g))
				}
			}
			if fanout > 0 {
				// Each span-1 in-edge from another PE is one same-cycle read of
				// that producer's output register over a fabric link.
				for _, ei := range d.InEdges(v) {
					e := d.Edges[ei]
					if e.From == v || m.Span(e) != 1 || m.PE[e.From] == pe {
						continue
					}
					pair := [2]int{e.From, v}
					if readPairs[pair] {
						continue // parallel edge: same consumer, one read
					}
					readPairs[pair] = true
					if outReads[e.From]++; outReads[e.From] > fanout {
						return nil, fmt.Errorf("sim: cycle %d: op %s's output register feeds %d remote PEs, fabric fanout is %d",
							t, d.Nodes[e.From].Name, outReads[e.From], fanout)
					}
				}
			}
			args, err := readOperands(m, out, regs, v, k)
			if err != nil {
				return nil, fmt.Errorf("sim: cycle %d: %w", t, err)
			}
			var value int64
			isStore := false
			switch nd.Kind {
			case dfg.Input:
				value = dfg.InputValue(v, int64(k))
			case dfg.Counter:
				value = int64(k)
			case dfg.Load:
				value = dfg.LoadValue(args[0])
			case dfg.Store:
				res.Stores[v] = append(res.Stores[v], [2]int64{args[0], args[1]})
				isStore = true
			default:
				value = dfg.Eval(nd.Kind, nd.Value, args)
			}
			if !isStore {
				res.Values[v][k] = value
				writes = append(writes, write{pe: pe, op: v, iter: k, value: value, park: carriedReads[v] > 0})
			}
			if observe != nil {
				fires = append(fires, Firing{Op: v, PE: pe, Iter: k, Value: value})
			}
		}
		if observe != nil {
			observe(t, fires)
		}
		// Commit phase: reads above saw the state of cycle t; results become
		// visible at t+1.
		for _, w := range writes {
			out[w.pe] = outReg{valid: true, op: w.op, iter: w.iter, value: w.value}
			if w.park {
				regs[w.pe][rfKey{w.op, w.iter}] = &rfEntry{value: w.value, reads: carriedReads[w.op]}
				if occ := len(regs[w.pe]); occ > res.MaxRF[w.pe] {
					res.MaxRF[w.pe] = occ
				}
				if len(regs[w.pe]) > m.C.RegsAt(w.pe) {
					return nil, fmt.Errorf("sim: cycle %d: PE %d register file overflows (%d > %d)",
						t, w.pe, len(regs[w.pe]), m.C.RegsAt(w.pe))
				}
			}
		}
	}
	res.Cycles = lastCycle + 1
	return res, nil
}

// readOperands fetches op v's operands for iteration k from the machine
// state, enforcing the storage rules.
func readOperands(m *mapping.Mapping, out []outReg, regs []map[rfKey]*rfEntry, v, k int) ([]int64, error) {
	d := m.D
	args := make([]int64, len(d.InEdges(v)))
	for _, ei := range d.InEdges(v) {
		e := d.Edges[ei]
		ki := k - e.Dist
		if ki < 0 {
			args[e.Port] = 0 // before the first iteration: zero, as Reference
			continue
		}
		span := m.Span(e)
		if span == 1 {
			r := out[m.PE[e.From]]
			if !r.valid || r.op != e.From || r.iter != ki {
				return nil, fmt.Errorf("op %s: output register of PE %d no longer holds %s[%d] (has %s[%d])",
					d.Nodes[v].Name, m.PE[e.From], d.Nodes[e.From].Name, ki, holderName(d, r), r.iter)
			}
			args[e.Port] = r.value
			continue
		}
		entry := regs[m.PE[v]][rfKey{e.From, ki}]
		if entry == nil {
			return nil, fmt.Errorf("op %s: PE %d register file lost %s[%d]",
				d.Nodes[v].Name, m.PE[v], d.Nodes[e.From].Name, ki)
		}
		args[e.Port] = entry.value
		entry.reads--
		if entry.reads == 0 {
			delete(regs[m.PE[v]], rfKey{e.From, ki})
		}
	}
	return args, nil
}

func holderName(d *dfg.DFG, r outReg) string {
	if !r.valid {
		return "<empty>"
	}
	return d.Nodes[r.op].Name
}

// Check runs the mapping on the CGRA model and the reference interpreter and
// compares every value and store stream. A nil error proves functional
// equivalence over the simulated iterations.
func Check(m *mapping.Mapping, iters int) error {
	got, err := Run(m, iters)
	if err != nil {
		return err
	}
	want, err := Reference(m.D, iters)
	if err != nil {
		return err
	}
	return Equivalent(m.D, got, want)
}

// Equivalent compares two executions of the same kernel.
func Equivalent(d *dfg.DFG, got, want *Result) error {
	for v := range d.Nodes {
		if d.Nodes[v].Kind == dfg.Store {
			g, w := got.Stores[v], want.Stores[v]
			if len(g) != len(w) {
				return fmt.Errorf("sim: store %s wrote %d times, want %d", d.Nodes[v].Name, len(g), len(w))
			}
			for k := range g {
				if g[k] != w[k] {
					return fmt.Errorf("sim: store %s iteration %d wrote %v, want %v", d.Nodes[v].Name, k, g[k], w[k])
				}
			}
			continue
		}
		g, w := got.Values[v], want.Values[v]
		if len(g) != len(w) {
			return fmt.Errorf("sim: op %s produced %d iterations, want %d", d.Nodes[v].Name, len(g), len(w))
		}
		for k := range g {
			if g[k] != w[k] {
				return fmt.Errorf("sim: op %s iteration %d = %d, want %d", d.Nodes[v].Name, k, g[k], w[k])
			}
		}
	}
	return nil
}
