// Package portfolio races diversified mapping attempts in parallel — the
// multi-start strategy exact and heuristic CGRA mappers use to buy back
// compile latency without changing result quality (cf. SAT-MapIt's portfolio
// solving). REGIMap's per-II search is deterministic, so the axis that
// parallelizes without touching results is the II escalation itself: a
// K-wide portfolio speculates on a window of K consecutive IIs, running the
// caller's unmodified options at each, and returns the lowest II that maps —
// exactly the II (and, the search being deterministic, exactly the mapping)
// a single sequential escalation would have reached. Parallelism buys
// wall-clock on escalation-heavy kernels; it never changes the answer.
//
// Determinism is a hard contract: the winner is the racer with the lowest
// II, ties broken in favor of the un-perturbed base search. Losers are
// cancelled as soon as they can no longer win: when racer i succeeds, every
// racer with a higher index (a worse II, or a scout at the same II) is
// cancelled immediately, and the race resolves once every lower index has
// finished.
//
// Options.Explore adds the second, quality-seeking axis: at every raced II,
// E extra scouts run budget-widened variants of the base search (see
// Variant). A scout can unlock an II the base budget misses, so exploring
// portfolios may beat — never trail — the base escalation; they remain
// reproducible run-to-run for a fixed (Attempts, Explore, Seed) but are no
// longer invariant in K. Explore is off by default, which is what keeps
// `-portfolio 1` and `-portfolio K` byte-identical.
package portfolio

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/dresc"
	"regimap/internal/engine"
	"regimap/internal/exact"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/obs"
)

// Failure taxonomy (regimap/internal/maperr), re-exported for callers. A
// racer goroutine that panics is isolated: the panic is recovered into a
// *maperr.WorkerPanicError (errors.Is(err, ErrWorkerPanic)), the remaining
// racers keep racing, and the panic only surfaces in the returned error when
// the whole portfolio comes up empty.
var (
	ErrNoMapping   = maperr.ErrNoMapping
	ErrAborted     = maperr.ErrAborted
	ErrWorkerPanic = maperr.ErrWorkerPanic
)

// WorkerPanicError carries the panic value and stack of a crashed racer.
type WorkerPanicError = maperr.WorkerPanicError

// Options configures a REGIMap portfolio.
type Options struct {
	// Attempts is K, the width of the speculative II window: the portfolio
	// races the base search at K consecutive IIs at a time (<=1: a single
	// attempt per II, equivalent to core.Map run one II at a time). Any K
	// returns the same mapping — wider only lowers wall-clock.
	Attempts int
	// Explore adds this many budget-widened scout searches at every raced II
	// (0: none). Scouts can unlock IIs the base budget misses, so exploring
	// portfolios may improve the II at the cost of K-invariance; results stay
	// reproducible for a fixed (Attempts, Explore, Seed).
	Explore int
	// Seed rotates which widening lands on which scout index, so distinct
	// seeds explore distinct diversification mixes. Unused when Explore is 0.
	// Deterministic for a fixed value (0 is a valid seed).
	Seed int64
	// Base configures the canonical search raced at every II and is the
	// template scouts perturb. Base.MinII is ignored — the portfolio owns II
	// escalation.
	Base core.Options
	// Exact, when non-nil, races the exact SAT engine (internal/exact)
	// beside the heuristic portfolio as an anytime refiner: the heuristics
	// answer fast, the exact engine escalates II-by-II from MII, and
	// whichever side settles the lowest II wins. The reduction stays
	// deterministic — exact always finishes every II strictly below the
	// heuristic answer (its budgets are conflict counts, so those verdicts
	// are machine-independent) and the heuristic wins ties on II — with one
	// caveat: when both sides reach the same II, which side's equally-good
	// mapping is returned can depend on timing; the II, the perf metric, and
	// the certificate's verdicts never do. Stats.Exact carries the
	// certificate either way, so even a heuristic win reports a certified
	// lower bound. nil (the default) keeps Map byte-identical to the pure
	// heuristic portfolio.
	Exact *exact.Options
}

// Stats reports how a portfolio run went.
type Stats struct {
	MII int
	II  int // achieved II (0 when mapping failed)
	// Winner indexes the winning racer within its II window: II offset times
	// (1+Explore) plus the scout slot, so 0 is the base search at the
	// window's lowest II. -1 on failure.
	Winner    int
	Attempts  int // schedule/place rounds summed over every racer that reported back
	Races     int // IIs raced, including speculated ones a serial escalation would skip
	Cancelled int // racer runs cancelled after the winner was decided
	Panics    int // racer goroutines that panicked (recovered, not crashed)
	Elapsed   time.Duration
	// Exact is the certificate the anytime exact racer accumulated, nil
	// unless Options.Exact was set. It is attached on every outcome — a
	// heuristic win still reports the certified lower bound.
	Exact *exact.Certificate
	// ExactWinner reports that the returned mapping came from the exact
	// racer (Winner is -1 in that case: no heuristic racer won).
	ExactWinner bool
}

// Perf returns the paper's performance metric MII/II (0 on failure).
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Map races the base REGIMap search over a K-wide speculative II window —
// plus Explore budget-widened scouts per II — and returns the deterministic
// winner (see the package comment for the tiebreak contract). Cancelling ctx
// aborts every racer within one schedule/place attempt.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	w := opts.Attempts
	if w < 1 {
		w = 1
	}
	e := opts.Explore
	if e < 0 {
		e = 0
	}
	perII := 1 + e // base racer plus scouts, per II of the window
	tr := obs.From(ctx).Named("portfolio", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows), Winner: -1}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Attempts))
	}
	maxII := opts.Base.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 16 // mirror core.Map's default ceiling
	}
	base := engine.MustLookup("regimap")
	scouts := make([]core.Options, e)
	for s := range scouts {
		scouts[s] = Variant(opts.Base, s+1, opts.Seed)
	}
	var xr *exactRacer
	if opts.Exact != nil {
		xr = startExact(ctx, d, c, *opts.Exact)
	}
	var panics []error
	for lo := stats.MII; lo <= maxII; lo += w {
		if err := ctx.Err(); err != nil {
			if xr != nil {
				_, _, cert := xr.wait()
				stats.Exact = &cert
			}
			done()
			return nil, stats, maperr.Aborted(err, "portfolio: mapping %s aborted: %v", d.Name, err)
		}
		if xr != nil {
			// Every II below lo has already been raced heuristically and
			// failed, so an exact mapping at II <= lo can no longer be beaten.
			if em, eii := xr.best(); em != nil && eii <= lo {
				_, _, cert := xr.wait()
				stats.Exact = &cert
				stats.II, stats.Winner, stats.ExactWinner = eii, -1, true
				done()
				return em, stats, nil
			}
		}
		width := w
		if lo+width-1 > maxII {
			width = maxII - lo + 1
		}
		stats.Races += width
		// Racer index r maps to II lo + r/perII, slot r%perII (slot 0: the
		// base search). Lower index therefore means lower II, base before
		// scouts — exactly race's preference order.
		sp := tr.Start("portfolio.window")
		m, winner, crashed := race(ctx, width*perII, stats, func(actx context.Context, r int) (*mapping.Mapping, int) {
			o := opts.Base
			if s := r % perII; s > 0 {
				o = scouts[s-1]
			}
			ii := lo + r/perII
			res, err := base.Map(actx, d, c, engine.Options{MinII: ii, MaxII: ii, Extra: o})
			rounds := 0
			if res != nil {
				rounds = res.Rounds
			}
			if err != nil || res == nil {
				return nil, rounds
			}
			return res.Mapping, rounds
		})
		sp.Field("lo", int64(lo))
		sp.Field("width", int64(width))
		sp.Field("racers", int64(width*perII))
		sp.FieldBool("ok", m != nil)
		sp.End()
		panics = append(panics, crashed...)
		if m != nil {
			iiH := lo + winner/perII
			if xr != nil {
				// The heuristic answer bounds the exact escalation: finish
				// cancels exact work at II >= iiH, waits out the (conflict-
				// budgeted, hence deterministic) verdicts below it, and the
				// exact mapping wins only by strictly beating the heuristic.
				em, eii, cert := xr.finish(iiH)
				stats.Exact = &cert
				if em != nil && eii < iiH {
					stats.II, stats.Winner, stats.ExactWinner = eii, -1, true
					done()
					return em, stats, nil
				}
			}
			stats.II = iiH
			stats.Winner = winner
			done()
			return m, stats, nil
		}
	}
	if xr != nil {
		// The heuristics came up empty; let the exact racer finish its
		// escalation window — it may still hold or find the only mapping.
		em, eii, cert := xr.wait()
		stats.Exact = &cert
		if em != nil && ctx.Err() == nil {
			stats.II, stats.Winner, stats.ExactWinner = eii, -1, true
			done()
			return em, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "portfolio: mapping %s aborted: %v", d.Name, err)
	}
	causes := append([]error{maperr.ErrNoMapping}, panics...)
	return nil, stats, maperr.Wrap(causes, "portfolio: no mapping for %s on %s up to II=%d (window %d, %d scouts/II)", d.Name, c, maxII, w, e)
}

// exactRacer drives one exact.Run on its own goroutine, stepping II-by-II so
// the race can stop it at the exact moment more escalation became pointless.
type exactRacer struct {
	mu         sync.Mutex
	m          *mapping.Mapping
	ii         int
	cert       exact.Certificate
	stepII     int
	stepCancel context.CancelFunc
	heurBest   atomic.Int64 // lowest heuristic II found (0: none yet)
	done       chan struct{}
}

// startExact launches the exact escalation. Steps at IIs at or above the
// heuristic answer are skipped (or cancelled mid-flight); steps below it
// always run to their conflict budget, which keeps the reduction
// deterministic.
func startExact(ctx context.Context, d *dfg.DFG, c *arch.CGRA, o exact.Options) *exactRacer {
	x := &exactRacer{done: make(chan struct{})}
	go func() {
		defer close(x.done)
		r, err := exact.NewRun(d, c, o)
		if err != nil {
			x.mu.Lock()
			x.cert = r.Certificate()
			x.mu.Unlock()
			return
		}
		defer func() {
			x.mu.Lock()
			x.cert = r.Certificate()
			if m := r.Mapping(); m != nil {
				x.m, x.ii = m, x.cert.BestII
			}
			x.mu.Unlock()
		}()
		for !r.Done() {
			if bh := x.heurBest.Load(); bh != 0 && int64(r.NextII()) >= bh {
				break
			}
			stepCtx, cancel := context.WithCancel(ctx)
			x.mu.Lock()
			x.stepII, x.stepCancel = r.NextII(), cancel
			x.mu.Unlock()
			_, err := r.Step(stepCtx)
			cancel()
			x.mu.Lock()
			x.stepCancel = nil
			x.cert = r.Certificate()
			if m := r.Mapping(); m != nil {
				x.m, x.ii = m, x.cert.BestII
			}
			x.mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	return x
}

// best snapshots the exact racer's mapping so far, if any.
func (x *exactRacer) best() (*mapping.Mapping, int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.m, x.ii
}

// finish tells the racer the heuristics answered at heurII, cancels any
// in-flight step that can no longer win, waits for the racer to settle, and
// returns its final state.
func (x *exactRacer) finish(heurII int) (*mapping.Mapping, int, exact.Certificate) {
	x.heurBest.Store(int64(heurII))
	x.mu.Lock()
	if x.stepCancel != nil && x.stepII >= heurII {
		x.stepCancel()
	}
	x.mu.Unlock()
	return x.wait()
}

// wait blocks until the racer goroutine exits and returns its final state.
func (x *exactRacer) wait() (*mapping.Mapping, int, exact.Certificate) {
	<-x.done
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.m, x.ii, x.cert
}

// DRESCOptions configures a DRESC portfolio: K annealing runs differing only
// in their RNG seed race at each II.
type DRESCOptions struct {
	// Attempts is K (<=1: a single run).
	Attempts int
	// Base configures attempt 0; attempt i anneals with Seed Base.Seed+i.
	// Base.MinII is ignored — the portfolio owns II escalation.
	Base dresc.Options
}

// MapDRESC races K seed-diversified DRESC annealing runs per II with the same
// deterministic lowest-index tiebreak as Map. Annealing quality depends on
// the seed, so — like Map's Explore mode — a wider DRESC portfolio can reach
// an II a single run misses; results are reproducible for a fixed
// (Attempts, Base.Seed) but not invariant in K.
func MapDRESC(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts DRESCOptions) (*dresc.Placement, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	k := opts.Attempts
	if k <= 1 {
		k = 1
	}
	tr := obs.From(ctx).Named("dresc-portfolio", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows), Winner: -1}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Attempts))
	}
	maxII := opts.Base.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 8 // mirror dresc.Map's default ceiling
	}
	anneal := engine.MustLookup("dresc")
	var panics []error
	for ii := stats.MII; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			done()
			return nil, stats, maperr.Aborted(err, "portfolio: mapping %s aborted: %v", d.Name, err)
		}
		stats.Races++
		sp := tr.Start("portfolio.window")
		p, winner, crashed := race(ctx, k, stats, func(actx context.Context, attempt int) (*dresc.Placement, int) {
			o := opts.Base
			o.Seed += int64(attempt)
			res, err := anneal.Map(actx, d, c, engine.Options{MinII: ii, MaxII: ii, Extra: o})
			moves := 0
			if res != nil {
				moves = res.Rounds
			}
			if err != nil || res == nil {
				return nil, moves
			}
			p, _ := res.Artifact.(*dresc.Placement)
			return p, moves
		})
		sp.Field("lo", int64(ii))
		sp.Field("width", 1)
		sp.Field("racers", int64(k))
		sp.FieldBool("ok", p != nil)
		sp.End()
		panics = append(panics, crashed...)
		if p != nil {
			stats.II = ii
			stats.Winner = winner
			done()
			return p, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "portfolio: mapping %s aborted: %v", d.Name, err)
	}
	causes := append([]error{maperr.ErrNoMapping}, panics...)
	return nil, stats, maperr.Wrap(causes, "portfolio: no DRESC mapping for %s on %s up to II=%d (%d attempts/II)", d.Name, c, maxII, k)
}

// race runs k racers concurrently and resolves the deterministic winner: the
// lowest racer index that succeeded. Callers order indices by preference
// (lower II first, base search before scouts). When racer i succeeds, racers
// with higher indices are cancelled at once (they cannot win); the race
// returns as soon as every index below the best success has resolved,
// cancelling whatever else is still running. It returns the zero value when
// no racer succeeds. Every racer goroutine has exited by the time race
// returns, so callers never leak work past a window.
//
// A racer that panics does not crash the process or abort its siblings: the
// panic is recovered into a *maperr.WorkerPanicError on the result channel,
// the racer counts as failed, and the collected panic errors are returned so
// the caller can surface them if the whole race comes up empty.
func race[T any](ctx context.Context, k int, stats *Stats, run func(ctx context.Context, attempt int) (T, int)) (T, int, []error) {
	var zero T
	runSafe := func(actx context.Context, i int) (res T, rounds int, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, rounds = zero, 0
				err = &maperr.WorkerPanicError{
					Worker: fmt.Sprintf("portfolio racer %d", i),
					Value:  v,
					Stack:  debug.Stack(),
				}
			}
		}()
		res, rounds = run(actx, i)
		return res, rounds, nil
	}
	if k == 1 {
		res, rounds, err := runSafe(ctx, 0)
		stats.Attempts += rounds
		if err != nil {
			stats.Panics++
			return zero, -1, []error{err}
		}
		if isNil(res) {
			return zero, -1, nil
		}
		return res, 0, nil
	}
	type outcome struct {
		index  int
		result T
		ok     bool
		rounds int
		err    error
	}
	results := make(chan outcome, k)
	cancels := make([]context.CancelFunc, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		wg.Add(1)
		go func(i int, actx context.Context) {
			defer wg.Done()
			res, rounds, err := runSafe(actx, i)
			results <- outcome{index: i, result: res, ok: err == nil && !isNil(res), rounds: rounds, err: err}
		}(i, actx)
	}

	done := make([]bool, k)
	success := make([]T, k)
	cancelled := make([]bool, k)
	var panics []error
	best := k
	winner := -1
	var won T
	for remaining := k; remaining > 0; remaining-- {
		o := <-results
		done[o.index] = true
		stats.Attempts += o.rounds
		if o.err != nil {
			stats.Panics++
			panics = append(panics, o.err)
		}
		if o.ok && o.index < best {
			best = o.index
			success[o.index] = o.result
			for j := best + 1; j < k; j++ {
				if !done[j] && !cancelled[j] {
					cancelled[j] = true
					stats.Cancelled++
					cancels[j]()
				}
			}
		}
		if best < k {
			decided := true
			for j := 0; j < best; j++ {
				if !done[j] {
					decided = false
					break
				}
			}
			if decided {
				won, winner = success[best], best
				break
			}
		}
	}
	for _, cancel := range cancels {
		cancel()
	}
	wg.Wait() // results is buffered k-deep, so racers always finish their send
	// Drain outcomes that arrived after the decision so a late panic is still
	// counted and reported.
	for drained := false; !drained; {
		select {
		case o := <-results:
			stats.Attempts += o.rounds
			if o.err != nil {
				stats.Panics++
				panics = append(panics, o.err)
			}
		default:
			drained = true
		}
	}
	if winner < 0 {
		return zero, -1, panics
	}
	return won, winner, panics
}

// isNil reports whether a result of pointer type is nil (race's success
// test; T is always a pointer in this package).
func isNil[T any](v T) bool {
	switch x := any(v).(type) {
	case *mapping.Mapping:
		return x == nil
	case *dresc.Placement:
		return x == nil
	default:
		return false
	}
}

// Variant derives scout s's mapper configuration for Explore mode. Scout 0
// is always the unmodified base — the determinism contract depends on it.
// Higher scouts widen the clique engine's search budgets (more greedy seeds,
// more intersection re-seedings, more promote-and-retry rounds), each a
// different mix, so a scout can place a configuration the base budget gives
// up on and unlock a lower II. Widened budgets also feed learn-from-failure
// different partial cliques, so scouts reschedule along genuinely different
// paths rather than replaying the base search slower. Seed rotates the table
// so different portfolio seeds assign different widenings to the same index.
func Variant(base core.Options, scout int, seed int64) core.Options {
	if scout <= 0 {
		return base
	}
	o := base
	step := 1 + (scout-1)/4 // widen further as the scout pool grows
	offset := int(uint64(seed) % 4)
	switch (scout - 1 + offset) % 4 {
	case 0: // wider greedy seeding: more clique starting points
		o.Clique.MaxSeeds = defaulted(base.Clique.MaxSeeds, 16) + 8*step
	case 1: // narrower seeding, deeper intersection re-seeding
		o.Clique.MaxSeeds = maxInt(4, defaulted(base.Clique.MaxSeeds, 16)/2)
		o.Clique.MaxIntersections = defaulted(base.Clique.MaxIntersections, 32) * (1 + step)
	case 2: // more promote-and-retry rounds in the grouped constructive pass
		o.Clique.GroupRounds = defaulted(base.Clique.GroupRounds, 6) + 2*step
	case 3: // widen every clique budget at once: the brute-force scout
		o.Clique.MaxSeeds = defaulted(base.Clique.MaxSeeds, 16) + 4*step
		o.Clique.MaxIntersections = defaulted(base.Clique.MaxIntersections, 32) + 16*step
		o.Clique.GroupRounds = defaulted(base.Clique.GroupRounds, 6) + step
	}
	return o
}

func defaulted(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
