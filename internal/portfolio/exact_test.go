package portfolio

import (
	"context"
	"errors"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/exact"
	"regimap/internal/kernels"
	"regimap/internal/maperr"
	"regimap/internal/sim"
)

func exactKernel(t *testing.T, name string) *dfg.DFG {
	t.Helper()
	k, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("kernel %s missing", name)
	}
	return k.Build()
}

func TestExactRacerAttachesCertificate(t *testing.T) {
	d := exactKernel(t, "dotprod_sat")
	c := arch.NewMesh(4, 4, 4)
	m, st, err := Map(context.Background(), d, c, Options{Exact: &exact.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || st.II == 0 {
		t.Fatal("no mapping")
	}
	if st.Exact == nil {
		t.Fatal("exact racer enabled but no certificate attached")
	}
	if st.Exact.MII != st.MII {
		t.Fatalf("certificate MII %d != portfolio MII %d", st.Exact.MII, st.MII)
	}
	if err := sim.Check(m, 4); err != nil {
		t.Fatal(err)
	}
}

func TestExactRacerWinsWhenHeuristicsExhausted(t *testing.T) {
	d := exactKernel(t, "dotprod_sat")
	c := arch.NewMesh(4, 4, 4)
	pes, memSlots := c.MIIResources()
	mii := d.MII(pes, memSlots)
	// Cap the heuristic escalation below MII so it never races: the exact
	// engine is then the only path to a mapping.
	opts := Options{Exact: &exact.Options{}}
	opts.Base.MaxII = mii - 1
	m, st, err := Map(context.Background(), d, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ExactWinner || st.Winner != -1 {
		t.Fatalf("exact racer should have won: %+v", st)
	}
	if st.II != mii {
		t.Fatalf("II = %d, want MII %d", st.II, mii)
	}
	if st.Exact == nil || st.Exact.OptimalII != mii {
		t.Fatalf("want an optimality proof at MII, got %+v", st.Exact)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Check(m, 4); err != nil {
		t.Fatal(err)
	}
}

func TestExactRacerDeterministicII(t *testing.T) {
	d := exactKernel(t, "iir_biquad")
	c := arch.NewMesh(4, 4, 4)
	var first *Stats
	for i := 0; i < 3; i++ {
		m, st, err := Map(context.Background(), d, c, Options{Attempts: 3, Exact: &exact.Options{}})
		if err != nil || m == nil {
			t.Fatal(err)
		}
		if first == nil {
			first = st
			continue
		}
		if st.II != first.II || st.MII != first.MII {
			t.Fatalf("run %d: II %d/%d, want %d/%d", i, st.II, st.MII, first.II, first.MII)
		}
	}
}

func TestExactRacerAborts(t *testing.T) {
	d := exactKernel(t, "sobel")
	c := arch.NewMesh(4, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Map(ctx, d, c, Options{Exact: &exact.Options{}})
	if err == nil {
		t.Fatal("cancelled context must abort")
	}
	if !errors.Is(err, maperr.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
}
