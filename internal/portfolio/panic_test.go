package portfolio

import (
	"context"
	"errors"
	"strings"
	"testing"

	"regimap/internal/maperr"
	"regimap/internal/mapping"
)

// TestRacePanicIsolation proves a panicking racer is recovered into a typed
// error while its siblings keep racing: racer 1 panics, racer 2 still wins.
func TestRacePanicIsolation(t *testing.T) {
	stats := &Stats{}
	won := &mapping.Mapping{}
	res, winner, panics := race(context.Background(), 4, stats, func(ctx context.Context, i int) (*mapping.Mapping, int) {
		switch i {
		case 1:
			panic("deliberate test panic")
		case 2:
			return won, 7
		default:
			return nil, 1
		}
	})
	if res != won || winner != 2 {
		t.Fatalf("winner = %d (res %p), want racer 2", winner, res)
	}
	if stats.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", stats.Panics)
	}
	if len(panics) != 1 {
		t.Fatalf("got %d panic errors, want 1", len(panics))
	}
	err := panics[0]
	if !errors.Is(err, ErrWorkerPanic) {
		t.Errorf("panic error is not ErrWorkerPanic: %v", err)
	}
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("panic error is not a *WorkerPanicError: %T", err)
	}
	if wp.Worker != "portfolio racer 1" {
		t.Errorf("Worker = %q", wp.Worker)
	}
	if wp.Value != "deliberate test panic" {
		t.Errorf("Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 || !strings.Contains(string(wp.Stack), "panic_test") {
		t.Errorf("stack does not point at the panic site:\n%s", wp.Stack)
	}
	if !strings.Contains(err.Error(), "deliberate test panic") {
		t.Errorf("error message hides the panic value: %v", err)
	}
}

// TestRacePanicSingleRacer exercises the k==1 inline path, which runs on the
// caller's goroutine and must be guarded just the same.
func TestRacePanicSingleRacer(t *testing.T) {
	stats := &Stats{}
	res, winner, panics := race(context.Background(), 1, stats, func(ctx context.Context, i int) (*mapping.Mapping, int) {
		panic(errors.New("boom"))
	})
	if res != nil || winner != -1 {
		t.Fatalf("got winner %d, want failure", winner)
	}
	if stats.Panics != 1 || len(panics) != 1 {
		t.Fatalf("Panics = %d, errors = %d, want 1 and 1", stats.Panics, len(panics))
	}
	if !errors.Is(panics[0], maperr.ErrWorkerPanic) {
		t.Fatalf("not a worker panic: %v", panics[0])
	}
}

// TestRaceAllPanic: every racer dying must still resolve the race (no
// deadlock, no crash) and report every panic.
func TestRaceAllPanic(t *testing.T) {
	stats := &Stats{}
	res, winner, panics := race(context.Background(), 3, stats, func(ctx context.Context, i int) (*mapping.Mapping, int) {
		panic(i)
	})
	if res != nil || winner != -1 {
		t.Fatalf("got winner %d, want failure", winner)
	}
	if stats.Panics != 3 || len(panics) != 3 {
		t.Fatalf("Panics = %d, errors = %d, want 3 and 3", stats.Panics, len(panics))
	}
}
