package portfolio

import (
	"context"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
)

// The portfolio runners are engines too: "portfolio" races the "regimap"
// engine over a speculative II window, "dresc-portfolio" races seed-
// diversified "dresc" runs. Both ignore engine.Options.MinII — a portfolio
// owns its own II escalation — and fold MaxII into the base search's ceiling.

type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "portfolio" }

func (engineMapper) Describe() string {
	return "REGIMap raced over a speculative II window (deterministic winner; optional budget-widened scouts)"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "portfolio", Want: "portfolio.Options", Got: eo.Extra}
	}
	if eo.MaxII > 0 {
		opts.Base.MaxII = eo.MaxII
	}
	m, st, err := Map(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	return &engine.Result{
		Mapping: m,
		MII:     st.MII,
		II:      st.II,
		Rounds:  st.Attempts,
		Stats:   st,
		Elapsed: st.Elapsed,
	}, err
}

type drescEngineMapper struct{}

func init() { engine.Register(drescEngineMapper{}) }

func (drescEngineMapper) Name() string { return "dresc-portfolio" }

func (drescEngineMapper) Describe() string {
	return "DRESC raced as seed-diversified annealing runs per II (deterministic lowest-index winner)"
}

func (drescEngineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts DRESCOptions
	switch extra := eo.Extra.(type) {
	case nil:
	case DRESCOptions:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "dresc-portfolio", Want: "portfolio.DRESCOptions", Got: eo.Extra}
	}
	if eo.MaxII > 0 {
		opts.Base.MaxII = eo.MaxII
	}
	p, st, err := MapDRESC(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	res := &engine.Result{
		MII:     st.MII,
		II:      st.II,
		Rounds:  st.Attempts,
		Stats:   st,
		Elapsed: st.Elapsed,
	}
	if p != nil {
		res.Artifact = p
	}
	return res, err
}
