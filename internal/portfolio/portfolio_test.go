package portfolio

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/dresc"
	"regimap/internal/kernels"
	"regimap/internal/sim"
)

// unmappable returns a kernel/array pair no mapper can place: a wide
// synthetic kernel on a 1x2 array with no registers keeps the escalation
// loop grinding until MaxII, which the tests raise to make the search long.
func unmappable() (*dfg.DFG, *arch.CGRA) {
	d := kernels.Random(99, kernels.RandomOptions{Ops: 48, MemFraction: 0.3, Recurrence: 4})
	return d, arch.NewMesh(1, 2, 0)
}

// TestDeterministicAcrossK is the acceptance contract: on the whole
// benchmark suite a K-wide portfolio returns a byte-identical mapping, the
// same II, and the same winner as a portfolio of one.
func TestDeterministicAcrossK(t *testing.T) {
	c := arch.NewMesh(4, 4, 4)
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			m1, s1, err1 := Map(context.Background(), k.Build(), c, Options{Attempts: 1})
			m4, s4, err4 := Map(context.Background(), k.Build(), c, Options{Attempts: 4})
			if (err1 == nil) != (err4 == nil) {
				t.Fatalf("K=1 err=%v, K=4 err=%v", err1, err4)
			}
			if err1 != nil {
				return
			}
			if s1.II != s4.II {
				t.Fatalf("K=1 II=%d, K=4 II=%d", s1.II, s4.II)
			}
			if s1.Winner != 0 {
				t.Fatalf("K=1 winner %d, want 0", s1.Winner)
			}
			if got, want := m4.String(), m1.String(); got != want {
				t.Fatalf("K=4 mapping differs from K=1 (winner %d):\n%s\n--- vs ---\n%s", s4.Winner, got, want)
			}
			if err := sim.Check(m4, 4); err != nil {
				t.Fatalf("portfolio winner mis-executes: %v", err)
			}
		})
	}
}

// TestRepeatedRunsIdentical checks run-to-run reproducibility at a fixed K
// and seed, including the reported winner index.
func TestRepeatedRunsIdentical(t *testing.T) {
	k, ok := kernels.ByName("fir8")
	if !ok {
		t.Skip("fir8 kernel missing")
	}
	c := arch.NewMesh(4, 4, 4)
	m1, s1, err := Map(context.Background(), k.Build(), c, Options{Attempts: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := Map(context.Background(), k.Build(), c, Options{Attempts: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s1.II != s2.II || s1.Winner != s2.Winner || m1.String() != m2.String() {
		t.Fatalf("two identical runs diverged: II %d/%d winner %d/%d", s1.II, s2.II, s1.Winner, s2.Winner)
	}
}

// TestCancellationMidEscalation cancels a portfolio stuck escalating on an
// unmappable kernel and requires a prompt, attributed abort.
func TestCancellationMidEscalation(t *testing.T) {
	d, c := unmappable()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := Map(ctx, d, c, Options{Attempts: 4, Base: core.Options{MaxII: 200, MaxTotalAttempts: 1 << 30, MaxAttemptsPerII: 1 << 20}})
	if err == nil {
		t.Fatal("cancelled portfolio returned a mapping on an unmappable kernel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("cancellation took %v; attempts should abort within one schedule/place round", waited)
	}
	if stats == nil || stats.II != 0 {
		t.Fatalf("aborted run reported II %v", stats)
	}
}

// TestDeadlineOnUnmappableKernel is the timeout contract: a context deadline
// bounds compile time on a kernel where MaxTotalAttempts would otherwise be
// the only backstop.
func TestDeadlineOnUnmappableKernel(t *testing.T) {
	d, c := unmappable()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := Map(ctx, d, c, Options{Attempts: 3, Base: core.Options{MaxII: 200, MaxTotalAttempts: 1 << 30, MaxAttemptsPerII: 1 << 20}})
	if err == nil {
		t.Fatal("deadline-bound portfolio returned a mapping on an unmappable kernel")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestCoreDeadlineDirect exercises the same contract one layer down on
// core.Map itself: the deadline must abort within one II-attempt boundary.
func TestCoreDeadlineDirect(t *testing.T) {
	d, c := unmappable()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := core.Map(ctx, d, c, core.Options{MaxII: 500, MaxTotalAttempts: 1 << 30, MaxAttemptsPerII: 1 << 20})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("core.Map held the deadline for %v", waited)
	}
}

// TestExploreReproducibleAndNeverWorse exercises the opt-in quality axis:
// budget-widened scouts may unlock an II the base search misses (they do on
// fft_radix2), can never do worse than the base escalation — the base search
// races at every II too — and repeat exactly for a fixed configuration.
func TestExploreReproducibleAndNeverWorse(t *testing.T) {
	k, ok := kernels.ByName("fft_radix2")
	if !ok {
		t.Skip("fft_radix2 kernel missing")
	}
	c := arch.NewMesh(4, 4, 4)
	_, sBase, err := Map(context.Background(), k.Build(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	explore := Options{Attempts: 2, Explore: 3}
	m1, s1, err := Map(context.Background(), k.Build(), c, explore)
	if err != nil {
		t.Fatal(err)
	}
	if s1.II > sBase.II {
		t.Fatalf("exploring portfolio regressed II: %d vs base %d", s1.II, sBase.II)
	}
	m2, s2, err := Map(context.Background(), k.Build(), c, explore)
	if err != nil {
		t.Fatal(err)
	}
	if s1.II != s2.II || s1.Winner != s2.Winner || m1.String() != m2.String() {
		t.Fatalf("explore runs diverged: II %d/%d winner %d/%d", s1.II, s2.II, s1.Winner, s2.Winner)
	}
	if err := sim.Check(m1, 4); err != nil {
		t.Fatalf("explore winner mis-executes: %v", err)
	}
}

// TestDRESCPortfolioDeterministic races annealing seeds and checks the
// winner repeats and verifies.
func TestDRESCPortfolioDeterministic(t *testing.T) {
	k, ok := kernels.ByName("sphinx_dot")
	if !ok {
		t.Skip("sphinx_dot kernel missing")
	}
	c := arch.NewMesh(4, 4, 4)
	quick := dresc.Options{Seed: 1, MovesPerTemperature: 6 * 16, Cooling: 0.8}
	p1, s1, err := MapDRESC(context.Background(), k.Build(), c, DRESCOptions{Attempts: 3, Base: quick})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Verify(c); err != nil {
		t.Fatalf("winning placement invalid: %v", err)
	}
	p2, s2, err := MapDRESC(context.Background(), k.Build(), c, DRESCOptions{Attempts: 3, Base: quick})
	if err != nil {
		t.Fatal(err)
	}
	if s1.II != s2.II || s1.Winner != s2.Winner {
		t.Fatalf("DRESC portfolio diverged: II %d/%d winner %d/%d", s1.II, s2.II, s1.Winner, s2.Winner)
	}
	if len(p1.PE) != len(p2.PE) {
		t.Fatal("placements differ in size")
	}
	for v := range p1.PE {
		if p1.PE[v] != p2.PE[v] || p1.Time[v] != p2.Time[v] {
			t.Fatalf("placements diverge at op %d", v)
		}
	}
}

// TestVariantContract pins the diversification rules the determinism
// argument rests on: scout 0 is always the base, and scouts only perturb
// clique budgets — never the II window or the learning switches.
func TestVariantContract(t *testing.T) {
	base := core.Options{MaxII: 9}
	if got := Variant(base, 0, 12345); !reflect.DeepEqual(got, base) {
		t.Fatalf("scout 0 perturbed the base options: %+v", got)
	}
	for seed := int64(0); seed < 4; seed++ {
		for s := 1; s < 12; s++ {
			v := Variant(base, s, seed)
			if v.MinII != base.MinII || v.MaxII != base.MaxII {
				t.Fatalf("scout %d/seed %d moved the II window", s, seed)
			}
			if v.DisableReschedule || v.DisableThinning || v.DisableRouteInsertion {
				t.Fatalf("scout %d/seed %d disabled a learning move", s, seed)
			}
			if reflect.DeepEqual(v, base) {
				t.Fatalf("scout %d/seed %d is not diversified", s, seed)
			}
		}
	}
}
