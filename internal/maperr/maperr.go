// Package maperr defines the error taxonomy shared by every mapper in the
// repository. Callers branch on failure classes with errors.Is / errors.As
// instead of string matching:
//
//   - ErrNoMapping: the search space is exhausted — no mapping exists within
//     the configured II budget. Escalating the budget (or degrading to a
//     different mapper, see internal/resilient) may still succeed.
//   - ErrAborted: the search was cut short by context cancellation before the
//     space was exhausted; the underlying ctx.Err() is also in the wrap chain,
//     so errors.Is(err, context.DeadlineExceeded) keeps working.
//   - ErrWorkerPanic / *WorkerPanicError: a worker goroutine (a portfolio
//     scout, a resilience rung) panicked; the typed error carries the
//     recovered value and stack instead of crashing the process.
//   - ErrTransient: the failure is environmental, not a property of the
//     (kernel, array, budget) inputs — retrying the identical call may
//     succeed. The job subsystem's retry/backoff loop keys on IsTransient.
//   - *InvalidMappingError: a mapper produced a result its own validator
//     rejects — always a bug in the mapper, never a property of the kernel.
//
// The sentinels are deliberately package-neutral: core, ems, dresc, and
// portfolio all wrap the same values, so a caller holding results from any
// mapper needs exactly one errors.Is test per failure class.
package maperr

import (
	"errors"
	"fmt"
)

// ErrNoMapping reports an exhausted search: no mapping exists within the II
// (or retry) budget the caller configured.
var ErrNoMapping = errors.New("no feasible mapping within the budget")

// ErrAborted reports a context-driven abort: the search ended because ctx was
// cancelled, not because the space was exhausted.
var ErrAborted = errors.New("mapping aborted")

// ErrWorkerPanic is the sentinel every *WorkerPanicError wraps, so callers
// can test for the class without destructuring the typed error.
var ErrWorkerPanic = errors.New("mapping worker panicked")

// ErrTransient marks failures that say nothing about the inputs: a
// dependency briefly unavailable, every circuit open, a backend mid-restart.
// Retrying the identical call later may succeed, so retry loops treat this
// class (and recovered panics) as retryable where ErrNoMapping is final.
var ErrTransient = errors.New("transient mapping failure")

// Transient is Wrap with the ErrTransient sentinel plus the underlying cause.
func Transient(cause error, format string, args ...any) error {
	return Wrap([]error{ErrTransient, cause}, format, args...)
}

// IsTransient reports whether err is worth retrying with the same inputs:
// explicitly transient failures and recovered worker panics qualify;
// exhausted searches (ErrNoMapping) and context-driven aborts do not — the
// former is deterministic, the latter is the caller's own budget expiring.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrWorkerPanic)
}

// wrapped carries a fixed message plus any number of wrapped causes. It keeps
// the exact human-readable text the mappers have always produced while making
// the failure class (and any underlying ctx error) reachable via errors.Is.
type wrapped struct {
	msg    string
	causes []error
}

func (w *wrapped) Error() string   { return w.msg }
func (w *wrapped) Unwrap() []error { return w.causes }

// Wrap returns an error whose message is fmt.Sprintf(format, args...) and
// whose wrap chain contains every non-nil cause.
func Wrap(causes []error, format string, args ...any) error {
	kept := make([]error, 0, len(causes))
	for _, c := range causes {
		if c != nil {
			kept = append(kept, c)
		}
	}
	return &wrapped{msg: fmt.Sprintf(format, args...), causes: kept}
}

// NoMapping is Wrap with the ErrNoMapping sentinel.
func NoMapping(format string, args ...any) error {
	return Wrap([]error{ErrNoMapping}, format, args...)
}

// Aborted is Wrap with the ErrAborted sentinel plus the context error that
// triggered the abort.
func Aborted(ctxErr error, format string, args ...any) error {
	return Wrap([]error{ErrAborted, ctxErr}, format, args...)
}

// InvalidMappingError reports that a mapper produced a result rejected by its
// own validator — an internal bug, surfaced as a typed error so harnesses
// (fuzzers, the chaos suite) can distinguish it from an honest mapping
// failure. Err is the validator's verdict.
type InvalidMappingError struct {
	Mapper string // "core", "ems", "dresc"
	What   string // "mapping" or "placement"
	Err    error
}

func (e *InvalidMappingError) Error() string {
	return fmt.Sprintf("%s: internal error, produced invalid %s: %v", e.Mapper, e.What, e.Err)
}

func (e *InvalidMappingError) Unwrap() error { return e.Err }

// WorkerPanicError is a recovered panic from a mapping worker, preserved with
// its stack so the failure is diagnosable after the fact. It wraps
// ErrWorkerPanic for class tests.
type WorkerPanicError struct {
	Worker string // which worker panicked, e.g. "portfolio racer 3"
	Value  any    // the recovered value
	Stack  []byte // the panicking goroutine's stack
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("%s panicked: %v", e.Worker, e.Value)
}

func (e *WorkerPanicError) Unwrap() error { return ErrWorkerPanic }
