package maperr

import (
	"context"
	"errors"
	"testing"
)

func TestNoMappingPreservesMessageAndClass(t *testing.T) {
	err := NoMapping("core: no mapping for %s on %s up to II=%d", "k", "4x4", 7)
	if got, want := err.Error(), "core: no mapping for k on 4x4 up to II=7"; got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
	if !errors.Is(err, ErrNoMapping) {
		t.Fatal("not ErrNoMapping")
	}
	if errors.Is(err, ErrAborted) {
		t.Fatal("must not be ErrAborted")
	}
}

func TestAbortedCarriesContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Aborted(ctx.Err(), "core: mapping %s aborted: %v", "k", ctx.Err())
	if got, want := err.Error(), "core: mapping k aborted: context canceled"; got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatal("not ErrAborted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("ctx error lost from the wrap chain")
	}
}

func TestWrapDropsNilCauses(t *testing.T) {
	err := Wrap([]error{nil, ErrNoMapping, nil}, "msg")
	if !errors.Is(err, ErrNoMapping) {
		t.Fatal("cause lost")
	}
	if errors.Is(err, ErrWorkerPanic) {
		t.Fatal("phantom cause")
	}
}

func TestInvalidMappingError(t *testing.T) {
	inner := errors.New("mapping: PE 3 uses 5 registers, file holds 4")
	err := error(&InvalidMappingError{Mapper: "core", What: "mapping", Err: inner})
	if got, want := err.Error(), "core: internal error, produced invalid mapping: "+inner.Error(); got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
	var ime *InvalidMappingError
	if !errors.As(err, &ime) || ime.Mapper != "core" {
		t.Fatal("errors.As failed")
	}
	if !errors.Is(err, inner) {
		t.Fatal("validator verdict lost from the wrap chain")
	}
}

func TestWorkerPanicError(t *testing.T) {
	err := error(&WorkerPanicError{Worker: "portfolio racer 3", Value: "boom", Stack: []byte("stack")})
	if got, want := err.Error(), "portfolio racer 3 panicked: boom"; got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatal("not ErrWorkerPanic")
	}
	wrappedUp := Wrap([]error{ErrNoMapping, err}, "portfolio: no mapping")
	if !errors.Is(wrappedUp, ErrWorkerPanic) || !errors.Is(wrappedUp, ErrNoMapping) {
		t.Fatal("multi-cause wrap lost a class")
	}
	var wp *WorkerPanicError
	if !errors.As(wrappedUp, &wp) || wp.Worker != "portfolio racer 3" {
		t.Fatal("typed panic error unreachable through the wrap")
	}
}
