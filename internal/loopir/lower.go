package loopir

import (
	"fmt"
	"hash/fnv"

	"regimap/internal/dfg"
)

// lower translates parsed statements into a validated data-flow graph.
func lower(name string, stmts []stmt) (*dfg.DFG, error) {
	lw := &lowerer{
		b:        dfg.NewBuilder(name),
		counter:  -1,
		loads:    map[loadKey]int{},
		consts:   map[int64]int{},
		params:   map[string]int{},
		env:      map[string]int{},
		assigned: map[string]bool{},
		written:  map[string]bool{},
		read:     map[string]bool{},
		stores:   map[loadKey]bool{},
	}

	// Pass 1: which scalars are assigned anywhere (pre-definition reads of
	// those become recurrences; reads of the rest become parameters).
	for _, s := range stmts {
		if s.scalar != "" {
			lw.assigned[s.scalar] = true
		}
	}

	// Pass 2: lower in program order, collecting carried reads to wire after
	// every scalar's final definition is known.
	for _, s := range stmts {
		v, err := lw.lowerExpr(s.rhs)
		if err != nil {
			return nil, err
		}
		switch {
		case s.scalar != "":
			// Assignments are pure dataflow: the defined value is the RHS
			// node itself (a named copy would waste a PE slot).
			lw.env[s.scalar] = v
		default:
			if lw.read[s.array] {
				return nil, errf(s.line, s.col, "array %q is both read and written (rewrite the memory recurrence as a scalar)", s.array)
			}
			key := loadKey{s.array, s.offset}
			if lw.stores[key] {
				return nil, errf(s.line, s.col, "duplicate store to %s[i%+d]", s.array, s.offset)
			}
			lw.stores[key] = true
			lw.written[s.array] = true
			addr := lw.address(s.array, s.offset)
			st := lw.b.Op(dfg.Store, fmt.Sprintf("st_%s_%d", s.array, len(lw.stores)))
			lw.b.EdgeDist(addr, st, 0, 0)
			lw.b.EdgeDist(v, st, 1, 0)
		}
	}

	// Pass 3: wire the carried scalar reads to each scalar's final
	// definition.
	for _, c := range lw.carried {
		def, ok := lw.env[c.name]
		if !ok {
			return nil, errf(c.line, c.col, "internal error: carried scalar %q has no definition", c.name)
		}
		lw.b.EdgeDist(def, c.to, c.port, c.dist)
	}

	d := lw.b.Build()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: %w", err)
	}
	return d, nil
}

// loadKey identifies one array element expression.
type loadKey struct {
	array  string
	offset int64
}

// carriedRead is a recurrence edge awaiting the scalar's final definition.
type carriedRead struct {
	name      string
	to, port  int
	dist      int
	line, col int
}

type lowerer struct {
	b       *dfg.Builder
	counter int // the shared induction-variable node (-1 until used)

	loads  map[loadKey]int
	consts map[int64]int
	params map[string]int
	env    map[string]int // scalar -> current-iteration definition

	assigned map[string]bool
	written  map[string]bool
	read     map[string]bool
	stores   map[loadKey]bool

	carried []carriedRead
	nameSeq int
}

// operandRef is a lowered operand: either an existing node (dist 0) or a
// deferred recurrence read.
type operandRef struct {
	node    int
	carried *carriedRead // nil for ordinary operands
}

func (lw *lowerer) fresh(prefix string) string {
	lw.nameSeq++
	return fmt.Sprintf("%s%d", prefix, lw.nameSeq)
}

func (lw *lowerer) induction() int {
	if lw.counter < 0 {
		lw.counter = lw.b.Counter("i")
	}
	return lw.counter
}

func (lw *lowerer) constant(v int64) int {
	if id, ok := lw.consts[v]; ok {
		return id
	}
	id := lw.b.Const(lw.fresh("c"), v)
	lw.consts[v] = id
	return id
}

// paramValue derives a deterministic immediate for a loop-invariant
// parameter from its name.
func paramValue(name string) int64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int64(h.Sum32()%251) + 1
}

// baseAddress spaces arrays far apart in the synthetic address space.
func baseAddress(name string) int64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int64(h.Sum32()&0x7fff) << 20
}

func (lw *lowerer) address(array string, offset int64) int {
	key := loadKey{"&" + array, offset}
	if id, ok := lw.loads[key]; ok {
		return id
	}
	base := lw.constant(baseAddress(array) + offset)
	addr := lw.b.Op(dfg.Add, lw.fresh("addr_"+array))
	lw.b.EdgeDist(lw.induction(), addr, 0, 0)
	lw.b.EdgeDist(base, addr, 1, 0)
	lw.loads[key] = addr
	return addr
}

// lowerExpr returns the node computing e; carried scalar reads become
// pending recurrence edges on the consuming operation.
func (lw *lowerer) lowerExpr(e expr) (int, error) {
	ref, err := lw.lowerOperand(e)
	if err != nil {
		return -1, err
	}
	if ref.carried == nil {
		return ref.node, nil
	}
	// A bare carried read used as a whole right-hand side needs a node of
	// its own to hang the recurrence edge on: an explicit route.
	rt := lw.b.Op(dfg.Route, lw.fresh("cp_"+ref.carried.name))
	c := *ref.carried
	c.to, c.port = rt, 0
	lw.carried = append(lw.carried, c)
	return rt, nil
}

func (lw *lowerer) lowerOperand(e expr) (operandRef, error) {
	switch e := e.(type) {
	case *intLit:
		return operandRef{node: lw.constant(e.val)}, nil
	case *counterRef:
		return operandRef{node: lw.induction()}, nil
	case *arrayRef:
		if lw.written[e.array] {
			return operandRef{}, errf(e.line, e.col, "array %q is both read and written (rewrite the memory recurrence as a scalar)", e.array)
		}
		lw.read[e.array] = true
		key := loadKey{e.array, e.offset}
		if id, ok := lw.loads[key]; ok {
			return operandRef{node: id}, nil
		}
		addr := lw.address(e.array, e.offset)
		ld := lw.b.Op(dfg.Load, lw.fresh("ld_"+e.array))
		lw.b.EdgeDist(addr, ld, 0, 0)
		lw.loads[key] = ld
		return operandRef{node: ld}, nil
	case *scalarRef:
		if def, ok := lw.env[e.name]; ok && !e.explicit {
			return operandRef{node: def}, nil // same-iteration value
		}
		if lw.assigned[e.name] {
			dist := e.dist
			if dist == 0 {
				dist = 1 // bare pre-definition read: previous iteration
			}
			return operandRef{carried: &carriedRead{name: e.name, dist: dist, line: e.line, col: e.col}}, nil
		}
		if e.explicit {
			return operandRef{}, errf(e.line, e.col, "%s@%d reads a scalar that is never assigned", e.name, e.dist)
		}
		// Loop-invariant parameter.
		if id, ok := lw.params[e.name]; ok {
			return operandRef{node: id}, nil
		}
		id := lw.b.Const("p_"+e.name, paramValue(e.name))
		lw.params[e.name] = id
		return operandRef{node: id}, nil
	case *unary:
		return lw.lowerOp(dfg.Neg, "neg", []expr{e.x})
	case *binary:
		kinds := map[string]dfg.OpKind{
			"+": dfg.Add, "-": dfg.Sub, "*": dfg.Mul,
			"&": dfg.And, "|": dfg.Or, "^": dfg.Xor,
			"<<": dfg.Shl, ">>": dfg.Shr,
			"<": dfg.CmpLT, "==": dfg.CmpEQ,
		}
		k, ok := kinds[e.op]
		if !ok {
			line, col := e.pos()
			return operandRef{}, errf(line, col, "unsupported operator %q", e.op)
		}
		return lw.lowerOp(k, "t", []expr{e.x, e.y})
	case *call:
		kinds := map[string]dfg.OpKind{"min": dfg.Min, "max": dfg.Max, "abs": dfg.Abs, "select": dfg.Select}
		return lw.lowerOp(kinds[e.fn], e.fn, e.args)
	default:
		return operandRef{}, fmt.Errorf("loopir: unhandled expression %T", e)
	}
}

// lowerOp lowers an operation with the given operand expressions, wiring
// ordinary operands immediately and queueing carried reads.
func (lw *lowerer) lowerOp(kind dfg.OpKind, prefix string, args []expr) (operandRef, error) {
	refs := make([]operandRef, len(args))
	for i, a := range args {
		r, err := lw.lowerOperand(a)
		if err != nil {
			return operandRef{}, err
		}
		refs[i] = r
	}
	id := lw.b.Op(kind, lw.fresh(prefix))
	for port, r := range refs {
		if r.carried != nil {
			c := *r.carried
			c.to, c.port = id, port
			lw.carried = append(lw.carried, c)
			continue
		}
		lw.b.EdgeDist(r.node, id, port, 0)
	}
	return operandRef{node: id}, nil
}
