// Package loopir is the front end of the flow: it compiles C-like innermost
// loop bodies into the data-flow graphs the mappers consume, standing in for
// the paper's GCC integration ("we have modified backend GCC and integrated
// REGIMap right before register allocation").
//
// # Language
//
// A program is a list of assignments, one per line (or ';'-separated), with
// '//' comments. The loop induction variable is `i`.
//
//	acc = acc + x[i]*h[i]          // loop-carried scalar: pre-definition
//	                               // reads see the previous iteration
//	d   = x[i] - min(acc, 255)     // scalars defined above are same-iteration
//	out[i] = d >> 2                // array writes
//	y   = x[i]*5 - y@1*3 - y@2     // y@d: the value d iterations ago
//
// Semantics:
//
//   - `name[i±k]` reads or writes array `name` at the induction variable
//     plus a constant offset. An array may be read or written, not both
//     (memory-carried dependences must be rewritten as scalar recurrences,
//     exactly what compilers do before modulo scheduling).
//   - reading a scalar after its assignment in the same body yields this
//     iteration's value; reading it before (or with the explicit `s@d`
//     form) yields the value from d iterations ago (d=1 for a bare
//     pre-definition read), creating the recurrence edge.
//   - a scalar never assigned in the body is a loop-invariant parameter and
//     lowers to an immediate (deterministically derived from its name).
//   - operators, C precedence, highest first: unary `-`; `*`; `+ -`;
//     `<< >>`; `< ==` (yielding 0/1); `&`; `^`; `|`. Calls: `min(a,b)`,
//     `max(a,b)`, `abs(a)`, `select(c,a,b)`.
//
// Compile returns a validated dfg.DFG ready for any of the mappers; loads of
// the same array element and repeated subexpressions of the induction
// variable are shared.
package loopir

import (
	"fmt"

	"regimap/internal/dfg"
)

// Compile parses src as a loop body and lowers it to a data-flow graph.
func Compile(name, src string) (*dfg.DFG, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}
	return lower(name, stmts)
}

// MustCompile is Compile for static program text; it panics on error.
func MustCompile(name, src string) *dfg.DFG {
	d, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return d
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error formats the diagnostic.
func (e *Error) Error() string {
	return fmt.Sprintf("loopir: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
