package loopir

import (
	"strconv"
	"strings"
	"unicode"
)

// --- tokens -----------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokInt
	tokAssign // =
	tokPlus
	tokMinus
	tokStar
	tokAmp
	tokPipe
	tokCaret
	tokShl // <<
	tokShr // >>
	tokLT  // <
	tokEQ  // ==
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokAt // @
)

type token struct {
	kind      tokKind
	text      string
	line, col int
}

type lexer struct {
	src       string
	pos       int
	line, col int
	toks      []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.emit(tokNewline, "\n")
			l.advance(1)
			l.line++
			l.col = 1
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == ';':
			l.emit(tokNewline, ";")
			l.advance(1)
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.advance(1)
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], l.line, l.col - (l.pos - start)})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
				l.advance(1)
			}
			l.toks = append(l.toks, token{tokInt, l.src[start:l.pos], l.line, l.col - (l.pos - start)})
		default:
			if !l.lexOperator() {
				return nil, errf(l.line, l.col, "unexpected character %q", string(rune(c)))
			}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.line, l.col})
	return l.toks, nil
}

func (l *lexer) lexOperator() bool {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<<":
		l.emit(tokShl, two)
		l.advance(2)
		return true
	case ">>":
		l.emit(tokShr, two)
		l.advance(2)
		return true
	case "==":
		l.emit(tokEQ, two)
		l.advance(2)
		return true
	}
	kinds := map[byte]tokKind{
		'=': tokAssign, '+': tokPlus, '-': tokMinus, '*': tokStar,
		'&': tokAmp, '|': tokPipe, '^': tokCaret, '<': tokLT,
		'(': tokLParen, ')': tokRParen, '[': tokLBracket, ']': tokRBracket,
		',': tokComma, '@': tokAt,
	}
	if k, ok := kinds[l.src[l.pos]]; ok {
		l.emit(k, string(l.src[l.pos]))
		l.advance(1)
		return true
	}
	return false
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.line, l.col})
}

func (l *lexer) advance(n int) {
	l.pos += n
	l.col += n
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- AST ---------------------------------------------------------------------

type expr interface{ pos() (int, int) }

type intLit struct {
	val       int64
	line, col int
}

type scalarRef struct {
	name      string
	dist      int // 0: bare read; >=1: explicit @d
	explicit  bool
	line, col int
}

type arrayRef struct {
	array     string
	offset    int64
	line, col int
}

type counterRef struct{ line, col int }

type unary struct {
	op        string
	x         expr
	line, col int
}

type binary struct {
	op        string
	x, y      expr
	line, col int
}

type call struct {
	fn        string
	args      []expr
	line, col int
}

func (e *intLit) pos() (int, int)     { return e.line, e.col }
func (e *scalarRef) pos() (int, int)  { return e.line, e.col }
func (e *arrayRef) pos() (int, int)   { return e.line, e.col }
func (e *counterRef) pos() (int, int) { return e.line, e.col }
func (e *unary) pos() (int, int)      { return e.line, e.col }
func (e *binary) pos() (int, int)     { return e.line, e.col }
func (e *call) pos() (int, int)       { return e.line, e.col }

// stmt is one assignment.
type stmt struct {
	// Either scalar (array == "") or array element destination.
	scalar    string
	array     string
	offset    int64
	rhs       expr
	line, col int
}

// --- parser -------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if t := p.peek(); t.kind != tokNewline && t.kind != tokEOF {
			return nil, errf(t.line, t.col, "expected end of statement, found %q", t.text)
		}
	}
	if len(stmts) == 0 {
		return nil, errf(1, 1, "empty program")
	}
	return stmts, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parseStmt() (stmt, error) {
	name, err := p.expect(tokIdent, "identifier")
	if err != nil {
		return stmt{}, err
	}
	s := stmt{line: name.line, col: name.col}
	if name.text == "i" {
		return s, errf(name.line, name.col, "cannot assign the induction variable")
	}
	if p.peek().kind == tokLBracket {
		off, err := p.parseSubscript()
		if err != nil {
			return stmt{}, err
		}
		s.array, s.offset = name.text, off
	} else {
		s.scalar = name.text
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return stmt{}, err
	}
	rhs, err := p.parseExpr(0)
	if err != nil {
		return stmt{}, err
	}
	s.rhs = rhs
	return s, nil
}

// parseSubscript parses "[i]" / "[i+3]" / "[i-2]".
func (p *parser) parseSubscript() (int64, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return 0, err
	}
	iv, err := p.expect(tokIdent, "the induction variable 'i'")
	if err != nil {
		return 0, err
	}
	if iv.text != "i" {
		return 0, errf(iv.line, iv.col, "subscripts must be i±constant, found %q", iv.text)
	}
	off := int64(0)
	switch p.peek().kind {
	case tokPlus, tokMinus:
		sign := int64(1)
		if p.next().kind == tokMinus {
			sign = -1
		}
		lit, err := p.expect(tokInt, "integer offset")
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseInt(lit.text, 10, 64)
		if err != nil {
			return 0, errf(lit.line, lit.col, "bad integer %q", lit.text)
		}
		off = sign * v
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return 0, err
	}
	return off, nil
}

// Binary precedence levels, lowest first (C-like, restricted to the CGRA's
// operator set).
var precLevels = [][]tokKind{
	{tokPipe},
	{tokCaret},
	{tokAmp},
	{tokLT, tokEQ},
	{tokShl, tokShr},
	{tokPlus, tokMinus},
	{tokStar},
}

func opName(k tokKind) string {
	switch k {
	case tokPipe:
		return "|"
	case tokCaret:
		return "^"
	case tokAmp:
		return "&"
	case tokLT:
		return "<"
	case tokEQ:
		return "=="
	case tokShl:
		return "<<"
	case tokShr:
		return ">>"
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	}
	return "?"
}

func (p *parser) parseExpr(level int) (expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		match := false
		for _, cand := range precLevels[level] {
			if k == cand {
				match = true
			}
		}
		if !match {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binary{op: opName(op.kind), x: lhs, y: rhs, line: op.line, col: op.col}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if t := p.peek(); t.kind == tokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*intLit); ok {
			lit.val = -lit.val
			return lit, nil
		}
		return &unary{op: "-", x: x, line: t.line, col: t.col}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.line, t.col, "bad integer %q", t.text)
		}
		return &intLit{val: v, line: t.line, col: t.col}, nil
	case tokLParen:
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch p.peek().kind {
		case tokLParen:
			return p.parseCall(t)
		case tokLBracket:
			off, err := p.parseSubscript()
			if err != nil {
				return nil, err
			}
			return &arrayRef{array: t.text, offset: off, line: t.line, col: t.col}, nil
		case tokAt:
			p.next()
			lit, err := p.expect(tokInt, "recurrence distance")
			if err != nil {
				return nil, err
			}
			d, err := strconv.ParseInt(lit.text, 10, 32)
			if err != nil || d < 1 {
				return nil, errf(lit.line, lit.col, "recurrence distance must be a positive integer, found %q", lit.text)
			}
			return &scalarRef{name: t.text, dist: int(d), explicit: true, line: t.line, col: t.col}, nil
		}
		if t.text == "i" {
			return &counterRef{line: t.line, col: t.col}, nil
		}
		return &scalarRef{name: t.text, line: t.line, col: t.col}, nil
	default:
		return nil, errf(t.line, t.col, "unexpected %q", t.text)
	}
}

var callArity = map[string]int{"min": 2, "max": 2, "abs": 1, "select": 3}

func (p *parser) parseCall(name token) (expr, error) {
	arity, ok := callArity[name.text]
	if !ok {
		return nil, errf(name.line, name.col, "unknown function %q (have min, max, abs, select)", name.text)
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []expr
	for {
		a, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if len(args) != arity {
		return nil, errf(name.line, name.col, "%s takes %d arguments, found %d", name.text, arity, len(args))
	}
	return &call{fn: name.text, args: args, line: name.line, col: name.col}, nil
}

// describeSrc is a debug helper used in tests.
func describeSrc(src string) string { return strings.TrimSpace(src) }
