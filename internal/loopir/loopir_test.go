package loopir

import (
	"context"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/config"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/sim"
)

func TestCompileDotProduct(t *testing.T) {
	d, err := Compile("dot", `acc = acc + a[i]*b[i]`)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: counter, 2 const bases, 2 addr adds, 2 loads, mul, acc add.
	if d.N() != 9 {
		t.Errorf("N = %d, want 9:\n%s", d.N(), d.DOT())
	}
	if d.RecMII() != 1 {
		t.Errorf("RecMII = %d, want 1 (single-add recurrence)", d.RecMII())
	}
	if d.MemOps() != 2 {
		t.Errorf("mem ops = %d, want 2", d.MemOps())
	}
	// Functional check: acc after k iterations is the prefix sum of products.
	res, err := sim.Reference(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	var acc, accNode int64 = 0, -1
	for v, nd := range d.Nodes {
		if nd.Kind == dfg.Add && len(d.OutEdges(v)) > 0 {
			for _, ei := range d.OutEdges(v) {
				if d.Edges[ei].To == v {
					accNode = int64(v)
				}
			}
		}
	}
	if accNode < 0 {
		t.Fatal("no accumulator found")
	}
	for k := 0; k < 4; k++ {
		// Recompute by hand from the load streams.
		var prod int64 = 1
		for v, nd := range d.Nodes {
			if nd.Kind == dfg.Load {
				prod *= res.Values[v][k]
			}
		}
		acc += prod
		if res.Values[accNode][k] != acc {
			t.Fatalf("acc[%d] = %d, want %d", k, res.Values[accNode][k], acc)
		}
	}
}

func TestCompileFIR3(t *testing.T) {
	d, err := Compile("fir3", `out[i] = 3*x[i] + 2*x[i-1] + x[i-2]`)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemOps() != 4 {
		t.Errorf("mem ops = %d, want 4 (3 loads + 1 store)", d.MemOps())
	}
	if d.RecMII() != 1 {
		t.Errorf("RecMII = %d, want 1 (no recurrence)", d.RecMII())
	}
	// Same-element loads are shared; x[i], x[i-1], x[i-2] are distinct.
	loads := 0
	for _, nd := range d.Nodes {
		if nd.Kind == dfg.Load {
			loads++
		}
	}
	if loads != 3 {
		t.Errorf("loads = %d, want 3", loads)
	}
}

func TestCompileBiquadRecurrence(t *testing.T) {
	src := `
		// direct-form biquad with explicit delays
		y = 5*x[i] + 3*x[i-1] - 2*y@1 - y@2
		out[i] = y
	`
	d, err := Compile("biquad", src)
	if err != nil {
		t.Fatal(err)
	}
	// The y@1 feedback through two subs gives RecMII >= 2.
	if d.RecMII() < 2 {
		t.Errorf("RecMII = %d, want >= 2:\n%s", d.RecMII(), d.DOT())
	}
	if _, err := sim.Reference(d, 5); err != nil {
		t.Fatal(err)
	}
}

func TestCompileSameIterationChaining(t *testing.T) {
	src := `
		s = x[i] + 1
		d = s * s
		out[i] = d
	`
	d, err := Compile("chain", src)
	if err != nil {
		t.Fatal(err)
	}
	// d = (x+1)^2; no recurrence.
	if d.RecMII() != 1 {
		t.Errorf("RecMII = %d, want 1", d.RecMII())
	}
	res, err := sim.Reference(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, nd := range d.Nodes {
		if nd.Kind == dfg.Mul {
			for k := 0; k < 3; k++ {
				var x int64
				for u, nu := range d.Nodes {
					if nu.Kind == dfg.Load {
						x = res.Values[u][k]
					}
				}
				if want := (x + 1) * (x + 1); res.Values[v][k] != want {
					t.Fatalf("d[%d] = %d, want %d", k, res.Values[v][k], want)
				}
			}
		}
	}
}

func TestCompileCounterAndCalls(t *testing.T) {
	d, err := Compile("calls", `out[i] = select(i < 8, min(i, 5), max(abs(0-i), 2))`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Reference(d, 12)
	if err != nil {
		t.Fatal(err)
	}
	var store int
	for v, nd := range d.Nodes {
		if nd.Kind == dfg.Store {
			store = v
		}
	}
	for k := 0; k < 12; k++ {
		var want int64
		ik := int64(k)
		if ik < 8 {
			want = ik
			if want > 5 {
				want = 5
			}
		} else {
			want = ik
			if want < 2 {
				want = 2
			}
		}
		if got := res.Stores[store][k][1]; got != want {
			t.Fatalf("stored[%d] = %d, want %d", k, got, want)
		}
	}
}

func TestCompileParameters(t *testing.T) {
	d, err := Compile("saxpy", `out[i] = a*x[i] + y[i]`)
	if err != nil {
		t.Fatal(err)
	}
	// a never assigned: a deterministic immediate.
	found := false
	for _, nd := range d.Nodes {
		if nd.Kind == dfg.Const && nd.Name == "p_a" {
			found = true
			if nd.Value != paramValue("a") {
				t.Errorf("parameter value %d, want %d", nd.Value, paramValue("a"))
			}
		}
	}
	if !found {
		t.Error("parameter constant missing")
	}
}

func TestCompileOperatorsAndPrecedence(t *testing.T) {
	d := MustCompile("prec", `out[i] = 1 | 2 ^ 3 & 4 == 5 < 6 << 1 + 2 * 3`)
	res, err := sim.Reference(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	var store int
	for v, nd := range d.Nodes {
		if nd.Kind == dfg.Store {
			store = v
		}
	}
	// Go-evaluated reference of the same expression with the same rules:
	// 2*3=6; 1+6=7; 6<<7=768; 5<768=1; 4==1=0; 3&0=0; 2^0=2; 1|2=3.
	if got := res.Stores[store][0][1]; got != 3 {
		t.Fatalf("stored = %d, want 3", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{``, "empty program"},
		{`i = 1`, "induction variable"},
		{`x = `, "unexpected"},
		{`x = y[j]`, "subscripts must be"},
		{`x = foo(1)`, "unknown function"},
		{`x = min(1)`, "takes 2 arguments"},
		{`a[i] = a[i-1] + 1`, "read and written"},
		{`x = a[i-1]; a[i] = x`, "read and written"},
		{`a[i] = 1; a[i] = 2`, "duplicate store"},
		{`x = y@0`, "positive integer"},
		{`x = y@2`, "never assigned"},
		{`x = 1 $`, "unexpected character"},
		{`x = (1`, "expected ')'"},
		{`x 1`, "expected '='"},
		{`x = 1 1`, "expected end of statement"},
	}
	for _, c := range cases {
		_, err := Compile("bad", c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Compile("bad", "x = 1\ny = foo(2)")
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if le.Line != 2 {
		t.Errorf("error line = %d, want 2", le.Line)
	}
	if !strings.Contains(le.Error(), "2:") {
		t.Errorf("formatted error lacks position: %s", le)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile accepted a bad program")
		}
	}()
	MustCompile("bad", "i = 1")
}

// TestCompiledKernelsMapAndExecute is the front end's integration test: a
// small program suite is compiled, mapped by REGIMap, simulated, lowered to
// instruction words and executed — source to machine, end to end.
func TestCompiledKernelsMapAndExecute(t *testing.T) {
	programs := map[string]string{
		"dot":    `acc = acc + a[i]*b[i]`,
		"fir3":   `out[i] = 3*x[i] + 2*x[i-1] + x[i-2]`,
		"biquad": "y = 5*x[i] + 3*x[i-1] - 2*y@1 - y@2\nout[i] = y",
		"sad":    `acc = acc + abs(a[i] - b[i])`,
		"clip":   `out[i] = min(max(x[i], 0-128), 127)`,
		"mix":    "s = x[i] + y[i]\nout[i] = (s*w) >> 8",
	}
	c := arch.NewMesh(4, 4, 4)
	for name, src := range programs {
		d, err := Compile(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, stats, err := core.Map(context.Background(), d, c, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.II < stats.MII {
			t.Fatalf("%s: II %d beats MII %d", name, stats.II, stats.MII)
		}
		if err := sim.Check(m, 6); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := config.Check(m, 6); err != nil {
			// Rotation-window overflow is the one permitted refusal.
			if !strings.Contains(err.Error(), "rotating-register slots") {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestDescribeSrcHelper(t *testing.T) {
	if describeSrc("  x  ") != "x" {
		t.Error("describeSrc broken")
	}
}
