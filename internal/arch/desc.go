package arch

import (
	"fmt"
	"strings"

	"regimap/internal/dfg"
)

// This file is the architecture description language (ADL): a small
// declarative text grammar, in the style of internal/fault's fault grammar,
// that describes a fabric as data and compiles it into a CGRA. A description
// is a list of statements separated by semicolons or newlines; '#' starts a
// comment that runs to end of line. The paper's evaluation array is
// "grid 4x4; regs 4".
//
//	grid RxC              array dimensions (required, exactly once)
//	topo T                interconnect: mesh (default), mesh+, torus, 1hop
//	regs N                nominal register-file size of every PE (default 4)
//	regs SEL=N            override one PE ("1,2=6"), a row ("row 0=8"), or a
//	                      column ("col 3=2"); later statements win
//	cap SEL CLASS         capability class of the selected PEs: all, nomem,
//	                      mem, alu, mul; SEL additionally admits "all"
//	bus SCHEME [cap N]    memory bus grouping: rows (default, one bus per
//	                      row), cols, global; N is the per-group capacity
//	                      (default 1)
//	buscap G=N            capacity override for bus group G
//	fanout N              max remote readers of one output register per
//	                      cycle (0 = unlimited, the default)
//	link r1,c1-r2,c2      add a bidirectional link absent from the topology
//	nolink r1,c1-r2,c2    remove a link the topology provides
//
// Parse is purely syntactic and round-trips with String; Compile validates
// (typed *DescError with statement position) and materializes the CGRA.
// Faults (internal/fault) compose on top of any compiled description: they
// tighten whatever fabric the ADL built.

// Compile-time bounds, shared by every entry point (CLI, wire decoder,
// server) so malformed fabrics are rejected identically everywhere.
const (
	// MaxDim bounds grid rows and columns.
	MaxDim = 64
	// MaxRegs bounds the per-PE register-file size.
	MaxRegs = 64
	// MaxBusCap bounds a bus group's per-cycle memory-operation capacity.
	MaxBusCap = 64
	// MaxFanout bounds the link-bandwidth (output-register fanout) limit.
	MaxFanout = 16
)

// StmtKind enumerates the ADL statement types.
type StmtKind int

// The statement kinds, in canonical emission order.
const (
	StmtGrid StmtKind = iota
	StmtTopo
	StmtRegs
	StmtCap
	StmtBus
	StmtBusCap
	StmtFanout
	StmtLink
	StmtNoLink
)

// SelKind enumerates what a selector targets.
type SelKind int

// Selector targets.
const (
	SelAll SelKind = iota // every PE (the zero value)
	SelPE                 // one PE at (R, C)
	SelRow                // every PE of row R
	SelCol                // every PE of column C
)

// Selector names a set of PEs in regs/cap statements.
type Selector struct {
	Kind SelKind
	R, C int
}

// String renders the selector in the grammar's syntax.
func (s Selector) String() string {
	switch s.Kind {
	case SelPE:
		return fmt.Sprintf("%d,%d", s.R, s.C)
	case SelRow:
		return fmt.Sprintf("row %d", s.R)
	case SelCol:
		return fmt.Sprintf("col %d", s.C)
	default:
		return "all"
	}
}

// BusScheme selects how PEs are grouped onto memory buses.
type BusScheme int

// The bus grouping schemes.
const (
	BusRows   BusScheme = iota // one bus per row (the paper's model)
	BusCols                    // one bus per column
	BusGlobal                  // a single array-wide bus
)

// String names the scheme.
func (s BusScheme) String() string {
	switch s {
	case BusCols:
		return "cols"
	case BusGlobal:
		return "global"
	default:
		return "rows"
	}
}

// CapClass is a named PE capability set.
type CapClass int

// The capability classes. Every class includes Route: any ALU can copy.
const (
	CapAll     CapClass = iota // full instruction set (the zero value)
	CapNoMem                   // everything except Load/Store
	CapMemOnly                 // Load, Store, Route only
	CapALU                     // everything except Mul, Load, Store
	CapMulOnly                 // Mul and Route only
)

// String names the class.
func (c CapClass) String() string {
	switch c {
	case CapNoMem:
		return "nomem"
	case CapMemOnly:
		return "mem"
	case CapALU:
		return "alu"
	case CapMulOnly:
		return "mul"
	default:
		return "all"
	}
}

func parseCapClass(s string) (CapClass, bool) {
	switch s {
	case "all":
		return CapAll, true
	case "nomem":
		return CapNoMem, true
	case "mem":
		return CapMemOnly, true
	case "alu":
		return CapALU, true
	case "mul":
		return CapMulOnly, true
	}
	return 0, false
}

// kinds returns the class's supported operation set, or nil for CapAll
// (homogeneous — no restriction map is materialized).
func (c CapClass) kinds() map[dfg.OpKind]bool {
	var keep func(k dfg.OpKind) bool
	switch c {
	case CapAll:
		return nil
	case CapNoMem:
		keep = func(k dfg.OpKind) bool { return !k.IsMem() }
	case CapMemOnly:
		keep = func(k dfg.OpKind) bool { return k.IsMem() || k == dfg.Route }
	case CapALU:
		keep = func(k dfg.OpKind) bool { return !k.IsMem() && k != dfg.Mul }
	case CapMulOnly:
		keep = func(k dfg.OpKind) bool { return k == dfg.Mul || k == dfg.Route }
	}
	m := make(map[dfg.OpKind]bool)
	for k := 0; k < dfg.NumKinds; k++ {
		if keep(dfg.OpKind(k)) {
			m[dfg.OpKind(k)] = true
		}
	}
	return m
}

// classOf matches a PE's restriction map back onto a class (Describe's
// inverse of kinds). ok is false when the set matches no named class.
func classOf(m map[dfg.OpKind]bool) (CapClass, bool) {
	if m == nil {
		return CapAll, true
	}
	for _, c := range []CapClass{CapNoMem, CapMemOnly, CapALU, CapMulOnly} {
		want := c.kinds()
		if len(m) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if m[k] != v {
				match = false
				break
			}
		}
		if match {
			return c, true
		}
	}
	// A restriction map that happens to permit everything is CapAll.
	full := true
	for k := 0; k < dfg.NumKinds; k++ {
		if !m[dfg.OpKind(k)] {
			full = false
			break
		}
	}
	if full {
		return CapAll, true
	}
	return 0, false
}

// Stmt is one parsed ADL statement. Fields beyond Kind are populated per
// statement type; unused fields stay zero so statements compare with
// reflect.DeepEqual across a String/Parse round-trip.
type Stmt struct {
	Kind StmtKind

	Rows, Cols int // StmtGrid

	Topo Topology // StmtTopo

	Sel   Selector  // StmtRegs, StmtCap
	N     int       // StmtRegs value, StmtBus/StmtBusCap capacity, StmtFanout
	Group int       // StmtBusCap
	Sch   BusScheme // StmtBus
	Class CapClass  // StmtCap

	R1, C1, R2, C2 int // StmtLink, StmtNoLink
}

// String renders the statement in canonical, re-parseable syntax.
func (s Stmt) String() string {
	switch s.Kind {
	case StmtGrid:
		return fmt.Sprintf("grid %dx%d", s.Rows, s.Cols)
	case StmtTopo:
		return fmt.Sprintf("topo %s", s.Topo)
	case StmtRegs:
		if s.Sel.Kind == SelAll {
			return fmt.Sprintf("regs %d", s.N)
		}
		return fmt.Sprintf("regs %s=%d", s.Sel, s.N)
	case StmtCap:
		return fmt.Sprintf("cap %s %s", s.Sel, s.Class)
	case StmtBus:
		if s.N == 1 {
			return fmt.Sprintf("bus %s", s.Sch)
		}
		return fmt.Sprintf("bus %s cap %d", s.Sch, s.N)
	case StmtBusCap:
		return fmt.Sprintf("buscap %d=%d", s.Group, s.N)
	case StmtFanout:
		return fmt.Sprintf("fanout %d", s.N)
	case StmtLink:
		return fmt.Sprintf("link %d,%d-%d,%d", s.R1, s.C1, s.R2, s.C2)
	case StmtNoLink:
		return fmt.Sprintf("nolink %d,%d-%d,%d", s.R1, s.C1, s.R2, s.C2)
	default:
		return fmt.Sprintf("Stmt(%d)", int(s.Kind))
	}
}

// Desc is a parsed architecture description: an ordered statement list.
// Order matters where statements overlap (later regs/cap statements win;
// link/nolink apply sequentially).
type Desc struct {
	Stmts []Stmt
}

// String renders the description canonically: statements joined by "; ".
// ParseDesc(d.String()) reproduces d exactly.
func (d *Desc) String() string {
	parts := make([]string, len(d.Stmts))
	for i, s := range d.Stmts {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

// DescError is the typed error every ADL entry point raises: a syntax error
// from ParseDesc (with the 1-based source line) or a semantic error from
// Compile (with the statement index and its canonical text). The server maps
// it to HTTP 400 class "bad-arch".
type DescError struct {
	Line int    // 1-based source line (0 when unknown)
	Stmt int    // statement index (-1 when description-level or syntactic)
	Text string // offending statement or token
	Msg  string
}

func (e *DescError) Error() string {
	pos := ""
	switch {
	case e.Line > 0:
		pos = fmt.Sprintf("line %d: ", e.Line)
	case e.Stmt >= 0:
		pos = fmt.Sprintf("stmt %d: ", e.Stmt)
	}
	if e.Text != "" {
		return fmt.Sprintf("arch: bad description: %s%q: %s", pos, e.Text, e.Msg)
	}
	return fmt.Sprintf("arch: bad description: %s%s", pos, e.Msg)
}

func synErr(line int, text, format string, args ...any) error {
	return &DescError{Line: line, Stmt: -1, Text: text, Msg: fmt.Sprintf(format, args...)}
}

func semErr(stmt int, s Stmt, format string, args ...any) error {
	return &DescError{Stmt: stmt, Text: s.String(), Msg: fmt.Sprintf(format, args...)}
}

// parseDescUint parses a non-negative decimal with a sanity cap, rejecting
// signs and non-digits (mirrors the fault grammar's number syntax).
func parseDescUint(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
		n = n*10 + int(r-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("number %q out of range", s)
		}
	}
	return n, nil
}

// parsePEPair parses "r,c".
func parsePEPair(s string) (r, c int, err error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("want \"row,col\", got %q", s)
	}
	if r, err = parseDescUint(strings.TrimSpace(a)); err != nil {
		return 0, 0, err
	}
	if c, err = parseDescUint(strings.TrimSpace(b)); err != nil {
		return 0, 0, err
	}
	return r, c, nil
}

// parseSelector parses the SEL forms: "all", "row N", "col N", "r,c".
// fields is the whitespace-split selector text (1 or 2 tokens).
func parseSelector(fields []string) (Selector, error) {
	switch {
	case len(fields) == 1 && fields[0] == "all":
		return Selector{Kind: SelAll}, nil
	case len(fields) == 2 && fields[0] == "row":
		r, err := parseDescUint(fields[1])
		if err != nil {
			return Selector{}, err
		}
		return Selector{Kind: SelRow, R: r}, nil
	case len(fields) == 2 && fields[0] == "col":
		c, err := parseDescUint(fields[1])
		if err != nil {
			return Selector{}, err
		}
		return Selector{Kind: SelCol, C: c}, nil
	case len(fields) == 1:
		r, c, err := parsePEPair(fields[0])
		if err != nil {
			return Selector{}, err
		}
		return Selector{Kind: SelPE, R: r, C: c}, nil
	}
	return Selector{}, fmt.Errorf("bad selector %q", strings.Join(fields, " "))
}

// ParseDesc parses an architecture description. It is purely syntactic:
// unknown statements, malformed numbers, and wrong arity fail here; semantic
// validation (bounds, duplicate singletons, selector ranges, link existence)
// happens in Compile. Errors are *DescError.
func ParseDesc(text string) (*Desc, error) {
	d := &Desc{}
	for lineIdx, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Split(line, ";") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			s, err := parseStmt(tok)
			if err != nil {
				return nil, synErr(lineIdx+1, tok, "%v", err)
			}
			d.Stmts = append(d.Stmts, s)
		}
	}
	return d, nil
}

func parseStmt(tok string) (Stmt, error) {
	fields := strings.Fields(tok)
	rest := fields[1:]
	switch fields[0] {
	case "grid":
		if len(rest) != 1 {
			return Stmt{}, fmt.Errorf("want \"grid RxC\"")
		}
		a, b, ok := strings.Cut(rest[0], "x")
		if !ok {
			return Stmt{}, fmt.Errorf("want \"grid RxC\"")
		}
		r, err := parseDescUint(a)
		if err != nil {
			return Stmt{}, err
		}
		c, err := parseDescUint(b)
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtGrid, Rows: r, Cols: c}, nil
	case "topo":
		if len(rest) != 1 {
			return Stmt{}, fmt.Errorf("want \"topo mesh|mesh+|torus|1hop\"")
		}
		t, err := ParseTopology(rest[0])
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtTopo, Topo: t}, nil
	case "regs":
		if len(rest) == 0 {
			return Stmt{}, fmt.Errorf("want \"regs N\" or \"regs SEL=N\"")
		}
		joined := strings.Join(rest, " ")
		lhs, rhs, hasEq := strings.Cut(joined, "=")
		if !hasEq {
			if len(rest) != 1 {
				return Stmt{}, fmt.Errorf("want \"regs N\" or \"regs SEL=N\"")
			}
			n, err := parseDescUint(rest[0])
			if err != nil {
				return Stmt{}, err
			}
			return Stmt{Kind: StmtRegs, N: n}, nil
		}
		sel, err := parseSelector(strings.Fields(lhs))
		if err != nil {
			return Stmt{}, err
		}
		if sel.Kind == SelAll {
			return Stmt{}, fmt.Errorf("use \"regs N\" for the whole array")
		}
		n, err := parseDescUint(strings.TrimSpace(rhs))
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtRegs, Sel: sel, N: n}, nil
	case "cap":
		if len(rest) < 2 {
			return Stmt{}, fmt.Errorf("want \"cap SEL CLASS\"")
		}
		cls, ok := parseCapClass(rest[len(rest)-1])
		if !ok {
			return Stmt{}, fmt.Errorf("unknown capability class %q (have all, nomem, mem, alu, mul)", rest[len(rest)-1])
		}
		sel, err := parseSelector(rest[:len(rest)-1])
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtCap, Sel: sel, Class: cls}, nil
	case "bus":
		var sch BusScheme
		if len(rest) == 0 {
			return Stmt{}, fmt.Errorf("want \"bus rows|cols|global [cap N]\"")
		}
		switch rest[0] {
		case "rows":
			sch = BusRows
		case "cols":
			sch = BusCols
		case "global":
			sch = BusGlobal
		default:
			return Stmt{}, fmt.Errorf("unknown bus scheme %q (have rows, cols, global)", rest[0])
		}
		n := 1
		switch {
		case len(rest) == 1:
		case len(rest) == 3 && rest[1] == "cap":
			var err error
			if n, err = parseDescUint(rest[2]); err != nil {
				return Stmt{}, err
			}
		default:
			return Stmt{}, fmt.Errorf("want \"bus rows|cols|global [cap N]\"")
		}
		return Stmt{Kind: StmtBus, Sch: sch, N: n}, nil
	case "buscap":
		if len(rest) != 1 {
			return Stmt{}, fmt.Errorf("want \"buscap G=N\"")
		}
		lhs, rhs, ok := strings.Cut(rest[0], "=")
		if !ok {
			return Stmt{}, fmt.Errorf("want \"buscap G=N\"")
		}
		g, err := parseDescUint(lhs)
		if err != nil {
			return Stmt{}, err
		}
		n, err := parseDescUint(rhs)
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtBusCap, Group: g, N: n}, nil
	case "fanout":
		if len(rest) != 1 {
			return Stmt{}, fmt.Errorf("want \"fanout N\"")
		}
		n, err := parseDescUint(rest[0])
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtFanout, N: n}, nil
	case "link", "nolink":
		if len(rest) != 1 {
			return Stmt{}, fmt.Errorf("want %q", fields[0]+" r1,c1-r2,c2")
		}
		a, b, ok := strings.Cut(rest[0], "-")
		if !ok {
			return Stmt{}, fmt.Errorf("want %q", fields[0]+" r1,c1-r2,c2")
		}
		r1, c1, err := parsePEPair(a)
		if err != nil {
			return Stmt{}, err
		}
		r2, c2, err := parsePEPair(b)
		if err != nil {
			return Stmt{}, err
		}
		kind := StmtLink
		if fields[0] == "nolink" {
			kind = StmtNoLink
		}
		return Stmt{Kind: kind, R1: r1, C1: c1, R2: r2, C2: c2}, nil
	}
	return Stmt{}, fmt.Errorf("unknown statement (have grid, topo, regs, cap, bus, buscap, fanout, link, nolink)")
}

// forEachSelected applies fn to every PE index the selector names. Bounds
// were validated by the caller.
func forEachSelected(rows, cols int, sel Selector, fn func(p int)) {
	switch sel.Kind {
	case SelAll:
		for p := 0; p < rows*cols; p++ {
			fn(p)
		}
	case SelPE:
		fn(sel.R*cols + sel.C)
	case SelRow:
		for c := 0; c < cols; c++ {
			fn(sel.R*cols + c)
		}
	case SelCol:
		for r := 0; r < rows; r++ {
			fn(r*cols + sel.C)
		}
	}
}

func checkSelector(rows, cols int, sel Selector) error {
	switch sel.Kind {
	case SelPE:
		if sel.R >= rows || sel.C >= cols {
			return fmt.Errorf("PE (%d,%d) outside the %dx%d grid", sel.R, sel.C, rows, cols)
		}
	case SelRow:
		if sel.R >= rows {
			return fmt.Errorf("row %d outside the %dx%d grid", sel.R, rows, cols)
		}
	case SelCol:
		if sel.C >= cols {
			return fmt.Errorf("col %d outside the %dx%d grid", sel.C, rows, cols)
		}
	}
	return nil
}

// Compile validates the description and materializes the CGRA. All semantic
// errors are *DescError carrying the offending statement's index and text,
// so the CLI, the wire decoder, and the server reject malformed fabrics
// identically.
func (d *Desc) Compile() (*CGRA, error) {
	// Pass 1: the singleton statements (grid, topo, bus, fanout).
	rows, cols := 0, 0
	topo := Mesh
	fanout := 0
	scheme := BusRows
	busDefCap := 1
	haveGrid, haveTopo, haveBus, haveFanout := false, false, false, false
	for i, s := range d.Stmts {
		switch s.Kind {
		case StmtGrid:
			if haveGrid {
				return nil, semErr(i, s, "duplicate grid statement")
			}
			haveGrid = true
			if s.Rows < 1 || s.Cols < 1 || s.Rows > MaxDim || s.Cols > MaxDim {
				return nil, semErr(i, s, "grid dimensions must be in [1,%d]", MaxDim)
			}
			rows, cols = s.Rows, s.Cols
		case StmtTopo:
			if haveTopo {
				return nil, semErr(i, s, "duplicate topo statement")
			}
			haveTopo = true
			topo = s.Topo
		case StmtBus:
			if haveBus {
				return nil, semErr(i, s, "duplicate bus statement")
			}
			haveBus = true
			scheme = s.Sch
			if s.N < 0 || s.N > MaxBusCap {
				return nil, semErr(i, s, "bus capacity must be in [0,%d]", MaxBusCap)
			}
			busDefCap = s.N
		case StmtFanout:
			if haveFanout {
				return nil, semErr(i, s, "duplicate fanout statement")
			}
			haveFanout = true
			if s.N < 0 || s.N > MaxFanout {
				return nil, semErr(i, s, "fanout must be in [0,%d]", MaxFanout)
			}
			fanout = s.N
		}
	}
	if !haveGrid {
		return nil, &DescError{Stmt: -1, Msg: "missing grid statement"}
	}

	// Pass 2: per-PE state, bus capacities, and link edits, in order.
	n := rows * cols
	regs := make([]int, n)
	for i := range regs {
		regs[i] = 4 // the paper's default file size
	}
	classes := make([]CapClass, n)
	groups := 0
	switch scheme {
	case BusRows:
		groups = rows
	case BusCols:
		groups = cols
	case BusGlobal:
		groups = 1
	}
	busCaps := make([]int, groups)
	for g := range busCaps {
		busCaps[g] = busDefCap
	}
	c := New(rows, cols, 0, topo) // NumRegs fixed up below
	for i, s := range d.Stmts {
		switch s.Kind {
		case StmtRegs:
			if err := checkSelector(rows, cols, s.Sel); err != nil {
				return nil, semErr(i, s, "%v", err)
			}
			if s.N < 0 || s.N > MaxRegs {
				return nil, semErr(i, s, "register file size must be in [0,%d]", MaxRegs)
			}
			forEachSelected(rows, cols, s.Sel, func(p int) { regs[p] = s.N })
		case StmtCap:
			if err := checkSelector(rows, cols, s.Sel); err != nil {
				return nil, semErr(i, s, "%v", err)
			}
			forEachSelected(rows, cols, s.Sel, func(p int) { classes[p] = s.Class })
		case StmtBusCap:
			if s.Group < 0 || s.Group >= groups {
				return nil, semErr(i, s, "bus group %d outside [0,%d) under the %s scheme", s.Group, groups, scheme)
			}
			if s.N < 0 || s.N > MaxBusCap {
				return nil, semErr(i, s, "bus capacity must be in [0,%d]", MaxBusCap)
			}
			busCaps[s.Group] = s.N
		case StmtLink, StmtNoLink:
			if s.R1 >= rows || s.C1 >= cols || s.R2 >= rows || s.C2 >= cols {
				return nil, semErr(i, s, "endpoint outside the %dx%d grid", rows, cols)
			}
			p, q := c.PEAt(s.R1, s.C1), c.PEAt(s.R2, s.C2)
			if p == q {
				return nil, semErr(i, s, "a PE cannot link to itself")
			}
			if s.Kind == StmtLink {
				if c.NominalConnected(p, q) {
					return nil, semErr(i, s, "PEs %d,%d and %d,%d are already connected", s.R1, s.C1, s.R2, s.C2)
				}
				c.setNominalLink(p, q, true)
			} else {
				if !c.NominalConnected(p, q) {
					return nil, semErr(i, s, "no link between %d,%d and %d,%d to remove", s.R1, s.C1, s.R2, s.C2)
				}
				c.setNominalLink(p, q, false)
			}
			c.customLinks = true
		}
	}

	// The clique engine encodes bus contention pairwise, which is exact only
	// when a shared group admits at most one memory op per cycle; a single
	// global group of any capacity is exact too, because the scheduler's
	// per-slot memory cap equals the group cap (DESIGN.md section 8j).
	if groups > 1 {
		for i, s := range d.Stmts {
			if (s.Kind == StmtBus || s.Kind == StmtBusCap) && s.N > 1 {
				return nil, semErr(i, s, "per-group bus capacity above 1 requires the global bus scheme")
			}
		}
	}

	// Materialize the remaining per-PE state.
	maxRegs, uniform := 0, true
	for _, r := range regs {
		if r > maxRegs {
			maxRegs = r
		}
	}
	for _, r := range regs {
		if r != maxRegs {
			uniform = false
			break
		}
	}
	c.NumRegs = maxRegs
	if !uniform {
		c.nomRegs = regs
	}
	for p, cls := range classes {
		if cls == CapAll {
			continue
		}
		if c.caps == nil {
			c.caps = make([]map[dfg.OpKind]bool, n)
		}
		c.caps[p] = cls.kinds()
	}
	trivial := scheme == BusRows
	if trivial {
		for _, cap := range busCaps {
			if cap != 1 {
				trivial = false
				break
			}
		}
	}
	if !trivial {
		bg := make([]int, n)
		for p := range bg {
			switch scheme {
			case BusRows:
				bg[p] = c.RowOf(p)
			case BusCols:
				bg[p] = c.ColOf(p)
			case BusGlobal:
				bg[p] = 0
			}
		}
		c.busGroup, c.busCap = bg, busCaps
	}
	c.fanout = fanout
	return c, nil
}

// Uniform describes-and-compiles the classic uniform array — rows x cols,
// one register-file size, a topology, the default bus scheme — through the
// ADL compiler. It is the shared validation path of the wire decoder, the
// server, and the CLI shape flags, so out-of-bounds shapes are rejected
// identically everywhere with a *DescError.
func Uniform(rows, cols, regs int, topo Topology) (*CGRA, error) {
	d := &Desc{Stmts: []Stmt{
		{Kind: StmtGrid, Rows: rows, Cols: cols},
		{Kind: StmtTopo, Topo: topo},
		{Kind: StmtRegs, N: regs},
	}}
	return d.Compile()
}

// UnfaithfulError reports an array whose in-memory state is not expressible
// as an ADL description (e.g. a RestrictPE capability set matching no named
// class), so it cannot travel over the wire without silently losing
// constraints. The server maps it to HTTP 400 class "bad-arch".
type UnfaithfulError struct {
	Reason string
}

func (e *UnfaithfulError) Error() string {
	return "arch: array is not expressible as a description: " + e.Reason
}

// NeedsDesc reports whether the array's nominal state goes beyond its
// (rows, cols, regs, topology) shape — heterogeneous capabilities or files,
// a non-default bus scheme, a fanout bound, or edited links. Wire encoders
// use it to decide whether the compact shape fields suffice or the full ADL
// must travel.
func (c *CGRA) NeedsDesc() bool {
	return c.caps != nil || c.nomRegs != nil || !c.TrivialBuses() || c.fanout != 0 || c.customLinks
}

// Describe synthesizes an ADL description of the array's nominal (fault-
// free) fabric: compiling the result reproduces an array with the same
// nominal fingerprint. Fault state is deliberately not described — faults
// travel separately (internal/fault) and tighten whatever the description
// builds. It fails with *UnfaithfulError when some state matches no grammar
// construct, e.g. an ad-hoc RestrictPE capability set.
func (c *CGRA) Describe() (*Desc, error) {
	d := &Desc{}
	d.Stmts = append(d.Stmts, Stmt{Kind: StmtGrid, Rows: c.Rows, Cols: c.Cols})
	if c.Topology != Mesh {
		d.Stmts = append(d.Stmts, Stmt{Kind: StmtTopo, Topo: c.Topology})
	}
	d.Stmts = append(d.Stmts, Stmt{Kind: StmtRegs, N: c.NumRegs})
	if c.nomRegs != nil {
		for p, r := range c.nomRegs {
			if r != c.NumRegs {
				d.Stmts = append(d.Stmts, Stmt{Kind: StmtRegs, Sel: Selector{Kind: SelPE, R: c.RowOf(p), C: c.ColOf(p)}, N: r})
			}
		}
	}
	if c.caps != nil {
		for p, m := range c.caps {
			cls, ok := classOf(m)
			if !ok {
				return nil, &UnfaithfulError{Reason: fmt.Sprintf("PE %d's capability set matches no class", p)}
			}
			if cls != CapAll {
				d.Stmts = append(d.Stmts, Stmt{Kind: StmtCap, Sel: Selector{Kind: SelPE, R: c.RowOf(p), C: c.ColOf(p)}, Class: cls})
			}
		}
	}
	if !c.TrivialBuses() {
		var scheme BusScheme
		switch {
		case c.busGroup == nil:
			scheme = BusRows
		case matchesGrouping(c, func(p int) int { return c.RowOf(p) }, c.Rows):
			scheme = BusRows
		case matchesGrouping(c, func(p int) int { return c.ColOf(p) }, c.Cols):
			scheme = BusCols
		case matchesGrouping(c, func(int) int { return 0 }, 1):
			scheme = BusGlobal
		default:
			return nil, &UnfaithfulError{Reason: "bus grouping matches no scheme"}
		}
		def := c.BusGroupCap(0)
		d.Stmts = append(d.Stmts, Stmt{Kind: StmtBus, Sch: scheme, N: def})
		for g := 1; g < c.NumBusGroups(); g++ {
			if cap := c.BusGroupCap(g); cap != def {
				d.Stmts = append(d.Stmts, Stmt{Kind: StmtBusCap, Group: g, N: cap})
			}
		}
	}
	if c.fanout != 0 {
		d.Stmts = append(d.Stmts, Stmt{Kind: StmtFanout, N: c.fanout})
	}
	if c.customLinks {
		base := New(c.Rows, c.Cols, 0, c.Topology)
		for p := 0; p < c.NumPEs(); p++ {
			for q := p + 1; q < c.NumPEs(); q++ {
				have, want := c.NominalConnected(p, q), base.NominalConnected(p, q)
				if have == want {
					continue
				}
				s := Stmt{R1: c.RowOf(p), C1: c.ColOf(p), R2: c.RowOf(q), C2: c.ColOf(q)}
				if have {
					s.Kind = StmtLink
				} else {
					s.Kind = StmtNoLink
				}
				d.Stmts = append(d.Stmts, s)
			}
		}
	}
	return d, nil
}

func matchesGrouping(c *CGRA, group func(int) int, groups int) bool {
	if c.NumBusGroups() != groups {
		return false
	}
	for p := 0; p < c.NumPEs(); p++ {
		if c.BusGroupOf(p) != group(p) {
			return false
		}
	}
	return true
}
