package arch

import (
	"strings"
	"testing"
	"testing/quick"

	"regimap/internal/dfg"
)

func TestMeshGeometry(t *testing.T) {
	c := NewMesh(4, 4, 4)
	if c.NumPEs() != 16 {
		t.Fatalf("NumPEs = %d, want 16", c.NumPEs())
	}
	if c.PEAt(1, 2) != 6 || c.RowOf(6) != 1 || c.ColOf(6) != 2 {
		t.Error("PE coordinate mapping broken")
	}
	// Corner has 2 neighbours, edge 3, interior 4.
	if got := len(c.Neighbors(c.PEAt(0, 0))); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := len(c.Neighbors(c.PEAt(0, 1))); got != 3 {
		t.Errorf("edge degree = %d, want 3", got)
	}
	if got := len(c.Neighbors(c.PEAt(1, 1))); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
}

func TestConnected(t *testing.T) {
	c := NewMesh(2, 2, 2)
	if !c.Connected(0, 0) {
		t.Error("a PE must be connected to itself")
	}
	if !c.Connected(0, 1) || !c.Connected(0, 2) {
		t.Error("orthogonal neighbours must be connected")
	}
	if c.Connected(0, 3) {
		t.Error("diagonal PEs must not be connected on a plain mesh")
	}
}

func TestMeshPlusDiagonals(t *testing.T) {
	c := New(3, 3, 2, MeshPlus)
	if !c.Connected(c.PEAt(0, 0), c.PEAt(1, 1)) {
		t.Error("mesh+ must connect diagonals")
	}
	if got := len(c.Neighbors(c.PEAt(1, 1))); got != 8 {
		t.Errorf("mesh+ interior degree = %d, want 8", got)
	}
}

func TestTorusWraps(t *testing.T) {
	c := New(3, 3, 2, Torus)
	if !c.Connected(c.PEAt(0, 0), c.PEAt(0, 2)) {
		t.Error("torus must wrap columns")
	}
	if !c.Connected(c.PEAt(0, 0), c.PEAt(2, 0)) {
		t.Error("torus must wrap rows")
	}
	if got := len(c.Neighbors(0)); got != 4 {
		t.Errorf("torus degree = %d, want 4", got)
	}
}

func TestTorusDegenerateDimension(t *testing.T) {
	// 1-row torus: wrapping up and down reaches yourself; no self loops and
	// no duplicate neighbours allowed.
	c := New(1, 4, 2, Torus)
	for p := 0; p < 4; p++ {
		seen := map[int]bool{}
		for _, q := range c.Neighbors(p) {
			if q == p {
				t.Fatalf("self loop at PE %d", p)
			}
			if seen[q] {
				t.Fatalf("duplicate neighbour %d of PE %d", q, p)
			}
			seen[q] = true
		}
	}
}

func TestConnectivitySymmetry(t *testing.T) {
	f := func(rows, cols uint8, topo uint8) bool {
		r := int(rows%4) + 1
		cl := int(cols%4) + 1
		c := New(r, cl, 2, Topology(topo%3))
		for p := 0; p < c.NumPEs(); p++ {
			for q := 0; q < c.NumPEs(); q++ {
				if c.Connected(p, q) != c.Connected(q, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousCaps(t *testing.T) {
	c := NewMesh(2, 2, 2)
	if !c.Homogeneous() {
		t.Fatal("fresh mesh should be homogeneous")
	}
	c.RestrictPE(0, dfg.Add, dfg.Sub)
	if c.Homogeneous() {
		t.Error("restricted array should not report homogeneous")
	}
	if !c.Supports(0, dfg.Add) || c.Supports(0, dfg.Mul) {
		t.Error("capability restriction not enforced")
	}
	if !c.Supports(0, dfg.Route) {
		t.Error("route must always be supported")
	}
	if !c.Supports(1, dfg.Mul) {
		t.Error("unrestricted PE lost capabilities")
	}
	d := c.Clone()
	if d.Supports(0, dfg.Mul) || !d.Supports(0, dfg.Add) {
		t.Error("Clone dropped capability restrictions")
	}
}

func TestStringer(t *testing.T) {
	c := NewMesh(4, 4, 8)
	if got := c.String(); !strings.Contains(got, "4x4") || !strings.Contains(got, "8 regs") {
		t.Errorf("String = %q", got)
	}
	if Mesh.String() != "mesh" || MeshPlus.String() != "mesh+" || Torus.String() != "torus" {
		t.Error("topology names wrong")
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 2, Mesh) },
		func() { New(4, 4, -1, Mesh) },
		func() { NewMesh(2, 2, 2).PEAt(2, 0) },
		func() { NewTEC(NewMesh(2, 2, 2), 0) },
		func() { BuildMRRG(NewMesh(2, 2, 2), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTECIdentifiers(t *testing.T) {
	c := NewMesh(2, 2, 2)
	tec := NewTEC(c, 3)
	if tec.Nodes() != 12 {
		t.Fatalf("Nodes = %d, want 12", tec.Nodes())
	}
	for slot := 0; slot < 3; slot++ {
		for p := 0; p < 4; p++ {
			id := tec.ID(p, slot)
			if tec.PE(id) != p || tec.Slot(id) != slot {
				t.Fatalf("round trip failed for pe=%d slot=%d", p, slot)
			}
		}
	}
}

func TestTECGraphStructure(t *testing.T) {
	c := NewMesh(1, 2, 2) // the paper's 1x2 example
	tec := NewTEC(c, 2)
	g := tec.Graph()
	// Each node connects to self-next and neighbour-next: out-degree 2.
	for id := 0; id < tec.Nodes(); id++ {
		if got := g.OutDegree(id); got != 2 {
			t.Errorf("node %d out-degree = %d, want 2", id, got)
		}
	}
	// Wrap-around: (p,1) -> (p,0).
	if !g.HasEdge(tec.ID(0, 1), tec.ID(0, 0)) {
		t.Error("TEC missing modulo wrap-around edge")
	}
}

func TestMRRGStructure(t *testing.T) {
	c := NewMesh(2, 2, 4)
	m := BuildMRRG(c, 2)
	wantNodes := 3*4*2 + 2*2 // FU/OutReg/RF x 4 PEs x 2 slots + 2 rows x 2 slots
	if m.N() != wantNodes {
		t.Fatalf("N = %d, want %d", m.N(), wantNodes)
	}
	fu := m.FUNode(0, 0)
	or := m.OutRegNode(0, 0)
	rf := m.RFNode(0, 0)
	bus := m.BusNode(1, 1)
	if m.Kind(fu) != FU || m.Kind(or) != OutReg || m.Kind(rf) != RF || m.Kind(bus) != Bus {
		t.Error("node kinds scrambled")
	}
	if m.Cap(fu) != 1 || m.Cap(rf) != 4 || m.Cap(bus) != 1 {
		t.Error("capacities wrong")
	}
	if m.PE(bus) != 1 || m.Slot(bus) != 1 {
		t.Error("bus coordinates wrong")
	}
	// FU writes its out-reg next slot.
	if !contains(m.Out(fu), m.OutRegNode(0, 1)) {
		t.Error("missing FU -> OutReg(next) edge")
	}
	// Out-reg readable by a neighbour's FU in the same slot.
	if !contains(m.Out(or), m.FUNode(1, 0)) {
		t.Error("missing OutReg -> neighbour FU edge")
	}
	// Out-reg readable by own FU.
	if !contains(m.Out(or), m.FUNode(0, 0)) {
		t.Error("missing OutReg -> own FU edge")
	}
	// Out-reg hold and retire edges.
	if !contains(m.Out(or), m.OutRegNode(0, 1)) || !contains(m.Out(or), m.RFNode(0, 1)) {
		t.Error("missing OutReg hold/retire edges")
	}
	// RF hold and read edges.
	if !contains(m.Out(rf), m.RFNode(0, 1)) || !contains(m.Out(rf), m.FUNode(0, 0)) {
		t.Error("missing RF hold/read edges")
	}
	// RF must never feed another PE.
	for _, v := range m.Out(rf) {
		if m.PE(v) != 0 {
			t.Errorf("RF leaks to PE %d via %s", m.PE(v), m.Describe(v))
		}
	}
	if got := m.Describe(fu); got != "fu(0@0)" {
		t.Errorf("Describe = %q", got)
	}
}

func TestMRRGNoRegisters(t *testing.T) {
	c := NewMesh(2, 2, 0)
	m := BuildMRRG(c, 2)
	rf := m.RFNode(0, 0)
	if m.Cap(rf) != 0 {
		t.Error("RF capacity should be 0")
	}
	if len(m.Out(rf)) != 0 {
		t.Error("register-free array must have no RF edges")
	}
	or := m.OutRegNode(0, 0)
	for _, v := range m.Out(or) {
		if m.Kind(v) == RF {
			t.Error("out-reg must not retire into a zero-capacity RF")
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
