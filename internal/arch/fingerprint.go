package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"strings"

	"regimap/internal/dfg"
)

// fingerprintKinds bounds the per-PE capability scan of Fingerprint. It only
// needs to cover every dfg.OpKind value (currently 22); anything beyond is
// hashed as the constant "supported" a homogeneous PE reports, so the bound
// can grow without invalidating fingerprints of capability-free arrays.
const fingerprintKinds = 32

// Fingerprint is a deterministic content hash of the array configuration:
// dimensions, topology, fanout bound, per-PE register files (nominal and
// effective), capability restrictions, the bus grouping and its capacities,
// and the full fault state (broken PEs, severed links via the adjacency
// rows, limited register files, dead row buses). Two arrays with equal
// fingerprints impose identical constraints on every mapper, so the
// fingerprint is a sound memoization key component (internal/memo).
//
// The hash walks observable behaviour (Supports, RegsAt, RowBusOK, the bus
// accessors) rather than internal storage, so two arrays reaching the same
// constraint set through different histories fingerprint equal. The domain
// tag is "arch/v2": v1 covered neither nominal per-PE files nor bandwidth,
// so distinct described fabrics could alias in the caches, and it hashed
// the adjacency matrix bit-by-bit — v2 hashes whole 64-bit adjacency words.
func (c *CGRA) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	hw := archHashWriter{h: h}
	hw.str("arch/v2")
	hw.num(int64(c.Rows))
	hw.num(int64(c.Cols))
	hw.num(int64(c.NumRegs))
	hw.num(int64(c.Topology))
	hw.num(int64(c.fanout))
	n := c.NumPEs()
	const fullCaps = int64(1)<<fingerprintKinds - 1
	homogeneous := c.caps == nil && c.broken == nil
	for p := 0; p < n; p++ {
		hw.bit(c.PEOk(p))
		hw.num(int64(c.RegsAt(p)))
		hw.num(int64(c.NominalRegsAt(p)))
		hw.num(int64(c.BusGroupOf(p)))
		if homogeneous {
			hw.num(fullCaps)
			continue
		}
		var caps int64
		for k := 0; k < fingerprintKinds; k++ {
			if c.Supports(p, dfg.OpKind(k)) {
				caps |= 1 << k
			}
		}
		hw.num(caps)
	}
	for g := 0; g < c.NumBusGroups(); g++ {
		hw.num(int64(c.BusGroupCap(g)))
	}
	for r := 0; r < c.Rows; r++ {
		hw.bit(c.RowBusOK(r))
	}
	var buf []byte
	for p := 0; p < n; p++ {
		words := c.adj[p].Words()
		if buf == nil {
			buf = make([]byte, len(words)*8)
		}
		for i, w := range words {
			binary.LittleEndian.PutUint64(buf[i*8:], w)
		}
		h.Write(buf)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns the fingerprint as a lowercase hex string.
func (c *CGRA) FingerprintHex() string {
	fp := c.Fingerprint()
	return hex.EncodeToString(fp[:])
}

type archHashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w archHashWriter) num(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w archHashWriter) str(s string) {
	w.num(int64(len(s)))
	io.WriteString(w.h, s)
}

func (w archHashWriter) bit(b bool) {
	if b {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

// ParseTopology is the inverse of Topology.String, for wire decoders and
// request parsing. The empty string selects the paper's orthogonal mesh.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mesh":
		return Mesh, nil
	case "mesh+", "meshplus":
		return MeshPlus, nil
	case "torus":
		return Torus, nil
	case "1hop", "onehop":
		return OneHop, nil
	default:
		return 0, fmt.Errorf("arch: unknown topology %q (have mesh, mesh+, torus, 1hop)", s)
	}
}
