package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"strings"

	"regimap/internal/dfg"
)

// fingerprintKinds bounds the per-PE capability scan of Fingerprint. It only
// needs to cover every dfg.OpKind value (currently 22); anything beyond is
// hashed as the constant "supported" a homogeneous PE reports, so the bound
// can grow without invalidating fingerprints of capability-free arrays.
const fingerprintKinds = 32

// Fingerprint is a deterministic content hash of the array configuration:
// dimensions, topology, register file size, per-PE capability restrictions,
// and the full fault state (broken PEs, severed links via the adjacency
// matrix, limited register files, dead row buses). Two arrays with equal
// fingerprints impose identical constraints on every mapper, so the
// fingerprint is a sound memoization key component (internal/memo).
//
// The hash deliberately walks observable behaviour (Supports, Connected,
// RegsAt, RowBusOK) rather than internal storage, so two arrays reaching the
// same constraint set through different fault histories fingerprint equal.
func (c *CGRA) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	hw := archHashWriter{h: h}
	hw.str("arch/v1")
	hw.num(int64(c.Rows))
	hw.num(int64(c.Cols))
	hw.num(int64(c.NumRegs))
	hw.num(int64(c.Topology))
	n := c.NumPEs()
	for p := 0; p < n; p++ {
		hw.bit(c.PEOk(p))
		hw.num(int64(c.RegsAt(p)))
		for k := 0; k < fingerprintKinds; k++ {
			hw.bit(c.Supports(p, dfg.OpKind(k)))
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			hw.bit(c.Connected(p, q))
		}
	}
	for r := 0; r < c.Rows; r++ {
		hw.bit(c.RowBusOK(r))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns the fingerprint as a lowercase hex string.
func (c *CGRA) FingerprintHex() string {
	fp := c.Fingerprint()
	return hex.EncodeToString(fp[:])
}

type archHashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w archHashWriter) num(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w archHashWriter) str(s string) {
	w.num(int64(len(s)))
	io.WriteString(w.h, s)
}

func (w archHashWriter) bit(b bool) {
	if b {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

// ParseTopology is the inverse of Topology.String, for wire decoders and
// request parsing. The empty string selects the paper's orthogonal mesh.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mesh":
		return Mesh, nil
	case "mesh+", "meshplus":
		return MeshPlus, nil
	case "torus":
		return Torus, nil
	default:
		return 0, fmt.Errorf("arch: unknown topology %q (have mesh, mesh+, torus)", s)
	}
}
