package arch

import "fmt"

// ResourceKind classifies MRRG nodes.
type ResourceKind int

const (
	// FU is a PE's ALU in one modulo slot: executes one operation (or one
	// explicit route) per slot.
	FU ResourceKind = iota
	// OutReg is a PE's output register in one modulo slot: holds the single
	// value the PE most recently produced; readable by mesh neighbours.
	OutReg
	// RF is a PE's local register file in one modulo slot: holds up to
	// NumRegs values; readable only by the owning PE.
	RF
	// Bus is one row's shared memory bus in one modulo slot: at most one
	// memory operation per row per cycle.
	Bus
)

// String names the resource kind.
func (k ResourceKind) String() string {
	switch k {
	case FU:
		return "fu"
	case OutReg:
		return "outreg"
	case RF:
		return "rf"
	case Bus:
		return "bus"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// MRRG is the modulo routing resource graph used by the DRESC baseline: the
// time-extended CGRA with output registers and register files materialized as
// explicit capacity-bearing nodes, exactly the expansion the paper attributes
// to register-aware DRESC ("expands the time-extended CGRA graph to
// explicitly include registers as nodes"). Values flow along directed edges:
//
//	FU(p,t)      -> OutReg(p,(t+1)%II)   result lands in the output register
//	OutReg(p,t)  -> FU(q,t)              q reads p's out-reg (q adjacent or p)
//	OutReg(p,t)  -> OutReg(p,(t+1)%II)   the out-reg holds its value
//	OutReg(p,t)  -> RF(p,(t+1)%II)       value retired into the register file
//	RF(p,t)      -> RF(p,(t+1)%II)       the register file holds the value
//	RF(p,t)      -> FU(p,t)              the owning PE reads its own file
//
// Traversing an intermediate FU models routing through a PE (the ALU executes
// an explicit copy that slot).
type MRRG struct {
	C  *CGRA
	II int

	kind []ResourceKind
	pe   []int // owning PE (row index for Bus nodes, group index for group nodes)
	slot []int
	cap  []int
	out  [][]int

	// grpCount is the number of bus-group nodes per slot. 0 under the
	// paper's trivial scheme (one bus per row, capacity 1), where the
	// per-row Bus nodes alone are exact; under any other scheme the row
	// nodes degrade to dead-row gates and the appended group nodes carry
	// the capacities.
	grpCount int
}

// BuildMRRG constructs the MRRG for one II.
func BuildMRRG(c *CGRA, ii int) *MRRG {
	if ii <= 0 {
		panic("arch: MRRG needs a positive II")
	}
	m := &MRRG{C: c, II: ii}
	// Node layout: [FU | OutReg | RF] x (pe, slot), then Bus x (row, slot),
	// then — on non-trivial bus schemes only — Bus x (group, slot).
	n := c.NumPEs()
	if !c.TrivialBuses() {
		m.grpCount = c.NumBusGroups()
	}
	total := 3*n*ii + c.Rows*ii + m.grpCount*ii
	m.kind = make([]ResourceKind, total)
	m.pe = make([]int, total)
	m.slot = make([]int, total)
	m.cap = make([]int, total)
	m.out = make([][]int, total)
	for t := 0; t < ii; t++ {
		for p := 0; p < n; p++ {
			for _, k := range []ResourceKind{FU, OutReg, RF} {
				id := m.nodeID(k, p, t)
				m.kind[id] = k
				m.pe[id] = p
				m.slot[id] = t
				switch k {
				case FU, OutReg:
					// A broken PE contributes nothing: capacity 0 makes any
					// use an overuse the annealer must anneal away, and the
					// final Verify rejects.
					if c.PEOk(p) {
						m.cap[id] = 1
					}
				case RF:
					m.cap[id] = c.RegsAt(p)
				}
			}
		}
		for r := 0; r < c.Rows; r++ {
			id := m.busID(r, t)
			m.kind[id] = Bus
			m.pe[id] = r
			m.slot[id] = t
			if m.grpCount > 0 {
				// Gate only: per-slot bandwidth lives on the group nodes, so
				// a live row admits up to a full row of memory ops here.
				if c.RowBusOK(r) {
					m.cap[id] = c.Cols
				}
			} else if c.RowBusOK(r) {
				m.cap[id] = 1
			}
		}
		for g := 0; g < m.grpCount; g++ {
			id := m.busGrpID(g, t)
			m.kind[id] = Bus
			m.pe[id] = g
			m.slot[id] = t
			m.cap[id] = c.BusGroupCap(g)
		}
	}
	for t := 0; t < ii; t++ {
		next := (t + 1) % ii
		for p := 0; p < n; p++ {
			fu := m.FUNode(p, t)
			or := m.OutRegNode(p, t)
			rf := m.RFNode(p, t)
			m.addEdge(fu, m.OutRegNode(p, next))
			m.addEdge(or, fu)
			for _, q := range c.Neighbors(p) {
				m.addEdge(or, m.FUNode(q, t))
			}
			m.addEdge(or, m.OutRegNode(p, next))
			if c.RegsAt(p) > 0 {
				m.addEdge(or, m.RFNode(p, next))
				m.addEdge(rf, m.RFNode(p, next))
				m.addEdge(rf, fu)
			}
		}
	}
	return m
}

func (m *MRRG) nodeID(k ResourceKind, p, t int) int {
	base := int(k) * m.C.NumPEs() * m.II
	return base + t*m.C.NumPEs() + p
}

func (m *MRRG) busID(r, t int) int {
	return 3*m.C.NumPEs()*m.II + t*m.C.Rows + r
}

func (m *MRRG) busGrpID(g, t int) int {
	return 3*m.C.NumPEs()*m.II + m.C.Rows*m.II + t*m.grpCount + g
}

func (m *MRRG) addEdge(u, v int) { m.out[u] = append(m.out[u], v) }

// N returns the total node count.
func (m *MRRG) N() int { return len(m.kind) }

// FUNode returns the node id of PE p's ALU in slot t.
func (m *MRRG) FUNode(p, t int) int { return m.nodeID(FU, p, t) }

// OutRegNode returns the node id of PE p's output register in slot t.
func (m *MRRG) OutRegNode(p, t int) int { return m.nodeID(OutReg, p, t) }

// RFNode returns the node id of PE p's register file in slot t.
func (m *MRRG) RFNode(p, t int) int { return m.nodeID(RF, p, t) }

// BusNode returns the node id of row r's memory bus in slot t.
func (m *MRRG) BusNode(r, t int) int { return m.busID(r, t) }

// HasBusGroups reports whether the fabric's bus scheme materialized
// dedicated group-capacity nodes (non-trivial schemes only); memory ops then
// charge BusGroupNode in addition to the row gate BusNode.
func (m *MRRG) HasBusGroups() bool { return m.grpCount > 0 }

// BusGroupNode returns the node id of bus group g's capacity in slot t.
// Only valid when HasBusGroups.
func (m *MRRG) BusGroupNode(g, t int) int { return m.busGrpID(g, t) }

// Kind returns the resource kind of a node.
func (m *MRRG) Kind(id int) ResourceKind { return m.kind[id] }

// PE returns the owning PE of a node (the row index for Bus nodes).
func (m *MRRG) PE(id int) int { return m.pe[id] }

// Slot returns the modulo slot of a node.
func (m *MRRG) Slot(id int) int { return m.slot[id] }

// Cap returns the usage capacity of a node.
func (m *MRRG) Cap(id int) int { return m.cap[id] }

// Out returns the routing successors of a node. The slice is shared; callers
// must not modify it.
func (m *MRRG) Out(id int) []int { return m.out[id] }

// Arrays exposes the flat per-node arrays — kinds, capacities, and routing
// out-adjacency, each indexed by node id — for read-only hot-loop use (the
// DRESC router's inner Dijkstra iterates the MRRG millions of times per
// anneal, and the accessor-per-node indirection is measurable there).
// Callers must not mutate the returned slices.
func (m *MRRG) Arrays() (kind []ResourceKind, capacity []int, out [][]int) {
	return m.kind, m.cap, m.out
}

// Describe renders a node for diagnostics, e.g. "fu(3@1)".
func (m *MRRG) Describe(id int) string {
	return fmt.Sprintf("%s(%d@%d)", m.kind[id], m.pe[id], m.slot[id])
}
