package arch

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistryZoo(t *testing.T) {
	names := ArchNames()
	if len(names) < 5 {
		t.Fatalf("registry holds %d architectures, want >= 5: %v", len(names), names)
	}
	for _, name := range names {
		adl, blurb, ok := ArchSource(name)
		if !ok || adl == "" || blurb == "" {
			t.Errorf("%s: incomplete registry entry (adl=%q blurb=%q)", name, adl, blurb)
		}
		c, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
			continue
		}
		if c.UsablePEs() == 0 {
			t.Errorf("%s: no usable PEs", name)
		}
	}
}

func TestLookupIndependentInstances(t *testing.T) {
	a, err := Lookup("paper-4x4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("paper-4x4")
	if err != nil {
		t.Fatal(err)
	}
	a.DisablePE(0)
	if !b.PEOk(0) {
		t.Fatal("mutating one Lookup result leaked into another")
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-fabric")
	if !errors.Is(err, ErrUnknownArch) {
		t.Fatalf("err = %v, want ErrUnknownArch", err)
	}
	if !strings.Contains(err.Error(), "paper-4x4") {
		t.Errorf("unknown-arch error should list the registry: %v", err)
	}
}

func TestResolveNameVsInline(t *testing.T) {
	byName, err := Resolve("paper-4x4")
	if err != nil {
		t.Fatal(err)
	}
	inline, err := Resolve("grid 4x4; regs 4")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Fingerprint() != inline.Fingerprint() {
		t.Fatal("named and inline forms of the paper mesh disagree")
	}
	if _, err := Resolve("grid 4x4; regs"); err == nil {
		t.Fatal("malformed inline description resolved")
	}
}

func TestRegisterArchRejectsBadEntries(t *testing.T) {
	if err := RegisterArch("bad name", "grid 4x4; regs 4", "spaces"); err == nil {
		t.Error("space-containing name registered")
	}
	if err := RegisterArch("broken-adl", "grid 4x4; frob", "bad grammar"); err == nil {
		t.Error("uncompilable description registered")
	}
	if err := RegisterArch("paper-4x4", "grid 4x4; regs 4", "dup"); err == nil {
		t.Error("duplicate name registered")
	}
}

// TestZooFingerprintsDistinct: every zoo member hashes differently, and a
// bandwidth-only change (bus capacity) moves the fingerprint too.
func TestZooFingerprintsDistinct(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, name := range ArchNames() {
		c, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %s and %s both hash to %s", prev, name, fp)
		}
		seen[fp] = name
	}

	cap2, err := Resolve("grid 4x4; regs 4; bus global cap 2")
	if err != nil {
		t.Fatal(err)
	}
	cap3, err := Resolve("grid 4x4; regs 4; bus global cap 3")
	if err != nil {
		t.Fatal(err)
	}
	if cap2.Fingerprint() == cap3.Fingerprint() {
		t.Error("bus-capacity change did not change the fingerprint")
	}
	fan, err := Resolve("grid 4x4; regs 4; fanout 2")
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Lookup("paper-4x4")
	if err != nil {
		t.Fatal(err)
	}
	if fan.Fingerprint() == paper.Fingerprint() {
		t.Error("fanout bound did not change the fingerprint")
	}
}
