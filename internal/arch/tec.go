package arch

import (
	"fmt"

	"regimap/internal/graph"
)

// TEC is the time-extended CGRA R_II of the paper (Section 3): the PE mesh
// replicated II times, one replica per modulo slot, with an arc from (p, t)
// to (q, (t+1) mod II) whenever q can read p's output register (q adjacent to
// p, or q == p). Registers are deliberately not materialized as nodes here —
// REGIMap carries the register requirement as arc weights on the
// compatibility graph instead, which is the paper's key scalability point.
type TEC struct {
	C  *CGRA
	II int
}

// NewTEC builds the time-extended PE graph for the given II.
func NewTEC(c *CGRA, ii int) *TEC {
	if ii <= 0 {
		panic("arch: TEC needs a positive II")
	}
	return &TEC{C: c, II: ii}
}

// Nodes returns the number of (PE, slot) nodes.
func (t *TEC) Nodes() int { return t.C.NumPEs() * t.II }

// ID maps a (PE, slot) pair to a dense node identifier.
func (t *TEC) ID(pe, slot int) int {
	if slot < 0 || slot >= t.II {
		panic(fmt.Sprintf("arch: slot %d out of range [0,%d)", slot, t.II))
	}
	return slot*t.C.NumPEs() + pe
}

// PE returns the PE component of a node identifier.
func (t *TEC) PE(id int) int { return id % t.C.NumPEs() }

// Slot returns the modulo time slot of a node identifier.
func (t *TEC) Slot(id int) int { return id / t.C.NumPEs() }

// Graph materializes R_II as a digraph (mainly for visualization and tests;
// the mappers use Connected/ID directly).
func (t *TEC) Graph() *graph.Digraph {
	g := graph.New(t.Nodes())
	for slot := 0; slot < t.II; slot++ {
		next := (slot + 1) % t.II
		for p := 0; p < t.C.NumPEs(); p++ {
			g.AddEdge(t.ID(p, slot), t.ID(p, next))
			for _, q := range t.C.Neighbors(p) {
				g.AddEdge(t.ID(p, slot), t.ID(q, next))
			}
		}
	}
	return g
}
