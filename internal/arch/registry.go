package arch

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The named-architecture registry: a zoo of described fabrics addressable by
// name from the CLI (-arch), the server (the request's arch field), and the
// experiments. Entries hold the ADL source, so Lookup always compiles a
// fresh, independently mutable CGRA.

// ErrUnknownArch reports a Lookup of a name the registry does not hold.
// Callers distinguish it (typically as HTTP 404) from malformed inline
// descriptions (*DescError, HTTP 400).
var ErrUnknownArch = errors.New("arch: unknown architecture")

type archEntry struct {
	adl   string
	blurb string
}

var (
	regMu    sync.RWMutex
	registry = map[string]archEntry{}
)

// RegisterArch adds a named architecture. The name must be name-shaped (see
// IsArchName) and unused; the description must compile. The built-in zoo is
// registered at init; tests and embedders may add more.
func RegisterArch(name, adl, blurb string) error {
	if !IsArchName(name) {
		return fmt.Errorf("arch: bad architecture name %q (want letters, digits, '.', '_', '-')", name)
	}
	d, err := ParseDesc(adl)
	if err != nil {
		return err
	}
	if _, err := d.Compile(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("arch: architecture %q already registered", name)
	}
	registry[name] = archEntry{adl: adl, blurb: blurb}
	return nil
}

func mustRegister(name, adl, blurb string) {
	if err := RegisterArch(name, adl, blurb); err != nil {
		panic(err)
	}
}

// Lookup compiles the named architecture. The returned array is fresh on
// every call — callers may mutate it (faults, restrictions) freely.
func Lookup(name string) (*CGRA, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownArch, name, strings.Join(ArchNames(), ", "))
	}
	d, err := ParseDesc(e.adl)
	if err != nil {
		return nil, err
	}
	return d.Compile()
}

// ArchSource returns the registered ADL text and blurb of a named
// architecture.
func ArchSource(name string) (adl, blurb string, ok bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e.adl, e.blurb, ok
}

// ArchNames lists the registered architecture names, sorted.
func ArchNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsArchName reports whether s is name-shaped: non-empty and built from
// letters, digits, '.', '_' and '-' only. Anything else (whitespace,
// semicolons) is treated as an inline description by Resolve.
func IsArchName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Resolve turns an -arch / wire "arch" value into an array: a name-shaped
// string goes through the registry, anything else is parsed and compiled as
// an inline description. Errors are ErrUnknownArch (bad name) or *DescError
// (bad description).
func Resolve(s string) (*CGRA, error) {
	if IsArchName(s) {
		return Lookup(s)
	}
	d, err := ParseDesc(s)
	if err != nil {
		return nil, err
	}
	return d.Compile()
}

func init() {
	mustRegister("paper-4x4",
		"grid 4x4; regs 4",
		"the paper's evaluation fabric: 4x4 orthogonal mesh, 4-entry rotating files, one memory bus per row")
	mustRegister("adres-4x4",
		"grid 4x4; topo mesh+; regs 4",
		"ADRES-style 4x4 mesh with diagonal links")
	mustRegister("onehop-4x4",
		"grid 4x4; topo 1hop; regs 4",
		"4x4 mesh plus distance-2 orthogonal hops (CGRA-Tool's 1-hop interconnect)")
	mustRegister("torus-8x8",
		"grid 8x8; topo torus; regs 4",
		"8x8 orthogonal mesh with torus wrap-around in both dimensions")
	mustRegister("hetero-mem-col",
		"grid 4x4; regs 4; cap all nomem; cap col 0 all",
		"heterogeneous 4x4 mesh: only column 0 reaches the memory buses")
	mustRegister("band2-4x4",
		"grid 4x4; regs 4; bus global cap 2",
		"bandwidth-constrained 4x4 mesh: one global memory bus, two accesses per cycle")
}
