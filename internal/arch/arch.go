// Package arch models the coarse-grained reconfigurable array of the REGIMap
// paper: a 2-D mesh of processing elements (PEs), each with a single-cycle
// ALU, an output register visible to its mesh neighbours in the next cycle,
// and a small rotating local register file readable only by the PE itself.
// One shared data bus per row permits a single memory access per row per
// cycle.
//
// Two derived structures are provided for the mappers:
//
//   - the time-extended PE graph R_II (PEs replicated II times with modulo
//     wrap-around), which REGIMap's compatibility graph is built against, and
//   - the modulo routing resource graph (MRRG) with explicit output-register
//     and register-file nodes, which the DRESC baseline anneals over.
package arch

import (
	"fmt"

	"regimap/internal/dfg"
)

// Topology selects the inter-PE interconnect.
type Topology int

const (
	// Mesh connects each PE to its 4 orthogonal neighbours (the paper's
	// configuration, Figure 1).
	Mesh Topology = iota
	// MeshPlus adds the 4 diagonal neighbours (a common CGRA variant; used
	// by the interconnect ablation bench).
	MeshPlus
	// Torus wraps the orthogonal mesh around both dimensions.
	Torus
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Mesh:
		return "mesh"
	case MeshPlus:
		return "mesh+"
	case Torus:
		return "torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// CGRA describes one array instance. The zero value is not usable; construct
// with New or NewMesh.
type CGRA struct {
	Rows, Cols int
	NumRegs    int // local rotating register file size per PE
	Topology   Topology

	// caps, when non-nil, restricts which operation kinds each PE supports
	// (heterogeneous arrays). nil means fully homogeneous, the paper's model.
	caps []map[dfg.OpKind]bool

	neighbors [][]int // cached adjacency, excludes self
	adjacent  []bool  // dense self-or-adjacent matrix

	// Fault state (see internal/fault). All nil/zero on a healthy array, so
	// the fault-free fast paths and results are untouched. Every fault is a
	// constraint tightening: a broken PE supports nothing and is severed from
	// the mesh, a cut link disappears from Neighbors/Connected, a limited
	// register file lowers RegsAt below NumRegs, and a dead row bus forbids
	// memory operations on that row.
	broken  []bool // ALU dead: PE can execute nothing, its registers are lost
	regCap  []int  // per-PE usable register count (nil: NumRegs everywhere)
	deadRow []bool // row bus failed: no memory operation may issue on the row
	faults  int    // count of applied fault primitives
}

// NewMesh returns a rows x cols orthogonal-mesh CGRA with the given register
// file size, the configuration used throughout the paper's evaluation.
func NewMesh(rows, cols, numRegs int) *CGRA {
	return New(rows, cols, numRegs, Mesh)
}

// New returns a CGRA with an arbitrary topology.
func New(rows, cols, numRegs int, topo Topology) *CGRA {
	if rows <= 0 || cols <= 0 {
		panic("arch: array dimensions must be positive")
	}
	if numRegs < 0 {
		panic("arch: negative register file size")
	}
	c := &CGRA{Rows: rows, Cols: cols, NumRegs: numRegs, Topology: topo}
	c.buildAdjacency()
	return c
}

func (c *CGRA) buildAdjacency() {
	n := c.NumPEs()
	c.neighbors = make([][]int, n)
	c.adjacent = make([]bool, n*n)
	type delta struct{ dr, dc int }
	deltas := []delta{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	if c.Topology == MeshPlus {
		deltas = append(deltas, delta{-1, -1}, delta{-1, 1}, delta{1, -1}, delta{1, 1})
	}
	for p := 0; p < n; p++ {
		r, col := c.RowOf(p), c.ColOf(p)
		c.adjacent[p*n+p] = true
		for _, d := range deltas {
			nr, nc := r+d.dr, col+d.dc
			if c.Topology == Torus {
				nr = (nr + c.Rows) % c.Rows
				nc = (nc + c.Cols) % c.Cols
			}
			if nr < 0 || nr >= c.Rows || nc < 0 || nc >= c.Cols {
				continue
			}
			q := c.PEAt(nr, nc)
			if q == p {
				continue // degenerate torus dimension
			}
			if !c.adjacent[p*n+q] {
				c.neighbors[p] = append(c.neighbors[p], q)
				c.adjacent[p*n+q] = true
			}
		}
	}
}

// NumPEs returns the number of processing elements.
func (c *CGRA) NumPEs() int { return c.Rows * c.Cols }

// PEAt returns the PE identifier at (row, col).
func (c *CGRA) PEAt(row, col int) int {
	if row < 0 || row >= c.Rows || col < 0 || col >= c.Cols {
		panic(fmt.Sprintf("arch: PE (%d,%d) out of range %dx%d", row, col, c.Rows, c.Cols))
	}
	return row*c.Cols + col
}

// RowOf returns the row of PE p.
func (c *CGRA) RowOf(p int) int { return p / c.Cols }

// ColOf returns the column of PE p.
func (c *CGRA) ColOf(p int) int { return p % c.Cols }

// Neighbors returns the PEs whose output register PE p can read (excluding p
// itself; every PE can always read its own output register). The slice is
// shared; callers must not modify it.
func (c *CGRA) Neighbors(p int) []int { return c.neighbors[p] }

// Connected reports whether PE q can read PE p's output register in the cycle
// after p produces: q is p itself or a topological neighbour.
func (c *CGRA) Connected(p, q int) bool {
	return c.adjacent[p*c.NumPEs()+q]
}

// RestrictPE marks PE p as supporting only the listed operation kinds,
// turning the array heterogeneous. Route is always permitted (any ALU can
// copy).
func (c *CGRA) RestrictPE(p int, kinds ...dfg.OpKind) {
	if c.caps == nil {
		c.caps = make([]map[dfg.OpKind]bool, c.NumPEs())
	}
	m := map[dfg.OpKind]bool{dfg.Route: true}
	for _, k := range kinds {
		m[k] = true
	}
	c.caps[p] = m
}

// Supports reports whether PE p's ALU can execute operation kind k. A broken
// PE supports nothing, including Route.
func (c *CGRA) Supports(p int, k dfg.OpKind) bool {
	if c.broken != nil && c.broken[p] {
		return false
	}
	if c.caps == nil || c.caps[p] == nil {
		return true
	}
	return c.caps[p][k]
}

// Homogeneous reports whether every PE supports every operation.
func (c *CGRA) Homogeneous() bool { return c.caps == nil && c.broken == nil }

// DisablePE marks PE p permanently broken: its ALU executes nothing and its
// output register and register file are unusable, so it is also severed from
// the mesh (no neighbour can read it, it can read no neighbour).
func (c *CGRA) DisablePE(p int) {
	c.checkPE(p)
	if c.broken == nil {
		c.broken = make([]bool, c.NumPEs())
	}
	if c.broken[p] {
		return
	}
	c.broken[p] = true
	c.faults++
	n := c.NumPEs()
	for q := 0; q < n; q++ {
		c.adjacent[p*n+q] = false
		c.adjacent[q*n+p] = false
		c.neighbors[q] = removePE(c.neighbors[q], p)
	}
	c.neighbors[p] = nil
}

// CutLink severs the mesh link between PEs p and q in both directions:
// neither output register remains readable by the other side. It errors when
// the two PEs were not connected to begin with.
func (c *CGRA) CutLink(p, q int) error {
	c.checkPE(p)
	c.checkPE(q)
	n := c.NumPEs()
	if p == q {
		return fmt.Errorf("arch: PE %d's self loop (its own output register) cannot be cut", p)
	}
	if !c.adjacent[p*n+q] && !c.adjacent[q*n+p] {
		return fmt.Errorf("arch: no link between PE %d and PE %d to cut", p, q)
	}
	c.adjacent[p*n+q] = false
	c.adjacent[q*n+p] = false
	c.neighbors[p] = removePE(c.neighbors[p], q)
	c.neighbors[q] = removePE(c.neighbors[q], p)
	c.faults++
	return nil
}

// LimitRegs caps PE p's usable rotating registers at k (stuck or partially
// failed register file). k must be in [0, NumRegs].
func (c *CGRA) LimitRegs(p, k int) {
	c.checkPE(p)
	if k < 0 || k > c.NumRegs {
		panic(fmt.Sprintf("arch: register limit %d outside [0,%d]", k, c.NumRegs))
	}
	if c.regCap == nil {
		c.regCap = make([]int, c.NumPEs())
		for i := range c.regCap {
			c.regCap[i] = c.NumRegs
		}
	}
	if c.regCap[p] != k {
		c.regCap[p] = k
		c.faults++
	}
}

// DisableRowBus marks row r's shared memory bus failed: no memory operation
// may issue anywhere on that row.
func (c *CGRA) DisableRowBus(r int) {
	if r < 0 || r >= c.Rows {
		panic(fmt.Sprintf("arch: row %d out of range [0,%d)", r, c.Rows))
	}
	if c.deadRow == nil {
		c.deadRow = make([]bool, c.Rows)
	}
	if !c.deadRow[r] {
		c.deadRow[r] = true
		c.faults++
	}
}

// PEOk reports whether PE p's ALU is alive.
func (c *CGRA) PEOk(p int) bool { return c.broken == nil || !c.broken[p] }

// RegsAt returns the number of usable rotating registers at PE p: NumRegs
// unless the file is limited by a fault, and 0 on a broken PE.
func (c *CGRA) RegsAt(p int) int {
	if !c.PEOk(p) {
		return 0
	}
	if c.regCap == nil {
		return c.NumRegs
	}
	return c.regCap[p]
}

// RowBusOK reports whether row r's shared memory bus is alive.
func (c *CGRA) RowBusOK(r int) bool { return c.deadRow == nil || !c.deadRow[r] }

// Healthy reports whether the array carries no fault at all — the paper's
// pristine configuration, and the fast path every mapper preserves
// byte-identically.
func (c *CGRA) Healthy() bool { return c.faults == 0 }

// FaultCount returns the number of fault primitives applied to the array.
func (c *CGRA) FaultCount() int { return c.faults }

// UsablePEs returns the number of PEs whose ALU is alive.
func (c *CGRA) UsablePEs() int {
	if c.broken == nil {
		return c.NumPEs()
	}
	n := 0
	for p := 0; p < c.NumPEs(); p++ {
		if !c.broken[p] {
			n++
		}
	}
	return n
}

// UsableMemRows returns the number of rows that can still issue memory
// operations: a live bus plus at least one live PE on the row.
func (c *CGRA) UsableMemRows() int {
	if c.Healthy() {
		return c.Rows
	}
	rows := 0
	for r := 0; r < c.Rows; r++ {
		if !c.RowBusOK(r) {
			continue
		}
		for col := 0; col < c.Cols; col++ {
			if c.PEOk(c.PEAt(r, col)) {
				rows++
				break
			}
		}
	}
	return rows
}

// MIIResources returns the PE and memory-row counts that resource-bound II
// calculations (dfg.MII) and scheduler limits should use: the nominal array
// when healthy, the usable counts when faulted. Both are floored at 1 so a
// fully-dead resource class still yields a finite bound — the mappers' own
// feasibility checks reject such arrays with a proper error instead.
func (c *CGRA) MIIResources() (pes, rows int) {
	if c.Healthy() {
		return c.NumPEs(), c.Rows
	}
	pes, rows = c.UsablePEs(), c.UsableMemRows()
	if pes < 1 {
		pes = 1
	}
	if rows < 1 {
		rows = 1
	}
	return pes, rows
}

func (c *CGRA) checkPE(p int) {
	if p < 0 || p >= c.NumPEs() {
		panic(fmt.Sprintf("arch: PE %d out of range [0,%d)", p, c.NumPEs()))
	}
}

func removePE(list []int, p int) []int {
	out := list[:0]
	for _, q := range list {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// String describes the array, e.g. "4x4 mesh, 4 regs/PE". Faulted arrays
// report the fault count.
func (c *CGRA) String() string {
	if c.faults > 0 {
		return fmt.Sprintf("%dx%d %s, %d regs/PE, %d faults", c.Rows, c.Cols, c.Topology, c.NumRegs, c.faults)
	}
	return fmt.Sprintf("%dx%d %s, %d regs/PE", c.Rows, c.Cols, c.Topology, c.NumRegs)
}

// Clone returns an independent copy (capability restrictions and fault state
// included).
func (c *CGRA) Clone() *CGRA {
	d := New(c.Rows, c.Cols, c.NumRegs, c.Topology)
	if c.caps != nil {
		d.caps = make([]map[dfg.OpKind]bool, len(c.caps))
		for i, m := range c.caps {
			if m == nil {
				continue
			}
			d.caps[i] = make(map[dfg.OpKind]bool, len(m))
			for k, v := range m {
				d.caps[i][k] = v
			}
		}
	}
	if c.faults > 0 {
		d.faults = c.faults
		if c.broken != nil {
			d.broken = append([]bool(nil), c.broken...)
		}
		if c.regCap != nil {
			d.regCap = append([]int(nil), c.regCap...)
		}
		if c.deadRow != nil {
			d.deadRow = append([]bool(nil), c.deadRow...)
		}
		// Adjacency reflects severed links and broken PEs: deep-copy rather
		// than rebuild, so cut links survive cloning.
		d.adjacent = append([]bool(nil), c.adjacent...)
		d.neighbors = make([][]int, len(c.neighbors))
		for p, ns := range c.neighbors {
			d.neighbors[p] = append([]int(nil), ns...)
		}
	}
	return d
}
