// Package arch models the coarse-grained reconfigurable array of the REGIMap
// paper: a 2-D mesh of processing elements (PEs), each with a single-cycle
// ALU, an output register visible to its mesh neighbours in the next cycle,
// and a small rotating local register file readable only by the PE itself.
// One shared data bus per row permits a single memory access per row per
// cycle.
//
// Two derived structures are provided for the mappers:
//
//   - the time-extended PE graph R_II (PEs replicated II times with modulo
//     wrap-around), which REGIMap's compatibility graph is built against, and
//   - the modulo routing resource graph (MRRG) with explicit output-register
//     and register-file nodes, which the DRESC baseline anneals over.
package arch

import (
	"fmt"

	"regimap/internal/dfg"
)

// Topology selects the inter-PE interconnect.
type Topology int

const (
	// Mesh connects each PE to its 4 orthogonal neighbours (the paper's
	// configuration, Figure 1).
	Mesh Topology = iota
	// MeshPlus adds the 4 diagonal neighbours (a common CGRA variant; used
	// by the interconnect ablation bench).
	MeshPlus
	// Torus wraps the orthogonal mesh around both dimensions.
	Torus
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Mesh:
		return "mesh"
	case MeshPlus:
		return "mesh+"
	case Torus:
		return "torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// CGRA describes one array instance. The zero value is not usable; construct
// with New or NewMesh.
type CGRA struct {
	Rows, Cols int
	NumRegs    int // local rotating register file size per PE
	Topology   Topology

	// caps, when non-nil, restricts which operation kinds each PE supports
	// (heterogeneous arrays). nil means fully homogeneous, the paper's model.
	caps []map[dfg.OpKind]bool

	neighbors [][]int // cached adjacency, excludes self
	adjacent  []bool  // dense self-or-adjacent matrix
}

// NewMesh returns a rows x cols orthogonal-mesh CGRA with the given register
// file size, the configuration used throughout the paper's evaluation.
func NewMesh(rows, cols, numRegs int) *CGRA {
	return New(rows, cols, numRegs, Mesh)
}

// New returns a CGRA with an arbitrary topology.
func New(rows, cols, numRegs int, topo Topology) *CGRA {
	if rows <= 0 || cols <= 0 {
		panic("arch: array dimensions must be positive")
	}
	if numRegs < 0 {
		panic("arch: negative register file size")
	}
	c := &CGRA{Rows: rows, Cols: cols, NumRegs: numRegs, Topology: topo}
	c.buildAdjacency()
	return c
}

func (c *CGRA) buildAdjacency() {
	n := c.NumPEs()
	c.neighbors = make([][]int, n)
	c.adjacent = make([]bool, n*n)
	type delta struct{ dr, dc int }
	deltas := []delta{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	if c.Topology == MeshPlus {
		deltas = append(deltas, delta{-1, -1}, delta{-1, 1}, delta{1, -1}, delta{1, 1})
	}
	for p := 0; p < n; p++ {
		r, col := c.RowOf(p), c.ColOf(p)
		c.adjacent[p*n+p] = true
		for _, d := range deltas {
			nr, nc := r+d.dr, col+d.dc
			if c.Topology == Torus {
				nr = (nr + c.Rows) % c.Rows
				nc = (nc + c.Cols) % c.Cols
			}
			if nr < 0 || nr >= c.Rows || nc < 0 || nc >= c.Cols {
				continue
			}
			q := c.PEAt(nr, nc)
			if q == p {
				continue // degenerate torus dimension
			}
			if !c.adjacent[p*n+q] {
				c.neighbors[p] = append(c.neighbors[p], q)
				c.adjacent[p*n+q] = true
			}
		}
	}
}

// NumPEs returns the number of processing elements.
func (c *CGRA) NumPEs() int { return c.Rows * c.Cols }

// PEAt returns the PE identifier at (row, col).
func (c *CGRA) PEAt(row, col int) int {
	if row < 0 || row >= c.Rows || col < 0 || col >= c.Cols {
		panic(fmt.Sprintf("arch: PE (%d,%d) out of range %dx%d", row, col, c.Rows, c.Cols))
	}
	return row*c.Cols + col
}

// RowOf returns the row of PE p.
func (c *CGRA) RowOf(p int) int { return p / c.Cols }

// ColOf returns the column of PE p.
func (c *CGRA) ColOf(p int) int { return p % c.Cols }

// Neighbors returns the PEs whose output register PE p can read (excluding p
// itself; every PE can always read its own output register). The slice is
// shared; callers must not modify it.
func (c *CGRA) Neighbors(p int) []int { return c.neighbors[p] }

// Connected reports whether PE q can read PE p's output register in the cycle
// after p produces: q is p itself or a topological neighbour.
func (c *CGRA) Connected(p, q int) bool {
	return c.adjacent[p*c.NumPEs()+q]
}

// RestrictPE marks PE p as supporting only the listed operation kinds,
// turning the array heterogeneous. Route is always permitted (any ALU can
// copy).
func (c *CGRA) RestrictPE(p int, kinds ...dfg.OpKind) {
	if c.caps == nil {
		c.caps = make([]map[dfg.OpKind]bool, c.NumPEs())
	}
	m := map[dfg.OpKind]bool{dfg.Route: true}
	for _, k := range kinds {
		m[k] = true
	}
	c.caps[p] = m
}

// Supports reports whether PE p's ALU can execute operation kind k.
func (c *CGRA) Supports(p int, k dfg.OpKind) bool {
	if c.caps == nil || c.caps[p] == nil {
		return true
	}
	return c.caps[p][k]
}

// Homogeneous reports whether every PE supports every operation.
func (c *CGRA) Homogeneous() bool { return c.caps == nil }

// String describes the array, e.g. "4x4 mesh, 4 regs/PE".
func (c *CGRA) String() string {
	return fmt.Sprintf("%dx%d %s, %d regs/PE", c.Rows, c.Cols, c.Topology, c.NumRegs)
}

// Clone returns an independent copy (capability restrictions included).
func (c *CGRA) Clone() *CGRA {
	d := New(c.Rows, c.Cols, c.NumRegs, c.Topology)
	if c.caps != nil {
		d.caps = make([]map[dfg.OpKind]bool, len(c.caps))
		for i, m := range c.caps {
			if m == nil {
				continue
			}
			d.caps[i] = make(map[dfg.OpKind]bool, len(m))
			for k, v := range m {
				d.caps[i][k] = v
			}
		}
	}
	return d
}
