// Package arch models the coarse-grained reconfigurable array of the REGIMap
// paper: a 2-D mesh of processing elements (PEs), each with a single-cycle
// ALU, an output register visible to its mesh neighbours in the next cycle,
// and a small rotating local register file readable only by the PE itself.
// One shared data bus per row permits a single memory access per row per
// cycle.
//
// Beyond the paper's fixed mesh, the package carries a declarative
// architecture description language (desc.go) and a named-architecture
// registry (registry.go): fabrics with diagonal or 1-hop interconnect, torus
// wrap, heterogeneous PE capability classes, per-PE register-file sizes, and
// capacity-checked memory bus groups all compile into the same CGRA type,
// and the paper's 4x4 mesh stays the byte-identical default.
//
// Two derived structures are provided for the mappers:
//
//   - the time-extended PE graph R_II (PEs replicated II times with modulo
//     wrap-around), which REGIMap's compatibility graph is built against, and
//   - the modulo routing resource graph (MRRG) with explicit output-register
//     and register-file nodes, which the DRESC baseline anneals over.
package arch

import (
	"fmt"

	"regimap/internal/dfg"
	"regimap/internal/graph"
)

// Topology selects the inter-PE interconnect.
type Topology int

const (
	// Mesh connects each PE to its 4 orthogonal neighbours (the paper's
	// configuration, Figure 1).
	Mesh Topology = iota
	// MeshPlus adds the 4 diagonal neighbours (a common CGRA variant; used
	// by the interconnect ablation bench).
	MeshPlus
	// Torus wraps the orthogonal mesh around both dimensions.
	Torus
	// OneHop adds distance-2 orthogonal hops to the mesh (the CGRA-Tool /
	// ADRES-style "1-hop" interconnect).
	OneHop
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Mesh:
		return "mesh"
	case MeshPlus:
		return "mesh+"
	case Torus:
		return "torus"
	case OneHop:
		return "1hop"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// CGRA describes one array instance. The zero value is not usable; construct
// with New, NewMesh, a compiled Desc, or Lookup.
type CGRA struct {
	Rows, Cols int
	NumRegs    int // register budget: the largest nominal file size of any PE
	Topology   Topology

	// caps, when non-nil, restricts which operation kinds each PE supports
	// (heterogeneous arrays). nil means fully homogeneous, the paper's model.
	caps []map[dfg.OpKind]bool

	// Nominal (fault-free) connectivity. nomAdj rows hold the self-or-adjacent
	// relation as bitsets; nomNeighbors caches the neighbour lists. Both are
	// immutable once construction finishes.
	nomAdj       []*graph.Bitset
	nomNeighbors [][]int

	// Effective connectivity. These alias the nominal structures until the
	// first topology fault (DisablePE, CutLink) copies them (ownAdj), so
	// healthy arrays pay no duplication.
	adj       []*graph.Bitset
	neighbors [][]int
	ownAdj    bool

	// nomRegs, when non-nil, holds each PE's nominal register-file size
	// (heterogeneous register files). nil means NumRegs everywhere.
	nomRegs []int

	// Memory-bus bandwidth model. The paper's scheme — one bus per row, one
	// memory operation per bus per cycle — is the nil/nil default and changes
	// nothing. A described fabric may instead group PEs into bus groups
	// (per row, per column, or one global bus) with per-group capacities.
	busGroup []int // per-PE bus group (nil: the PE's row)
	busCap   []int // per-group memory ops per cycle (nil: 1 each)

	// fanout, when positive, bounds how many remote PEs may read one output
	// register in the same cycle (link bandwidth). 0 means unlimited, the
	// paper's model.
	fanout int

	// customLinks records that the description edited the topology's link
	// set (link/nolink statements), so Describe must diff adjacency against
	// the bare topology and wire encoders cannot use the shape fields alone.
	customLinks bool

	// Fault state (see internal/fault). All nil/zero on a healthy array, so
	// the fault-free fast paths and results are untouched. Every fault is a
	// constraint tightening: a broken PE supports nothing and is severed from
	// the mesh, a cut link disappears from Neighbors/Connected, a limited
	// register file lowers RegsAt below the nominal size, and a dead row bus
	// forbids memory operations on that row.
	broken  []bool // ALU dead: PE can execute nothing, its registers are lost
	regCap  []int  // per-PE usable register count (nil: nominal everywhere)
	deadRow []bool // row bus failed: no memory operation may issue on the row
	faults  int    // count of applied fault primitives
}

// NewMesh returns a rows x cols orthogonal-mesh CGRA with the given register
// file size, the configuration used throughout the paper's evaluation.
func NewMesh(rows, cols, numRegs int) *CGRA {
	return New(rows, cols, numRegs, Mesh)
}

// New returns a CGRA with an arbitrary topology.
func New(rows, cols, numRegs int, topo Topology) *CGRA {
	if rows <= 0 || cols <= 0 {
		panic("arch: array dimensions must be positive")
	}
	if numRegs < 0 {
		panic("arch: negative register file size")
	}
	c := &CGRA{Rows: rows, Cols: cols, NumRegs: numRegs, Topology: topo}
	c.buildAdjacency()
	return c
}

// topologyDeltas returns the neighbour offsets of a topology, in the fixed
// order that determines Neighbors ordering (and therefore every mapper's
// deterministic tie-breaks).
func topologyDeltas(t Topology) [][2]int {
	deltas := [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	switch t {
	case MeshPlus:
		deltas = append(deltas, [2]int{-1, -1}, [2]int{-1, 1}, [2]int{1, -1}, [2]int{1, 1})
	case OneHop:
		deltas = append(deltas, [2]int{-2, 0}, [2]int{2, 0}, [2]int{0, -2}, [2]int{0, 2})
	}
	return deltas
}

func (c *CGRA) buildAdjacency() {
	n := c.NumPEs()
	c.nomNeighbors = make([][]int, n)
	c.nomAdj = graph.NewBitsetSlab(n, n)
	deltas := topologyDeltas(c.Topology)
	for p := 0; p < n; p++ {
		r, col := c.RowOf(p), c.ColOf(p)
		c.nomAdj[p].Set(p)
		for _, d := range deltas {
			nr, nc := r+d[0], col+d[1]
			if c.Topology == Torus {
				nr = (nr + c.Rows) % c.Rows
				nc = (nc + c.Cols) % c.Cols
			}
			if nr < 0 || nr >= c.Rows || nc < 0 || nc >= c.Cols {
				continue
			}
			q := c.PEAt(nr, nc)
			if q == p {
				continue // degenerate torus dimension
			}
			if !c.nomAdj[p].Has(q) {
				c.nomNeighbors[p] = append(c.nomNeighbors[p], q)
				c.nomAdj[p].Set(q)
			}
		}
	}
	c.adj, c.neighbors, c.ownAdj = c.nomAdj, c.nomNeighbors, false
}

// setNominalLink adds (on) or removes (off) the nominal bidirectional link
// between distinct PEs p and q. Construction-time only (Desc.Compile): it
// must not be called once the array is in use, because nominal connectivity
// is immutable afterwards.
func (c *CGRA) setNominalLink(p, q int, on bool) {
	if on {
		if !c.nomAdj[p].Has(q) {
			c.nomAdj[p].Set(q)
			c.nomNeighbors[p] = append(c.nomNeighbors[p], q)
		}
		if !c.nomAdj[q].Has(p) {
			c.nomAdj[q].Set(p)
			c.nomNeighbors[q] = append(c.nomNeighbors[q], p)
		}
		return
	}
	c.nomAdj[p].Clear(q)
	c.nomAdj[q].Clear(p)
	c.nomNeighbors[p] = removePE(c.nomNeighbors[p], q)
	c.nomNeighbors[q] = removePE(c.nomNeighbors[q], p)
}

// ensureOwnAdjacency deep-copies the effective connectivity away from the
// nominal structures before the first topology mutation, so the nominal
// fabric stays intact for NominalConnected and fault validation.
func (c *CGRA) ensureOwnAdjacency() {
	if c.ownAdj {
		return
	}
	n := c.NumPEs()
	adj := graph.NewBitsetSlab(n, n)
	nbrs := make([][]int, n)
	for p := 0; p < n; p++ {
		adj[p].CopyFrom(c.adj[p])
		nbrs[p] = append([]int(nil), c.neighbors[p]...)
	}
	c.adj, c.neighbors, c.ownAdj = adj, nbrs, true
}

// NumPEs returns the number of processing elements.
func (c *CGRA) NumPEs() int { return c.Rows * c.Cols }

// PEAt returns the PE identifier at (row, col).
func (c *CGRA) PEAt(row, col int) int {
	if row < 0 || row >= c.Rows || col < 0 || col >= c.Cols {
		panic(fmt.Sprintf("arch: PE (%d,%d) out of range %dx%d", row, col, c.Rows, c.Cols))
	}
	return row*c.Cols + col
}

// RowOf returns the row of PE p.
func (c *CGRA) RowOf(p int) int { return p / c.Cols }

// ColOf returns the column of PE p.
func (c *CGRA) ColOf(p int) int { return p % c.Cols }

// Neighbors returns the PEs whose output register PE p can read (excluding p
// itself; every PE can always read its own output register). The slice is
// shared; callers must not modify it.
func (c *CGRA) Neighbors(p int) []int { return c.neighbors[p] }

// Connected reports whether PE q can read PE p's output register in the cycle
// after p produces: q is p itself or a topological neighbour.
func (c *CGRA) Connected(p, q int) bool { return c.adj[p].Has(q) }

// AdjacencyRow exposes PE p's self-or-adjacent relation as a bitset for
// read-only bulk consumers (hashing, set intersection). Callers must not
// modify it.
func (c *CGRA) AdjacencyRow(p int) *graph.Bitset { return c.adj[p] }

// NominalConnected reports Connected on the fault-free fabric: the link set
// the architecture description built, before any DisablePE/CutLink. Fault
// validation uses it to decide which links exist to cut.
func (c *CGRA) NominalConnected(p, q int) bool { return c.nomAdj[p].Has(q) }

// RestrictPE marks PE p as supporting only the listed operation kinds,
// turning the array heterogeneous. Route is always permitted (any ALU can
// copy).
func (c *CGRA) RestrictPE(p int, kinds ...dfg.OpKind) {
	if c.caps == nil {
		c.caps = make([]map[dfg.OpKind]bool, c.NumPEs())
	}
	m := map[dfg.OpKind]bool{dfg.Route: true}
	for _, k := range kinds {
		m[k] = true
	}
	c.caps[p] = m
}

// Supports reports whether PE p's ALU can execute operation kind k. A broken
// PE supports nothing, including Route.
func (c *CGRA) Supports(p int, k dfg.OpKind) bool {
	if c.broken != nil && c.broken[p] {
		return false
	}
	if c.caps == nil || c.caps[p] == nil {
		return true
	}
	return c.caps[p][k]
}

// Homogeneous reports whether every PE supports every operation.
func (c *CGRA) Homogeneous() bool { return c.caps == nil && c.broken == nil }

// UniformRegs reports whether every PE's nominal register file has NumRegs
// entries (the paper's model). Heterogeneous files make the clique engine
// charge a per-PE handicap exactly like fault-limited files do.
func (c *CGRA) UniformRegs() bool { return c.nomRegs == nil }

// DisablePE marks PE p permanently broken: its ALU executes nothing and its
// output register and register file are unusable, so it is also severed from
// the mesh (no neighbour can read it, it can read no neighbour).
func (c *CGRA) DisablePE(p int) {
	c.checkPE(p)
	if c.broken == nil {
		c.broken = make([]bool, c.NumPEs())
	}
	if c.broken[p] {
		return
	}
	c.broken[p] = true
	c.faults++
	c.ensureOwnAdjacency()
	n := c.NumPEs()
	for q := 0; q < n; q++ {
		c.adj[p].Clear(q)
		c.adj[q].Clear(p)
		c.neighbors[q] = removePE(c.neighbors[q], p)
	}
	c.neighbors[p] = nil
}

// CutLink severs the mesh link between PEs p and q in both directions:
// neither output register remains readable by the other side. It errors when
// the two PEs were not connected to begin with.
func (c *CGRA) CutLink(p, q int) error {
	c.checkPE(p)
	c.checkPE(q)
	if p == q {
		return fmt.Errorf("arch: PE %d's self loop (its own output register) cannot be cut", p)
	}
	if !c.adj[p].Has(q) && !c.adj[q].Has(p) {
		return fmt.Errorf("arch: no link between PE %d and PE %d to cut", p, q)
	}
	c.ensureOwnAdjacency()
	c.adj[p].Clear(q)
	c.adj[q].Clear(p)
	c.neighbors[p] = removePE(c.neighbors[p], q)
	c.neighbors[q] = removePE(c.neighbors[q], p)
	c.faults++
	return nil
}

// LimitRegs caps PE p's usable rotating registers at k (stuck or partially
// failed register file). k must be in [0, NominalRegsAt(p)].
func (c *CGRA) LimitRegs(p, k int) {
	c.checkPE(p)
	if k < 0 || k > c.NominalRegsAt(p) {
		panic(fmt.Sprintf("arch: register limit %d outside [0,%d]", k, c.NominalRegsAt(p)))
	}
	if c.regCap == nil {
		c.regCap = make([]int, c.NumPEs())
		for i := range c.regCap {
			c.regCap[i] = c.NominalRegsAt(i)
		}
	}
	if c.regCap[p] != k {
		c.regCap[p] = k
		c.faults++
	}
}

// DisableRowBus marks row r's shared memory bus failed: no memory operation
// may issue anywhere on that row. On fabrics with a non-row bus scheme the
// fault still keys on the physical row: every PE of the row loses memory
// access, whichever group its bus bandwidth is accounted against.
func (c *CGRA) DisableRowBus(r int) {
	if r < 0 || r >= c.Rows {
		panic(fmt.Sprintf("arch: row %d out of range [0,%d)", r, c.Rows))
	}
	if c.deadRow == nil {
		c.deadRow = make([]bool, c.Rows)
	}
	if !c.deadRow[r] {
		c.deadRow[r] = true
		c.faults++
	}
}

// PEOk reports whether PE p's ALU is alive.
func (c *CGRA) PEOk(p int) bool { return c.broken == nil || !c.broken[p] }

// NominalRegsAt returns PE p's fault-free register-file size: the described
// per-PE value, or NumRegs on uniform arrays.
func (c *CGRA) NominalRegsAt(p int) int {
	if c.nomRegs == nil {
		return c.NumRegs
	}
	return c.nomRegs[p]
}

// RegsAt returns the number of usable rotating registers at PE p: the nominal
// size unless the file is limited by a fault, and 0 on a broken PE.
func (c *CGRA) RegsAt(p int) int {
	if !c.PEOk(p) {
		return 0
	}
	if c.regCap == nil {
		return c.NominalRegsAt(p)
	}
	return c.regCap[p]
}

// RowBusOK reports whether row r's shared memory bus is alive.
func (c *CGRA) RowBusOK(r int) bool { return c.deadRow == nil || !c.deadRow[r] }

// NumBusGroups returns how many memory bus groups the fabric has (Rows under
// the default per-row scheme).
func (c *CGRA) NumBusGroups() int {
	if c.busCap != nil {
		return len(c.busCap)
	}
	return c.Rows
}

// BusGroupOf returns the bus group PE p's memory operations are accounted
// against (the PE's row under the default scheme).
func (c *CGRA) BusGroupOf(p int) int {
	if c.busGroup != nil {
		return c.busGroup[p]
	}
	return c.RowOf(p)
}

// BusGroupCap returns how many memory operations group g admits per cycle
// (1 under the default scheme).
func (c *CGRA) BusGroupCap(g int) int {
	if c.busCap != nil {
		return c.busCap[g]
	}
	return 1
}

// TrivialBuses reports the paper's bus scheme — one bus per row, capacity 1 —
// under which pairwise conflict checks and the per-row MRRG bus nodes are
// exact as-is.
func (c *CGRA) TrivialBuses() bool { return c.busGroup == nil && c.busCap == nil }

// Fanout returns the link-bandwidth bound: the maximum number of remote PEs
// that may read one output register in the same cycle, or 0 for unlimited
// (the paper's model).
func (c *CGRA) Fanout() int { return c.fanout }

// MemPEOk reports whether PE p can issue a memory operation at all: the PE is
// alive, its row bus survives, and its bus group has nonzero bandwidth.
func (c *CGRA) MemPEOk(p int) bool {
	return c.PEOk(p) && c.RowBusOK(c.RowOf(p)) && c.BusGroupCap(c.BusGroupOf(p)) > 0
}

// Healthy reports whether the array carries no fault at all — the paper's
// pristine configuration, and the fast path every mapper preserves
// byte-identically. A described fabric with heterogeneous capabilities or
// bandwidth is still healthy; health tracks faults only.
func (c *CGRA) Healthy() bool { return c.faults == 0 }

// FaultCount returns the number of fault primitives applied to the array.
func (c *CGRA) FaultCount() int { return c.faults }

// UsablePEs returns the number of PEs whose ALU is alive.
func (c *CGRA) UsablePEs() int {
	if c.broken == nil {
		return c.NumPEs()
	}
	n := 0
	for p := 0; p < c.NumPEs(); p++ {
		if !c.broken[p] {
			n++
		}
	}
	return n
}

// UsableMemRows returns the number of rows that can still issue memory
// operations: a live bus plus at least one live PE on the row.
func (c *CGRA) UsableMemRows() int {
	if c.Healthy() {
		return c.Rows
	}
	rows := 0
	for r := 0; r < c.Rows; r++ {
		if !c.RowBusOK(r) {
			continue
		}
		for col := 0; col < c.Cols; col++ {
			if c.PEOk(c.PEAt(r, col)) {
				rows++
				break
			}
		}
	}
	return rows
}

// MemSlotCapacity returns how many memory operations the whole fabric can
// issue in one cycle: the sum of bus-group capacities over groups that still
// have a memory-capable PE. Under the default scheme this equals Rows when
// healthy and UsableMemRows when faulted.
func (c *CGRA) MemSlotCapacity() int {
	if c.TrivialBuses() {
		return c.UsableMemRows()
	}
	total := 0
	for g := 0; g < c.NumBusGroups(); g++ {
		cap := c.BusGroupCap(g)
		if cap == 0 {
			continue
		}
		for p := 0; p < c.NumPEs(); p++ {
			if c.BusGroupOf(p) == g && c.PEOk(p) && c.RowBusOK(c.RowOf(p)) {
				total += cap
				break
			}
		}
	}
	return total
}

// MIIResources returns the PE and memory-slot counts that resource-bound II
// calculations (dfg.MII) and scheduler limits should use: the nominal array
// when healthy, the usable counts when faulted. Both are floored at 1 so a
// fully-dead resource class still yields a finite bound — the mappers' own
// feasibility checks reject such arrays with a proper error instead.
func (c *CGRA) MIIResources() (pes, memSlots int) {
	if c.Healthy() && c.TrivialBuses() {
		return c.NumPEs(), c.Rows
	}
	pes, memSlots = c.UsablePEs(), c.MemSlotCapacity()
	if pes < 1 {
		pes = 1
	}
	if memSlots < 1 {
		memSlots = 1
	}
	return pes, memSlots
}

func (c *CGRA) checkPE(p int) {
	if p < 0 || p >= c.NumPEs() {
		panic(fmt.Sprintf("arch: PE %d out of range [0,%d)", p, c.NumPEs()))
	}
}

func removePE(list []int, p int) []int {
	out := list[:0]
	for _, q := range list {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// String describes the array, e.g. "4x4 mesh, 4 regs/PE". Faulted arrays
// report the fault count.
func (c *CGRA) String() string {
	if c.faults > 0 {
		return fmt.Sprintf("%dx%d %s, %d regs/PE, %d faults", c.Rows, c.Cols, c.Topology, c.NumRegs, c.faults)
	}
	return fmt.Sprintf("%dx%d %s, %d regs/PE", c.Rows, c.Cols, c.Topology, c.NumRegs)
}

// Clone returns an independent copy (capability restrictions, description
// state, and fault state included). Immutable nominal structures are shared;
// mutable state is deep-copied.
func (c *CGRA) Clone() *CGRA {
	d := *c
	if c.caps != nil {
		d.caps = make([]map[dfg.OpKind]bool, len(c.caps))
		for i, m := range c.caps {
			if m == nil {
				continue
			}
			d.caps[i] = make(map[dfg.OpKind]bool, len(m))
			for k, v := range m {
				d.caps[i][k] = v
			}
		}
	}
	if c.ownAdj {
		// Adjacency reflects severed links and broken PEs: deep-copy rather
		// than rebuild, so cut links survive cloning.
		n := c.NumPEs()
		d.adj = graph.NewBitsetSlab(n, n)
		d.neighbors = make([][]int, n)
		for p := 0; p < n; p++ {
			d.adj[p].CopyFrom(c.adj[p])
			d.neighbors[p] = append([]int(nil), c.neighbors[p]...)
		}
	}
	if c.broken != nil {
		d.broken = append([]bool(nil), c.broken...)
	}
	if c.regCap != nil {
		d.regCap = append([]int(nil), c.regCap...)
	}
	if c.deadRow != nil {
		d.deadRow = append([]bool(nil), c.deadRow...)
	}
	return &d
}
