package arch

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"regimap/internal/dfg"
)

func mustCompile(t *testing.T, text string) *CGRA {
	t.Helper()
	d, err := ParseDesc(text)
	if err != nil {
		t.Fatalf("ParseDesc(%q): %v", text, err)
	}
	c, err := d.Compile()
	if err != nil {
		t.Fatalf("Compile(%q): %v", text, err)
	}
	return c
}

func TestDescDefaultMeshMatchesNew(t *testing.T) {
	c := mustCompile(t, "grid 4x4; regs 4")
	want := NewMesh(4, 4, 4)
	if c.Rows != want.Rows || c.Cols != want.Cols || c.NumRegs != want.NumRegs || c.Topology != want.Topology {
		t.Fatalf("compiled %v, want %v", c, want)
	}
	if c.Fingerprint() != want.Fingerprint() {
		t.Fatalf("compiled default mesh fingerprint differs from NewMesh: %s vs %s", c.Fingerprint(), want.Fingerprint())
	}
	if c.NeedsDesc() {
		t.Fatal("plain mesh should not need an ADL description")
	}
}

func TestDescStringParseRoundTrip(t *testing.T) {
	for _, text := range []string{
		"grid 4x4; regs 4",
		"grid 2x8; topo mesh+; regs 4",
		"grid 8x8; topo torus; regs 4",
		"grid 4x4; topo 1hop; regs 4",
		"grid 4x4; regs 4; regs 1,1=8",
		"grid 4x4; regs 4; cap all nomem; cap col 0 all",
		"grid 4x4; regs 4; bus global cap 2",
		"grid 4x4; regs 4; bus cols",
		"grid 4x4; regs 4; bus rows; buscap 2=0",
		"grid 4x4; regs 4; fanout 2",
		"grid 4x4; regs 4; link 0,0-2,2; nolink 0,0-0,1",
	} {
		d, err := ParseDesc(text)
		if err != nil {
			t.Fatalf("ParseDesc(%q): %v", text, err)
		}
		again, err := ParseDesc(d.String())
		if err != nil {
			t.Fatalf("re-ParseDesc(%q): %v", d.String(), err)
		}
		if !reflect.DeepEqual(d, again) {
			t.Errorf("round trip of %q:\n first %#v\nsecond %#v", text, d, again)
		}
		if _, err := d.Compile(); err != nil {
			t.Errorf("Compile(%q): %v", text, err)
		}
	}
}

func TestDescCompileSemantics(t *testing.T) {
	c := mustCompile(t, "grid 4x4; topo mesh+; regs 2; regs 1,1=8")
	if got := c.NominalRegsAt(c.PEAt(1, 1)); got != 8 {
		t.Errorf("PE (1,1) regs = %d, want 8", got)
	}
	if got := c.NominalRegsAt(c.PEAt(0, 0)); got != 2 {
		t.Errorf("PE (0,0) regs = %d, want 2", got)
	}
	if c.NumRegs != 8 {
		t.Errorf("NumRegs = %d, want max 8", c.NumRegs)
	}

	het := mustCompile(t, "grid 4x4; regs 4; cap all nomem; cap col 0 all")
	if het.Supports(het.PEAt(1, 1), dfg.Load) {
		t.Error("nomem PE supports Load")
	}
	if !het.Supports(het.PEAt(1, 0), dfg.Load) {
		t.Error("col-0 PE lost Load")
	}
	if !het.Supports(het.PEAt(1, 1), dfg.Route) {
		t.Error("every class must keep Route")
	}
	if het.MemSlotCapacity() != 4 {
		t.Errorf("hetero MemSlotCapacity = %d, want 4 (one bus per row)", het.MemSlotCapacity())
	}

	band := mustCompile(t, "grid 4x4; regs 4; bus global cap 2")
	if band.NumBusGroups() != 1 || band.BusGroupCap(0) != 2 {
		t.Errorf("global bus: groups=%d cap=%d, want 1 group of cap 2", band.NumBusGroups(), band.BusGroupCap(0))
	}
	if band.MemSlotCapacity() != 2 {
		t.Errorf("band2 MemSlotCapacity = %d, want 2", band.MemSlotCapacity())
	}
	pes, mem := band.MIIResources()
	if pes != 16 || mem != 2 {
		t.Errorf("band2 MIIResources = (%d,%d), want (16,2)", pes, mem)
	}

	cols := mustCompile(t, "grid 2x3; regs 4; bus cols")
	if cols.NumBusGroups() != 3 {
		t.Errorf("bus cols on 2x3: %d groups, want 3", cols.NumBusGroups())
	}
	if g := cols.BusGroupOf(cols.PEAt(1, 2)); g != 2 {
		t.Errorf("PE (1,2) in group %d, want 2", g)
	}

	linked := mustCompile(t, "grid 4x4; regs 4; link 0,0-3,3; nolink 0,0-0,1")
	if !linked.Connected(linked.PEAt(0, 0), linked.PEAt(3, 3)) {
		t.Error("custom link 0,0-3,3 missing")
	}
	if linked.Connected(linked.PEAt(0, 0), linked.PEAt(0, 1)) {
		t.Error("nolink 0,0-0,1 still connected")
	}
}

func TestDescErrors(t *testing.T) {
	cases := []struct {
		text string
		want string // substring of the DescError
	}{
		{"grid 4", "line 1"},
		{"grid 4x4\ngrid 2x2; regs 4", "duplicate grid"},
		{"topo mesh; regs 4", "grid"},
		{"grid 99x99; regs 4", "stmt 0"},
		{"grid 4x4; regs 999", "stmt 1"},
		{"grid 4x4; cap 9,9 all", "stmt 1"},
		{"grid 4x4; bus rows cap 2", "global"},
		{"grid 4x4; bus cols; buscap 0=2", "global"},
		{"grid 4x4; link 0,0-0,0", "stmt 1"},
		{"grid 4x4; fanout 99", "stmt 1"},
		{"grid 4x4; frobnicate 3", "line 1"},
	}
	for _, tc := range cases {
		var c *CGRA
		d, err := ParseDesc(tc.text)
		if err == nil {
			c, err = d.Compile()
		}
		if err == nil {
			t.Errorf("%q: compiled to %v, want error containing %q", tc.text, c, tc.want)
			continue
		}
		var de *DescError
		if !errors.As(err, &de) {
			t.Errorf("%q: error %v is not a *DescError", tc.text, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.text, err, tc.want)
		}
	}
}

func TestDescribeRoundTripsState(t *testing.T) {
	for _, text := range []string{
		"grid 4x4; regs 4",
		"grid 4x4; topo mesh+; regs 4; regs 2,2=8",
		"grid 4x4; regs 4; cap all nomem; cap col 0 all",
		"grid 4x4; regs 4; bus global cap 2",
		"grid 3x3; regs 4; bus cols; buscap 1=0",
		"grid 4x4; regs 4; fanout 3; link 0,0-2,2",
	} {
		c := mustCompile(t, text)
		desc, err := c.Describe()
		if err != nil {
			t.Fatalf("Describe(%q): %v", text, err)
		}
		again, err := ParseDesc(desc.String())
		if err != nil {
			t.Fatalf("ParseDesc(Describe(%q)) = %q: %v", text, desc, err)
		}
		c2, err := again.Compile()
		if err != nil {
			t.Fatalf("recompile of %q: %v", desc, err)
		}
		if c.Fingerprint() != c2.Fingerprint() {
			t.Errorf("%q: described form %q compiles to a different fabric (%s vs %s)",
				text, desc, c.Fingerprint(), c2.Fingerprint())
		}
	}
}

func TestDescribeUnfaithful(t *testing.T) {
	c := NewMesh(4, 4, 4)
	// An ad-hoc capability set matching no class is not expressible.
	c.RestrictPE(5, dfg.Add, dfg.Load)
	if !c.NeedsDesc() {
		t.Fatal("restricted array should need a description")
	}
	_, err := c.Describe()
	var uf *UnfaithfulError
	if !errors.As(err, &uf) {
		t.Fatalf("Describe on ad-hoc caps: err = %v, want *UnfaithfulError", err)
	}
}

func TestUniformSharedValidation(t *testing.T) {
	if _, err := Uniform(4, 4, 4, Mesh); err != nil {
		t.Fatalf("Uniform(4,4,4): %v", err)
	}
	for _, bad := range [][3]int{{0, 4, 4}, {4, 65, 4}, {4, 4, 200}, {-1, 4, 4}} {
		_, err := Uniform(bad[0], bad[1], bad[2], Mesh)
		var de *DescError
		if !errors.As(err, &de) {
			t.Errorf("Uniform(%v): err = %v, want *DescError", bad, err)
		}
	}
}

func TestBusExactnessRule(t *testing.T) {
	// Multi-group schemes must keep every cap <= 1 so pairwise conflicts stay
	// exact; a single global group may have any capacity.
	d, err := ParseDesc("grid 4x4; regs 4; bus rows; buscap 1=2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := d.Compile(); err == nil {
		t.Fatal("per-group cap 2 under the rows scheme must not compile")
	}
}
