package arch

import (
	"testing"

	"regimap/internal/dfg"
)

func TestArchFingerprintDeterministic(t *testing.T) {
	a := NewMesh(4, 4, 4)
	b := NewMesh(4, 4, 4)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical arrays fingerprint differently")
	}
	if a.Clone().Fingerprint() != a.Fingerprint() {
		t.Fatal("clone fingerprints differently")
	}
}

func TestArchFingerprintSeparatesConfig(t *testing.T) {
	base := NewMesh(4, 4, 4)
	seen := map[string]string{"base": base.FingerprintHex()}
	add := func(label string, c *CGRA) {
		fp := c.FingerprintHex()
		for prev, pfp := range seen {
			if pfp == fp {
				t.Errorf("%s collides with %s", label, prev)
			}
		}
		seen[label] = fp
	}
	add("rows", NewMesh(5, 4, 4))
	add("cols", NewMesh(4, 5, 4))
	add("regs", NewMesh(4, 4, 5))
	add("topology", New(4, 4, 4, Torus))

	het := NewMesh(4, 4, 4)
	het.RestrictPE(3, dfg.Add, dfg.Mul)
	add("capability restriction", het)

	broken := NewMesh(4, 4, 4)
	broken.DisablePE(5)
	add("broken PE", broken)

	cut := NewMesh(4, 4, 4)
	if err := cut.CutLink(0, 1); err != nil {
		t.Fatal(err)
	}
	add("cut link", cut)

	regs := NewMesh(4, 4, 4)
	regs.LimitRegs(7, 1)
	add("limited register file", regs)

	row := NewMesh(4, 4, 4)
	row.DisableRowBus(2)
	add("dead row bus", row)
}

func TestArchFingerprintSurvivesFaultedClone(t *testing.T) {
	c := NewMesh(4, 4, 4)
	c.DisablePE(5)
	if err := c.CutLink(0, 1); err != nil {
		t.Fatal(err)
	}
	c.LimitRegs(7, 2)
	c.DisableRowBus(3)
	if c.Clone().Fingerprint() != c.Fingerprint() {
		t.Fatal("faulted clone fingerprints differently")
	}
}

func TestParseTopologyRoundTrip(t *testing.T) {
	for _, topo := range []Topology{Mesh, MeshPlus, Torus} {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Fatalf("ParseTopology(%q) = %v, %v", topo.String(), got, err)
		}
	}
	if got, err := ParseTopology(""); err != nil || got != Mesh {
		t.Fatalf("empty topology = %v, %v, want mesh", got, err)
	}
	if _, err := ParseTopology("hypercube"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
