// Package kernels provides the benchmark loop suite standing in for the
// paper's multimedia/DSP applications and SPEC2006 kernels (see DESIGN.md §3
// for the substitution argument). Each kernel is a hand-modelled data-flow
// graph matching the published structural shape of its namesake inner loop:
// operation mix, fan-in/out, memory-operation density, and recurrence cycles.
//
// Kernels whose MII is limited by resources on the paper's 4x4 array are the
// "res-bounded" group; kernels limited by a dependence recurrence are
// "rec-bounded" (paper Section 6.1). The classification is computed, not
// asserted — see Classify.
package kernels

import (
	"fmt"
	"sort"

	"regimap/internal/dfg"
)

// Kernel is one benchmark loop.
type Kernel struct {
	Name        string
	Suite       string // "dsp" (multimedia/DSP) or "spec" (SPEC2006-like)
	Description string
	Build       func() *dfg.DFG
}

// Boundedness classifies a loop on a given array.
type Boundedness int

// Loop groups of the paper's Section 6.1.
const (
	ResBounded Boundedness = iota
	RecBounded
)

// String names the group.
func (b Boundedness) String() string {
	if b == ResBounded {
		return "res-bounded"
	}
	return "rec-bounded"
}

// Classify returns the paper's loop grouping for an array with numPEs
// processing elements in rows rows.
func Classify(d *dfg.DFG, numPEs, rows int) Boundedness {
	if d.ResBounded(numPEs, rows) {
		return ResBounded
	}
	return RecBounded
}

var registry []Kernel

func register(name, suite, description string, build func() *dfg.DFG) {
	registry = append(registry, Kernel{Name: name, Suite: suite, Description: description, Build: build})
}

// All returns every kernel, sorted by name.
func All() []Kernel {
	out := append([]Kernel(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, bool) {
	for _, k := range registry {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Names returns all kernel names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, k := range all {
		names[i] = k.Name
	}
	return names
}

// --- shared construction helpers -----------------------------------------

// adderTree reduces values pairwise with adds, returning the root.
func adderTree(b *dfg.Builder, name string, vals []int) int {
	level := 0
	for len(vals) > 1 {
		var next []int
		for i := 0; i+1 < len(vals); i += 2 {
			next = append(next, b.Op(dfg.Add, fmt.Sprintf("%s_l%d_%d", name, level, i/2), vals[i], vals[i+1]))
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
		level++
	}
	return vals[0]
}

// loadAt materializes an address computation base+k and the load through it.
func loadAt(b *dfg.Builder, name string, base int, offset int64) int {
	addr := b.Op(dfg.Add, name+"_addr", base, b.Const(name+"_off", offset))
	return b.Op(dfg.Load, name, addr)
}

// clamp limits v into [lo, hi] with a max-then-min pair.
func clamp(b *dfg.Builder, name string, v int, lo, hi int64) int {
	lowered := b.Op(dfg.Max, name+"_lo", v, b.Const(name+"_cl", lo))
	return b.Op(dfg.Min, name+"_hi", lowered, b.Const(name+"_ch", hi))
}

// mulConst multiplies v by an immediate coefficient.
func mulConst(b *dfg.Builder, name string, v int, coef int64) int {
	return b.Op(dfg.Mul, name, v, b.Const(name+"_c", coef))
}
