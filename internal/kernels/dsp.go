package kernels

import "regimap/internal/dfg"

// The multimedia/DSP half of the suite. Structure notes:
//
//   - address streams are incrementing pointer chains (addr' = addr + stride)
//     exactly as strength-reduced compiler output looks, keeping fan-out
//     realistic;
//   - filter coefficients and quantization constants are immediates;
//   - saturating accumulators use max/min clamps, which is both realistic
//     and what gives the rec-bounded group its recurrence height.
func init() {
	register("fir8", "dsp", "8-tap FIR filter, taps unrolled; adder-tree reduction", buildFIR8)
	register("fft_radix2", "dsp", "radix-2 FFT butterfly with twiddle multiply", buildFFT)
	register("conv3x3", "dsp", "3x3 convolution, coefficient immediates", buildConv3x3)
	register("sobel", "dsp", "Sobel edge detector: two gradients plus magnitude", buildSobel)
	register("yuv2rgb", "dsp", "YUV to RGB conversion with clamping", buildYUV)
	register("quant8", "dsp", "JPEG-style quantization of two coefficients", buildQuant8)
	register("dct4_row", "dsp", "4-point DCT butterfly stage", buildDCT4)
	register("wavelet_lift", "dsp", "5/3 wavelet lifting step", buildWavelet)
	register("matmul4_inner", "dsp", "matrix-multiply inner loop, unrolled by 4", buildMatmul4)
	register("iir_biquad", "dsp", "biquad IIR section: y feedback through a1/a2", buildBiquad)
	register("adpcm_step", "dsp", "ADPCM step-size index update with clamping", buildADPCM)
	register("autocorr_sat", "dsp", "autocorrelation lag with saturating accumulator", buildAutocorr)
	register("dotprod_sat", "dsp", "dot product with two-sided saturation", buildDotprod)
	register("newton_recip", "dsp", "Newton-Raphson reciprocal refinement", buildNewton)
}

// addrChain yields n addresses as an incrementing pointer chain rooted at a
// fresh Input, plus the chain's tail (feeding the next iteration's pointer
// conceptually; here simply the last node).
func addrChain(b *dfg.Builder, name string, n int, stride int64) []int {
	addrs := make([]int, n)
	addrs[0] = b.Input(name + "0")
	for i := 1; i < n; i++ {
		addrs[i] = b.Op(dfg.Add, nameIdx(name, i), addrs[i-1], b.Const(nameIdx(name+"_s", i), stride))
	}
	return addrs
}

func nameIdx(name string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return name + digits[i:i+1]
	}
	return name + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

func buildFIR8() *dfg.DFG {
	b := dfg.NewBuilder("fir8")
	coefs := []int64{3, -1, 4, 1, -5, 9, 2, -6}
	addrs := addrChain(b, "xa", 8, 1)
	var products []int
	for i, cf := range coefs {
		x := b.Op(dfg.Load, nameIdx("x", i), addrs[i])
		products = append(products, mulConst(b, nameIdx("p", i), x, cf))
	}
	sum := adderTree(b, "sum", products)
	out := b.Input("ya")
	b.Op(dfg.Store, "st", out, sum)
	return b.Build()
}

func buildFFT() *dfg.DFG {
	b := dfg.NewBuilder("fft_radix2")
	addrs := addrChain(b, "pa", 4, 1)
	xr := b.Op(dfg.Load, "xr", addrs[0])
	xi := b.Op(dfg.Load, "xi", addrs[1])
	yr := b.Op(dfg.Load, "yr", addrs[2])
	yi := b.Op(dfg.Load, "yi", addrs[3])
	// t = w * y (complex).
	trA := mulConst(b, "trA", yr, 181) // wr
	trB := mulConst(b, "trB", yi, 75)  // wi
	tiA := mulConst(b, "tiA", yr, 75)
	tiB := mulConst(b, "tiB", yi, 181)
	tr := b.Op(dfg.Sub, "tr", trA, trB)
	ti := b.Op(dfg.Add, "ti", tiA, tiB)
	outs := []int{
		b.Op(dfg.Add, "or0", xr, tr),
		b.Op(dfg.Add, "oi0", xi, ti),
		b.Op(dfg.Sub, "or1", xr, tr),
		b.Op(dfg.Sub, "oi1", xi, ti),
	}
	sa := addrChain(b, "qa", 4, 1)
	for i, o := range outs {
		b.Op(dfg.Store, nameIdx("st", i), sa[i], o)
	}
	return b.Build()
}

func buildConv3x3() *dfg.DFG {
	b := dfg.NewBuilder("conv3x3")
	coefs := []int64{1, 2, 1, 2, 4, 2, 1, 2, 1}
	var taps []int
	for row := 0; row < 3; row++ {
		addrs := addrChain(b, nameIdx("r", row), 3, 1)
		for col := 0; col < 3; col++ {
			px := b.Op(dfg.Load, nameIdx("px", row*3+col), addrs[col])
			taps = append(taps, mulConst(b, nameIdx("m", row*3+col), px, coefs[row*3+col]))
		}
	}
	sum := adderTree(b, "acc", taps)
	norm := b.Op(dfg.Shr, "norm", sum, b.Const("sh", 4))
	b.Op(dfg.Store, "st", b.Input("oa"), norm)
	return b.Build()
}

func buildSobel() *dfg.DFG {
	b := dfg.NewBuilder("sobel")
	top := addrChain(b, "t", 3, 1)
	bot := addrChain(b, "b", 3, 1)
	var p [6]int
	for i := 0; i < 3; i++ {
		p[i] = b.Op(dfg.Load, nameIdx("pt", i), top[i])
		p[3+i] = b.Op(dfg.Load, nameIdx("pb", i), bot[i])
	}
	// gx = (p2 - p0) + (p5 - p3); gy = (p3+p4+p5) - (p0+p1+p2), simplified.
	gx1 := b.Op(dfg.Sub, "gx1", p[2], p[0])
	gx2 := b.Op(dfg.Sub, "gx2", p[5], p[3])
	gx := b.Op(dfg.Add, "gx", gx1, gx2)
	sTop := b.Op(dfg.Add, "stp", b.Op(dfg.Add, "st01", p[0], p[1]), p[2])
	sBot := b.Op(dfg.Add, "sbt", b.Op(dfg.Add, "sb01", p[3], p[4]), p[5])
	gy := b.Op(dfg.Sub, "gy", sBot, sTop)
	mag := b.Op(dfg.Add, "mag", b.Op(dfg.Abs, "agx", gx), b.Op(dfg.Abs, "agy", gy))
	b.Op(dfg.Store, "st", b.Input("oa"), clamp(b, "m8", mag, 0, 255))
	return b.Build()
}

func buildYUV() *dfg.DFG {
	b := dfg.NewBuilder("yuv2rgb")
	addrs := addrChain(b, "ya", 3, 1)
	y := b.Op(dfg.Load, "y", addrs[0])
	u := b.Op(dfg.Load, "u", addrs[1])
	v := b.Op(dfg.Load, "v", addrs[2])
	ys := mulConst(b, "ys", y, 298)
	r0 := b.Op(dfg.Add, "r0", ys, mulConst(b, "vr", v, 409))
	g0 := b.Op(dfg.Sub, "g0", ys, b.Op(dfg.Add, "uv", mulConst(b, "ug", u, 100), mulConst(b, "vg", v, 208)))
	b0 := b.Op(dfg.Add, "b0", ys, mulConst(b, "ub", u, 516))
	outs := []int{
		clamp(b, "r", b.Op(dfg.Shr, "rs", r0, b.Const("c8r", 8)), 0, 255),
		clamp(b, "g", b.Op(dfg.Shr, "gs", g0, b.Const("c8g", 8)), 0, 255),
		clamp(b, "b", b.Op(dfg.Shr, "bs", b0, b.Const("c8b", 8)), 0, 255),
	}
	sa := addrChain(b, "oa", 3, 1)
	for i, o := range outs {
		b.Op(dfg.Store, nameIdx("st", i), sa[i], o)
	}
	return b.Build()
}

func buildQuant8() *dfg.DFG {
	b := dfg.NewBuilder("quant8")
	addrs := addrChain(b, "ca", 2, 1)
	sa := addrChain(b, "qa", 2, 1)
	for i := 0; i < 2; i++ {
		c := b.Op(dfg.Load, nameIdx("c", i), addrs[i])
		scaled := mulConst(b, nameIdx("sc", i), c, 13)
		rounded := b.Op(dfg.Add, nameIdx("rnd", i), scaled, b.Const(nameIdx("half", i), 1<<10))
		q := b.Op(dfg.Shr, nameIdx("q", i), rounded, b.Const(nameIdx("shv", i), 11))
		b.Op(dfg.Store, nameIdx("st", i), sa[i], clamp(b, nameIdx("cl", i), q, -128, 127))
	}
	return b.Build()
}

func buildDCT4() *dfg.DFG {
	b := dfg.NewBuilder("dct4_row")
	addrs := addrChain(b, "xa", 4, 1)
	var x [4]int
	for i := range x {
		x[i] = b.Op(dfg.Load, nameIdx("x", i), addrs[i])
	}
	s0 := b.Op(dfg.Add, "s0", x[0], x[3])
	s1 := b.Op(dfg.Add, "s1", x[1], x[2])
	d0 := b.Op(dfg.Sub, "d0", x[0], x[3])
	d1 := b.Op(dfg.Sub, "d1", x[1], x[2])
	o0 := b.Op(dfg.Add, "o0", s0, s1)
	o2 := b.Op(dfg.Sub, "o2", s0, s1)
	o1 := b.Op(dfg.Add, "o1", mulConst(b, "d0c", d0, 17), mulConst(b, "d1c", d1, 7))
	o3 := b.Op(dfg.Sub, "o3", mulConst(b, "d0s", d0, 7), mulConst(b, "d1s", d1, 17))
	sa := addrChain(b, "oa", 4, 1)
	for i, o := range []int{o0, o1, o2, o3} {
		b.Op(dfg.Store, nameIdx("st", i), sa[i], o)
	}
	return b.Build()
}

func buildWavelet() *dfg.DFG {
	b := dfg.NewBuilder("wavelet_lift")
	addrs := addrChain(b, "xa", 3, 1)
	even0 := b.Op(dfg.Load, "e0", addrs[0])
	odd := b.Op(dfg.Load, "o0", addrs[1])
	even1 := b.Op(dfg.Load, "e1", addrs[2])
	pred := b.Op(dfg.Shr, "pred", b.Op(dfg.Add, "esum", even0, even1), b.Const("c1", 1))
	detail := b.Op(dfg.Sub, "detail", odd, pred)
	update := b.Op(dfg.Shr, "upd", b.Op(dfg.Add, "d2", detail, b.Const("c2", 2)), b.Const("c2s", 2))
	smooth := b.Op(dfg.Add, "smooth", even0, update)
	sa := addrChain(b, "oa", 2, 1)
	b.Op(dfg.Store, "std", sa[0], detail)
	b.Op(dfg.Store, "sts", sa[1], smooth)
	return b.Build()
}

func buildMatmul4() *dfg.DFG {
	b := dfg.NewBuilder("matmul4_inner")
	arow := addrChain(b, "aa", 4, 1)
	bcol := addrChain(b, "ba", 4, 4)
	var prods []int
	for i := 0; i < 4; i++ {
		av := b.Op(dfg.Load, nameIdx("av", i), arow[i])
		bv := b.Op(dfg.Load, nameIdx("bv", i), bcol[i])
		prods = append(prods, b.Op(dfg.Mul, nameIdx("p", i), av, bv))
	}
	sum := adderTree(b, "dot", prods)
	acc := b.Op(dfg.Add, "acc", sum)
	b.EdgeDist(acc, acc, 1, 1)
	return b.Build()
}

func buildBiquad() *dfg.DFG {
	b := dfg.NewBuilder("iir_biquad")
	x := b.Op(dfg.Load, "x", b.Input("xa"))
	x1 := b.Op(dfg.Route, "x1")
	b.EdgeDist(x, x1, 0, 1)
	x2 := b.Op(dfg.Route, "x2")
	b.EdgeDist(x1, x2, 0, 1)
	t0 := mulConst(b, "b0x", x, 5)
	t1 := mulConst(b, "b1x", x1, 3)
	t2 := mulConst(b, "b2x", x2, 2)
	ff := b.Op(dfg.Add, "ff", b.Op(dfg.Add, "ff0", t0, t1), t2)
	// Feedback y = ff - a1*y[n-1] - a2*y[n-2]. The cycle y -> u1 -> s3 -> y
	// has height 3 at distance 1, making the loop rec-bounded on the paper's
	// 4x4 array.
	u1 := b.Op(dfg.Mul, "u1", b.Const("a1", 3))
	u2 := b.Op(dfg.Mul, "u2", b.Const("a2", 1))
	s3 := b.Op(dfg.Sub, "s3", ff, u1)
	y := b.Op(dfg.Sub, "y", s3, u2)
	b.EdgeDist(y, u1, 1, 1)
	b.EdgeDist(y, u2, 1, 2)
	b.Op(dfg.Store, "st", b.Input("oa"), y)
	return b.Build()
}

func buildADPCM() *dfg.DFG {
	b := dfg.NewBuilder("adpcm_step")
	delta := b.Op(dfg.Load, "delta", b.Input("da"))
	adj := b.Op(dfg.Sub, "adj", mulConst(b, "d4", delta, 4), b.Const("c3", 3))
	// idx = clamp(idx + adj, 0, 88): a 3-op recurrence cycle.
	idxAdd := b.Op(dfg.Add, "idxadd", adj)
	idxLo := b.Op(dfg.Max, "idxlo", idxAdd, b.Const("zero", 0))
	idxHi := b.Op(dfg.Min, "idxhi", idxLo, b.Const("cap", 88))
	b.EdgeDist(idxHi, idxAdd, 1, 1)
	// step = table[idx] approximated by shift: step = 7 << (idx >> 4).
	stepSh := b.Op(dfg.Shr, "stepsh", idxHi, b.Const("c4", 4))
	step := b.Op(dfg.Shl, "step", b.Const("c7", 7), stepSh)
	b.Op(dfg.Store, "st", b.Input("sa"), step)
	return b.Build()
}

func buildAutocorr() *dfg.DFG {
	b := dfg.NewBuilder("autocorr_sat")
	xa := addrChain(b, "xa", 2, 5) // x[i] and x[i+lag]
	x0 := b.Op(dfg.Load, "x0", xa[0])
	x1 := b.Op(dfg.Load, "x1", xa[1])
	p := b.Op(dfg.Mul, "p", x0, x1)
	// acc = min(acc + p, SAT): 2-op recurrence cycle.
	accAdd := b.Op(dfg.Add, "accadd", p)
	accSat := b.Op(dfg.Min, "accsat", accAdd, b.Const("sat", 1<<20))
	b.EdgeDist(accSat, accAdd, 1, 1)
	return b.Build()
}

func buildDotprod() *dfg.DFG {
	b := dfg.NewBuilder("dotprod_sat")
	a := b.Op(dfg.Load, "a", b.Input("aa"))
	c := b.Op(dfg.Load, "c", b.Input("ca"))
	p := b.Op(dfg.Mul, "p", a, c)
	// acc = max(min(acc + p, HI), LO): 3-op recurrence cycle.
	accAdd := b.Op(dfg.Add, "accadd", p)
	accHi := b.Op(dfg.Min, "acchi", accAdd, b.Const("hi", 1<<24))
	accLo := b.Op(dfg.Max, "acclo", accHi, b.Const("lo", -(1<<24)))
	b.EdgeDist(accLo, accAdd, 1, 1)
	return b.Build()
}

func buildNewton() *dfg.DFG {
	b := dfg.NewBuilder("newton_recip")
	a := b.Op(dfg.Load, "a", b.Input("aa"))
	// x' = x * (2 - a*x) in fixed point: a 3-op recurrence cycle through x.
	ax := b.Op(dfg.Mul, "ax", a)
	twoMinus := b.Op(dfg.Sub, "tm", b.Const("two", 2<<16), ax)
	xNew := b.Op(dfg.Mul, "x", twoMinus)
	b.EdgeDist(xNew, ax, 1, 1)
	b.EdgeDist(xNew, xNew, 1, 1)
	scaled := b.Op(dfg.Shr, "scaled", xNew, b.Const("c16", 16))
	b.Op(dfg.Store, "st", b.Input("oa"), scaled)
	return b.Build()
}
