package kernels

import "regimap/internal/dfg"

// The SPEC2006-like half of the suite: inner loops with the published
// structural shape of hot kernels from milc, lbm, hmmer, h264ref, gobmk,
// povray, bzip2, mcf, libquantum and sphinx3 (see DESIGN.md §3).
func init() {
	register("milc_su3", "spec", "su3 complex matrix-vector multiply slice (milc)", buildSU3)
	register("lbm_stream", "spec", "lattice-Boltzmann stream-and-collide slice (lbm)", buildLBM)
	register("hmmer_viterbi", "spec", "Viterbi match-state update, max-add network (hmmer)", buildViterbi)
	register("h264_sad", "spec", "sum of absolute differences over 8 pixels (h264ref)", buildSAD)
	register("gobmk_lib", "spec", "liberty bitboard popcount step (gobmk)", buildGobmk)
	register("povray_shade", "spec", "diffuse shading dot products (povray)", buildPovray)
	register("bzip2_hist", "spec", "symbol histogram update with capped count (bzip2)", buildHistogram)
	register("mcf_relax", "spec", "arc relaxation with reduced-cost feedback (mcf)", buildMCF)
	register("libquantum_acc", "spec", "quantum register phase accumulation (libquantum)", buildLibquantum)
	register("sphinx_dot", "spec", "senone score max-add accumulation (sphinx3)", buildSphinx)
}

func buildSU3() *dfg.DFG {
	b := dfg.NewBuilder("milc_su3")
	// One complex multiply-accumulate per iteration — the su3 matrix-vector
	// inner loop strip-mined over the row index, the shape a CGRA compiler
	// emits: four loads, the four-multiply complex product, and two
	// accumulators carried across iterations.
	aAddr := addrChain(b, "ma", 2, 1) // interleaved re/im matrix element
	vAddr := addrChain(b, "va", 2, 1) // interleaved re/im vector element
	ar := b.Op(dfg.Load, "ar", aAddr[0])
	ai := b.Op(dfg.Load, "ai", aAddr[1])
	vr := b.Op(dfg.Load, "vr", vAddr[0])
	vi := b.Op(dfg.Load, "vi", vAddr[1])
	re := b.Op(dfg.Sub, "re",
		b.Op(dfg.Mul, "rr", ar, vr),
		b.Op(dfg.Mul, "ii", ai, vi))
	im := b.Op(dfg.Add, "im",
		b.Op(dfg.Mul, "ri", ar, vi),
		b.Op(dfg.Mul, "ir", ai, vr))
	reAcc := b.Op(dfg.Add, "reacc", re)
	b.EdgeDist(reAcc, reAcc, 1, 1)
	imAcc := b.Op(dfg.Add, "imacc", im)
	b.EdgeDist(imAcc, imAcc, 1, 1)
	return b.Build()
}

func buildLBM() *dfg.DFG {
	b := dfg.NewBuilder("lbm_stream")
	// Stream three distribution functions, relax toward equilibrium, store.
	src := addrChain(b, "sa", 3, 1)
	dst := addrChain(b, "da", 3, 1)
	var cells []int
	for i := 0; i < 3; i++ {
		f := b.Op(dfg.Load, nameIdx("f", i), src[i])
		cells = append(cells, f)
	}
	rho := adderTree(b, "rho", append([]int(nil), cells...))
	eq := b.Op(dfg.Shr, "eq", rho, b.Const("c2", 2))
	for i := 0; i < 3; i++ {
		dev := b.Op(dfg.Sub, nameIdx("dev", i), cells[i], eq)
		relaxed := b.Op(dfg.Sub, nameIdx("rx", i), cells[i], b.Op(dfg.Shr, nameIdx("dv2", i), dev, b.Const(nameIdx("c1", i), 1)))
		b.Op(dfg.Store, nameIdx("st", i), dst[i], relaxed)
	}
	return b.Build()
}

func buildViterbi() *dfg.DFG {
	b := dfg.NewBuilder("hmmer_viterbi")
	// mmx = max(prev_m + tmm, prev_i + tim, prev_d + tdm) + emission.
	pm := b.Op(dfg.Load, "pm", b.Input("pma"))
	pi := b.Op(dfg.Load, "pi", b.Input("pia"))
	pd := b.Op(dfg.Load, "pd", b.Input("pda"))
	em := b.Op(dfg.Load, "em", b.Input("ema"))
	cm := b.Op(dfg.Add, "cm", pm, b.Const("tmm", 7))
	ci := b.Op(dfg.Add, "ci", pi, b.Const("tim", -3))
	cd := b.Op(dfg.Add, "cd", pd, b.Const("tdm", -11))
	best := b.Op(dfg.Max, "best", b.Op(dfg.Max, "b01", cm, ci), cd)
	score := b.Op(dfg.Add, "score", best, em)
	floor := b.Op(dfg.Max, "floor", score, b.Const("ninf", -(1<<28)))
	b.Op(dfg.Store, "st", b.Input("oa"), floor)
	return b.Build()
}

func buildSAD() *dfg.DFG {
	b := dfg.NewBuilder("h264_sad")
	cur := addrChain(b, "ca", 4, 1)
	ref := addrChain(b, "ra", 4, 1)
	var diffs []int
	for i := 0; i < 4; i++ {
		c := b.Op(dfg.Load, nameIdx("c", i), cur[i])
		r := b.Op(dfg.Load, nameIdx("r", i), ref[i])
		diffs = append(diffs, b.Op(dfg.Abs, nameIdx("ad", i), b.Op(dfg.Sub, nameIdx("d", i), c, r)))
	}
	sum := adderTree(b, "sad", diffs)
	acc := b.Op(dfg.Add, "acc", sum)
	b.EdgeDist(acc, acc, 1, 1)
	return b.Build()
}

func buildGobmk() *dfg.DFG {
	b := dfg.NewBuilder("gobmk_lib")
	// Liberty counting: mask neighbours, OR empty squares, popcount step.
	board := b.Op(dfg.Load, "board", b.Input("ba"))
	empty := b.Op(dfg.Load, "empty", b.Input("ea"))
	north := b.Op(dfg.Shl, "north", board, b.Const("c9n", 9))
	south := b.Op(dfg.Shr, "south", board, b.Const("c9s", 9))
	east := b.Op(dfg.Shl, "east", board, b.Const("c1e", 1))
	west := b.Op(dfg.Shr, "west", board, b.Const("c1w", 1))
	nb := b.Op(dfg.Or, "nb", b.Op(dfg.Or, "ns", north, south), b.Op(dfg.Or, "ew", east, west))
	libs := b.Op(dfg.And, "libs", nb, empty)
	// popcount nibble step: x - ((x>>1)&0x5555...).
	half := b.Op(dfg.And, "half", b.Op(dfg.Shr, "l1", libs, b.Const("one", 1)), b.Const("m5", 0x5555555555555555))
	cnt := b.Op(dfg.Sub, "cnt", libs, half)
	b.Op(dfg.Store, "st", b.Input("oa"), cnt)
	return b.Build()
}

func buildPovray() *dfg.DFG {
	b := dfg.NewBuilder("povray_shade")
	// diffuse = max(0, N.L) * intensity, fixed point, three components.
	na := addrChain(b, "na", 3, 1)
	la := addrChain(b, "la", 3, 1)
	var terms []int
	for i := 0; i < 3; i++ {
		n := b.Op(dfg.Load, nameIdx("n", i), na[i])
		l := b.Op(dfg.Load, nameIdx("l", i), la[i])
		terms = append(terms, b.Op(dfg.Mul, nameIdx("t", i), n, l))
	}
	dot := adderTree(b, "dot", terms)
	lit := b.Op(dfg.Max, "lit", dot, b.Const("zero", 0))
	shade := b.Op(dfg.Shr, "shade", mulConst(b, "li", lit, 219), b.Const("c8", 8))
	b.Op(dfg.Store, "st", b.Input("oa"), clamp(b, "cl", shade, 0, 255))
	return b.Build()
}

func buildHistogram() *dfg.DFG {
	b := dfg.NewBuilder("bzip2_hist")
	sym := b.Op(dfg.Load, "sym", b.Input("sa"))
	match := b.Op(dfg.CmpEQ, "match", sym, b.Const("key", 42))
	// cnt = min(cnt + match, CAP): 2-op recurrence (the capped count models
	// the memory-carried histogram bin dependence).
	cntAdd := b.Op(dfg.Add, "cntadd", match)
	cntCap := b.Op(dfg.Min, "cntcap", cntAdd, b.Const("cap", 1<<16))
	b.EdgeDist(cntCap, cntAdd, 1, 1)
	return b.Build()
}

func buildMCF() *dfg.DFG {
	b := dfg.NewBuilder("mcf_relax")
	w := b.Op(dfg.Load, "w", b.Input("wa"))
	// potential feedback: cand = pot + w; best = min(best_prev, cand);
	// pot = best - red. A 3-op recurrence cycle.
	pot := b.Op(dfg.Sub, "pot")
	cand := b.Op(dfg.Add, "cand", pot, w)
	best := b.Op(dfg.Min, "best", cand)
	b.EdgeDist(best, best, 1, 1)
	b.EdgeDist(best, pot, 0, 1)
	red := b.Const("red", 5)
	b.EdgeDist(red, pot, 1, 0)
	b.Op(dfg.Store, "st", b.Input("oa"), best)
	return b.Build()
}

func buildLibquantum() *dfg.DFG {
	b := dfg.NewBuilder("libquantum_acc")
	mask := b.Op(dfg.Load, "mask", b.Input("ma"))
	// state = (state << 1) ^ (mask | state): a 2-op recurrence cycle plus a
	// mixing OR inside it.
	mix := b.Op(dfg.Or, "mix", mask)
	shifted := b.Op(dfg.Shl, "shifted")
	state := b.Op(dfg.Xor, "state", shifted, mix)
	b.EdgeDist(state, mix, 1, 1)
	b.EdgeDist(state, shifted, 0, 1)
	b.EdgeDist(b.Const("one", 1), shifted, 1, 0)
	b.Op(dfg.Store, "st", b.Input("oa"), state)
	return b.Build()
}

func buildSphinx() *dfg.DFG {
	b := dfg.NewBuilder("sphinx_dot")
	feat := b.Op(dfg.Load, "feat", b.Input("fa"))
	mean := b.Op(dfg.Load, "mean", b.Input("mp"))
	diff := b.Op(dfg.Sub, "diff", feat, mean)
	sq := b.Op(dfg.Mul, "sq", diff, diff)
	// score = max(score - sq, floor): 2-op recurrence.
	scoreSub := b.Op(dfg.Sub, "ssub")
	scoreFloor := b.Op(dfg.Max, "sfloor", scoreSub, b.Const("floor", -(1<<30)))
	b.EdgeDist(scoreFloor, scoreSub, 0, 1)
	b.EdgeDist(sq, scoreSub, 1, 0)
	b.Op(dfg.Store, "st", b.Input("oa"), scoreFloor)
	return b.Build()
}
