package kernels

import (
	"testing"

	"regimap/internal/dfg"
	"regimap/internal/sim"
)

func TestAllKernelsBuildAndValidate(t *testing.T) {
	all := All()
	if len(all) < 28 {
		t.Fatalf("suite has %d kernels, want >= 28", len(all))
	}
	seen := map[string]bool{}
	for _, k := range all {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel name %s", k.Name)
		}
		seen[k.Name] = true
		d := k.Build()
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if d.N() < 5 || d.N() > 64 {
			t.Errorf("%s: %d ops outside the realistic 5..64 range", k.Name, d.N())
		}
		if k.Suite != "dsp" && k.Suite != "spec" {
			t.Errorf("%s: unknown suite %q", k.Name, k.Suite)
		}
		if k.Description == "" {
			t.Errorf("%s: missing description", k.Name)
		}
	}
}

func TestByName(t *testing.T) {
	k, ok := ByName("fir8")
	if !ok || k.Name != "fir8" {
		t.Fatal("ByName(fir8) failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName invented a kernel")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Fatal("Names length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

// TestClassification pins each kernel's boundedness group on the paper's
// 4x4 array, the split the whole evaluation section relies on.
func TestClassification(t *testing.T) {
	wantRec := map[string]bool{
		"iir_biquad":     true,
		"adpcm_step":     true,
		"autocorr_sat":   true,
		"dotprod_sat":    true,
		"newton_recip":   true,
		"bzip2_hist":     true,
		"mcf_relax":      true,
		"libquantum_acc": true,
		"sphinx_dot":     true,
		"gzip_crc":       true,
	}
	res, rec := 0, 0
	for _, k := range All() {
		d := k.Build()
		got := Classify(d, 16, 4)
		if wantRec[k.Name] && got != RecBounded {
			t.Errorf("%s: classified %v, want rec-bounded (ResMII=%d RecMII=%d)",
				k.Name, got, d.ResMII(16, 4), d.RecMII())
		}
		if !wantRec[k.Name] && got != ResBounded {
			t.Errorf("%s: classified %v, want res-bounded (ResMII=%d RecMII=%d)",
				k.Name, got, d.ResMII(16, 4), d.RecMII())
		}
		if got == ResBounded {
			res++
		} else {
			rec++
		}
	}
	if res < 10 || rec < 5 {
		t.Errorf("suite split res=%d rec=%d; want a healthy mix as in the paper", res, rec)
	}
}

func TestBoundednessString(t *testing.T) {
	if ResBounded.String() != "res-bounded" || RecBounded.String() != "rec-bounded" {
		t.Fatal("Boundedness names wrong")
	}
}

// Every kernel must run on the reference interpreter (sanity of semantics).
func TestKernelsInterpret(t *testing.T) {
	for _, k := range All() {
		if _, err := sim.Reference(k.Build(), 4); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// Recurrence checks: the rec-bounded kernels carry the cycle heights their
// comments claim.
func TestRecurrenceHeights(t *testing.T) {
	want := map[string]int{
		"iir_biquad":   3,
		"adpcm_step":   3,
		"dotprod_sat":  3,
		"newton_recip": 3,
		"mcf_relax":    3,
		"autocorr_sat": 2,
		"bzip2_hist":   2,
		"sphinx_dot":   2,
	}
	for name, rec := range want {
		k, ok := ByName(name)
		if !ok {
			t.Fatalf("kernel %s missing", name)
		}
		if got := k.Build().RecMII(); got != rec {
			t.Errorf("%s: RecMII = %d, want %d", name, got, rec)
		}
	}
}

func TestAdderTreeHelper(t *testing.T) {
	b := dfg.NewBuilder("tree")
	var vals []int
	for i := 0; i < 5; i++ {
		vals = append(vals, b.Input("x"))
	}
	root := adderTree(b, "t", vals)
	d := b.Build()
	if d.Nodes[root].Kind != dfg.Add {
		t.Fatal("tree root is not an add")
	}
	// 5 leaves need 4 adds.
	adds := 0
	for _, nd := range d.Nodes {
		if nd.Kind == dfg.Add {
			adds++
		}
	}
	if adds != 4 {
		t.Fatalf("tree used %d adds, want 4", adds)
	}
}

func TestRandomGenerator(t *testing.T) {
	d := Random(1, RandomOptions{Ops: 20, MemFraction: 0.2, Recurrence: 3})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() < 20 {
		t.Errorf("Random produced %d ops, want >= 20", d.N())
	}
	if got := d.RecMII(); got != 3 {
		t.Errorf("RecMII = %d, want 3", got)
	}
	// Determinism.
	d2 := Random(1, RandomOptions{Ops: 20, MemFraction: 0.2, Recurrence: 3})
	if d.N() != d2.N() || len(d.Edges) != len(d2.Edges) {
		t.Error("Random not deterministic")
	}
	// Fanout cap respected.
	d3 := Random(7, RandomOptions{Ops: 40, MaxFanout: 3})
	for v := range d3.Nodes {
		if len(d3.OutEdges(v)) > 3+1 { // +1: the recurrence helper may tap one extra
			t.Errorf("fanout of node %d is %d, cap 3", v, len(d3.OutEdges(v)))
		}
	}
	if _, err := sim.Reference(d, 3); err != nil {
		t.Fatal(err)
	}
}
