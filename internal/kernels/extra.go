package kernels

import (
	"regimap/internal/dfg"
	"regimap/internal/loopir"
)

// A second tranche of kernels, written in the loop source language the
// front end compiles (internal/loopir) — both to broaden the suite and to
// keep the front end exercised by production inputs.
func init() {
	register("rgb2gray", "dsp", "ITU-R 601 luma from packed RGB", func() *dfg.DFG {
		return loopir.MustCompile("rgb2gray", `
			gray = (77*r[i] + 150*g[i] + 29*b[i]) >> 8
			out[i] = min(gray, 255)
		`)
	})
	register("alpha_blend", "dsp", "per-pixel alpha blend of two streams", func() *dfg.DFG {
		return loopir.MustCompile("alpha_blend", `
			a = al[i]
			out[i] = (a*src[i] + (256-a)*dst[i]) >> 8
		`)
	})
	register("median3", "dsp", "3-tap median filter via min/max network", func() *dfg.DFG {
		return loopir.MustCompile("median3", `
			lo  = min(x[i], x[i-1])
			hi  = max(x[i], x[i-1])
			out[i] = max(lo, min(hi, x[i-2]))
		`)
	})
	register("gzip_crc", "spec", "bitwise CRC step with feedback (gzip-class)", func() *dfg.DFG {
		return loopir.MustCompile("gzip_crc", `
			// crc' = (crc >> 1) ^ (poly & (crc ^ data)): a 3-op recurrence.
			mix = crc@1 ^ data[i]
			crc = (crc@1 >> 1) ^ (poly & mix)
			out[i] = crc
		`)
	})
	register("sjeng_eval", "spec", "bitboard evaluation mix (sjeng-class)", func() *dfg.DFG {
		return loopir.MustCompile("sjeng_eval", `
			occ   = own[i] | opp[i]
			atk   = (own[i] << 9) & (occ ^ opp[i])
			score = select(atk < occ, atk & mask, occ >> 3)
			out[i] = score + (atk == occ)
		`)
	})
	register("lut_map", "dsp", "table lookup with a data-dependent address", buildLUT)
}

// buildLUT reads a value and uses it as an index into a lookup table — the
// data-dependent addressing pattern (histogram/tone-mapping loops) the
// source language's i-relative subscripts cannot express.
func buildLUT() *dfg.DFG {
	b := dfg.NewBuilder("lut_map")
	x := b.Op(dfg.Load, "x", b.Input("xa"))
	masked := b.Op(dfg.And, "masked", x, b.Const("m255", 255))
	addr := b.Op(dfg.Add, "lutaddr", masked, b.Const("lutbase", 1<<22))
	y := b.Op(dfg.Load, "y", addr)
	b.Op(dfg.Store, "st", b.Input("oa"), y)
	return b.Build()
}
