package kernels

import (
	"fmt"
	"math/rand"

	"regimap/internal/dfg"
)

// RandomOptions shapes the synthetic-kernel generator.
type RandomOptions struct {
	// Ops is the target operation count (<=0: 16).
	Ops int
	// MemFraction in [0,1] is the approximate share of memory operations
	// (<0: 0.15).
	MemFraction float64
	// Recurrence adds a multi-op recurrence cycle of the given height
	// (0: none).
	Recurrence int
	// MaxFanout caps how many consumers a value may accumulate (<=0: 4,
	// roughly what compiler-generated loop bodies exhibit).
	MaxFanout int
}

// Random generates a structurally valid synthetic kernel. The same seed and
// options always produce the same DFG; used by property tests, fuzz-style
// integration tests, and the scalability benches.
func Random(seed int64, opts RandomOptions) *dfg.DFG {
	if opts.Ops <= 0 {
		opts.Ops = 16
	}
	if opts.MemFraction < 0 {
		opts.MemFraction = 0.15
	}
	if opts.MaxFanout <= 0 {
		opts.MaxFanout = 4
	}
	rng := rand.New(rand.NewSource(seed))
	b := dfg.NewBuilder(fmt.Sprintf("rand%d", seed))
	fanout := map[int]int{}
	pick := func(ids []int) (int, bool) {
		// Prefer low-fanout values; give up after a few tries.
		for try := 0; try < 8; try++ {
			v := ids[rng.Intn(len(ids))]
			if fanout[v] < opts.MaxFanout {
				fanout[v]++
				return v, true
			}
		}
		return 0, false
	}
	ids := []int{b.Input("i0")}
	kinds := []dfg.OpKind{
		dfg.Add, dfg.Sub, dfg.Mul, dfg.And, dfg.Or, dfg.Xor,
		dfg.Shl, dfg.Shr, dfg.Min, dfg.Max, dfg.CmpLT,
	}
	for len(ids) < opts.Ops {
		switch {
		case rng.Float64() < opts.MemFraction:
			a, ok := pick(ids)
			if !ok {
				ids = append(ids, b.Input("i"))
				continue
			}
			ids = append(ids, b.Op(dfg.Load, fmt.Sprintf("ld%d", len(ids)), a))
		case rng.Intn(6) == 0:
			ids = append(ids, b.Input("i"))
		default:
			x, ok1 := pick(ids)
			y, ok2 := pick(ids)
			if !ok1 || !ok2 {
				ids = append(ids, b.Input("i"))
				continue
			}
			k := kinds[rng.Intn(len(kinds))]
			ids = append(ids, b.Op(k, fmt.Sprintf("op%d", len(ids)), x, y))
		}
	}
	if opts.Recurrence > 0 {
		src, _ := pick(ids)
		// Build a cycle of the requested height: add, then (height-1)
		// saturation stages, closed at distance 1.
		head := b.Op(dfg.Add, "racc", src)
		cur := head
		for i := 1; i < opts.Recurrence; i++ {
			if i%2 == 1 {
				cur = b.Op(dfg.Min, fmt.Sprintf("rsat%d", i), cur, b.Const(fmt.Sprintf("rc%d", i), int64(1<<20+i)))
			} else {
				cur = b.Op(dfg.Max, fmt.Sprintf("rsat%d", i), cur, b.Const(fmt.Sprintf("rc%d", i), int64(-(1<<20))))
			}
		}
		b.EdgeDist(cur, head, 1, 1)
	}
	return b.Build()
}
