package config

import (
	"context"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/kernels"
	"regimap/internal/mapping"
)

// fig2dMapping is the paper's Figure 2(d) mapping (II=2, a's value carried in
// two rotating registers of PE 1).
func fig2dMapping() *mapping.Mapping {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	m := mapping.New(b.Build(), arch.NewMesh(1, 2, 2), 2)
	m.Time = []int{0, 1, 2, 3}
	m.PE = []int{1, 0, 0, 1}
	return m
}

func TestEmitFigure2d(t *testing.T) {
	m := fig2dMapping()
	prog, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	if prog.II != 2 || len(prog.PEs) != 2 {
		t.Fatalf("program shape wrong: %+v", prog)
	}
	// a parks its value: its instruction must write a register; d must read
	// the rotating file; b reads a neighbour; c reads its own out register.
	aIn := prog.PEs[1].Slots[0]
	if aIn == nil || aIn.Op != dfg.Input || aIn.WriteReg < 0 {
		t.Fatalf("a's instruction wrong: %+v", aIn)
	}
	dIn := prog.PEs[1].Slots[1]
	if dIn == nil || dIn.Op != dfg.Add {
		t.Fatalf("d's instruction wrong: %+v", dIn)
	}
	foundReg := false
	for _, op := range dIn.Operands {
		if op.Kind == SrcRegister {
			foundReg = true
		}
	}
	if !foundReg {
		t.Error("d must read the register file")
	}
	bIn := prog.PEs[0].Slots[1]
	if bIn == nil || bIn.Operands[0].Kind != SrcNeighbor {
		t.Fatalf("b must read a neighbour: %+v", bIn)
	}
	cIn := prog.PEs[0].Slots[0]
	if cIn == nil || cIn.Operands[0].Kind != SrcSelf {
		t.Fatalf("c must read its own out register: %+v", cIn)
	}
	// PE 1 uses the paper's two registers.
	if prog.PEs[1].Used != 2 {
		t.Errorf("PE 1 uses %d register slots, want 2", prog.PEs[1].Used)
	}
	listing := prog.String()
	for _, want := range []string{"II=2", "input", "-> r0", "self"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestExecuteFigure2d(t *testing.T) {
	if err := Check(fig2dMapping(), 10); err != nil {
		t.Fatal(err)
	}
}

func TestEmitRejectsInvalidMapping(t *testing.T) {
	m := fig2dMapping()
	m.PE[3] = 0 // break the carried same-PE rule
	if _, err := Emit(m); err == nil {
		t.Fatal("Emit accepted an invalid mapping")
	}
}

func TestEmitRejectsTinyFile(t *testing.T) {
	// The Figure 2(d) mapping needs a 2-slot window; shrink the file to 1.
	// The mapping itself then fails validation (pressure 2 > 1), which Emit
	// must surface.
	m := fig2dMapping()
	m.C = arch.NewMesh(1, 2, 1)
	if _, err := Emit(m); err == nil {
		t.Fatal("Emit accepted an over-capacity mapping")
	}
}

func TestExecuteBadIters(t *testing.T) {
	prog, err := Emit(fig2dMapping())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(prog, 0); err == nil {
		t.Fatal("Execute accepted zero iterations")
	}
}

func TestBoundaries(t *testing.T) {
	// II=2, phase 0: boundaries at 0,2,4,...
	cases := []struct {
		write, read, ii, phase, want int
	}{
		{1, 2, 2, 0, 1},  // crosses the boundary at 2
		{2, 3, 2, 0, 0},  // within one rotation period
		{1, 5, 2, 0, 2},  // boundaries at 2 and 4
		{1, 2, 2, 1, 0},  // phase 1: boundaries at 1,3 — none in (1,2]
		{0, 3, 2, 1, 2},  // boundaries at 1 and 3
		{3, 11, 4, 2, 2}, // boundaries at 6 and 10
	}
	for _, c := range cases {
		if got := boundaries(c.write, c.read, c.ii, c.phase); got != c.want {
			t.Errorf("boundaries(%d,%d,II=%d,phase=%d) = %d, want %d",
				c.write, c.read, c.ii, c.phase, got, c.want)
		}
	}
}

// TestAccumulatorRotation exercises the rotating-file addressing with a
// recurrence: acc += x at II=2 parks acc's value one iteration.
func TestAccumulatorRotation(t *testing.T) {
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	m := mapping.New(d, arch.NewMesh(1, 2, 2), 2)
	m.Time = []int{0, 1}
	m.PE = []int{0, 1}
	if err := Check(m, 12); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteLowersAndExecutes is the backend's integration test: every
// kernel REGIMap maps on a generously-registered array must lower to
// instruction words and execute bit-identically to the reference. A file
// one rotation window short is reported, not mis-executed.
func TestSuiteLowersAndExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("lowers the whole suite")
	}
	c := arch.NewMesh(4, 4, 8)
	lowered := 0
	for _, k := range kernels.All() {
		m, _, err := core.Map(context.Background(), k.Build(), c, core.Options{})
		if err != nil {
			continue
		}
		prog, err := Emit(m)
		if err != nil {
			// Permitted only for the documented reason: rotation windows
			// exceeding the file.
			if !strings.Contains(err.Error(), "rotating-register slots") {
				t.Errorf("%s: %v", k.Name, err)
			}
			continue
		}
		lowered++
		got, err := Execute(prog, 6)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if got.Cycles == 0 {
			t.Errorf("%s: executor reported no cycles", k.Name)
		}
		if err := Check(m, 6); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
	if lowered < 20 {
		t.Errorf("only %d/24 kernels lowered to configurations", lowered)
	}
}

func TestSrcKindString(t *testing.T) {
	if SrcSelf.String() != "self" || SrcNeighbor.String() != "nbr" || SrcRegister.String() != "reg" || SrcNone.String() != "none" {
		t.Error("source kind names wrong")
	}
	if !strings.Contains(SrcKind(9).String(), "9") {
		t.Error("unknown kind should print its number")
	}
	var nop *Instr
	if !nop.NOP() {
		t.Error("nil instruction must be a NOP")
	}
}
