package config

import (
	"fmt"

	"regimap/internal/dfg"
	"regimap/internal/mapping"
	"regimap/internal/sim"
)

// Execute runs the kernel configuration on a machine-level model for iters
// iterations of every instruction: per-PE output registers, physically
// rotating register files addressed purely by the logical indices in the
// instruction words, and the software-pipeline prologue ramp. Unlike
// sim.Run, this executor has no access to the data-flow graph — it sees only
// instruction words — so agreement with the reference interpreter proves the
// emitted configuration itself, register binding included.
//
// Two test-harness seams remain (documented on the Instr/Operand fields):
// Input/Load instructions use their originating node id to generate the
// deterministic synthetic data streams, and pre-loop operands read as zero
// instead of requiring predicated prologue code.
func Execute(p *Program, iters int) (*sim.Result, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("config: non-positive iteration count %d", iters)
	}
	numPEs := len(p.PEs)
	// Discover the node count and the last cycle.
	maxNode, lastCycle := -1, 0
	for pe := range p.PEs {
		for _, in := range p.PEs[pe].Slots {
			if in == nil {
				continue
			}
			if in.Node > maxNode {
				maxNode = in.Node
			}
			if end := in.Start + (iters-1)*p.II; end > lastCycle {
				lastCycle = end
			}
		}
	}
	res := &sim.Result{
		Values: make([][]int64, maxNode+1),
		Stores: map[int][][2]int64{},
	}

	outReg := make([]int64, numPEs)
	regs := make([][]int64, numPEs)
	rot := make([]int, numPEs)
	for pe := range regs {
		regs[pe] = make([]int64, max(1, p.NumRegs))
	}
	type rfWrite struct {
		pe, logical int
		value       int64
	}
	type outWrite struct {
		pe    int
		value int64
	}
	var pendingRF []rfWrite
	var pendingOut []outWrite

	physical := func(pe, logical int) int {
		n := len(regs[pe])
		return ((logical-rot[pe])%n + n) % n
	}

	for t := 0; t <= lastCycle; t++ {
		// 1. Rotation boundaries (start of cycle).
		for pe := range p.PEs {
			if t >= p.PEs[pe].Phase && (t-p.PEs[pe].Phase)%p.II == 0 {
				rot[pe]++
			}
		}
		// 2. Commit last cycle's results: they become visible this cycle.
		for _, w := range pendingRF {
			regs[w.pe][physical(w.pe, w.logical)] = w.value
		}
		for _, w := range pendingOut {
			outReg[w.pe] = w.value
		}
		pendingRF, pendingOut = pendingRF[:0], pendingOut[:0]

		// 3. Fetch, read, execute.
		slot := t % p.II
		for pe := range p.PEs {
			in := p.PEs[pe].Slots[slot]
			if in == nil || t < in.Start || (t-in.Start)%p.II != 0 {
				continue
			}
			k := (t - in.Start) / p.II
			if k >= iters {
				continue
			}
			args := make([]int64, len(in.Operands))
			for i, op := range in.Operands {
				if k-op.Dist < 0 {
					args[i] = 0 // defined pre-loop value; see the seam note
					continue
				}
				switch op.Kind {
				case SrcSelf:
					args[i] = outReg[pe]
				case SrcNeighbor:
					row := pe/p.Cols + op.Dy
					col := pe%p.Cols + op.Dx
					row = ((row % p.Rows) + p.Rows) % p.Rows
					col = ((col % p.Cols) + p.Cols) % p.Cols
					args[i] = outReg[row*p.Cols+col]
				case SrcRegister:
					args[i] = regs[pe][physical(pe, op.Reg)]
				default:
					return nil, fmt.Errorf("config: PE %d slot %d operand %d has no source", pe, slot, i)
				}
			}
			var value int64
			isStore := false
			switch in.Op {
			case dfg.Input:
				value = dfg.InputValue(in.Node, int64(k))
			case dfg.Counter:
				value = int64(k)
			case dfg.Load:
				value = dfg.LoadValue(args[0])
			case dfg.Store:
				res.Stores[in.Node] = append(res.Stores[in.Node], [2]int64{args[0], args[1]})
				isStore = true
			default:
				value = dfg.Eval(in.Op, in.Imm, args)
			}
			if isStore {
				continue
			}
			if res.Values[in.Node] == nil {
				res.Values[in.Node] = make([]int64, iters)
			}
			res.Values[in.Node][k] = value
			pendingOut = append(pendingOut, outWrite{pe: pe, value: value})
			if in.WriteReg >= 0 {
				pendingRF = append(pendingRF, rfWrite{pe: pe, logical: in.WriteReg, value: value})
			}
		}
	}
	res.Cycles = lastCycle + 1
	return res, nil
}

// Check is the strongest end-to-end proof in the repository: lower the
// mapping to instruction words, run them on the machine-level executor, and
// compare every produced value against the sequential reference
// interpretation of the loop.
func Check(m *mapping.Mapping, iters int) error {
	prog, err := Emit(m)
	if err != nil {
		return err
	}
	got, err := Execute(prog, iters)
	if err != nil {
		return err
	}
	want, err := sim.Reference(m.D, iters)
	if err != nil {
		return err
	}
	return sim.Equivalent(m.D, got, want)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
