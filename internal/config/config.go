// Package config is the backend of the flow: it turns an abstract mapping
// (operation -> PE, cycle) into the concrete kernel configuration a CGRA
// executes — per-PE instruction words with operand routing selectors and
// rotating-register indices — and provides a machine-level executor that
// runs those words, completing the compiler story the paper assumes
// ("CGRA has enough memory to hold the instructions... instructions within
// the kernel repeat every II cycles").
//
// # Rotating register binding
//
// The paper assumes rotating register files: each file shifts by one
// position at every kernel-iteration boundary, so the copy of a value
// written d iterations ago is addressed at a fixed logical offset (+d) in
// the instruction word. A value therefore occupies a *window* of
// consecutive logical registers — one slot per iteration boundary its
// lifetime crosses — and two values never collide as long as their windows
// are disjoint. The emitter chooses each file's rotation phase to minimize
// the total window size, binds windows left to right, and reports a
// precise error when a file is too small.
package config

import (
	"fmt"
	"strings"

	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

// SrcKind selects where an operand comes from.
type SrcKind int

// Operand sources of an instruction word.
const (
	// SrcNone marks an unused operand slot.
	SrcNone SrcKind = iota
	// SrcSelf reads the PE's own output register (the producer executed
	// here one cycle earlier).
	SrcSelf
	// SrcNeighbor reads a neighbouring PE's output register; Dx/Dy give the
	// mesh offset of that neighbour.
	SrcNeighbor
	// SrcRegister reads the PE's rotating register file at logical index
	// Reg.
	SrcRegister
)

// String names the source kind.
func (k SrcKind) String() string {
	switch k {
	case SrcNone:
		return "none"
	case SrcSelf:
		return "self"
	case SrcNeighbor:
		return "nbr"
	case SrcRegister:
		return "reg"
	default:
		return fmt.Sprintf("SrcKind(%d)", int(k))
	}
}

// Operand is one operand selector of an instruction word.
type Operand struct {
	Kind   SrcKind
	Dx, Dy int // SrcNeighbor: mesh offset of the producer PE
	Reg    int // SrcRegister: logical rotating-register index
	// Dist is the inter-iteration distance of the dependence (metadata the
	// executor uses to substitute the defined-as-zero pre-loop values during
	// the prologue; real hardware would predicate the ramp-up instead).
	Dist int
}

// Instr is one PE instruction word (one modulo slot of one PE).
type Instr struct {
	Op       dfg.OpKind
	Node     int // originating DFG operation (metadata; drives Input/Load streams)
	Imm      int64
	Operands []Operand
	// WriteReg is the logical rotating-register index the result is parked
	// at (-1: the result only passes through the output register).
	WriteReg int
	// Start is the first cycle this slot fires (the software-pipeline
	// prologue ramp); it fires every II cycles from there.
	Start int
}

// NOP reports whether the slot is empty.
func (in *Instr) NOP() bool { return in == nil }

// PEConfig is one PE's program: II instruction slots plus its register-file
// rotation phase.
type PEConfig struct {
	Slots []*Instr // length II; nil = nop
	Phase int      // rotation boundary: the file rotates when cycle % II == Phase
	Used  int      // logical registers consumed
}

// Program is a complete kernel configuration.
type Program struct {
	Rows, Cols int
	NumRegs    int
	II         int
	PEs        []PEConfig
}

// Emit lowers a validated mapping into a kernel configuration. The mapping's
// DFG, array and II are embedded in the result; Emit fails if the mapping is
// invalid or a register file cannot hold its rotating windows (see the
// package comment — window demand can exceed the mapper's per-copy
// accounting by one slot per value when a lifetime straddles a rotation
// boundary).
func Emit(m *mapping.Mapping) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	d := m.D
	prog := &Program{
		Rows:    m.C.Rows,
		Cols:    m.C.Cols,
		NumRegs: m.C.NumRegs,
		II:      m.II,
		PEs:     make([]PEConfig, m.C.NumPEs()),
	}
	for p := range prog.PEs {
		prog.PEs[p].Slots = make([]*Instr, m.II)
	}

	// Bind registers per PE: pick the rotation phase minimizing the total
	// window demand, then assign windows left to right.
	writeReg := make([]int, d.N()) // logical base index per producer (-1: none)
	for v := range writeReg {
		writeReg[v] = -1
	}
	for p := 0; p < m.C.NumPEs(); p++ {
		if err := bindPE(m, p, &prog.PEs[p], writeReg); err != nil {
			return nil, err
		}
	}

	// Emit instruction words.
	for v, nd := range d.Nodes {
		pe := m.PE[v]
		slot := m.Slot(v)
		in := &Instr{
			Op:       nd.Kind,
			Node:     v,
			Imm:      nd.Value,
			WriteReg: writeReg[v],
			Start:    m.Time[v],
		}
		arity := len(d.InEdges(v))
		in.Operands = make([]Operand, arity)
		for _, ei := range d.InEdges(v) {
			e := d.Edges[ei]
			op, err := operandFor(m, prog, writeReg, e)
			if err != nil {
				return nil, err
			}
			op.Dist = e.Dist
			in.Operands[e.Port] = op
		}
		prog.PEs[pe].Slots[slot] = in
	}
	return prog, nil
}

// operandFor encodes how consumer e.To fetches the value of e.From.
func operandFor(m *mapping.Mapping, prog *Program, writeReg []int, e dfg.Edge) (Operand, error) {
	span := m.Span(e)
	prodPE, consPE := m.PE[e.From], m.PE[e.To]
	if span == 1 {
		if prodPE == consPE {
			return Operand{Kind: SrcSelf}, nil
		}
		return Operand{
			Kind: SrcNeighbor,
			Dx:   m.C.ColOf(prodPE) - m.C.ColOf(consPE),
			Dy:   m.C.RowOf(prodPE) - m.C.RowOf(consPE),
		}, nil
	}
	// Register-carried: the consumer reads the producer's window at offset
	// d = rotation boundaries crossed since the copy was written.
	base := writeReg[e.From]
	if base < 0 {
		return Operand{}, fmt.Errorf("config: internal error, %s carried but unbound", m.D.Nodes[e.From].Name)
	}
	d := crossings(m, prog.PEs[prodPE].Phase, e)
	return Operand{Kind: SrcRegister, Reg: base + d}, nil
}

// crossings counts the rotation boundaries between a copy's write and this
// consumer's read: the fixed logical offset the instruction addresses.
func crossings(m *mapping.Mapping, phase int, e dfg.Edge) int {
	write := m.Time[e.From] + 1 // the value reaches the file one cycle after execution
	read := m.Time[e.To] + m.II*e.Dist
	return boundaries(write, read, m.II, phase)
}

// boundaries counts t in (write, read] with t % II == phase.
func boundaries(write, read, ii, phase int) int {
	count := func(t int) int {
		// boundaries in [0, t]: floor((t - phase)/II) + 1 for t >= phase.
		if t < phase {
			return 0
		}
		return (t-phase)/ii + 1
	}
	return count(read) - count(write)
}

// bindPE chooses PE p's rotation phase and assigns register windows.
func bindPE(m *mapping.Mapping, p int, cfg *PEConfig, writeReg []int) error {
	d := m.D
	type valueDemand struct {
		op     int
		window int
	}
	bestPhase, bestTotal := 0, -1
	var bestDemands []valueDemand
	for phase := 0; phase < m.II; phase++ {
		var demands []valueDemand
		total := 0
		for v := range d.Nodes {
			if m.PE[v] != p {
				continue
			}
			window := 0
			for _, ei := range d.OutEdges(v) {
				e := d.Edges[ei]
				if m.Span(e) <= 1 {
					continue
				}
				if w := boundaries(m.Time[v]+1, m.Time[e.To]+m.II*e.Dist, m.II, phase) + 1; w > window {
					window = w
				}
			}
			if window > 0 {
				demands = append(demands, valueDemand{op: v, window: window})
				total += window
			}
		}
		if bestTotal < 0 || total < bestTotal {
			bestPhase, bestTotal, bestDemands = phase, total, demands
		}
	}
	if bestTotal > m.C.NumRegs {
		return fmt.Errorf("config: PE %d needs %d rotating-register slots, file holds %d (windows straddling rotation boundaries cost one extra slot; give the array %d registers or re-map)",
			p, bestTotal, m.C.NumRegs, bestTotal)
	}
	cfg.Phase = bestPhase
	cfg.Used = bestTotal
	next := 0
	for _, dem := range bestDemands {
		writeReg[dem.op] = next
		next += dem.window
	}
	return nil
}

// String renders the configuration as a readable kernel listing.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel configuration: %dx%d CGRA, %d regs/PE, II=%d\n", p.Rows, p.Cols, p.NumRegs, p.II)
	for pe := range p.PEs {
		cfg := &p.PEs[pe]
		empty := true
		for _, in := range cfg.Slots {
			if in != nil {
				empty = false
			}
		}
		if empty {
			continue
		}
		fmt.Fprintf(&b, "PE %d (row %d, col %d), phase %d, %d regs:\n", pe, pe/p.Cols, pe%p.Cols, cfg.Phase, cfg.Used)
		for s, in := range cfg.Slots {
			if in == nil {
				continue
			}
			fmt.Fprintf(&b, "  [%d] %-6s", s, in.Op)
			for _, op := range in.Operands {
				switch op.Kind {
				case SrcSelf:
					b.WriteString(" self")
				case SrcNeighbor:
					fmt.Fprintf(&b, " nbr(%+d,%+d)", op.Dx, op.Dy)
				case SrcRegister:
					fmt.Fprintf(&b, " r%d", op.Reg)
				}
			}
			if in.Op == dfg.Const {
				fmt.Fprintf(&b, " #%d", in.Imm)
			}
			if in.WriteReg >= 0 {
				fmt.Fprintf(&b, " -> r%d", in.WriteReg)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
