package resilient

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"regimap/internal/arch"
	"regimap/internal/fault"
	"regimap/internal/kernels"
	"regimap/internal/maperr"
	"regimap/internal/sim"
)

func kernel(t *testing.T, name string) *kernels.Kernel {
	t.Helper()
	k, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("kernel %s missing", name)
	}
	return &k
}

func TestHealthyArrayUsesTopRung(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	out, err := Map(context.Background(), k.Build(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungREGIMap {
		t.Fatalf("healthy array degraded to %s", out.Rung)
	}
	if out.Mapping == nil || out.Placement != nil {
		t.Fatal("REGIMap outcome must carry a Mapping")
	}
	if out.Attempt != 0 {
		t.Fatalf("Attempt = %d, want 0", out.Attempt)
	}
	if out.Fabric != c {
		t.Fatal("empty fault set must map on the input array itself")
	}
	if err := sim.Check(out.Mapping, 4); err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 1 || out.Reports[0].Err != nil {
		t.Fatalf("reports = %+v", out.Reports)
	}
}

func TestPermanentFaultsDegradeGracefully(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	fs, err := fault.Parse("pe 1,1; link 0,0-0,1; regs 2,2=1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Map(context.Background(), k.Build(), c, Options{Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	if out.Fabric == c || out.Fabric.Healthy() {
		t.Fatal("outcome must carry the faulted fabric view")
	}
	if out.Mapping != nil {
		if out.Mapping.C != out.Fabric {
			t.Fatal("mapping bound to the wrong array")
		}
		if err := out.Mapping.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Check(out.Mapping, 4); err != nil {
			t.Fatal(err)
		}
	} else if out.Placement == nil {
		t.Fatal("no mapping and no placement on a successful outcome")
	}
	if out.II < out.MII {
		t.Fatalf("II %d below MII %d", out.II, out.MII)
	}
}

func TestLadderFallsThroughOnTightBudget(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	// An II budget of 1 starves REGIMap (no kernel of the suite maps at
	// II=1 on 4x4); the ladder must step down instead of failing.
	out, err := Map(context.Background(), k.Build(), c, Options{
		Ladder: []RungSpec{{Rung: RungREGIMap, MaxII: 1}, {Rung: RungEMS}, {Rung: RungDRESC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung == RungREGIMap {
		t.Fatal("REGIMap cannot have succeeded with MaxII=1")
	}
	if len(out.Reports) < 2 {
		t.Fatalf("reports = %+v", out.Reports)
	}
	if !errors.Is(out.Reports[0].Err, maperr.ErrNoMapping) {
		t.Fatalf("rung 0 failure is not ErrNoMapping: %v", out.Reports[0].Err)
	}
}

func TestDRESCOnlyLadderReturnsPlacement(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	out, err := Map(context.Background(), k.Build(), c, Options{
		Ladder: []RungSpec{{Rung: RungDRESC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungDRESC || out.Placement == nil || out.Mapping != nil {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestTransientFaultsRetryAndClear(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	// Every PE broken for one round: round 0 must fail on every rung, round
	// 1 runs on the healthy array and succeeds.
	var faults []fault.Fault
	for r := 0; r < 4; r++ {
		for col := 0; col < 4; col++ {
			faults = append(faults, fault.Fault{Kind: fault.BrokenPE, R: r, C: col, ClearAfter: 1})
		}
	}
	fs := &fault.Set{Faults: faults}
	out, err := Map(context.Background(), k.Build(), c, Options{Faults: fs, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempt != 1 {
		t.Fatalf("Attempt = %d, want 1 (one retry after the transient cleared)", out.Attempt)
	}
	if out.Rung != RungREGIMap {
		t.Fatalf("after clearing, the top rung should win (got %s)", out.Rung)
	}
	var round0Failures int
	for _, r := range out.Reports {
		if r.Round == 0 {
			if r.Err == nil {
				t.Fatal("round 0 cannot have succeeded with every PE broken")
			}
			if r.Faults == "" {
				t.Fatal("round 0 report lost its fault set")
			}
			round0Failures++
		}
	}
	if round0Failures != 3 {
		t.Fatalf("round 0 ran %d rungs, want all 3", round0Failures)
	}
}

func TestPermanentTotalFailureDoesNotRetry(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(2, 2, 4)
	fs, err := fault.Parse("pe 0,0; pe 0,1; pe 1,0; pe 1,1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Map(context.Background(), k.Build(), c, Options{Faults: fs})
	if err == nil {
		t.Fatal("want failure with every PE broken")
	}
	if !errors.Is(err, maperr.ErrNoMapping) {
		t.Fatalf("not ErrNoMapping: %v", err)
	}
	if !strings.Contains(err.Error(), "after 1 round(s)") {
		t.Fatalf("permanent faults must not retry: %v", err)
	}
}

func TestDeadlineAbortsBackoff(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(2, 2, 4)
	fs, err := fault.Parse("pe 0,0~4; pe 0,1~4; pe 1,0~4; pe 1,1~4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = Map(ctx, k.Build(), c, Options{Faults: fs, Backoff: 10 * time.Second})
	if err == nil {
		t.Fatal("want abort")
	}
	if !errors.Is(err, maperr.ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrAborted wrapping DeadlineExceeded, got %v", err)
	}
}

func TestEmptyLadderRejected(t *testing.T) {
	k := kernel(t, "fir8")
	c := arch.NewMesh(4, 4, 4)
	if _, err := Map(context.Background(), k.Build(), c, Options{Ladder: []RungSpec{}}); err == nil {
		t.Fatal("want error for empty ladder")
	}
}
