package resilient

import (
	"context"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
)

// engineMapper adapts the degradation ladder to the unified engine contract
// under the name "resilient". Options.Extra, when set, must be a
// resilient.Options. engine.Options.MinII is ignored (each rung owns its own
// escalation start); MaxII, when positive, caps every rung of the ladder.
type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "resilient" }

func (engineMapper) Describe() string {
	return "degradation ladder regimap→ems→dresc on a possibly-faulted fabric, with transient-fault retry and simulator certification"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "resilient", Want: "resilient.Options", Got: eo.Extra}
	}
	if eo.MaxII > 0 {
		ladder := opts.Ladder
		if ladder == nil {
			ladder = DefaultLadder()
		}
		capped := make([]RungSpec, len(ladder))
		copy(capped, ladder)
		for i := range capped {
			capped[i].MaxII = eo.MaxII
		}
		opts.Ladder = capped
	}
	out, err := Map(ctx, d, c, opts)
	if err != nil || out == nil {
		return nil, err
	}
	res := &engine.Result{
		Mapping: out.Mapping,
		MII:     out.MII,
		II:      out.II,
		Rounds:  len(out.Reports),
		Stats:   out,
		Elapsed: out.Elapsed,
	}
	if out.Mapping == nil && out.Placement != nil {
		res.Artifact = out.Placement
	}
	return res, err
}
