// Package resilient maps kernels onto possibly-faulty arrays through a
// degradation ladder instead of a single all-or-nothing search:
//
//  1. REGIMap (internal/core) — the paper's mapper, best II;
//  2. EMS (internal/ems) — the greedy edge-centric baseline, which routes
//     around dead regions REGIMap's clique formulation occasionally cannot;
//  3. DRESC (internal/dresc) — annealing over the MRRG, the slowest but most
//     elastic fallback (capacity-zero nodes simply price faults out).
//
// Each rung runs with its own II budget on a faulted view of the array
// (internal/fault), is isolated against panics (a crashing rung surfaces as
// a *maperr.WorkerPanicError and the ladder steps down), and successful
// mappings are certified against the cycle-accurate simulator before being
// returned. When the fault set contains transient faults, the whole ladder
// retries with exponential backoff as faults clear, honouring the caller's
// context deadline — so an intermittent defect degrades service (a worse II
// or a slower mapper) instead of failing the compile.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/dresc"
	"regimap/internal/ems"
	"regimap/internal/engine"
	"regimap/internal/fault"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/obs"
	"regimap/internal/sim"
)

// Rung identifies one mapper of the degradation ladder, best first.
type Rung int

const (
	RungREGIMap Rung = iota
	RungEMS
	RungDRESC
)

// String names the rung.
func (r Rung) String() string {
	switch r {
	case RungREGIMap:
		return "regimap"
	case RungEMS:
		return "ems"
	case RungDRESC:
		return "dresc"
	default:
		return fmt.Sprintf("Rung(%d)", int(r))
	}
}

// RungSpec is one step of the ladder with its own II budget.
type RungSpec struct {
	Rung Rung
	// MaxII caps the rung's II escalation (0: the rung's own default,
	// MII+16 for REGIMap and EMS, MII+8 for DRESC).
	MaxII int
}

// DefaultLadder is the full degradation sequence with default II budgets.
func DefaultLadder() []RungSpec {
	return []RungSpec{{Rung: RungREGIMap}, {Rung: RungEMS}, {Rung: RungDRESC}}
}

// Downgrades returns the engines to fall back to, in order, when the named
// engine is unavailable (its circuit breaker is open, say). Ladder members
// step down the REGIMap→EMS→DRESC sequence from their own position;
// composite engines (portfolio, resilient, ...) restart at the top of the
// ladder, since each already races or wraps the rungs itself. The last rung
// has nowhere to go: an empty slice means "no fallback exists".
func Downgrades(name string) []string {
	ladder := DefaultLadder()
	start := 0
	for i, spec := range ladder {
		if spec.Rung.String() == name {
			start = i + 1
			break
		}
	}
	out := make([]string, 0, len(ladder)-start)
	for _, spec := range ladder[start:] {
		out = append(out, spec.Rung.String())
	}
	return out
}

// Options configures the resilient pipeline. The zero value maps on the
// healthy array with the default ladder.
type Options struct {
	// Faults is the declarative fault set applied to the array (nil or empty:
	// healthy). Transient faults (ClearAfter > 0) arm the retry loop.
	Faults *fault.Set
	// Ladder overrides the rung sequence and per-rung II budgets (nil:
	// DefaultLadder). An empty non-nil ladder is rejected.
	Ladder []RungSpec
	// Core configures the REGIMap rung (its MinII/MaxII are owned by the
	// ladder spec).
	Core core.Options
	// EMS configures the EMS rung.
	EMS ems.Options
	// DRESC configures the DRESC rung.
	DRESC dresc.Options
	// MaxRetries caps transient-fault retry rounds beyond the first attempt
	// (0: just enough rounds for every transient fault to clear; negative:
	// no retries).
	MaxRetries int
	// Backoff is the wait before the first retry, doubling each round
	// (0: 10ms). The wait is cut short by ctx cancellation.
	Backoff time.Duration
	// CheckIters is how many iterations the simulator certifies a successful
	// Mapping for (0: 3; negative: skip certification). DRESC placements are
	// verified structurally by dresc itself.
	CheckIters int
}

// Attempt records one rung execution for post-mortem analysis.
type Attempt struct {
	Round  int    // retry round (0 is the first try)
	Rung   Rung   // which mapper ran
	Faults string // the fault set active during the round
	Err    error  // nil on the attempt that produced the outcome
}

// Outcome is a successful resilient mapping: which rung produced it, at what
// II, on which (possibly faulted) fabric, and after how many retry rounds.
type Outcome struct {
	Rung    Rung
	MII     int // MII on the fabric the winning round mapped onto
	II      int
	Attempt int // retry round that succeeded
	// Mapping is set when the winning rung was REGIMap or EMS. DRESC results
	// are MRRG placements (multi-hop routed paths have no mapping.Mapping
	// representation) and land in Placement instead.
	Mapping   *mapping.Mapping
	Placement *dresc.Placement
	// Fabric is the faulted array view the winner mapped onto (the input
	// array itself when the active fault set was empty).
	Fabric  *arch.CGRA
	Reports []Attempt // every rung attempt, including the winner's
	Elapsed time.Duration
}

// Map runs the degradation ladder, retrying with exponential backoff while
// transient faults clear. Errors carry the maperr taxonomy: ErrAborted (with
// the ctx error) on cancellation, otherwise ErrNoMapping with every rung's
// failure in the wrap chain — including any *maperr.WorkerPanicError from a
// rung that crashed.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*Outcome, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ladder := opts.Ladder
	if ladder == nil {
		ladder = DefaultLadder()
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("resilient: empty ladder")
	}
	maxRetries := opts.MaxRetries
	if maxRetries == 0 {
		maxRetries = opts.Faults.MaxClearAfter()
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}

	var reports []Attempt
	for round := 0; ; round++ {
		active := opts.Faults.Active(round)
		fabric, err := active.Apply(c)
		if err != nil {
			return nil, err
		}
		out, roundReports, err := runLadder(ctx, d, fabric, ladder, opts)
		reports = append(reports, stamp(roundReports, round, active)...)
		if err == nil {
			out.Attempt = round
			out.Reports = reports
			out.Elapsed = time.Since(start)
			obs.From(ctx).Named("resilient", d.Name).Point("map.done",
				"ii", int64(out.II), "mii", int64(out.MII), "attempts", int64(len(reports)))
			return out, nil
		}
		if errors.Is(err, maperr.ErrAborted) {
			return nil, err
		}
		// Retrying is only useful while the active fault set still shrinks.
		if round >= maxRetries || !active.HasTransient() {
			causes := []error{maperr.ErrNoMapping}
			for _, r := range reports {
				causes = append(causes, r.Err)
			}
			return nil, maperr.Wrap(causes,
				"resilient: no mapping for %s on %s (faults: %q) after %d round(s)",
				d.Name, c, opts.Faults.String(), round+1)
		}
		wait := backoff << round
		if max := 2 * time.Second; wait > max || wait <= 0 {
			wait = max // shift saturates; retries stay bounded and deadline-friendly
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, maperr.Aborted(ctx.Err(), "resilient: mapping %s aborted: %v", d.Name, ctx.Err())
		case <-timer.C:
		}
	}
}

// stamp fills the round and fault context into a batch of rung reports.
func stamp(reports []Attempt, round int, active *fault.Set) []Attempt {
	text := active.String()
	for i := range reports {
		reports[i].Round = round
		reports[i].Faults = text
	}
	return reports
}

// runLadder walks the rungs on one fabric until a rung succeeds. Each rung
// runs under a panic guard so a crashing mapper degrades instead of killing
// the pipeline.
func runLadder(ctx context.Context, d *dfg.DFG, fabric *arch.CGRA, ladder []RungSpec, opts Options) (*Outcome, []Attempt, error) {
	tr := obs.From(ctx).Named("resilient", d.Name)
	var reports []Attempt
	for _, spec := range ladder {
		sp := tr.Start("resilient.rung")
		out, err := runRung(ctx, d, fabric, spec, opts)
		sp.Field("rung", int64(spec.Rung))
		if out != nil {
			sp.Field("ii", int64(out.II))
		}
		sp.FieldBool("ok", err == nil)
		sp.End()
		reports = append(reports, Attempt{Rung: spec.Rung, Err: err})
		if err == nil {
			return out, reports, nil
		}
		if errors.Is(err, maperr.ErrAborted) {
			return nil, reports, err
		}
	}
	return nil, reports, maperr.NoMapping("resilient: every rung failed")
}

// runRung executes one engine under a panic guard and certifies its result.
// Rungs dispatch through the engine registry — Rung.String() is the registry
// key — with the rung's II budget pre-folded into the engine-specific options
// (the spec's zero MaxII must *reset* the engine's ceiling to its default,
// which engine.Options' positive-only override cannot express).
func runRung(ctx context.Context, d *dfg.DFG, fabric *arch.CGRA, spec RungSpec, opts Options) (out *Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			out = nil
			err = &maperr.WorkerPanicError{
				Worker: fmt.Sprintf("resilient rung %s", spec.Rung),
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	var extra any
	switch spec.Rung {
	case RungREGIMap:
		o := opts.Core
		o.MinII, o.MaxII = 0, spec.MaxII
		extra = o
	case RungEMS:
		o := opts.EMS
		o.MaxII = spec.MaxII
		extra = o
	case RungDRESC:
		o := opts.DRESC
		o.MinII, o.MaxII = 0, spec.MaxII
		extra = o
	default:
		return nil, fmt.Errorf("resilient: unknown rung %d", int(spec.Rung))
	}
	eng, ok := engine.Lookup(spec.Rung.String())
	if !ok {
		return nil, fmt.Errorf("resilient: rung %s has no registered engine", spec.Rung)
	}
	res, err := eng.Map(ctx, d, fabric, engine.Options{Extra: extra})
	if err != nil {
		return nil, err
	}
	out = &Outcome{Rung: spec.Rung, MII: res.MII, II: res.II, Fabric: fabric}
	if res.Mapping != nil {
		if err := certify(res.Mapping, opts.CheckIters, spec.Rung.String()); err != nil {
			return nil, err
		}
		out.Mapping = res.Mapping
	}
	if p, ok := res.Artifact.(*dresc.Placement); ok {
		out.Placement = p
	}
	return out, nil
}

// certify runs the cycle-accurate simulator against the reference interpreter
// on the freshly produced mapping; a mismatch is an internal error of the
// producing mapper, not an honest mapping failure.
func certify(m *mapping.Mapping, iters int, mapper string) error {
	if iters < 0 {
		return nil
	}
	if iters == 0 {
		iters = 3
	}
	if err := sim.Check(m, iters); err != nil {
		return &maperr.InvalidMappingError{Mapper: mapper, What: "mapping", Err: err}
	}
	return nil
}
