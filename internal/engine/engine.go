// Package engine defines the one interface every mapper in this repository
// is reached through, plus the process-wide registry binding names to
// implementations.
//
// Before this package, each engine (REGIMap, EMS, DRESC, the portfolio
// racers, the resilient ladder) exposed a bespoke entry point, and every
// caller — the root package's public wrappers, the portfolio, the
// degradation ladder, both CLIs — hard-coded which concrete function to
// call. The registry inverts that: engines register themselves at init time
// (each internal mapper package carries an `engine.Register` call), and
// callers dispatch by name, so racing, degrading, or exposing a new backend
// is a registry lookup instead of another switch arm. SAT-MapIt-style
// backend swapping (see PAPERS.md) falls out for free.
//
// The package is a leaf: it imports only the shared data model (dfg, arch,
// mapping), never a concrete engine, so any engine package may import it.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

// Options is the engine-independent part of a mapping request. Engine
// specific knobs travel in Extra as the engine's own options struct (e.g.
// core.Options for "regimap"); a nil Extra selects the engine's defaults.
type Options struct {
	// MinII, when positive, overrides the II the escalation starts from.
	MinII int
	// MaxII, when positive, caps II escalation.
	MaxII int
	// Extra is the engine-specific options value; each adapter documents the
	// concrete type it accepts. Wrong types are an error, not a silent
	// default — a caller passing ems.Options to "dresc" has a bug.
	Extra any
}

// Result is what any engine hands back. Exactly one of Mapping and Artifact
// is the solution: time-extended mappers fill Mapping (which always passes
// mapping.Validate), while engines whose solution has no mapping.Mapping
// representation (DRESC's routed MRRG placements) fill Artifact.
type Result struct {
	// Mapping is the placed-and-scheduled kernel (nil for artifact engines).
	Mapping *mapping.Mapping
	// Artifact is the engine-specific solution when Mapping is nil, e.g.
	// *dresc.Placement.
	Artifact any
	// MII and II are the paper's metrics: the lower bound and what the
	// engine achieved (II is 0 when mapping failed).
	MII, II int
	// Rounds is the engine's own progress unit — schedule/place attempts for
	// REGIMap, greedy placements for EMS, annealing moves for DRESC — the
	// comparable "how hard did it work" count the portfolio aggregates.
	Rounds int
	// Stats is the engine's full stats struct (e.g. *core.Stats), for
	// callers that know the concrete engine.
	Stats any
	// Elapsed is the wall-clock the run took.
	Elapsed time.Duration
}

// Perf returns the paper's performance metric MII/II (0 on failure).
func (r *Result) Perf() float64 {
	if r == nil || r.II == 0 {
		return 0
	}
	return float64(r.MII) / float64(r.II)
}

// Mapper is the unified engine contract. Map returns the engine's result;
// on failure it returns a non-nil error and, whenever the run got far enough
// to measure anything, a partial Result carrying MII/Rounds/Stats — callers
// that aggregate effort (the portfolio) read those even from failed runs.
// Implementations must honour ctx cancellation at their natural attempt
// boundaries and be safe for concurrent use.
type Mapper interface {
	// Name is the registry key, e.g. "regimap", "ems", "dresc".
	Name() string
	// Map maps the kernel onto the array.
	Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*Result, error)
}

// Describer is optionally implemented by engines that carry a one-line
// human description (surfaced by `regimap -list-mappers`).
type Describer interface {
	Describe() string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Mapper{}
)

// Register adds an engine under its Name. Engines call it from init(), so
// importing a mapper package is what makes it dispatchable; a duplicate name
// is a programming error and panics.
func Register(m Mapper) {
	regMu.Lock()
	defer regMu.Unlock()
	name := m.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	registry[name] = m
}

// Lookup returns the named engine.
func Lookup(name string) (Mapper, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// MustLookup is Lookup for names the program itself registered; unknown
// names panic with the registered set in the message.
func MustLookup(name string) Mapper {
	m, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("engine: no engine %q registered (have %v)", name, Names()))
	}
	return m
}

// Names returns every registered engine name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the engine's one-line description, or "" when it has
// none.
func Describe(m Mapper) string {
	if d, ok := m.(Describer); ok {
		return d.Describe()
	}
	return ""
}

// BadOptionsError reports an Options.Extra value of the wrong concrete type
// for the engine it was passed to.
type BadOptionsError struct {
	Engine string
	Want   string
	Got    any
}

func (e *BadOptionsError) Error() string {
	return fmt.Sprintf("engine %s: Options.Extra is %T, want %s", e.Engine, e.Got, e.Want)
}
