package engine

import (
	"context"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

type fake struct {
	name string
	desc string
}

func (f fake) Name() string { return f.name }
func (f fake) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*Result, error) {
	return &Result{MII: 1, II: 2, Rounds: 3}, nil
}
func (f fake) Describe() string { return f.desc }

func TestRegistry(t *testing.T) {
	Register(fake{name: "fake-a", desc: "a fake"})
	Register(fake{name: "fake-b"})

	if _, ok := Lookup("fake-a"); !ok {
		t.Fatal("fake-a not found after Register")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented an engine")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "fake-a" {
			ia = i
		}
		if n == "fake-b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("Names() = %v: want fake-a before fake-b", names)
	}

	m := MustLookup("fake-a")
	if Describe(m) != "a fake" {
		t.Fatalf("Describe = %q", Describe(m))
	}
	if Describe(MustLookup("fake-b")) != "" {
		t.Fatal("describer-less engine should describe as empty")
	}
	res, err := m.Map(context.Background(), nil, nil, Options{})
	if err != nil || res.II != 2 {
		t.Fatalf("Map = %+v, %v", res, err)
	}
	if p := res.Perf(); p != 0.5 {
		t.Fatalf("Perf = %v, want 0.5", p)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fake{name: "fake-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fake{name: "fake-dup"})
}

func TestMustLookupPanicsWithNames(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("MustLookup on unknown name did not panic")
		}
		if !strings.Contains(v.(string), "no engine") {
			t.Fatalf("panic message %q", v)
		}
	}()
	MustLookup("definitely-not-registered")
}

func TestResultPerfNilAndFailed(t *testing.T) {
	var r *Result
	if r.Perf() != 0 {
		t.Fatal("nil Result Perf != 0")
	}
	if (&Result{MII: 2}).Perf() != 0 {
		t.Fatal("failed Result Perf != 0")
	}
}

func TestBadOptionsError(t *testing.T) {
	err := &BadOptionsError{Engine: "dresc", Want: "dresc.Options", Got: 42}
	if !strings.Contains(err.Error(), "dresc.Options") || !strings.Contains(err.Error(), "int") {
		t.Fatalf("message %q", err)
	}
}
