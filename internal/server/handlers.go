package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regimap/internal/obs"
	"time"

	"regimap/internal/arch"
	"regimap/internal/engine"
	"regimap/internal/kernels"
	"regimap/internal/maperr"
	"regimap/internal/memo"
)

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Compact output, deliberately: a cached mapping is stored as the exact
	// bytes its first computation produced, and re-encoding must not reformat
	// them — byte-identical answers are part of the cache contract.
	json.NewEncoder(w).Encode(v)
}

// classify maps a mapping-path error onto (HTTP status, taxonomy class).
// Order matters: a shed is checked before the abort class because the
// admission path wraps ctx errors, and not-found before generic client
// errors.
func classify(err error) (int, string) {
	var bad *engine.BadOptionsError
	switch {
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, maperr.ErrNoMapping) && !errors.Is(err, maperr.ErrAborted):
		return http.StatusUnprocessableEntity, "no-mapping"
	case errors.Is(err, maperr.ErrAborted),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, maperr.ErrWorkerPanic):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, maperr.ErrTransient):
		return http.StatusServiceUnavailable, "transient"
	case errors.As(err, &bad):
		return http.StatusBadRequest, "bad-request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeClientError sends a request-validation failure: 404 for unknown
// names, 413 for an over-limit body, 400 "bad-arch" for a malformed or
// unfaithful architecture description, 400 "bad-request" for everything
// else. It is for errors raised before the mapping path; failures of the
// mapping itself go through writeError/classify.
func writeClientError(w http.ResponseWriter, err error) (code int) {
	var nf *notFoundError
	if errors.As(err, &nf) {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error(), Class: "not-found"})
		return http.StatusNotFound
	}
	var be *badEngineError
	if errors.As(err, &be) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "bad-engine"})
		return http.StatusBadRequest
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			Class: "too-large",
		})
		return http.StatusRequestEntityTooLarge
	}
	var desc *arch.DescError
	var unfaithful *arch.UnfaithfulError
	if errors.As(err, &desc) || errors.As(err, &unfaithful) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "bad-arch"})
		return http.StatusBadRequest
	}
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "bad-request"})
	return http.StatusBadRequest
}

// writeError sends the taxonomy-classified error body, adding Retry-After on
// sheds so well-behaved clients back off.
func writeError(w http.ResponseWriter, err error) (code int) {
	code, class := classify(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error(), Class: class})
	return code
}

// handleMap is POST /v1/map: resolve, fingerprint, consult the cache (which
// admits and runs the engine only on a miss), and answer.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only", Class: "bad-request"})
		return
	}
	start := time.Now()
	code := http.StatusOK
	sp := s.trace.Start("server.request")
	defer func() {
		s.met.observe(code, time.Since(start))
		sp.Field("code", int64(code))
		sp.End()
	}()

	if s.Draining() {
		code = writeError(w, errDraining)
		return
	}

	var req MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code = writeClientError(w, err)
		return
	}
	d, c, eng, eo, faults, err := s.resolve(&req)
	if err != nil {
		code = writeClientError(w, err)
		return
	}
	deadline, err := s.deadlineFor(&req)
	if err != nil {
		code = writeClientError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	ctx = s.traceInto(ctx, eng.Name(), d.Name)

	key := requestKey(d, c, faults, eng.Name(), eo.MinII, eo.MaxII)
	val, outcome, err := s.cache.Do(ctx, key, func() (any, error) {
		return s.execute(ctx, eng, d, c, eo)
	}, cacheableErr)

	// Count the query against the cache, except for sheds and queue aborts:
	// those never reached an engine, so they are neither a hit nor a
	// computation. (memo.hit covers collapsed duplicates too — they were
	// answered without running a mapping, which is what the ratio tracks.)
	switch {
	case errors.Is(err, errShed), errors.Is(err, errDraining):
	case outcome == memo.Hit:
		s.counters.Point1("memo.hit", "n", 1)
	case outcome == memo.Collapsed && err == nil:
		s.counters.Point1("memo.hit", "n", 1)
		s.counters.Point1("memo.collapse", "n", 1)
	case outcome == memo.Miss:
		s.counters.Point1("memo.miss", "n", 1)
	}

	if err != nil {
		code = writeError(w, err)
		sp.FieldBool("ok", false)
		return
	}
	cr := val.(*cachedResult)
	sp.FieldBool("ok", true)
	sp.FieldBool("cached", outcome != memo.Miss)
	writeJSON(w, http.StatusOK, MapResponse{
		Mapper:    eng.Name(),
		Kernel:    d.Name,
		II:        cr.II,
		MII:       cr.MII,
		Perf:      cr.Perf,
		Rounds:    cr.Rounds,
		Cached:    outcome != memo.Miss,
		Collapsed: outcome == memo.Collapsed,
		ElapsedUS: cr.ElapsedUS,
		Mapping:   cr.MappingJSON,
		Artifact:  cr.Artifact,
	})
}

// traceInto attaches the engine-labelled tracer to ctx, so the mappers'
// per-pass spans reach the trace sink (no-op when the server is untraced).
func (s *Server) traceInto(ctx context.Context, eng, kernel string) context.Context {
	return obs.With(ctx, s.trace.Named(eng, kernel))
}

// EngineInfo is one /v1/engines entry.
type EngineInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// MapperInfo is the legacy name for EngineInfo, kept for the /v1/mappers
// alias era; the wire shape is identical.
type MapperInfo = EngineInfo

// handleEngines is GET /v1/engines (and its legacy alias /v1/mappers): the
// engine registry, one entry per registered engine with its description,
// in registry order. The names listed here are exactly the values the map
// and job endpoints accept in the mapper field.
func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	out := make([]EngineInfo, 0, 8)
	for _, name := range engine.Names() {
		m, _ := engine.Lookup(name)
		out = append(out, EngineInfo{Name: name, Description: engine.Describe(m)})
	}
	writeJSON(w, http.StatusOK, out)
}

// KernelInfo is one /v1/kernels entry.
type KernelInfo struct {
	Name        string `json:"name"`
	Suite       string `json:"suite"`
	Ops         int    `json:"ops"`
	Edges       int    `json:"edges"`
	Description string `json:"description,omitempty"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	all := kernels.All()
	out := make([]KernelInfo, 0, len(all))
	for _, k := range all {
		d := k.Build()
		out = append(out, KernelInfo{
			Name:        k.Name,
			Suite:       k.Suite,
			Ops:         d.N(),
			Edges:       len(d.Edges),
			Description: k.Description,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is liveness: 200 for as long as the process can serve HTTP,
// including while draining — a draining daemon is alive, just not accepting
// new work, and restarting it would lose the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: it flips to 503 the moment BeginDrain is called
// so load balancers stop routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}
