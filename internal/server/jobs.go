// jobs.go is the HTTP face of the async job subsystem: POST /v1/jobs submits
// a mapping request and answers immediately with a job ID; GET /v1/jobs/{id}
// polls it. The executor wired into the jobs.Manager re-resolves the stored
// request on every attempt and routes the computation through the same
// content-addressed cache as the synchronous path — which is what makes
// crash-time re-execution idempotent: the recomputed answer is byte-identical
// to what the lost run would have produced (DESIGN.md section 8i).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"regimap/internal/jobs"
	"regimap/internal/memo"
)

// JobSubmitRequest is the POST /v1/jobs body: a MapRequest plus an optional
// client idempotency key. Submitting the same key twice returns the original
// job instead of enqueuing a second one.
type JobSubmitRequest struct {
	MapRequest
	// IdempotencyKey deduplicates retried submits. Clients that retry a
	// submit through a connection failure or daemon restart should always
	// send one; the ack may have been durably recorded even when the
	// response was lost.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// JobView is the wire form of a job, for both the submit ack and polls.
type JobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Mapper is the engine the job runs on; Requested is what the client
	// asked for. They differ exactly when Degraded is true.
	Mapper    string `json:"mapper"`
	Requested string `json:"requested,omitempty"`
	// Degraded is true when load or a tripped engine circuit rerouted the
	// job to a faster/healthier engine than requested.
	Degraded bool `json:"degraded,omitempty"`
	Attempts int  `json:"attempts,omitempty"`
	// Result is the MapResponse of a done job, stored as the exact bytes the
	// execution produced.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Class describe a failed job (Class uses the ErrorResponse
	// taxonomy).
	Error      string `json:"error,omitempty"`
	Class      string `json:"class,omitempty"`
	CreatedMS  int64  `json:"created_ms,omitempty"`
	FinishedMS int64  `json:"finished_ms,omitempty"`
}

// jobView projects the manager's record onto the wire form.
func jobView(j jobs.Job) JobView {
	v := JobView{
		ID:         j.ID,
		State:      string(j.State),
		Mapper:     j.Engine,
		Degraded:   j.Degraded,
		Attempts:   j.Attempts,
		Result:     j.Result,
		Error:      j.Error,
		Class:      j.ErrorClass,
		CreatedMS:  j.CreatedMS,
		FinishedMS: j.FinishedMS,
	}
	if j.Requested != j.Engine {
		v.Requested = j.Requested
	}
	return v
}

// handleJobSubmit is POST /v1/jobs: validate the request exactly as /v1/map
// would (bad submits fail now, not at execution time), then acknowledge it
// durably. 202 for a new job, 200 for an idempotency-key duplicate.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	var req JobSubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeClientError(w, err)
		return
	}
	_, _, eng, _, _, err := s.resolve(&req.MapRequest)
	if err != nil {
		writeClientError(w, err)
		return
	}
	deadline, err := s.deadlineFor(&req.MapRequest)
	if err != nil {
		writeClientError(w, err)
		return
	}
	// Store the canonical form, not the client's raw bytes: re-marshalling
	// drops unknown-field noise and pins the engine name the validation
	// resolved (so a defaulted mapper replays identically after recovery).
	req.Mapper = eng.Name()
	req.DeadlineMS = int(deadline / time.Millisecond)
	canonical, err := json.Marshal(req.MapRequest)
	if err != nil {
		writeClientError(w, err)
		return
	}

	j, dup, err := s.jobs.Submit(req.IdempotencyKey, canonical, eng.Name(), deadline)
	switch {
	case errors.Is(err, jobs.ErrKeyConflict):
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("idempotency key %q was already used for a different request (job %s)", req.IdempotencyKey, j.ID),
			Class: "conflict",
		})
		return
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error(), Class: "overloaded"})
		return
	case errors.Is(err, jobs.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Class: "draining"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Class: "internal"})
		return
	}
	code := http.StatusAccepted
	if dup {
		code = http.StatusOK
	}
	writeJSON(w, code, jobView(j))
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeClientError(w, &notFoundError{fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

// runJob is the jobs.Executor: one attempt of one job. engineName is the
// manager's routing decision (the requested engine, or a degrade/breaker
// reroute), overriding whatever the stored request says. The computation goes
// through the shared result cache under the rerouted engine's own fingerprint
// — a degraded run never pollutes the requested engine's cache key, and a
// crash-recovered re-execution of an already-computed request is a cache hit.
func (s *Server) runJob(ctx context.Context, raw []byte, engineName string) ([]byte, error) {
	var req MapRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("job request corrupt: %w", err)
	}
	req.Mapper = engineName
	d, c, eng, eo, faults, err := s.resolve(&req)
	if err != nil {
		return nil, err
	}
	ctx = s.traceInto(ctx, eng.Name(), d.Name)

	key := requestKey(d, c, faults, eng.Name(), eo.MinII, eo.MaxII)
	val, outcome, err := s.cache.Do(ctx, key, func() (any, error) {
		return s.compute(ctx, eng, d, c, eo)
	}, cacheableErr)
	switch {
	case outcome == memo.Hit, outcome == memo.Collapsed && err == nil:
		s.counters.Point1("memo.hit", "n", 1)
	case outcome == memo.Miss:
		s.counters.Point1("memo.miss", "n", 1)
	}
	if err != nil {
		return nil, err
	}
	cr := val.(*cachedResult)
	return json.Marshal(MapResponse{
		Mapper:    eng.Name(),
		Kernel:    d.Name,
		II:        cr.II,
		MII:       cr.MII,
		Perf:      cr.Perf,
		Rounds:    cr.Rounds,
		Cached:    outcome != memo.Miss,
		ElapsedUS: cr.ElapsedUS,
		Mapping:   cr.MappingJSON,
		Artifact:  cr.Artifact,
	})
}
