package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regimap/internal/obs"
)

// latencyBuckets are the /v1/map latency histogram upper bounds, in seconds.
// They span sub-millisecond cache hits through multi-second exhaustive
// searches.
var latencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics aggregates the server's Prometheus-exported state. Request totals
// and the latency histogram are plain atomics on the hot path; the counter
// family (shed, panic, cache hit/miss/collapse) arrives as obs Points in an
// internal MemSink, which each /metrics scrape drains via SumByName into the
// cumulative totals — so the sink stays bounded no matter how long the
// daemon runs, and the exporter totals counters through the same aggregation
// the experiments harness uses instead of re-deriving them by hand.
type metrics struct {
	sink *obs.MemSink // counter Points land here (via the server's Tee)

	mu     sync.Mutex       // guards totals and the drain
	totals map[string]int64 // cumulative counter sums by event name

	codesMu sync.Mutex
	codes   map[int]*atomic.Int64 // requests by HTTP status

	buckets  []atomic.Int64 // cumulative-style histogram counts (one per bound, +Inf implicit)
	sumNanos atomic.Int64
	count    atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		sink:    &obs.MemSink{},
		totals:  map[string]int64{},
		codes:   map[int]*atomic.Int64{},
		buckets: make([]atomic.Int64, len(latencyBuckets)),
	}
}

// observe records one finished /v1/map request.
func (m *metrics) observe(code int, d time.Duration) {
	m.codesMu.Lock()
	ctr, ok := m.codes[code]
	if !ok {
		ctr = &atomic.Int64{}
		m.codes[code] = ctr
	}
	m.codesMu.Unlock()
	ctr.Add(1)

	secs := d.Seconds()
	for i, ub := range latencyBuckets {
		if secs <= ub {
			m.buckets[i].Add(1)
			break
		}
	}
	m.sumNanos.Add(int64(d))
	m.count.Add(1)
}

// counterTotals drains the point sink into the cumulative totals and returns
// a snapshot.
func (m *metrics) counterTotals() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, n := range m.sink.SumByName("n") {
		m.totals[name] += n
	}
	m.sink.Reset()
	out := make(map[string]int64, len(m.totals))
	for k, v := range m.totals {
		out[k] = v
	}
	return out
}

// writeMetrics renders the Prometheus text exposition format (version
// 0.0.4), hand-rolled: the repository takes no dependencies.
func (s *Server) writeMetrics(w io.Writer) {
	m := s.met
	totals := m.counterTotals()
	cs := s.cache.Stats()

	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP regimapd_build_info Build metadata; the value is always 1.\n")
	p("# TYPE regimapd_build_info gauge\n")
	p("regimapd_build_info{version=%q} 1\n", s.cfg.Version)

	p("# HELP regimapd_requests_total Finished /v1/map requests by HTTP status.\n")
	p("# TYPE regimapd_requests_total counter\n")
	m.codesMu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		p("regimapd_requests_total{code=\"%d\"} %d\n", c, m.codes[c].Load())
	}
	m.codesMu.Unlock()

	p("# HELP regimapd_request_seconds /v1/map latency.\n")
	p("# TYPE regimapd_request_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.buckets[i].Load()
		p("regimapd_request_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	p("regimapd_request_seconds_bucket{le=\"+Inf\"} %d\n", m.count.Load())
	p("regimapd_request_seconds_sum %g\n", time.Duration(m.sumNanos.Load()).Seconds())
	p("regimapd_request_seconds_count %d\n", m.count.Load())

	gauge := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("regimapd_queue_depth", "Mapping computations waiting for a worker slot.", int64(s.adm.depth()))
	gauge("regimapd_workers_busy", "Worker slots currently held.", int64(s.adm.busy()))
	counter("regimapd_shed_total", "Requests refused with 429 because the admission queue was full.", totals["server.shed"])
	counter("regimapd_panics_total", "Mapping panics recovered into error responses.", totals["server.panic"])
	counter("regimapd_cache_hits_total", "Mapping queries answered from the result cache (including collapsed duplicates).", totals["memo.hit"])
	counter("regimapd_cache_misses_total", "Mapping queries that ran an engine.", totals["memo.miss"])
	counter("regimapd_cache_collapsed_total", "Duplicate queries collapsed onto an in-flight computation.", totals["memo.collapse"])
	counter("regimapd_cache_evictions_total", "Cache entries evicted by the LRU bound.", cs.Evictions)
	gauge("regimapd_cache_entries", "Completed results currently cached.", int64(cs.Entries))
	drain := int64(0)
	if s.Draining() {
		drain = 1
	}
	gauge("regimapd_draining", "1 once graceful shutdown has begun.", drain)

	js := s.jobs.Stats()
	p("# HELP regimapd_jobs_state Async jobs currently in each non-terminal state.\n")
	p("# TYPE regimapd_jobs_state gauge\n")
	p("regimapd_jobs_state{state=\"queued\"} %d\n", js.Queued)
	p("regimapd_jobs_state{state=\"running\"} %d\n", js.Running)
	counter("regimapd_jobs_submitted_total", "Acknowledged job submits (excluding idempotency-key duplicates).", js.Submitted)
	counter("regimapd_jobs_duplicates_total", "Submits answered with an existing job via idempotency key.", js.Duplicates)
	p("# HELP regimapd_jobs_completed_total Jobs reaching a terminal state, by outcome.\n")
	p("# TYPE regimapd_jobs_completed_total counter\n")
	p("regimapd_jobs_completed_total{status=\"done\"} %d\n", js.Done)
	p("regimapd_jobs_completed_total{status=\"failed\"} %d\n", js.Failed)
	counter("regimapd_jobs_degraded_total", "Jobs downgraded to a faster engine by the queue watermark.", js.Degraded)
	counter("regimapd_jobs_retries_total", "Job execution retries after transient failures.", js.Retries)
	counter("regimapd_jobs_recovered_total", "Non-terminal jobs re-queued from the WAL at startup.", js.Recovered)
	counter("regimapd_jobs_evicted_total", "Terminal jobs evicted by the retention bound.", js.Evicted)

	p("# HELP regimapd_breaker_state Engine circuit state: 0 closed, 1 open, 2 half-open.\n")
	p("# TYPE regimapd_breaker_state gauge\n")
	engines := make([]string, 0, len(js.Breakers))
	for name := range js.Breakers {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	for _, name := range engines {
		p("regimapd_breaker_state{engine=%q} %d\n", name, int(js.Breakers[name]))
	}
	p("# HELP regimapd_breaker_trips_total Times each engine's circuit opened.\n")
	p("# TYPE regimapd_breaker_trips_total counter\n")
	for _, name := range engines {
		p("regimapd_breaker_trips_total{engine=%q} %d\n", name, js.BreakerTrips[name])
	}

	counter("regimapd_wal_records_total", "Job records appended to the write-ahead log.", js.WALRecords)
	counter("regimapd_wal_compactions_total", "WAL snapshot compactions.", js.Compactions)
	counter("regimapd_wal_compact_errors_total", "Failed WAL snapshot compactions (the log grows until one succeeds).", js.CompactErrors)
}
