package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
	"regimap/internal/maperr"
)

// ctxfoldEngine reproduces an engine that folds a context error into its
// no-mapping report without the ErrAborted sentinel — the shape that used to
// poison the result cache for followers with deadline budget left.
type ctxfoldEngine struct {
	calls atomic.Int64
}

func (e *ctxfoldEngine) Name() string { return "ctxfoldtest" }

func (e *ctxfoldEngine) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts engine.Options) (*engine.Result, error) {
	if e.calls.Add(1) == 1 {
		<-ctx.Done()
		return nil, maperr.Wrap([]error{maperr.ErrNoMapping, ctx.Err()}, "search impossible under expired budget")
	}
	return &engine.Result{II: 1, MII: 1, Rounds: 1}, nil
}

var ctxfolder = &ctxfoldEngine{}

func init() {
	engine.Register(ctxfolder)
}

// postJSON sends one POST and returns status, body, and headers.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, blob, resp.Header
}

// submitJob submits one job and returns the decoded ack.
func submitJob(t *testing.T, ts *httptest.Server, body string, wantCode int) JobView {
	t.Helper()
	code, blob, _ := postJSON(t, ts, "/v1/jobs", body)
	if code != wantCode {
		t.Fatalf("POST /v1/jobs: status %d, want %d: %s", code, wantCode, blob)
	}
	var v JobView
	if err := json.Unmarshal(blob, &v); err != nil {
		t.Fatalf("ack body %q: %v", blob, err)
	}
	return v
}

// pollJob polls until the job is terminal.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, blob := get(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: %d: %s", id, code, blob)
		}
		var v JobView
		if err := json.Unmarshal(blob, &v); err != nil {
			t.Fatalf("poll body %q: %v", blob, err)
		}
		if v.State == "done" || v.State == "failed" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobSubmitPollMatchesSync: the async answer is the same mapping the
// synchronous path serves — same cache key, byte-identical wire mapping.
func TestJobSubmitPollMatchesSync(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ack := submitJob(t, ts, `{"kernel":"fir8","idempotency_key":"sync-compare"}`, http.StatusAccepted)
	if ack.State != "queued" || ack.Mapper != "regimap" {
		t.Fatalf("ack = %+v", ack)
	}
	job := pollJob(t, ts, ack.ID)
	if job.State != "done" || job.Degraded {
		t.Fatalf("job = %+v", job)
	}
	var jr MapResponse
	if err := json.Unmarshal(job.Result, &jr); err != nil {
		t.Fatalf("job result %q: %v", job.Result, err)
	}

	code, blob, _ := postMap(t, ts, `{"kernel":"fir8"}`)
	if code != http.StatusOK {
		t.Fatalf("sync map: %d: %s", code, blob)
	}
	var sr MapResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Fatal("sync request after the job was not a cache hit — paths use different keys")
	}
	if jr.II != sr.II || !bytes.Equal(jr.Mapping, sr.Mapping) {
		t.Fatalf("async and sync answers differ:\n async: %s\n  sync: %s", job.Result, blob)
	}
}

// TestJobIdempotencyKey: the same key acks the same job with 200 and runs the
// mapping once.
func TestJobIdempotencyKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	a := submitJob(t, ts, `{"kernel":"dct4_row","idempotency_key":"dup-1"}`, http.StatusAccepted)
	pollJob(t, ts, a.ID)
	b := submitJob(t, ts, `{"kernel":"dct4_row","idempotency_key":"dup-1"}`, http.StatusOK)
	if b.ID != a.ID {
		t.Fatalf("duplicate submit acked %s, want %s", b.ID, a.ID)
	}
	if b.State != "done" || len(b.Result) == 0 {
		t.Fatalf("duplicate ack should carry the finished job: %+v", b)
	}
	_, metrics := get(t, ts, "/metrics")
	if d := metricValue(t, metrics, "regimapd_jobs_duplicates_total"); d != 1 {
		t.Fatalf("duplicates = %d, want 1", d)
	}
	if s := metricValue(t, metrics, "regimapd_jobs_submitted_total"); s != 1 {
		t.Fatalf("submitted = %d, want 1", s)
	}
}

// TestJobIdempotencyKeyConflict: reusing a key with a different request body
// answers 409 instead of silently serving the original job's result; the
// honest retry with the original body still acks the original job.
func TestJobIdempotencyKeyConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	a := submitJob(t, ts, `{"kernel":"fir8","idempotency_key":"conflict-1"}`, http.StatusAccepted)
	pollJob(t, ts, a.ID)
	code, blob, _ := postJSON(t, ts, "/v1/jobs", `{"kernel":"dct4_row","idempotency_key":"conflict-1"}`)
	if code != http.StatusConflict || errClass(t, blob) != "conflict" {
		t.Fatalf("conflicting key reuse: %d %q: %s", code, errClass(t, blob), blob)
	}
	b := submitJob(t, ts, `{"kernel":"fir8","idempotency_key":"conflict-1"}`, http.StatusOK)
	if b.ID != a.ID || b.State != "done" {
		t.Fatalf("honest retry = %+v, want job %s done", b, a.ID)
	}
}

// TestJobQueueFull: submits beyond the job queue shed with 429 + Retry-After.
func TestJobQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobWorkers: 1, JobQueue: 1, DegradeWatermark: -1})
	gate, started := blocker.arm()
	defer close(gate)

	submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest"}`, http.StatusAccepted)
	<-started // occupies the one job worker
	submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest","max_ii":7}`, http.StatusAccepted)

	code, blob, hdr := postJSON(t, ts, "/v1/jobs", `{"kernel":"fir8","mapper":"blocktest","max_ii":8}`)
	if code != http.StatusTooManyRequests || errClass(t, blob) != "overloaded" {
		t.Fatalf("over-capacity submit: %d %q: %s", code, errClass(t, blob), blob)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed job submit has no Retry-After")
	}
}

// TestJobWatermarkDegrade: past the watermark new jobs run on ems, marked
// degraded, and finish even while the requested engine is wedged.
func TestJobWatermarkDegrade(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobWorkers: 1, JobQueue: 8, DegradeWatermark: 1})
	gate, started := blocker.arm()
	defer close(gate)

	submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest"}`, http.StatusAccepted)
	<-started // job worker busy inside blocktest
	submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest","max_ii":9}`, http.StatusAccepted)

	ack := submitJob(t, ts, `{"kernel":"dct4_row","mapper":"regimap"}`, http.StatusAccepted)
	if !ack.Degraded || ack.Mapper != "ems" || ack.Requested != "regimap" {
		t.Fatalf("watermark ack = %+v, want degraded onto ems", ack)
	}
	_, metrics := get(t, ts, "/metrics")
	if d := metricValue(t, metrics, "regimapd_jobs_degraded_total"); d != 1 {
		t.Fatalf("degraded = %d, want 1", d)
	}
}

// TestJobBreakerReroute: an engine that trips its breaker has its jobs
// rerouted down the resilient ladder and still answered.
func TestJobBreakerReroute(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, JobWorkers: 1, JobAttempts: 2,
		BreakerFailures: 1, BreakerCooldown: time.Hour,
	})
	ack := submitJob(t, ts, `{"kernel":"fir8","mapper":"panictest"}`, http.StatusAccepted)
	job := pollJob(t, ts, ack.ID)
	// Attempt 1 panics on panictest and trips its breaker; attempt 2 routes
	// down the ladder (panictest is not on it, so from the top: regimap).
	if job.State != "done" || job.Mapper != "regimap" || !job.Degraded {
		t.Fatalf("rerouted job = %+v", job)
	}
	if job.Requested != "panictest" || job.Attempts != 2 {
		t.Fatalf("rerouted job = %+v", job)
	}
	_, metrics := get(t, ts, "/metrics")
	if !bytes.Contains(metrics, []byte(`regimapd_breaker_state{engine="panictest"} 1`)) {
		t.Fatalf("panictest breaker not open in:\n%s", metrics)
	}
}

// TestJobCrashRecovery: kill the server (crash-equivalent) with acknowledged
// jobs unfinished; a new server on the same WAL directory finishes them, and
// no acknowledged job is lost.
func TestJobCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 2, JobWorkers: 1, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	_, started := blocker.arm() // gate stays open: the engine wedges

	ids := make([]string, 0, 3)
	ids = append(ids, submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest","idempotency_key":"crash-0"}`, http.StatusAccepted).ID)
	<-started // first job is mid-execution inside the engine
	ids = append(ids, submitJob(t, ts, `{"kernel":"fir8","idempotency_key":"crash-1"}`, http.StatusAccepted).ID)
	ids = append(ids, submitJob(t, ts, `{"kernel":"dct4_row","idempotency_key":"crash-2"}`, http.StatusAccepted).ID)

	// Crash: workers are cancelled mid-job and nothing further reaches the
	// WAL — the on-disk state is what kill -9 would leave.
	s.Close()
	ts.Close()

	// Next life: the engine cooperates this time.
	gate2, _ := blocker.arm()
	close(gate2)
	s2, ts2 := newTestServer(t, Config{Workers: 2, JobWorkers: 1, WALDir: dir})
	_ = s2
	for _, id := range ids {
		job := pollJob(t, ts2, id)
		if job.State != "done" || len(job.Result) == 0 {
			t.Fatalf("recovered job %s = %+v", id, job)
		}
	}
	_, metrics := get(t, ts2, "/metrics")
	if r := metricValue(t, metrics, "regimapd_jobs_recovered_total"); r != 3 {
		t.Fatalf("recovered = %d, want 3", r)
	}
	// Idempotency keys survive the crash: the retried submit acks the
	// original job, now finished.
	dup := submitJob(t, ts2, `{"kernel":"fir8","idempotency_key":"crash-1"}`, http.StatusOK)
	if dup.ID != ids[1] || dup.State != "done" {
		t.Fatalf("post-crash duplicate = %+v, want job %s done", dup, ids[1])
	}
}

// TestJobPanicFailureIsTyped: a job whose every attempt panics fails with the
// "panic" class, and the job workers survive to run the next job.
func TestJobPanicFailureIsTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, JobWorkers: 1, JobAttempts: 2,
		// A huge failure threshold keeps the breaker out of this test: every
		// attempt stays on panictest.
		BreakerFailures: 100,
	})
	ack := submitJob(t, ts, `{"kernel":"fir8","mapper":"panictest"}`, http.StatusAccepted)
	job := pollJob(t, ts, ack.ID)
	if job.State != "failed" || job.Class != "panic" || job.Attempts != 2 {
		t.Fatalf("panicking job = %+v", job)
	}
	next := submitJob(t, ts, `{"kernel":"fir8"}`, http.StatusAccepted)
	if got := pollJob(t, ts, next.ID); got.State != "done" {
		t.Fatalf("job worker did not survive the panic: %+v", got)
	}
}

// TestJobDeadline: a wedged engine fails the job with the deadline class
// instead of hanging the worker forever.
func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobWorkers: 1, BreakerFailures: 100})
	gate, _ := blocker.arm()
	defer close(gate)
	ack := submitJob(t, ts, `{"kernel":"fir8","mapper":"blocktest","deadline_ms":30}`, http.StatusAccepted)
	job := pollJob(t, ts, ack.ID)
	if job.State != "failed" || job.Class != "deadline" {
		t.Fatalf("deadline job = %+v", job)
	}
}

// TestJobValidationAndUnknown: bad submits fail at submit time with the same
// classes as /v1/map, and polling an unknown ID answers 404.
func TestJobValidationAndUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, blob, _ := postJSON(t, ts, "/v1/jobs", `{"kernel":"nope"}`)
	if code != http.StatusNotFound || errClass(t, blob) != "not-found" {
		t.Fatalf("unknown kernel submit: %d %q", code, errClass(t, blob))
	}
	code, blob, _ = postJSON(t, ts, "/v1/jobs", `{}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty submit: %d: %s", code, blob)
	}
	code, blob = get(t, ts, "/v1/jobs/j-99999999")
	if code != http.StatusNotFound || errClass(t, blob) != "not-found" {
		t.Fatalf("unknown job poll: %d %q", code, errClass(t, blob))
	}
}

// TestJobSubmitWhileDraining: drain refuses new submits with 503 but already
// acknowledged jobs finish and stay pollable.
func TestJobSubmitWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, JobWorkers: 1})
	ack := submitJob(t, ts, `{"kernel":"fir8"}`, http.StatusAccepted)

	s.BeginDrain()
	code, blob, _ := postJSON(t, ts, "/v1/jobs", `{"kernel":"fir8","max_ii":9}`)
	if code != http.StatusServiceUnavailable || errClass(t, blob) != "draining" {
		t.Fatalf("submit while draining: %d %q", code, errClass(t, blob))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.FinishJobs(ctx); err != nil {
		t.Fatalf("FinishJobs: %v", err)
	}
	job := pollJob(t, ts, ack.ID)
	if job.State != "done" {
		t.Fatalf("acknowledged job abandoned by drain: %+v", job)
	}
}

// TestBodyTooLarge: both POST endpoints answer a typed 413 for over-limit
// bodies.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxBodyBytes: 64})
	huge := fmt.Sprintf(`{"kernel":"fir8","name":%q}`, strings.Repeat("x", 256))
	for _, path := range []string{"/v1/map", "/v1/jobs"} {
		code, blob, _ := postJSON(t, ts, path, huge)
		if code != http.StatusRequestEntityTooLarge || errClass(t, blob) != "too-large" {
			t.Fatalf("%s oversized body: %d %q: %s", path, code, errClass(t, blob), blob)
		}
	}
	// A normal-sized request still works at the tight limit.
	code, blob, _ := postJSON(t, ts, "/v1/map", `{"kernel":"fir8"}`)
	if code != http.StatusOK {
		t.Fatalf("small body refused: %d: %s", code, blob)
	}
}

// TestCancellationNotCached is the satellite-2 regression: an engine that
// folds the context error into a no-mapping answer (without the ErrAborted
// sentinel) must not poison the cache — the next query with budget left runs
// the engine and succeeds.
func TestCancellationNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ctxfolder.calls.Store(0)

	req := `{"kernel":"fir8","mapper":"ctxfoldtest","deadline_ms":30}`
	code, blob, _ := postMap(t, ts, req)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("folded failure: %d: %s", code, blob)
	}
	code, blob, _ = postMap(t, ts, `{"kernel":"fir8","mapper":"ctxfoldtest","deadline_ms":5000}`)
	if code != http.StatusOK {
		t.Fatalf("retry served the poisoned entry: %d: %s", code, blob)
	}
	var mr MapResponse
	if err := json.Unmarshal(blob, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cached {
		t.Fatal("the context-folded failure was cached")
	}
	if n := ctxfolder.calls.Load(); n != 2 {
		t.Fatalf("engine ran %d times, want 2", n)
	}
}
