package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
	"regimap/internal/kernels"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
)

// blockEngine is a controllable test mapper: every Map call signals started,
// then parks until the current gate closes (or the request deadline fires).
// It lets the tests saturate the admission gate deterministically.
type blockEngine struct {
	mu      sync.Mutex
	gate    chan struct{}
	started chan struct{}
	starts  atomic.Int64
}

func (b *blockEngine) Name() string { return "blocktest" }

// arm installs fresh gate/started channels for one test and returns them.
func (b *blockEngine) arm() (gate chan struct{}, started chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gate = make(chan struct{})
	b.started = make(chan struct{}, 64)
	b.starts.Store(0)
	return b.gate, b.started
}

func (b *blockEngine) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts engine.Options) (*engine.Result, error) {
	b.mu.Lock()
	gate, started := b.gate, b.started
	b.mu.Unlock()
	b.starts.Add(1)
	if started != nil {
		started <- struct{}{}
	}
	select {
	case <-gate:
		return &engine.Result{II: 1, MII: 1, Rounds: 1}, nil
	case <-ctx.Done():
		return nil, maperr.Aborted(ctx.Err(), "blocktest aborted")
	}
}

// panicEngine always panics, to exercise the handler's panic isolation.
type panicEngine struct{}

func (panicEngine) Name() string { return "panictest" }
func (panicEngine) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts engine.Options) (*engine.Result, error) {
	panic("panictest detonated")
}

var blocker = &blockEngine{}

func init() {
	engine.Register(blocker)
	engine.Register(panicEngine{})
}

// newTestServer starts an httptest server around a fresh Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// postMap sends one /v1/map request and returns the status, body, and
// response headers.
func postMap(t *testing.T, ts *httptest.Server, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, blob, resp.Header
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, blob
}

// metricValue extracts one un-labelled metric value from Prometheus text.
func metricValue(t *testing.T, metrics []byte, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, metrics)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func errClass(t *testing.T, body []byte) string {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	return er.Class
}

// TestConcurrentIdenticalRequests is the headline cache acceptance: N
// parallel identical POSTs produce byte-identical mappings, equal to what
// calling the engine directly produces, with exactly one cache miss and N-1
// hits visible in /metrics.
func TestConcurrentIdenticalRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	const n = 12
	req := `{"kernel":"fir8","mapper":"regimap"}`

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i], _ = postMap(t, ts, req)
		}(i)
	}
	wg.Wait()

	// The same query answered directly, bypassing the server.
	k, ok := kernels.ByName("fir8")
	if !ok {
		t.Fatal("fir8 missing from the kernel suite")
	}
	eng, _ := engine.Lookup("regimap")
	out, err := eng.Map(context.Background(), k.Build(), arch.New(4, 4, 4, arch.Mesh), engine.Options{})
	if err != nil {
		t.Fatalf("direct map: %v", err)
	}
	want, err := json.Marshal(out.Mapping)
	if err != nil {
		t.Fatalf("marshal direct mapping: %v", err)
	}

	cachedCount := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		var mr MapResponse
		if err := json.Unmarshal(bodies[i], &mr); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(mr.Mapping, want) {
			t.Fatalf("request %d: mapping differs from the direct engine result\n got: %s\nwant: %s", i, mr.Mapping, want)
		}
		if mr.II != out.II || mr.MII != out.MII {
			t.Fatalf("request %d: II/MII = %d/%d, direct = %d/%d", i, mr.II, mr.MII, out.II, out.MII)
		}
		if mr.Cached {
			cachedCount++
		}
		// The wire mapping must decode and re-validate.
		var decoded mapping.Mapping
		if err := json.Unmarshal(mr.Mapping, &decoded); err != nil {
			t.Fatalf("request %d: wire mapping rejected: %v", i, err)
		}
	}
	if cachedCount != n-1 {
		t.Fatalf("%d responses marked cached, want %d", cachedCount, n-1)
	}

	_, metrics := get(t, ts, "/metrics")
	if hits := metricValue(t, metrics, "regimapd_cache_hits_total"); hits != n-1 {
		t.Fatalf("cache hits = %d, want %d\n%s", hits, n-1, metrics)
	}
	if misses := metricValue(t, metrics, "regimapd_cache_misses_total"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
	if entries := metricValue(t, metrics, "regimapd_cache_entries"); entries != 1 {
		t.Fatalf("cache entries = %d, want 1", entries)
	}
}

// TestLoadShedding saturates one worker and one queue slot with blocked
// requests, then proves the next distinct request is shed with 429 before
// any mapping starts, and that the blocked requests still finish.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	gate, started := blocker.arm()

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	post := func(maxII int) {
		code, body, _ := postMap(t, ts, fmt.Sprintf(`{"kernel":"fir8","mapper":"blocktest","max_ii":%d}`, maxII))
		results <- result{code, body}
	}

	go post(1) // takes the worker slot
	<-started  // ...and is now inside the engine
	go post(2) // takes the single queue slot
	waitFor(t, func() bool { return s.adm.depth() == 1 })

	startsBefore := blocker.starts.Load()
	code, body, hdr := postMap(t, ts, `{"kernel":"fir8","mapper":"blocktest","max_ii":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d: %s", code, body)
	}
	if errClass(t, body) != "overloaded" {
		t.Fatalf("shed class = %q", errClass(t, body))
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}
	if blocker.starts.Load() != startsBefore {
		t.Fatal("a shed request reached the engine")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d: %s", i, r.code, r.body)
		}
	}
	_, metrics := get(t, ts, "/metrics")
	if shed := metricValue(t, metrics, "regimapd_shed_total"); shed != 1 {
		t.Fatalf("shed_total = %d, want 1", shed)
	}
}

// TestGracefulDrain proves BeginDrain refuses new work with 503 while the
// already-admitted request runs to completion.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 4})
	gate, started := blocker.arm()

	done := make(chan result1, 1)
	go func() {
		code, body, _ := postMap(t, ts, `{"kernel":"fir8","mapper":"blocktest"}`)
		done <- result1{code, body}
	}()
	<-started

	s.BeginDrain()
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", code)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", code)
	}
	code, body, _ := postMap(t, ts, `{"kernel":"fir8","mapper":"blocktest","max_ii":9}`)
	if code != http.StatusServiceUnavailable || errClass(t, body) != "draining" {
		t.Fatalf("new request while draining: %d %q", code, errClass(t, body))
	}

	close(gate)
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request was not allowed to finish: %d: %s", r.code, r.body)
	}
}

type result1 struct {
	code int
	body []byte
}

// TestDeadline proves a short per-request deadline aborts a stuck engine
// with 504 and that the failure is not cached: the same query succeeds once
// the engine cooperates.
func TestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4})
	gate, _ := blocker.arm()

	code, body, _ := postMap(t, ts, `{"kernel":"fir8","mapper":"blocktest","deadline_ms":30}`)
	if code != http.StatusGatewayTimeout || errClass(t, body) != "deadline" {
		t.Fatalf("stuck engine: %d %q: %s", code, errClass(t, body), body)
	}

	close(gate)
	code, body, _ = postMap(t, ts, `{"kernel":"fir8","mapper":"blocktest","deadline_ms":5000}`)
	if code != http.StatusOK {
		t.Fatalf("retry after the abort was not recomputed: %d: %s", code, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cached {
		t.Fatal("aborted result was served from cache")
	}
}

// TestPanicIsolation proves an engine panic becomes a 500 with the panic
// class and the server keeps serving afterwards.
func TestPanicIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4})

	code, body, _ := postMap(t, ts, `{"kernel":"fir8","mapper":"panictest"}`)
	if code != http.StatusInternalServerError || errClass(t, body) != "panic" {
		t.Fatalf("panicking engine: %d %q", code, errClass(t, body))
	}
	code, body, _ = postMap(t, ts, `{"kernel":"fir8"}`)
	if code != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d: %s", code, body)
	}
	_, metrics := get(t, ts, "/metrics")
	if p := metricValue(t, metrics, "regimapd_panics_total"); p != 1 {
		t.Fatalf("panics_total = %d, want 1", p)
	}
}

// TestNoMappingIsCached proves deterministic infeasibility (ErrNoMapping) is
// served from cache on repeat: same 422 answer, one engine run.
func TestNoMappingIsCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4})
	// fir8 has far more ops than a 1x1 array can retire at II 2.
	req := `{"kernel":"fir8","rows":1,"cols":1,"max_ii":2}`
	code, body, _ := postMap(t, ts, req)
	if code != http.StatusUnprocessableEntity || errClass(t, body) != "no-mapping" {
		t.Fatalf("infeasible request: %d %q: %s", code, errClass(t, body), body)
	}
	code, _, _ = postMap(t, ts, req)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("repeat infeasible request: %d", code)
	}
	_, metrics := get(t, ts, "/metrics")
	if misses := metricValue(t, metrics, "regimapd_cache_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1 (the 422 should be cached)", misses)
	}
	if hits := metricValue(t, metrics, "regimapd_cache_hits_total"); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestInlineSource maps a loop given as loopir text and round-trips the
// returned wire mapping through mapping.UnmarshalJSON (which re-validates).
func TestInlineSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"source":"acc = acc + a[i]*3", "name":"maclite"}`
	code, body, _ := postMap(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("inline source: %d: %s", code, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Kernel != "maclite" || mr.II < 1 || len(mr.Mapping) == 0 {
		t.Fatalf("inline response = %+v", mr)
	}
	var m mapping.Mapping
	if err := json.Unmarshal(mr.Mapping, &m); err != nil {
		t.Fatalf("wire mapping invalid: %v", err)
	}
	if m.II != mr.II {
		t.Fatalf("wire II %d != response II %d", m.II, mr.II)
	}
}

// TestFaultedRequest maps around a dead PE and proves the fault set is part
// of the cache key (same kernel, different faults => distinct results).
func TestFaultedRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postMap(t, ts, `{"kernel":"fir8","faults":"pe 1,1"}`)
	if code != http.StatusOK {
		t.Fatalf("faulted map: %d: %s", code, body)
	}
	code, body, _ = postMap(t, ts, `{"kernel":"fir8"}`)
	if code != http.StatusOK {
		t.Fatalf("healthy map: %d: %s", code, body)
	}
	_, metrics := get(t, ts, "/metrics")
	if misses := metricValue(t, metrics, "regimapd_cache_misses_total"); misses != 2 {
		t.Fatalf("misses = %d, want 2 (faulted and healthy must not share a key)", misses)
	}
}

// TestClientErrors walks the request-validation surface.
func TestClientErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		code       int
		class      string
	}{
		{"no kernel", `{}`, http.StatusBadRequest, "bad-request"},
		{"both kernel and source", `{"kernel":"fir8","source":"x = a[i]"}`, http.StatusBadRequest, "bad-request"},
		{"unknown kernel", `{"kernel":"nope"}`, http.StatusNotFound, "not-found"},
		{"unknown mapper", `{"kernel":"fir8","mapper":"nope"}`, http.StatusBadRequest, "bad-engine"},
		{"bad faults", `{"kernel":"fir8","faults":"pe 99,99"}`, http.StatusBadRequest, "bad-request"},
		{"bad topology", `{"kernel":"fir8","topology":"hypercube"}`, http.StatusBadRequest, "bad-request"},
		{"bad II bounds", `{"kernel":"fir8","min_ii":9,"max_ii":2}`, http.StatusBadRequest, "bad-request"},
		{"negative deadline", `{"kernel":"fir8","deadline_ms":-1}`, http.StatusBadRequest, "bad-request"},
		{"unknown field", `{"kernel":"fir8","bogus":1}`, http.StatusBadRequest, "bad-request"},
		{"bad source", `{"source":"x ="}`, http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		code, body, _ := postMap(t, ts, tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, code, tc.code, body)
			continue
		}
		if got := errClass(t, body); got != tc.class {
			t.Errorf("%s: class %q, want %q", tc.name, got, tc.class)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/map: %d", resp.StatusCode)
	}
}

// TestArchRequests drives the /v1/map arch field end to end: named zoo
// members and inline ADL descriptions map, the wire mapping reproduces the
// requested fabric exactly, malformed descriptions come back as 400
// "bad-arch", unknown names as 404, and the shape fields are mutually
// exclusive with arch.
func TestArchRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Every named zoo member maps a kernel through /v1/map.
	for _, name := range arch.ArchNames() {
		code, body, _ := postMap(t, ts, fmt.Sprintf(`{"kernel":"dotprod_sat","arch":%q}`, name))
		if code != http.StatusOK {
			t.Fatalf("arch %q: %d: %s", name, code, body)
		}
		var mr MapResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		var m mapping.Mapping
		if err := json.Unmarshal(mr.Mapping, &m); err != nil {
			t.Fatalf("arch %q: wire mapping invalid: %v", name, err)
		}
		want, err := arch.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.C.Fingerprint() != want.Fingerprint() {
			t.Fatalf("arch %q: wire mapping is bound to a different fabric", name)
		}
	}

	// Inline ADL works too, and heterogeneous constraints survive the wire.
	code, body, _ := postMap(t, ts,
		`{"kernel":"dotprod_sat","arch":"grid 4x4; regs 4; cap all nomem; cap col 0 all"}`)
	if code != http.StatusOK {
		t.Fatalf("inline ADL: %d: %s", code, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	var m mapping.Mapping
	if err := json.Unmarshal(mr.Mapping, &m); err != nil {
		t.Fatalf("inline ADL: wire mapping invalid: %v", err)
	}
	if m.C.Supports(m.C.PEAt(1, 1), dfg.Load) {
		t.Fatal("inline ADL: nomem constraint lost on the wire")
	}

	// Error surface.
	cases := []struct {
		name, body string
		code       int
		class      string
	}{
		{"oversized grid", `{"kernel":"fir8","arch":"grid 99x99; regs 4"}`, http.StatusBadRequest, "bad-arch"},
		{"malformed adl", `{"kernel":"fir8","arch":"grid 4x4; frobnicate 3"}`, http.StatusBadRequest, "bad-arch"},
		{"banked cap above 1", `{"kernel":"fir8","arch":"grid 4x4; regs 4; bus rows; buscap 1=2"}`, http.StatusBadRequest, "bad-arch"},
		{"unknown name", `{"kernel":"fir8","arch":"no-such-fabric"}`, http.StatusNotFound, "not-found"},
		{"arch plus shape", `{"kernel":"fir8","arch":"paper-4x4","rows":4}`, http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		code, body, _ := postMap(t, ts, tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, code, tc.code, body)
			continue
		}
		if got := errClass(t, body); got != tc.class {
			t.Errorf("%s: class %q, want %q", tc.name, got, tc.class)
		}
	}
}

// TestArchCacheKeyedOnFingerprint: the memo cache keys on the compiled
// fabric's fingerprint, so the named paper mesh, its inline ADL, and the
// default shape fields all share one entry, while a genuinely different
// fabric misses.
func TestArchCacheKeyedOnFingerprint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"kernel":"fir8","arch":"paper-4x4"}`,
		`{"kernel":"fir8"}`,
		`{"kernel":"fir8","arch":"grid 4x4; regs 4"}`,
	} {
		code, rb, _ := postMap(t, ts, body)
		if code != http.StatusOK {
			t.Fatalf("%s: %d: %s", body, code, rb)
		}
	}
	_, metrics := get(t, ts, "/metrics")
	if misses := metricValue(t, metrics, "regimapd_cache_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1 (three spellings of the paper mesh must share a cache entry)", misses)
	}
	code, rb, _ := postMap(t, ts, `{"kernel":"fir8","arch":"adres-4x4"}`)
	if code != http.StatusOK {
		t.Fatalf("adres-4x4: %d: %s", code, rb)
	}
	_, metrics = get(t, ts, "/metrics")
	if misses := metricValue(t, metrics, "regimapd_cache_misses_total"); misses != 2 {
		t.Fatalf("misses = %d, want 2 (a different fabric must not share a key)", misses)
	}
}

// TestDiscoveryEndpoints sanity-checks /v1/mappers and /v1/kernels.
func TestDiscoveryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// /v1/engines and its legacy alias /v1/mappers answer the same listing.
	for _, path := range []string{"/v1/engines", "/v1/mappers"} {
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("%s: %d", path, code)
		}
		var engines []EngineInfo
		if err := json.Unmarshal(body, &engines); err != nil {
			t.Fatal(err)
		}
		found := map[string]string{}
		for _, m := range engines {
			found[m.Name] = m.Description
		}
		for _, want := range []string{"regimap", "ems", "dresc", "portfolio", "resilient", "exact"} {
			desc, ok := found[want]
			if !ok {
				t.Errorf("%s missing %q (got %v)", path, want, engines)
				continue
			}
			if desc == "" {
				t.Errorf("%s lists %q without a description", path, want)
			}
		}
	}

	code, body := get(t, ts, "/v1/kernels")
	if code != http.StatusOK {
		t.Fatalf("/v1/kernels: %d", code)
	}
	var ks []KernelInfo
	if err := json.Unmarshal(body, &ks); err != nil {
		t.Fatal(err)
	}
	if len(ks) < 8 {
		t.Fatalf("only %d kernels listed", len(ks))
	}
	for _, k := range ks {
		if k.Ops <= 0 {
			t.Errorf("kernel %s lists %d ops", k.Name, k.Ops)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExactEngineOverHTTP drives the exact SAT backend through both the
// synchronous map endpoint and the async job API, and checks that an
// unknown engine on either path answers the typed 400 "bad-engine".
func TestExactEngineOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, blob, _ := postMap(t, ts, `{"kernel":"dotprod_sat","mapper":"exact"}`)
	if code != http.StatusOK {
		t.Fatalf("sync exact map: %d: %s", code, blob)
	}
	var sr MapResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Mapper != "exact" || sr.II <= 0 || sr.II < sr.MII {
		t.Fatalf("sync exact answer = %+v", sr)
	}

	ack := submitJob(t, ts, `{"kernel":"dotprod_sat","mapper":"exact","idempotency_key":"exact-1"}`, http.StatusAccepted)
	job := pollJob(t, ts, ack.ID)
	if job.State != "done" {
		t.Fatalf("exact job = %+v", job)
	}
	var jr MapResponse
	if err := json.Unmarshal(job.Result, &jr); err != nil {
		t.Fatalf("job result %q: %v", job.Result, err)
	}
	if jr.II != sr.II {
		t.Fatalf("async exact II=%d, sync II=%d", jr.II, sr.II)
	}

	for _, submit := range []func() (int, []byte){
		func() (int, []byte) {
			code, blob, _ := postMap(t, ts, `{"kernel":"dotprod_sat","mapper":"nope"}`)
			return code, blob
		},
		func() (int, []byte) {
			code, blob, _ := postJSON(t, ts, "/v1/jobs", `{"kernel":"dotprod_sat","mapper":"nope"}`)
			return code, blob
		},
	} {
		code, blob := submit()
		if code != http.StatusBadRequest {
			t.Fatalf("unknown engine: status %d, want 400: %s", code, blob)
		}
		if got := errClass(t, blob); got != "bad-engine" {
			t.Fatalf("unknown engine: class %q, want \"bad-engine\": %s", got, blob)
		}
		if !strings.Contains(string(blob), "exact") {
			t.Fatalf("bad-engine body does not list the registry: %s", blob)
		}
	}
}
