// Package server is regimapd's serving layer: an HTTP/JSON API over the
// engine registry, with bounded-queue admission control, a content-addressed
// result cache (internal/memo), typed error responses built on the maperr
// taxonomy, and a Prometheus-text /metrics exporter.
//
// Endpoints:
//
//	POST /v1/map       map a named kernel or inline loopir source (JSON body)
//	POST /v1/jobs      submit an async mapping job (same body + idempotency_key)
//	GET  /v1/jobs/{id} poll a job: queued/running/done/failed, degraded flag, result
//	GET  /v1/mappers   the engine registry, with descriptions
//	GET  /v1/kernels   the benchmark kernel suite, with sizes
//	GET  /healthz      liveness: 200 while the process is up
//	GET  /readyz       readiness: 503 once draining begins
//	GET  /metrics      Prometheus text-format metrics
//
// Request lifecycle: a /v1/map request resolves its kernel, array, fault
// set, and engine; acquires a per-request deadline; and consults the cache.
// Only a cache-missing leader enters the admission queue — duplicate
// identical queries collapse onto the in-flight computation without
// consuming queue slots, and cache hits bypass admission entirely. When the
// queue is full the request is shed with 429 and Retry-After before any
// mapping work starts. SIGTERM (wired in cmd/regimapd) flips readiness and
// lets in-flight requests finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
	"regimap/internal/fault"
	"regimap/internal/jobs"
	"regimap/internal/kernels"
	"regimap/internal/loopir"
	"regimap/internal/maperr"
	"regimap/internal/memo"
	"regimap/internal/obs"
	"regimap/internal/resilient"

	// Importing the mapper packages is what populates the engine registry
	// the server dispatches through (resilient above registers itself too).
	// core is also imported by name: resolve hands the regimap engine a
	// core.Options carrying the clique worker count and the shared arena pool.
	"regimap/internal/clique"
	"regimap/internal/core"
	"regimap/internal/dresc"
	_ "regimap/internal/ems"
	_ "regimap/internal/portfolio"
)

// Config tunes one Server. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds concurrent mapping computations (default: GOMAXPROCS).
	Workers int
	// CliqueWorkers parallelizes the clique search inside each regimap-engine
	// run (<=1: sequential). Mappings are byte-identical at any value — the
	// parallel engine's reduction is deterministic (DESIGN.md section 8g) —
	// so the result cache never observes a worker-count-dependent answer.
	// Search arenas are pooled on the Server and reused across requests
	// regardless of this setting.
	CliqueWorkers int
	// DRESCRestarts races this many seed-derived annealing chains per II
	// inside each dresc-engine run (<=1: single chain). Unlike the worker
	// knobs it changes which placement is produced, so it is part of the
	// server's configuration identity: all cached results were computed
	// under it.
	DRESCRestarts int
	// DRESCWorkers bounds the goroutines racing those chains (0: GOMAXPROCS).
	// Wall-clock only; placements are byte-identical at any value, so the
	// result cache never observes a worker-count-dependent answer.
	DRESCWorkers int
	// Queue bounds mapping computations waiting for a worker; one more is
	// shed with 429 (default 64).
	Queue int
	// CacheEntries bounds the memoized result cache (default 1024).
	CacheEntries int
	// DefaultDeadline applies when a request names none (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps every request deadline (default 2m).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds every request body; larger bodies answer a typed
	// 413 before any decoding work (default 1 MiB).
	MaxBodyBytes int64

	// WALDir, when set, makes the async job subsystem durable: submits are
	// fsynced into an append-only JSONL write-ahead log under this
	// directory and replayed on startup, so acknowledged jobs survive
	// kill -9. Empty: jobs run fully in memory.
	WALDir string
	// JobWorkers bounds concurrently executing async jobs — a pool separate
	// from the synchronous admission slots, so multi-second jobs never
	// starve interactive /v1/map traffic (default 2).
	JobWorkers int
	// JobQueue bounds jobs waiting to run; submits beyond it answer 429
	// (default 256).
	JobQueue int
	// DegradeWatermark is the queued-job count at which new jobs are
	// downgraded to DegradeTo and marked degraded (0: JobQueue/2;
	// negative: disabled).
	DegradeWatermark int
	// DegradeTo is the engine watermark-degraded jobs run on (default
	// "ems", the fastest full-mapping engine).
	DegradeTo string
	// JobAttempts bounds execution attempts per job on transient failures
	// (default 3).
	JobAttempts int
	// BreakerFailures is the consecutive-failure count that trips an
	// engine's circuit breaker (default 5); BreakerCooldown is how long a
	// tripped breaker waits before its half-open probe (default 5s);
	// BreakerLatency, when positive, additionally trips on consecutive
	// calls slower than it.
	BreakerFailures int
	BreakerCooldown time.Duration
	BreakerLatency  time.Duration
	// TraceSink, when set, receives the full observability stream: request
	// spans, counter points, and every span the engines emit.
	TraceSink obs.Sink
	// Version is reported by /metrics as regimapd_build_info.
	Version string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueue <= 0 {
		c.JobQueue = 256
	}
	if c.DegradeTo == "" {
		c.DegradeTo = "ems"
	}
	return c
}

// Server is the mapping-as-a-service handler set. Construct with New; it is
// ready to serve immediately.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *memo.Cache
	adm      *admission
	met      *metrics
	trace    *obs.Tracer // engine + request spans (nil when untraced)
	counters *obs.Tracer // counter points: always on, feeds /metrics
	arenas   *clique.Pool
	jobs     *jobs.Manager
	draining atomic.Bool
}

// New returns a ready Server. The only error source is the job WAL: a
// Config.WALDir that cannot be opened or replayed refuses to start rather
// than silently serving without durability.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	met := newMetrics()
	s := &Server{
		cfg:      cfg,
		cache:    memo.New(cfg.CacheEntries, 16),
		adm:      newAdmission(cfg.Workers, cfg.Queue),
		met:      met,
		trace:    obs.New(cfg.TraceSink).Named("regimapd", ""),
		counters: obs.New(obs.Tee(met.sink, cfg.TraceSink)).Named("regimapd", ""),
		arenas:   clique.NewPool(),
	}
	mgr, err := jobs.Open(cfg.WALDir, s.runJob, jobs.Config{
		Workers:         cfg.JobWorkers,
		QueueDepth:      cfg.JobQueue,
		Watermark:       cfg.DegradeWatermark,
		DegradeTo:       cfg.DegradeTo,
		Downgrades:      resilient.Downgrades,
		MaxAttempts:     cfg.JobAttempts,
		DefaultDeadline: cfg.DefaultDeadline,
		Breaker: jobs.BreakerConfig{
			Failures: cfg.BreakerFailures,
			Cooldown: cfg.BreakerCooldown,
			Latency:  cfg.BreakerLatency,
		},
		Classify: func(err error) string { _, class := classify(err); return class },
		Trace:    s.counters.Named("jobs", ""),
	})
	if err != nil {
		return nil, err
	}
	s.jobs = mgr
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("/v1/engines", s.handleEngines)
	s.mux.HandleFunc("/v1/mappers", s.handleEngines) // legacy alias for /v1/engines
	s.mux.HandleFunc("/v1/kernels", s.handleKernels)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.serveMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into graceful shutdown: /readyz reports 503 so
// load balancers stop routing here, and new mapping requests and job submits
// are refused with 503, while requests already admitted — and every already
// acknowledged job — run to completion (the caller waits for requests with
// http.Server.Shutdown and for jobs with FinishJobs).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// FinishJobs completes the drain of the async job subsystem: queued jobs run
// to terminal states and the WAL is closed cleanly. Returns ctx's error if
// the budget expires first — the unfinished jobs stay in the WAL and the
// next startup recovers them.
func (s *Server) FinishJobs(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Close hard-stops the job subsystem without draining — crash-equivalent by
// design: workers halt, running jobs are cancelled, and nothing further
// reaches the WAL. Acknowledged non-terminal jobs are recovered by the next
// Server opened on the same WALDir; tests use exactly this to simulate
// kill -9 in process.
func (s *Server) Close() { s.jobs.Kill() }

// errShed reports a load-shed: the admission queue was full, so the request
// was refused before any mapping work started.
var errShed = errors.New("admission queue full")

// errDraining reports a request arriving after shutdown began.
var errDraining = errors.New("server is draining")

// MapRequest is the /v1/map request body. Exactly one of Kernel and Source
// selects the loop; array fields default to the paper's 4x4 mesh with 4
// registers per PE.
type MapRequest struct {
	// Kernel names a benchmark kernel (see /v1/kernels).
	Kernel string `json:"kernel,omitempty"`
	// Source is an inline loopir loop body, compiled on the fly.
	Source string `json:"source,omitempty"`
	// Name labels an inline Source kernel (default "inline").
	Name string `json:"name,omitempty"`

	// Mapper is the engine name (see /v1/mappers; default "regimap").
	Mapper string `json:"mapper,omitempty"`

	// Arch selects the target fabric: a named architecture from the registry
	// (see arch.ArchNames — "paper-4x4", "torus-8x8", ...) or an inline ADL
	// description ("grid 4x4; topo mesh+; regs 8"). Mutually exclusive with
	// the shape fields below.
	Arch string `json:"arch,omitempty"`

	Rows     int    `json:"rows,omitempty"`
	Cols     int    `json:"cols,omitempty"`
	Regs     int    `json:"regs,omitempty"`
	Topology string `json:"topology,omitempty"`

	// Faults is a fault-set in the -faults grammar, e.g.
	// "pe 1,1; link 0,0-0,1; regs 2,2=1; row 3". Non-resilient mappers map
	// on the faulted array; the resilient ladder owns fault application
	// (and transient retry) itself.
	Faults string `json:"faults,omitempty"`

	MinII int `json:"min_ii,omitempty"`
	MaxII int `json:"max_ii,omitempty"`

	// DeadlineMS caps this request's mapping time in milliseconds
	// (default Config.DefaultDeadline, clamped to Config.MaxDeadline).
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// MapResponse is the /v1/map success body.
type MapResponse struct {
	Mapper string  `json:"mapper"`
	Kernel string  `json:"kernel"`
	II     int     `json:"ii"`
	MII    int     `json:"mii"`
	Perf   float64 `json:"perf"`
	Rounds int     `json:"rounds"`
	// Cached is true when the mapping was served from the result cache;
	// Collapsed when it was shared with an identical in-flight request.
	Cached    bool `json:"cached"`
	Collapsed bool `json:"collapsed,omitempty"`
	// ElapsedUS is the compute cost of the underlying mapping run (not of
	// this request — a cache hit reports the original run's cost).
	ElapsedUS int64 `json:"elapsed_us"`
	// Mapping is the full self-contained wire mapping (see
	// internal/mapping); null for artifact-only engines like dresc.
	Mapping json.RawMessage `json:"mapping,omitempty"`
	// Artifact summarizes the solution of engines without a Mapping form.
	Artifact string `json:"artifact,omitempty"`
}

// ErrorResponse is the body of every non-2xx API answer. Class is a stable
// machine-readable failure taxonomy mirroring internal/maperr:
// "bad-request", "bad-arch", "not-found", "too-large", "no-mapping",
// "deadline", "overloaded", "draining", "transient", "panic", "internal".
type ErrorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// cachedResult is the memoized value: everything needed to answer an
// identical query without touching an engine. MappingJSON is the marshalled
// wire mapping, stored as bytes so every hit returns the byte-identical
// payload the first computation produced.
type cachedResult struct {
	II, MII, Rounds int
	Perf            float64
	ElapsedUS       int64
	MappingJSON     json.RawMessage
	Artifact        string
}

// requestKey is the content-addressed cache key: the canonical fingerprint
// over everything that determines the mapping result. The deadline is
// deliberately excluded — it bounds how long we wait, not what the answer
// is — and aborted runs are never cached, so a short-deadline failure cannot
// poison a longer-deadline retry. See DESIGN.md section 8f.
func requestKey(d *dfg.DFG, c *arch.CGRA, faults, mapper string, minII, maxII int) memo.Key {
	dfp := d.Fingerprint()
	afp := c.Fingerprint()
	return memo.NewHasher("regimapd/v1").
		Bytes(dfp[:]).
		Bytes(afp[:]).
		Str(faults).
		Str(mapper).
		Int(int64(minII)).
		Int(int64(maxII)).
		Sum()
}

// cacheableErr reports whether a mapping error is deterministic — true for
// an exhausted search (ErrNoMapping), false for deadline aborts, sheds,
// panics, and anything else that might not repeat. Context cancellation and
// deadline errors are checked directly, not only via the ErrAborted wrap: an
// engine that folds a ctx error into its no-mapping report without the
// sentinel must still never poison the key for followers with budget left.
func cacheableErr(err error) bool {
	return errors.Is(err, maperr.ErrNoMapping) &&
		!errors.Is(err, maperr.ErrAborted) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// execute is the synchronous cache-miss leader path: admission, then the
// guarded engine call.
func (s *Server) execute(ctx context.Context, m engine.Mapper, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (res any, err error) {
	release, err := s.adm.acquire(ctx)
	if err != nil {
		if errors.Is(err, errShed) {
			s.counters.Point1("server.shed", "n", 1)
		}
		return nil, err
	}
	defer release()
	return s.compute(ctx, m, d, c, eo)
}

// compute runs one engine call with panic isolation and packages the
// memoized value. It performs no admission: the synchronous path wraps it in
// execute, while async job workers bound their own concurrency — that
// separation is what keeps multi-second jobs from occupying interactive
// admission slots.
func (s *Server) compute(ctx context.Context, m engine.Mapper, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (res any, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.counters.Point1("server.panic", "n", 1)
			err = &maperr.WorkerPanicError{Worker: "regimapd worker", Value: v, Stack: debug.Stack()}
		}
	}()
	out, err := m.Map(ctx, d, c, eo)
	if err != nil {
		return nil, err
	}
	cr := &cachedResult{
		II:        out.II,
		MII:       out.MII,
		Rounds:    out.Rounds,
		Perf:      out.Perf(),
		ElapsedUS: out.Elapsed.Microseconds(),
	}
	switch {
	case out.Mapping != nil:
		blob, merr := json.Marshal(out.Mapping)
		if merr != nil {
			return nil, fmt.Errorf("encode mapping: %w", merr)
		}
		cr.MappingJSON = blob
	case out.Artifact != nil:
		cr.Artifact = fmt.Sprintf("%T", out.Artifact)
	}
	return cr, nil
}

// resolve turns a MapRequest into the engine call's inputs. All failures are
// client errors.
func (s *Server) resolve(req *MapRequest) (d *dfg.DFG, c *arch.CGRA, eng engine.Mapper, eo engine.Options, faults string, err error) {
	switch {
	case req.Kernel != "" && req.Source != "":
		return nil, nil, nil, eo, "", fmt.Errorf("kernel and source are mutually exclusive")
	case req.Kernel != "":
		k, ok := kernels.ByName(req.Kernel)
		if !ok {
			return nil, nil, nil, eo, "", &notFoundError{fmt.Sprintf("unknown kernel %q (see /v1/kernels)", req.Kernel)}
		}
		d = k.Build()
	case req.Source != "":
		name := req.Name
		if name == "" {
			name = "inline"
		}
		d, err = loopir.Compile(name, req.Source)
		if err != nil {
			return nil, nil, nil, eo, "", err
		}
	default:
		return nil, nil, nil, eo, "", fmt.Errorf("one of kernel or source is required")
	}

	c, err = s.resolveArch(req)
	if err != nil {
		return nil, nil, nil, eo, "", err
	}

	mapperName := req.Mapper
	if mapperName == "" {
		mapperName = "regimap"
	}
	eng, ok := engine.Lookup(mapperName)
	if !ok {
		return nil, nil, nil, eo, "", &badEngineError{fmt.Sprintf("unknown mapper %q (have %v, see /v1/engines)", mapperName, engine.Names())}
	}

	if req.MinII < 0 || req.MaxII < 0 || (req.MaxII > 0 && req.MinII > req.MaxII) {
		return nil, nil, nil, eo, "", fmt.Errorf("bad II bounds [%d, %d]", req.MinII, req.MaxII)
	}
	eo = engine.Options{MinII: req.MinII, MaxII: req.MaxII}
	if mapperName == "regimap" {
		// Hand the engine the server's clique configuration: the worker
		// count and the process-wide arena pool, so repeated requests reuse
		// search state instead of reallocating it. Byte-identical results
		// at any worker count keep the cache coherent.
		eo.Extra = core.Options{Clique: clique.Options{Workers: s.cfg.CliqueWorkers, Arenas: s.arenas}}
	}
	if mapperName == "dresc" {
		// Restart racing is deterministic per (seed, restarts), so handing
		// the engine the server's chain configuration keeps the cache
		// coherent the same way the clique workers do for regimap.
		eo.Extra = dresc.Options{Restarts: s.cfg.DRESCRestarts, Workers: s.cfg.DRESCWorkers}
	}

	if req.Faults != "" {
		fs, ferr := fault.Parse(req.Faults)
		if ferr != nil {
			return nil, nil, nil, eo, "", ferr
		}
		if ferr := fs.Validate(c); ferr != nil {
			return nil, nil, nil, eo, "", ferr
		}
		faults = fs.String()
		if mapperName == "resilient" {
			// The ladder owns fault application and transient retry.
			eo.Extra = resilient.Options{
				Faults: fs,
				DRESC:  dresc.Options{Restarts: s.cfg.DRESCRestarts, Workers: s.cfg.DRESCWorkers},
			}
		} else {
			faulted, ferr := fs.Apply(c)
			if ferr != nil {
				return nil, nil, nil, eo, "", ferr
			}
			c = faulted
		}
	}
	return d, c, eng, eo, faults, nil
}

// resolveArch builds the request's array: from the arch field (a registry
// name or an inline ADL description) or from the shape fields, never both.
// Every path funnels through the ADL compiler, so a malformed fabric is
// rejected with the same *arch.DescError the CLI flags and the mapping wire
// decoder produce (answered as 400 "bad-arch"); an unknown registry name is
// a 404 like an unknown kernel or mapper.
func (s *Server) resolveArch(req *MapRequest) (*arch.CGRA, error) {
	if req.Arch != "" {
		if req.Rows != 0 || req.Cols != 0 || req.Regs != 0 || req.Topology != "" {
			return nil, fmt.Errorf("arch is mutually exclusive with rows/cols/regs/topology")
		}
		c, err := arch.Resolve(req.Arch)
		if errors.Is(err, arch.ErrUnknownArch) {
			return nil, &notFoundError{err.Error()}
		}
		return c, err
	}
	rows, cols, regs := req.Rows, req.Cols, req.Regs
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 4
	}
	if regs == 0 {
		regs = 4
	}
	topo, err := arch.ParseTopology(req.Topology)
	if err != nil {
		return nil, err
	}
	return arch.Uniform(rows, cols, regs, topo)
}

// notFoundError marks client errors that should answer 404 instead of 400.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

// badEngineError marks a request naming an engine the registry does not
// have. Unlike an unknown kernel (a 404: the resource genuinely does not
// exist here), a bad engine name is a malformed request against a fixed,
// discoverable vocabulary — answered 400 with class "bad-engine" so clients
// can distinguish it from transport-level 404s and consult /v1/engines.
type badEngineError struct{ msg string }

func (e *badEngineError) Error() string { return e.msg }

// deadlineFor clamps the request deadline into the configured window.
func (s *Server) deadlineFor(req *MapRequest) (time.Duration, error) {
	if req.DeadlineMS < 0 {
		return 0, fmt.Errorf("negative deadline_ms %d", req.DeadlineMS)
	}
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}
