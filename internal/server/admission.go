package server

import (
	"context"

	"regimap/internal/maperr"
)

// admission is the server's load-control gate: Workers slots bound how many
// mapping computations run at once, and Queue tokens bound how many may wait
// for a slot. A request that finds the queue full is shed immediately —
// before any mapping work, and without blocking — which keeps tail latency
// bounded under overload instead of letting the backlog grow without limit.
//
// Admission is consulted only by cache-miss leaders (inside the singleflight
// compute path): cache hits and collapsed duplicates never consume a token,
// so a thundering herd of identical queries costs one slot total.
type admission struct {
	queue chan struct{} // waiting-room tokens (capacity Config.Queue)
	slots chan struct{} // running-worker tokens (capacity Config.Workers)
}

func newAdmission(workers, queue int) *admission {
	return &admission{
		queue: make(chan struct{}, queue),
		slots: make(chan struct{}, workers),
	}
}

// acquire admits one computation: it takes a queue token (or sheds with
// errShed when the waiting room is full), then waits for a worker slot,
// honouring the request's own deadline while queued. On success the caller
// holds a worker slot and must call the returned release exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, errShed
	}
	select {
	case a.slots <- struct{}{}:
		<-a.queue
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		<-a.queue
		return nil, maperr.Aborted(ctx.Err(), "request expired in the admission queue")
	}
}

// depth reports how many computations are waiting for a worker slot.
func (a *admission) depth() int { return len(a.queue) }

// busy reports how many worker slots are held.
func (a *admission) busy() int { return len(a.slots) }
