package ems

import (
	"sort"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

// This file preserves the pre-optimization placer verbatim (maps for
// occupancy, per-call BFS maps, O(V·E) pressure recompute, a Clone per II) as
// the behavioural reference. TestPlacerMatchesReference diffs the optimized
// arena placer against it on random kernels and faulted fabrics: the two must
// agree on success/failure, mapping text, and stats at every II.

type refPlacer struct {
	ds *dfg.DFG
	c  *arch.CGRA
	ii int

	time, pe []int
	occupied map[[2]int]bool // (pe, slot)
	busUsed  map[[2]int]int  // mem ops per (bus group, slot)
	pressure []int
}

func refPlaceAtII(d *dfg.DFG, c *arch.CGRA, ii int, stats *Stats) *mapping.Mapping {
	p := &refPlacer{
		ds:       d.Clone(),
		c:        c,
		ii:       ii,
		occupied: map[[2]int]bool{},
		busUsed:  map[[2]int]int{},
		pressure: make([]int, c.NumPEs()),
	}
	p.time = make([]int, d.N())
	p.pe = make([]int, d.N())
	for i := range p.time {
		p.time[i] = -1
		p.pe[i] = -1
	}

	heights := d.Heights()
	order := make([]int, d.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if heights[order[i]] != heights[order[j]] {
			return heights[order[i]] > heights[order[j]]
		}
		return order[i] < order[j]
	})

	for _, v := range order {
		stats.Placements++
		if !p.placeOp(v, stats) {
			return nil
		}
	}

	m := mapping.New(p.ds, c, ii)
	copy(m.Time, p.time)
	copy(m.PE, p.pe)
	if m.Validate() != nil {
		return nil
	}
	return m
}

func (p *refPlacer) placeOp(v int, stats *Stats) bool {
	early := 0
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v || p.time[e.From] < 0 {
			continue
		}
		if lo := p.time[e.From] + 1 - p.ii*e.Dist; lo > early {
			early = lo
		}
	}
	type plan struct {
		pe, t  int
		cost   int
		chains [][]int
		edges  []int
	}
	var best *plan
	for t := early; t < early+p.ii; t++ {
		for pe := 0; pe < p.c.NumPEs(); pe++ {
			if !p.c.Supports(pe, p.ds.Nodes[v].Kind) || p.slotBusy(pe, t, p.ds.Nodes[v].Kind) {
				continue
			}
			cost, chains, edges, ok := p.tryPosition(v, pe, t)
			if !ok {
				continue
			}
			if best == nil || cost < best.cost {
				best = &plan{pe: pe, t: t, cost: cost, chains: chains, edges: edges}
			}
		}
	}
	if best == nil {
		return false
	}
	p.commit(v, best.pe, best.t)
	for i, chain := range best.chains {
		p.materializeChain(best.edges[i], chain, stats)
	}
	p.recomputePressure()
	for pe, used := range p.pressure {
		if used > p.c.RegsAt(pe) {
			return false
		}
	}
	return true
}

func (p *refPlacer) slotBusy(pe, t int, kind dfg.OpKind) bool {
	if p.occupied[[2]int{pe, refMod(t, p.ii)}] {
		return true
	}
	if !kind.IsMem() {
		return false
	}
	if !p.c.MemPEOk(pe) {
		return true
	}
	g := p.c.BusGroupOf(pe)
	return p.busUsed[[2]int{g, refMod(t, p.ii)}] >= p.c.BusGroupCap(g)
}

func (p *refPlacer) commit(v, pe, t int) {
	p.time[v] = t
	p.pe[v] = pe
	p.occupied[[2]int{pe, refMod(t, p.ii)}] = true
	if p.ds.Nodes[v].Kind.IsMem() {
		p.busUsed[[2]int{p.c.BusGroupOf(pe), refMod(t, p.ii)}]++
	}
}

func (p *refPlacer) tryPosition(v, pe, t int) (cost int, chains [][]int, edges []int, ok bool) {
	check := func(ei int, prodOp, prodPE, prodT, consPE, consT, dist int) bool {
		span := consT - prodT + p.ii*dist
		switch {
		case span < 1:
			return false
		case span == 1:
			if !p.c.Connected(prodPE, consPE) {
				return false
			}
			if prodPE != consPE {
				cost++
			}
			return true
		case prodPE == consPE:
			regs := (span + p.ii - 1) / p.ii
			if p.pressure[prodPE]+regs > p.c.RegsAt(prodPE) {
				return false
			}
			cost += 2 * regs
			return true
		case dist > 0:
			return false
		default:
			chain := p.routeChain(prodPE, prodT, consPE, span)
			if chain == nil {
				return false
			}
			cost += 2 * len(chain)
			chains = append(chains, chain)
			edges = append(edges, ei)
			return true
		}
	}
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v {
			if spanSelf := p.ii * e.Dist; spanSelf > 1 {
				regs := (spanSelf + p.ii - 1) / p.ii
				if p.pressure[pe]+regs > p.c.RegsAt(pe) {
					return 0, nil, nil, false
				}
				cost += 2 * regs
			}
			continue
		}
		if p.time[e.From] < 0 {
			continue
		}
		if !check(ei, e.From, p.pe[e.From], p.time[e.From], pe, t, e.Dist) {
			return 0, nil, nil, false
		}
	}
	for _, ei := range p.ds.OutEdges(v) {
		e := p.ds.Edges[ei]
		if e.To == v || p.time[e.To] < 0 {
			continue
		}
		if !check(ei, v, pe, t, p.pe[e.To], p.time[e.To], e.Dist) {
			return 0, nil, nil, false
		}
	}
	return cost, chains, edges, true
}

func (p *refPlacer) routeChain(fromPE, fromT, toPE, span int) []int {
	type state struct {
		pe, k int
	}
	prev := map[state]state{}
	seen := map[state]bool{}
	frontier := []state{{fromPE, 0}}
	seen[state{fromPE, 0}] = true
	for len(frontier) > 0 {
		var next []state
		for _, cur := range frontier {
			if cur.k == span-1 {
				if p.c.Connected(cur.pe, toPE) {
					chain := make([]int, 0, span-1)
					for at := cur; at.k > 0; at = prev[at] {
						chain = append(chain, at.pe)
					}
					for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
						chain[i], chain[j] = chain[j], chain[i]
					}
					return chain
				}
				continue
			}
			cands := append([]int{cur.pe}, p.c.Neighbors(cur.pe)...)
			for _, q := range cands {
				ns := state{q, cur.k + 1}
				if seen[ns] || !p.c.Supports(q, dfg.Route) || p.slotBusy(q, fromT+ns.k, dfg.Route) {
					continue
				}
				seen[ns] = true
				prev[ns] = cur
				next = append(next, ns)
			}
		}
		frontier = next
	}
	return nil
}

func (p *refPlacer) materializeChain(ei int, chain []int, stats *Stats) {
	e := p.ds.Edges[ei]
	prodT := p.time[e.From]
	node := e.From
	for k, pe := range chain {
		rt := p.ds.InsertRoute(p.edgeIndexFrom(node, e.To, e.Port))
		p.time = append(p.time, 0)
		p.pe = append(p.pe, 0)
		p.time[rt] = prodT + k + 1
		p.pe[rt] = pe
		p.occupied[[2]int{pe, refMod(prodT+k+1, p.ii)}] = true
		stats.Routes++
		node = rt
	}
}

func (p *refPlacer) edgeIndexFrom(node, to, port int) int {
	for _, ei := range p.ds.OutEdges(node) {
		e := p.ds.Edges[ei]
		if e.To == to && e.Port == port {
			return ei
		}
	}
	panic("ems: lost track of an edge while routing")
}

func (p *refPlacer) recomputePressure() {
	for i := range p.pressure {
		p.pressure[i] = 0
	}
	for v := range p.ds.Nodes {
		if v >= len(p.time) || p.time[v] < 0 {
			continue
		}
		maxSpan := 0
		for _, ei := range p.ds.OutEdges(v) {
			e := p.ds.Edges[ei]
			var span int
			if e.To == v {
				span = p.ii * e.Dist
			} else {
				if e.To >= len(p.time) || p.time[e.To] < 0 {
					continue
				}
				span = p.time[e.To] - p.time[v] + p.ii*e.Dist
			}
			if span > 1 && span > maxSpan {
				maxSpan = span
			}
		}
		if maxSpan > 1 {
			p.pressure[p.pe[v]] += (maxSpan + p.ii - 1) / p.ii
		}
	}
}

func refMod(a, m int) int { return ((a % m) + m) % m }
