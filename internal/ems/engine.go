package ems

import (
	"context"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
)

// engineMapper adapts Map to the unified engine contract under the name
// "ems". Options.Extra, when set, must be an ems.Options.
type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "ems" }

func (engineMapper) Describe() string {
	return "EMS-style edge-centric greedy baseline: immediate routing, no learning, II escalation on any failure"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "ems", Want: "ems.Options", Got: eo.Extra}
	}
	// EMS has no MinII knob: the greedy pass always starts at MII.
	if eo.MaxII > 0 {
		opts.MaxII = eo.MaxII
	}
	m, st, err := Map(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	return &engine.Result{
		Mapping: m,
		MII:     st.MII,
		II:      st.II,
		Rounds:  st.Placements,
		Stats:   st,
		Elapsed: st.Elapsed,
	}, err
}
