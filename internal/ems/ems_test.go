package ems

import (
	"context"
	"math/rand"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sim"
)

func fig2DFG() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func TestMapFigure2(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	m, stats, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II < stats.MII {
		t.Fatalf("II %d beats MII %d", stats.II, stats.MII)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Check(m, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMapRecurrence(t *testing.T) {
	b := dfg.NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(dfg.Add, "p", x)
	q := b.Op(dfg.Neg, "q", p)
	r := b.Op(dfg.Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	d := b.Build()
	c := arch.NewMesh(4, 4, 4)
	m, stats, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II < 3 {
		t.Fatalf("II = %d beats RecMII 3", stats.II)
	}
	if err := sim.Check(m, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMapAccumulator(t *testing.T) {
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	m, _, err := Map(context.Background(), d, arch.NewMesh(2, 2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Check(m, 6); err != nil {
		t.Fatal(err)
	}
}

func TestMapImpossible(t *testing.T) {
	b := dfg.NewBuilder("mul")
	x := b.Input("x")
	b.Op(dfg.Mul, "m", x, x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	c.RestrictPE(0, dfg.Add)
	c.RestrictPE(1, dfg.Add)
	if _, _, err := Map(context.Background(), d, c, Options{MaxII: 3}); err == nil {
		t.Fatal("mapped kernel with unsupported op")
	}
}

func TestMapInvalidDFG(t *testing.T) {
	bad := &dfg.DFG{Name: "bad", Nodes: []dfg.Node{{ID: 0, Name: "x", Kind: dfg.Add}}}
	if _, _, err := Map(context.Background(), bad, arch.NewMesh(2, 2, 2), Options{}); err == nil {
		t.Fatal("accepted invalid DFG")
	}
}

func TestPerf(t *testing.T) {
	s := &Stats{MII: 3, II: 6}
	if s.Perf() != 0.5 {
		t.Errorf("Perf = %v", s.Perf())
	}
	if (&Stats{MII: 3}).Perf() != 0 {
		t.Error("failed run must report 0")
	}
}

// Random kernels: whatever EMS maps must validate and simulate correctly.
func TestRandomKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kinds := []dfg.OpKind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.Min}
	mapped := 0
	for trial := 0; trial < 25; trial++ {
		b := dfg.NewBuilder("rand")
		ids := []int{b.Input("i0")}
		n := 4 + rng.Intn(10)
		for len(ids) < n {
			k := kinds[rng.Intn(len(kinds))]
			ids = append(ids, b.Op(k, "op", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
		}
		d := b.Build()
		c := arch.NewMesh(4, 4, 4)
		m, _, err := Map(context.Background(), d, c, Options{})
		if err != nil {
			continue
		}
		mapped++
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sim.Check(m, 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if mapped == 0 {
		t.Fatal("EMS mapped nothing at all")
	}
}
