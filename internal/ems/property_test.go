package ems

import (
	"math/rand"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/fault"
	"regimap/internal/kernels"
)

// Property: the arena placer agrees with the reference placer (ref_test.go)
// per II attempt — same success/failure, byte-identical mapping text, same
// placement/route counts — on random kernels over healthy and faulted
// fabrics. This is the guarantee the golden suite pins end-to-end, pushed
// down to every intermediate II the escalation loop visits.
func TestPlacerMatchesReference(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		d := kernels.Random(int64(trial), kernels.RandomOptions{
			Ops:         6 + rng.Intn(18),
			MemFraction: 0.2,
			Recurrence:  rng.Intn(3),
		})
		c := arch.NewMesh(4, 4, 4)
		if trial%2 == 1 {
			fs := fault.Random(rng, c, 1+rng.Intn(3))
			faulted, err := fs.Apply(c)
			if err != nil {
				t.Fatalf("trial %d: applying %s: %v", trial, fs, err)
			}
			c = faulted
		}
		if c.UsablePEs() == 0 {
			continue
		}

		pes, memRows := c.MIIResources()
		mii := d.MII(pes, memRows)
		// Phase 1 — Map's real escalation pattern: one shared placer, rolled
		// back after each failed II, stopping at the first success.
		p := newPlacer(d, c)
		succeededAt := -1
		for ii := mii; ii <= mii+6; ii++ {
			got, ref := comparePlacers(t, trial, ii, p, d, c)
			if got {
				succeededAt = ii
				break
			}
			_ = ref
		}
		// Phase 2 — the IIs Map never reaches, each with a fresh placer:
		// faulted fabrics at generous IIs walk different routing paths.
		start := mii
		if succeededAt >= 0 {
			start = succeededAt + 1
		}
		for ii := start; ii <= mii+6; ii++ {
			comparePlacers(t, trial, ii, newPlacer(d, c), d, c)
		}
	}
}

// comparePlacers runs one II attempt on both placers and fails the test on
// any observable divergence; it returns the shared ok verdict.
func comparePlacers(t *testing.T, trial, ii int, p *placer, d *dfg.DFG, c *arch.CGRA) (ok, refOK bool) {
	t.Helper()
	var gotStats, refStats Stats
	got := p.placeAtII(ii, &gotStats)
	ref := refPlaceAtII(d, c, ii, &refStats)
	if (got == nil) != (ref == nil) {
		t.Fatalf("trial %d ii %d: placer ok=%v, reference ok=%v",
			trial, ii, got != nil, ref != nil)
	}
	if gotStats != refStats {
		t.Fatalf("trial %d ii %d: stats %+v, reference %+v",
			trial, ii, gotStats, refStats)
	}
	if got == nil {
		return false, false
	}
	if gs, rs := got.String(), ref.String(); gs != rs {
		t.Fatalf("trial %d ii %d: mappings diverge\n--- placer ---\n%s\n--- reference ---\n%s",
			trial, ii, gs, rs)
	}
	return true, true
}

// The steady-state attempt loop must not grow the heap: after the first
// failures warm the arena, further attempts at the same II allocate only
// what escapes into a successful mapping.
func TestPlacerAttemptReuse(t *testing.T) {
	d := kernels.Random(7, kernels.RandomOptions{Ops: 14, MemFraction: 0.2})
	c := arch.NewMesh(4, 4, 4)
	p := newPlacer(d, c)
	var s Stats
	if p.placeAtII(1, &s) != nil {
		t.Skip("kernel unexpectedly maps at II=1; pick a harder seed")
	}
	n := testing.AllocsPerRun(20, func() {
		var s Stats
		if m := p.placeAtII(1, &s); m != nil {
			t.Fatal("II=1 attempt unexpectedly succeeded")
		}
	})
	if n > 2 {
		t.Fatalf("failed attempt allocates %.1f times per run after warm-up, want <=2", n)
	}
}
