// Package ems implements an EMS-style baseline (Park et al., PACT'08, as
// characterized in the REGIMap paper): an edge-centric greedy mapper.
// Operations are placed one at a time directly onto (PE, cycle) slots with
// routing as the primary concern — each dependence is realized immediately,
// through a neighbour's output register (one cycle), through the producer's
// register file (same PE, longer spans), or through a chain of explicit
// routing operations walked across the mesh one hop per cycle. There is no
// learning: when an operation cannot be placed, II is increased and the
// whole mapping retried, exactly the escalation behaviour the paper
// criticizes in exploratory mappers.
package ems

import (
	"context"
	"sort"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/obs"
)

// Failure taxonomy (regimap/internal/maperr), re-exported for callers:
// errors.Is(err, ems.ErrNoMapping), errors.Is(err, ems.ErrAborted), and
// errors.As with *ems.InvalidMappingError all work on Map's errors.
var (
	ErrNoMapping = maperr.ErrNoMapping
	ErrAborted   = maperr.ErrAborted
)

// InvalidMappingError reports a mapper-internal bug: a produced mapping that
// fails its own validation.
type InvalidMappingError = maperr.InvalidMappingError

// Options configures the mapper.
type Options struct {
	// MaxII caps II escalation (0: MII + 16).
	MaxII int
}

// Stats reports the outcome.
type Stats struct {
	MII        int
	II         int // achieved II (0 on failure)
	Placements int // operation placements attempted
	Routes     int // routing operations materialized
	Elapsed    time.Duration
}

// Perf returns MII/II, the paper's performance metric (0 on failure).
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Map greedily maps the kernel, escalating II on any placement failure. The
// returned mapping's DFG may contain extra Route operations.
//
// Cancelling ctx aborts the search at the next II-escalation boundary; the
// returned error wraps ctx.Err() when the abort was context-driven.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	tr := obs.From(ctx).Named("ems", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows)}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Placements))
	}
	if c.UsablePEs() == 0 {
		done()
		return nil, stats, maperr.NoMapping("ems: no mapping for %s on %s: every PE is broken", d.Name, c)
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 16
	}
	for ii := stats.MII; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			done()
			return nil, stats, maperr.Aborted(err, "ems: mapping %s aborted: %v", d.Name, err)
		}
		placements, routes := stats.Placements, stats.Routes
		sp := tr.Start("ems.place")
		m := placeAtII(d, c, ii, stats)
		sp.Field("ii", int64(ii))
		sp.Field("placements", int64(stats.Placements-placements))
		sp.Field("routes", int64(stats.Routes-routes))
		sp.FieldBool("ok", m != nil)
		sp.End()
		if m != nil {
			stats.II = ii
			done()
			if err := m.Validate(); err != nil {
				return nil, nil, &maperr.InvalidMappingError{Mapper: "ems", What: "mapping", Err: err}
			}
			return m, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "ems: mapping %s aborted: %v", d.Name, err)
	}
	return nil, stats, maperr.NoMapping("ems: no mapping for %s on %s up to II=%d", d.Name, c, maxII)
}

// placer is the working state of one greedy pass.
type placer struct {
	ds *dfg.DFG // working DFG; routing nodes are appended as they are walked
	c  *arch.CGRA
	ii int

	time, pe []int
	occupied map[[2]int]bool // (pe, slot)
	busUsed  map[[2]int]bool // (row, slot)
	pressure []int
}

// placeAtII runs one greedy pass at a fixed II.
func placeAtII(d *dfg.DFG, c *arch.CGRA, ii int, stats *Stats) *mapping.Mapping {
	p := &placer{
		ds:       d.Clone(),
		c:        c,
		ii:       ii,
		occupied: map[[2]int]bool{},
		busUsed:  map[[2]int]bool{},
		pressure: make([]int, c.NumPEs()),
	}
	p.time = make([]int, d.N())
	p.pe = make([]int, d.N())
	for i := range p.time {
		p.time[i] = -1
		p.pe[i] = -1
	}

	heights := d.Heights()
	order := make([]int, d.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if heights[order[i]] != heights[order[j]] {
			return heights[order[i]] > heights[order[j]]
		}
		return order[i] < order[j]
	})

	for _, v := range order {
		stats.Placements++
		if !p.placeOp(v, stats) {
			return nil
		}
	}

	m := mapping.New(p.ds, c, ii)
	copy(m.Time, p.time)
	copy(m.PE, p.pe)
	if m.Validate() != nil {
		// Two greedily-committed route chains can collide; with no repair
		// strategy that is an ordinary failure of this II.
		return nil
	}
	return m
}

// placeOp finds the cheapest feasible slot for v and commits it together
// with any routing chains its dependences need.
func (p *placer) placeOp(v int, stats *Stats) bool {
	early := 0
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v || p.time[e.From] < 0 {
			continue
		}
		if lo := p.time[e.From] + 1 - p.ii*e.Dist; lo > early {
			early = lo
		}
	}
	type plan struct {
		pe, t  int
		cost   int
		chains [][]int // route-PE chains per edge needing them
		edges  []int   // the edge index each chain serves
	}
	var best *plan
	for t := early; t < early+p.ii; t++ {
		for pe := 0; pe < p.c.NumPEs(); pe++ {
			if !p.c.Supports(pe, p.ds.Nodes[v].Kind) || p.slotBusy(pe, t, p.ds.Nodes[v].Kind) {
				continue
			}
			cost, chains, edges, ok := p.tryPosition(v, pe, t)
			if !ok {
				continue
			}
			if best == nil || cost < best.cost {
				best = &plan{pe: pe, t: t, cost: cost, chains: chains, edges: edges}
			}
		}
	}
	if best == nil {
		return false
	}
	p.commit(v, best.pe, best.t)
	for i, chain := range best.chains {
		p.materializeChain(best.edges[i], chain, stats)
	}
	p.recomputePressure()
	for pe, used := range p.pressure {
		if used > p.c.RegsAt(pe) {
			return false // over budget with no repair strategy: escalate II
		}
	}
	return true
}

func (p *placer) slotBusy(pe, t int, kind dfg.OpKind) bool {
	if p.occupied[[2]int{pe, mod(t, p.ii)}] {
		return true
	}
	if !kind.IsMem() {
		return false
	}
	row := p.c.RowOf(pe)
	return !p.c.RowBusOK(row) || p.busUsed[[2]int{row, mod(t, p.ii)}]
}

func (p *placer) commit(v, pe, t int) {
	p.time[v] = t
	p.pe[v] = pe
	p.occupied[[2]int{pe, mod(t, p.ii)}] = true
	if p.ds.Nodes[v].Kind.IsMem() {
		p.busUsed[[2]int{p.c.RowOf(pe), mod(t, p.ii)}] = true
	}
}

// tryPosition checks v at (pe, t) against every placed neighbour, returning
// the routing cost and the route chains to materialize.
func (p *placer) tryPosition(v, pe, t int) (cost int, chains [][]int, edges []int, ok bool) {
	check := func(ei int, prodOp, prodPE, prodT, consPE, consT, dist int) bool {
		span := consT - prodT + p.ii*dist
		switch {
		case span < 1:
			return false
		case span == 1:
			if !p.c.Connected(prodPE, consPE) {
				return false
			}
			if prodPE != consPE {
				cost++
			}
			return true
		case prodPE == consPE:
			regs := (span + p.ii - 1) / p.ii
			if p.pressure[prodPE]+regs > p.c.RegsAt(prodPE) {
				return false
			}
			cost += 2 * regs
			return true
		case dist > 0:
			// An inter-iteration value cannot be walked hop-by-hop (the
			// chain's first hop would itself span iterations): same PE only.
			return false
		default:
			chain := p.routeChain(prodPE, prodT, consPE, span)
			if chain == nil {
				return false
			}
			cost += 2 * len(chain)
			chains = append(chains, chain)
			edges = append(edges, ei)
			return true
		}
	}
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v {
			if spanSelf := p.ii * e.Dist; spanSelf > 1 {
				regs := (spanSelf + p.ii - 1) / p.ii
				if p.pressure[pe]+regs > p.c.RegsAt(pe) {
					return 0, nil, nil, false
				}
				cost += 2 * regs
			}
			continue
		}
		if p.time[e.From] < 0 {
			continue
		}
		if !check(ei, e.From, p.pe[e.From], p.time[e.From], pe, t, e.Dist) {
			return 0, nil, nil, false
		}
	}
	for _, ei := range p.ds.OutEdges(v) {
		e := p.ds.Edges[ei]
		if e.To == v || p.time[e.To] < 0 {
			continue
		}
		if !check(ei, v, pe, t, p.pe[e.To], p.time[e.To], e.Dist) {
			return 0, nil, nil, false
		}
	}
	return cost, chains, edges, true
}

// routeChain walks the value from the producer's PE to a PE adjacent to the
// consumer in exactly span cycles: one route operation per cycle, each on a
// PE adjacent to (or equal to) the previous one, each needing a free slot.
// It returns the PE sequence of the span-1 route operations, or nil.
func (p *placer) routeChain(fromPE, fromT, toPE, span int) []int {
	type state struct {
		pe, k int
	}
	prev := map[state]state{}
	seen := map[state]bool{}
	frontier := []state{{fromPE, 0}}
	seen[state{fromPE, 0}] = true
	for len(frontier) > 0 {
		var next []state
		for _, cur := range frontier {
			if cur.k == span-1 {
				if p.c.Connected(cur.pe, toPE) {
					// Reconstruct the chain pe_1..pe_{span-1}.
					chain := make([]int, 0, span-1)
					for at := cur; at.k > 0; at = prev[at] {
						chain = append(chain, at.pe)
					}
					for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
						chain[i], chain[j] = chain[j], chain[i]
					}
					return chain
				}
				continue
			}
			cands := append([]int{cur.pe}, p.c.Neighbors(cur.pe)...)
			for _, q := range cands {
				ns := state{q, cur.k + 1}
				if seen[ns] || !p.c.Supports(q, dfg.Route) || p.slotBusy(q, fromT+ns.k, dfg.Route) {
					continue
				}
				seen[ns] = true
				prev[ns] = cur
				next = append(next, ns)
			}
		}
		frontier = next
	}
	return nil
}

// materializeChain appends the route operations of one chain to the working
// DFG and commits their placements. The chain PEs execute at consecutive
// cycles after the producer.
func (p *placer) materializeChain(ei int, chain []int, stats *Stats) {
	e := p.ds.Edges[ei]
	prodT := p.time[e.From]
	node := e.From
	for k, pe := range chain {
		rt := p.ds.InsertRoute(p.edgeIndexFrom(node, e.To, e.Port))
		p.time = append(p.time, 0)
		p.pe = append(p.pe, 0)
		p.time[rt] = prodT + k + 1
		p.pe[rt] = pe
		p.occupied[[2]int{pe, mod(prodT+k+1, p.ii)}] = true
		stats.Routes++
		node = rt
	}
}

// edgeIndexFrom finds the current index of the edge node->to feeding the
// given port (indices shift as routes are inserted).
func (p *placer) edgeIndexFrom(node, to, port int) int {
	for _, ei := range p.ds.OutEdges(node) {
		e := p.ds.Edges[ei]
		if e.To == to && e.Port == port {
			return ei
		}
	}
	panic("ems: lost track of an edge while routing")
}

// recomputePressure refreshes the per-PE register demand of the partial
// placement (producers charge ceil(maxCarriedSpan/II) on their PE).
func (p *placer) recomputePressure() {
	for i := range p.pressure {
		p.pressure[i] = 0
	}
	for v := range p.ds.Nodes {
		if v >= len(p.time) || p.time[v] < 0 {
			continue
		}
		maxSpan := 0
		for _, ei := range p.ds.OutEdges(v) {
			e := p.ds.Edges[ei]
			var span int
			if e.To == v {
				span = p.ii * e.Dist
			} else {
				if e.To >= len(p.time) || p.time[e.To] < 0 {
					continue
				}
				span = p.time[e.To] - p.time[v] + p.ii*e.Dist
			}
			if span > 1 && span > maxSpan {
				maxSpan = span
			}
		}
		if maxSpan > 1 {
			p.pressure[p.pe[v]] += (maxSpan + p.ii - 1) / p.ii
		}
	}
}

func mod(a, m int) int { return ((a % m) + m) % m }
