// Package ems implements an EMS-style baseline (Park et al., PACT'08, as
// characterized in the REGIMap paper): an edge-centric greedy mapper.
// Operations are placed one at a time directly onto (PE, cycle) slots with
// routing as the primary concern — each dependence is realized immediately,
// through a neighbour's output register (one cycle), through the producer's
// register file (same PE, longer spans), or through a chain of explicit
// routing operations walked across the mesh one hop per cycle. There is no
// learning: when an operation cannot be placed, II is increased and the
// whole mapping retried, exactly the escalation behaviour the paper
// criticizes in exploratory mappers.
//
// The placer is arena-style (DESIGN.md section 8h): one working DFG clone is
// journaled and rolled back across II attempts instead of re-cloned, slot
// occupancy lives in flat bitsets, the route BFS runs over epoch-stamped
// arrays, and register pressure is maintained incrementally. Every decision
// is made in the same order as the straightforward map-based placer it
// replaced (kept as the reference in ref_test.go), so mappings are
// byte-identical — the golden suite pins this.
package ems

import (
	"context"
	"sort"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/graph"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/obs"
)

// Failure taxonomy (regimap/internal/maperr), re-exported for callers:
// errors.Is(err, ems.ErrNoMapping), errors.Is(err, ems.ErrAborted), and
// errors.As with *ems.InvalidMappingError all work on Map's errors.
var (
	ErrNoMapping = maperr.ErrNoMapping
	ErrAborted   = maperr.ErrAborted
)

// InvalidMappingError reports a mapper-internal bug: a produced mapping that
// fails its own validation.
type InvalidMappingError = maperr.InvalidMappingError

// Options configures the mapper.
type Options struct {
	// MaxII caps II escalation (0: MII + 16).
	MaxII int
}

// Stats reports the outcome.
type Stats struct {
	MII        int
	II         int // achieved II (0 on failure)
	Placements int // operation placements attempted
	Routes     int // routing operations materialized
	Elapsed    time.Duration
}

// Perf returns MII/II, the paper's performance metric (0 on failure).
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Map greedily maps the kernel, escalating II on any placement failure. The
// returned mapping's DFG may contain extra Route operations.
//
// Cancelling ctx aborts the search at the next II-escalation boundary; the
// returned error wraps ctx.Err() when the abort was context-driven.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	tr := obs.From(ctx).Named("ems", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows)}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Placements))
	}
	if c.UsablePEs() == 0 {
		done()
		return nil, stats, maperr.NoMapping("ems: no mapping for %s on %s: every PE is broken", d.Name, c)
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 16
	}
	p := newPlacer(d, c)
	for ii := stats.MII; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			done()
			return nil, stats, maperr.Aborted(err, "ems: mapping %s aborted: %v", d.Name, err)
		}
		placements, routes := stats.Placements, stats.Routes
		sp := tr.Start("ems.place")
		m := p.placeAtII(ii, stats)
		sp.Field("ii", int64(ii))
		sp.Field("placements", int64(stats.Placements-placements))
		sp.Field("routes", int64(stats.Routes-routes))
		sp.FieldBool("ok", m != nil)
		sp.End()
		if m != nil {
			stats.II = ii
			done()
			if err := m.Validate(); err != nil {
				return nil, nil, &maperr.InvalidMappingError{Mapper: "ems", What: "mapping", Err: err}
			}
			return m, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "ems: mapping %s aborted: %v", d.Name, err)
	}
	return nil, stats, maperr.NoMapping("ems: no mapping for %s on %s up to II=%d", d.Name, c, maxII)
}

// chainSet stores the route chains of one placement plan as slices of a
// shared buffer: chain i serves edge edges[i] and occupies
// buf[offs[i]:offs[i+1]]. tryPosition fills the placer's cur set; when a
// candidate becomes the new best the two sets swap, so a pass needs exactly
// two arenas however many positions it scores.
type chainSet struct {
	buf   []int
	offs  []int // len(edges)+1 boundaries, offs[0] == 0
	edges []int
}

func (s *chainSet) reset() {
	s.buf = s.buf[:0]
	s.offs = append(s.offs[:0], 0)
	s.edges = s.edges[:0]
}

// placer is the working state of one Map call, reused across II attempts:
// the DFG clone is journaled and rolled back instead of re-cloned, and every
// scratch structure keeps its capacity between attempts.
type placer struct {
	ds *dfg.DFG // working DFG; routing nodes are appended as they are walked
	c  *arch.CGRA
	ii int

	time, pe []int
	occupied graph.Bitset // PE slot (pe*ii + t mod ii) in use
	busUse   []int        // mem ops issued per bus-group slot (group*ii + t mod ii)

	// Register pressure, maintained incrementally: contrib[v] is the regs
	// producer v currently charges to PE pe[v] (ceil(maxCarriedSpan/II) when
	// its longest placed out-edge spans >1 cycles), pressure is the per-PE
	// sum. Placing v only changes the max span of v itself and of its placed
	// producers (route insertion rewrites only their out-edges), so placeOp
	// refreshes exactly those entries — the O(V·E) full recompute the
	// reference placer performs after every placement reduces to O(deg).
	pressure []int
	contrib  []int
	affected []int // scratch: producers whose contribution placeOp refreshes

	order     []int   // placement order: height-descending, stable
	kindCands [][]int // per-OpKind supporting PEs, ascending; lazily built
	routeOK   []bool  // Supports(pe, Route), cached for the BFS inner loop

	// Epoch-stamped BFS state for routeChain: slot k*NumPEs+pe covers search
	// state (pe, k); a slot is visited this call iff stamp[slot] == gen.
	stamp    []int32
	prevPE   []int32
	gen      int32
	frontier []int
	next     []int

	cur, best chainSet
}

func newPlacer(d *dfg.DFG, c *arch.CGRA) *placer {
	p := &placer{ds: d.Clone(), c: c}
	n := c.NumPEs()
	p.pressure = make([]int, n)
	p.routeOK = make([]bool, n)
	for pe := 0; pe < n; pe++ {
		p.routeOK[pe] = c.Supports(pe, dfg.Route)
	}

	heights := d.Heights()
	p.order = make([]int, d.N())
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(i, j int) bool {
		if heights[p.order[i]] != heights[p.order[j]] {
			return heights[p.order[i]] > heights[p.order[j]]
		}
		return p.order[i] < p.order[j]
	})
	return p
}

// candsFor returns the PEs supporting kind, ascending — the same PEs the
// reference placer's full 0..NumPEs scan would accept, without re-asking
// Supports per (t, pe) candidate.
func (p *placer) candsFor(kind dfg.OpKind) []int {
	ik := int(kind)
	if ik >= len(p.kindCands) {
		grown := make([][]int, ik+1)
		copy(grown, p.kindCands)
		p.kindCands = grown
	}
	if p.kindCands[ik] == nil {
		cands := make([]int, 0, p.c.NumPEs())
		for pe := 0; pe < p.c.NumPEs(); pe++ {
			if p.c.Supports(pe, kind) {
				cands = append(cands, pe)
			}
		}
		p.kindCands[ik] = cands
	}
	return p.kindCands[ik]
}

// resetInts returns s with length n and every element set to v, reusing the
// backing array when it is large enough.
func resetInts(s []int, n, v int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// placeAtII runs one greedy pass at a fixed II. On failure the working DFG
// is rolled back to the kernel, ready for the next attempt.
func (p *placer) placeAtII(ii int, stats *Stats) *mapping.Mapping {
	p.ii = ii
	mark := p.ds.Mark()
	n := p.ds.N()
	p.time = resetInts(p.time, n, -1)
	p.pe = resetInts(p.pe, n, -1)
	p.contrib = resetInts(p.contrib, n, 0)
	for i := range p.pressure {
		p.pressure[i] = 0
	}
	p.occupied.Grow(p.c.NumPEs() * ii)
	p.busUse = resetInts(p.busUse, p.c.NumBusGroups()*ii, 0)

	for _, v := range p.order {
		stats.Placements++
		if !p.placeOp(v, stats) {
			p.ds.Rollback(mark)
			return nil
		}
	}

	m := mapping.New(p.ds, p.c, ii)
	copy(m.Time, p.time)
	copy(m.PE, p.pe)
	if m.Validate() != nil {
		// Two greedily-committed route chains can collide; with no repair
		// strategy that is an ordinary failure of this II.
		p.ds.Rollback(mark)
		return nil
	}
	return m
}

// placeOp finds the cheapest feasible slot for v and commits it together
// with any routing chains its dependences need. Scan order (time ascending,
// then PE ascending, strict improvement only) fixes which of several
// equal-cost positions wins; it must not change.
func (p *placer) placeOp(v int, stats *Stats) bool {
	early := 0
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v || p.time[e.From] < 0 {
			continue
		}
		if lo := p.time[e.From] + 1 - p.ii*e.Dist; lo > early {
			early = lo
		}
	}
	kind := p.ds.Nodes[v].Kind
	cands := p.candsFor(kind)
	found := false
	var bestPE, bestT, bestCost int
	for t := early; t < early+p.ii; t++ {
		for _, pe := range cands {
			if p.slotBusy(pe, t, kind) {
				continue
			}
			cost, ok := p.tryPosition(v, pe, t)
			if !ok {
				continue
			}
			if !found || cost < bestCost {
				found = true
				bestPE, bestT, bestCost = pe, t, cost
				p.cur, p.best = p.best, p.cur
			}
		}
	}
	if !found {
		return false
	}
	// Producers of v placed so far: route insertion below rewrites their
	// out-edges, so their register contribution is refreshed afterwards.
	// Collected now because materializeChain re-points v's in-edges at the
	// inserted route nodes.
	p.affected = p.affected[:0]
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From != v && p.time[e.From] >= 0 {
			p.affected = append(p.affected, e.From)
		}
	}
	p.commit(v, bestPE, bestT)
	for i := range p.best.edges {
		chain := p.best.buf[p.best.offs[i]:p.best.offs[i+1]]
		p.materializeChain(p.best.edges[i], chain, stats)
	}
	p.updateContrib(v)
	for _, u := range p.affected {
		p.updateContrib(u)
	}
	for pe, used := range p.pressure {
		if used > p.c.RegsAt(pe) {
			return false // over budget with no repair strategy: escalate II
		}
	}
	return true
}

func (p *placer) modii(t int) int {
	s := t % p.ii
	if s < 0 {
		s += p.ii
	}
	return s
}

func (p *placer) slotBusy(pe, t int, kind dfg.OpKind) bool {
	slot := p.modii(t)
	if p.occupied.Has(pe*p.ii + slot) {
		return true
	}
	if !kind.IsMem() {
		return false
	}
	if !p.c.MemPEOk(pe) {
		return true
	}
	g := p.c.BusGroupOf(pe)
	return p.busUse[g*p.ii+slot] >= p.c.BusGroupCap(g)
}

func (p *placer) commit(v, pe, t int) {
	p.time[v] = t
	p.pe[v] = pe
	p.occupied.Set(pe*p.ii + p.modii(t))
	if p.ds.Nodes[v].Kind.IsMem() {
		p.busUse[p.c.BusGroupOf(pe)*p.ii+p.modii(t)]++
	}
}

// tryPosition checks v at (pe, t) against every placed neighbour, returning
// the routing cost; the route chains to materialize are left in p.cur.
func (p *placer) tryPosition(v, pe, t int) (cost int, ok bool) {
	p.cur.reset()
	check := func(ei int, prodPE, prodT, consPE, consT, dist int) bool {
		span := consT - prodT + p.ii*dist
		switch {
		case span < 1:
			return false
		case span == 1:
			if !p.c.Connected(prodPE, consPE) {
				return false
			}
			if prodPE != consPE {
				cost++
			}
			return true
		case prodPE == consPE:
			regs := (span + p.ii - 1) / p.ii
			if p.pressure[prodPE]+regs > p.c.RegsAt(prodPE) {
				return false
			}
			cost += 2 * regs
			return true
		case dist > 0:
			// An inter-iteration value cannot be walked hop-by-hop (the
			// chain's first hop would itself span iterations): same PE only.
			return false
		default:
			if !p.routeChain(ei, prodPE, prodT, consPE, span) {
				return false
			}
			cost += 2 * (span - 1)
			return true
		}
	}
	for _, ei := range p.ds.InEdges(v) {
		e := p.ds.Edges[ei]
		if e.From == v {
			if spanSelf := p.ii * e.Dist; spanSelf > 1 {
				regs := (spanSelf + p.ii - 1) / p.ii
				if p.pressure[pe]+regs > p.c.RegsAt(pe) {
					return 0, false
				}
				cost += 2 * regs
			}
			continue
		}
		if p.time[e.From] < 0 {
			continue
		}
		if !check(ei, p.pe[e.From], p.time[e.From], pe, t, e.Dist) {
			return 0, false
		}
	}
	for _, ei := range p.ds.OutEdges(v) {
		e := p.ds.Edges[ei]
		if e.To == v || p.time[e.To] < 0 {
			continue
		}
		if !check(ei, pe, t, p.pe[e.To], p.time[e.To], e.Dist) {
			return 0, false
		}
	}
	return cost, true
}

// routeChain walks the value from the producer's PE to a PE adjacent to the
// consumer in exactly span cycles: one route operation per cycle, each on a
// PE adjacent to (or equal to) the previous one, each needing a free slot.
// On success it appends the PE sequence of the span-1 route operations to
// p.cur and returns true.
//
// The search is the reference placer's level-synchronous BFS over (pe, k)
// states with maps replaced by epoch-stamped arrays: within a level, states
// expand in insertion order and each expands to itself first, then its
// neighbours in Neighbors order, so the first goal state found — and hence
// the chain — is identical.
func (p *placer) routeChain(ei, fromPE, fromT, toPE, span int) bool {
	n := p.c.NumPEs()
	if need := span * n; need > len(p.stamp) {
		p.stamp = make([]int32, need)
		p.prevPE = make([]int32, need)
		p.gen = 0
	}
	p.gen++
	gen := p.gen
	frontier := append(p.frontier[:0], fromPE)
	next := p.next[:0]
	p.stamp[fromPE] = gen // state (fromPE, 0)
	for k := 0; k < span-1; k++ {
		if len(frontier) == 0 {
			p.frontier, p.next = frontier, next
			return false
		}
		next = next[:0]
		row := (k + 1) * n
		slotT := fromT + k + 1
		for _, pe := range frontier {
			// Candidates: stay on pe, then hop to each neighbour.
			if p.stamp[row+pe] != gen && p.routeOK[pe] && !p.slotBusy(pe, slotT, dfg.Route) {
				p.stamp[row+pe] = gen
				p.prevPE[row+pe] = int32(pe)
				next = append(next, pe)
			}
			for _, q := range p.c.Neighbors(pe) {
				if p.stamp[row+q] != gen && p.routeOK[q] && !p.slotBusy(q, slotT, dfg.Route) {
					p.stamp[row+q] = gen
					p.prevPE[row+q] = int32(pe)
					next = append(next, q)
				}
			}
		}
		frontier, next = next, frontier
	}
	p.frontier, p.next = frontier, next
	for _, pe := range frontier {
		if p.c.Connected(pe, toPE) {
			// Reconstruct the chain pe_1..pe_{span-1} back-to-front.
			s := &p.cur
			base := len(s.buf)
			if want := base + span - 1; cap(s.buf) >= want {
				s.buf = s.buf[:want]
			} else {
				grown := make([]int, want, 2*want)
				copy(grown, s.buf)
				s.buf = grown
			}
			at := pe
			for k := span - 1; k > 0; k-- {
				s.buf[base+k-1] = at
				at = int(p.prevPE[k*n+at])
			}
			s.offs = append(s.offs, len(s.buf))
			s.edges = append(s.edges, ei)
			return true
		}
	}
	return false
}

// materializeChain appends the route operations of one chain to the working
// DFG and commits their placements. The chain PEs execute at consecutive
// cycles after the producer.
func (p *placer) materializeChain(ei int, chain []int, stats *Stats) {
	e := p.ds.Edges[ei]
	prodT := p.time[e.From]
	node, to, port := e.From, e.To, e.Port
	for k, pe := range chain {
		rt := p.ds.InsertRoute(p.edgeIndexFrom(node, to, port))
		p.time = append(p.time, prodT+k+1)
		p.pe = append(p.pe, pe)
		p.contrib = append(p.contrib, 0)
		p.occupied.Set(pe*p.ii + p.modii(prodT+k+1))
		stats.Routes++
		node = rt
	}
}

// edgeIndexFrom finds the current index of the edge node->to feeding the
// given port (indices shift as routes are inserted).
func (p *placer) edgeIndexFrom(node, to, port int) int {
	for _, ei := range p.ds.OutEdges(node) {
		e := p.ds.Edges[ei]
		if e.To == to && e.Port == port {
			return ei
		}
	}
	panic("ems: lost track of an edge while routing")
}

// updateContrib recomputes producer v's register contribution from its
// current out-edges — ceil(maxCarriedSpan/II) charged to its PE, exactly the
// per-node term of the reference placer's full pressure recompute — and
// applies the delta to the per-PE pressure.
func (p *placer) updateContrib(v int) {
	maxSpan := 0
	for _, ei := range p.ds.OutEdges(v) {
		e := p.ds.Edges[ei]
		var span int
		if e.To == v {
			span = p.ii * e.Dist
		} else {
			if p.time[e.To] < 0 {
				continue
			}
			span = p.time[e.To] - p.time[v] + p.ii*e.Dist
		}
		if span > 1 && span > maxSpan {
			maxSpan = span
		}
	}
	contrib := 0
	if maxSpan > 1 {
		contrib = (maxSpan + p.ii - 1) / p.ii
	}
	p.pressure[p.pe[v]] += contrib - p.contrib[v]
	p.contrib[v] = contrib
}
