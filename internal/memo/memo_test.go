package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func keyOf(parts ...string) Key {
	h := NewHasher("test/v1")
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

func TestHasherCanonical(t *testing.T) {
	if keyOf("a", "b") != keyOf("a", "b") {
		t.Fatal("identical component sequences produced different keys")
	}
	cases := map[string]Key{
		`["a","b"]`:  keyOf("a", "b"),
		`["ab"]`:     keyOf("ab"),
		`["a b"]`:    keyOf("a b"),
		`["b","a"]`:  keyOf("b", "a"),
		`["a","b"]x`: NewHasher("test/v2").Str("a").Str("b").Sum(),
		`ints`:       NewHasher("test/v1").Int(1).Int(2).Sum(),
		`bytes`:      NewHasher("test/v1").Bytes([]byte{1, 2}).Sum(),
	}
	seen := map[Key]string{}
	for label, k := range cases {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[k] = label
	}
	if len(keyOf("a").String()) != 64 {
		t.Fatal("hex key is not 64 chars")
	}
}

func TestDoCachesValues(t *testing.T) {
	c := New(8, 4)
	calls := 0
	fn := func() (any, error) { calls++; return "answer", nil }
	v, out, err := c.Do(context.Background(), keyOf("q"), fn, nil)
	if v != "answer" || out != Miss || err != nil {
		t.Fatalf("first Do = %v, %v, %v", v, out, err)
	}
	v, out, err = c.Do(context.Background(), keyOf("q"), fn, nil)
	if v != "answer" || out != Hit || err != nil {
		t.Fatalf("second Do = %v, %v, %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDoCachesDeterministicErrors(t *testing.T) {
	sentinel := errors.New("no mapping")
	other := errors.New("aborted")
	c := New(8, 1)
	calls := 0
	cacheable := func(err error) bool { return errors.Is(err, sentinel) }

	fn := func() (any, error) { calls++; return nil, sentinel }
	if _, out, err := c.Do(context.Background(), keyOf("nomap"), fn, cacheable); out != Miss || !errors.Is(err, sentinel) {
		t.Fatalf("first = %v, %v", out, err)
	}
	if _, out, err := c.Do(context.Background(), keyOf("nomap"), fn, cacheable); out != Hit || !errors.Is(err, sentinel) {
		t.Fatalf("second = %v, %v", out, err)
	}
	if calls != 1 {
		t.Fatalf("deterministic failure recomputed: %d calls", calls)
	}

	calls = 0
	fn = func() (any, error) { calls++; return nil, other }
	c.Do(context.Background(), keyOf("abort"), fn, cacheable)
	c.Do(context.Background(), keyOf("abort"), fn, cacheable)
	if calls != 2 {
		t.Fatalf("non-cacheable failure was cached: %d calls", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 1) // single shard, two entries
	mk := func(i int) func() (any, error) {
		return func() (any, error) { return i, nil }
	}
	ctx := context.Background()
	c.Do(ctx, keyOf("a"), mk(1), nil)
	c.Do(ctx, keyOf("b"), mk(2), nil)
	c.Do(ctx, keyOf("a"), mk(1), nil) // touch a: b becomes LRU
	c.Do(ctx, keyOf("c"), mk(3), nil) // evicts b
	if _, out, _ := c.Do(ctx, keyOf("a"), mk(99), nil); out != Hit {
		t.Fatal("recently-used entry was evicted")
	}
	if v, out, _ := c.Do(ctx, keyOf("b"), mk(99), nil); out != Miss || v != 99 {
		t.Fatalf("LRU entry not evicted: %v, %v", v, out)
	}
	st := c.Stats()
	if st.Evictions != 2 { // b evicted by c, then a or c evicted by b's recompute
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestSingleflightCollapses(t *testing.T) {
	c := New(8, 4)
	const n = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	fn := func() (any, error) {
		calls.Add(1)
		<-gate
		return "v", nil
	}
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), keyOf("herd"), fn, nil)
			if v != "v" || err != nil {
				t.Errorf("caller %d: %v, %v", i, v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let the herd pile up on the leader, then release it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under the herd", got)
	}
	misses := 0
	for _, o := range outcomes {
		if o == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Collapsed != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+collapses", st, n-1)
	}
}

func TestCollapsedWaiterHonoursOwnDeadline(t *testing.T) {
	c := New(8, 1)
	gate := make(chan struct{})
	defer close(gate)
	leaderStarted := make(chan struct{})
	go c.Do(context.Background(), keyOf("slow"), func() (any, error) {
		close(leaderStarted)
		<-gate
		return "v", nil
	}, nil)
	<-leaderStarted
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, out, err := c.Do(ctx, keyOf("slow"), func() (any, error) {
		t.Error("follower ran the compute function")
		return nil, nil
	}, nil)
	if out != Collapsed || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower = %v, %v; want collapsed deadline error", out, err)
	}
}

func TestFollowerRetriesAfterNonCacheableLeaderFailure(t *testing.T) {
	c := New(8, 1)
	boom := errors.New("leader aborted")
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var followerCalls atomic.Int64

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, out, err := c.Do(context.Background(), keyOf("retry"), func() (any, error) {
			close(leaderIn)
			<-leaderGo
			return nil, boom
		}, nil)
		if out != Miss || !errors.Is(err, boom) {
			t.Errorf("leader = %v, %v", out, err)
		}
	}()
	<-leaderIn
	go func() {
		defer wg.Done()
		v, out, err := c.Do(context.Background(), keyOf("retry"), func() (any, error) {
			followerCalls.Add(1)
			return "recovered", nil
		}, nil)
		if v != "recovered" || out != Miss || err != nil {
			t.Errorf("follower = %v, %v, %v", v, out, err)
		}
	}()
	// Give the follower time to park on the leader's flight, then fail the
	// leader; the follower must retry and succeed on its own.
	time.Sleep(20 * time.Millisecond)
	close(leaderGo)
	wg.Wait()
	if followerCalls.Load() != 1 {
		t.Fatalf("follower computed %d times, want 1", followerCalls.Load())
	}
}

func TestShardedConcurrentMixedKeys(t *testing.T) {
	c := New(64, 8)
	var wg sync.WaitGroup
	var computes atomic.Int64
	const keys, callers = 16, 8
	for k := 0; k < keys; k++ {
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				key := keyOf(fmt.Sprintf("k%d", k))
				v, _, err := c.Do(context.Background(), key, func() (any, error) {
					computes.Add(1)
					time.Sleep(time.Millisecond)
					return k, nil
				}, nil)
				if err != nil || v != k {
					t.Errorf("key %d: %v, %v", k, v, err)
				}
			}(k)
		}
	}
	wg.Wait()
	if got := computes.Load(); got != keys {
		t.Fatalf("%d computes for %d keys", got, keys)
	}
	if st := c.Stats(); st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
}

// TestLeaderPanicReleasesFollowers: a panicking leader must retire its flight
// — propagating the panic to its own caller while every collapsed follower
// unblocks and retries instead of waiting forever on an abandoned channel.
func TestLeaderPanicReleasesFollowers(t *testing.T) {
	c := New(8, 1)
	k := keyOf("detonator")
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Do(context.Background(), k, func() (any, error) {
			close(leaderIn)
			<-release
			panic("leader detonated")
		}, nil)
	}()
	<-leaderIn

	const followers = 4
	var wg sync.WaitGroup
	var computes atomic.Int64
	results := make([]any, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), k, func() (any, error) {
				// Only post-panic retries land here; they must not panic again.
				computes.Add(1)
				return "recovered", nil
			}, nil)
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Give the followers time to join the doomed flight, then detonate.
	time.Sleep(10 * time.Millisecond)
	close(release)

	if v := <-panicked; v != "leader detonated" {
		t.Fatalf("leader recovered %v, want its own panic", v)
	}
	wg.Wait()
	for i, v := range results {
		if v != "recovered" {
			t.Fatalf("follower %d got %v", i, v)
		}
	}
	if got := computes.Load(); got < 1 {
		t.Fatal("no follower retried after the leader panic")
	}
	// The panic result must not have been cached.
	v, outcome, err := c.Do(context.Background(), k, func() (any, error) {
		return "recovered", nil
	}, nil)
	if err != nil || v != "recovered" || outcome != Hit {
		t.Fatalf("post-panic state: v=%v outcome=%v err=%v (want the followers' retry cached)", v, outcome, err)
	}
}

// TestFollowerCancellationLeavesFlightIntact: a follower whose own context
// expires abandons the wait with its ctx error while the leader's result
// still lands in the cache for everyone else.
func TestFollowerCancellationLeavesFlightIntact(t *testing.T) {
	c := New(8, 1)
	k := keyOf("slow-leader")
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), k, func() (any, error) {
			close(leaderIn)
			<-release
			return "answer", nil
		}, nil)
		done <- err
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, k, func() (any, error) {
			t.Error("cancelled follower became leader of a live flight")
			return nil, nil
		}, nil)
		followerErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("leader: %v", err)
	}
	v, outcome, err := c.Do(context.Background(), k, nil, nil)
	if err != nil || v != "answer" || outcome != Hit {
		t.Fatalf("leader result lost: v=%v outcome=%v err=%v", v, outcome, err)
	}
}
