// Package memo is the content-addressed result cache behind regimapd's
// serving layer. A mapping query is identified by a canonical fingerprint
// over everything that determines its answer — the kernel graph
// (dfg.Fingerprint), the array configuration including faults
// (arch.Fingerprint), the fault-set text, the engine name, and the
// engine-independent options — and the cache guarantees that under any
// interleaving of concurrent identical queries, the mapping work runs once:
//
//   - a sharded LRU holds completed results (values or cacheable errors), so
//     repeated queries cost a map lookup, and
//   - per-key singleflight collapses duplicate in-flight queries onto the
//     one goroutine already computing the answer, so a thundering herd of N
//     identical requests costs one mapping and N-1 waits.
//
// Soundness rests on two properties the fingerprints provide: equal keys
// imply equal inputs (the hashes are injective over the fields that reach
// the mappers), and every mapper is deterministic given its inputs — so a
// cached result is byte-identical to what recomputing would produce. See
// DESIGN.md section 8f.
package memo

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sync"
	"sync/atomic"
)

// Key is a canonical request fingerprint. Build one with Hasher.
type Key [sha256.Size]byte

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates request components into a Key. Components are
// length-prefixed, so no two distinct component sequences produce the same
// key by concatenation.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key over the given scheme tag (e.g. "regimapd/v1").
// Bump the tag whenever the component sequence changes meaning.
func NewHasher(scheme string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(scheme)
	return h
}

// Int appends one integer component.
func (h *Hasher) Int(v int64) *Hasher {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.h.Write(buf[:])
	return h
}

// Str appends one string component, length-prefixed.
func (h *Hasher) Str(s string) *Hasher {
	h.Int(int64(len(s)))
	io.WriteString(h.h, s)
	return h
}

// Bytes appends one byte-slice component, length-prefixed.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.Int(int64(len(b)))
	h.h.Write(b)
	return h
}

// Sum finalizes the key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Outcome says how a Do call was satisfied.
type Outcome int

const (
	// Miss: this call ran the compute function.
	Miss Outcome = iota
	// Hit: the result was already cached.
	Hit
	// Collapsed: an identical query was already in flight; this call waited
	// for it instead of recomputing.
	Collapsed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	default:
		return "outcome(?)"
	}
}

// Stats is a snapshot of the cache counters. Hits counts pure cache reads;
// Collapsed counts waits on an in-flight leader (also "free" — no mapping
// ran); Misses counts executions of the compute function.
type Stats struct {
	Hits, Misses, Collapsed, Evictions int64
	Entries                            int
}

// Cache is a sharded LRU of completed results with per-key singleflight.
// Safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64

	hits, misses, collapsed, evictions atomic.Int64
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done      chan struct{}
	val       any
	err       error
	cacheable bool
}

// entry is one completed, cacheable result.
type entry struct {
	key        Key
	val        any
	err        error
	prev, next *entry // LRU list, most recent at head.next
}

type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*entry
	inflight map[Key]*flight
	head     entry // sentinel ring: head.next = most recent
}

// New returns a cache holding up to capacity completed results across the
// given number of shards (rounded up to a power of two; at least 1). Each
// shard holds capacity/shards entries, at least one, so the effective
// capacity is never below the requested value.
func New(capacity, shards int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < shards {
		n *= 2
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = per
		s.entries = make(map[Key]*entry)
		s.inflight = make(map[Key]*flight)
		s.head.prev, s.head.next = &s.head, &s.head
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&c.mask]
}

// Do returns the result for key k, computing it with fn at most once across
// all concurrent callers:
//
//   - cached: the entry is returned immediately (Hit);
//   - in flight: the caller waits for the leader and shares its result
//     (Collapsed), unless the caller's own ctx expires first;
//   - otherwise this caller leads: it runs fn, publishes the result to every
//     waiter, and caches it when err is nil or cacheable(err) says the error
//     is deterministic (ErrNoMapping is; a deadline abort is not).
//
// When a leader fails non-cacheably, collapsed waiters retry from the top —
// at most once each as leader — so one aborted request cannot poison
// followers that still have deadline budget left.
func (c *Cache) Do(ctx context.Context, k Key, fn func() (any, error), cacheable func(error) bool) (any, Outcome, error) {
	s := c.shardFor(k)
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok {
			s.touch(e)
			s.mu.Unlock()
			c.hits.Add(1)
			return e.val, Hit, e.err
		}
		if f, ok := s.inflight[k]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Collapsed, ctx.Err()
			}
			if f.cacheable {
				c.collapsed.Add(1)
				return f.val, Collapsed, f.err
			}
			// The leader failed with a non-deterministic error (abort,
			// panic, shed); it says nothing about what this caller would
			// get. Retry: become leader or join a newer flight.
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[k] = f
		s.mu.Unlock()

		val, err := c.lead(s, k, f, fn, cacheable)
		return val, Miss, err
	}
}

// lead runs the compute function as the flight's leader and publishes the
// result to every waiter. The publish is deferred so it happens even when fn
// panics: the flight is retired non-cacheable (followers retry from the top
// instead of blocking forever on a done channel nobody will close) and the
// panic propagates to the leader's caller, whose recovery owns it.
func (c *Cache) lead(s *shard, k Key, f *flight, fn func() (any, error), cacheable func(error) bool) (val any, err error) {
	defer func() {
		s.mu.Lock()
		delete(s.inflight, k)
		if f.cacheable {
			c.evictions.Add(s.insert(k, f.val, f.err))
		}
		s.mu.Unlock()
		close(f.done)
		c.misses.Add(1)
	}()
	val, err = fn()
	f.val, f.err = val, err
	f.cacheable = err == nil || (cacheable != nil && cacheable(err))
	return val, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// --- intrusive LRU (callers hold the shard lock) -----------------------------

func (s *shard) touch(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	s.pushFront(e)
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
}

// insert adds a completed result, evicting from the tail when over capacity.
// It returns the number of evictions.
func (s *shard) insert(k Key, val any, err error) int64 {
	if e, ok := s.entries[k]; ok {
		e.val, e.err = val, err
		s.touch(e)
		return 0
	}
	e := &entry{key: k, val: val, err: err}
	s.entries[k] = e
	s.pushFront(e)
	var evicted int64
	for len(s.entries) > s.capacity {
		last := s.head.prev
		last.prev.next = &s.head
		s.head.prev = last.prev
		delete(s.entries, last.key)
		evicted++
	}
	return evicted
}
