// Package profiling wires the -cpuprofile/-memprofile flags of the CLIs to
// runtime/pprof, so the mapper's hot path (clique search, compat rebuilds)
// stays inspectable: `regimap -kernel fft_radix2 -cpuprofile cpu.out` then
// `go tool pprof cpu.out`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges a heap
// profile at memPath (when non-empty). The returned stop function is
// idempotent and must run before the process exits — including error exits,
// so callers route os.Exit paths through it.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			runtime.GC() // capture live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
			f.Close()
		}
	}, nil
}
