// Package version derives a human-readable build identity from the
// information the Go toolchain embeds in every binary, so the commands can
// answer -version without a build-time ldflags dance.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String returns "module version (vcs-revision, go version)", degrading
// gracefully when pieces are missing (e.g. a non-module or test build).
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", bi.Main.Path, ver)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (%s%s)", rev, dirty)
	}
	fmt.Fprintf(&b, " %s", bi.GoVersion)
	return b.String()
}
