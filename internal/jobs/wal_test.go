package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func mkJob(id string, state State) *Job {
	return &Job{ID: id, Request: []byte(`{"kernel":"fir8"}`), Requested: "regimap", Engine: "regimap", State: state}
}

// TestWALRoundTrip: appended records come back on reopen, last state wins.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, jobs, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh WAL recovered %d jobs", len(jobs))
	}
	a := mkJob("j-00000001", StateQueued)
	b := mkJob("j-00000002", StateQueued)
	for _, j := range []*Job{a, b} {
		if err := w.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	// Progress job a to done; the new record supersedes the old one.
	a.State = StateDone
	a.Result = []byte(`{"ii":2}`)
	if err := w.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, jobs, err = OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j-00000001" || jobs[0].State != StateDone || !bytes.Equal(jobs[0].Result, a.Result) {
		t.Fatalf("job a recovered as %+v", jobs[0])
	}
	if jobs[1].ID != "j-00000002" || jobs[1].State != StateQueued {
		t.Fatalf("job b recovered as %+v", jobs[1])
	}
}

// TestWALTornTail: a partial final line — the kill -9 signature — is dropped
// on open and every fully synced record before it survives.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(mkJob("j-00000001", StateQueued)); err != nil {
		t.Fatal(err)
	}
	w.Kill()

	// Simulate a write torn mid-record: valid prefix, no trailing newline.
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j-00000002","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, jobs, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-00000001" {
		t.Fatalf("recovered %+v, want only j-00000001", jobs)
	}
	// The torn tail must be gone: a fresh append then reopen yields clean state.
	if err := w2.Append(mkJob("j-00000003", StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, jobs, err = OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[1].ID != "j-00000003" {
		t.Fatalf("after torn-tail truncation recovered %+v", jobs)
	}
}

// TestWALCompaction: compaction folds the log into a snapshot, truncates the
// WAL, and the crash window between the two — snapshot published, old records
// still in the log — recovers identically because replay is an upsert.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := mkJob("j-00000001", StateDone)
	b := mkJob("j-00000002", StateQueued)
	for _, j := range []*Job{a, b} {
		if err := w.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	if !w.ShouldCompact(2) {
		t.Fatal("2 appends with every=2 should want compaction")
	}
	if err := w.Compact([]*Job{a, b}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, walFile)); err != nil || st.Size() != 0 {
		t.Fatalf("wal not truncated after compaction: %v %d", err, st.Size())
	}

	// The crash window: a record that is already inside the snapshot gets
	// appended again (as if truncation had been lost). Replay must converge
	// to the same state.
	if err := w.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, jobs, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].State != StateDone || jobs[1].State != StateQueued {
		t.Fatalf("post-compaction recovery = %+v", jobs)
	}
}

// TestWALKill: a killed WAL refuses everything, so a recovering process can
// safely take over the directory.
func TestWALKill(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Kill()
	if err := w.Append(mkJob("j-00000001", StateQueued)); err == nil {
		t.Fatal("append after Kill succeeded")
	}
	if err := w.Compact(nil); err == nil {
		t.Fatal("compact after Kill succeeded")
	}
	if w.ShouldCompact(1) {
		t.Fatal("killed WAL wants compaction")
	}
}
