package jobs

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(cfg, clk.now), clk
}

// rec admits one call and records its outcome, failing the test if the
// breaker refuses the admission.
func rec(t *testing.T, b *Breaker, failed bool, d time.Duration) (tripped bool) {
	t.Helper()
	token, ok := b.Allow()
	if !ok {
		t.Fatal("breaker refused a call the test expected admitted")
	}
	return b.Record(token, failed, d)
}

// refused reports whether Allow turns the call away.
func refused(b *Breaker) bool {
	_, ok := b.Allow()
	return !ok
}

// TestBreakerTripsOnConsecutiveFailures: the circuit opens at the threshold,
// and a success along the way resets the count.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 3})
	rec(t, b, true, 0)
	rec(t, b, true, 0)
	rec(t, b, false, 0) // success resets the streak
	rec(t, b, true, 0)
	rec(t, b, true, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if tripped := rec(t, b, true, 0); !tripped {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.State() != BreakerOpen || !refused(b) {
		t.Fatalf("state = %v, want open and refusing", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is let
// through; its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	rec(t, b, true, 0)
	if !refused(b) {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	clk.advance(time.Second)
	probe, ok := b.Allow()
	if !ok {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}
	if !refused(b) {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: straight back to open, counting a new trip.
	if tripped := b.Record(probe, true, 0); !tripped {
		t.Fatal("failed probe did not re-trip")
	}
	if !refused(b) {
		t.Fatal("re-opened breaker allowed a call")
	}

	clk.advance(time.Second)
	probe, ok = b.Allow()
	if !ok {
		t.Fatal("second probe refused")
	}
	b.Record(probe, false, 0) // probe succeeds
	if b.State() != BreakerClosed || refused(b) {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

// TestBreakerLatencyTrip: consecutive over-budget calls trip the circuit even
// when every call succeeds.
func TestBreakerLatencyTrip(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 10, Latency: 100 * time.Millisecond, SlowCalls: 2})
	rec(t, b, false, 200*time.Millisecond)
	rec(t, b, false, 50*time.Millisecond) // fast call resets the slow streak
	rec(t, b, false, 200*time.Millisecond)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if tripped := rec(t, b, false, 200*time.Millisecond); !tripped {
		t.Fatal("second consecutive slow call did not trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}

// TestBreakerStaleSuccessCannotCloseOpenCircuit: with several workers on one
// engine, a call that was admitted before the trip can complete after it. Its
// success must not close the open circuit behind the cooldown's back.
func TestBreakerStaleSuccessCannotCloseOpenCircuit(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	stale, ok := b.Allow() // long-running call admitted while closed
	if !ok {
		t.Fatal("closed breaker refused a call")
	}
	rec(t, b, true, 0) // a concurrent call fails and trips the circuit
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Record(stale, false, 0) {
		t.Fatal("stale record reported a trip")
	}
	if b.State() != BreakerOpen {
		t.Fatal("stale pre-trip success closed an open breaker")
	}
	if !refused(b) {
		t.Fatal("cooldown bypassed after stale success")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

// TestBreakerStaleRecordKeepsProbeSlot: a stale pre-trip completion arriving
// during the half-open probe must not free the single probe slot — only the
// probe itself may resolve half-open.
func TestBreakerStaleRecordKeepsProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	stale, ok := b.Allow() // in-flight call from before the trip
	if !ok {
		t.Fatal("closed breaker refused a call")
	}
	rec(t, b, true, 0) // trip
	clk.advance(time.Second)
	probe, ok := b.Allow()
	if !ok {
		t.Fatal("probe refused after cooldown")
	}
	b.Record(stale, false, 0) // stale completion lands mid-probe
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if !refused(b) {
		t.Fatal("stale record freed the half-open probe slot")
	}
	// The real probe still resolves the state.
	b.Record(probe, false, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}
