package jobs

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(cfg, clk.now), clk
}

// TestBreakerTripsOnConsecutiveFailures: the circuit opens at the threshold,
// and a success along the way resets the count.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 3})
	b.Record(true, 0)
	b.Record(true, 0)
	b.Record(false, 0) // success resets the streak
	b.Record(true, 0)
	b.Record(true, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if tripped := b.Record(true, 0); !tripped {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state = %v, want open and refusing", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is let
// through; its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	b.Record(true, 0)
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: straight back to open, counting a new trip.
	if tripped := b.Record(true, 0); !tripped {
		t.Fatal("failed probe did not re-trip")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call")
	}

	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(false, 0) // probe succeeds
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

// TestBreakerLatencyTrip: consecutive over-budget calls trip the circuit even
// when every call succeeds.
func TestBreakerLatencyTrip(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 10, Latency: 100 * time.Millisecond, SlowCalls: 2})
	b.Record(false, 200*time.Millisecond)
	b.Record(false, 50*time.Millisecond) // fast call resets the slow streak
	b.Record(false, 200*time.Millisecond)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if tripped := b.Record(false, 200*time.Millisecond); !tripped {
		t.Fatal("second consecutive slow call did not trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}
