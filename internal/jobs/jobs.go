// Package jobs is regimapd's durable async job subsystem: submit a mapping
// request, get an ID back immediately, poll for the result. The manager
// guarantees that every acknowledged job reaches exactly one terminal state,
// across process crashes:
//
//   - a submit is acknowledged only after its record is fsynced into an
//     append-only JSONL write-ahead log (wal.go), so kill -9 cannot lose it;
//   - on startup the WAL (plus its periodic snapshot) is replayed and every
//     non-terminal job is re-queued;
//   - re-execution after a crash is idempotent because results are
//     content-addressed: the executor resolves each request through the
//     internal/memo fingerprints, so the recomputed mapping is byte-identical
//     to what the lost run would have produced.
//
// Around execution sits the hardening layer: per-job deadlines, retry with
// exponential backoff + deterministic jitter on transient maperr failures, a
// circuit breaker per engine (breaker.go) that routes tripped engines down
// the REGIMap→EMS→DRESC resilient ladder, and load-adaptive degradation —
// when the queue crosses a watermark, new jobs are downgraded to the
// configured fast engine and marked degraded.
//
// Job lifecycle (see DESIGN.md section 8i):
//
//	queued ──► running ──► done
//	   ▲          │  │
//	   └──(crash)─┘  └───► failed
//
// The only backward edge is crash recovery: a job that was queued or running
// when the process died restarts as queued. Within one process lifetime the
// state is monotone, so a poller never observes a terminal state twice with
// different contents.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regimap/internal/maperr"
	"regimap/internal/obs"
)

// State is a job's lifecycle position; the string values are the wire and
// WAL representation.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job is one async mapping request and everything needed to recover it: the
// opaque request body, the engine routing decision, and — once terminal —
// the result or the classified failure. It is the WAL record format.
type Job struct {
	ID string `json:"id"`
	// Key is the client's idempotency key ("" when the client sent none).
	Key string `json:"key,omitempty"`
	// Request is the submitted request body, opaque to the manager; the
	// executor re-resolves it on every attempt.
	Request []byte `json:"request"`
	// Requested is the engine the client asked for; Engine is the engine
	// the job is routed to (differs when degraded).
	Requested string `json:"requested"`
	Engine    string `json:"engine"`
	State     State  `json:"state"`
	// Degraded is true when the job was downgraded — by the queue-depth
	// watermark at submit, or by breaker rerouting at execution.
	Degraded bool `json:"degraded,omitempty"`
	// Attempts counts execution attempts in the run that finished the job.
	Attempts   int    `json:"attempts,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Result     []byte `json:"result,omitempty"`
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	CreatedMS  int64  `json:"created_ms,omitempty"`
	FinishedMS int64  `json:"finished_ms,omitempty"`
}

// Executor runs one attempt of a job's request on the named engine and
// returns the serialized result. It must honour ctx and be safe for
// concurrent use; panics are recovered by the manager into typed failures.
type Executor func(ctx context.Context, request []byte, engine string) ([]byte, error)

// ErrQueueFull reports a submit refused because the job queue is at
// capacity; clients should back off and retry.
var ErrQueueFull = errors.New("job queue full")

// ErrDraining reports a submit refused because the manager is draining.
var ErrDraining = errors.New("job manager draining")

// ErrUnknownJob reports a poll for an ID the manager does not hold (never
// acknowledged, or evicted by the terminal-job retention bound).
var ErrUnknownJob = errors.New("unknown job")

// ErrKeyConflict reports an idempotency key reused with a different request
// body: answering it with the stored job would serve the wrong result, so
// the submit is refused instead.
var ErrKeyConflict = errors.New("idempotency key reused for a different request")

// Config tunes one Manager. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds concurrently executing jobs (default 2).
	Workers int
	// QueueDepth bounds jobs waiting to run; submits beyond it fail with
	// ErrQueueFull (default 256).
	QueueDepth int
	// Watermark is the queued-job count at which new submits are degraded
	// to DegradeTo (0: QueueDepth/2; negative: degradation disabled).
	Watermark int
	// DegradeTo is the engine degraded jobs run on ("" disables watermark
	// degradation).
	DegradeTo string
	// Downgrades returns the fallback engines, in order, for an engine
	// whose breaker is open (nil: no rerouting).
	Downgrades func(engine string) []string
	// MaxAttempts bounds execution attempts per run, counting the first
	// (default 3).
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling per attempt
	// with up to 50% deterministic jitter (default 50ms); MaxBackoff caps
	// it (default 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DefaultDeadline applies to jobs that carry none (default 30s); the
	// deadline clock starts when execution starts, not while queued.
	DefaultDeadline time.Duration
	// Breaker tunes the per-engine circuit breakers.
	Breaker BreakerConfig
	// BreakerFailure classifies an execution error as an engine-health
	// failure for the breaker (nil: transient failures, worker panics, and
	// deadline aborts count; deterministic no-mapping answers do not).
	BreakerFailure func(error) bool
	// Classify maps a terminal error to the wire taxonomy class (nil:
	// "internal").
	Classify func(error) string
	// KeepDone bounds retained terminal jobs; the oldest are evicted from
	// memory and, at the next compaction, from disk (default 4096).
	KeepDone int
	// CompactEvery triggers snapshot compaction after this many WAL
	// appends (default 1024).
	CompactEvery int
	// Trace receives job-lifecycle obs events (nil: untraced).
	Trace *obs.Tracer
	// Now is the clock (nil: time.Now). Injectable for breaker tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Watermark == 0 {
		c.Watermark = c.QueueDepth / 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 4096
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = defaultCompactEvery
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.BreakerFailure == nil {
		c.BreakerFailure = func(err error) bool {
			return err != nil && !errors.Is(err, maperr.ErrNoMapping)
		}
	}
	if c.Classify == nil {
		c.Classify = func(error) string { return "internal" }
	}
	return c
}

// Stats is a point-in-time snapshot of the manager's counters, consumed by
// the /metrics exporter.
type Stats struct {
	Queued, Running              int
	Submitted, Duplicates        int64
	Done, Failed                 int64
	Degraded, Retries, Recovered int64
	Evicted, Trips, Compactions  int64
	CompactErrors                int64
	WALRecords                   int64
	Breakers                     map[string]BreakerState
	BreakerTrips                 map[string]int64
}

// Manager owns the job table, the worker pool, and the WAL. Construct with
// Open; stop with Drain (graceful) or Kill (crash-equivalent).
type Manager struct {
	cfg  Config
	wal  *WAL // nil: ephemeral (no durability)
	exec Executor

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	byKey    map[string]string // idempotency key → job ID
	pending  []string          // FIFO of queued job IDs
	done     []string          // terminal job IDs, oldest first (retention)
	breakers map[string]*Breaker
	seq      int64
	running  int
	draining bool
	stopping bool
	killed   bool

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	submitted, duplicates, doneN, failedN atomic.Int64
	degradedN, retries, recovered         atomic.Int64
	evicted, trips, compactions           atomic.Int64
	compactErrors                         atomic.Int64
}

// Open builds a Manager over the WAL directory (dir "" runs ephemeral —
// full job semantics, no durability), re-queues every recovered
// non-terminal job, and starts the worker pool.
func Open(dir string, exec Executor, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	var wal *WAL
	var recovered []*Job
	if dir != "" {
		var err error
		wal, recovered, err = OpenWAL(dir)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		wal:      wal,
		exec:     exec,
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]string),
		breakers: make(map[string]*Breaker),
		rootCtx:  ctx,
		cancel:   cancel,
	}
	m.cond = sync.NewCond(&m.mu)

	for _, j := range recovered {
		m.jobs[j.ID] = j
		if j.Key != "" {
			m.byKey[j.Key] = j.ID
		}
		if seq := idSeq(j.ID); seq > m.seq {
			m.seq = seq
		}
		if j.State.Terminal() {
			m.done = append(m.done, j.ID)
			continue
		}
		// Queued or running at crash time: the terminal record never made
		// it to disk, so the work is still owed. Re-queue it.
		j.State = StateQueued
		m.pending = append(m.pending, j.ID)
		m.recovered.Add(1)
		cfg.Trace.Point1("job.recover", "n", 1)
	}

	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// idSeq extracts the numeric suffix of a "j-%08d" job ID (0 if malformed).
func idSeq(id string) int64 {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Submit acknowledges one job: it is durable (WAL-synced) before Submit
// returns. An already-seen idempotency key with the same request returns the
// existing job with duplicate=true and runs nothing; the same key with a
// different request fails with ErrKeyConflict (the conflicting job is still
// returned so callers can identify it). deadline bounds the job's execution
// time (0: the configured default).
func (m *Manager) Submit(key string, request []byte, engine string, deadline time.Duration) (Job, bool, error) {
	if deadline <= 0 {
		deadline = m.cfg.DefaultDeadline
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.stopping {
		return Job{}, false, ErrDraining
	}
	if key != "" {
		if id, ok := m.byKey[key]; ok {
			// A key names ONE request: an honest retry carries the same
			// bytes (Requests are canonical re-marshals, so equality is
			// byte equality). Anything else is refused, returning the
			// holder so the caller can name it in the error.
			if !bytes.Equal(m.jobs[id].Request, request) {
				return *m.jobs[id], false, ErrKeyConflict
			}
			m.duplicates.Add(1)
			m.cfg.Trace.Point1("job.duplicate", "n", 1)
			return *m.jobs[id], true, nil
		}
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		return Job{}, false, ErrQueueFull
	}

	m.seq++
	j := &Job{
		ID:         fmt.Sprintf("j-%08d", m.seq),
		Key:        key,
		Request:    request,
		Requested:  engine,
		Engine:     engine,
		State:      StateQueued,
		DeadlineMS: deadline.Milliseconds(),
		CreatedMS:  m.cfg.Now().UnixMilli(),
	}
	// Load-adaptive degradation: past the watermark, new work runs on the
	// fast engine so the backlog drains instead of compounding.
	if m.cfg.Watermark >= 0 && m.cfg.DegradeTo != "" &&
		len(m.pending) >= m.cfg.Watermark && engine != m.cfg.DegradeTo {
		j.Engine = m.cfg.DegradeTo
		j.Degraded = true
		m.degradedN.Add(1)
		m.cfg.Trace.Point1("job.degrade", "n", 1)
	}
	// Register the job BEFORE the durability point: if this very append
	// trips the compaction threshold, the snapshot is taken from m.jobs and
	// the WAL is truncated — a snapshot that did not include j would erase
	// the record being acknowledged, losing the job on the next crash.
	m.jobs[j.ID] = j
	if key != "" {
		m.byKey[key] = j.ID
	}
	// Durability point: the ack is valid only once this record is synced.
	if err := m.appendLocked(j); err != nil {
		// Roll back the registration — the job was never acknowledged.
		// Append has already best-effort truncated any partial record, so
		// a retry of the same idempotency key starts from a clean slate.
		delete(m.jobs, j.ID)
		if key != "" {
			delete(m.byKey, key)
		}
		m.seq--
		return Job{}, false, err
	}
	m.pending = append(m.pending, j.ID)
	m.submitted.Add(1)
	m.cfg.Trace.Point1("job.submit", "n", 1)
	m.cond.Signal()
	return *j, false, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return *j, nil
}

// QueueDepth reports how many jobs are waiting to run.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// appendLocked writes the job's current state to the WAL (no-op when
// ephemeral) and compacts when due. Callers hold m.mu.
func (m *Manager) appendLocked(j *Job) error {
	if m.wal == nil {
		return nil
	}
	if err := m.wal.Append(j); err != nil {
		return err
	}
	if m.wal.ShouldCompact(m.cfg.CompactEvery) {
		all := make([]*Job, 0, len(m.jobs))
		for _, job := range m.jobs {
			all = append(all, job)
		}
		if err := m.wal.Compact(all); err != nil {
			// The log keeps growing until a later compaction succeeds; the
			// counter is exported so operators see the disk problem instead
			// of an unbounded WAL.
			m.compactErrors.Add(1)
			m.cfg.Trace.Point1("wal.compact_error", "n", 1)
		} else {
			m.compactions.Add(1)
			m.cfg.Trace.Point1("wal.compact", "n", 1)
		}
	}
	return nil
}

// worker pulls queued jobs until the manager stops. On Drain workers keep
// pulling until the queue is empty; on Kill they exit immediately.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.stopping {
			m.cond.Wait()
		}
		if m.killed || len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		id := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.run(id)
	}
}

// run executes one job to a terminal state: engine routing around open
// breakers, the per-job deadline, and transient-failure retries all live
// here. A crash (Kill) between the last attempt and the terminal record
// leaves the job non-terminal on disk, which is what recovery re-queues.
func (m *Manager) run(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.State.Terminal() {
		m.mu.Unlock()
		return
	}
	j.State = StateRunning
	m.running++
	deadline := time.Duration(j.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = m.cfg.DefaultDeadline
	}
	requested := j.Engine // post-watermark routing decision
	// The start record is durability-optional (losing it only means the
	// job replays as queued), but keeping it in the log makes the WAL a
	// complete lifecycle journal.
	m.appendLocked(j)
	m.mu.Unlock()
	m.cfg.Trace.Point1("job.start", "n", 1)

	ctx, cancel := context.WithTimeout(m.rootCtx, deadline)
	defer cancel()

	var (
		result   []byte
		err      error
		engine   string
		attempts int
	)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		var br *Breaker
		var token int64
		engine, br, token, err = m.routeEngine(requested)
		if err == nil {
			start := m.cfg.Now()
			result, err = m.attempt(ctx, j.Request, engine)
			elapsed := m.cfg.Now().Sub(start)
			if br.Record(token, m.cfg.BreakerFailure(err), elapsed) {
				m.trips.Add(1)
				m.cfg.Trace.Point1("breaker.trip", "n", 1)
			}
		}
		if err == nil || !maperr.IsTransient(err) ||
			attempt+1 >= m.cfg.MaxAttempts || ctx.Err() != nil {
			break
		}
		m.retries.Add(1)
		m.cfg.Trace.Point1("job.retry", "n", 1)
		select {
		case <-ctx.Done():
			err = maperr.Aborted(ctx.Err(), "job %s: deadline expired during retry backoff", id)
		case <-time.After(m.backoff(id, attempt)):
			continue
		}
		break
	}
	m.finalize(id, engine, attempts, result, err)
}

// attempt is one guarded executor call: a panicking executor is recovered
// into a typed worker-panic error (transient, hence retryable) instead of
// killing the queue worker.
func (m *Manager) attempt(ctx context.Context, request []byte, engine string) (result []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			result = nil
			err = &maperr.WorkerPanicError{
				Worker: "job worker (" + engine + ")",
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	return m.exec(ctx, request, engine)
}

// routeEngine picks the first engine — the requested one, then its
// downgrade ladder — whose breaker admits a call, returning the admitting
// breaker and its token for the caller's Record. With every circuit open
// the failure is transient: a cooldown will expire and grant a probe, so
// the retry loop (not the client) absorbs the wait.
func (m *Manager) routeEngine(requested string) (string, *Breaker, int64, error) {
	br := m.breakerFor(requested)
	if token, ok := br.Allow(); ok {
		return requested, br, token, nil
	}
	if m.cfg.Downgrades != nil {
		for _, cand := range m.cfg.Downgrades(requested) {
			br = m.breakerFor(cand)
			if token, ok := br.Allow(); ok {
				return cand, br, token, nil
			}
		}
	}
	return "", nil, 0, maperr.Transient(nil, "job: every engine circuit from %q down is open", requested)
}

// breakerFor returns (creating on first use) the engine's breaker.
func (m *Manager) breakerFor(engine string) *Breaker {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.breakers[engine]
	if !ok {
		b = newBreaker(m.cfg.Breaker, m.cfg.Now)
		m.breakers[engine] = b
	}
	return b
}

// backoff computes the wait before retry `attempt`, exponential with a
// deterministic jitter derived from (job ID, attempt) — no shared RNG, and
// replaying a recovered job waits the same schedule.
func (m *Manager) backoff(id string, attempt int) time.Duration {
	d := m.cfg.Backoff << attempt
	if d > m.cfg.MaxBackoff || d <= 0 {
		d = m.cfg.MaxBackoff
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%s:%d", id, attempt)
	jitter := time.Duration(h.Sum32()) % (d/2 + 1)
	return d + jitter
}

// finalize writes the terminal state. After Kill it deliberately does
// nothing: the process is "dead", and mutating state or the WAL would break
// the crash-equivalence the recovery tests rely on.
func (m *Manager) finalize(id, engine string, attempts int, result []byte, err error) {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return
	}
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	m.running--
	j.Attempts = attempts
	j.FinishedMS = m.cfg.Now().UnixMilli()
	if engine != "" {
		j.Engine = engine
	}
	if engine != "" && engine != j.Requested {
		j.Degraded = true
	}
	if err == nil {
		j.State = StateDone
		j.Result = result
		m.doneN.Add(1)
	} else {
		j.State = StateFailed
		j.Error = err.Error()
		j.ErrorClass = m.cfg.Classify(err)
		m.failedN.Add(1)
	}
	m.done = append(m.done, id)
	m.evictLocked()
	m.appendLocked(j)
	degraded := j.Degraded
	state := j.State
	m.mu.Unlock()

	if state == StateDone {
		m.cfg.Trace.Point("job.done", "n", 1, "attempts", int64(attempts), "degraded", b2i(degraded))
	} else {
		m.cfg.Trace.Point("job.fail", "n", 1, "attempts", int64(attempts), "", 0)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// evictLocked enforces the terminal-job retention bound.
func (m *Manager) evictLocked() {
	for len(m.done) > m.cfg.KeepDone {
		id := m.done[0]
		m.done = m.done[1:]
		if j, ok := m.jobs[id]; ok {
			delete(m.jobs, id)
			if j.Key != "" {
				delete(m.byKey, j.Key)
			}
			m.evicted.Add(1)
		}
	}
}

// Drain flips the manager into graceful shutdown: new submits fail with
// ErrDraining, queued jobs run to completion, and Drain returns once every
// acknowledged job is terminal (or ctx expires first, leaving the rest for
// recovery). The WAL is closed cleanly on full drains.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.stopping = true
	m.mu.Unlock()
	m.cond.Broadcast()

	finished := make(chan struct{})
	go func() { m.wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain incomplete: %w", ctx.Err())
	}
	if m.wal != nil {
		return m.wal.Close()
	}
	return nil
}

// Draining reports whether new submits are refused.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Kill hard-stops the manager without draining — crash-equivalent: workers
// exit, running executions are cancelled, and nothing further reaches the
// WAL, so the on-disk state is exactly what a kill -9 would leave. A new
// manager opened on the same directory recovers every acknowledged
// non-terminal job.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return
	}
	m.killed = true
	m.stopping = true
	m.draining = true
	m.mu.Unlock()
	if m.wal != nil {
		m.wal.Kill()
	}
	m.cancel()
	m.cond.Broadcast()
	m.wg.Wait()
}

// Stats snapshots the counters for the /metrics exporter.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Queued:       len(m.pending),
		Running:      m.running,
		Breakers:     make(map[string]BreakerState, len(m.breakers)),
		BreakerTrips: make(map[string]int64, len(m.breakers)),
	}
	breakers := make(map[string]*Breaker, len(m.breakers))
	for name, b := range m.breakers {
		breakers[name] = b
	}
	m.mu.Unlock()
	for name, b := range breakers {
		st.Breakers[name] = b.State()
		st.BreakerTrips[name] = b.Trips()
	}
	st.Submitted = m.submitted.Load()
	st.Duplicates = m.duplicates.Load()
	st.Done = m.doneN.Load()
	st.Failed = m.failedN.Load()
	st.Degraded = m.degradedN.Load()
	st.Retries = m.retries.Load()
	st.Recovered = m.recovered.Load()
	st.Evicted = m.evicted.Load()
	st.Trips = m.trips.Load()
	st.Compactions = m.compactions.Load()
	st.CompactErrors = m.compactErrors.Load()
	if m.wal != nil {
		st.WALRecords = m.wal.Records()
	}
	return st
}
