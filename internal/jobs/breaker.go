// breaker.go is the per-engine circuit breaker: an engine that keeps
// failing (or keeps answering slower than the configured latency budget)
// is taken out of rotation for a cooldown, then probed with a single
// half-open call before being trusted again. The job executor consults the
// breaker when choosing an engine and routes around open circuits by
// stepping down the REGIMap→EMS→DRESC resilient ladder.
package jobs

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	// BreakerClosed: calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe call is allowed through; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
)

// String names the state (also the Prometheus label value).
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "state(?)"
	}
}

// BreakerConfig tunes one engine's breaker. The zero value selects defaults.
type BreakerConfig struct {
	// Failures trips the breaker after this many consecutive eligible
	// failures (default 5). What counts as eligible is the manager's
	// failure classifier — deterministic no-mapping answers are successes
	// from the breaker's point of view: the engine did its job.
	Failures int
	// Latency, when positive, counts a call slower than this as a slow
	// call even if it succeeded; SlowCalls consecutive slow calls trip the
	// breaker the same way failures do (0: latency tripping disabled).
	Latency time.Duration
	// SlowCalls is the consecutive-slow-call trip threshold (default:
	// Failures).
	SlowCalls int
	// Cooldown is how long an open breaker refuses calls before allowing a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.SlowCalls <= 0 {
		c.SlowCalls = c.Failures
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is one engine's circuit. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	now      func() time.Time
	state    BreakerState
	gen      int64 // bumped on every trip; stale Records are ignored
	fails    int   // consecutive eligible failures
	slows    int   // consecutive over-latency calls
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
}

// newBreaker returns a closed breaker; now is injectable for tests.
func newBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg.withDefaults(), now: now}
}

// Allow reports whether a call may proceed and, when it may, returns the
// token the caller must hand back to Record. The token is the breaker's
// trip generation at admission time: a Record whose token predates the
// last trip is stale — its call was admitted under assumptions the trip
// invalidated — and is ignored, so an in-flight call that started before
// the circuit opened can neither close it behind the cooldown's back nor
// free the half-open probe slot. On an open breaker whose cooldown has
// elapsed, Allow transitions to half-open and grants the single probe
// slot; concurrent callers during the probe are refused.
func (b *Breaker) Allow() (token int64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return b.gen, true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return 0, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return b.gen, true
	case BreakerHalfOpen:
		if b.probing {
			return 0, false
		}
		b.probing = true
		return b.gen, true
	}
	return 0, false
}

// Record reports the outcome of a call Allow admitted under token. failed
// says whether the manager's classifier deemed it an engine-health
// failure; d is the call's latency. A half-open probe's success closes
// the circuit; its failure re-opens it for a fresh cooldown. Outcomes of
// calls admitted before the last trip (stale token) are discarded.
func (b *Breaker) Record(token int64, failed bool, d time.Duration) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if token != b.gen {
		return false
	}
	b.probing = false
	if failed {
		b.fails++
		b.slows = 0
		if b.state == BreakerHalfOpen || b.fails >= b.cfg.Failures {
			return b.tripLocked()
		}
		return false
	}
	b.fails = 0
	if b.cfg.Latency > 0 && d > b.cfg.Latency {
		b.slows++
		if b.state == BreakerHalfOpen || b.slows >= b.cfg.SlowCalls {
			return b.tripLocked()
		}
		return false
	}
	b.slows = 0
	b.state = BreakerClosed
	return false
}

// tripLocked opens the circuit (idempotent per trip: re-opening from
// half-open counts as a new trip, since the engine failed its probe).
// Bumping gen invalidates every token handed out before the trip.
func (b *Breaker) tripLocked() bool {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.gen++
	b.fails = 0
	b.slows = 0
	b.probing = false
	b.trips++
	return true
}

// State returns the current state without side effects (an open breaker
// past its cooldown still reads open until Allow grants the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
