package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regimap/internal/maperr"
)

// testExec is a scriptable executor. By default it echoes the request back
// as the result; per-engine hooks and a gate make runs controllable.
type testExec struct {
	mu    sync.Mutex
	calls atomic.Int64
	// perEngine, when set for an engine name, decides that engine's outcome.
	perEngine map[string]func(attempt int64) ([]byte, error)
	// gate, when non-nil, blocks every call until closed (or ctx expires).
	gate chan struct{}
}

func (e *testExec) run(ctx context.Context, request []byte, engine string) ([]byte, error) {
	n := e.calls.Add(1)
	e.mu.Lock()
	gate := e.gate
	hook := e.perEngine[engine]
	e.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, maperr.Aborted(ctx.Err(), "testExec aborted")
		}
	}
	if hook != nil {
		return hook(n)
	}
	return append([]byte("ok:"), request...), nil
}

func openTest(t *testing.T, dir string, exec Executor, cfg Config) *Manager {
	t.Helper()
	m, err := Open(dir, exec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Kill)
	return m
}

func waitTerminal(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitPollDone: the basic lifecycle, ephemeral (no WAL).
func TestSubmitPollDone(t *testing.T) {
	exec := &testExec{}
	m := openTest(t, "", exec.run, Config{Workers: 1})
	j, dup, err := m.Submit("", []byte("req"), "regimap", 0)
	if err != nil || dup {
		t.Fatalf("submit: dup=%v err=%v", dup, err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("ack = %+v", j)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateDone || string(got.Result) != "ok:req" || got.Attempts != 1 {
		t.Fatalf("terminal job = %+v", got)
	}
	if got.Degraded {
		t.Fatal("undegraded job marked degraded")
	}
}

// TestIdempotencyKeyDedup: the same key acks the same job and runs nothing
// twice, including after the job finished.
func TestIdempotencyKeyDedup(t *testing.T) {
	exec := &testExec{}
	m := openTest(t, "", exec.run, Config{Workers: 1})
	a, dup, err := m.Submit("key-1", []byte("req"), "regimap", 0)
	if err != nil || dup {
		t.Fatal(err)
	}
	waitTerminal(t, m, a.ID)
	b, dup, err := m.Submit("key-1", []byte("req"), "regimap", 0)
	if err != nil || !dup {
		t.Fatalf("duplicate submit: dup=%v err=%v", dup, err)
	}
	if b.ID != a.ID {
		t.Fatalf("duplicate got id %s, want %s", b.ID, a.ID)
	}
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times, want 1", n)
	}
	if st := m.Stats(); st.Duplicates != 1 || st.Submitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestIdempotencyKeyConflict: a key reused with a different request body is
// refused typed (naming the holder), runs nothing, and counts as neither a
// submit nor a duplicate; the honest retry still dedups.
func TestIdempotencyKeyConflict(t *testing.T) {
	exec := &testExec{}
	m := openTest(t, "", exec.run, Config{Workers: 1})
	a, _, err := m.Submit("key-1", []byte("req"), "regimap", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, a.ID)
	j, dup, err := m.Submit("key-1", []byte("DIFFERENT"), "regimap", 0)
	if !errors.Is(err, ErrKeyConflict) || dup {
		t.Fatalf("conflicting submit: %+v dup=%v err=%v", j, dup, err)
	}
	if j.ID != a.ID {
		t.Fatalf("conflict named job %s, want holder %s", j.ID, a.ID)
	}
	if st := m.Stats(); st.Submitted != 1 || st.Duplicates != 0 {
		t.Fatalf("stats after conflict = %+v, want 1 submit / 0 duplicates", st)
	}
	if _, dup, err := m.Submit("key-1", []byte("req"), "regimap", 0); err != nil || !dup {
		t.Fatalf("honest retry after conflict: dup=%v err=%v", dup, err)
	}
	if n := exec.calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times, want 1", n)
	}
}

// TestQueueFull: submits beyond the queue bound fail typed.
func TestQueueFull(t *testing.T) {
	exec := &testExec{gate: make(chan struct{})}
	m := openTest(t, "", exec.run, Config{Workers: 1, QueueDepth: 1, Watermark: -1})
	// One job occupies the worker (blocked on the gate), one fills the queue.
	if _, _, err := m.Submit("", []byte("a"), "regimap", time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m.QueueDepth() <= 1 && exec.calls.Load() == 1 })
	if _, _, err := m.Submit("", []byte("b"), "regimap", time.Minute); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Submit("", []byte("c"), "regimap", time.Minute)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v", err)
	}
}

// TestWatermarkDegrade: past the watermark new submits run on the fast
// engine, marked degraded; the routing decision is visible in the ack.
func TestWatermarkDegrade(t *testing.T) {
	exec := &testExec{gate: make(chan struct{})}
	m := openTest(t, "", exec.run, Config{
		Workers: 1, QueueDepth: 8, Watermark: 1, DegradeTo: "ems",
	})
	if _, _, err := m.Submit("", []byte("a"), "regimap", time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return exec.calls.Load() == 1 }) // worker busy
	if _, _, err := m.Submit("", []byte("b"), "regimap", time.Minute); err != nil {
		t.Fatal(err) // fills the queue to the watermark
	}
	j, _, err := m.Submit("", []byte("c"), "regimap", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Degraded || j.Engine != "ems" || j.Requested != "regimap" {
		t.Fatalf("watermark submit = %+v, want degraded onto ems", j)
	}
	// An already-fast submit is not re-marked.
	k, _, err := m.Submit("", []byte("d"), "ems", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if k.Degraded {
		t.Fatal("ems submit past watermark marked degraded")
	}
	close(exec.gate)
	if got := waitTerminal(t, m, j.ID); got.Engine != "ems" || !got.Degraded {
		t.Fatalf("degraded job finished as %+v", got)
	}
	if st := m.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded count = %d, want 1", st.Degraded)
	}
}

// TestTransientRetry: transient failures are retried with backoff up to
// MaxAttempts; a success on the way out wins.
func TestTransientRetry(t *testing.T) {
	exec := &testExec{perEngine: map[string]func(int64) ([]byte, error){
		"regimap": func(n int64) ([]byte, error) {
			if n < 3 {
				return nil, maperr.Transient(nil, "flaky (call %d)", n)
			}
			return []byte("recovered"), nil
		},
	}}
	m := openTest(t, "", exec.run, Config{
		Workers: 1, MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	j, _, err := m.Submit("", []byte("r"), "regimap", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateDone || got.Attempts != 3 || string(got.Result) != "recovered" {
		t.Fatalf("retried job = %+v", got)
	}
	if st := m.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

// TestPermanentFailureNotRetried: a deterministic no-mapping answer is final
// on the first attempt and classified.
func TestPermanentFailureNotRetried(t *testing.T) {
	exec := &testExec{perEngine: map[string]func(int64) ([]byte, error){
		"regimap": func(int64) ([]byte, error) {
			return nil, maperr.NoMapping("II range exhausted")
		},
	}}
	m := openTest(t, "", exec.run, Config{
		Workers: 1, MaxAttempts: 5,
		Classify: func(err error) string {
			if errors.Is(err, maperr.ErrNoMapping) {
				return "no-mapping"
			}
			return "internal"
		},
	})
	j, _, _ := m.Submit("", []byte("r"), "regimap", time.Minute)
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed || got.Attempts != 1 || got.ErrorClass != "no-mapping" {
		t.Fatalf("infeasible job = %+v", got)
	}
	// No-mapping is a success for the breaker: the engine is healthy.
	if st := m.Stats(); st.Breakers["regimap"] != BreakerClosed || st.Trips != 0 {
		t.Fatalf("breaker stats after no-mapping = %+v", st)
	}
}

// TestBreakerReroutesDownLadder: a tripped engine's jobs run on its
// downgrade, marked degraded.
func TestBreakerReroutesDownLadder(t *testing.T) {
	exec := &testExec{perEngine: map[string]func(int64) ([]byte, error){
		"regimap": func(int64) ([]byte, error) {
			return nil, maperr.Transient(nil, "regimap broken")
		},
	}}
	m := openTest(t, "", exec.run, Config{
		Workers: 1, MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
		Breaker:    BreakerConfig{Failures: 1, Cooldown: time.Hour},
		Downgrades: func(string) []string { return []string{"ems"} },
	})
	j, _, _ := m.Submit("", []byte("r"), "regimap", time.Minute)
	got := waitTerminal(t, m, j.ID)
	// Attempt 1 fails on regimap and trips its breaker; attempt 2 routes to
	// ems and succeeds.
	if got.State != StateDone || got.Engine != "ems" || !got.Degraded {
		t.Fatalf("rerouted job = %+v", got)
	}
	st := m.Stats()
	if st.Breakers["regimap"] != BreakerOpen || st.Trips != 1 {
		t.Fatalf("breaker stats = %+v", st)
	}
	// The next job skips the dead engine entirely: one executor call, on ems.
	before := exec.calls.Load()
	k, _, _ := m.Submit("", []byte("r2"), "regimap", time.Minute)
	got = waitTerminal(t, m, k.ID)
	if got.Engine != "ems" || exec.calls.Load() != before+1 {
		t.Fatalf("follow-up job = %+v after %d calls", got, exec.calls.Load()-before)
	}
}

// TestCrashRecovery is the heart of the exactly-once guarantee: kill the
// manager with work acknowledged but unfinished, reopen the directory, and
// every acknowledged job still reaches a terminal state.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	exec := &testExec{gate: gate}
	m := openTest(t, dir, exec.run, Config{Workers: 1})

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		j, _, err := m.Submit(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("req-%d", i)), "regimap", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// One job is mid-execution, two are queued. Crash.
	waitFor(t, func() bool { return exec.calls.Load() == 1 })
	m.Kill()

	exec2 := &testExec{}
	m2 := openTest(t, dir, exec2.run, Config{Workers: 1})
	for i, id := range ids {
		got := waitTerminal(t, m2, id)
		if got.State != StateDone || string(got.Result) != fmt.Sprintf("ok:req-%d", i) {
			t.Fatalf("recovered job %s = %+v", id, got)
		}
	}
	st := m2.Stats()
	if st.Recovered != 3 {
		t.Fatalf("recovered = %d, want 3", st.Recovered)
	}
	// Idempotency keys survive the crash: re-submitting acks the same job.
	j, dup, err := m2.Submit("key-0", []byte("req-0"), "regimap", time.Minute)
	if err != nil || !dup || j.ID != ids[0] {
		t.Fatalf("post-recovery duplicate: %+v dup=%v err=%v", j, dup, err)
	}
}

// TestSubmitCompactionKeepsAck is the snapshot-ordering regression: when a
// submit's own WAL append crosses the compaction threshold, the snapshot is
// taken from the job table and the log is truncated — so the job being
// acknowledged must already be in the table, or compaction erases the record
// the ack depends on and a crash loses an acknowledged job.
func TestSubmitCompactionKeepsAck(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	exec := &testExec{gate: gate}
	// Appends: submit A (1), A's running record (2), submit B (3) — the
	// third append, a submit, triggers the compaction.
	m := openTest(t, dir, exec.run, Config{Workers: 1, CompactEvery: 3})
	a, _, err := m.Submit("", []byte("a"), "regimap", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return exec.calls.Load() == 1 }) // running record is on disk
	b, _, err := m.Submit("", []byte("b"), "regimap", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1 (test setup drifted off the threshold)", st.Compactions)
	}
	m.Kill() // crash with A mid-execution and B still queued

	exec2 := &testExec{}
	m2 := openTest(t, dir, exec2.run, Config{Workers: 1})
	for _, want := range []struct{ id, result string }{{a.ID, "ok:a"}, {b.ID, "ok:b"}} {
		got := waitTerminal(t, m2, want.id)
		if got.State != StateDone || string(got.Result) != want.result {
			t.Fatalf("acked job %s lost across compaction+crash: %+v", want.id, got)
		}
	}
}

// TestSubmitWALFailureRollsBack: a submit whose WAL append fails is not
// acknowledged and must leave no trace — a retried idempotency key gets a
// fresh job, not a phantom that never runs.
func TestSubmitWALFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	exec := &testExec{}
	m := openTest(t, dir, exec.run, Config{Workers: 1})
	m.wal.Kill() // every further append fails
	if j, dup, err := m.Submit("k", []byte("r"), "regimap", time.Minute); err == nil {
		t.Fatalf("submit over a dead WAL acked %+v dup=%v", j, dup)
	}
	m.mu.Lock()
	_, inJobs := m.jobs["j-00000001"]
	_, inKey := m.byKey["k"]
	pending, seq := len(m.pending), m.seq
	m.mu.Unlock()
	if inJobs || inKey || pending != 0 || seq != 0 {
		t.Fatalf("failed submit left state behind: jobs=%v key=%v pending=%d seq=%d",
			inJobs, inKey, pending, seq)
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Fatalf("submitted = %d, want 0", st.Submitted)
	}
}

// TestRecoveredTerminalJobsStayTerminal: done jobs replay as done — recovery
// must never re-run (or double-report) finished work.
func TestRecoveredTerminalJobsStayTerminal(t *testing.T) {
	dir := t.TempDir()
	exec := &testExec{}
	m := openTest(t, dir, exec.run, Config{Workers: 1})
	j, _, err := m.Submit("k", []byte("r"), "regimap", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := waitTerminal(t, m, j.ID)
	m.Kill()

	exec2 := &testExec{}
	m2 := openTest(t, dir, exec2.run, Config{Workers: 1})
	got, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || string(got.Result) != string(want.Result) {
		t.Fatalf("terminal job replayed as %+v", got)
	}
	time.Sleep(10 * time.Millisecond)
	if exec2.calls.Load() != 0 {
		t.Fatal("recovery re-ran a terminal job")
	}
	if st := m2.Stats(); st.Recovered != 0 {
		t.Fatalf("recovered = %d, want 0", st.Recovered)
	}
}

// TestDrainFinishesQueuedJobs: Drain refuses new submits but runs every
// acknowledged job to a terminal state before returning.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	exec := &testExec{}
	m := openTest(t, "", exec.run, Config{Workers: 1})
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		j, _, err := m.Submit("", []byte(fmt.Sprintf("r%d", i)), "regimap", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, err := m.Get(id)
		if err != nil || !j.State.Terminal() {
			t.Fatalf("job %s after drain: %+v err=%v", id, j, err)
		}
	}
	if _, _, err := m.Submit("", []byte("late"), "regimap", 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestDoneRetentionEviction: terminal jobs beyond KeepDone are evicted along
// with their idempotency keys.
func TestDoneRetentionEviction(t *testing.T) {
	exec := &testExec{}
	m := openTest(t, "", exec.run, Config{Workers: 1, KeepDone: 2})
	var first Job
	for i := 0; i < 4; i++ {
		j, _, err := m.Submit(fmt.Sprintf("k%d", i), []byte("r"), "regimap", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = j
		}
		waitTerminal(t, m, j.ID)
	}
	if _, err := m.Get(first.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("evicted job still resolvable: %v", err)
	}
	// Its key slot is free again: the same key now acks a fresh job.
	j, dup, err := m.Submit("k0", []byte("r"), "regimap", time.Minute)
	if err != nil || dup || j.ID == first.ID {
		t.Fatalf("resubmit after eviction: %+v dup=%v err=%v", j, dup, err)
	}
	if st := m.Stats(); st.Evicted < 2 {
		t.Fatalf("evicted = %d, want >= 2", st.Evicted)
	}
}

// TestDeadlineAbortsJob: a job whose execution outlives its deadline fails
// instead of hanging, and the failure is not retried past the deadline.
func TestDeadlineAbortsJob(t *testing.T) {
	exec := &testExec{gate: make(chan struct{})} // never closed
	m := openTest(t, "", exec.run, Config{Workers: 1})
	j, _, err := m.Submit("", []byte("r"), "regimap", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("deadline job = %+v", got)
	}
}

// TestExecutorPanicIsolated: a panicking executor fails the job (after the
// transient retries) without killing the worker.
func TestExecutorPanicIsolated(t *testing.T) {
	exec := &testExec{perEngine: map[string]func(int64) ([]byte, error){
		"regimap": func(int64) ([]byte, error) { panic("executor detonated") },
	}}
	m := openTest(t, "", exec.run, Config{
		Workers: 1, MaxAttempts: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	j, _, _ := m.Submit("", []byte("r"), "regimap", time.Minute)
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed || got.Attempts != 2 {
		t.Fatalf("panicking job = %+v", got)
	}
	// The worker survived: an honest job still runs.
	k, _, _ := m.Submit("", []byte("r"), "ems", time.Minute)
	if got := waitTerminal(t, m, k.ID); got.State != StateDone {
		t.Fatalf("post-panic job = %+v", got)
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
