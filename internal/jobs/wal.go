// wal.go is the durability layer under the job manager: an append-only
// JSONL write-ahead log with periodic snapshot compaction.
//
// Every record is a full Job snapshot, one JSON object per line. That makes
// replay a pure upsert-by-ID fold — trivially idempotent, which is what lets
// the compaction protocol tolerate a crash between any two of its steps:
//
//	append:  marshal job → write line → fsync       (ack only after this)
//	compact: write snapshot.tmp → fsync → rename to snapshot.json
//	         → truncate wal.jsonl
//	open:    load snapshot.json → replay wal.jsonl on top (upsert)
//
// A crash after the rename but before the truncate leaves WAL records that
// are already inside the snapshot; replaying them re-applies identical
// states. A kill -9 mid-append can tear only the final line; Open detects
// the undecodable tail and truncates it — the torn record was never acked,
// because Append syncs before returning.
package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

const (
	walFile      = "wal.jsonl"
	snapshotFile = "snapshot.json"
	snapshotTmp  = "snapshot.tmp"
)

// defaultCompactEvery is how many WAL appends accumulate before the manager
// folds them into a snapshot and truncates the log.
const defaultCompactEvery = 1024

// WAL is the single-writer append-only job log. All methods are safe for
// concurrent use; the directory must belong to exactly one live process
// (regimapd enforces this by construction — one manager per daemon).
type WAL struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	size    int64 // byte offset of the end of the last durable record
	appends int   // records since the last compaction
	records int64
	killed  bool
}

// snapshot is the on-disk compaction format.
type snapshot struct {
	Jobs []*Job `json:"jobs"`
}

// OpenWAL opens (or creates) the log under dir and returns the recovered job
// set: the last snapshot with every WAL record folded on top, sorted by job
// ID so recovery re-queues work in admission order. A torn final line — the
// kill -9 signature — is truncated away; it was never acknowledged.
func OpenWAL(dir string) (*WAL, []*Job, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: wal dir: %w", err)
	}
	byID := map[string]*Job{}

	snapPath := filepath.Join(dir, snapshotFile)
	if blob, err := os.ReadFile(snapPath); err == nil {
		var snap snapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return nil, nil, fmt.Errorf("jobs: corrupt snapshot %s: %w", snapPath, err)
		}
		for _, j := range snap.Jobs {
			byID[j.ID] = j
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: read snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walFile)
	blob, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: read wal: %w", err)
	}
	good := 0 // byte offset of the end of the last decodable record
	for off := 0; off < len(blob); {
		nl := bytes.IndexByte(blob[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn mid-append
		}
		line := blob[off : off+nl]
		var j Job
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &j); err != nil {
				break // torn or corrupt from here on; keep the good prefix
			}
			byID[j.ID] = &j
		}
		off += nl + 1
		good = off
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	if good < len(blob) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobs: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: seek wal: %w", err)
	}

	jobs := make([]*Job, 0, len(byID))
	for _, j := range byID {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return &WAL{dir: dir, f: f, size: int64(good)}, jobs, nil
}

// Append durably records one job state. It returns only after the record is
// synced to disk — the caller may acknowledge the state to a client as soon
// as Append returns, and a subsequent crash cannot lose it. On failure the
// partial record is truncated away best-effort: a write that reached the
// page cache but whose fsync failed must not resurface after a restart as
// a job nobody was ever acknowledged for.
func (w *WAL) Append(j *Job) error {
	blob, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobs: encode wal record: %w", err)
	}
	blob = append(blob, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return fmt.Errorf("jobs: wal closed")
	}
	if _, err := w.f.Write(blob); err != nil {
		w.rollbackLocked()
		return fmt.Errorf("jobs: append wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollbackLocked()
		return fmt.Errorf("jobs: sync wal: %w", err)
	}
	w.size += int64(len(blob))
	w.appends++
	w.records++
	return nil
}

// rollbackLocked drops whatever a failed Append left past the last durable
// record. Best-effort: if even the truncate fails, Open's torn-tail scan
// is the backstop — an undecodable suffix is discarded on replay, and a
// decodable-but-unacknowledged one is the residual risk this narrows.
func (w *WAL) rollbackLocked() {
	if err := w.f.Truncate(w.size); err != nil {
		return
	}
	w.f.Seek(w.size, io.SeekStart)
}

// ShouldCompact reports whether enough appends accumulated since the last
// compaction to be worth folding into a snapshot.
func (w *WAL) ShouldCompact(every int) bool {
	if every <= 0 {
		every = defaultCompactEvery
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.killed && w.appends >= every
}

// Compact writes the full job set as a fresh snapshot and truncates the log.
// The tmp-write → fsync → rename sequence makes the snapshot switch atomic;
// a crash anywhere in between recovers to either the old or the new
// snapshot, each consistent with whatever WAL suffix survives.
func (w *WAL) Compact(all []*Job) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return fmt.Errorf("jobs: wal closed")
	}
	blob, err := json.Marshal(snapshot{Jobs: all})
	if err != nil {
		return fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	tmp := filepath.Join(w.dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("jobs: snapshot tmp: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobs: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobs: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotFile)); err != nil {
		return fmt.Errorf("jobs: publish snapshot: %w", err)
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("jobs: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobs: rewind wal: %w", err)
	}
	w.size = 0
	w.appends = 0
	return nil
}

// Records returns how many records have been appended over the WAL's
// lifetime (not reset by compaction).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Kill closes the log immediately without syncing buffered state — the
// crash-simulation path. Every later Append fails, which is exactly the
// guarantee a test reopening the directory needs: at most one writer ever
// touches the files.
func (w *WAL) Kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return
	}
	w.killed = true
	w.f.Close()
}

// Close syncs and closes the log cleanly.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return nil
	}
	w.killed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
