package sat

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// bruteForce decides satisfiability of cnf over nVars variables by
// enumeration, the ground truth for the randomized cross-check.
func bruteForce(nVars int, cnf [][]Lit) (bool, []bool) {
	assign := make([]bool, nVars)
	for mask := 0; mask < 1<<nVars; mask++ {
		for v := 0; v < nVars; v++ {
			assign[v] = mask&(1<<v) != 0
		}
		ok := true
		for _, c := range cnf {
			sat := false
			for _, l := range c {
				if assign[l.Var()] != l.Negated() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, assign
		}
	}
	return false, nil
}

func solveCNF(t *testing.T, nVars int, cnf [][]Lit, opts Options) (Status, *Solver) {
	t.Helper()
	s := New(opts)
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range cnf {
		s.AddClause(c...)
	}
	st, err := s.Solve(context.Background())
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return st, s
}

func checkModel(t *testing.T, s *Solver, cnf [][]Lit) {
	t.Helper()
	for i, c := range cnf {
		sat := false
		for _, l := range c {
			if s.Value(l.Var()) != l.Negated() {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model violates clause %d: %v", i, c)
		}
	}
}

func TestTrivial(t *testing.T) {
	// Empty formula is Sat.
	if st, _ := solveCNF(t, 0, nil, Options{}); st != Sat {
		t.Fatalf("empty formula: got %v", st)
	}
	// x ∧ ¬x is Unsat.
	if st, _ := solveCNF(t, 1, [][]Lit{{Pos(0)}, {Neg(0)}}, Options{}); st != Unsat {
		t.Fatalf("x ∧ ¬x: got %v", st)
	}
	// (x ∨ y) ∧ ¬x forces y.
	st, s := solveCNF(t, 2, [][]Lit{{Pos(0), Pos(1)}, {Neg(0)}}, Options{})
	if st != Sat || s.Value(0) || !s.Value(1) {
		t.Fatalf("unit chain: status %v values x=%v y=%v", st, s.Value(0), s.Value(1))
	}
	// Tautologies and duplicate literals must not confuse the solver.
	st, _ = solveCNF(t, 2, [][]Lit{{Pos(0), Neg(0)}, {Pos(1), Pos(1)}}, Options{})
	if st != Sat {
		t.Fatalf("tautology handling: got %v", st)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, a classic
// resolution-hard UNSAT family that exercises clause learning.
func pigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Lit, pigeons)
	for p := range vars {
		vars[p] = make([]Lit, holes)
		for h := range vars[p] {
			vars[p][h] = Pos(s.NewVar())
		}
	}
	for p := 0; p < pigeons; p++ {
		s.AddClause(vars[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(vars[p1][h].Not(), vars[p2][h].Not())
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 5; holes++ {
		s := New(Options{})
		pigeonhole(s, holes+1, holes)
		st, err := s.Solve(context.Background())
		if err != nil || st != Unsat {
			t.Fatalf("PHP(%d,%d): status %v err %v", holes+1, holes, st, err)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New(Options{})
	pigeonhole(s, 4, 4)
	st, err := s.Solve(context.Background())
	if err != nil || st != Sat {
		t.Fatalf("PHP(4,4): status %v err %v", st, err)
	}
}

func randomCNF(rng *rand.Rand) (int, [][]Lit) {
	nVars := 3 + rng.Intn(10)
	nClauses := 2 + rng.Intn(5*nVars)
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		width := 1 + rng.Intn(4)
		c := make([]Lit, width)
		for j := range c {
			v := rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				c[j] = Pos(v)
			} else {
				c[j] = Neg(v)
			}
		}
		cnf[i] = c
	}
	return nVars, cnf
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		nVars, cnf := randomCNF(rng)
		want, _ := bruteForce(nVars, cnf)
		st, s := solveCNF(t, nVars, cnf, Options{Seed: int64(trial)})
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver %v, brute force sat=%v (vars=%d cnf=%v)",
				trial, st, want, nVars, cnf)
		}
		if st == Sat {
			checkModel(t, s, cnf)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func(seed int64) (Status, Stats, []int8) {
		s := New(Options{Seed: seed})
		pigeonhole(s, 6, 6)
		// Extra structure so the search is non-trivial.
		s.AddClause(Pos(0), Pos(7), Pos(14))
		st, err := s.Solve(context.Background())
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		return st, s.Stats(), append([]int8(nil), s.model...)
	}
	st1, stats1, m1 := run(42)
	st2, stats2, m2 := run(42)
	if st1 != st2 || !reflect.DeepEqual(stats1, stats2) || !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same seed diverged: %v/%v %+v/%+v", st1, st2, stats1, stats2)
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New(Options{MaxConflicts: 5})
	pigeonhole(s, 8, 7) // hard enough that 5 conflicts cannot refute it
	st, err := s.Solve(context.Background())
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if st != Unknown {
		t.Fatalf("budgeted solve: got %v, want Unknown", st)
	}
	if got := s.Stats().Conflicts; got < 5 {
		t.Fatalf("conflicts %d, want >= 5", got)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Options{CheckEvery: 1})
	pigeonhole(s, 9, 8)
	st, err := s.Solve(ctx)
	if err == nil {
		// The instance may have been refuted before the first poll; anything
		// else must surface the cancellation.
		if st != Unsat {
			t.Fatalf("cancelled solve returned %v with nil error", st)
		}
		return
	}
	if st != Unknown || err != context.Canceled {
		t.Fatalf("cancelled solve: status %v err %v", st, err)
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	s := New(Options{CheckEvery: 16})
	pigeonhole(s, 11, 10) // far beyond a 10ms budget
	st, err := s.Solve(ctx)
	if err == nil {
		t.Skipf("instance solved within deadline (status %v); machine too fast", st)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("deadline err = %v", err)
	}
}

func TestSeedDiversifiesButAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nVars, cnf := randomCNF(rng)
		st1, _ := solveCNF(t, nVars, cnf, Options{Seed: 1})
		st2, _ := solveCNF(t, nVars, cnf, Options{Seed: 2, LubyUnit: 32})
		if st1 != st2 {
			t.Fatalf("trial %d: seeds disagree on satisfiability: %v vs %v", trial, st1, st2)
		}
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		pigeonhole(s, 7, 6)
		if st, err := s.Solve(context.Background()); err != nil || st != Unsat {
			b.Fatalf("status %v err %v", st, err)
		}
	}
}
