// Package sat is a from-scratch CDCL satisfiability solver: two-watched-literal
// propagation, VSIDS-style variable activities, first-UIP conflict analysis
// with clause minimization, Luby restarts, phase saving, and activity-driven
// learnt-clause deletion. It exists so internal/exact can prove mapping
// optimality (DESIGN.md section 8k); it is deliberately small, allocation-light,
// and — crucially for certificates — deterministic: given the same formula,
// options, and seed, every run takes the same search path and returns the same
// model or refutation, regardless of GOMAXPROCS (the solver is single-threaded;
// the seed only diversifies initial activities and phases).
package sat

import (
	"context"
	"math"
	"sort"
)

// Lit is a literal: variable v appears positively as 2v and negated as 2v+1.
type Lit uint32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Negated reports whether the literal is a negation.
func (l Lit) Negated() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

// Solver verdicts. Unknown means a budget ran out before a verdict.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Options tune one solver instance. The zero value is ready to use.
type Options struct {
	// Seed perturbs initial variable activities and phases, diversifying the
	// search path between otherwise identical runs (0 is a valid seed).
	Seed int64
	// MaxConflicts stops the search with Unknown after this many conflicts
	// (0: unbounded).
	MaxConflicts int64
	// LubyUnit is the restart base interval in conflicts (default 128).
	LubyUnit int64
	// VarDecay is the VSIDS activity decay factor in (0,1) (default 0.95).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor (default 0.999).
	ClauseDecay float64
	// CheckEvery is how often, in conflicts, ctx cancellation is polled
	// (default 256).
	CheckEvery int64
}

func (o Options) withDefaults() Options {
	if o.LubyUnit <= 0 {
		o.LubyUnit = 128
	}
	if o.VarDecay <= 0 || o.VarDecay >= 1 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay <= 0 || o.ClauseDecay >= 1 {
		o.ClauseDecay = 0.999
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 256
	}
	return o
}

// Stats counts solver work; exact's certificates expose them as proof effort.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
	Restarts     int64
	Deleted      int64
}

type clause struct {
	lits   []Lit
	act    float64
	learnt bool
}

type watcher struct {
	c       *clause
	blocker Lit // cached literal; if true the clause is satisfied without a walk
}

// Solver holds one CNF instance and its search state. Not safe for concurrent
// use; create one solver per goroutine.
type Solver struct {
	opts    Options
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by Lit

	assign  []int8 // per var: 0 unassigned, +1 true, -1 false
	level   []int32
	reason  []*clause
	trail   []Lit
	trailLo []int // decision-level boundaries into trail
	qhead   int

	activity []float64
	varInc   float64
	claInc   float64
	heap     []int32 // binary max-heap of vars by (activity, index)
	heapPos  []int32 // var -> heap index, -1 when absent
	phase    []bool  // saved polarity per var

	seen    []bool
	minOut  []Lit
	model   []int8
	unsat   bool // empty clause at level 0
	stats   Stats
	rng     uint64
	learntC float64 // learnt DB capacity
}

// New returns a solver with no variables or clauses.
func New(opts Options) *Solver {
	s := &Solver{
		opts:   opts.withDefaults(),
		varInc: 1,
		claInc: 1,
	}
	s.rng = uint64(s.opts.Seed)*2685821657736338717 + 0x9e3779b97f4a7c15
	return s
}

func (s *Solver) nextRand() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	// A tiny seed-derived perturbation (< 1e-6) breaks activity ties
	// differently per seed without overriding learned structure.
	s.activity = append(s.activity, float64(s.nextRand()%1024)/float64(1<<30))
	s.heapPos = append(s.heapPos, -1)
	s.phase = append(s.phase, s.nextRand()&1 == 1)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heapInsert(int32(v))
	return v
}

// SetPhase sets variable v's initial branching polarity, overriding the
// seed-derived default. Encoders use it to bias optional structure (route
// hops) toward a canonical off state; phase saving takes over once the
// variable has been assigned.
func (s *Solver) SetPhase(v int, ph bool) { s.phase[v] = ph }

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of problem (non-learnt) clauses retained.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns the work counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) valueLit(l Lit) int8 {
	v := s.assign[l.Var()]
	if l.Negated() {
		return -v
	}
	return v
}

// AddClause adds a clause. Duplicate literals are removed and tautologies
// dropped; literals already false at level 0 are stripped. Adding an empty
// (or emptied) clause makes the instance trivially unsatisfiable. Clauses
// must be added before Solve.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsat {
		return
	}
	// Sort + dedupe for canonical form; detect tautologies (l and ¬l).
	ls := append(make([]Lit, 0, len(lits)), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	for i, l := range ls {
		if i > 0 && l == ls[i-1] {
			continue
		}
		if i > 0 && l == ls[i-1].Not() {
			return // tautology
		}
		switch s.valueLit(l) {
		case 1:
			return // already satisfied at level 0
		case -1:
			continue // false at level 0: strip
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
	case 1:
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsat = true
		}
	default:
		c := &clause{lits: append([]Lit(nil), out...)}
		s.clauses = append(s.clauses, c)
		s.attach(c)
	}
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0], c.lits[1]
	s.watches[w0.Not()] = append(s.watches[w0.Not()], watcher{c, w1})
	s.watches[w1.Not()] = append(s.watches[w1.Not()], watcher{c, w0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLo) }

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Negated() {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation to fixpoint; a non-nil result is the
// conflicting clause.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == 1 {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so lits[1] is the false watched literal ¬p.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == 1 {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.valueLit(first) == -1 {
				// Conflict: keep remaining watchers, report.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
	}
	return nil
}

// analyze derives the first-UIP learnt clause from a conflict. It returns the
// minimized clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit
	cur := confl
	first := true
	for {
		s.bumpClause(cur)
		lits := cur.lits
		start := 0
		if !first {
			start = 1 // lits[0] is the previously resolved literal
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail back to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		cur = s.reason[p.Var()]
		// Put the resolved-on literal at slot 0 so the start=1 skip holds.
		if cur.lits[0] != p {
			for k, q := range cur.lits {
				if q == p {
					cur.lits[0], cur.lits[k] = cur.lits[k], cur.lits[0]
					break
				}
			}
		}
		first = false
	}
	learnt[0] = p.Not()

	// Local minimization: drop a literal whose reason is entirely subsumed by
	// the rest of the clause (every antecedent literal already seen/level 0).
	// Compaction aliases learnt, so the pre-minimization literals are saved in
	// minOut — the seen flags of dropped literals must be cleared too.
	s.minOut = append(s.minOut[:0], learnt[1:]...)
	for _, q := range s.minOut {
		s.seen[q.Var()] = true
	}
	out := learnt[:1]
	for _, q := range s.minOut {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	for _, q := range s.minOut {
		s.seen[q.Var()] = false
	}
	learnt = out

	// Backjump level: the highest level among the non-asserting literals.
	back := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].Var()]); lv > back {
			back = lv
		}
	}
	// Move a literal of the backjump level to slot 1 so it gets watched.
	for i := 2; i < len(learnt); i++ {
		if int(s.level[learnt[i].Var()]) == back {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, back
}

// redundant reports whether literal q of a learnt clause is implied by the
// remaining literals (single-step self-subsumption).
func (s *Solver) redundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r == nil {
		return false
	}
	for _, a := range r.lits {
		if a.Var() == q.Var() {
			continue
		}
		if !s.seen[a.Var()] && s.level[a.Var()] != 0 {
			return false
		}
	}
	return true
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lo := s.trailLo[lvl]
	for i := len(s.trail) - 1; i >= lo; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.Negated()
		s.assign[v] = 0
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:lo]
	s.trailLo = s.trailLo[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// heap: max-heap on (activity, then lower var index wins ties) so decision
// order is a pure function of solver state.

func (s *Solver) heapLess(a, b int32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *Solver) heapInsert(v int32) {
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(s.heapPos[v])
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapPop() int32 {
	v := s.heap[0]
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	s.heapPos[v] = -1
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.heapDown(0)
	}
	return v
}

func (s *Solver) pickBranch() (Lit, bool) {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			if s.phase[v] {
				return Pos(int(v)), true
			}
			return Neg(int(v)), true
		}
	}
	return 0, false
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,...
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// reduceDB removes the lower-activity half of the learnt clauses, keeping
// binary clauses and clauses that are currently a reason for an assignment.
func (s *Solver) reduceDB() {
	locked := func(c *clause) bool {
		v := c.lits[0].Var()
		return s.assign[v] != 0 && s.reason[v] == c
	}
	sorted := append([]*clause(nil), s.learnts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].act < sorted[j].act })
	drop := make(map[*clause]bool, len(sorted)/2)
	for _, c := range sorted[:len(sorted)/2] {
		if len(c.lits) > 2 && !locked(c) {
			drop[c] = true
		}
	}
	if len(drop) == 0 {
		return
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !drop[c] {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	for li := range s.watches {
		ws := s.watches[li][:0]
		for _, w := range s.watches[li] {
			if !drop[w.c] {
				ws = append(ws, w)
			}
		}
		s.watches[li] = ws
	}
	s.stats.Deleted += int64(len(drop))
}

// Solve searches for a model. It returns Sat with a model readable via Value,
// Unsat when the instance is refuted, or Unknown when MaxConflicts ran out.
// Context cancellation is polled every CheckEvery conflicts and surfaces as
// (Unknown, ctx.Err()).
func (s *Solver) Solve(ctx context.Context) (Status, error) {
	if s.unsat {
		return Unsat, nil
	}
	if confl := s.propagate(); confl != nil {
		s.unsat = true
		return Unsat, nil
	}
	s.learntC = math.Max(float64(len(s.clauses))/3, 100)
	var restartSeq int64 = 1
	limit := s.opts.LubyUnit * luby(restartSeq)
	var sinceRestart int64
	startConflicts := s.stats.Conflicts
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			sinceRestart++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat, nil
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.enqueue(learnt[0], c)
				s.stats.Learned++
			}
			s.varInc /= s.opts.VarDecay
			s.claInc /= s.opts.ClauseDecay
			if s.stats.Conflicts%s.opts.CheckEvery == 0 {
				select {
				case <-ctx.Done():
					return Unknown, ctx.Err()
				default:
				}
			}
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts-startConflicts >= s.opts.MaxConflicts {
				return Unknown, nil
			}
			continue
		}
		if sinceRestart >= limit {
			s.stats.Restarts++
			restartSeq++
			limit = s.opts.LubyUnit * luby(restartSeq)
			sinceRestart = 0
			s.cancelUntil(0)
			continue
		}
		if float64(len(s.learnts)) >= s.learntC+float64(len(s.trail)) {
			s.reduceDB()
			s.learntC *= 1.3
		}
		l, ok := s.pickBranch()
		if !ok {
			s.model = append(s.model[:0], s.assign...)
			return Sat, nil
		}
		s.stats.Decisions++
		s.trailLo = append(s.trailLo, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Value reports variable v's polarity in the model of the last Sat verdict.
func (s *Solver) Value(v int) bool { return s.model[v] > 0 }
