// Package chaos stress-tests the resilient mapping pipeline two ways:
//
//   - Sweep injects growing numbers of random hardware faults and records a
//     degradation curve — how the success rate, the winning rung of the
//     degradation ladder, and the II inflation respond as the fabric decays;
//   - Mutants / MutationSweep corrupt *valid* mappings, one legality
//     constraint class at a time, and verify that both mapping.Validate and
//     the cycle-accurate simulator reject every corruption with a violation
//     naming the constraint that was broken.
//
// Both harnesses are deterministic: the same seed, array, and kernel set
// always produce the same curve, so a regression in either the mappers or the
// checkers shows up as a diff, not a flake.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"regimap/internal/arch"
	"regimap/internal/fault"
	"regimap/internal/kernels"
	"regimap/internal/resilient"
)

// SweepOptions configures a degradation sweep. The zero value sweeps the full
// kernel suite on a healthy 4x4 mesh with 4 registers per PE, from 0 to 3
// faults of every kind, 2 trials per fault count, seed 1.
type SweepOptions struct {
	// Kernels is the workload (nil: kernels.All()).
	Kernels []kernels.Kernel
	// Fabric is the base array faults are injected into (nil: 4x4 mesh, 4
	// registers).
	Fabric *arch.CGRA
	// MaxFaults is the largest fault count swept (0: 3).
	MaxFaults int
	// Trials is how many random fault sets are drawn per fault count (0: 2).
	// Fault count zero always runs exactly one trial — there is only one
	// empty set.
	Trials int
	// Seed makes the fault draws reproducible (0: 1).
	Seed int64
	// Kinds restricts the injected fault kinds (nil: every kind the fabric
	// admits).
	Kinds []fault.Kind
	// Resilient is the pipeline configuration template; its Faults field is
	// overwritten per trial.
	Resilient resilient.Options
}

// Point is one row of the degradation curve: every kernel x trial attempt at
// a fixed fault count.
type Point struct {
	Faults       int
	Attempts     int
	Mapped       int
	Rungs        map[resilient.Rung]int
	InflationSum float64  // sum over successes of II / healthy II
	Failures     []string // "kernel @ faults" for every failed attempt
}

// SuccessRate is the fraction of attempts that produced a certified mapping.
func (p *Point) SuccessRate() float64 {
	if p.Attempts == 0 {
		return 0
	}
	return float64(p.Mapped) / float64(p.Attempts)
}

// MeanInflation is the mean II / healthy-II ratio over successful attempts
// (1.0 means faults cost no throughput; 0 when nothing mapped).
func (p *Point) MeanInflation() float64 {
	if p.Mapped == 0 {
		return 0
	}
	return p.InflationSum / float64(p.Mapped)
}

// Curve is a full degradation sweep result.
type Curve struct {
	Points   []Point
	Baseline map[string]int // healthy II per kernel
}

// Table renders the curve as an aligned text table.
func (c *Curve) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-9s %-7s %-6s %-8s %-5s %-6s %s\n",
		"faults", "attempts", "mapped", "rate", "regimap", "ems", "dresc", "II-inflation")
	for i := range c.Points {
		p := &c.Points[i]
		fmt.Fprintf(&b, "%-7d %-9d %-7d %-6.2f %-8d %-5d %-6d %.3f\n",
			p.Faults, p.Attempts, p.Mapped, p.SuccessRate(),
			p.Rungs[resilient.RungREGIMap], p.Rungs[resilient.RungEMS], p.Rungs[resilient.RungDRESC],
			p.MeanInflation())
	}
	return b.String()
}

// Sweep maps every kernel against every drawn fault set, climbing the fault
// count from 0 to MaxFaults, and returns the degradation curve. Baselines
// (healthy II per kernel) are established first; a kernel that cannot map on
// the healthy fabric is an error, not a data point.
func Sweep(ctx context.Context, opts SweepOptions) (*Curve, error) {
	ks := opts.Kernels
	if ks == nil {
		ks = kernels.All()
	}
	fabric := opts.Fabric
	if fabric == nil {
		fabric = arch.NewMesh(4, 4, 4)
	}
	maxFaults := opts.MaxFaults
	if maxFaults == 0 {
		maxFaults = 3
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	curve := &Curve{Baseline: map[string]int{}}
	for _, k := range ks {
		out, err := resilient.Map(ctx, k.Build(), fabric, opts.Resilient)
		if err != nil {
			return nil, fmt.Errorf("chaos: healthy baseline for %s: %w", k.Name, err)
		}
		curve.Baseline[k.Name] = out.II
	}

	for n := 0; n <= maxFaults; n++ {
		point := Point{Faults: n, Rungs: map[resilient.Rung]int{}}
		nTrials := trials
		if n == 0 {
			nTrials = 1
		}
		for trial := 0; trial < nTrials; trial++ {
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(n)*1009 + int64(trial)))
			fs := fault.Random(rng, fabric, n, opts.Kinds...)
			ropts := opts.Resilient
			ropts.Faults = fs
			for _, k := range ks {
				out, err := resilient.Map(ctx, k.Build(), fabric, ropts)
				point.Attempts++
				if err != nil {
					if ctx.Err() != nil {
						return curve, err
					}
					point.Failures = append(point.Failures, fmt.Sprintf("%s @ %q", k.Name, fs))
					continue
				}
				point.Mapped++
				point.Rungs[out.Rung]++
				point.InflationSum += float64(out.II) / float64(curve.Baseline[k.Name])
			}
		}
		curve.Points = append(curve.Points, point)
	}
	return curve, nil
}
