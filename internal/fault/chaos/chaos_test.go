package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/fault"
	"regimap/internal/kernels"
	"regimap/internal/mapping"
	"regimap/internal/sim"
)

// suite returns the kernel workload: the full tier-1 suite, thinned in short
// mode to keep the chaos tests inside the default -short budget.
func suite(t *testing.T) []kernels.Kernel {
	t.Helper()
	ks := kernels.All()
	if !testing.Short() {
		return ks
	}
	var sub []kernels.Kernel
	for i, k := range ks {
		if i%4 == 0 {
			sub = append(sub, k)
		}
	}
	return sub
}

// TestDegradationGuarantee is the acceptance criterion of the fault-injection
// work: on a 4x4 array with up to 3 random PE or link faults, every tier-1
// kernel still maps through the degradation ladder, and every produced
// mapping is certified against the simulator (resilient.Map certifies before
// returning).
func TestDegradationGuarantee(t *testing.T) {
	curve, err := Sweep(context.Background(), SweepOptions{
		Kernels:   suite(t),
		MaxFaults: 3,
		Trials:    1,
		Seed:      7,
		Kinds:     []fault.Kind{fault.BrokenPE, fault.DeadLink},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 4 {
		t.Fatalf("curve has %d points, want 4 (0..3 faults)", len(curve.Points))
	}
	for i := range curve.Points {
		p := &curve.Points[i]
		if p.SuccessRate() != 1.0 {
			t.Errorf("%d fault(s): %d/%d mapped; failures: %v",
				p.Faults, p.Mapped, p.Attempts, p.Failures)
		}
	}
	t.Logf("degradation curve:\n%s", curve.Table())
}

// TestSweepStructure checks the bookkeeping of a small sweep: point layout,
// baselines, the healthy point mapping everything at inflation 1.0, and the
// table renderer.
func TestSweepStructure(t *testing.T) {
	ks := kernels.All()[:2]
	curve, err := Sweep(context.Background(), SweepOptions{
		Kernels:   ks,
		MaxFaults: 2,
		Trials:    1,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Baseline) != len(ks) {
		t.Fatalf("baselines for %d kernels, want %d", len(curve.Baseline), len(ks))
	}
	healthy := &curve.Points[0]
	if healthy.Faults != 0 || healthy.Attempts != len(ks) || healthy.Mapped != len(ks) {
		t.Fatalf("healthy point = %+v", healthy)
	}
	if got := healthy.MeanInflation(); got != 1.0 {
		t.Fatalf("healthy II inflation = %v, want exactly 1.0", got)
	}
	table := curve.Table()
	if !strings.Contains(table, "faults") || len(strings.Split(strings.TrimSpace(table), "\n")) != 4 {
		t.Fatalf("table:\n%s", table)
	}
}

// TestSweepDeterministic: same options, same curve — the chaos harness must
// not be a flake generator.
func TestSweepDeterministic(t *testing.T) {
	opts := SweepOptions{Kernels: kernels.All()[:1], MaxFaults: 2, Trials: 2, Seed: 11}
	a, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("same seed, different curves:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

// TestMutationSweepCatchRate is the mutation half of the acceptance
// criterion: every applicable corruption of every kernel's valid mapping must
// be rejected by BOTH mapping.Validate and sim.Check, and Validate must blame
// exactly the constraint the mutant targeted — a 100% catch rate.
func TestMutationSweepCatchRate(t *testing.T) {
	// The fabric carries a broken PE and a dead row so the capability mutant
	// and the dead-row strategy of the row-bus mutant have a target.
	fs, err := fault.Parse("pe 3,3; row 3")
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := MutationSweep(context.Background(), suite(t), arch.NewMesh(4, 4, 4), fs)
	if err != nil {
		t.Fatal(err)
	}
	applied, caught, classes := CatchRate(outcomes)
	if applied == 0 {
		t.Fatal("no mutation applied anywhere — the harness is inert")
	}
	for _, o := range outcomes {
		if !o.Caught() {
			t.Errorf("%s/%s escaped: validate=%v sim=%v got=%q want=%q",
				o.Kernel, o.Mutant, o.CaughtValidate, o.CaughtSim, o.Got, o.Expected)
		}
	}
	if caught != applied {
		t.Fatalf("catch rate %d/%d, want 100%%", caught, applied)
	}
	// Register capacity has its own guaranteed fixture below; every other
	// class must be exercised by the kernel suite itself.
	for _, want := range []mapping.Constraint{
		mapping.ConstraintBinding, mapping.ConstraintCapability,
		mapping.ConstraintOccupancy, mapping.ConstraintRowBus,
		mapping.ConstraintPrecedence, mapping.ConstraintAdjacency,
		mapping.ConstraintRegisterCarry,
	} {
		if classes[want] == 0 {
			t.Errorf("constraint class %q never exercised", want)
		}
	}
	t.Logf("mutation sweep: %d applied, %d caught, classes %v", applied, caught, classes)
}

// TestMutantRegisterCapacityFixture pins the register-capacity mutant on a
// hand-built mapping where it is applicable by construction: a producer
// feeding a register-carried sink on one PE. Kernel mappings do not always
// contain such a shape, so the class is guaranteed here.
func TestMutantRegisterCapacityFixture(t *testing.T) {
	b := dfg.NewBuilder("capprobe")
	x := b.Input("x")
	y := b.Op(dfg.Add, "y", x, x)
	d := b.Build()
	m := mapping.New(d, arch.NewMesh(2, 2, 4), 2)
	m.Time[x], m.PE[x] = 0, 0
	m.Time[y], m.PE[y] = 3, 0 // span 3 > 1: register-carried on PE 0
	if err := m.Validate(); err != nil {
		t.Fatalf("fixture is not a valid mapping: %v", err)
	}
	for _, mut := range Mutants() {
		if mut.Constraint != mapping.ConstraintRegisterCap {
			continue
		}
		m2 := cloneMapping(m)
		if !mut.Apply(m2) {
			t.Fatal("register-capacity mutant rejected its own fixture")
		}
		verr := m2.Validate()
		if verr == nil {
			t.Fatal("validator accepted the overflowing mapping")
		}
		var viol *mapping.Violation
		if !errors.As(verr, &viol) || viol.Constraint != mapping.ConstraintRegisterCap {
			t.Fatalf("wrong constraint blamed: %v", verr)
		}
		if sim.Check(m2, 3) == nil {
			t.Fatal("simulator executed the overflowing mapping")
		}
		return
	}
	t.Fatal("no register-capacity mutant in the catalogue")
}
