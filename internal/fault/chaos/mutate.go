package chaos

import (
	"context"
	"errors"
	"fmt"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/ems"
	"regimap/internal/fault"
	"regimap/internal/kernels"
	"regimap/internal/mapping"
	"regimap/internal/sim"
)

// Mutant is one constraint-targeted corruption of a valid mapping. Apply
// mutates m in place and reports whether the mapping admitted this corruption
// (a kernel with no register-carried edge cannot host a register-carry
// mutation, for instance). Each mutant is constructed so that the *only*
// legality rule it breaks is Constraint — the mutation harness asserts not
// just that the validator rejects, but that it names the right rule.
type Mutant struct {
	Name       string
	Constraint mapping.Constraint
	Apply      func(m *mapping.Mapping) bool
}

// MutationOutcome records how the checkers handled one applied mutant.
type MutationOutcome struct {
	Kernel         string
	Mutant         string
	Expected       mapping.Constraint
	Got            mapping.Constraint // constraint Validate reported ("" if it let the corruption through)
	CaughtValidate bool
	CaughtSim      bool
}

// Caught reports whether both the structural validator and the simulator
// rejected the corruption, and the validator blamed the intended constraint.
func (o MutationOutcome) Caught() bool {
	return o.CaughtValidate && o.CaughtSim && o.Got == o.Expected
}

// Mutants returns the corruption catalogue, one entry per legality rule of
// mapping.Validate. Mutants that need hardware faults to be expressible
// (capability needs a broken PE, one row-bus strategy needs a dead row)
// simply report inapplicable on a fabric without them.
func Mutants() []Mutant {
	return []Mutant{
		{
			Name:       "unschedule-op",
			Constraint: mapping.ConstraintBinding,
			Apply: func(m *mapping.Mapping) bool {
				if m.D.N() == 0 {
					return false
				}
				m.Time[0] = -1
				return true
			},
		},
		{
			Name:       "bind-to-broken-pe",
			Constraint: mapping.ConstraintCapability,
			Apply: func(m *mapping.Mapping) bool {
				for q := 0; q < m.C.NumPEs(); q++ {
					if m.C.PEOk(q) {
						continue
					}
					m.PE[0] = q
					return true
				}
				return false
			},
		},
		{
			Name:       "collide-slot",
			Constraint: mapping.ConstraintOccupancy,
			Apply: func(m *mapping.Mapping) bool {
				// Move op w onto op v's (PE, slot); v < w so the validator's
				// sweep meets v first and books the slot.
				for w := 1; w < m.D.N(); w++ {
					for v := 0; v < w; v++ {
						if !m.C.Supports(m.PE[v], m.D.Nodes[w].Kind) {
							continue
						}
						m.PE[w] = m.PE[v]
						m.Time[w] = m.Time[v]
						return true
					}
				}
				return false
			},
		},
		{
			Name:       "double-book-row-bus",
			Constraint: mapping.ConstraintRowBus,
			Apply:      mutateRowBus,
		},
		{
			Name:       "break-precedence",
			Constraint: mapping.ConstraintPrecedence,
			Apply:      mutatePrecedence,
		},
		{
			Name:       "teleport-consumer",
			Constraint: mapping.ConstraintAdjacency,
			Apply:      mutateAdjacency,
		},
		{
			Name:       "split-register-pair",
			Constraint: mapping.ConstraintRegisterCarry,
			Apply:      mutateRegisterCarry,
		},
		{
			Name:       "overflow-register-file",
			Constraint: mapping.ConstraintRegisterCap,
			Apply:      mutateRegisterCap,
		},
	}
}

// otherOccupies reports whether any op besides `except` sits on (pe, slot).
func otherOccupies(m *mapping.Mapping, except, pe, slot int) bool {
	for v := range m.D.Nodes {
		if v != except && m.PE[v] == pe && m.Slot(v) == slot {
			return true
		}
	}
	return false
}

// busTaken reports whether any memory op besides `except` uses row's bus in
// the given modulo slot.
func busTaken(m *mapping.Mapping, except, row, slot int) bool {
	for v := range m.D.Nodes {
		if v != except && m.D.Nodes[v].Kind.IsMem() && m.C.RowOf(m.PE[v]) == row && m.Slot(v) == slot {
			return true
		}
	}
	return false
}

// placeable reports whether op v could legally sit on (pe, slot) as far as
// the node-local rules go: live supporting PE, free slot, free live bus.
// Mutants use it to keep every rule *except their target* satisfied.
func placeable(m *mapping.Mapping, v, pe, slot int) bool {
	if !m.C.PEOk(pe) || !m.C.Supports(pe, m.D.Nodes[v].Kind) {
		return false
	}
	if otherOccupies(m, v, pe, slot) {
		return false
	}
	if m.D.Nodes[v].Kind.IsMem() {
		row := m.C.RowOf(pe)
		if !m.C.RowBusOK(row) || busTaken(m, v, row, slot) {
			return false
		}
	}
	return true
}

// mutateRowBus creates a bus conflict: a second memory op moved onto an
// already-used (row, slot) from a different PE, or — on a fabric with a dead
// row — a memory op moved onto a live PE of that row.
func mutateRowBus(m *mapping.Mapping) bool {
	var mems []int
	for v := range m.D.Nodes {
		if m.D.Nodes[v].Kind.IsMem() {
			mems = append(mems, v)
		}
	}
	for _, w := range mems {
		for _, v := range mems {
			if v == w {
				continue
			}
			row, slot := m.C.RowOf(m.PE[v]), m.Slot(v)
			for col := 0; col < m.C.Cols; col++ {
				q := m.C.PEAt(row, col)
				if q == m.PE[v] || !m.C.PEOk(q) || !m.C.Supports(q, m.D.Nodes[w].Kind) {
					continue
				}
				if otherOccupies(m, w, q, slot) {
					continue
				}
				m.PE[w] = q
				m.Time[w] = m.Time[v]
				return true
			}
		}
	}
	for _, w := range mems {
		for q := 0; q < m.C.NumPEs(); q++ {
			if m.C.RowBusOK(m.C.RowOf(q)) {
				continue
			}
			if !m.C.PEOk(q) || !m.C.Supports(q, m.D.Nodes[w].Kind) || otherOccupies(m, w, q, m.Slot(w)) {
				continue
			}
			m.PE[w] = q
			return true
		}
	}
	return false
}

// mutatePrecedence reschedules a sink consumer one cycle too early. Sinks
// only: a node with downstream consumers could surface the corruption as a
// register-carry violation on an outgoing edge instead.
func mutatePrecedence(m *mapping.Mapping) bool {
	for _, e := range m.D.Edges {
		if e.From == e.To || !selfEdgesOnly(m, e.To) {
			continue
		}
		lat := m.D.Nodes[e.From].Kind.Latency()
		nt := m.Time[e.From] - m.II*e.Dist + lat - 1
		if nt < 0 || !placeable(m, e.To, m.PE[e.To], nt%m.II) {
			continue
		}
		m.Time[e.To] = nt
		return true
	}
	return false
}

// mutateAdjacency moves the consumer of a one-cycle dependence onto a PE the
// producer's output register cannot reach. Consumers touching any
// register-carried edge are skipped so the corruption cannot be blamed on the
// register-carry rule instead.
func mutateAdjacency(m *mapping.Mapping) bool {
	for _, e := range m.D.Edges {
		if e.From == e.To || m.Span(e) != 1 {
			continue
		}
		to := e.To
		pure := true
		for _, ei := range incident(m, to) {
			ed := m.D.Edges[ei]
			if ed.From != ed.To && m.Span(ed) > 1 {
				pure = false
				break
			}
		}
		if !pure {
			continue
		}
		for q := 0; q < m.C.NumPEs(); q++ {
			if q == m.PE[to] || m.C.Connected(m.PE[e.From], q) || !placeable(m, to, q, m.Slot(to)) {
				continue
			}
			m.PE[to] = q
			return true
		}
	}
	return false
}

// mutateRegisterCarry moves the consumer of a register-carried dependence off
// the producer's PE — register files are PE-private, so the value becomes
// unreachable. The destination is chosen so every one-cycle dependence of the
// consumer stays adjacent: the carry rule must be the one that fires.
func mutateRegisterCarry(m *mapping.Mapping) bool {
	for _, e := range m.D.Edges {
		if e.From == e.To || m.Span(e) <= 1 {
			continue
		}
		to := e.To
		for q := 0; q < m.C.NumPEs(); q++ {
			if q == m.PE[to] || !placeable(m, to, q, m.Slot(to)) {
				continue
			}
			pure := true
			for _, ei := range incident(m, to) {
				ed := m.D.Edges[ei]
				if ed.From == ed.To || m.Span(ed) != 1 {
					continue
				}
				other := ed.From
				if other == to {
					other = ed.To
				}
				var connected bool
				if ed.To == to {
					connected = m.C.Connected(m.PE[other], q)
				} else {
					connected = m.C.Connected(q, m.PE[other])
				}
				if !connected {
					pure = false
					break
				}
			}
			if !pure {
				continue
			}
			m.PE[to] = q
			return true
		}
	}
	return false
}

// mutateRegisterCap delays a register-carried sink by II * (file size + 1)
// cycles: the modulo slot (hence occupancy and bus use) is unchanged, every
// dependence still points forward, but the value now sits in the producer's
// register file across more in-flight iterations than it has registers.
// Requires a sink whose cross-node producers all share its PE so the grown
// spans stay legal register carries.
func mutateRegisterCap(m *mapping.Mapping) bool {
	for _, e := range m.D.Edges {
		if e.From == e.To || m.Span(e) <= 1 || !selfEdgesOnly(m, e.To) {
			continue
		}
		to := e.To
		pure := true
		for _, ei := range m.D.InEdges(to) {
			ed := m.D.Edges[ei]
			if ed.From != to && m.PE[ed.From] != m.PE[to] {
				pure = false
				break
			}
		}
		if !pure {
			continue
		}
		m.Time[to] += m.II * (m.C.RegsAt(m.PE[e.From]) + 1)
		return true
	}
	return false
}

// selfEdgesOnly reports whether v's outgoing edges all loop back to v itself.
func selfEdgesOnly(m *mapping.Mapping, v int) bool {
	for _, ei := range m.D.OutEdges(v) {
		if m.D.Edges[ei].To != v {
			return false
		}
	}
	return true
}

// incident returns the edge indices touching v, incoming then outgoing.
func incident(m *mapping.Mapping, v int) []int {
	return append(append([]int{}, m.D.InEdges(v)...), m.D.OutEdges(v)...)
}

// cloneMapping copies the schedule and binding; kernel and fabric are shared.
func cloneMapping(m *mapping.Mapping) *mapping.Mapping {
	c := mapping.New(m.D, m.C, m.II)
	copy(c.Time, m.Time)
	copy(c.PE, m.PE)
	return c
}

// MutationSweep maps every kernel on the (possibly faulted) fabric, applies
// every applicable mutant to a copy of each valid mapping, and records how
// mapping.Validate and sim.Check handled the corruption. Kernels that do not
// map on the given fabric are skipped — the sweep measures the checkers, not
// the mappers.
func MutationSweep(ctx context.Context, ks []kernels.Kernel, c *arch.CGRA, fs *fault.Set) ([]MutationOutcome, error) {
	if ks == nil {
		ks = kernels.All()
	}
	fabric, err := fs.Apply(c)
	if err != nil {
		return nil, err
	}
	muts := Mutants()
	var outcomes []MutationOutcome
	for _, k := range ks {
		if ctx.Err() != nil {
			return outcomes, ctx.Err()
		}
		d := k.Build()
		m, _, err := core.Map(ctx, d, fabric, core.Options{})
		if err != nil {
			if m2, _, err2 := ems.Map(ctx, d, fabric, ems.Options{}); err2 == nil {
				m = m2
			} else {
				continue
			}
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: pre-mutation mapping of %s is already invalid: %w", k.Name, err)
		}
		for _, mut := range muts {
			corrupt := cloneMapping(m)
			if !mut.Apply(corrupt) {
				continue
			}
			o := MutationOutcome{Kernel: k.Name, Mutant: mut.Name, Expected: mut.Constraint}
			if verr := corrupt.Validate(); verr != nil {
				o.CaughtValidate = true
				var viol *mapping.Violation
				if errors.As(verr, &viol) {
					o.Got = viol.Constraint
				}
			}
			o.CaughtSim = sim.Check(corrupt, 3) != nil
			outcomes = append(outcomes, o)
		}
	}
	return outcomes, nil
}

// CatchRate summarises a mutation sweep: applied mutations, fully caught
// mutations (right constraint, both checkers), and the constraint classes
// that were exercised at least once.
func CatchRate(outcomes []MutationOutcome) (applied, caught int, classes map[mapping.Constraint]int) {
	classes = map[mapping.Constraint]int{}
	for _, o := range outcomes {
		applied++
		classes[o.Expected]++
		if o.Caught() {
			caught++
		}
	}
	return applied, caught, classes
}
