// Package fault defines a declarative hardware fault model for the CGRA: a
// FaultSet lists broken PEs, dead fabric links, reduced register files, and
// failed row buses, each either permanent or transient. Applying a set to an
// architecture produces a faulted view of the array that every layer above —
// compatibility-graph construction, the MRRG, the schedulers, the validator,
// and the cycle-accurate simulator — respects through the arch fault
// accessors (PEOk, RegsAt, RowBusOK, Connected).
//
// Sets have a textual grammar so faults can travel on command lines and in
// fuzz corpora:
//
//	pe 1,2            # PE at row 1, col 2 is broken
//	link 0,0-0,1      # the fabric link between two connected PEs is cut
//	regs 1,1=2        # PE (1,1)'s register file holds only 2 registers
//	row 3             # row 3's shared memory bus is dead
//	pe 0,0~2          # transient: clears after 2 retry rounds
//
// Faults are separated by semicolons or newlines; '#' starts a comment.
// Parse and Set.String round-trip.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"regimap/internal/arch"
)

// Kind classifies a hardware fault.
type Kind int

const (
	// BrokenPE: the PE's ALU, output register, and register file are all
	// unusable, and every mesh link touching it is severed.
	BrokenPE Kind = iota
	// DeadLink: one fabric link is cut in both directions; the PEs at its
	// ends keep working. The link must exist in the nominal fabric, whatever
	// its topology (mesh, mesh+, torus, 1hop, or custom-edited links).
	DeadLink
	// ReducedRegs: the PE works but its rotating register file holds fewer
	// registers than the architecture nominally provides (stuck cells).
	ReducedRegs
	// DeadRowBus: the row's shared memory bus is dead; no load or store may
	// issue anywhere on the row.
	DeadRowBus
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case BrokenPE:
		return "pe"
	case DeadLink:
		return "link"
	case ReducedRegs:
		return "regs"
	case DeadRowBus:
		return "row"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one hardware defect. Coordinates are (row, col) pairs; which
// fields are meaningful depends on Kind:
//
//	BrokenPE     R,C: the PE
//	DeadLink     R,C and R2,C2: the link's two endpoints
//	ReducedRegs  R,C: the PE; Regs: usable registers remaining
//	DeadRowBus   R: the row
type Fault struct {
	Kind   Kind
	R, C   int
	R2, C2 int
	Regs   int
	// ClearAfter makes the fault transient: it is active during retry rounds
	// 0..ClearAfter-1 and gone from round ClearAfter on (an intermittent
	// defect that a deadline-aware retry can wait out). Zero means permanent.
	ClearAfter int
}

// String renders the fault in the grammar Parse accepts.
func (f Fault) String() string {
	var b strings.Builder
	switch f.Kind {
	case BrokenPE:
		fmt.Fprintf(&b, "pe %d,%d", f.R, f.C)
	case DeadLink:
		fmt.Fprintf(&b, "link %d,%d-%d,%d", f.R, f.C, f.R2, f.C2)
	case ReducedRegs:
		fmt.Fprintf(&b, "regs %d,%d=%d", f.R, f.C, f.Regs)
	case DeadRowBus:
		fmt.Fprintf(&b, "row %d", f.R)
	default:
		fmt.Fprintf(&b, "%s?", f.Kind)
	}
	if f.ClearAfter > 0 {
		fmt.Fprintf(&b, "~%d", f.ClearAfter)
	}
	return b.String()
}

// Transient reports whether the fault clears after some retry rounds.
func (f Fault) Transient() bool { return f.ClearAfter > 0 }

// Set is a declarative collection of hardware faults.
type Set struct {
	Faults []Fault
}

// Empty reports whether the set holds no faults.
func (s *Set) Empty() bool { return s == nil || len(s.Faults) == 0 }

// String renders the set in the grammar Parse accepts ("" for an empty set).
func (s *Set) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// HasTransient reports whether any fault in the set eventually clears.
func (s *Set) HasTransient() bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Transient() {
			return true
		}
	}
	return false
}

// MaxClearAfter returns the last retry round in which any transient fault is
// still active (0 when every fault is permanent): from round MaxClearAfter
// on, Active returns only the permanent faults.
func (s *Set) MaxClearAfter() int {
	max := 0
	if s == nil {
		return 0
	}
	for _, f := range s.Faults {
		if f.ClearAfter > max {
			max = f.ClearAfter
		}
	}
	return max
}

// Active returns the faults still present in retry round `round` (0-based):
// every permanent fault, plus the transient ones with round < ClearAfter.
// Round 0 is the full set.
func (s *Set) Active(round int) *Set {
	if s.Empty() {
		return &Set{}
	}
	out := &Set{}
	for _, f := range s.Faults {
		if f.ClearAfter == 0 || round < f.ClearAfter {
			out.Faults = append(out.Faults, f)
		}
	}
	return out
}

// Validate checks every fault against the architecture: coordinates in
// range, link endpoints adjacent in the healthy mesh, register limits within
// the file size. It does not modify c.
func (s *Set) Validate(c *arch.CGRA) error {
	if s.Empty() {
		return nil
	}
	for i, f := range s.Faults {
		if err := f.validate(c); err != nil {
			return fmt.Errorf("fault: #%d (%s): %w", i, f, err)
		}
	}
	return nil
}

func (f Fault) validate(c *arch.CGRA) error {
	inRange := func(r, col int) error {
		if r < 0 || r >= c.Rows || col < 0 || col >= c.Cols {
			return fmt.Errorf("PE (%d,%d) outside the %dx%d array", r, col, c.Rows, c.Cols)
		}
		return nil
	}
	if f.ClearAfter < 0 {
		return fmt.Errorf("negative clear-after %d", f.ClearAfter)
	}
	switch f.Kind {
	case BrokenPE:
		return inRange(f.R, f.C)
	case DeadLink:
		if err := inRange(f.R, f.C); err != nil {
			return err
		}
		if err := inRange(f.R2, f.C2); err != nil {
			return err
		}
		p, q := c.PEAt(f.R, f.C), c.PEAt(f.R2, f.C2)
		if p == q {
			return fmt.Errorf("link endpoints are the same PE (%d,%d)", f.R, f.C)
		}
		// Adjacency is judged on the healthy (nominal) fabric: whether a
		// *fault set* makes sense is a property of the architecture, not of
		// which other faults happen to accompany it. This composes on any
		// described topology, not just the paper's mesh.
		if !c.NominalConnected(p, q) {
			return fmt.Errorf("no fabric link between (%d,%d) and (%d,%d)", f.R, f.C, f.R2, f.C2)
		}
		return nil
	case ReducedRegs:
		if err := inRange(f.R, f.C); err != nil {
			return err
		}
		if nom := c.NominalRegsAt(c.PEAt(f.R, f.C)); f.Regs < 0 || f.Regs >= nom {
			return fmt.Errorf("register limit %d outside [0,%d)", f.Regs, nom)
		}
		return nil
	case DeadRowBus:
		if f.R < 0 || f.R >= c.Rows {
			return fmt.Errorf("row %d outside [0,%d)", f.R, c.Rows)
		}
		return nil
	default:
		return fmt.Errorf("unknown fault kind %d", int(f.Kind))
	}
}

// Apply validates the set and returns a view of the architecture with every
// fault applied. The input array is never modified; an empty set returns c
// itself (so the healthy path is byte-identical to not using this package at
// all). Faults are applied links-first so a cut link whose endpoint another
// fault breaks is not an error.
func (s *Set) Apply(c *arch.CGRA) (*arch.CGRA, error) {
	if s.Empty() {
		return c, nil
	}
	if err := s.Validate(c); err != nil {
		return nil, err
	}
	cl := c.Clone()
	// Order: links while both endpoints still exist, then PEs, then the
	// rest. Within a class, input order.
	byClass := func(k Kind) int {
		if k == DeadLink {
			return 0
		}
		return 1
	}
	order := make([]int, len(s.Faults))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return byClass(s.Faults[order[a]].Kind) < byClass(s.Faults[order[b]].Kind)
	})
	for _, i := range order {
		f := s.Faults[i]
		switch f.Kind {
		case BrokenPE:
			cl.DisablePE(cl.PEAt(f.R, f.C))
		case DeadLink:
			p, q := cl.PEAt(f.R, f.C), cl.PEAt(f.R2, f.C2)
			if !cl.Connected(p, q) {
				continue // the same link was already cut by a duplicate
			}
			if err := cl.CutLink(p, q); err != nil {
				return nil, fmt.Errorf("fault: %s: %w", f, err)
			}
		case ReducedRegs:
			p := cl.PEAt(f.R, f.C)
			if f.Regs < cl.RegsAt(p) {
				cl.LimitRegs(p, f.Regs)
			}
		case DeadRowBus:
			cl.DisableRowBus(f.R)
		}
	}
	return cl, nil
}

// Parse reads a fault set from its textual form. Faults are separated by
// semicolons or newlines; '#' comments run to end of line; an empty (or
// all-comment) input yields an empty set. Parse is purely syntactic —
// validate against a concrete array with Set.Validate or Set.Apply.
func Parse(text string) (*Set, error) {
	s := &Set{}
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Split(line, ";") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			f, err := parseFault(tok)
			if err != nil {
				return nil, err
			}
			s.Faults = append(s.Faults, f)
		}
	}
	return s, nil
}

func parseFault(tok string) (Fault, error) {
	var f Fault
	body := tok
	if i := strings.IndexByte(tok, '~'); i >= 0 {
		body = strings.TrimSpace(tok[:i])
		n, err := parseUint(strings.TrimSpace(tok[i+1:]))
		if err != nil || n == 0 {
			return f, fmt.Errorf("fault: %q: bad clear-after %q (want ~N with N >= 1)", tok, tok[i+1:])
		}
		f.ClearAfter = n
	}
	kind, rest, ok := strings.Cut(body, " ")
	if !ok {
		return f, fmt.Errorf("fault: %q: want \"<kind> <where>\"", tok)
	}
	rest = strings.TrimSpace(rest)
	switch kind {
	case "pe":
		f.Kind = BrokenPE
		r, c, err := parsePair(rest)
		if err != nil {
			return f, fmt.Errorf("fault: %q: %w", tok, err)
		}
		f.R, f.C = r, c
	case "link":
		f.Kind = DeadLink
		a, b, ok := strings.Cut(rest, "-")
		if !ok {
			return f, fmt.Errorf("fault: %q: want \"link r1,c1-r2,c2\"", tok)
		}
		r1, c1, err := parsePair(strings.TrimSpace(a))
		if err != nil {
			return f, fmt.Errorf("fault: %q: %w", tok, err)
		}
		r2, c2, err := parsePair(strings.TrimSpace(b))
		if err != nil {
			return f, fmt.Errorf("fault: %q: %w", tok, err)
		}
		f.R, f.C, f.R2, f.C2 = r1, c1, r2, c2
	case "regs":
		f.Kind = ReducedRegs
		at, limit, ok := strings.Cut(rest, "=")
		if !ok {
			return f, fmt.Errorf("fault: %q: want \"regs r,c=k\"", tok)
		}
		r, c, err := parsePair(strings.TrimSpace(at))
		if err != nil {
			return f, fmt.Errorf("fault: %q: %w", tok, err)
		}
		k, err := parseUint(strings.TrimSpace(limit))
		if err != nil {
			return f, fmt.Errorf("fault: %q: bad register count %q", tok, limit)
		}
		f.R, f.C, f.Regs = r, c, k
	case "row":
		f.Kind = DeadRowBus
		r, err := parseUint(rest)
		if err != nil {
			return f, fmt.Errorf("fault: %q: bad row %q", tok, rest)
		}
		f.R = r
	default:
		return f, fmt.Errorf("fault: %q: unknown kind %q (want pe, link, regs, or row)", tok, kind)
	}
	return f, nil
}

// parsePair reads "r,c" into two non-negative ints.
func parsePair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad coordinate %q (want r,c)", s)
	}
	r, err := parseUint(strings.TrimSpace(a))
	if err != nil {
		return 0, 0, fmt.Errorf("bad row %q", a)
	}
	c, err := parseUint(strings.TrimSpace(b))
	if err != nil {
		return 0, 0, fmt.Errorf("bad column %q", b)
	}
	return r, c, nil
}

// parseUint reads a non-negative decimal integer without sign, spaces, or
// size suffixes (strconv.Atoi would accept "+3"; the grammar does not).
func parseUint(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
		n = n*10 + int(ch-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("number %q too large", s)
		}
	}
	return n, nil
}

// Random draws n distinct valid faults for the given array, deterministically
// from rng. Kinds are drawn uniformly from allowed (default: every kind
// applicable to the array — DeadRowBus only on multi-row arrays so a
// single-row array is not instantly starved, ReducedRegs only when the array
// has registers). The same (rng seed, array, n, kinds) always yields the
// same set; faults are permanent — mark individual faults transient by
// setting ClearAfter afterwards. When the array cannot supply n distinct
// faults the draw stops short rather than spinning.
func Random(rng *rand.Rand, c *arch.CGRA, n int, allowed ...Kind) *Set {
	s := &Set{}
	seen := map[string]bool{}
	kinds := allowed
	if len(kinds) == 0 {
		kinds = []Kind{BrokenPE, DeadLink}
		if c.NumRegs > 1 {
			kinds = append(kinds, ReducedRegs)
		}
		if c.Rows > 1 {
			kinds = append(kinds, DeadRowBus)
		}
	}
	for tries := 0; len(s.Faults) < n && tries < 64*(n+1); tries++ {
		var f Fault
		switch kinds[rng.Intn(len(kinds))] {
		case BrokenPE:
			f = Fault{Kind: BrokenPE, R: rng.Intn(c.Rows), C: rng.Intn(c.Cols)}
		case DeadLink:
			r, col := rng.Intn(c.Rows), rng.Intn(c.Cols)
			dirs := [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}}
			d := dirs[rng.Intn(4)]
			r2, c2 := r+d[0], col+d[1]
			if r2 < 0 || r2 >= c.Rows || c2 < 0 || c2 >= c.Cols {
				continue
			}
			if !c.NominalConnected(c.PEAt(r, col), c.PEAt(r2, c2)) {
				continue // a custom edit removed this orthogonal link
			}
			f = Fault{Kind: DeadLink, R: r, C: col, R2: r2, C2: c2}
		case ReducedRegs:
			r, col := rng.Intn(c.Rows), rng.Intn(c.Cols)
			nom := c.NominalRegsAt(c.PEAt(r, col))
			if nom < 1 {
				continue // this PE's nominal file is empty: nothing to reduce
			}
			f = Fault{Kind: ReducedRegs, R: r, C: col, Regs: rng.Intn(nom)}
		case DeadRowBus:
			f = Fault{Kind: DeadRowBus, R: rng.Intn(c.Rows)}
		}
		key := f.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		s.Faults = append(s.Faults, f)
	}
	return s
}
