package fault

import (
	"math/rand"
	"testing"

	"regimap/internal/arch"
)

func grid(t *testing.T) *arch.CGRA {
	t.Helper()
	return arch.NewMesh(4, 4, 4)
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"pe 1,2",
		"pe 0,0~2",
		"link 0,0-0,1",
		"link 1,1-2,1~5",
		"regs 1,1=2",
		"regs 3,3=0~1",
		"row 3",
		"pe 1,2; link 0,0-0,1; regs 1,1=2; row 3",
	}
	for _, text := range cases {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Errorf("Parse(%q).String() = %q", text, got)
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s.String(), err)
		}
		if again.String() != s.String() {
			t.Errorf("round trip of %q unstable: %q", text, again.String())
		}
	}
}

func TestParseSeparatorsAndComments(t *testing.T) {
	s, err := Parse("# header\npe 0,0 # broken in the corner\n\n  row 1 ;; link 2,0-2,1  \n# trailing")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), "pe 0,0; row 1; link 2,0-2,1"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"pe",                        // no coordinates
		"pe 1",                      // not a pair
		"pe 1,2,3",                  // parsePair takes the first comma: "2,3" is a bad column
		"pe a,b",                    // not numbers
		"pe 1,2~0",                  // transient must clear after >= 1 round
		"pe 1,2~",                   // empty clear-after
		"pe +1,2",                   // no signs
		"link 0,0",                  // missing second endpoint
		"link 0,0-",                 // empty second endpoint
		"regs 1,1",                  // missing limit
		"regs 1,1=x",                // bad limit
		"row",                       // missing row
		"row x",                     // bad row
		"bus 3",                     // unknown kind
		"pe 99999999999999999999,0", // overflow guard
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestValidate(t *testing.T) {
	c := grid(t)
	bad := []string{
		"pe 4,0",       // row out of range
		"pe 0,4",       // col out of range
		"link 0,0-1,1", // diagonal: not a mesh link
		"link 0,0-0,2", // two hops
		"link 0,0-0,0", // self loop (caught syntactically? no: semantically)
		"regs 0,0=4",   // limit must be strictly below NumRegs
		"regs 0,0=9",   // above the file size
		"row 4",        // out of range
	}
	for _, text := range bad {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if err := s.Validate(c); err == nil {
			t.Errorf("Validate(%q) succeeded, want error", text)
		}
		if _, err := s.Apply(c); err == nil {
			t.Errorf("Apply(%q) succeeded, want error", text)
		}
	}
}

func TestApplyEmptyReturnsSameArray(t *testing.T) {
	c := grid(t)
	for _, s := range []*Set{nil, {}, mustParse(t, "")} {
		got, err := s.Apply(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatal("empty set must return the identical *CGRA, not a clone")
		}
	}
}

func TestApplyFaults(t *testing.T) {
	c := grid(t)
	s := mustParse(t, "pe 1,1; link 0,0-0,1; regs 2,2=1; row 3")
	fc, err := s.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultCount() != 0 || c.UsablePEs() != 16 {
		t.Fatal("Apply mutated the input array")
	}
	if fc.Healthy() || fc.FaultCount() != 4 {
		t.Fatalf("faulted view reports %d faults, want 4", fc.FaultCount())
	}
	if fc.PEOk(c.PEAt(1, 1)) {
		t.Error("PE (1,1) should be broken")
	}
	if fc.Connected(c.PEAt(0, 0), c.PEAt(0, 1)) {
		t.Error("link (0,0)-(0,1) should be cut")
	}
	if got := fc.RegsAt(c.PEAt(2, 2)); got != 1 {
		t.Errorf("PE (2,2) has %d registers, want 1", got)
	}
	if fc.RowBusOK(3) {
		t.Error("row 3's bus should be dead")
	}
	if got := fc.UsablePEs(); got != 15 {
		t.Errorf("UsablePEs = %d, want 15", got)
	}
	if got := fc.UsableMemRows(); got != 3 {
		t.Errorf("UsableMemRows = %d, want 3", got)
	}
}

func TestApplyLinkIntoBrokenPE(t *testing.T) {
	// A cut link whose endpoint is also broken must not error: links are
	// applied first, and duplicates of an already-severed link are skipped.
	c := grid(t)
	s := mustParse(t, "pe 0,0; link 0,0-0,1; link 0,0-0,1")
	fc, err := s.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if fc.PEOk(0) || fc.Connected(0, 1) {
		t.Fatal("both faults should hold")
	}
}

func TestActiveAndTransience(t *testing.T) {
	s := mustParse(t, "pe 0,0~2; row 1; regs 1,1=0~1")
	if !s.HasTransient() {
		t.Fatal("set has transient faults")
	}
	if got := s.MaxClearAfter(); got != 2 {
		t.Fatalf("MaxClearAfter = %d, want 2", got)
	}
	wants := map[int]string{
		0: "pe 0,0~2; row 1; regs 1,1=0~1",
		1: "pe 0,0~2; row 1",
		2: "row 1",
		3: "row 1",
	}
	for round, want := range wants {
		if got := s.Active(round).String(); got != want {
			t.Errorf("Active(%d) = %q, want %q", round, got, want)
		}
	}
	if s.Active(99).HasTransient() {
		t.Error("only the permanent fault should remain")
	}
}

func TestRandomDeterministicAndValid(t *testing.T) {
	c := grid(t)
	a := Random(rand.New(rand.NewSource(7)), c, 5)
	b := Random(rand.New(rand.NewSource(7)), c, 5)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if len(a.Faults) != 5 {
		t.Fatalf("drew %d faults, want 5", len(a.Faults))
	}
	if err := a.Validate(c); err != nil {
		t.Fatalf("random set invalid: %v", err)
	}
	if _, err := a.Apply(c); err != nil {
		t.Fatalf("random set fails to apply: %v", err)
	}
	other := Random(rand.New(rand.NewSource(8)), c, 5)
	if a.String() == other.String() {
		t.Error("different seeds produced identical sets (suspicious)")
	}
}

func TestRandomStopsShortWhenExhausted(t *testing.T) {
	c := arch.NewMesh(1, 2, 2)
	s := Random(rand.New(rand.NewSource(1)), c, 1000)
	if len(s.Faults) >= 1000 {
		t.Fatalf("a 1x2 array cannot have 1000 distinct faults (got %d)", len(s.Faults))
	}
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func mustParse(t *testing.T, text string) *Set {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
