package exact

import (
	"context"
	"fmt"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/sat"
	"regimap/internal/sim"
)

// Options tune the exact engine. The zero value is ready to use.
type Options struct {
	// MinII / MaxII bound the II escalation (0: start at MII / stop at
	// MII+8). Starting above MII forfeits the optimality claim — the
	// certificate only calls a result optimal when every II below it,
	// down to MII, was refuted or equals MII.
	MinII, MaxII int
	// RouteHops is the per-edge route-chain budget of the relaxation class
	// (0: default 1; negative: no routing). Larger budgets admit more
	// mappings but grow the formula.
	RouteHops int
	// MaxConflicts is the per-solve conflict budget (0: 100000). Budgets are
	// in conflicts, not wall-clock, so verdicts are machine-independent. The
	// default is tuned so every suite kernel on paper-4x4 settles — proven
	// optimal or best-found II plus certified bound — well inside a
	// 60s/kernel envelope; raise it to chase optimality proofs on the
	// largest kernels at the price of slower escalation past hard IIs.
	MaxConflicts int64
	// Seed diversifies the solver's tie-breaking; any seed yields the same
	// verdicts (SAT/UNSAT are properties of the formula), possibly via a
	// different model and search path.
	Seed int64
	// LubyUnit overrides the solver restart base (0: solver default).
	LubyUnit int64
	// MaxPoints caps the encoding size in time points (0: 60000); an II
	// whose formula would exceed it gets an "unknown" verdict, never a
	// wrong one.
	MaxPoints int
	// SimIters is how many iterations the simulator certifies decoded
	// models for (0: 4).
	SimIters int
}

func (o Options) routeHops() int {
	switch {
	case o.RouteHops < 0:
		return 0
	case o.RouteHops == 0:
		return 1
	case o.RouteHops > 4:
		return 4
	default:
		return o.RouteHops
	}
}

func (o Options) maxConflicts() int64 {
	if o.MaxConflicts <= 0 {
		return 100_000
	}
	return o.MaxConflicts
}

func (o Options) maxPoints() int {
	if o.MaxPoints <= 0 {
		return 60_000
	}
	return o.MaxPoints
}

func (o Options) simIters() int {
	if o.SimIters <= 0 {
		return 4
	}
	return o.SimIters
}

// Lower-bound classes: "mii" bounds are absolute (they hold for any legal
// mapping of any engine); "chain" bounds were raised by UNSAT proofs and
// hold for every mapping in the route-chain relaxation class — schedules
// whose only structural relaxation is per-edge route chains of at most
// RouteHops hops. Engines using recomputation (dfg.Duplicate) or fanout
// splitting (dfg.SplitFanout) can, in principle, beat a chain bound; none
// of the suite kernels exercise that, and the oracle property suite checks
// class membership before asserting against chain bounds.
const (
	LowerBoundMII   = "mii"
	LowerBoundChain = "chain"
)

// Verdict is the outcome of one II's decision problem.
type Verdict struct {
	II        int
	Status    string // "sat", "unsat", "unknown", "unmappable"
	Note      string // why an unknown verdict was unknown, when known
	Vars      int
	Clauses   int
	Conflicts int64
	Decisions int64
	Restarts  int64
	Elapsed   time.Duration
}

// Certificate is the proof artifact of one exact run. Everything except the
// Elapsed fields is deterministic for a fixed (kernel, fabric, Options):
// budgets are counted in conflicts and the solver is single-threaded, so
// GOMAXPROCS and wall-clock never change a verdict.
type Certificate struct {
	// MII is the schedule-theoretic lower bound the escalation starts from.
	MII int
	// BestII is the smallest II proven satisfiable (0: none found).
	BestII int
	// OptimalII is BestII when every II in [MII, BestII) was refuted, i.e.
	// the mapping is optimal within the relaxation class (0: not proven).
	OptimalII int
	// ProvenLowerBound is the largest k such that every II < k is known
	// infeasible: at least MII always; larger when UNSAT proofs raised it.
	ProvenLowerBound int
	// LowerBoundClass qualifies ProvenLowerBound: LowerBoundMII bounds any
	// engine absolutely, LowerBoundChain bounds the route-chain class.
	LowerBoundClass string
	// RouteHops is the relaxation class's per-edge chain budget.
	RouteHops int
	// Aggregate solver effort across all IIs tried.
	Conflicts, Decisions, Propagations, Restarts int64
	// PerII records each II's verdict in escalation order.
	PerII []Verdict
}

// Gap returns BestII/MII-style optimality information: (MII, BestII,
// proven). proven is true when BestII is certified optimal.
func (c *Certificate) Gap() (mii, ii int, proven bool) {
	return c.MII, c.BestII, c.OptimalII != 0 && c.OptimalII == c.BestII
}

// Stats is what the exact engine reports alongside its mapping.
type Stats struct {
	Cert    Certificate
	Elapsed time.Duration
}

// Run is a stepwise exact search: each Step decides one II, ascending from
// the start of the escalation window, accumulating the certificate as it
// goes. The portfolio races a Run against the heuristics one II at a time so
// it can stop escalating the moment the heuristic answer makes further IIs
// pointless; Map is the run-to-completion convenience wrapper. A Run is not
// safe for concurrent use.
type Run struct {
	d    *dfg.DFG
	c    *arch.CGRA
	opts Options

	cert   Certificate
	lo, hi int
	next   int
	contig bool
	m      *mapping.Mapping
	err    error
	done   bool
	start  time.Time
}

// NewRun validates the instance and positions the escalation window. The
// returned Run is always non-nil: on error it is already finished and its
// certificate (empty but well-formed) is still readable.
func NewRun(d *dfg.DFG, c *arch.CGRA, opts Options) (*Run, error) {
	r := &Run{
		d: d, c: c, opts: opts, start: time.Now(),
		cert: Certificate{LowerBoundClass: LowerBoundMII, RouteHops: opts.routeHops()},
	}
	if err := d.Validate(); err != nil {
		r.fail(err)
		return r, err
	}
	pes, memSlots := c.MIIResources()
	if pes == 0 || (d.MemOps() > 0 && memSlots == 0) {
		err := maperr.NoMapping("exact: %s has no usable resources for %s", c, d.Name)
		r.fail(err)
		return r, err
	}
	mii := d.MII(pes, memSlots)
	r.cert.MII = mii
	r.cert.ProvenLowerBound = mii
	r.lo = mii
	if opts.MinII > r.lo {
		r.lo = opts.MinII
	}
	r.hi = opts.MaxII
	if r.hi <= 0 {
		r.hi = mii + 8
	}
	if r.hi < r.lo {
		r.hi = r.lo
	}
	r.next = r.lo
	r.contig = r.lo == mii
	return r, nil
}

func (r *Run) fail(err error) { r.err, r.done = err, true }

// Done reports whether the run has finished (mapping found, window
// exhausted, or terminal error).
func (r *Run) Done() bool { return r.done }

// NextII is the II the next Step will decide (meaningless once Done).
func (r *Run) NextII() int { return r.next }

// Mapping is the proven mapping, nil until a Step returns a SAT verdict.
func (r *Run) Mapping() *mapping.Mapping { return r.m }

// Err is the terminal error, if the run failed.
func (r *Run) Err() error { return r.err }

// Certificate snapshots the proof accumulated so far.
func (r *Run) Certificate() Certificate {
	c := r.cert
	c.PerII = append([]Verdict(nil), r.cert.PerII...)
	return c
}

// Stats snapshots the certificate plus elapsed wall-clock.
func (r *Run) Stats() *Stats {
	return &Stats{Cert: r.Certificate(), Elapsed: time.Since(r.start)}
}

// Step decides the run's next II. It returns that II's verdict and, once the
// run can no longer proceed (success included), marks the run done; the
// terminal error, if any, is both returned and kept in Err.
func (r *Run) Step(ctx context.Context) (Verdict, error) {
	if r.done {
		return Verdict{}, r.err
	}
	if r.next > r.hi {
		r.fail(maperr.NoMapping("exact: no mapping of %s on %s for II in [%d,%d] (proven lower bound %d, class %s)",
			r.d.Name, r.c, r.lo, r.hi, r.cert.ProvenLowerBound, r.cert.LowerBoundClass))
		return Verdict{}, r.err
	}
	ii := r.next
	if err := ctx.Err(); err != nil {
		r.fail(maperr.Aborted(err, "exact: aborted before II=%d", ii))
		return Verdict{}, r.err
	}
	r.next++
	v, m, err := solveAtII(ctx, r.d, r.c, ii, r.opts)
	r.cert.PerII = append(r.cert.PerII, v)
	r.cert.Conflicts += v.Conflicts
	r.cert.Decisions += v.Decisions
	r.cert.Restarts += v.Restarts
	switch v.Status {
	case "sat":
		r.cert.BestII = ii
		if r.contig {
			r.cert.OptimalII = ii
		}
		r.m = m
		r.done = true
		return v, nil
	case "unsat":
		if r.contig {
			r.cert.ProvenLowerBound = ii + 1
			if ii+1 > r.cert.MII {
				r.cert.LowerBoundClass = LowerBoundChain
			}
		}
	case "unmappable":
		r.fail(maperr.NoMapping("exact: no PE can execute op %s of %s", v.Note, r.d.Name))
		return v, r.err
	default:
		r.contig = false
		if err != nil {
			r.fail(maperr.Aborted(err, "exact: aborted at II=%d", ii))
			return v, r.err
		}
	}
	if err != nil {
		r.fail(err)
	}
	return v, r.err
}

// Map searches for a provably best mapping: for II = MII, MII+1, ... it
// decides satisfiability, stopping at the first SAT (optimal when the run
// down from MII was gapless) or when the escalation window or context is
// exhausted. The returned Stats always carries the certificate, including
// on failure, so callers can report certified lower bounds without a
// mapping.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	r, err := NewRun(d, c, opts)
	for err == nil && !r.done {
		_, err = r.Step(ctx)
	}
	return r.m, r.Stats(), r.err
}

// spanRungs is the ladder of span caps solveAtII escalates through: most
// mappings need only short register carries, and a tight cap shrinks the
// formula dramatically, so SAT is usually found on an early rung. Only the
// last rung (the absolute cap maxRegs*II) certifies UNSAT.
func spanRungs(c *arch.CGRA, ii int) []int {
	full := maxRegs(c) * ii
	if full < 1 {
		full = 1
	}
	rungs := []int{ii, 2 * ii, full}
	out := rungs[:0]
	for _, r := range rungs {
		if r > full {
			r = full
		}
		if len(out) == 0 || r > out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// solveAtII decides one II: encode, solve under the conflict budget, and on
// SAT decode and certify the mapping with the validator and the simulator.
// The span-cap ladder keeps the common SAT case fast without weakening UNSAT
// certificates (see spanRungs).
func solveAtII(ctx context.Context, d *dfg.DFG, c *arch.CGRA, ii int, opts Options) (v Verdict, _ *mapping.Mapping, _ error) {
	t0 := time.Now()
	v = Verdict{II: ii}
	defer func() { v.Elapsed = time.Since(t0) }()
	rungs := spanRungs(c, ii)
	for ri, cap := range rungs {
		last := ri == len(rungs)-1
		p, bs := build(d, c, ii, opts, cap)
		switch bs {
		case buildUnsat:
			if !last {
				continue
			}
			v.Status = "unsat"
			v.Note = "time windows infeasible"
			return v, nil, nil
		case buildUnmappable:
			v.Status = "unmappable"
			v.Note = d.Nodes[p.badNode].Name
			return v, nil, nil
		case buildTooLarge:
			// Wider rungs only grow the formula; give up now.
			v.Status = "unknown"
			v.Note = "encoding exceeds MaxPoints"
			return v, nil, nil
		}
		v.Vars, v.Clauses = p.s.NumVars(), p.s.NumClauses()
		res, err := p.s.Solve(ctx)
		ss := p.s.Stats()
		v.Conflicts += ss.Conflicts
		v.Decisions += ss.Decisions
		v.Restarts += ss.Restarts
		if err != nil {
			v.Status = "unknown"
			v.Note = "context cancelled"
			return v, nil, err
		}
		switch res {
		case sat.Sat:
			m, derr := p.decode()
			if derr != nil {
				return v, nil, &maperr.InvalidMappingError{Mapper: "exact", What: "mapping", Err: derr}
			}
			if verr := m.Validate(); verr != nil {
				return v, nil, &maperr.InvalidMappingError{Mapper: "exact", What: "mapping", Err: verr}
			}
			if serr := sim.Check(m, opts.simIters()); serr != nil {
				return v, nil, &maperr.InvalidMappingError{Mapper: "exact", What: "mapping", Err: fmt.Errorf("simulation: %w", serr)}
			}
			v.Status = "sat"
			return v, m, nil
		case sat.Unsat:
			if !last {
				continue
			}
			v.Status = "unsat"
			return v, nil, nil
		default:
			v.Status = "unknown"
			v.Note = "conflict budget exhausted"
			return v, nil, nil
		}
	}
	v.Status = "unknown"
	v.Note = "span ladder exhausted"
	return v, nil, nil
}

// engineMapper adapts Map to the unified engine contract under the name
// "exact". Options.Extra, when set, must be an exact.Options.
type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "exact" }

func (engineMapper) Describe() string {
	return "exact: CDCL SAT reduction with optimality certificates — proves II == MII or a certified lower bound (DESIGN.md 8k)"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "exact", Want: "exact.Options", Got: eo.Extra}
	}
	if eo.MinII > 0 {
		opts.MinII = eo.MinII
	}
	if eo.MaxII > 0 {
		opts.MaxII = eo.MaxII
	}
	m, st, err := Map(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	return &engine.Result{
		Mapping: m,
		MII:     st.Cert.MII,
		II:      st.Cert.BestII,
		Rounds:  int(st.Cert.Conflicts),
		Stats:   st,
		Elapsed: st.Elapsed,
	}, err
}
