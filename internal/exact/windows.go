package exact

import (
	"regimap/internal/dfg"
)

// window is one node's feasible absolute-time interval [Lo, Hi] at a fixed
// II. Windows come from interval propagation over the difference constraints
// every edge induces, so any schedule in the encoder's relaxation class lies
// inside them; an empty window (or a diverging propagation, i.e. a negative
// cycle) refutes the II outright.
type window struct{ Lo, Hi int }

func (w window) width() int { return w.Hi - w.Lo + 1 }

const inf = int(1) << 30

// computeWindows bounds every node's time at the given II. Each edge u->w
// with distance dist constrains T[w]-T[u] to [1-ii*dist, chainMax-ii*dist]
// where chainMax = (hops+1)*maxSpan is the longest delay an active route
// chain can add. One anchor per weakly-connected component is pinned to
// [0, ii-1] — absolute time is only meaningful modulo II, so the shift
// freedom is WLOG. The second result is false when the constraints are
// infeasible (the II is unsatisfiable in the relaxation class).
func computeWindows(d *dfg.DFG, ii, maxSpan, hops int) ([]window, bool) {
	n := d.N()
	win := make([]window, n)
	for i := range win {
		win[i] = window{-inf, inf}
	}
	// Anchor the lowest-index node of each weakly-connected component.
	comp := components(d)
	seen := map[int]bool{}
	for v := 0; v < n; v++ {
		if !seen[comp[v]] {
			seen[comp[v]] = true
			win[v] = window{0, ii - 1}
		}
	}
	chainMax := (hops + 1) * maxSpan
	// Interval propagation to fixpoint; difference constraints converge
	// within n rounds, so a change on round n+1 proves a negative cycle.
	for round := 0; ; round++ {
		changed := false
		tighten := func(v int, lo, hi int) {
			if lo > win[v].Lo {
				win[v].Lo, changed = lo, true
			}
			if hi < win[v].Hi {
				win[v].Hi, changed = hi, true
			}
		}
		for _, e := range d.Edges {
			lb := 1 - ii*e.Dist        // minimum span: the direct edge
			ub := chainMax - ii*e.Dist // maximum span: a fully-routed chain
			u, w := e.From, e.To
			if win[u].Lo > -inf {
				tighten(w, win[u].Lo+lb, win[w].Hi)
			}
			if win[u].Hi < inf {
				tighten(w, win[w].Lo, win[u].Hi+ub)
			}
			if win[w].Lo > -inf {
				tighten(u, win[w].Lo-ub, win[u].Hi)
			}
			if win[w].Hi < inf {
				tighten(u, win[u].Lo, win[w].Hi-lb)
			}
		}
		for v := range win {
			if win[v].Lo > win[v].Hi {
				return nil, false
			}
		}
		if !changed {
			break
		}
		if round > n+1 {
			return nil, false // negative cycle: no feasible schedule
		}
	}
	return win, true
}

// components labels each node with its weakly-connected component (the
// lowest node index in it, via union-find).
func components(d *dfg.DFG) []int {
	parent := make([]int, d.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range d.Edges {
		a, b := find(e.From), find(e.To)
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	out := make([]int, d.N())
	for v := range out {
		out[v] = find(v)
	}
	return out
}
