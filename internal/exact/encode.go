// Package exact maps kernels by reduction to SAT, the repo's only engine
// that can prove optimality: "map this DFG on this CGRA at II=k" becomes a
// CNF formula whose models are exactly the legal mappings of the relaxation
// class (schedules plus optional per-edge route chains up to a hop budget),
// solved by internal/sat. A SAT verdict decodes into a mapping.Mapping that
// mapping.Validate and the simulator certify; an UNSAT verdict at II=k is a
// certificate that no mapping in the class exists at k. See DESIGN.md
// section 8k for the encoding and the certificate semantics.
package exact

import (
	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sat"
)

// enode is one schedulable entity: a real DFG operation, or an optional
// route hop a dependence edge may activate. Hops model what dfg.InsertRoute
// does structurally, so models decode through the same primitive the
// heuristics use.
type enode struct {
	kind    dfg.OpKind
	win     window
	allowed []int // candidate PEs, ascending
	pVar    []int // PE one-hot vars, aligned with allowed
	gVar    []int // order encoding: gVar[i] ⇔ T >= win.Lo+1+i
	sVar    []int // modulo-slot vars, indexed by slot; -1 unreachable
	act     int   // activation var; -1 for always-active real nodes
}

// subedge is one potential dependence segment of an edge's route chain:
// the direct edge, producer→hop1, hop_{j-1}→hop_j, or hop_j→consumer.
// cond holds the literals that neutralize its constraints when the segment
// is inactive under the chosen activation pattern.
type subedge struct {
	x, y int // unified node indices
	dist int
	cond []ml
	ge   map[int]int // span threshold θ -> SpanGE var
	geTh []int       // creation order of thresholds (determinism)
}

type buildStatus int

const (
	buildOK         buildStatus = iota
	buildUnsat                  // windows infeasible: no schedule in the class at this II
	buildUnmappable             // some op has no capable PE at any II
	buildTooLarge               // encoding exceeds the size budget
)

type problem struct {
	d       *dfg.DFG
	c       *arch.CGRA
	ii      int
	maxSpan int
	hops    int
	rmax    int
	s       *sat.Solver

	nodes    []enode
	hopNodes [][]int // per edge: unified indices of its hops
	actVars  [][]int // per edge: activation ladder vars
	subs     []subedge
	cVar     [][]int        // per node: register-cost vars, index k-1; -1 absent
	fanTo    [][]int        // per node: consumer list (distinct, in creation order)
	fanVar   map[[2]int]int // (producer, consumer) -> remote-read var
	scratch  []sat.Lit
	badNode  int // offending op for buildUnmappable
}

func (p *problem) mod(t int) int { return ((t % p.ii) + p.ii) % p.ii }

// ge returns the order-encoding literal "T[node] >= t" with window
// boundaries folded to constants.
func (p *problem) ge(nd *enode, t int) ml {
	switch {
	case t <= nd.win.Lo:
		return mTrue
	case t > nd.win.Hi:
		return mFalse
	default:
		return mv(sat.Pos(nd.gVar[t-nd.win.Lo-1]))
	}
}

// allowedPEs returns the PEs that may execute kind, honoring faults,
// capability classes, memory-capable PEs, and dead row buses.
func allowedPEs(c *arch.CGRA, kind dfg.OpKind) []int {
	var out []int
	for pe := 0; pe < c.NumPEs(); pe++ {
		if !c.PEOk(pe) || !c.Supports(pe, kind) {
			continue
		}
		if kind.IsMem() && (!c.MemPEOk(pe) || !c.RowBusOK(c.RowOf(pe))) {
			continue
		}
		out = append(out, pe)
	}
	return out
}

// maxRegs is the largest register file on any healthy PE; it bounds how long
// any value can stay register-carried (span <= maxRegs*II).
func maxRegs(c *arch.CGRA) int {
	r := 0
	for pe := 0; pe < c.NumPEs(); pe++ {
		if c.PEOk(pe) && c.RegsAt(pe) > r {
			r = c.RegsAt(pe)
		}
	}
	return r
}

// build compiles the mapping decision problem at the given II into p.s.
// spanCap restricts the per-segment span the encoding admits; anything below
// the absolute maximum maxRegs(c)*ii makes the formula a restriction whose
// models are still legal mappings but whose UNSAT verdicts are not certified
// — solveAtII runs a ladder of caps and only trusts UNSAT at the full cap.
func build(d *dfg.DFG, c *arch.CGRA, ii int, opts Options, spanCap int) (*problem, buildStatus) {
	p := &problem{d: d, c: c, ii: ii, hops: opts.routeHops(), fanVar: map[[2]int]int{}}
	p.rmax = maxRegs(c)
	p.maxSpan = p.rmax * ii
	if spanCap > 0 && spanCap < p.maxSpan {
		p.maxSpan = spanCap
	}
	if p.maxSpan < 1 {
		p.maxSpan = 1
	}

	win, ok := computeWindows(d, ii, p.maxSpan, p.hops)
	if !ok {
		return p, buildUnsat
	}

	// Real nodes.
	p.nodes = make([]enode, 0, d.N())
	for v, nd := range d.Nodes {
		allowed := allowedPEs(c, nd.Kind)
		if len(allowed) == 0 {
			p.badNode = v
			return p, buildUnmappable
		}
		p.nodes = append(p.nodes, enode{kind: nd.Kind, win: win[v], allowed: allowed, act: -1})
	}

	// Optional route hops per edge, sharing one window wide enough for any
	// chain position: after the producer fires, before the consumer reads.
	routePEs := allowedPEs(c, dfg.Route)
	p.hopNodes = make([][]int, len(d.Edges))
	p.actVars = make([][]int, len(d.Edges))
	for ei, e := range d.Edges {
		if p.hops == 0 || len(routePEs) == 0 {
			continue
		}
		hw := window{win[e.From].Lo + 1 - ii*e.Dist, win[e.To].Hi - 1}
		if hw.Lo > hw.Hi {
			continue
		}
		for j := 0; j < p.hops; j++ {
			p.hopNodes[ei] = append(p.hopNodes[ei], len(p.nodes))
			p.nodes = append(p.nodes, enode{kind: dfg.Route, win: hw, allowed: routePEs})
		}
	}

	// Size guard: the time-point count dominates variables and clauses.
	points := 0
	for i := range p.nodes {
		points += p.nodes[i].win.width()
	}
	if points > opts.maxPoints() {
		return p, buildTooLarge
	}

	p.s = sat.New(sat.Options{
		Seed:         opts.Seed,
		LubyUnit:     opts.LubyUnit,
		MaxConflicts: opts.maxConflicts(),
	})

	// Activation ladders (A_{j+1} → A_j), biased off so un-routed models
	// decode canonically, then per-node machinery.
	for ei := range d.Edges {
		for j, hi := range p.hopNodes[ei] {
			a := p.s.NewVar()
			p.s.SetPhase(a, false)
			p.nodes[hi].act = a
			p.actVars[ei] = append(p.actVars[ei], a)
			if j > 0 {
				p.s.AddClause(sat.Neg(a), sat.Pos(p.actVars[ei][j-1]))
			}
		}
	}
	for i := range p.nodes {
		p.buildNodeVars(i)
	}

	p.cVar = make([][]int, len(p.nodes))
	for i := range p.cVar {
		p.cVar[i] = make([]int, p.rmax)
		for k := range p.cVar[i] {
			p.cVar[i][k] = -1
		}
	}
	p.fanTo = make([][]int, len(p.nodes))

	// Dependence segments.
	for ei, e := range d.Edges {
		p.buildEdge(ei, e)
	}

	p.buildOccupancy()
	p.buildBuses()
	p.buildPressure()
	p.buildFanout()
	return p, buildOK
}

// buildNodeVars creates one node's PE one-hot, order-encoded time, and
// channeled slot variables. Inactive hops are pinned to their first allowed
// PE and earliest time so decoding is deterministic.
func (p *problem) buildNodeVars(ni int) {
	nd := &p.nodes[ni]
	nd.pVar = make([]int, len(nd.allowed))
	lits := make([]sat.Lit, len(nd.allowed))
	for i := range nd.allowed {
		nd.pVar[i] = p.s.NewVar()
		lits[i] = sat.Pos(nd.pVar[i])
	}
	p.atMostOne(lits)
	ms := make([]ml, 0, len(lits)+1)
	if nd.act >= 0 {
		ms = append(ms, mv(sat.Neg(nd.act)))
	}
	for _, l := range lits {
		ms = append(ms, mv(l))
	}
	p.clause(ms...) // at least one PE (when active)
	if nd.act >= 0 {
		p.clause(mv(sat.Pos(nd.act)), mv(sat.Pos(nd.pVar[0])))
	}

	w := nd.win.width()
	nd.gVar = make([]int, w-1)
	for i := range nd.gVar {
		nd.gVar[i] = p.s.NewVar()
		if i > 0 {
			p.s.AddClause(sat.Neg(nd.gVar[i]), sat.Pos(nd.gVar[i-1]))
		}
	}
	if nd.act >= 0 && len(nd.gVar) > 0 {
		p.clause(mv(sat.Pos(nd.act)), mv(sat.Neg(nd.gVar[0])))
	}

	nd.sVar = make([]int, p.ii)
	for i := range nd.sVar {
		nd.sVar[i] = -1
	}
	for t := nd.win.Lo; t <= nd.win.Hi; t++ {
		if s := p.mod(t); nd.sVar[s] < 0 {
			nd.sVar[s] = p.s.NewVar()
		}
	}
	for t := nd.win.Lo; t <= nd.win.Hi; t++ {
		// T == t (G[t] ∧ ¬G[t+1]) implies the slot var of t mod II.
		p.clause(mnot(p.ge(nd, t)), p.ge(nd, t+1), mv(sat.Pos(nd.sVar[p.mod(t)])))
	}
	var slits []sat.Lit
	for _, v := range nd.sVar {
		if v >= 0 {
			slits = append(slits, sat.Pos(v))
		}
	}
	p.atMostOne(slits)
}

// buildEdge lowers one DFG edge into its route-chain segments. With hop
// budget K the segments are: direct u→w (active iff no hop), u→h1 (iff A1),
// h_{j-1}→h_j (iff Aj), and h_j→w (iff exactly j hops active). The first
// segment of any pattern carries the edge's full loop distance, mirroring
// dfg.InsertRoute.
func (p *problem) buildEdge(ei int, e dfg.Edge) {
	hops := p.hopNodes[ei]
	acts := p.actVars[ei]
	add := func(x, y, dist int, cond []ml) {
		p.subs = append(p.subs, subedge{x: x, y: y, dist: dist, cond: cond, ge: map[int]int{}})
		p.emitSubedge(len(p.subs) - 1)
	}
	if len(hops) == 0 {
		add(e.From, e.To, e.Dist, nil)
		return
	}
	// Direct segment, disabled once any hop activates.
	add(e.From, e.To, e.Dist, []ml{mv(sat.Pos(acts[0]))})
	for j, h := range hops {
		if j == 0 {
			add(e.From, h, e.Dist, []ml{mv(sat.Neg(acts[0]))})
		} else {
			add(hops[j-1], h, 0, []ml{mv(sat.Neg(acts[j]))})
		}
		// h is the last active hop: h → consumer.
		cond := []ml{mv(sat.Neg(acts[j]))}
		if j+1 < len(acts) {
			cond = append(cond, mv(sat.Pos(acts[j+1])))
		}
		add(h, e.To, 0, cond)
	}
}

// sclause emits a clause guarded by the subedge's activation condition.
func (p *problem) sclause(se *subedge, ms ...ml) {
	all := make([]ml, 0, len(se.cond)+len(ms))
	all = append(all, se.cond...)
	all = append(all, ms...)
	p.clause(all...)
}

// spanGE returns (creating on first use) the variable equivalent, when the
// segment is active, to "span(segment) >= theta" where span = T[y] - T[x] +
// II*dist. Both implication directions are encoded over the order encoding.
func (p *problem) spanGE(si, theta int) sat.Lit {
	se := &p.subs[si]
	if v, ok := se.ge[theta]; ok {
		return sat.Pos(v)
	}
	v := p.s.NewVar()
	se.ge[theta] = v
	se.geTh = append(se.geTh, theta)
	x, y := &p.nodes[se.x], &p.nodes[se.y]
	off := theta - p.ii*se.dist
	for a := x.win.Lo; a <= x.win.Hi; a++ {
		// v ∧ T[x]>=a → T[y] >= a+off
		p.sclause(se, mv(sat.Neg(v)), mnot(p.ge(x, a)), p.ge(y, a+off))
	}
	for b := y.win.Lo; b <= y.win.Hi; b++ {
		// ¬v ∧ T[y]>=b → T[x] >= b-(off-1)   (span <= theta-1)
		p.sclause(se, mv(sat.Pos(v)), mnot(p.ge(y, b)), p.ge(x, b-off+1))
	}
	return sat.Pos(v)
}

// emitSubedge lowers one segment's precedence, span cap, adjacency,
// register-carry, and register-cost constraints.
func (p *problem) emitSubedge(si int) {
	se := &p.subs[si]
	x, y := &p.nodes[se.x], &p.nodes[se.y]
	// Precedence: span >= 1, i.e. T[y] >= T[x] + 1 - II*dist.
	off := 1 - p.ii*se.dist
	for a := x.win.Lo; a <= x.win.Hi; a++ {
		p.sclause(se, mnot(p.ge(x, a)), p.ge(y, a+off))
	}
	// Span cap: span <= maxSpan (a register cannot hold a value longer than
	// the file allows; see DESIGN.md 8k for why this cap is WLOG).
	for b := y.win.Lo; b <= y.win.Hi; b++ {
		p.sclause(se, mnot(p.ge(y, b)), p.ge(x, b+p.ii*se.dist-p.maxSpan))
	}
	// ge2 ⇔ span >= 2; ¬ge2 means span == 1 (an adjacency hop), ge2 means a
	// register-carried value that cannot leave the producer's PE.
	ge2 := p.spanGE(si, 2)
	se = &p.subs[si] // spanGE may have grown p.subs' backing array
	x, y = &p.nodes[se.x], &p.nodes[se.y]
	for i, pe := range x.allowed {
		px := sat.Pos(x.pVar[i])
		// span==1 → consumer on a connected (or same) PE.
		ms := []ml{mv(ge2), mv(px.Not())}
		for j, qe := range y.allowed {
			if p.c.Connected(pe, qe) {
				ms = append(ms, mv(sat.Pos(y.pVar[j])))
			}
		}
		p.sclause(se, ms...)
		// span>=2 → same PE.
		carry := []ml{mv(ge2.Not()), mv(px.Not())}
		if j := indexOf(y.allowed, pe); j >= 0 {
			carry = append(carry, mv(sat.Pos(y.pVar[j])))
		}
		p.sclause(se, carry...)
	}
	// Register cost: span >= θ_k pushes the producer's cost-k literal.
	for k := 1; k <= p.rmax; k++ {
		theta := (k-1)*p.ii + 1
		if k == 1 {
			theta = 2
		}
		if theta > p.maxSpan || theta > y.win.Hi-x.win.Lo+p.ii*se.dist {
			break
		}
		cv := p.cVar[se.x][k-1]
		if cv < 0 {
			cv = p.s.NewVar()
			p.cVar[se.x][k-1] = cv
		}
		g := p.spanGE(si, theta)
		se = &p.subs[si]
		p.sclause(se, mv(g.Not()), mv(sat.Pos(cv)))
	}
	p.emitFanoutRead(si)
}

// emitFanoutRead forces the (producer, consumer) remote-read indicator when
// this segment is a one-cycle hop across PEs; buildFanout later caps the
// indicators per producer.
func (p *problem) emitFanoutRead(si int) {
	if p.c.Fanout() <= 0 {
		return
	}
	se := &p.subs[si]
	x, y := &p.nodes[se.x], &p.nodes[se.y]
	key := [2]int{se.x, se.y}
	rv, ok := p.fanVar[key]
	if !ok {
		rv = p.s.NewVar()
		p.fanVar[key] = rv
		p.fanTo[se.x] = append(p.fanTo[se.x], se.y)
	}
	// Same-PE indicator exempts the read; sp → producer and consumer share
	// a PE, so a true sp never hides a genuine remote read.
	shareable := false
	for _, pe := range x.allowed {
		if indexOf(y.allowed, pe) >= 0 {
			shareable = true
			break
		}
	}
	ge2 := p.spanGE(si, 2)
	se = &p.subs[si]
	x, y = &p.nodes[se.x], &p.nodes[se.y]
	if !shareable {
		p.sclause(se, mv(ge2), mv(sat.Pos(rv)))
		return
	}
	sp := p.s.NewVar()
	for i, pe := range x.allowed {
		ms := []ml{mv(sat.Neg(sp)), mv(sat.Neg(x.pVar[i]))}
		if j := indexOf(y.allowed, pe); j >= 0 {
			ms = append(ms, mv(sat.Pos(y.pVar[j])))
		}
		p.clause(ms...)
	}
	p.sclause(se, mv(ge2), mv(sat.Pos(sp)), mv(sat.Pos(rv)))
}

// buildOccupancy enforces at most one active operation per (PE, slot).
func (p *problem) buildOccupancy() {
	type cand struct{ node, pIdx, slot int }
	byCell := make([][]cand, p.c.NumPEs()*p.ii)
	for ni := range p.nodes {
		nd := &p.nodes[ni]
		for i, pe := range nd.allowed {
			for s := 0; s < p.ii; s++ {
				if nd.sVar[s] >= 0 {
					byCell[pe*p.ii+s] = append(byCell[pe*p.ii+s], cand{ni, i, s})
				}
			}
		}
	}
	for _, cs := range byCell {
		if len(cs) < 2 {
			continue
		}
		lits := make([]sat.Lit, len(cs))
		for i, cd := range cs {
			nd := &p.nodes[cd.node]
			o := p.s.NewVar()
			lits[i] = sat.Pos(o)
			ms := []ml{}
			if nd.act >= 0 {
				ms = append(ms, mv(sat.Neg(nd.act)))
			}
			ms = append(ms,
				mv(sat.Neg(nd.pVar[cd.pIdx])),
				mv(sat.Neg(nd.sVar[cd.slot])),
				mv(sat.Pos(o)))
			p.clause(ms...)
		}
		p.atMostOne(lits)
	}
}

// buildBuses caps concurrent memory operations per (bus group, slot).
func (p *problem) buildBuses() {
	type cand struct {
		node int
		pes  []int // allowed indices within the group
	}
	groups := p.c.NumBusGroups()
	byCell := make([][]cand, groups*p.ii)
	for ni := range p.d.Nodes {
		nd := &p.nodes[ni]
		if !nd.kind.IsMem() {
			continue
		}
		inGroup := make([][]int, groups)
		for i, pe := range nd.allowed {
			g := p.c.BusGroupOf(pe)
			inGroup[g] = append(inGroup[g], i)
		}
		for g, idxs := range inGroup {
			if len(idxs) == 0 {
				continue
			}
			for s := 0; s < p.ii; s++ {
				if nd.sVar[s] >= 0 {
					byCell[g*p.ii+s] = append(byCell[g*p.ii+s], cand{ni, idxs})
				}
			}
		}
	}
	for cell, cs := range byCell {
		g := cell / p.ii
		s := cell % p.ii
		cap := p.c.BusGroupCap(g)
		if len(cs) <= cap {
			continue
		}
		lits := make([]sat.Lit, len(cs))
		for i, cd := range cs {
			nd := &p.nodes[cd.node]
			b := p.s.NewVar()
			lits[i] = sat.Pos(b)
			for _, pi := range cd.pes {
				p.clause(mv(sat.Neg(nd.pVar[pi])), mv(sat.Neg(nd.sVar[s])), mv(sat.Pos(b)))
			}
		}
		p.atMostK(lits, cap)
	}
}

// buildPressure caps per-PE rotating-register demand: each node assigned to
// PE with cost >= k contributes one unit per k, and the per-PE sum of units
// stays within RegsAt.
func (p *problem) buildPressure() {
	byPE := make([][]sat.Lit, p.c.NumPEs())
	for ni := range p.nodes {
		nd := &p.nodes[ni]
		for k := 1; k <= p.rmax; k++ {
			cv := p.cVar[ni][k-1]
			if cv < 0 {
				continue
			}
			for i, pe := range nd.allowed {
				cp := p.s.NewVar()
				p.s.AddClause(sat.Neg(cv), sat.Neg(nd.pVar[i]), sat.Pos(cp))
				byPE[pe] = append(byPE[pe], sat.Pos(cp))
			}
		}
	}
	for pe, lits := range byPE {
		p.atMostK(lits, p.c.RegsAt(pe))
	}
}

// buildFanout caps distinct remote same-cycle readers per producer.
func (p *problem) buildFanout() {
	fo := p.c.Fanout()
	if fo <= 0 {
		return
	}
	for ni, consumers := range p.fanTo {
		if len(consumers) <= fo {
			continue
		}
		lits := make([]sat.Lit, len(consumers))
		for i, y := range consumers {
			lits[i] = sat.Pos(p.fanVar[[2]int{ni, y}])
		}
		p.atMostK(lits, fo)
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
