package exact

import (
	"fmt"

	"regimap/internal/mapping"
)

// decode turns the solver's model into a mapping: clone the kernel, insert
// the active route chains through dfg.InsertRoute (the same primitive the
// heuristics use, so route node names and edge layout are identical), copy
// times and PEs out of the model, and shift each weakly-connected component
// by a multiple of II so all times are non-negative (slots and spans are
// invariant under that shift). The caller still certifies the result with
// mapping.Validate and the simulator.
func (p *problem) decode() (*mapping.Mapping, error) {
	nTime := make([]int, len(p.nodes))
	nPE := make([]int, len(p.nodes))
	for i := range p.nodes {
		nd := &p.nodes[i]
		t := nd.win.Lo
		for gi, gv := range nd.gVar {
			if p.s.Value(gv) {
				t = nd.win.Lo + 1 + gi
			}
		}
		nTime[i] = t
		pe := -1
		for j, pv := range nd.pVar {
			if p.s.Value(pv) {
				pe = nd.allowed[j]
				break
			}
		}
		if pe < 0 {
			if nd.act >= 0 && !p.s.Value(nd.act) {
				pe = nd.allowed[0] // pinned inactive hop; never enters the mapping
			} else {
				return nil, fmt.Errorf("exact: node %d has no PE in the model", i)
			}
		}
		nPE[i] = pe
	}

	dd := p.d.Clone()
	time := make([]int, 0, len(p.nodes))
	pes := make([]int, 0, len(p.nodes))
	for v := range p.d.Nodes {
		time = append(time, nTime[v])
		pes = append(pes, nPE[v])
	}
	for ei := range p.d.Edges {
		cur := ei
		for j, hi := range p.hopNodes[ei] {
			if !p.s.Value(p.actVars[ei][j]) {
				break
			}
			id := dd.InsertRoute(cur)
			cur = len(dd.Edges) - 1
			if id != len(time) {
				return nil, fmt.Errorf("exact: route id %d out of order (want %d)", id, len(time))
			}
			time = append(time, nTime[hi])
			pes = append(pes, nPE[hi])
		}
	}

	// Normalize: per component, lift times to >= 0 by a multiple of II.
	comp := components(dd)
	minT := map[int]int{}
	for v, t := range time {
		c := comp[v]
		if cur, ok := minT[c]; !ok || t < cur {
			minT[c] = t
		}
	}
	for v := range time {
		if lo := minT[comp[v]]; lo < 0 {
			time[v] += ((-lo + p.ii - 1) / p.ii) * p.ii
		}
	}

	m := mapping.New(dd, p.c, p.ii)
	copy(m.Time, time)
	copy(m.PE, pes)
	return m, nil
}
